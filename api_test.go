package chortle

import (
	"strings"
	"testing"
)

// mustMap maps or fails the test (the package's former MustMap,
// now test-local: the public API is panic-free).
func mustMap(t *testing.T, nw *Network, opts Options) *Result {
	t.Helper()
	res, err := Map(nw, opts)
	if err != nil {
		t.Fatalf("chortle: %v", err)
	}
	return res
}

const adderBLIF = `
.model adder
.inputs a b cin
.outputs sum cout
.names a b t
10 1
01 1
.names t cin sum
10 1
01 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
`

func TestPublicAPIEndToEnd(t *testing.T) {
	nw, err := ReadBLIF(strings.NewReader(adderBLIF))
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= 6; k++ {
		res, err := Map(nw, DefaultOptions(k))
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if err := Verify(nw, res.Circuit, 0, 1); err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
	}
	// A full adder is pure reconvergent logic (two XORs and a majority):
	// Chortle cannot merge across the shared inputs, so it needs several
	// LUTs even at K=3. The library baseline does no better here either:
	// although the complete K=3 library holds XOR3 and MAJ cells, their
	// factored-form patterns do not align with this subject's structure
	// (the structural bias inherent to library mapping) — it only
	// recovers the inner XOR2 shapes. Both facts are part of the
	// paper's story, pinned down here.
	res := mustMap(t, nw, DefaultOptions(3))
	if res.LUTs > 7 {
		t.Fatalf("full adder mapped to %d LUTs at K=3, expected at most 7", res.LUTs)
	}
	bres, err := MapBaseline(nw, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bres.LUTs > res.LUTs {
		t.Fatalf("baseline (%d LUTs) worse than Chortle (%d) on XOR-heavy logic at K=3",
			bres.LUTs, res.LUTs)
	}

	var sb strings.Builder
	if err := WriteBLIF(&sb, nw); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBLIF(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Inputs) != 3 {
		t.Fatal("BLIF round trip lost inputs")
	}
}

func TestOptimizePreservesFunction(t *testing.T) {
	nw, err := ReadBLIF(strings.NewReader(adderBLIF))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(nw)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Map(opt, DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	// Mapped optimized circuit must match the ORIGINAL network.
	if err := Verify(nw, res.Circuit, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestMapBaselineAPI(t *testing.T) {
	nw, err := ReadBLIF(strings.NewReader(adderBLIF))
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= 5; k++ {
		res, err := MapBaseline(nw, k)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if err := Verify(nw, res.Circuit, 0, 1); err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
	}
}

func TestCompareSubset(t *testing.T) {
	tbl, err := CompareSuite(4, CompareOptions{
		Circuits: []string{"9symml", "frg1"},
		Verify:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if r.MISLUTs <= 0 || r.ChortleLUTs <= 0 {
			t.Fatalf("row %+v has empty mapping", r)
		}
	}
	out := tbl.Format()
	for _, want := range []string{"K=4", "9symml", "frg1", "average"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
	rows := sortedCopy(tbl.Rows)
	if rows[0].Circuit != "9symml" {
		t.Fatal("sortedCopy broken")
	}
	if _, err := CompareSuite(4, CompareOptions{Circuits: []string{"bogus"}}); err == nil {
		t.Fatal("unknown circuit accepted")
	}
}

// TestPaperShape regenerates the paper's headline comparison and checks
// the qualitative claims of Section 4.2 (skipped with -short):
//
//   - K=2: Chortle and MIS nearly identical, with MIS ahead only on a
//     few reconvergent-fanout (XOR-style) circuits;
//   - K=4 and K=5: Chortle clearly ahead on average, more so than at
//     K=3 (incomplete libraries), with per-circuit wins in the paper's
//     4-28% band for the non-pathological circuits.
func TestPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite comparison")
	}
	avg := map[int]float64{}
	tables := map[int]Table{}
	for _, k := range []int{2, 3, 4, 5} {
		tbl, err := CompareSuite(k, CompareOptions{Verify: true, VerifyPatterns: 4})
		if err != nil {
			t.Fatal(err)
		}
		avg[k] = tbl.AverageDiffPct()
		tables[k] = tbl
	}
	// K=2: nearly identical — every row within a third either way, and
	// the synthetic circuits map exactly alike.
	misWins := 0
	for _, r := range tables[2].Rows {
		if r.Synthetic && r.DiffPct != 0 {
			t.Errorf("K=2 %s: expected identical mappings, diff %.1f%%", r.Circuit, r.DiffPct)
		}
		if r.DiffPct < 0 {
			misWins++
		}
	}
	if misWins == 0 || misWins > 5 {
		t.Errorf("K=2: MIS wins %d circuits; the paper reports a handful of XOR cases", misWins)
	}
	// Incomplete-library regime: Chortle clearly ahead and ahead of K=3.
	if avg[4] < 5 || avg[5] < 5 {
		t.Errorf("K=4/K=5 averages %.1f%%/%.1f%%: expected clear Chortle advantage", avg[4], avg[5])
	}
	if avg[4] <= avg[3] || avg[5] <= avg[3] {
		t.Errorf("library incompleteness should grow the gap: K3=%.1f K4=%.1f K5=%.1f",
			avg[3], avg[4], avg[5])
	}
	// Chortle never loses on the synthetic circuits at K >= 3.
	for _, k := range []int{3, 4, 5} {
		for _, r := range tables[k].Rows {
			if r.Synthetic && r.DiffPct < 0 {
				t.Errorf("K=%d %s: Chortle behind on a reconvergence-free circuit (%.1f%%)",
					k, r.Circuit, r.DiffPct)
			}
		}
	}
}

const counterBLIF = `
.model counter2
.inputs en
.outputs q0out q1out
.latch d0 q0 re clk 0
.latch d1 q1 0
.names en q0 d0
10 1
01 1
.names en q0 carry
11 1
.names carry q1 d1
10 1
01 1
.names q0 q0out
1 1
.names q1 q1out
1 1
.end`

// TestSequentialMapping maps a small FSM: latches ride through both
// mappers, the combinational core (including next-state functions) is
// verified, and the mapped BLIF round-trips with its .latch lines.
func TestSequentialMapping(t *testing.T) {
	nw, err := ReadBLIF(strings.NewReader(counterBLIF))
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= 5; k++ {
		res, err := Map(nw, DefaultOptions(k))
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if len(res.Circuit.Latches) != 2 {
			t.Fatalf("K=%d: latches lost in mapping", k)
		}
		if err := Verify(nw, res.Circuit, 0, 1); err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		bres, err := MapBaseline(nw, k)
		if err != nil {
			t.Fatalf("K=%d baseline: %v", k, err)
		}
		if err := Verify(nw, bres.Circuit, 0, 1); err != nil {
			t.Fatalf("K=%d baseline: %v", k, err)
		}
	}
	res := mustMap(t, nw, DefaultOptions(4))
	var sb strings.Builder
	if err := res.Circuit.WriteBLIF(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBLIF(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("mapped sequential BLIF unreadable: %v\n%s", err, sb.String())
	}
	if len(back.Latches) != 2 {
		t.Fatalf("latches lost in mapped BLIF:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), ".latch") {
		t.Fatalf("no .latch lines emitted:\n%s", sb.String())
	}
}
