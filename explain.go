package chortle

import (
	"io"
	"log/slog"

	"chortle/internal/explain"
	"chortle/internal/forest"
	"chortle/internal/lut"
	"chortle/internal/obs"
)

// Explainability. Setting Options.Provenance makes the mapper record,
// on every emitted LUT, where it came from: the gate nodes it covers,
// the decomposition shape that produced it, its fanin LUTs, the owning
// fanout-free tree, and how the tree was solved (fresh search, memo
// reuse, template replay, bin packing, budget degradation). The record
// is read back with Circuit.ProvenanceOf and rendered by the DOT and
// HTML exporters below. Provenance is strictly passive: the mapped
// circuit is byte-identical with or without it, and when it is off the
// hot path pays nothing.

// Provenance is one LUT's origin record (Circuit.ProvenanceOf).
type Provenance = lut.Provenance

// Origin classifies how a LUT's owning tree was solved.
type Origin = lut.Origin

// Origin values, from least to most remarkable.
const (
	OriginUnknown  = lut.OriginUnknown
	OriginFresh    = lut.OriginFresh
	OriginMemo     = lut.OriginMemo
	OriginReplay   = lut.OriginReplay
	OriginBinPack  = lut.OriginBinPack
	OriginDegraded = lut.OriginDegraded
)

// WriteNetworkDOT renders a Boolean network as a Graphviz digraph:
// primary inputs as boxes, gates labeled with their op and fanin count,
// inverted edges with odot arrowheads, outputs as double circles. The
// output is deterministic — same network, same bytes.
func WriteNetworkDOT(w io.Writer, nw *Network) error {
	return explain.NetworkDOT(w, nw)
}

// WriteForestDOT decomposes the network into maximal fanout-free trees
// and renders the forest: one cluster per tree, dashed edges where a
// tree consumes another tree's root. The network is cloned first, so
// the caller's copy is untouched.
func WriteForestDOT(w io.Writer, nw *Network) error {
	f, err := forest.Decompose(nw.Clone())
	if err != nil {
		return err
	}
	return explain.ForestDOT(w, f)
}

// WriteCircuitDOT renders a mapped circuit. When the circuit carries
// provenance (Options.Provenance), LUTs are clustered by owning tree,
// labeled with their decomposition shape, and colored by origin class;
// without provenance the graph is flat. Deterministic either way — in
// particular, identical across the Parallel and Memoize settings.
func WriteCircuitDOT(w io.Writer, c *Circuit) error {
	return explain.CircuitDOT(w, c)
}

// ValidateDOT structurally checks a DOT document produced by the
// exporters above — balanced braces, every edge endpoint declared
// before use — without needing Graphviz installed.
func ValidateDOT(data []byte) error { return explain.ValidateDOT(data) }

// RunReport is everything WriteRunReport renders: a title, optional
// baseline comparison rows, and one section per mapped circuit.
type RunReport = explain.ReportData

// ReportCompareRow is one circuit's baseline-versus-Chortle line in a
// RunReport's comparison table.
type ReportCompareRow = explain.CompareRow

// ReportSection is one circuit's section of a RunReport: headline
// statistics, the provenance origin breakdown, the aggregated
// observability report, and an optional embedded DOT source.
type ReportSection = explain.CircuitSection

// WriteRunReport renders the report as a single self-contained HTML
// file: inline styles and inline SVG charts, no references to anything
// outside the file — suitable for archiving as a CI artifact.
func WriteRunReport(w io.Writer, d *RunReport) error {
	return explain.WriteHTML(w, d)
}

// NewSlogObserver returns an Observer that narrates a mapping run
// through a log/slog logger (slog.Default() when l is nil): run-level
// events at Info, per-tree detail at Debug.
func NewSlogObserver(l *slog.Logger) Observer { return obs.NewSlogObserver(l) }
