package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chortle"
)

const testBLIF = `.model t
.inputs a b c d e f
.outputs y z
.names a b t1
11 1
.names c d t2
01 1
.names t1 t2 y
10 1
.names e f z
11 1
.end
`

// traceFixture maps a small network with a -trace style JSONL sink and
// returns the trace file path.
func traceFixture(t *testing.T) string {
	t.Helper()
	nw, err := chortle.ReadBLIF(strings.NewReader(testBLIF))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := chortle.NewJSONLObserver(f)
	opts := chortle.DefaultOptions(4)
	opts.Observer = sink
	if _, err := chortle.Map(nw, opts); err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

type record struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
}

// checkBalance verifies per-track B/E nesting: every E closes the most
// recently opened B of the same name, and no track ends open.
func checkBalance(t *testing.T, recs []record) {
	t.Helper()
	type track struct{ pid, tid int }
	stacks := map[track][]string{}
	for i, r := range recs {
		k := track{r.Pid, r.Tid}
		switch r.Ph {
		case "B":
			stacks[k] = append(stacks[k], r.Name)
		case "E":
			st := stacks[k]
			if len(st) == 0 {
				t.Fatalf("record %d: E %q with no open span on track %v", i, r.Name, k)
			}
			if top := st[len(st)-1]; top != r.Name {
				t.Fatalf("record %d: E %q does not close open %q", i, r.Name, top)
			}
			stacks[k] = st[:len(st)-1]
		}
	}
	for k, st := range stacks {
		if len(st) != 0 {
			t.Fatalf("track %v left open: %v", k, st)
		}
	}
}

// TestEndToEnd runs the real pipeline: map with a JSONL trace, convert
// with run(), and structurally validate the Chrome trace.
func TestEndToEnd(t *testing.T) {
	trace := traceFixture(t)
	out := filepath.Join(t.TempDir(), "chrome.json")
	if err := run([]string{"-o", out, trace}, nil, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var recs []record
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatalf("output is not a JSON array of trace records: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("empty trace output")
	}
	checkBalance(t, recs)

	names := map[string]bool{}
	for _, r := range recs {
		names[r.Name] = true
	}
	for _, want := range []string{"process_name", "thread_name", "prepare", "solve"} {
		if !names[want] {
			t.Errorf("trace missing %q record", want)
		}
	}
}

func TestStdinStdout(t *testing.T) {
	data, err := os.ReadFile(traceFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(nil, bytes.NewReader(data), &out); err != nil {
		t.Fatal(err)
	}
	var recs []record
	if err := json.Unmarshal(out.Bytes(), &recs); err != nil {
		t.Fatalf("stdout is not a trace array: %v", err)
	}
	checkBalance(t, recs)
}

func TestErrors(t *testing.T) {
	if err := run(nil, strings.NewReader(""), nil); err == nil {
		t.Error("empty trace accepted")
	}
	if err := run(nil, strings.NewReader("not json\n"), nil); err == nil {
		t.Error("malformed trace accepted")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "missing.jsonl")}, nil, nil); err == nil {
		t.Error("missing input file accepted")
	}
}

// spanFixture writes a client-style span JSONL file sharing a trace ID
// with a server-style access log, and returns both paths.
func spanFixture(t *testing.T) (clientPath, serverPath string) {
	t.Helper()
	dir := t.TempDir()
	trace := chortle.NewTraceID()

	crt := chortle.NewReqTrace("client", "map", trace, chortle.SpanID{}, 16, 1)
	att := crt.Start("attempt")
	att.End()
	cf, err := os.Create(filepath.Join(dir, "client.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	sink := chortle.NewSpanJSONL(cf)
	for _, sp := range crt.Finish(chortle.SpanID{}) {
		sink.RecordSpan(sp)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}

	srt := chortle.NewReqTrace("chortled", "request", trace, att.ID(), 16, 1)
	sv := srt.Start("solve")
	sv.End()
	rec := chortle.AccessRecord{
		Trace: trace, Code: 200, Outcome: "2xx",
		Spans: srt.Finish(chortle.SpanID{}),
	}
	rec.Time = rec.Spans[0].Start
	sf, err := os.Create(filepath.Join(dir, "access.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewEncoder(sf).Encode(rec); err != nil {
		t.Fatal(err)
	}
	if err := sf.Close(); err != nil {
		t.Fatal(err)
	}
	return cf.Name(), sf.Name()
}

// TestMultiInputMerge feeds a client span file, a server access log,
// and a mapper event trace through run() in one invocation: the output
// must be one Chrome trace with a process per recording process plus
// the engine-events track.
func TestMultiInputMerge(t *testing.T) {
	clientPath, serverPath := spanFixture(t)
	events := traceFixture(t)
	out := filepath.Join(t.TempDir(), "chrome.json")
	if err := run([]string{"-o", out, clientPath, serverPath, events}, nil, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var recs []record
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatalf("output is not a JSON array of trace records: %v", err)
	}
	pids := map[int]bool{}
	names := map[string]bool{}
	for _, r := range recs {
		pids[r.Pid] = true
		names[r.Name] = true
	}
	if len(pids) < 3 {
		t.Errorf("got %d Perfetto processes, want ≥3 (client, chortled, engine events)", len(pids))
	}
	for _, want := range []string{"map", "attempt", "request", "solve"} {
		if !names[want] {
			t.Errorf("merged trace missing %q span", want)
		}
	}
}
