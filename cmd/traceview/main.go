// Command traceview converts a chortle JSONL event trace (the
// cmd/chortle -trace output) into the Chrome trace_event JSON format,
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// Usage:
//
//	traceview [-o out.json] [trace.jsonl]
//
// With no input file the trace is read from standard input; with no -o
// the Chrome trace is written to standard output. The conversion lays
// the pipeline's map bracket and phases out as nested spans, spreads
// overlapping per-tree DP solves across "solver lane" tracks (the lane
// count is the run's achieved solve concurrency), and marks memo hits,
// budget trips and degradations as instants.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"chortle"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("traceview", flag.ContinueOnError)
	out := fs.String("o", "", "output Chrome trace file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return fmt.Errorf("at most one input trace, got %d", fs.NArg())
	}

	in := stdin
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	events, err := chortle.ReadEventsJSONL(in)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("empty trace")
	}

	w := stdout
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		outFile = f
		w = f
	}
	if err := chortle.WriteChromeTrace(w, events); err != nil {
		if outFile != nil {
			outFile.Close()
		}
		return err
	}
	if outFile != nil {
		return outFile.Close()
	}
	return nil
}
