// Command traceview converts chortle JSONL traces into the Chrome
// trace_event JSON format, loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
//
// Usage:
//
//	traceview [-o out.json] [trace.jsonl ...]
//
// It accepts two kinds of input, sniffed per line, and any mix of them
// across any number of files:
//
//   - Mapper event traces (cmd/chortle -trace): laid out as the
//     pipeline's nested map/phase spans, with overlapping per-tree DP
//     solves spread across "solver lane" tracks and memo hits, budget
//     trips and degradations as instants.
//   - Span streams — chortled access logs (-access-log, whose embedded
//     span timelines are flattened) and client span files (cmd/chortle
//     -server-trace / client.Config.Spans): joined on their shared
//     trace IDs into one multi-process timeline, one Perfetto process
//     per recording process ("client", "chortled") and one thread
//     track per trace, so a request's retries, queue wait, and engine
//     phases line up on a single view.
//
// Passing both a server access log and the matching client span file
// is the intended use: the W3C traceparent propagation gives both
// sides the same trace IDs, and the merged view shows each attempt's
// client-side span directly above the server-side handling it caused.
//
// With no input file the trace is read from standard input; with no -o
// the Chrome trace is written to standard output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"chortle"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("traceview", flag.ContinueOnError)
	out := fs.String("o", "", "output Chrome trace file (default stdout)")
	version := fs.Bool("version", false, "print build identity and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		chortle.PrintVersion(stdout, "traceview")
		return nil
	}

	var events []chortle.Event
	var spans []chortle.Span
	readInto := func(name string, r io.Reader) error {
		ev, sp, err := chortle.ReadTraceJSONL(r)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		events = append(events, ev...)
		spans = append(spans, sp...)
		return nil
	}
	if fs.NArg() == 0 {
		if err := readInto("stdin", stdin); err != nil {
			return err
		}
	}
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = readInto(path, f)
		f.Close()
		if err != nil {
			return err
		}
	}
	if len(events) == 0 && len(spans) == 0 {
		return fmt.Errorf("empty trace")
	}

	w := stdout
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		outFile = f
		w = f
	}
	// Span input (even one span) selects the multi-process writer: the
	// events ride along as an extra "engine events" process. A pure
	// event trace keeps the original single-process solver-lane layout.
	var err error
	if len(spans) > 0 {
		err = chortle.WriteChromeTraceMulti(w, spans, events)
	} else {
		err = chortle.WriteChromeTrace(w, events)
	}
	if err != nil {
		if outFile != nil {
			outFile.Close()
		}
		return err
	}
	if outFile != nil {
		return outFile.Close()
	}
	return nil
}
