// Command mcnc emits the benchmark suite — the reconstruction of the
// twelve MCNC-89 circuits the paper evaluates on — as BLIF files.
//
// Usage:
//
//	mcnc -list                # show the suite
//	mcnc 9symml               # write 9symml (raw) to stdout
//	mcnc -opt -dir out/ all   # write all circuits, mini-MIS optimized
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"chortle"
	"chortle/internal/bench"
	"chortle/internal/blif"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the suite circuits")
		extended = flag.Bool("extended", false, "include the extended (non-paper) circuits in -list")
		optimize = flag.Bool("opt", false, "run the mini-MIS script before emitting")
		dir      = flag.String("dir", "", "write <circuit>.blif files into this directory instead of stdout")
	)
	flag.Parse()

	if *list {
		suites := bench.Suite()
		if *extended {
			suites = append(suites, bench.ExtendedSuite()...)
		}
		for _, c := range suites {
			nw := c.Build()
			s := nw.Stats()
			tag := "functional"
			if c.Synthetic {
				tag = "synthetic"
			}
			fmt.Printf("%-8s %-10s %4d inputs %4d outputs %5d gates depth %d\n",
				c.Name, tag, s.Inputs, s.Outputs, s.Gates, s.Depth)
		}
		return
	}

	names := flag.Args()
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "mcnc: name a circuit, 'all', or use -list")
		os.Exit(1)
	}
	if len(names) == 1 && names[0] == "all" {
		names = chortle.SuiteNames()
	}
	for _, name := range names {
		var nw *chortle.Network
		var err error
		if *optimize {
			nw, err = chortle.BenchmarkNetwork(name)
		} else {
			nw, err = chortle.RawBenchmarkNetwork(name)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcnc:", err)
			os.Exit(1)
		}
		w := os.Stdout
		if *dir != "" {
			f, err := os.Create(filepath.Join(*dir, name+".blif"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcnc:", err)
				os.Exit(1)
			}
			w = f
		}
		if err := blif.Write(w, nw); err != nil {
			fmt.Fprintln(os.Stderr, "mcnc:", err)
			os.Exit(1)
		}
		if w != os.Stdout {
			w.Close()
		}
	}
}
