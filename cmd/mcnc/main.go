// Command mcnc emits the benchmark suite — the reconstruction of the
// twelve MCNC-89 circuits the paper evaluates on — as BLIF files.
//
// Usage:
//
//	mcnc -list                # show the suite
//	mcnc 9symml               # write 9symml (raw) to stdout
//	mcnc -opt -dir out/ all   # write all circuits, mini-MIS optimized
//	mcnc -opt -map 4 -shared-cache all  # map the whole suite to 4-LUTs
//
// -map K maps each emitted circuit to K-input LUTs and writes the
// mapped circuit instead of the network; -shared-cache routes the whole
// batch through one cross-run shape cache (trees recurring across
// circuits are solved once) and prints the aggregate hit rate on
// stderr. The mapped circuits are byte-identical with the cache on or
// off.
//
// Like cmd/chortle, -debug-addr serves /metrics, /debug/vars and
// /debug/pprof while the command runs (useful when optimizing the whole
// suite), and -trace streams the command's own phase events — one
// map-start/phase-end/map-end bracket per circuit built — as JSON
// lines.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"chortle"
	"chortle/internal/bench"
	"chortle/internal/blif"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the suite circuits")
		extended = flag.Bool("extended", false, "include the extended (non-paper) circuits in -list")
		optimize = flag.Bool("opt", false, "run the mini-MIS script before emitting")
		dir      = flag.String("dir", "", "write <circuit>.blif files into this directory instead of stdout")
		debug    = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this host:port while running")
		trace    = flag.String("trace", "", "stream the command's phase events as JSON lines to this file")
		mapK     = flag.Int("map", 0, "map each circuit to K-input LUTs and emit the mapped circuit (0 = emit the network)")
		shared   = flag.Bool("shared-cache", false, "with -map, share one cross-run shape cache across the whole batch")
	)
	flag.Parse()

	var cache *chortle.SharedCache
	if *shared {
		cache = chortle.NewSharedCache(chortle.SharedCacheConfig{})
	}

	if *debug != "" {
		reg := chortle.NewMetricsRegistry()
		srv, err := chortle.ServeDebug(*debug, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcnc:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s\n", srv.Addr())
		// Shutdown is idempotent, so the deferred call is safe even if a
		// failure path already tore the server down.
		defer srv.Shutdown(context.Background())
	}
	var traceSink *chortle.JSONLObserver
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcnc:", err)
			os.Exit(1)
		}
		defer f.Close()
		traceSink = chortle.NewJSONLObserver(f)
	}

	if *list {
		suites := bench.Suite()
		if *extended {
			suites = append(suites, bench.ExtendedSuite()...)
		}
		for _, c := range suites {
			nw := c.Build()
			s := nw.Stats()
			tag := "functional"
			if c.Synthetic {
				tag = "synthetic"
			}
			fmt.Printf("%-8s %-10s %4d inputs %4d outputs %5d gates depth %d\n",
				c.Name, tag, s.Inputs, s.Outputs, s.Gates, s.Depth)
		}
		return
	}

	names := flag.Args()
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "mcnc: name a circuit, 'all', or use -list")
		os.Exit(1)
	}
	if len(names) == 1 && names[0] == "all" {
		names = chortle.SuiteNames()
	}
	var hits, misses int
	// emit streams the command's own phase timeline — one
	// map-start/phase-end/map-end bracket per circuit — when -trace is
	// active; a nil sink costs nothing.
	emit := func(e chortle.Event) {
		if traceSink != nil {
			e.Time = time.Now()
			traceSink.Observe(e)
		}
	}
	for _, name := range names {
		emit(chortle.Event{Kind: chortle.EventMapStart, Tree: name})
		t0 := time.Now()
		var nw *chortle.Network
		var err error
		if *optimize {
			nw, err = chortle.BenchmarkNetwork(name)
		} else {
			nw, err = chortle.RawBenchmarkNetwork(name)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcnc:", err)
			os.Exit(1)
		}
		emit(chortle.Event{Kind: chortle.EventPhaseEnd, Phase: "build",
			Tree: name, Units: int64(time.Since(t0))})
		t1 := time.Now()
		w := os.Stdout
		if *dir != "" {
			f, err := os.Create(filepath.Join(*dir, name+".blif"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcnc:", err)
				os.Exit(1)
			}
			w = f
		}
		if *mapK > 0 {
			opts := chortle.DefaultOptions(*mapK)
			opts.SharedCache = cache
			res, err := chortle.Map(nw, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mcnc: mapping %s: %v\n", name, err)
				os.Exit(1)
			}
			hits += res.CacheHits
			misses += res.CacheMisses
			fmt.Fprintf(os.Stderr, "%-8s %4d LUTs (K=%d)\n", name, res.LUTs, *mapK)
			if err := res.Circuit.WriteBLIF(w); err != nil {
				fmt.Fprintln(os.Stderr, "mcnc:", err)
				os.Exit(1)
			}
		} else if err := blif.Write(w, nw); err != nil {
			fmt.Fprintln(os.Stderr, "mcnc:", err)
			os.Exit(1)
		}
		if w != os.Stdout {
			w.Close()
		}
		emit(chortle.Event{Kind: chortle.EventPhaseEnd, Phase: "write",
			Tree: name, Units: int64(time.Since(t1))})
		emit(chortle.Event{Kind: chortle.EventMapEnd, N: nw.Stats().Gates})
	}
	if cache != nil {
		st := cache.Stats()
		rate := 0.0
		if hits+misses > 0 {
			rate = 100 * float64(hits) / float64(hits+misses)
		}
		fmt.Fprintf(os.Stderr, "shared cache: %d/%d shape hits (%.0f%%), %d entries, %d KiB resident\n",
			hits, hits+misses, rate, st.Entries, st.Bytes>>10)
	}
	if traceSink != nil {
		if err := traceSink.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "mcnc: writing %s: %v\n", *trace, err)
			os.Exit(1)
		}
	}
}
