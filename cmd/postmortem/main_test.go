package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chortle"
)

// writeBundle fabricates a minimal valid bundle the way chortled's
// dumper would: a flight ring with one access (panic-500), one
// decision, one note; metrics; build info; goroutine and heap stubs.
func writeBundle(t *testing.T) (string, chortle.TraceID) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "bundle-test-panic")
	if err := os.MkdirAll(filepath.Join(dir, "profiles"), 0o755); err != nil {
		t.Fatal(err)
	}

	rec := chortle.NewFlightRecorder(16, 0)
	rt := chortle.NewReqTrace("chortled", "request", chortle.TraceID{}, chortle.SpanID{}, 8, 64)
	trace := rt.TraceID()
	sp := rt.Start("solve")
	time.Sleep(time.Millisecond)
	sp.End()
	rec.RecordDecision(chortle.OverloadDecision{
		Trace: trace, Code: 500, Reason: chortle.ReasonPanic,
		Detail: "chaos: forced solve panic (X-Chaos-Panic)",
	})
	rec.RecordAccess(chortle.AccessRecord{
		Time: time.Now(), Trace: trace, Method: "POST", Path: "/map",
		Code: 500, Outcome: "500", Decision: chortle.ReasonPanic,
		Circuit: `<script>alert("pwn")</script>`, Engine: "tree", K: 4,
		TotalNS: int64(2 * time.Millisecond), Spans: rt.Finish(chortle.SpanID{}),
	})
	rec.RecordNote("postmortem dump triggered: panic")

	ring, err := os.Create(filepath.Join(dir, "ring.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.WriteJSONL(ring); err != nil {
		t.Fatal(err)
	}
	ring.Close()

	info, _ := json.Marshal(map[string]any{
		"reason": "panic", "time": time.Now(), "version": "test",
		"goversion": "go-test", "engines": "tree,mis,cut",
		"pid": 1234, "uptime_seconds": 42.0,
	})
	for name, body := range map[string][]byte{
		"buildinfo.json": info,
		"metrics.prom":   []byte("# HELP chortled_requests_total Mapping requests by outcome.\nchortled_requests_total{code=\"500\"} 1\n"),
		"goroutines.txt": []byte("goroutine 1 [running]:\nmain.main()\n"),
		"heap.pprof":     []byte{0x1f, 0x8b, 0x08, 0x00},
		"slo.json": []byte(`[{"slo":"availability","kind":"availability","target":99.9,
			"budget":0.001,"good":10,"bad":5,
			"windows":[{"window":"5m","burn_rate":33.2},{"window":"1h","burn_rate":12.1}],
			"status":"critical"}]`),
	} {
		if err := os.WriteFile(filepath.Join(dir, name), body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir, trace
}

func TestValidatesAndSummarizesBundle(t *testing.T) {
	dir, trace := writeBundle(t)
	var out strings.Builder
	if err := run([]string{dir}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"reason    panic",
		"500=1",
		chortle.ReasonPanic,
		trace.String(),
		"availability: critical",
		"burn[5m]=33.20",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("summary missing %q:\n%s", want, text)
		}
	}
}

func TestRendersHTMLEscaped(t *testing.T) {
	dir, trace := writeBundle(t)
	htmlPath := filepath.Join(t.TempDir(), "report.html")
	var out strings.Builder
	if err := run([]string{"-html", htmlPath, dir}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	body, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	page := string(body)
	if !strings.Contains(page, trace.String()) {
		t.Errorf("report missing trace ID %s", trace)
	}
	// The circuit name is request-controlled; it must arrive escaped.
	if strings.Contains(page, `<script>alert`) {
		t.Errorf("report contains unescaped request-controlled markup")
	}
	if !strings.Contains(page, "&lt;script&gt;") {
		t.Errorf("report dropped the circuit name instead of escaping it")
	}
	if !strings.Contains(page, "critical") {
		t.Errorf("report missing SLO status")
	}
}

func TestRendersPerfettoTrace(t *testing.T) {
	dir, trace := writeBundle(t)
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var out strings.Builder
	if err := run([]string{"-trace", tracePath, dir}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	body, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	// WriteChromeTraceMulti emits a JSON array of trace_event records.
	var parsed []map[string]any
	if err := json.Unmarshal(body, &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed) == 0 {
		t.Fatal("trace has no events")
	}
	if !strings.Contains(string(body), trace.String()) {
		t.Errorf("trace does not reference the request's trace ID")
	}
}

func TestRejectsInvalidBundles(t *testing.T) {
	var out strings.Builder

	// A missing directory is not a bundle.
	if err := run([]string{filepath.Join(t.TempDir(), "nope")}, &out); err == nil {
		t.Error("missing bundle accepted")
	}

	// A directory missing required files is not a bundle.
	empty := t.TempDir()
	if err := run([]string{empty}, &out); err == nil {
		t.Error("empty dir accepted as bundle")
	}

	// A corrupt ring is not a bundle.
	dir, _ := writeBundle(t)
	if err := os.WriteFile(filepath.Join(dir, "ring.jsonl"), []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{dir}, &out); err == nil {
		t.Error("corrupt ring accepted")
	}
}
