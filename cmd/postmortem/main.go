// Command chortle-postmortem validates and renders a chortled
// postmortem bundle — the directory the server writes when an incident
// fires (panic-500, memory-valve engagement, snapshot rejection, SLO
// burn, SIGQUIT).
//
// Usage:
//
//	chortle-postmortem [-html report.html] [-trace trace.json] BUNDLE_DIR
//
// With no output flags it validates the bundle and prints a one-screen
// summary: what triggered the dump, the build that wrote it, how the
// ring's requests ended, and every overload decision and note in order.
// -html renders the same view as a self-contained HTML file (inline CSS
// only — it must open from a laptop with no server running). -trace
// converts the ring's request span timelines into a Chrome/Perfetto
// trace: load it in https://ui.perfetto.dev to scrub through the
// seconds before the incident.
//
// Exit status is non-zero when the bundle is missing required files or
// any of them fail to parse — a bundle is written atomically, so a
// partial one means it is not a bundle at all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"html/template"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"chortle"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chortle-postmortem:", err)
		os.Exit(1)
	}
}

// bundle is one parsed postmortem directory.
type bundle struct {
	Dir       string
	Info      bundleInfo
	Entries   []chortle.FlightEntry
	SLOs      []chortle.SLOReport // nil when the server declared none
	Metrics   string
	Profiles  []string // profile files present under profiles/
	Goroutine int64    // size of goroutines.txt
	HeapSize  int64    // size of heap.pprof
}

// bundleInfo mirrors the buildinfo.json the server writes.
type bundleInfo struct {
	Reason        string    `json:"reason"`
	Time          time.Time `json:"time"`
	Version       string    `json:"version"`
	GoVersion     string    `json:"goversion"`
	Engines       string    `json:"engines"`
	Flags         string    `json:"flags"`
	PID           int       `json:"pid"`
	UptimeSeconds float64   `json:"uptime_seconds"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("chortle-postmortem", flag.ContinueOnError)
	htmlOut := fs.String("html", "", "render a self-contained HTML report to this file")
	traceOut := fs.String("trace", "", "write the ring's span timelines as a Chrome/Perfetto trace to this file")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		chortle.PrintVersion(stdout, "chortle-postmortem")
		return nil
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: chortle-postmortem [-html OUT] [-trace OUT] BUNDLE_DIR")
	}

	b, err := readBundle(fs.Arg(0))
	if err != nil {
		return err
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, b); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace written to %s\n", *traceOut)
	}
	if *htmlOut != "" {
		if err := writeHTML(*htmlOut, b); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "report written to %s\n", *htmlOut)
	}
	if *traceOut == "" && *htmlOut == "" {
		printSummary(stdout, b)
	}
	return nil
}

// readBundle validates the bundle's required files and parses what the
// renderers need. Anything missing or malformed is an error: bundles
// are written atomically, so damage means this is not a bundle.
func readBundle(dir string) (*bundle, error) {
	b := &bundle{Dir: dir}

	f, err := os.Open(filepath.Join(dir, "ring.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("not a bundle: %w", err)
	}
	b.Entries, err = chortle.ReadFlightJSONL(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("ring.jsonl: %w", err)
	}

	bi, err := os.ReadFile(filepath.Join(dir, "buildinfo.json"))
	if err != nil {
		return nil, fmt.Errorf("not a bundle: %w", err)
	}
	if err := json.Unmarshal(bi, &b.Info); err != nil {
		return nil, fmt.Errorf("buildinfo.json: %w", err)
	}

	mp, err := os.ReadFile(filepath.Join(dir, "metrics.prom"))
	if err != nil {
		return nil, fmt.Errorf("not a bundle: %w", err)
	}
	b.Metrics = string(mp)

	for name, dst := range map[string]*int64{
		"goroutines.txt": &b.Goroutine,
		"heap.pprof":     &b.HeapSize,
	} {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("not a bundle: %w", err)
		}
		*dst = st.Size()
	}

	// Optional pieces: SLO extract and the continuous-profiler ring.
	if sj, err := os.ReadFile(filepath.Join(dir, "slo.json")); err == nil {
		if err := json.Unmarshal(sj, &b.SLOs); err != nil {
			return nil, fmt.Errorf("slo.json: %w", err)
		}
	}
	if ents, err := os.ReadDir(filepath.Join(dir, "profiles")); err == nil {
		for _, e := range ents {
			if !e.IsDir() {
				b.Profiles = append(b.Profiles, e.Name())
			}
		}
		sort.Strings(b.Profiles)
	}
	return b, nil
}

// writeTrace converts every access record's span timeline into one
// Chrome/Perfetto trace file.
func writeTrace(path string, b *bundle) error {
	var spans []chortle.Span
	for _, e := range b.Entries {
		if e.Access != nil {
			spans = append(spans, e.Access.Spans...)
		}
	}
	if len(spans) == 0 {
		return fmt.Errorf("ring has no request spans to render")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := chortle.WriteChromeTraceMulti(f, spans, nil); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// summary aggregates the ring for both the text and HTML renderers.
type summary struct {
	Info      bundleInfo
	Accesses  int
	Outcomes  map[string]int
	Decisions []chortle.FlightEntry
	Notes     []chortle.FlightEntry
	Recent    []chortle.FlightEntry // access entries, oldest first
	SLOs      []chortle.SLOReport
	Profiles  []string
	Span      [2]time.Time // ring coverage: first and last entry
}

func summarize(b *bundle) summary {
	s := summary{Info: b.Info, Outcomes: map[string]int{}, SLOs: b.SLOs, Profiles: b.Profiles}
	for _, e := range b.Entries {
		if s.Span[0].IsZero() || e.Time.Before(s.Span[0]) {
			s.Span[0] = e.Time
		}
		if e.Time.After(s.Span[1]) {
			s.Span[1] = e.Time
		}
		switch e.Kind {
		case chortle.FlightAccess:
			s.Accesses++
			s.Outcomes[e.Access.Outcome]++
			s.Recent = append(s.Recent, e)
		case chortle.FlightDecision:
			s.Decisions = append(s.Decisions, e)
		case chortle.FlightNote:
			s.Notes = append(s.Notes, e)
		}
	}
	return s
}

func printSummary(w io.Writer, b *bundle) {
	s := summarize(b)
	fmt.Fprintf(w, "bundle    %s\n", b.Dir)
	fmt.Fprintf(w, "reason    %s at %s\n", s.Info.Reason, s.Info.Time.Format(time.RFC3339))
	fmt.Fprintf(w, "build     %s %s engines=%s (pid %d, up %.0fs)\n",
		s.Info.Version, s.Info.GoVersion, s.Info.Engines, s.Info.PID, s.Info.UptimeSeconds)
	if s.Info.Flags != "" {
		fmt.Fprintf(w, "flags     %s\n", s.Info.Flags)
	}
	if !s.Span[0].IsZero() {
		fmt.Fprintf(w, "ring      %d entries covering %s\n",
			len(b.Entries), s.Span[1].Sub(s.Span[0]).Round(time.Millisecond))
	}
	outs := make([]string, 0, len(s.Outcomes))
	for o := range s.Outcomes {
		outs = append(outs, o)
	}
	sort.Strings(outs)
	fmt.Fprintf(w, "requests  %d:", s.Accesses)
	for _, o := range outs {
		fmt.Fprintf(w, " %s=%d", o, s.Outcomes[o])
	}
	fmt.Fprintln(w)
	for _, r := range s.SLOs {
		fmt.Fprintf(w, "slo       %s: %s (good=%d bad=%d", r.Name, r.Status, r.Good, r.Bad)
		for _, win := range r.Windows {
			fmt.Fprintf(w, " burn[%s]=%.2f", win.Window, win.Burn)
		}
		fmt.Fprintln(w, ")")
	}
	if len(s.Decisions) > 0 {
		fmt.Fprintf(w, "decisions %d:\n", len(s.Decisions))
		for _, e := range s.Decisions {
			d := e.Decision
			fmt.Fprintf(w, "  %s  %d %-16s %s %s\n",
				e.Time.Format("15:04:05.000"), d.Code, d.Reason, d.Trace, d.Detail)
		}
	}
	if len(s.Notes) > 0 {
		fmt.Fprintf(w, "notes     %d:\n", len(s.Notes))
		for _, e := range s.Notes {
			fmt.Fprintf(w, "  %s  %s\n", e.Time.Format("15:04:05.000"), e.Note)
		}
	}
	if len(s.Profiles) > 0 {
		fmt.Fprintf(w, "profiles  %d files under %s\n", len(s.Profiles), filepath.Join(b.Dir, "profiles"))
	}
}

func writeHTML(path string, b *bundle) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reportPage.Execute(f, summarize(b)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// reportPage is the self-contained HTML report. Everything request-
// controlled (circuit names, error strings, chaos panic details) flows
// through html/template's auto-escaping.
var reportPage = template.Must(template.New("report").Funcs(template.FuncMap{
	"ms":    func(ns int64) string { return fmt.Sprintf("%.2f", float64(ns)/1e6) },
	"clock": func(t time.Time) string { return t.Format("15:04:05.000") },
	"burn":  func(f float64) string { return fmt.Sprintf("%.2f", f) },
}).Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>chortled postmortem: {{.Info.Reason}}</title>
<style>
body{font-family:system-ui,sans-serif;margin:2em;color:#222;max-width:75em}
h1{font-size:1.3em} h2{font-size:1.1em;margin-top:1.5em}
table{border-collapse:collapse;width:100%;font-size:0.85em}
th,td{border:1px solid #ddd;padding:4px 8px;text-align:left}
th{background:#f5f5f5}
.mono{font-family:ui-monospace,monospace}
.out-2xx{color:#2a7} .out-429{color:#b80} .out-500{color:#c22}
.out-503{color:#b80} .out-504{color:#b80} .out-4xx{color:#c22}
.out-abandoned{color:#888}
.st-ok{color:#2a7} .st-warn{color:#b80} .st-critical{color:#c22;font-weight:bold}
small{color:#888}
</style></head><body>
<h1>chortled postmortem — {{.Info.Reason}}</h1>
<p>
{{.Info.Time.Format "2006-01-02 15:04:05 MST"}} ·
build <span class="mono">{{.Info.Version}}</span> {{.Info.GoVersion}} engines={{.Info.Engines}} ·
pid {{.Info.PID}}, up {{printf "%.0f" .Info.UptimeSeconds}}s
{{if .Info.Flags}}<br><small class="mono">{{.Info.Flags}}</small>{{end}}
</p>
{{if .SLOs}}<h2>SLOs at dump time</h2>
<table><tr><th>objective</th><th>status</th><th>good</th><th>bad</th><th>burn by window</th></tr>
{{range .SLOs}}<tr><td>{{.Name}}</td><td class="st-{{.Status}}">{{.Status}}</td>
<td>{{.Good}}</td><td>{{.Bad}}</td>
<td>{{range .Windows}}{{.Window}}: {{burn .Burn}} {{end}}</td></tr>{{end}}
</table>{{end}}
{{if .Decisions}}<h2>Overload decisions</h2>
<table><tr><th>time</th><th>code</th><th>reason</th><th>trace</th><th>engine</th><th>detail</th><th>wait ms</th><th>remaining ms</th><th>p95 ms</th></tr>
{{range .Decisions}}{{with .Decision}}<tr>
<td>{{clock .Time}}</td><td>{{.Code}}</td><td>{{.Reason}}</td>
<td class="mono">{{.Trace}}</td><td>{{.Engine}}</td><td>{{.Detail}}</td>
<td>{{if .WaitNS}}{{ms .WaitNS}}{{end}}</td>
<td>{{if .RemainingNS}}{{ms .RemainingNS}}{{end}}</td>
<td>{{if .P95NS}}{{ms .P95NS}}{{end}}</td>
</tr>{{end}}{{end}}
</table>{{end}}
{{if .Notes}}<h2>Lifecycle notes</h2>
<table>{{range .Notes}}<tr><td>{{clock .Time}}</td><td>{{.Note}}</td></tr>{{end}}</table>{{end}}
<h2>Requests in the ring ({{.Accesses}})</h2>
<table><tr><th>time</th><th>trace</th><th>outcome</th><th>decision</th><th>circuit</th><th>engine</th><th>total ms</th><th>queue ms</th><th>solve ms</th><th>error</th></tr>
{{range .Recent}}{{with .Access}}<tr>
<td>{{clock .Time}}</td><td class="mono">{{.Trace}}</td>
<td class="out-{{.Outcome}}">{{.Outcome}} ({{.Code}})</td>
<td>{{.Decision}}</td><td>{{.Circuit}}</td><td>{{.Engine}}</td>
<td>{{ms .TotalNS}}</td><td>{{ms .QueueNS}}</td><td>{{ms .SolveNS}}</td>
<td><small>{{.Err}}</small></td>
</tr>{{end}}{{end}}
</table>
{{if .Profiles}}<h2>Continuous profiles in bundle</h2>
<p class="mono">{{range .Profiles}}{{.}}<br>{{end}}</p>{{end}}
</body></html>`))
