// Command chortled is a long-running Chortle mapping server: it keeps
// one cross-run shape cache warm across HTTP requests, so repeated
// mappings of similar networks run at warm-cache speed.
//
// Usage:
//
//	chortled [-addr :8080] [-debug-addr :6060] [-k 4]
//	         [-cache-entries N] [-cache-mb MB] [-cache-shards N]
//	         [-max-inflight N] [-queue N] [-shutdown-timeout 10s]
//
// Endpoints:
//
//	POST /map      raw BLIF body (?k=4&budget_work_units=N&deadline_ms=N)
//	               or JSON {"blif","k","budget_work_units","deadline_ms"};
//	               responds with the mapped circuit and cache statistics
//	GET  /healthz  liveness; 503 once draining
//	GET  /stats    shared-cache statistics as JSON
//	GET  /metrics  Prometheus text (request series, mapper phase series,
//	               chortle_shape_cache_* gauges)
//
// At most -max-inflight requests map concurrently; -queue more wait for
// a slot and anything beyond that is refused with 429. SIGINT/SIGTERM
// starts a graceful drain: new work is refused, in-flight mappings run
// to completion (up to -shutdown-timeout), then the process exits.
// -debug-addr additionally serves the pprof/expvar debug mux sharing
// the same registry. The bound address is printed on stdout ("listening
// on ...") so scripts can use -addr :0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chortle"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "host:port to serve on (:0 picks a free port)")
		debugAddr    = flag.String("debug-addr", "", "also serve /debug/pprof and /debug/vars on this host:port")
		defaultK     = flag.Int("k", 4, "default lookup table input count when a request names none")
		cacheEntries = flag.Int("cache-entries", 0, "shape cache entry bound (0 = default 65536)")
		cacheMB      = flag.Int("cache-mb", 0, "shape cache byte bound in MiB (0 = default 256)")
		cacheShards  = flag.Int("cache-shards", 0, "shape cache shard count, rounded to a power of two (0 = default 16)")
		maxInflight  = flag.Int("max-inflight", 4, "mapping requests served concurrently")
		queue        = flag.Int("queue", 16, "requests allowed to wait for a slot before 429")
		drainWait    = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight mappings on SIGINT/SIGTERM")
	)
	flag.Parse()

	reg := chortle.NewMetricsRegistry()
	cache := chortle.NewSharedCache(chortle.SharedCacheConfig{
		Shards:     *cacheShards,
		MaxEntries: *cacheEntries,
		MaxBytes:   int64(*cacheMB) << 20,
	})
	srv, m := newMapServer(serverConfig{
		cache:       cache,
		reg:         reg,
		maxInflight: *maxInflight,
		maxQueue:    *queue,
		defaultK:    *defaultK,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{
		Handler:           srv.handler(m),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if *debugAddr != "" {
		dbg, err := chortle.ServeDebug(*debugAddr, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s\n", dbg.Addr())
		defer dbg.Shutdown(context.Background())
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Printf("listening on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "chortled: %s, draining (up to %s)\n", s, *drainWait)
	}

	srv.drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fatal(fmt.Errorf("drain incomplete: %w", err))
	}
	st := cache.Stats()
	fmt.Fprintf(os.Stderr, "chortled: drained; cache hits=%d misses=%d entries=%d bytes=%d\n",
		st.Hits, st.Misses, st.Entries, st.Bytes)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chortled:", err)
	os.Exit(1)
}
