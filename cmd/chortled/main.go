// Command chortled is a long-running Chortle mapping server: it keeps
// one cross-run shape cache warm across HTTP requests, so repeated
// mappings of similar networks run at warm-cache speed.
//
// Usage:
//
//	chortled [-addr :8080] [-debug-addr :6060] [-k 4]
//	         [-cache-entries N] [-cache-mb MB] [-cache-shards N]
//	         [-max-inflight N] [-queue N] [-drain-timeout 10s]
//	         [-cache-snapshot PATH] [-snapshot-interval 5m]
//	         [-mem-watermark-mb MB] [-chaos SEED]
//	         [-access-log PATH] [-request-ring N]
//
// Endpoints:
//
//	POST /map      raw BLIF body (?k=4&budget_work_units=N&deadline_ms=N)
//	               or JSON {"blif","k","budget_work_units","deadline_ms"};
//	               responds with the mapped circuit and cache statistics
//	GET  /healthz  liveness; 503 once draining
//	GET  /stats    shared-cache statistics plus a per-engine request
//	               breakdown (outcome classes, solve p50/p95) as JSON
//	GET  /metrics  Prometheus text (request series, mapper phase series,
//	               chortle_shape_cache_* gauges); OpenMetrics with
//	               trace-ID exemplars when Accept asks for it
//	GET  /debug/requests   live in-flight table plus a bounded ring of
//	               recent requests with span timelines (?format=html for
//	               a self-contained view)
//
// Every request is traced: the trace ID arrives in a W3C traceparent
// header (the client package sends one) or is generated at admission,
// and is echoed in the X-Trace-Id response header and the response
// body. -access-log streams one JSON line per finished request — trace
// ID, engine, outcome class, queue/solve/write timings, cache hits —
// with the request's span timeline embedded; feed the log (optionally
// merged with client-side -trace-out spans) to chortle-traceview for a
// multi-process Perfetto timeline. -request-ring bounds the
// /debug/requests recent ring (default 64).
//
// At most -max-inflight requests map concurrently; -queue more wait for
// a slot and anything beyond that is refused with 429 (every 429/503
// carries Retry-After). Requests carrying deadline_ms are re-checked on
// dequeue: an expired deadline answers 504 without burning the slot,
// and one that cannot cover the observed p95 solve time is refused with
// 503. A panicking request becomes a 500 plus an incident log, never a
// dead server.
//
// -cache-snapshot persists the shape cache: restored (if valid) at
// boot, rewritten atomically every -snapshot-interval and once more at
// drain. A corrupted or incompatible snapshot is rejected wholesale
// (counted as chortle_snapshot_rejected) and the server boots cold.
//
// -mem-watermark-mb engages a memory-pressure valve: above the
// watermark the server sheds half the cache and stops queueing until
// the heap recedes. -chaos SEED injects seeded faults (latency spikes,
// solve panics, forced evictions, snapshot I/O errors) for resilience
// testing — never use it in production.
//
// SIGINT/SIGTERM starts a staged drain: new work is refused, in-flight
// mappings run to completion up to -drain-timeout, then remaining
// connections are force-closed; the in-flight count is logged at each
// stage. -debug-addr additionally serves the pprof/expvar debug mux
// sharing the same registry. The bound address is printed on stdout
// ("listening on ...") so scripts can use -addr :0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"chortle"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "host:port to serve on (:0 picks a free port)")
		debugAddr    = flag.String("debug-addr", "", "also serve /debug/pprof and /debug/vars on this host:port")
		defaultK     = flag.Int("k", 4, "default lookup table input count when a request names none")
		cacheEntries = flag.Int("cache-entries", 0, "shape cache entry bound (0 = default 65536)")
		cacheMB      = flag.Int("cache-mb", 0, "shape cache byte bound in MiB (0 = default 256)")
		cacheShards  = flag.Int("cache-shards", 0, "shape cache shard count, rounded to a power of two (0 = default 16)")
		maxInflight  = flag.Int("max-inflight", 4, "mapping requests served concurrently")
		queue        = flag.Int("queue", 16, "requests allowed to wait for a slot before 429")
		drainWait    = flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight mappings on SIGINT/SIGTERM before force-close")
		snapPath     = flag.String("cache-snapshot", "", "persist the shape cache to this file (restore at boot, rewrite periodically and at drain)")
		snapEvery    = flag.Duration("snapshot-interval", 5*time.Minute, "how often to rewrite -cache-snapshot")
		memMB        = flag.Int64("mem-watermark-mb", 0, "live-heap watermark in MiB for the memory-pressure valve (0 = off)")
		chaosSeed    = flag.Int64("chaos", 0, "inject seeded faults for resilience testing (0 = off; never use in production)")
		accessPath   = flag.String("access-log", "", "append one JSON line per finished request (trace ID, outcome, timings, spans) to this file; - for stdout")
		requestRing  = flag.Int("request-ring", 0, "recent requests retained by /debug/requests (0 = default 64)")
		pmDir        = flag.String("postmortem-dir", "", "write postmortem bundles (flight ring, metrics, goroutines, heap, build info) to this directory on panic-500, memory-valve engagement, snapshot rejection, SLO burn, or SIGQUIT")
		flightCap    = flag.Int("flight-ring", 0, "flight recorder ring capacity in entries (0 = default 4096)")
		flightAge    = flag.Duration("flight-retention", 0, "drop flight-ring entries older than this at snapshot time (0 = capacity-bounded only)")
		sloSpec      = flag.String("slo", "", `declared SLOs, e.g. "availability=99.9,p95_solve_ms=250"; evaluated as multi-window burn rates`)
		sloEvery     = flag.Duration("slo-eval", 10*time.Second, "SLO burn-rate evaluation interval")
		profEvery    = flag.Duration("profile-interval", 0, "capture a CPU+heap profile set this often into <postmortem-dir>/profiles (0 = off; requires -postmortem-dir)")
		showVersion  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		chortle.PrintVersion(os.Stdout, "chortled")
		return
	}

	logf := func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }

	var accessLog *accessLogger
	if *accessPath == "-" {
		accessLog = newAccessLogger(os.Stdout)
	} else if *accessPath != "" {
		f, err := os.OpenFile(*accessPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		accessLog = newAccessLogger(f)
	}

	reg := chortle.NewMetricsRegistry()
	chortle.RegisterBuildInfo(reg, "chortled_build_info")
	cache := chortle.NewSharedCache(chortle.SharedCacheConfig{
		Shards:     *cacheShards,
		MaxEntries: *cacheEntries,
		MaxBytes:   int64(*cacheMB) << 20,
	})
	var chaos *chaosInjector
	if *chaosSeed != 0 {
		chaos = newChaosInjector(*chaosSeed, cache, reg)
		logf("chortled: CHAOS MODE (seed %d): injecting faults on purpose", *chaosSeed)
	}

	// The flight recorder is always on: its cost is one ring slot per
	// event, and the first question after any incident is "what was
	// happening right before".
	recorder := chortle.NewFlightRecorder(*flightCap, *flightAge)
	recorder.RecordNote("chortled starting: " + chortle.BuildVersion())

	var dump *dumper
	var prof *profiler
	if *pmDir != "" {
		if err := os.MkdirAll(*pmDir, 0o755); err != nil {
			fatal(err)
		}
		dump = newDumper(*pmDir, recorder, reg, logf)
		dump.flags = strings.Join(os.Args[1:], " ")
	}

	var slo *chortle.SLOWatchdog
	if *sloSpec != "" {
		slos, err := chortle.ParseSLOs(*sloSpec)
		if err != nil {
			fatal(err)
		}
		slo = chortle.NewSLOWatchdog(slos, reg, chortle.SLOConfig{
			Logf: logf,
			// A burn-triggered dump catches the offending window while
			// it is still in the flight ring.
			OnChange: func(status chortle.SLOStatus, _ []chortle.SLOReport) {
				recorder.RecordNote("SLO status now " + status.String())
				if status == chortle.SLOCritical {
					dump.trigger("slo-burn")
				}
			},
		})
		dump.setSLO(slo)
	}

	srv, m := newMapServer(serverConfig{
		cache:        cache,
		reg:          reg,
		maxInflight:  *maxInflight,
		maxQueue:     *queue,
		defaultK:     *defaultK,
		memWatermark: *memMB << 20,
		chaos:        chaos,
		logf:         logf,
		accessLog:    accessLog,
		requestRing:  *requestRing,
		recorder:     recorder,
		slo:          slo,
		dumper:       dump,
	})

	bg, stopBg := context.WithCancel(context.Background())
	defer stopBg()

	if *profEvery > 0 {
		if *pmDir == "" {
			fatal(fmt.Errorf("-profile-interval requires -postmortem-dir (the profile ring lives under it)"))
		}
		prof = newProfiler(filepath.Join(*pmDir, "profiles"), *profEvery,
			srv.requests.activeTraces, reg, logf)
		dump.prof = prof
		srv.cfg.profiler = prof
		go prof.run(bg.Done())
	}
	if slo != nil {
		go slo.Run(bg.Done(), *sloEvery)
	}

	var snap *snapshotter
	if *snapPath != "" {
		snap = newSnapshotter(*snapPath, cache, chaos, m, reg, logf)
		snap.onReject = func(detail string) {
			recorder.RecordNote("cache snapshot rejected: " + detail)
			dump.trigger("snapshot-rejected")
		}
		snap.restore()
		go snap.loop(bg, *snapEvery)
	}
	if *memMB > 0 {
		go srv.runMemValve(bg, m, time.Second)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{
		Handler:           srv.handler(m),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if *debugAddr != "" {
		dbg, err := chortle.ServeDebug(*debugAddr, reg)
		if err != nil {
			fatal(err)
		}
		logf("debug server on http://%s", dbg.Addr())
		defer dbg.Shutdown(context.Background())
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Printf("listening on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if dump != nil {
		// SIGQUIT becomes "write a bundle and keep serving" — the
		// operator's on-demand black-box pull. Only claimed when a
		// postmortem dir exists, so the default stack-dump-and-exit
		// behavior survives otherwise.
		signal.Notify(sig, syscall.SIGQUIT)
	}
wait:
	for {
		select {
		case err := <-errc:
			fatal(err)
		case s := <-sig:
			if s == syscall.SIGQUIT {
				logf("chortled: SIGQUIT: writing postmortem bundle")
				recorder.RecordNote("SIGQUIT received")
				dump.trigger("sigquit")
				continue
			}
			logf("chortled: %s: drain starting (%d in flight, %d queued; up to %s)",
				s, srv.inflight.Load(), srv.queued.Load(), *drainWait)
			break wait
		}
	}

	// Staged drain: refuse new work, let in-flight mappings finish
	// within the grace period, then force-close whatever remains so the
	// process always exits by -drain-timeout (plus a final snapshot).
	srv.drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		logf("chortled: drain deadline hit with %d still in flight; force-closing: %v",
			srv.inflight.Load(), err)
		hs.Close()
	} else {
		logf("chortled: drain complete (0 in flight)")
	}
	stopBg()
	if snap != nil {
		if err := snap.write(); err == nil {
			logf("chortled: final snapshot written to %s", *snapPath)
		}
	}
	st := cache.Stats()
	logf("chortled: drained; cache hits=%d misses=%d entries=%d bytes=%d",
		st.Hits, st.Misses, st.Entries, st.Bytes)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chortled:", err)
	os.Exit(1)
}
