package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"chortle"
	"chortle/internal/buildinfo"
)

// The postmortem dumper turns the flight recorder's ring into a
// self-contained bundle on disk the moment an incident fires — a
// panic-500, a memory-valve engagement, a rejected snapshot, an SLO
// burn, or an operator's SIGQUIT. A bundle is one directory:
//
//	bundle-<stamp>-<reason>/
//	  ring.jsonl      the flight recorder's retained window
//	  metrics.prom    full Prometheus exposition at dump time
//	  slo.json        SLO watchdog reports (when -slo is set)
//	  goroutines.txt  full goroutine dump (debug=2)
//	  heap.pprof      heap profile
//	  buildinfo.json  reason, build identity, flags, uptime, pid
//	  profiles/       the continuous profiler's on-disk ring (if any)
//
// The directory is assembled under a dot-prefixed temp name and renamed
// into place, so a bundle either exists completely or not at all —
// cmd/postmortem never sees a half-written one. Dumps are debounced
// (minInterval) so a panic storm produces one bundle per window, not a
// disk full of them; every trigger, taken or debounced, is noted in the
// ring itself.
type dumper struct {
	dir         string
	rec         *chortle.FlightRecorder
	reg         *chortle.MetricsRegistry
	slo         *chortle.SLOWatchdog
	prof        *profiler // nil without -profile-interval
	logf        func(format string, args ...any)
	minInterval time.Duration
	flags       string // rendered command line for buildinfo.json
	started     time.Time

	dumps     interface{ Inc() }
	dumpErrs  interface{ Inc() }
	lastUnix  interface{ Set(float64) }
	debounced interface{ Inc() }

	mu   sync.Mutex
	last time.Time
}

func newDumper(dir string, rec *chortle.FlightRecorder, reg *chortle.MetricsRegistry,
	logf func(string, ...any)) *dumper {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &dumper{
		dir:         dir,
		rec:         rec,
		reg:         reg,
		logf:        logf,
		minInterval: 30 * time.Second,
		started:     time.Now(),
		dumps: reg.Counter("chortled_postmortem_dumps_total",
			"Postmortem bundles written."),
		dumpErrs: reg.Counter("chortled_postmortem_dump_errors_total",
			"Postmortem bundle writes that failed."),
		debounced: reg.Counter("chortled_postmortem_debounced_total",
			"Dump triggers suppressed by the debounce window."),
		lastUnix: reg.Gauge("chortled_postmortem_last_unixtime",
			"Unix time of the last successful bundle write."),
	}
}

// setSLO attaches the watchdog whose reports land in slo.json. Nil
// dumpers discard.
func (d *dumper) setSLO(w *chortle.SLOWatchdog) {
	if d == nil {
		return
	}
	d.slo = w
}

// trigger requests a dump asynchronously. The ring note lands before
// the goroutine is spawned, so the bundle always contains its own
// trigger. Nil dumpers (no -postmortem-dir) discard.
func (d *dumper) trigger(reason string) {
	if d == nil {
		return
	}
	d.mu.Lock()
	if !d.last.IsZero() && time.Since(d.last) < d.minInterval {
		d.mu.Unlock()
		d.debounced.Inc()
		return
	}
	d.last = time.Now()
	d.mu.Unlock()
	d.rec.RecordNote("postmortem dump triggered: " + reason)
	go func() {
		if _, err := d.dump(reason); err != nil {
			d.dumpErrs.Inc()
			d.logf("chortled: postmortem dump (%s) failed: %v", reason, err)
		}
	}()
}

// bundleBuildInfo is the buildinfo.json body.
type bundleBuildInfo struct {
	Reason        string    `json:"reason"`
	Time          time.Time `json:"time"`
	Version       string    `json:"version"`
	GoVersion     string    `json:"goversion"`
	Engines       string    `json:"engines"`
	Flags         string    `json:"flags,omitempty"`
	PID           int       `json:"pid"`
	UptimeSeconds float64   `json:"uptime_seconds"`
}

// dump writes one bundle synchronously and returns its directory.
func (d *dumper) dump(reason string) (string, error) {
	stamp := time.Now().UTC().Format("20060102T150405.000")
	stamp = fmt.Sprintf("%s-%s", stamp, sanitizeReason(reason))
	tmp := filepath.Join(d.dir, ".tmp-bundle-"+stamp)
	final := filepath.Join(d.dir, "bundle-"+stamp)
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return "", err
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename

	if err := d.writeFile(tmp, "ring.jsonl", func(f *os.File) error {
		_, err := d.rec.WriteJSONL(f)
		return err
	}); err != nil {
		return "", err
	}
	if err := d.writeFile(tmp, "metrics.prom", func(f *os.File) error {
		return d.reg.WritePrometheus(f)
	}); err != nil {
		return "", err
	}
	if d.slo != nil {
		if err := d.writeFile(tmp, "slo.json", func(f *os.File) error {
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			return enc.Encode(d.slo.Report())
		}); err != nil {
			return "", err
		}
	}
	if err := d.writeFile(tmp, "goroutines.txt", func(f *os.File) error {
		return pprof.Lookup("goroutine").WriteTo(f, 2)
	}); err != nil {
		return "", err
	}
	if err := d.writeFile(tmp, "heap.pprof", func(f *os.File) error {
		return pprof.Lookup("heap").WriteTo(f, 0)
	}); err != nil {
		return "", err
	}
	if err := d.writeFile(tmp, "buildinfo.json", func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(bundleBuildInfo{
			Reason:        reason,
			Time:          time.Now(),
			Version:       buildinfo.Version(),
			GoVersion:     buildinfo.GoVersion(),
			Engines:       buildinfo.EngineList(),
			Flags:         d.flags,
			PID:           os.Getpid(),
			UptimeSeconds: time.Since(d.started).Seconds(),
		})
	}); err != nil {
		return "", err
	}
	if d.prof != nil {
		if err := d.prof.copyInto(filepath.Join(tmp, "profiles")); err != nil {
			// Profile copies are best-effort: a bundle without them is
			// still a bundle.
			d.logf("chortled: postmortem: copying profiles: %v", err)
		}
	}
	if err := os.Rename(tmp, final); err != nil {
		return "", err
	}
	d.dumps.Inc()
	d.lastUnix.Set(float64(time.Now().Unix()))
	d.logf("chortled: postmortem bundle (%s) written to %s", reason, final)
	return final, nil
}

func (d *dumper) writeFile(dir, name string, fill func(*os.File) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", name, err)
	}
	return f.Close()
}

// sanitizeReason keeps the reason path-safe.
func sanitizeReason(reason string) string {
	out := make([]byte, 0, len(reason))
	for i := 0; i < len(reason) && i < 32; i++ {
		c := reason[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "unknown"
	}
	return string(out)
}

// bundles lists the bundle directories currently on disk, newest first.
func (d *dumper) bundles() []string {
	if d == nil {
		return nil
	}
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range ents {
		if e.IsDir() && len(e.Name()) > 7 && e.Name()[:7] == "bundle-" {
			out = append(out, e.Name())
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(out)))
	return out
}
