package main

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"chortle"
)

// snapshotter persists the shared shape cache across restarts.
//
// Writes are atomic: the snapshot is written to a temp file in the
// target directory, fsynced, then renamed over the destination — a
// crash mid-write leaves the previous snapshot intact. Restores are
// all-or-nothing: internal/shapecache validates the whole container
// (magic, version, namespace, CRC-64 checksum) and every payload before
// inserting anything, so a truncated, corrupted, or incompatible file
// is rejected wholesale and the server simply boots cold. Either way
// the server keeps serving; snapshot trouble is an efficiency loss,
// never an outage or a wrong answer (hits remain verified against the
// live tree encoding).
type snapshotter struct {
	path  string
	cache *chortle.SharedCache
	chaos *chaosInjector
	logf  func(format string, args ...any)

	writes      interface{ Inc() }
	writeErrors interface{ Inc() }
	rejected    interface{ Inc() } // shared with serverMetrics.snapRejects
	restored    interface{ Set(float64) }
	lastWrite   interface{ Set(float64) }

	// onReject, when set (after construction; main wires it to the
	// postmortem dumper), fires once per rejected restore with the
	// rejection detail.
	onReject func(detail string)

	mu sync.Mutex // serializes write()
}

func newSnapshotter(path string, cache *chortle.SharedCache, chaos *chaosInjector,
	m *serverMetrics, reg *chortle.MetricsRegistry, logf func(string, ...any)) *snapshotter {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &snapshotter{
		path:  path,
		cache: cache,
		chaos: chaos,
		logf:  logf,
		writes: reg.Counter("chortled_snapshot_writes_total",
			"Cache snapshots written successfully."),
		writeErrors: reg.Counter("chortled_snapshot_write_errors_total",
			"Cache snapshot write attempts that failed."),
		rejected: m.snapRejects,
		restored: reg.Gauge("chortled_snapshot_restored_shapes",
			"Shapes loaded from the boot-time snapshot restore."),
		lastWrite: reg.Gauge("chortled_snapshot_last_write_unixtime",
			"Unix time of the last successful snapshot write."),
	}
}

// restore loads the snapshot at boot. A missing file is a normal cold
// start; any other failure counts chortle_snapshot_rejected, logs, and
// continues cold. Never fatal.
func (sn *snapshotter) restore() {
	f, err := os.Open(sn.path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			sn.logf("chortled: no snapshot at %s; starting cold", sn.path)
			return
		}
		sn.rejected.Inc()
		sn.logf("chortled: snapshot open failed (%v); starting cold", err)
		if sn.onReject != nil {
			sn.onReject(err.Error())
		}
		return
	}
	defer f.Close()
	n, err := sn.cache.RestoreSnapshot(f)
	if err != nil {
		sn.rejected.Inc()
		sn.logf("chortled: snapshot %s rejected (%v); starting cold", sn.path, err)
		if sn.onReject != nil {
			sn.onReject(err.Error())
		}
		return
	}
	sn.restored.Set(float64(n))
	sn.logf("chortled: restored %d cached shapes from %s", n, sn.path)
}

// write persists the current cache atomically. Errors (including
// injected chaos I/O faults) are counted and logged; the previous
// snapshot on disk survives any failure.
func (sn *snapshotter) write() error {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	err := sn.writeOnce()
	if err != nil {
		sn.writeErrors.Inc()
		sn.logf("chortled: snapshot write failed: %v", err)
		return err
	}
	sn.writes.Inc()
	sn.lastWrite.Set(float64(time.Now().Unix()))
	return nil
}

func (sn *snapshotter) writeOnce() error {
	if err := sn.chaos.snapshotErr(); err != nil {
		return err
	}
	dir := filepath.Dir(sn.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(sn.path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("creating temp snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := sn.cache.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("serializing cache: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("closing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), sn.path); err != nil {
		return fmt.Errorf("publishing snapshot: %w", err)
	}
	return nil
}

// loop writes a snapshot every interval until ctx ends, then writes a
// final one so a drained shutdown persists the warmest cache.
func (sn *snapshotter) loop(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_ = sn.write()
		}
	}
}
