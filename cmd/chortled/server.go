package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"chortle"
)

// The mapping server's HTTP surface, separated from main's wiring so
// tests can drive the handler directly.
//
//	POST /map      map a BLIF network to K-LUTs
//	GET  /healthz  liveness (503 while draining)
//	GET  /stats    shared-cache statistics as JSON
//	GET  /metrics  Prometheus text exposition
//
// /map accepts either a raw BLIF body with query parameters
// (?k=4&budget_work_units=N&deadline_ms=N) or, with
// Content-Type: application/json, a JSON object {"blif": "...", "k": 4,
// "budget_work_units": N, "deadline_ms": N}; JSON fields override query
// parameters. Admission is bounded: at most maxInflight requests map
// concurrently and at most maxQueue more wait for a slot — anything
// beyond that is refused with 429 immediately, so a traffic spike
// degrades to fast rejections instead of memory growth.

// serverConfig bounds one mapServer.
type serverConfig struct {
	cache       *chortle.SharedCache
	reg         *chortle.MetricsRegistry
	maxInflight int
	maxQueue    int
	defaultK    int
}

type mapServer struct {
	cfg serverConfig
	obs *chortle.MetricsObserver

	sem      chan struct{}
	queued   atomic.Int64
	draining atomic.Bool
}

// serverMetrics holds the request-level series; structural interfaces
// keep cmd/chortled off the internal metrics types.
type serverMetrics struct {
	ok, clientErr, busy, serverErr interface{ Inc() }
	inflight                       interface{ Add(float64) }
	duration                       interface{ Observe(time.Duration) }
}

func newMapServer(cfg serverConfig) (*mapServer, *serverMetrics) {
	if cfg.maxInflight < 1 {
		cfg.maxInflight = 1
	}
	if cfg.maxQueue < 0 {
		cfg.maxQueue = 0
	}
	if cfg.defaultK == 0 {
		cfg.defaultK = 4
	}
	s := &mapServer{
		cfg: cfg,
		sem: make(chan struct{}, cfg.maxInflight),
		obs: chortle.NewMetricsObserverWithRuntime(cfg.reg),
	}
	m := &serverMetrics{
		ok:        cfg.reg.Counter("chortled_requests_total", "Mapping requests by outcome.", chortle.MetricsLabel{Key: "code", Value: "200"}),
		clientErr: cfg.reg.Counter("chortled_requests_total", "Mapping requests by outcome.", chortle.MetricsLabel{Key: "code", Value: "400"}),
		busy:      cfg.reg.Counter("chortled_requests_total", "Mapping requests by outcome.", chortle.MetricsLabel{Key: "code", Value: "429"}),
		serverErr: cfg.reg.Counter("chortled_requests_total", "Mapping requests by outcome.", chortle.MetricsLabel{Key: "code", Value: "503"}),
		inflight:  cfg.reg.Gauge("chortled_inflight_requests", "Mapping requests currently being served."),
		duration:  cfg.reg.Histogram("chortled_request_seconds", "End-to-end mapping request latency.", nil),
	}
	chortle.RegisterCacheMetrics(cfg.reg, cfg.cache)
	return s, m
}

// acquire claims an execution slot, waiting in the bounded queue if all
// slots are busy. It returns a release func and true, or false when the
// queue is full or the caller's context ended while waiting.
func (s *mapServer) acquire(ctx context.Context) (func(), bool) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.maxQueue) {
		s.queued.Add(-1)
		return nil, false
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	case <-ctx.Done():
		return nil, false
	}
}

// mapRequest is the JSON request body (all fields optional except blif).
type mapRequest struct {
	BLIF            string `json:"blif"`
	K               int    `json:"k"`
	BudgetWorkUnits int64  `json:"budget_work_units"`
	DeadlineMS      int64  `json:"deadline_ms"`
}

// mapResponse is the JSON success body.
type mapResponse struct {
	Circuit     string   `json:"circuit"`
	K           int      `json:"k"`
	LUTs        int      `json:"luts"`
	Trees       int      `json:"trees"`
	Degraded    []string `json:"degraded,omitempty"`
	CacheHits   int      `json:"cache_hits"`
	CacheMisses int      `json:"cache_misses"`
	ElapsedNS   int64    `json:"elapsed_ns"`
	BLIF        string   `json:"blif"`
}

type errResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// parseMapRequest assembles the request from query parameters and body.
func parseMapRequest(r *http.Request, defaultK int) (*mapRequest, error) {
	req := &mapRequest{K: defaultK}
	q := r.URL.Query()
	for name, dst := range map[string]*int64{
		"budget_work_units": &req.BudgetWorkUnits,
		"deadline_ms":       &req.DeadlineMS,
	} {
		if v := q.Get(name); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad %s %q", name, v)
			}
			*dst = n
		}
	}
	if v := q.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("bad k %q", v)
		}
		req.K = n
	}
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("reading body: %v", err)
	}
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var jr mapRequest
		if err := json.Unmarshal(body, &jr); err != nil {
			return nil, fmt.Errorf("bad JSON body: %v", err)
		}
		if jr.BLIF == "" {
			return nil, errors.New("missing blif field")
		}
		req.BLIF = jr.BLIF
		if jr.K != 0 {
			req.K = jr.K
		}
		if jr.BudgetWorkUnits != 0 {
			req.BudgetWorkUnits = jr.BudgetWorkUnits
		}
		if jr.DeadlineMS != 0 {
			req.DeadlineMS = jr.DeadlineMS
		}
		return req, nil
	}
	if len(body) == 0 {
		return nil, errors.New("empty body (expected BLIF text or JSON)")
	}
	req.BLIF = string(body)
	return req, nil
}

func (s *mapServer) handleMap(m *serverMetrics) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, errResponse{"POST only"})
			return
		}
		if s.draining.Load() {
			m.serverErr.Inc()
			writeJSON(w, http.StatusServiceUnavailable, errResponse{"draining"})
			return
		}
		req, err := parseMapRequest(r, s.cfg.defaultK)
		if err != nil {
			m.clientErr.Inc()
			writeJSON(w, http.StatusBadRequest, errResponse{err.Error()})
			return
		}
		release, ok := s.acquire(r.Context())
		if !ok {
			if r.Context().Err() != nil {
				return // client gone while queued
			}
			m.busy.Inc()
			writeJSON(w, http.StatusTooManyRequests,
				errResponse{fmt.Sprintf("at capacity (%d in flight, %d queued)", s.cfg.maxInflight, s.cfg.maxQueue)})
			return
		}
		defer release()
		m.inflight.Add(1)
		defer m.inflight.Add(-1)

		nw, err := chortle.ReadBLIF(strings.NewReader(req.BLIF))
		if err != nil {
			m.clientErr.Inc()
			writeJSON(w, http.StatusBadRequest, errResponse{fmt.Sprintf("parsing BLIF: %v", err)})
			return
		}
		opts := chortle.DefaultOptions(req.K)
		opts.SharedCache = s.cfg.cache
		opts.Budget.WorkUnits = req.BudgetWorkUnits
		opts.Observer = s.obs

		ctx := r.Context()
		if req.DeadlineMS > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
			defer cancel()
		}
		start := time.Now()
		res, err := chortle.MapCtx(ctx, nw, opts)
		elapsed := time.Since(start)
		if err != nil {
			switch {
			case errors.Is(err, context.Canceled):
				// Client disconnected mid-map; nobody is listening.
				return
			case errors.Is(err, context.DeadlineExceeded):
				m.serverErr.Inc()
				writeJSON(w, http.StatusServiceUnavailable, errResponse{"deadline exceeded"})
			default:
				m.clientErr.Inc()
				writeJSON(w, http.StatusBadRequest, errResponse{err.Error()})
			}
			return
		}
		var blif strings.Builder
		if err := res.Circuit.WriteBLIF(&blif); err != nil {
			m.serverErr.Inc()
			writeJSON(w, http.StatusInternalServerError, errResponse{err.Error()})
			return
		}
		m.ok.Inc()
		m.duration.Observe(elapsed)
		writeJSON(w, http.StatusOK, mapResponse{
			Circuit:     nw.Name,
			K:           req.K,
			LUTs:        res.LUTs,
			Trees:       res.Trees,
			Degraded:    res.Degraded,
			CacheHits:   res.CacheHits,
			CacheMisses: res.CacheMisses,
			ElapsedNS:   elapsed.Nanoseconds(),
			BLIF:        blif.String(),
		})
	}
}

func (s *mapServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errResponse{"draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *mapServer) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg.cache.Stats())
}

func (s *mapServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.cfg.reg.WritePrometheus(w)
}

// handler builds the server's mux.
func (s *mapServer) handler(m *serverMetrics) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/map", s.handleMap(m))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// drain flips the server into draining mode: /map and /healthz answer
// 503 while in-flight requests run to completion under http.Server's
// Shutdown.
func (s *mapServer) drain() { s.draining.Store(true) }
