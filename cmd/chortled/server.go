package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"chortle"
)

// The mapping server's HTTP surface, separated from main's wiring so
// tests can drive the handler directly.
//
//	POST /map      map a BLIF network to K-LUTs
//	GET  /healthz  liveness (503 while draining)
//	GET  /stats    shared-cache statistics as JSON
//	GET  /metrics  Prometheus text exposition
//
// /map accepts either a raw BLIF body with query parameters
// (?k=4&engine=cut&budget_work_units=N&deadline_ms=N) or, with
// Content-Type: application/json, a JSON object {"blif": "...", "k": 4,
// "engine": "cut", "budget_work_units": N, "deadline_ms": N}; JSON
// fields override query parameters. engine selects the mapping
// algorithm per request — tree (default), mis, or cut — so one fleet
// serves all three; an unknown engine is a 400.
//
// Admission is layered so every refusal is cheap and honest:
//
//   - Bounded queue: at most maxInflight requests map concurrently and
//     at most maxQueue more wait for a slot; beyond that is an
//     immediate 429 with Retry-After.
//   - Queue-deadline (CoDel-style): a request that waited in the queue
//     is re-checked on dequeue — if its deadline already expired it
//     answers 504 without burning the slot, and if its remaining
//     deadline cannot cover the observed p95 solve time it answers 503
//     with Retry-After instead of starting work it cannot finish.
//   - Memory-pressure valve: when the live heap crosses the configured
//     watermark the server sheds half the shared cache and stops
//     queueing (free slots still serve), recovering automatically once
//     the heap drops below ~80% of the watermark.
//   - Panic isolation: a panicking request — injected fault, bad
//     input, or mapper bug — becomes a 500 plus an incident log with a
//     stack trace, never a dead server.

// serverConfig bounds one mapServer.
type serverConfig struct {
	cache       *chortle.SharedCache
	reg         *chortle.MetricsRegistry
	maxInflight int
	maxQueue    int
	defaultK    int

	// memWatermark engages the memory-pressure valve above this many
	// live heap bytes; 0 disables the valve.
	memWatermark int64

	// chaos, when non-nil, injects seeded faults (latency, panics,
	// forced evictions) into the serving path.
	chaos *chaosInjector

	// logf receives server incident and lifecycle logs; nil discards.
	logf func(format string, args ...any)

	// accessLog, when non-nil, receives one JSONL AccessRecord per
	// finished request (the -access-log flag).
	accessLog *accessLogger

	// requestRing bounds the /debug/requests recent ring (0 = 64).
	requestRing int

	// recorder, when non-nil, is the always-on flight recorder: every
	// finished request, overload decision, and lifecycle note lands in
	// its bounded ring. Nil disables recording at zero hot-path cost.
	recorder *chortle.FlightRecorder

	// slo, when non-nil, folds every response code and solve duration
	// into burn-rate accounting (the -slo flag).
	slo *chortle.SLOWatchdog

	// dumper, when non-nil, writes postmortem bundles on incident
	// triggers (the -postmortem-dir flag).
	dumper *dumper

	// profiler, when non-nil, is the continuous profiler whose on-disk
	// ring /debug/requests links and bundles include.
	profiler *profiler

	// start anchors the /stats uptime report; zero means "now".
	start time.Time
}

type mapServer struct {
	cfg serverConfig
	obs *chortle.MetricsObserver

	sem        chan struct{}
	queued     atomic.Int64
	inflight   atomic.Int64
	draining   atomic.Bool
	overloaded atomic.Bool // memory valve engaged: stop queueing, shed cache

	// solveTimes is one recent-solve window per engine: tree and cut
	// solve times differ by an order of magnitude on the same circuit,
	// so a shared ring would miscalibrate the queue-deadline drop under
	// mixed traffic. Indexed by chortle.Engine.
	solveTimes [engineCount]*latencyTracker

	// engines is the per-engine request breakdown behind /stats.
	engines [engineCount]engineBucket

	// requests backs /debug/requests: the live in-flight table and the
	// bounded recent ring.
	requests *requestTable
}

// engineCount covers tree, mis and cut.
const engineCount = 3

var engineNames = [engineCount]string{
	chortle.EngineTree: "tree",
	chortle.EngineMIS:  "mis",
	chortle.EngineCut:  "cut",
}

// engineIndex maps an engine name back to its slot; ok is false for
// the empty string (a request that never resolved an engine).
func engineIndex(name string) (int, bool) {
	for i, n := range engineNames {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// outcomeClasses are the access-log outcome labels /stats breaks each
// engine down by.
var outcomeClasses = []string{"2xx", "4xx", "429", "500", "503", "504", "abandoned", "5xx"}

func outcomeIndex(class string) (int, bool) {
	for i, c := range outcomeClasses {
		if c == class {
			return i, true
		}
	}
	return 0, false
}

// engineBucket tallies one engine's requests by outcome class.
type engineBucket struct {
	total    atomic.Int64
	outcomes [8]atomic.Int64 // indexed like outcomeClasses
}

// engineStatsJSON is one engine's /stats entry.
type engineStatsJSON struct {
	Requests   int64            `json:"requests"`
	Outcomes   map[string]int64 `json:"outcomes,omitempty"`
	SolveP50MS float64          `json:"solve_p50_ms"`
	SolveP95MS float64          `json:"solve_p95_ms"`
}

// serverMetrics holds the request-level series; structural interfaces
// keep cmd/chortled off the internal metrics types.
type serverMetrics struct {
	ok, clientErr, busy, serverErr   interface{ Inc() }
	timeout, panics                  interface{ Inc() }
	codelDrops, memShed, snapRejects interface{ Inc() }
	inflight                         interface{ Add(float64) }
	// duration (successful solve time) and total (end-to-end request
	// time, every outcome) carry trace-ID exemplars so a latency spike
	// in /metrics links to a concrete request in the access log.
	duration, total exemplarHistogram
}

// exemplarHistogram is the structural slice of metrics.Histogram the
// server needs: plain observations plus trace-ID exemplars.
type exemplarHistogram interface {
	Observe(time.Duration)
	ObserveWithExemplar(time.Duration, string)
}

func newMapServer(cfg serverConfig) (*mapServer, *serverMetrics) {
	if cfg.maxInflight < 1 {
		cfg.maxInflight = 1
	}
	if cfg.maxQueue < 0 {
		cfg.maxQueue = 0
	}
	if cfg.defaultK == 0 {
		cfg.defaultK = 4
	}
	if cfg.logf == nil {
		cfg.logf = func(string, ...any) {}
	}
	if cfg.start.IsZero() {
		cfg.start = time.Now()
	}
	s := &mapServer{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.maxInflight),
		obs:      chortle.NewMetricsObserverWithRuntime(cfg.reg),
		requests: newRequestTable(cfg.requestRing),
	}
	for i := range s.solveTimes {
		s.solveTimes[i] = newLatencyTracker(256)
	}
	m := &serverMetrics{
		ok:         cfg.reg.Counter("chortled_requests_total", "Mapping requests by outcome.", chortle.MetricsLabel{Key: "code", Value: "200"}),
		clientErr:  cfg.reg.Counter("chortled_requests_total", "Mapping requests by outcome.", chortle.MetricsLabel{Key: "code", Value: "400"}),
		busy:       cfg.reg.Counter("chortled_requests_total", "Mapping requests by outcome.", chortle.MetricsLabel{Key: "code", Value: "429"}),
		serverErr:  cfg.reg.Counter("chortled_requests_total", "Mapping requests by outcome.", chortle.MetricsLabel{Key: "code", Value: "503"}),
		timeout:    cfg.reg.Counter("chortled_requests_total", "Mapping requests by outcome.", chortle.MetricsLabel{Key: "code", Value: "504"}),
		panics:     cfg.reg.Counter("chortled_requests_total", "Mapping requests by outcome.", chortle.MetricsLabel{Key: "code", Value: "500"}),
		codelDrops: cfg.reg.Counter("chortled_queue_deadline_drops_total", "Requests dropped because the remaining deadline could not cover the observed p95 solve time."),
		memShed:    cfg.reg.Counter("chortled_memory_pressure_sheds_total", "Memory-pressure valve activations (cache shed + queue shed)."),
		snapRejects: cfg.reg.Counter("chortle_snapshot_rejected",
			"Cache snapshots rejected at restore (truncated, corrupted, or incompatible)."),
		inflight: cfg.reg.Gauge("chortled_inflight_requests", "Mapping requests currently being served."),
		duration: cfg.reg.Histogram("chortled_request_seconds", "End-to-end mapping request latency.", nil),
		total:    cfg.reg.Histogram("chortled_request_total_seconds", "Wall time from admission to response for every request, all outcomes.", nil),
	}
	cfg.reg.GaugeFunc("chortled_queued_requests", "Mapping requests waiting for an execution slot.",
		func() float64 { return float64(s.queued.Load()) })
	cfg.reg.GaugeFunc("chortled_overloaded", "1 while the memory-pressure valve is shedding queued load.",
		func() float64 {
			if s.overloaded.Load() {
				return 1
			}
			return 0
		})
	for i := range s.solveTimes {
		lt := s.solveTimes[i]
		cfg.reg.GaugeFunc("chortled_solve_p95_seconds", "Observed p95 solve time over the recent window, per engine.",
			func() float64 { return lt.p95().Seconds() },
			chortle.MetricsLabel{Key: "engine", Value: engineNames[i]})
	}
	chortle.RegisterCacheMetrics(cfg.reg, cfg.cache)
	return s, m
}

// acquire claims an execution slot, waiting in the bounded queue if all
// slots are busy. It returns a release func and true, or false when the
// queue is full (or closed by the memory valve) or the caller's context
// ended while waiting.
func (s *mapServer) acquire(ctx context.Context) (func(), bool) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
	}
	if s.overloaded.Load() {
		// Valve engaged: free slots still serve (the fast path above),
		// but nothing new parks in the queue.
		return nil, false
	}
	if s.queued.Add(1) > int64(s.cfg.maxQueue) {
		s.queued.Add(-1)
		return nil, false
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	case <-ctx.Done():
		return nil, false
	}
}

// latencyTracker is a fixed window of recent solve durations for the
// queue-deadline estimate. Cheap by construction: one mutex, one ring.
type latencyTracker struct {
	mu   sync.Mutex
	ring []time.Duration
	n    int // total observations
}

func newLatencyTracker(window int) *latencyTracker {
	return &latencyTracker{ring: make([]time.Duration, window)}
}

func (l *latencyTracker) observe(d time.Duration) {
	l.mu.Lock()
	l.ring[l.n%len(l.ring)] = d
	l.n++
	l.mu.Unlock()
}

// quantile estimates the p-quantile (per-cent, e.g. 95) of the recent
// window; zero until enough samples exist to say anything (8), so a
// cold server never drops on a wild guess.
func (l *latencyTracker) quantile(pct int) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	size := l.n
	if size > len(l.ring) {
		size = len(l.ring)
	}
	if size < 8 {
		return 0
	}
	tmp := make([]time.Duration, size)
	copy(tmp, l.ring[:size])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	idx := (size * pct) / 100
	if idx >= size {
		idx = size - 1
	}
	return tmp[idx]
}

func (l *latencyTracker) p95() time.Duration { return l.quantile(95) }
func (l *latencyTracker) p50() time.Duration { return l.quantile(50) }

// mapRequest is the JSON request body (all fields optional except blif).
type mapRequest struct {
	BLIF            string `json:"blif"`
	K               int    `json:"k"`
	Engine          string `json:"engine"`
	BudgetWorkUnits int64  `json:"budget_work_units"`
	DeadlineMS      int64  `json:"deadline_ms"`
}

// mapResponse is the JSON success body.
type mapResponse struct {
	Circuit     string   `json:"circuit"`
	K           int      `json:"k"`
	Engine      string   `json:"engine"`
	LUTs        int      `json:"luts"`
	Trees       int      `json:"trees"`
	Degraded    []string `json:"degraded,omitempty"`
	CacheHits   int      `json:"cache_hits"`
	CacheMisses int      `json:"cache_misses"`
	ElapsedNS   int64    `json:"elapsed_ns"`
	BLIF        string   `json:"blif"`
	TraceID     string   `json:"trace_id,omitempty"`
}

type errResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// recordDecision lands one overload-control decision in both places it
// must survive: the request's trace state (so the access-log line and
// the flight ring's access entry carry the canonical reason) and the
// flight ring itself (with the admission numbers that drove it). The
// trace ID is filled from the request state.
func (s *mapServer) recordDecision(st *requestState, d chortle.OverloadDecision) {
	st.noteDecision(d.Reason)
	d.Trace = st.traceID()
	s.cfg.recorder.RecordDecision(d)
}

// writeRefusal answers a load-shedding status (429/503/504) with a
// Retry-After hint so well-behaved clients back off instead of
// hammering.
func writeRefusal(w http.ResponseWriter, code int, retryAfter time.Duration, msg string) {
	secs := int(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, code, errResponse{msg})
}

// parseMapRequest assembles the request from query parameters and body.
func parseMapRequest(r *http.Request, defaultK int) (*mapRequest, error) {
	req := &mapRequest{K: defaultK}
	q := r.URL.Query()
	for name, dst := range map[string]*int64{
		"budget_work_units": &req.BudgetWorkUnits,
		"deadline_ms":       &req.DeadlineMS,
	} {
		if v := q.Get(name); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad %s %q", name, v)
			}
			*dst = n
		}
	}
	if v := q.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("bad k %q", v)
		}
		req.K = n
	}
	req.Engine = q.Get("engine")
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("reading body: %v", err)
	}
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var jr mapRequest
		if err := json.Unmarshal(body, &jr); err != nil {
			return nil, fmt.Errorf("bad JSON body: %v", err)
		}
		if jr.BLIF == "" {
			return nil, errors.New("missing blif field")
		}
		req.BLIF = jr.BLIF
		if jr.K != 0 {
			req.K = jr.K
		}
		if jr.Engine != "" {
			req.Engine = jr.Engine
		}
		if jr.BudgetWorkUnits != 0 {
			req.BudgetWorkUnits = jr.BudgetWorkUnits
		}
		if jr.DeadlineMS != 0 {
			req.DeadlineMS = jr.DeadlineMS
		}
		return req, nil
	}
	if len(body) == 0 {
		return nil, errors.New("empty body (expected BLIF text or JSON)")
	}
	req.BLIF = string(body)
	return req, nil
}

// statusRecorder remembers whether a handler already committed a
// response (so the panic isolator knows if a 500 can still be sent)
// and which status it sent (so the trace middleware can classify the
// outcome; 0 means the client went away before any response).
type statusRecorder struct {
	http.ResponseWriter
	wrote bool
	code  int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if !sr.wrote {
		sr.code = code
	}
	sr.wrote = true
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if !sr.wrote {
		sr.code = http.StatusOK
	}
	sr.wrote = true
	return sr.ResponseWriter.Write(b)
}

// withPanicIsolation converts a panicking request into a 500 plus an
// incident log instead of a dead server. http.Server's own recovery
// would only kill the connection; this answers the client and keeps a
// stack for the operator.
func (s *mapServer) withPanicIsolation(m *serverMetrics, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: w}
		defer func() {
			if rec := recover(); rec != nil {
				m.panics.Inc()
				s.cfg.logf("chortled: INCIDENT: panic serving %s %s: %v\n%s",
					r.Method, r.URL.Path, rec, debug.Stack())
				s.recordDecision(stateFrom(r.Context()), chortle.OverloadDecision{
					Code: http.StatusInternalServerError, Reason: chortle.ReasonPanic,
					Detail: fmt.Sprint(rec),
				})
				if !sr.wrote {
					writeJSON(sr, http.StatusInternalServerError,
						errResponse{fmt.Sprintf("internal error: %v", rec)})
				}
			}
		}()
		next(sr, r)
	}
}

func (s *mapServer) handleMap(m *serverMetrics) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st := stateFrom(r.Context())
		rt := st.trace()
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			st.noteErr("POST only")
			writeJSON(w, http.StatusMethodNotAllowed, errResponse{"POST only"})
			return
		}
		if s.draining.Load() {
			m.serverErr.Inc()
			st.noteErr("draining")
			s.recordDecision(st, chortle.OverloadDecision{
				Code: http.StatusServiceUnavailable, Reason: chortle.ReasonDraining,
			})
			writeRefusal(w, http.StatusServiceUnavailable, 5*time.Second, "draining")
			return
		}
		admSpan := rt.Start("admission")
		req, err := parseMapRequest(r, s.cfg.defaultK)
		if err != nil {
			admSpan.End()
			m.clientErr.Inc()
			st.noteErr(err.Error())
			writeJSON(w, http.StatusBadRequest, errResponse{err.Error()})
			return
		}
		// An unknown engine is refused before the request costs a queue
		// slot; the parsed value configures the solve below.
		eng, err := chortle.ParseEngine(req.Engine)
		if err != nil {
			admSpan.End()
			m.clientErr.Inc()
			st.noteErr(err.Error())
			writeJSON(w, http.StatusBadRequest, errResponse{err.Error()})
			return
		}
		st.setRequest(eng.String(), req.K)
		admSpan.Annotate("engine", eng.String())
		admSpan.End()
		// The request's deadline budget starts ticking at admission, so
		// queue wait counts against it.
		admitted := time.Now()

		st.setStage(stageQueued)
		queueSpan := rt.Start("queue")
		release, ok := s.acquire(r.Context())
		waited := time.Since(admitted)
		queueSpan.End()
		st.noteTimings(waited, 0, 0)
		if !ok {
			if r.Context().Err() != nil {
				return // client gone while queued
			}
			if s.overloaded.Load() {
				m.serverErr.Inc()
				st.noteErr("memory pressure")
				s.recordDecision(st, chortle.OverloadDecision{
					Code: http.StatusServiceUnavailable, Reason: chortle.ReasonMemValve,
					Engine: eng.String(), WaitNS: waited.Nanoseconds(),
				})
				writeRefusal(w, http.StatusServiceUnavailable, 2*time.Second,
					"memory pressure: queue closed, retry shortly")
				return
			}
			m.busy.Inc()
			st.noteErr("at capacity")
			s.recordDecision(st, chortle.OverloadDecision{
				Code: http.StatusTooManyRequests, Reason: chortle.ReasonQueueFull,
				Engine: eng.String(),
				Detail: fmt.Sprintf("%d in flight, %d queued", s.cfg.maxInflight, s.cfg.maxQueue),
			})
			writeRefusal(w, http.StatusTooManyRequests, time.Second,
				fmt.Sprintf("at capacity (%d in flight, %d queued)", s.cfg.maxInflight, s.cfg.maxQueue))
			return
		}
		defer release()

		// Post-dequeue admission control. The slot is held but no solve
		// work has started; both checks are O(1).
		if r.Context().Err() != nil {
			return // client gone while queued; nobody is listening
		}
		if req.DeadlineMS > 0 {
			remaining := time.Duration(req.DeadlineMS)*time.Millisecond - waited
			if remaining <= 0 {
				m.timeout.Inc()
				st.noteErr("deadline expired in queue")
				s.recordDecision(st, chortle.OverloadDecision{
					Code: http.StatusGatewayTimeout, Reason: chortle.ReasonDeadlineExpired,
					Engine: eng.String(), WaitNS: waited.Nanoseconds(),
					RemainingNS: remaining.Nanoseconds(),
				})
				writeRefusal(w, http.StatusGatewayTimeout, time.Second,
					fmt.Sprintf("deadline (%d ms) expired after %s in queue", req.DeadlineMS, waited.Round(time.Millisecond)))
				return
			}
			// CoDel-style drop: starting a solve we cannot finish inside
			// the deadline wastes the slot and still fails the caller —
			// refuse now, while it is still cheap for both sides. The p95
			// comes from this engine's own window: tree and cut solve
			// times differ enough that a shared estimate sheds the wrong
			// requests under mixed traffic.
			if p95 := s.solveTimes[eng].p95(); p95 > 0 && remaining < p95 {
				m.serverErr.Inc()
				m.codelDrops.Inc()
				st.noteErr("remaining deadline below engine p95")
				s.recordDecision(st, chortle.OverloadDecision{
					Code: http.StatusServiceUnavailable, Reason: chortle.ReasonCoDel,
					Engine: eng.String(), WaitNS: waited.Nanoseconds(),
					RemainingNS: remaining.Nanoseconds(), P95NS: p95.Nanoseconds(),
				})
				writeRefusal(w, http.StatusServiceUnavailable, p95,
					fmt.Sprintf("remaining deadline %s below observed %s p95 solve time %s",
						remaining.Round(time.Millisecond), eng, p95.Round(time.Millisecond)))
				return
			}
		}
		m.inflight.Add(1)
		s.inflight.Add(1)
		defer func() {
			m.inflight.Add(-1)
			s.inflight.Add(-1)
		}()

		st.setStage(stageSolving)
		// Fault injection (off unless -chaos): the seeded probabilistic
		// mix plus the deterministic X-Chaos-* headers the drill uses —
		// a panic from either rides up to withPanicIsolation like any
		// real one would.
		s.cfg.chaos.forced(r)
		s.cfg.chaos.beforeSolve()

		nw, err := chortle.ReadBLIF(strings.NewReader(req.BLIF))
		if err != nil {
			m.clientErr.Inc()
			st.noteErr(err.Error())
			writeJSON(w, http.StatusBadRequest, errResponse{fmt.Sprintf("parsing BLIF: %v", err)})
			return
		}
		st.noteCircuit(nw.Name)
		opts := chortle.DefaultOptions(req.K)
		opts.Engine = eng
		opts.SharedCache = s.cfg.cache
		opts.Budget.WorkUnits = req.BudgetWorkUnits
		// The request trace's bounded collector rides beside the
		// process-wide metrics bridge, joining the engine's own phase
		// events to this request's span tree.
		if reqObs := rt.Observer(); reqObs != nil {
			opts.Observer = chortle.MultiObserver{s.obs, reqObs}
		} else {
			opts.Observer = s.obs
		}

		ctx := r.Context()
		if req.DeadlineMS > 0 {
			remaining := time.Duration(req.DeadlineMS)*time.Millisecond - time.Since(admitted)
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, remaining)
			defer cancel()
		}
		solveSpan := rt.Start("solve")
		solveSpan.Annotate("engine", eng.String())
		st.setSolveSpan(solveSpan.ID())
		start := time.Now()
		res, err := chortle.MapCtx(ctx, nw, opts)
		elapsed := time.Since(start)
		solveSpan.End()
		st.noteTimings(0, elapsed, 0)
		s.cfg.slo.ObserveSolve(elapsed)
		if err != nil {
			switch {
			case errors.Is(err, context.Canceled):
				// Client disconnected mid-map; nobody is listening.
				return
			case errors.Is(err, context.DeadlineExceeded):
				m.serverErr.Inc()
				st.noteErr("deadline exceeded")
				s.recordDecision(st, chortle.OverloadDecision{
					Code: http.StatusServiceUnavailable, Reason: chortle.ReasonDeadlineExpired,
					Engine: eng.String(), Detail: "deadline exceeded mid-solve",
				})
				writeRefusal(w, http.StatusServiceUnavailable, time.Second, "deadline exceeded")
			default:
				m.clientErr.Inc()
				st.noteErr(err.Error())
				writeJSON(w, http.StatusBadRequest, errResponse{err.Error()})
			}
			return
		}
		s.solveTimes[eng].observe(elapsed)
		st.noteResult(res.LUTs, res.CacheHits, res.CacheMisses)

		st.setStage(stageWriting)
		writeSpan := rt.Start("write")
		writeStart := time.Now()
		var blif strings.Builder
		if err := res.Circuit.WriteBLIF(&blif); err != nil {
			writeSpan.End()
			m.panics.Inc()
			st.noteErr(err.Error())
			writeJSON(w, http.StatusInternalServerError, errResponse{err.Error()})
			return
		}
		m.ok.Inc()
		m.duration.ObserveWithExemplar(elapsed, traceIDString(rt))
		writeJSON(w, http.StatusOK, mapResponse{
			Circuit:     nw.Name,
			K:           req.K,
			Engine:      eng.String(),
			LUTs:        res.LUTs,
			Trees:       res.Trees,
			Degraded:    res.Degraded,
			CacheHits:   res.CacheHits,
			CacheMisses: res.CacheMisses,
			ElapsedNS:   elapsed.Nanoseconds(),
			BLIF:        blif.String(),
			TraceID:     traceIDString(rt),
		})
		writeSpan.End()
		st.noteTimings(0, 0, time.Since(writeStart))
	}
}

// traceIDString renders the request's trace ID for the response body;
// empty (omitted from JSON) when the handler runs untraced.
func traceIDString(rt *chortle.ReqTrace) string {
	if rt.TraceID().IsZero() {
		return ""
	}
	return rt.TraceID().String()
}

// memCheck is one tick of the memory-pressure valve: above the
// watermark, shed half the shared cache and close the queue; below 80%
// of it, reopen. Returns whether the valve is engaged (for tests and
// logging).
func (s *mapServer) memCheck(m *serverMetrics) bool {
	if s.cfg.memWatermark <= 0 {
		return false
	}
	heap := int64(chortle.LiveHeapBytes())
	switch {
	case heap > s.cfg.memWatermark:
		shed := s.cfg.cache.Shed(0.5)
		first := s.overloaded.CompareAndSwap(false, true)
		m.memShed.Inc()
		s.cfg.logf("chortled: memory pressure: heap %d MiB over watermark %d MiB; shed %d cached shapes, queue closed",
			heap>>20, s.cfg.memWatermark>>20, shed)
		if first {
			// First engagement of this episode: worth a black-box marker
			// and a bundle while the evidence is still in memory.
			s.cfg.recorder.RecordNote(fmt.Sprintf(
				"memory valve engaged: heap %d MiB over watermark %d MiB, shed %d shapes",
				heap>>20, s.cfg.memWatermark>>20, shed))
			s.cfg.dumper.trigger(chortle.ReasonMemValve)
		}
	case heap < s.cfg.memWatermark*4/5:
		if s.overloaded.CompareAndSwap(true, false) {
			s.cfg.logf("chortled: memory pressure cleared: heap %d MiB; queue reopened", heap>>20)
			s.cfg.recorder.RecordNote(fmt.Sprintf("memory valve cleared: heap %d MiB", heap>>20))
		}
	}
	return s.overloaded.Load()
}

// runMemValve runs memCheck on a ticker until ctx ends.
func (s *mapServer) runMemValve(ctx context.Context, m *serverMetrics, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.memCheck(m)
		}
	}
}

func (s *mapServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeRefusal(w, http.StatusServiceUnavailable, 5*time.Second, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *mapServer) handleStats(w http.ResponseWriter, _ *http.Request) {
	engines := make(map[string]engineStatsJSON, engineCount)
	for i := range s.engines {
		b := &s.engines[i]
		total := b.total.Load()
		if total == 0 {
			continue
		}
		outcomes := make(map[string]int64)
		for j, class := range outcomeClasses {
			if n := b.outcomes[j].Load(); n > 0 {
				outcomes[class] = n
			}
		}
		engines[engineNames[i]] = engineStatsJSON{
			Requests:   total,
			Outcomes:   outcomes,
			SolveP50MS: float64(s.solveTimes[i].p50().Microseconds()) / 1000,
			SolveP95MS: float64(s.solveTimes[i].p95().Microseconds()) / 1000,
		}
	}
	writeJSON(w, http.StatusOK, statsResponse{
		Server: serverInfoJSON{
			Version:       chortle.BuildVersion(),
			GoVersion:     chortle.BuildGoVersion(),
			Engines:       chortle.BuildEngines(),
			Started:       s.cfg.start,
			UptimeSeconds: time.Since(s.cfg.start).Seconds(),
			SLOStatus:     s.cfg.slo.Status().String(),
		},
		Cache:   s.cfg.cache.Stats(),
		Engines: engines,
	})
}

// serverInfoJSON identifies the running build in /stats: the same
// identity the build-info gauge and every -version flag report, plus
// process uptime so "how long has this been up" is one curl away.
type serverInfoJSON struct {
	Version       string    `json:"version"`
	GoVersion     string    `json:"goversion"`
	Engines       string    `json:"engines"`
	Started       time.Time `json:"started"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	SLOStatus     string    `json:"slo_status"`
}

// statsResponse is the /stats body: the running build's identity, the
// shared cache's counters, and a per-engine request breakdown (requests
// by outcome class and the engine's own solve-latency quantiles — the
// same windows that drive per-engine CoDel shedding).
type statsResponse struct {
	Server  serverInfoJSON             `json:"server"`
	Cache   chortle.CacheStats         `json:"cache"`
	Engines map[string]engineStatsJSON `json:"engines,omitempty"`
}

func (s *mapServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// OpenMetrics is opt-in by Accept header: it is the only exposition
	// format with exemplars, so scrapes that ask for it get trace IDs
	// attached to the latency histogram buckets. Everyone else keeps the
	// Prometheus 0.0.4 text format byte-for-byte.
	if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		w.Header().Set("Content-Type", chortle.OpenMetricsContentType)
		_ = s.cfg.reg.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.cfg.reg.WritePrometheus(w)
}

// handler builds the server's mux. The trace middleware wraps the panic
// isolator so a panicking solve still finishes its trace and emits an
// access-log line with outcome "500".
func (s *mapServer) handler(m *serverMetrics) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/map", s.withRequestTrace(m, s.withPanicIsolation(m, s.handleMap(m))))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	mux.HandleFunc("/debug/slo", s.handleDebugSLO)
	mux.HandleFunc("/debug/flight", s.handleDebugFlight)
	return mux
}

// drain flips the server into draining mode: /map and /healthz answer
// 503 while in-flight requests run to completion under http.Server's
// Shutdown.
func (s *mapServer) drain() { s.draining.Store(true) }
