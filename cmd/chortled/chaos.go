package main

import (
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"chortle"
)

// chaosInjector is the server-side fault layer behind the -chaos flag:
// a seeded source of latency spikes, solve panics, forced cache
// evictions, and snapshot I/O errors. Deterministic for a given seed
// (modulo goroutine interleaving of who draws next), so a failing soak
// run can be replayed. A nil *chaosInjector is inert: every method is
// a cheap no-op, which keeps the serving path free of flag checks.
type chaosInjector struct {
	mu  sync.Mutex
	rng *rand.Rand

	cache *chortle.SharedCache

	// Fault probabilities in [0,1], checked independently per request.
	latencyP float64       // delay the solve by up to maxLatency
	panicP   float64       // panic mid-request (exercises isolation)
	evictP   float64       // shed half the shared cache
	snapErrP float64       // fail the next snapshot write
	maxDelay time.Duration // upper bound for injected latency

	injected interface{ Inc() } // by kind, bound at construction
	counters map[string]interface{ Inc() }
}

// newChaosInjector builds the default fault mix (~20% of requests see
// some fault) used by the -chaos flag and the soak tests.
func newChaosInjector(seed int64, cache *chortle.SharedCache, reg *chortle.MetricsRegistry) *chaosInjector {
	c := &chaosInjector{
		rng:      rand.New(rand.NewSource(seed)),
		cache:    cache,
		latencyP: 0.10,
		panicP:   0.05,
		evictP:   0.04,
		snapErrP: 0.25,
		maxDelay: 50 * time.Millisecond,
		counters: map[string]interface{ Inc() }{},
	}
	for _, kind := range []string{"latency", "panic", "evict", "snapshot_io"} {
		c.counters[kind] = reg.Counter("chortled_chaos_injected_total",
			"Faults injected by the chaos layer, by kind.",
			chortle.MetricsLabel{Key: "kind", Value: kind})
	}
	return c
}

// draw returns true with probability p, under the injector's lock.
func (c *chaosInjector) draw(p float64) bool {
	if c == nil || p <= 0 {
		return false
	}
	c.mu.Lock()
	hit := c.rng.Float64() < p
	c.mu.Unlock()
	return hit
}

// delay returns a random injected latency in (0, maxDelay].
func (c *chaosInjector) delay() time.Duration {
	c.mu.Lock()
	d := time.Duration(c.rng.Int63n(int64(c.maxDelay))) + time.Millisecond
	c.mu.Unlock()
	return d
}

// snapshotProbs reads the probability mix under the lock, so tests may
// retune a live injector between requests.
func (c *chaosInjector) snapshotProbs() (lat, pan, evt, snap float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.latencyP, c.panicP, c.evictP, c.snapErrP
}

// setProbs retunes the fault mix (tests only; safe while serving).
func (c *chaosInjector) setProbs(lat, pan, evt, snap float64) {
	c.mu.Lock()
	c.latencyP, c.panicP, c.evictP, c.snapErrP = lat, pan, evt, snap
	c.mu.Unlock()
}

// forced applies the deterministic per-request fault headers, honored
// only while the chaos layer is armed (-chaos): X-Chaos-Panic forces a
// solve panic, X-Chaos-Delay forces a fixed latency in milliseconds.
// The probabilistic mix covers soak runs; these headers give the chaos
// drill and CI a way to place one fault on one known request instead
// of waiting for the dice. Nil injectors ignore the headers, so a
// production server without -chaos cannot be panicked from outside.
func (c *chaosInjector) forced(r *http.Request) {
	if c == nil || r == nil {
		return
	}
	if v := r.Header.Get("X-Chaos-Delay"); v != "" {
		if ms, err := strconv.Atoi(v); err == nil && ms > 0 {
			c.counters["latency"].Inc()
			time.Sleep(time.Duration(ms) * time.Millisecond)
		}
	}
	if r.Header.Get("X-Chaos-Panic") != "" {
		c.counters["panic"].Inc()
		panic("chaos: forced solve panic (X-Chaos-Panic)")
	}
}

// beforeSolve runs the per-request fault mix. Order matters only for
// determinism of the draw sequence; faults are independent.
func (c *chaosInjector) beforeSolve() {
	if c == nil {
		return
	}
	lat, pan, evt, _ := c.snapshotProbs()
	if c.draw(lat) {
		c.counters["latency"].Inc()
		time.Sleep(c.delay())
	}
	if c.draw(evt) {
		c.counters["evict"].Inc()
		c.cache.Shed(0.5)
	}
	if c.draw(pan) {
		c.counters["panic"].Inc()
		panic("chaos: injected solve panic")
	}
}

// snapshotErr returns an injected error for a snapshot write with
// probability snapErrP, or nil.
func (c *chaosInjector) snapshotErr() error {
	if c == nil {
		return nil
	}
	_, _, _, snap := c.snapshotProbs()
	if !c.draw(snap) {
		return nil
	}
	c.counters["snapshot_io"].Inc()
	return fmt.Errorf("chaos: injected snapshot I/O error")
}
