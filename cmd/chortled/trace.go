package main

import (
	"context"
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"chortle"
)

// Request-scoped tracing for the serving path. Every request gets a
// trace: the ID arrives in a W3C traceparent header (the client
// package sends one) or is generated at admission, is echoed back in
// the X-Trace-Id response header, and brackets the request's life as
// spans — admission, queue wait, engine solve, response write — joined
// to the mapper's own event stream. The result surfaces three ways:
// the -access-log JSONL stream (one AccessRecord per finished
// request), the /debug/requests endpoint (live in-flight table plus a
// bounded ring of recent requests, JSON or self-contained HTML), and
// trace-ID exemplars on the request latency histogram so a p99 spike
// in /metrics links to a concrete request.

// reqStages name what an in-flight request is doing right now, for the
// /debug/requests live table.
const (
	stageAdmission = "admission"
	stageQueued    = "queued"
	stageSolving   = "solving"
	stageWriting   = "writing"
)

// requestState is one request's mutable trace context, shared between
// the handler goroutine and /debug/requests readers.
type requestState struct {
	rt    *chortle.ReqTrace
	start time.Time

	mu          sync.Mutex
	method      string
	path        string
	stage       string
	engine      string
	k           int
	queueNS     int64
	solveNS     int64
	writeNS     int64
	luts        int
	cacheHits   int
	cacheMisses int
	errMsg      string
	circuit     string         // mapped model name — request-controlled, escape on render
	decision    string         // canonical overload reason (queue-full, codel, ...)
	solveSpan   chortle.SpanID // parent for the engine's phase spans
}

// The setters below are nil-safe: handleMap driven without the
// middleware (direct handler tests) simply records nothing.

func (st *requestState) setStage(stage string) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.stage = stage
	st.mu.Unlock()
}

// trace returns the request's ReqTrace; nil (itself inert) without the
// middleware.
func (st *requestState) trace() *chortle.ReqTrace {
	if st == nil {
		return nil
	}
	return st.rt
}

func (st *requestState) setRequest(engine string, k int) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.engine, st.k = engine, k
	st.mu.Unlock()
}

func (st *requestState) noteTimings(queue, solve, write time.Duration) {
	if st == nil {
		return
	}
	st.mu.Lock()
	if queue > 0 {
		st.queueNS = queue.Nanoseconds()
	}
	if solve > 0 {
		st.solveNS = solve.Nanoseconds()
	}
	if write > 0 {
		st.writeNS = write.Nanoseconds()
	}
	st.mu.Unlock()
}

func (st *requestState) noteResult(luts, hits, misses int) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.luts, st.cacheHits, st.cacheMisses = luts, hits, misses
	st.mu.Unlock()
}

func (st *requestState) noteErr(msg string) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.errMsg = msg
	st.mu.Unlock()
}

// noteCircuit records the parsed network's model name. The value is
// request-controlled; every renderer must escape it.
func (st *requestState) noteCircuit(name string) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.circuit = name
	st.mu.Unlock()
}

// noteDecision tags the request with the canonical overload-control
// reason behind its refusal or failure.
func (st *requestState) noteDecision(reason string) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.decision = reason
	st.mu.Unlock()
}

// traceID returns the request's trace ID; zero without the middleware.
func (st *requestState) traceID() chortle.TraceID {
	if st == nil {
		return chortle.TraceID{}
	}
	return st.rt.TraceID()
}

func (st *requestState) setSolveSpan(id chortle.SpanID) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.solveSpan = id
	st.mu.Unlock()
}

// reqStateKey carries the requestState through the request context so
// handleMap can fill in what the middleware reports.
type reqStateKey struct{}

func withReqState(ctx context.Context, st *requestState) context.Context {
	return context.WithValue(ctx, reqStateKey{}, st)
}

// stateFrom returns the request's trace state, or nil when the handler
// runs outside the middleware (direct tests).
func stateFrom(ctx context.Context) *requestState {
	st, _ := ctx.Value(reqStateKey{}).(*requestState)
	return st
}

// inflightEntry is one row of the /debug/requests live table.
type inflightEntry struct {
	Trace     chortle.TraceID `json:"trace_id"`
	Method    string          `json:"method"`
	Path      string          `json:"path"`
	Stage     string          `json:"stage"`
	Engine    string          `json:"engine,omitempty"`
	K         int             `json:"k,omitempty"`
	ElapsedMS float64         `json:"elapsed_ms"`
}

// requestTable tracks the in-flight set and a bounded ring of finished
// requests, newest kept. It is the data behind /debug/requests.
type requestTable struct {
	mu       sync.Mutex
	inflight map[*requestState]struct{}
	ring     []chortle.AccessRecord
	cap      int
	head     int
	finished int64
}

func newRequestTable(capacity int) *requestTable {
	if capacity < 1 {
		capacity = 64
	}
	return &requestTable{
		inflight: make(map[*requestState]struct{}),
		cap:      capacity,
	}
}

func (t *requestTable) add(st *requestState) {
	t.mu.Lock()
	t.inflight[st] = struct{}{}
	t.mu.Unlock()
}

// finish moves a request from the in-flight set into the recent ring,
// evicting the oldest record when full.
func (t *requestTable) finish(st *requestState, rec chortle.AccessRecord) {
	t.mu.Lock()
	delete(t.inflight, st)
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.head] = rec
		t.head = (t.head + 1) % t.cap
	}
	t.finished++
	t.mu.Unlock()
}

// snapshot returns the live table (longest-running first) and the
// recent ring (newest first).
func (t *requestTable) snapshot() ([]inflightEntry, []chortle.AccessRecord, int64) {
	t.mu.Lock()
	live := make([]inflightEntry, 0, len(t.inflight))
	now := time.Now()
	for st := range t.inflight {
		st.mu.Lock()
		live = append(live, inflightEntry{
			Trace: st.rt.TraceID(), Method: st.method, Path: st.path,
			Stage: st.stage, Engine: st.engine, K: st.k,
			ElapsedMS: float64(now.Sub(st.start).Microseconds()) / 1000,
		})
		st.mu.Unlock()
	}
	sort.Slice(live, func(i, j int) bool { return live[i].ElapsedMS > live[j].ElapsedMS })
	recent := make([]chortle.AccessRecord, 0, len(t.ring))
	for i := len(t.ring) - 1; i >= 0; i-- {
		recent = append(recent, t.ring[(t.head+i)%len(t.ring)])
	}
	finished := t.finished
	t.mu.Unlock()
	return live, recent, finished
}

// activeTraces lists the trace IDs currently in flight — the continuous
// profiler stamps them into each capture's meta sidecar so a profile
// links back to the requests it overlapped.
func (t *requestTable) activeTraces() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.inflight))
	for st := range t.inflight {
		out = append(out, st.rt.TraceID().String())
	}
	sort.Strings(out)
	return out
}

// accessLogger streams AccessRecords as JSONL. Errors are sticky and
// never surface into the serving path (a full disk cannot fail a map).
type accessLogger struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

func newAccessLogger(w io.Writer) *accessLogger {
	if w == nil {
		return nil
	}
	return &accessLogger{enc: json.NewEncoder(w)}
}

// record writes one line; nil receivers (no -access-log) discard.
func (l *accessLogger) record(rec chortle.AccessRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	l.err = l.enc.Encode(rec)
}

// withRequestTrace opens the request's trace before anything else and
// closes it after everything else — including the panic isolator it
// wraps, so a panic-500 still produces a complete access-log line. The
// trace ID is committed to the X-Trace-Id response header immediately,
// before any status can be written.
func (s *mapServer) withRequestTrace(m *serverMetrics, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		traceID, parent, _ := chortle.ParseTraceparent(r.Header.Get(chortle.TraceparentHeader))
		rt := chortle.NewReqTrace("chortled", "request", traceID, parent, 64, 512)
		st := &requestState{
			rt: rt, start: time.Now(),
			method: r.Method, path: r.URL.Path, stage: stageAdmission,
		}
		w.Header().Set("X-Trace-Id", rt.TraceID().String())
		if status := s.cfg.slo.Status(); status != chortle.SLOOK {
			// Degraded SLO state rides on every response so clients can
			// react (shed optional load, surface the burn) without a
			// second request to /debug/slo.
			w.Header().Set("X-Slo-Status", status.String())
		}
		s.requests.add(st)
		sr := &statusRecorder{ResponseWriter: w}

		defer func() {
			total := time.Since(st.start)
			st.mu.Lock()
			rec := chortle.AccessRecord{
				Time:     st.start,
				Trace:    rt.TraceID(),
				Method:   st.method,
				Path:     st.path,
				Code:     sr.code,
				Outcome:  chortle.OutcomeClass(sr.code),
				Decision: st.decision,
				Circuit:  st.circuit,
				Engine:   st.engine, K: st.k,
				QueueNS: st.queueNS, SolveNS: st.solveNS, WriteNS: st.writeNS,
				TotalNS: total.Nanoseconds(),
				LUTs:    st.luts, CacheHits: st.cacheHits, CacheMisses: st.cacheMisses,
				Err:   st.errMsg,
				Spans: rt.Finish(st.solveSpan),
			}
			st.mu.Unlock()
			s.requests.finish(st, rec)
			s.cfg.accessLog.record(rec)
			s.cfg.recorder.RecordAccess(rec)
			s.cfg.slo.ObserveRequest(sr.code)
			s.countOutcome(st.engine, rec.Outcome)
			m.total.ObserveWithExemplar(total, rec.Trace.String())
			if sr.code == http.StatusInternalServerError {
				// The access record is already in the ring, so the bundle
				// this triggers contains the failing request itself.
				s.cfg.dumper.trigger("panic")
			}
		}()

		next(sr, r.WithContext(withReqState(r.Context(), st)))
	}
}

// countOutcome folds one finished request into the per-engine
// breakdown (unknown/unset engines land in the default tree bucket
// only when the request got far enough to resolve one).
func (s *mapServer) countOutcome(engine, outcome string) {
	idx, ok := engineIndex(engine)
	if !ok {
		return
	}
	b := &s.engines[idx]
	b.total.Add(1)
	if i, ok := outcomeIndex(outcome); ok {
		b.outcomes[i].Add(1)
	}
}

// handleDebugRequests serves the live in-flight table and the recent
// ring: JSON by default, a self-contained HTML view with ?format=html.
func (s *mapServer) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	live, recent, finished := s.requests.snapshot()
	if r.URL.Query().Get("format") == "html" {
		s.writeRequestsHTML(w, live, recent, finished)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"inflight": live,
		"recent":   recent,
		"finished": finished,
		"profiles": s.cfg.profiler.recent(),
	})
}

// requestsPage is the self-contained /debug/requests?format=html view:
// inline CSS only, no external references, in the PR-5 report style.
var requestsPage = template.Must(template.New("requests").Funcs(template.FuncMap{
	"ms": func(ns int64) string { return fmt.Sprintf("%.2f", float64(ns)/1e6) },
	"spanbar": func(rec chortle.AccessRecord, sp chortle.Span) template.CSS {
		if rec.TotalNS <= 0 {
			return "margin-left:0;width:0"
		}
		off := sp.Start.Sub(rec.Time).Nanoseconds()
		dur := sp.End.Sub(sp.Start).Nanoseconds()
		left := float64(off) / float64(rec.TotalNS) * 100
		width := float64(dur) / float64(rec.TotalNS) * 100
		if left < 0 {
			left = 0
		}
		if width < 0.5 {
			width = 0.5
		}
		if left > 100 {
			left = 100
		}
		if left+width > 100 {
			width = 100 - left
		}
		return template.CSS(fmt.Sprintf("margin-left:%.2f%%;width:%.2f%%", left, width))
	},
}).Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>chortled requests</title>
<style>
body{font-family:system-ui,sans-serif;margin:2em;color:#222}
h1{font-size:1.3em} h2{font-size:1.1em;margin-top:1.5em}
table{border-collapse:collapse;width:100%;font-size:0.85em}
th,td{border:1px solid #ddd;padding:4px 8px;text-align:left}
th{background:#f5f5f5}
.mono{font-family:ui-monospace,monospace}
.bar{height:10px;background:#4a90d9;border-radius:2px}
.lane{background:#f0f0f0;border-radius:2px;margin:1px 0}
.out-2xx{color:#2a7} .out-429{color:#b80} .out-500{color:#c22}
.out-503{color:#b80} .out-504{color:#b80} .out-4xx{color:#c22}
.out-abandoned{color:#888}
small{color:#888}
</style></head><body>
<h1>chortled requests</h1>
<p><small>{{len .Live}} in flight · {{len .Recent}} recent (of {{.Finished}} finished)</small></p>
<h2>In flight</h2>
<table><tr><th>trace</th><th>stage</th><th>engine</th><th>K</th><th>elapsed ms</th></tr>
{{range .Live}}<tr><td class="mono">{{.Trace}}</td><td>{{.Stage}}</td><td>{{.Engine}}</td><td>{{.K}}</td><td>{{printf "%.2f" .ElapsedMS}}</td></tr>
{{else}}<tr><td colspan="5"><small>none</small></td></tr>{{end}}
</table>
<h2>Recent</h2>
{{range .Recent}}
<table><tr>
<td class="mono">{{.Trace}}</td>
<td class="out-{{.Outcome}}">{{.Outcome}} ({{.Code}}){{if .Decision}} <small>{{.Decision}}</small>{{end}}</td>
<td>{{if .Circuit}}{{.Circuit}} · {{end}}{{.Engine}}{{if .K}} K={{.K}}{{end}}</td>
<td>{{ms .TotalNS}} ms total · queue {{ms .QueueNS}} · solve {{ms .SolveNS}}</td>
<td>{{if .LUTs}}{{.LUTs}} LUTs{{end}}{{if .Err}} <small>{{.Err}}</small>{{end}}</td>
</tr></table>
<div style="margin:2px 0 12px 0">
{{$rec := .}}{{range .Spans}}<div class="lane"><div class="bar" style="{{spanbar $rec .}}" title="{{.Name}}"></div> <small class="mono">{{.Name}} {{ms .Duration.Nanoseconds}} ms</small></div>{{end}}
</div>
{{else}}<p><small>none yet</small></p>{{end}}
{{if .Profiles}}<h2>Continuous profiles</h2>
<table><tr><th>capture</th><th>time</th><th>overlapping traces</th></tr>
{{range .Profiles}}<tr><td class="mono">{{.Stamp}}</td><td>{{.Time.Format "15:04:05"}}</td><td class="mono">{{range .Traces}}{{.}} {{end}}</td></tr>{{end}}
</table>{{end}}
</body></html>`))

type requestsPageData struct {
	Live     []inflightEntry
	Recent   []chortle.AccessRecord
	Finished int64
	Profiles []profileSet
}

func (s *mapServer) writeRequestsHTML(w http.ResponseWriter, live []inflightEntry, recent []chortle.AccessRecord, finished int64) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = requestsPage.Execute(w, requestsPageData{
		Live: live, Recent: recent, Finished: finished,
		Profiles: s.cfg.profiler.recent(),
	})
}
