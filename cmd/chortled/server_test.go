package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"chortle"
	"chortle/internal/bench"
)

func newTestServer(t *testing.T, cfg serverConfig) (*mapServer, *httptest.Server) {
	t.Helper()
	if cfg.reg == nil {
		cfg.reg = chortle.NewMetricsRegistry()
	}
	if cfg.cache == nil {
		cfg.cache = chortle.NewSharedCache(chortle.SharedCacheConfig{})
	}
	s, m := newMapServer(cfg)
	ts := httptest.NewServer(s.handler(m))
	t.Cleanup(ts.Close)
	return s, ts
}

// benchBLIF returns an optimized golden benchmark as BLIF text.
func benchBLIF(t *testing.T, c bench.Circuit) string {
	t.Helper()
	nw, err := bench.Optimized(c)
	if err != nil {
		t.Fatalf("preparing %s: %v", c.Name, err)
	}
	var sb strings.Builder
	if err := chortle.WriteBLIF(&sb, nw); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func postMap(t *testing.T, url, body, contentType string) (*http.Response, mapResponse) {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr mapResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp, mr
}

// TestServerMapTwiceSecondHits is the e2e smoke in test form: mapping
// the same circuit twice, the second response must report shared-cache
// hits and byte-identical output, and /stats and /metrics must agree.
func TestServerMapTwiceSecondHits(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{maxInflight: 2, maxQueue: 4})
	blif := benchBLIF(t, bench.Suite()[0])

	resp1, cold := postMap(t, ts.URL+"/map?k=4", blif, "text/plain")
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold map: HTTP %d", resp1.StatusCode)
	}
	if cold.CacheMisses == 0 || cold.LUTs == 0 {
		t.Fatalf("cold response: %+v", cold)
	}
	resp2, warm := postMap(t, ts.URL+"/map?k=4", blif, "text/plain")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm map: HTTP %d", resp2.StatusCode)
	}
	if warm.CacheHits == 0 || warm.CacheMisses != 0 {
		t.Fatalf("warm run did not hit: hits=%d misses=%d", warm.CacheHits, warm.CacheMisses)
	}
	if warm.BLIF != cold.BLIF {
		t.Fatal("warm BLIF differs from cold BLIF")
	}

	var st statsResponse
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits == 0 || st.Cache.Entries == 0 {
		t.Fatalf("/stats after warm run: %+v", st.Cache)
	}
	if tree := st.Engines["tree"]; tree.Requests != 2 || tree.Outcomes["2xx"] != 2 {
		t.Fatalf("/stats tree engine breakdown: %+v", st.Engines)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"chortle_shape_cache_hits",
		`chortled_requests_total{code="200"} 2`,
		"chortled_request_seconds",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServerJSONRequest drives the JSON body form, with fields
// overriding query parameters.
func TestServerJSONRequest(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{maxInflight: 1, maxQueue: 1})
	body, err := json.Marshal(mapRequest{BLIF: benchBLIF(t, bench.Suite()[1]), K: 3})
	if err != nil {
		t.Fatal(err)
	}
	resp, mr := postMap(t, ts.URL+"/map?k=5", string(body), "application/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if mr.K != 3 {
		t.Fatalf("JSON k=3 should override query k=5, got %d", mr.K)
	}
}

// TestServerEngineSelection drives per-request engine selection: the
// engine rides in the query or JSON body, the response echoes it, and
// the served circuit is byte-identical to an in-process map with the
// same engine.
func TestServerEngineSelection(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{maxInflight: 2, maxQueue: 2})
	c := bench.Suite()[5] // count: the reconvergent circuit the cut engine wins on
	blif := benchBLIF(t, c)

	byEngine := map[string]mapResponse{}
	for _, eng := range []string{"tree", "mis", "cut"} {
		resp, mr := postMap(t, ts.URL+"/map?k=3&engine="+eng, blif, "text/plain")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("engine=%s: HTTP %d", eng, resp.StatusCode)
		}
		if mr.Engine != eng {
			t.Errorf("engine=%s: response echoes %q", eng, mr.Engine)
		}
		if mr.LUTs == 0 || mr.BLIF == "" {
			t.Fatalf("engine=%s: empty result %+v", eng, mr)
		}
		byEngine[eng] = mr
	}
	if byEngine["cut"].LUTs >= byEngine["tree"].LUTs {
		t.Errorf("cut engine on count at K=3: %d LUTs, want fewer than tree's %d",
			byEngine["cut"].LUTs, byEngine["tree"].LUTs)
	}

	// Served answer == local map with the same engine, byte for byte.
	nw, err := chortle.ReadBLIF(strings.NewReader(blif))
	if err != nil {
		t.Fatal(err)
	}
	opts := chortle.DefaultOptions(3)
	opts.Engine = chortle.EngineCut
	res, err := chortle.Map(nw, opts)
	if err != nil {
		t.Fatal(err)
	}
	var local strings.Builder
	if err := res.Circuit.WriteBLIF(&local); err != nil {
		t.Fatal(err)
	}
	if byEngine["cut"].BLIF != local.String() {
		t.Error("served cut circuit differs from local map with EngineCut")
	}

	// JSON body form: the engine field overrides the query parameter.
	body, err := json.Marshal(mapRequest{BLIF: blif, K: 3, Engine: "cut"})
	if err != nil {
		t.Fatal(err)
	}
	resp, mr := postMap(t, ts.URL+"/map?engine=tree", string(body), "application/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("JSON engine: HTTP %d", resp.StatusCode)
	}
	if mr.Engine != "cut" || mr.BLIF != byEngine["cut"].BLIF {
		t.Errorf("JSON engine=cut should override query engine=tree, got %q", mr.Engine)
	}

	// Unknown engines are refused before costing a slot.
	resp, _ = postMap(t, ts.URL+"/map?engine=bogus", blif, "text/plain")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("engine=bogus: HTTP %d, want 400", resp.StatusCode)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{maxInflight: 1, maxQueue: 1})
	cases := []struct {
		name, url, body, ct string
		want                int
	}{
		{"empty body", ts.URL + "/map", "", "text/plain", http.StatusBadRequest},
		{"bad blif", ts.URL + "/map", ".model oops\n", "text/plain", http.StatusBadRequest},
		{"bad k", ts.URL + "/map?k=banana", ".model m\n.end\n", "text/plain", http.StatusBadRequest},
		{"k out of range", ts.URL + "/map?k=99", benchBLIF(t, bench.Suite()[0]), "text/plain", http.StatusBadRequest},
		{"bad json", ts.URL + "/map", "{", "application/json", http.StatusBadRequest},
		{"json without blif", ts.URL + "/map", "{}", "application/json", http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, _ := postMap(t, c.url, c.body, c.ct)
		if resp.StatusCode != c.want {
			t.Errorf("%s: HTTP %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	resp, err := http.Get(ts.URL + "/map")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /map: HTTP %d, want 405", resp.StatusCode)
	}
}

// TestServerAdmission exercises the bounded queue deterministically at
// the acquire level: slot, queue, overflow, cancellation.
func TestServerAdmission(t *testing.T) {
	s, _ := newMapServer(serverConfig{
		cache: chortle.NewSharedCache(chortle.SharedCacheConfig{}),
		reg:   chortle.NewMetricsRegistry(),

		maxInflight: 1,
		maxQueue:    1,
	})
	release1, ok := s.acquire(context.Background())
	if !ok {
		t.Fatal("first acquire refused")
	}

	// Second acquire parks in the queue.
	got := make(chan func(), 1)
	go func() {
		r, ok := s.acquire(context.Background())
		if !ok {
			got <- nil
			return
		}
		got <- r
	}()
	waitFor(t, func() bool { return s.queued.Load() == 1 })

	// Queue full: third acquire is refused immediately.
	if _, ok := s.acquire(context.Background()); ok {
		t.Fatal("over-queue acquire admitted")
	}

	// A queued waiter whose context ends gives up its queue slot.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok := s.acquire(ctx); ok {
		t.Fatal("cancelled acquire admitted")
	}

	release1()
	select {
	case r := <-got:
		if r == nil {
			t.Fatal("queued acquire refused after slot freed")
		}
		r()
	case <-time.After(5 * time.Second):
		t.Fatal("queued acquire never admitted")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerSoak is the acceptance soak: >=8 concurrent requests with
// mixed K against one shared cache, one client cancelling mid-flight,
// one over-budget request degrading, then a graceful drain. Run under
// -race in CI.
func TestServerSoak(t *testing.T) {
	srv, ts := newTestServer(t, serverConfig{maxInflight: 8, maxQueue: 32})
	suite := bench.Suite()
	circuits := make([]string, 4)
	refs := make(map[string]string) // "i/k" -> reference BLIF, no cache
	for i := range circuits {
		circuits[i] = benchBLIF(t, suite[i])
		nw, err := chortle.ReadBLIF(strings.NewReader(circuits[i]))
		if err != nil {
			t.Fatal(err)
		}
		for k := 2; k <= 5; k++ {
			res, err := chortle.Map(nw, chortle.DefaultOptions(k))
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			if err := res.Circuit.WriteBLIF(&sb); err != nil {
				t.Fatal(err)
			}
			refs[fmt.Sprintf("%d/%d", i, k)] = sb.String()
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ci, k := g%len(circuits), 2+g%4
			resp, err := http.Post(fmt.Sprintf("%s/map?k=%d", ts.URL, k),
				"text/plain", strings.NewReader(circuits[ci]))
			if err != nil {
				errs <- fmt.Errorf("goroutine %d: %w", g, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("goroutine %d: HTTP %d", g, resp.StatusCode)
				return
			}
			var mr mapResponse
			if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
				errs <- err
				return
			}
			if want := refs[fmt.Sprintf("%d/%d", ci, k)]; mr.BLIF != want {
				errs <- fmt.Errorf("goroutine %d: circuit %d K=%d output differs under shared cache", g, ci, k)
			}
		}(g)
	}

	// One client cancels mid-flight; the server must shrug it off.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			ts.URL+"/map?k=5", strings.NewReader(circuits[3]))
		if err != nil {
			errs <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close() // mapped before the cancel landed; also fine
		}
	}()

	// One request with a starvation budget: it must still answer 200
	// with a valid circuit, listing its degraded trees.
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/map?k=5&budget_work_units=1",
			"text/plain", strings.NewReader(circuits[0]))
		if err != nil {
			errs <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			errs <- fmt.Errorf("over-budget request: HTTP %d", resp.StatusCode)
			return
		}
		var mr mapResponse
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			errs <- err
			return
		}
		if len(mr.Degraded) == 0 {
			errs <- fmt.Errorf("budget_work_units=1 degraded nothing")
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Graceful drain: health flips to 503 and new mapping work is
	// refused, without disturbing the completed state.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: HTTP %d", resp.StatusCode)
	}
	srv.drain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: HTTP %d", resp.StatusCode)
	}
	mresp, _ := postMap(t, ts.URL+"/map?k=4", circuits[0], "text/plain")
	if mresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("map while draining: HTTP %d", mresp.StatusCode)
	}
}

// TestServerBusy fills the only slot and the whole queue with parked
// requests, then checks the next one bounces with 429.
func TestServerBusy(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{maxInflight: 1, maxQueue: 1})
	release, ok := s.acquire(context.Background())
	if !ok {
		t.Fatal("direct acquire refused")
	}
	defer release()

	queued := make(chan struct{})
	go func() {
		// Parks in the queue behind the held slot.
		close(queued)
		r, ok := s.acquire(context.Background())
		if ok {
			r()
		}
	}()
	<-queued
	waitFor(t, func() bool { return s.queued.Load() == 1 })

	resp, _ := postMap(t, ts.URL+"/map?k=4", benchBLIF(t, bench.Suite()[0]), "text/plain")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered HTTP %d, want 429", resp.StatusCode)
	}
}
