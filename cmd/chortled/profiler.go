package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"chortle"
)

// The continuous profiler keeps a bounded on-disk ring of recent
// CPU and heap profiles so "what was it doing right before it fell
// over" has an answer without anyone having had the foresight to run
// `go tool pprof` first. Each capture is a set:
//
//	cpu-<stamp>.pprof   a short CPU profile (capped at captureWindow)
//	heap-<stamp>.pprof  the heap at the end of the window
//	meta-<stamp>.json   when it ran and which trace IDs were in flight
//
// The trace IDs tie a profile to concrete requests: a slow request on
// /debug/requests links to the capture that overlapped it. The ring
// keeps the newest maxSets captures; older sets are deleted as new
// ones land. Postmortem bundles copy the whole ring into profiles/.
type profiler struct {
	dir      string
	interval time.Duration
	window   time.Duration // CPU sampling window per capture
	maxSets  int
	// traces reports the trace IDs in flight right now (the request
	// table's live set); captured into each set's meta sidecar.
	traces func() []string
	logf   func(format string, args ...any)

	captures interface{ Inc() }
	capErrs  interface{ Inc() }

	mu   sync.Mutex
	sets []string // stamps on disk, oldest first
}

// profileMeta is the meta-<stamp>.json sidecar.
type profileMeta struct {
	Time     time.Time `json:"time"`
	WindowMS int64     `json:"window_ms"`
	Traces   []string  `json:"traces,omitempty"`
}

func newProfiler(dir string, interval time.Duration, traces func() []string,
	reg *chortle.MetricsRegistry, logf func(string, ...any)) *profiler {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	window := 5 * time.Second
	if interval/2 < window {
		window = interval / 2
	}
	return &profiler{
		dir:      dir,
		interval: interval,
		window:   window,
		maxSets:  16,
		traces:   traces,
		logf:     logf,
		captures: reg.Counter("chortled_profile_captures_total",
			"Continuous-profiler capture sets written."),
		capErrs: reg.Counter("chortled_profile_capture_errors_total",
			"Continuous-profiler captures that failed."),
	}
}

// run drives the capture loop until done closes. Nil profilers
// (no -profile-interval) are inert.
func (p *profiler) run(done <-chan struct{}) {
	if p == nil {
		return
	}
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			if err := p.capture(); err != nil {
				p.capErrs.Inc()
				p.logf("chortled: profiler capture: %v", err)
			}
		}
	}
}

// capture writes one cpu/heap/meta set and prunes the ring.
func (p *profiler) capture() error {
	if err := os.MkdirAll(p.dir, 0o755); err != nil {
		return err
	}
	stamp := time.Now().UTC().Format("20060102T150405.000")

	cpu, err := os.Create(filepath.Join(p.dir, "cpu-"+stamp+".pprof"))
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return err
	}
	time.Sleep(p.window)
	pprof.StopCPUProfile()
	if err := cpu.Close(); err != nil {
		return err
	}

	heap, err := os.Create(filepath.Join(p.dir, "heap-"+stamp+".pprof"))
	if err != nil {
		return err
	}
	if err := pprof.Lookup("heap").WriteTo(heap, 0); err != nil {
		heap.Close()
		return err
	}
	if err := heap.Close(); err != nil {
		return err
	}

	meta := profileMeta{Time: time.Now(), WindowMS: p.window.Milliseconds()}
	if p.traces != nil {
		meta.Traces = p.traces()
	}
	mf, err := os.Create(filepath.Join(p.dir, "meta-"+stamp+".json"))
	if err != nil {
		return err
	}
	if err := json.NewEncoder(mf).Encode(meta); err != nil {
		mf.Close()
		return err
	}
	if err := mf.Close(); err != nil {
		return err
	}

	p.mu.Lock()
	p.sets = append(p.sets, stamp)
	var evict []string
	if n := len(p.sets) - p.maxSets; n > 0 {
		evict, p.sets = p.sets[:n], p.sets[n:]
	}
	p.mu.Unlock()
	for _, old := range evict {
		for _, prefix := range []string{"cpu-", "heap-"} {
			os.Remove(filepath.Join(p.dir, prefix+old+".pprof"))
		}
		os.Remove(filepath.Join(p.dir, "meta-"+old+".json"))
	}
	p.captures.Inc()
	return nil
}

// profileSet is one capture set as listed on /debug/requests.
type profileSet struct {
	Stamp  string    `json:"stamp"`
	Time   time.Time `json:"time"`
	Traces []string  `json:"traces,omitempty"`
}

// recent lists the on-disk capture sets, newest first. Nil-safe.
func (p *profiler) recent() []profileSet {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	stamps := append([]string(nil), p.sets...)
	p.mu.Unlock()
	sort.Sort(sort.Reverse(sort.StringSlice(stamps)))
	out := make([]profileSet, 0, len(stamps))
	for _, s := range stamps {
		set := profileSet{Stamp: s}
		if b, err := os.ReadFile(filepath.Join(p.dir, "meta-"+s+".json")); err == nil {
			var m profileMeta
			if json.Unmarshal(b, &m) == nil {
				set.Time, set.Traces = m.Time, m.Traces
			}
		}
		out = append(out, set)
	}
	return out
}

// copyInto copies the current ring into dst (a postmortem bundle's
// profiles/ directory).
func (p *profiler) copyInto(dst string) error {
	if p == nil {
		return nil
	}
	ents, err := os.ReadDir(p.dir)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	for _, e := range ents {
		if e.IsDir() || !(strings.HasSuffix(e.Name(), ".pprof") || strings.HasSuffix(e.Name(), ".json")) {
			continue
		}
		if err := copyFile(filepath.Join(p.dir, e.Name()), filepath.Join(dst, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
