package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"chortle"
	"chortle/client"
	"chortle/internal/bench"
)

// TestAccessLogParsesBack drives the full outcome mix — a 2xx solve, a
// 400, a capacity 429, and a chaos-injected panic 500 — through a
// server with -access-log attached, then parses the log back with
// ReadTraceJSONL. Every request must leave exactly one line with its
// outcome class and a non-zero trace ID; the 2xx line must carry the
// span timeline including the engine's own phases.
func TestAccessLogParsesBack(t *testing.T) {
	var logBuf bytes.Buffer
	reg := chortle.NewMetricsRegistry()
	cache := chortle.NewSharedCache(chortle.SharedCacheConfig{})
	chaos := quietChaos(1, cache, reg)
	s, ts := newTestServer(t, serverConfig{
		reg: reg, cache: cache, chaos: chaos,
		maxInflight: 1, maxQueue: 0,
		accessLog: newAccessLogger(&logBuf),
	})
	blif := benchBLIF(t, bench.Suite()[0])

	// 2xx
	resp, mr := postMap(t, ts.URL+"/map?k=4", blif, "text/plain")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("map: HTTP %d", resp.StatusCode)
	}
	if mr.TraceID == "" {
		t.Fatal("success response carries no trace_id")
	}
	if h := resp.Header.Get("X-Trace-Id"); h != mr.TraceID {
		t.Fatalf("X-Trace-Id %q != body trace_id %q", h, mr.TraceID)
	}

	// 400: unknown engine, refused at admission.
	resp400, _ := postMap(t, ts.URL+"/map?k=4&engine=nope", blif, "text/plain")
	if resp400.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad engine: HTTP %d, want 400", resp400.StatusCode)
	}

	// 429: the only slot is held and the queue is zero.
	release, ok := s.acquire(context.Background())
	if !ok {
		t.Fatal("could not hold the only slot")
	}
	resp429, _ := postMap(t, ts.URL+"/map?k=4", blif, "text/plain")
	if resp429.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("held slot: HTTP %d, want 429", resp429.StatusCode)
	}
	release()

	// 500: every subsequent solve panics; the isolator answers.
	chaos.setProbs(0, 1, 0, 0)
	resp500, _ := postMap(t, ts.URL+"/map?k=4", blif, "text/plain")
	if resp500.StatusCode != http.StatusInternalServerError {
		t.Fatalf("chaos panic: HTTP %d, want 500", resp500.StatusCode)
	}

	_, spans, err := chortle.ReadTraceJSONL(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatalf("access log does not parse back: %v", err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans flattened out of the access log")
	}
	// Re-decode line by line for the per-outcome assertions.
	var recs []chortle.AccessRecord
	dec := json.NewDecoder(bytes.NewReader(logBuf.Bytes()))
	for dec.More() {
		var rec chortle.AccessRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d access-log lines, want 4", len(recs))
	}
	want := map[string]int{"2xx": 1, "4xx": 1, "429": 1, "500": 1}
	for _, rec := range recs {
		if rec.Trace.IsZero() {
			t.Errorf("outcome %s: zero trace ID", rec.Outcome)
		}
		if rec.TotalNS <= 0 {
			t.Errorf("outcome %s: non-positive total_ns", rec.Outcome)
		}
		want[rec.Outcome]--
		if rec.Outcome == "2xx" {
			if rec.Engine != "tree" || rec.LUTs == 0 || rec.SolveNS <= 0 {
				t.Errorf("2xx record incomplete: %+v", rec)
			}
			names := map[string]bool{}
			for _, sp := range rec.Spans {
				names[sp.Name] = true
			}
			for _, n := range []string{"request", "admission", "queue", "solve", "write"} {
				if !names[n] {
					t.Errorf("2xx record missing %q span", n)
				}
			}
			enginePhases := false
			for n := range names {
				if strings.HasPrefix(n, "engine:") {
					enginePhases = true
				}
			}
			if !enginePhases {
				t.Error("2xx record has no engine:<phase> spans")
			}
		}
	}
	for outcome, n := range want {
		if n != 0 {
			t.Errorf("outcome %s: wrong line count (off by %d)", outcome, n)
		}
	}
}

// TestDebugRequestsInflightAndRing pins /debug/requests: a queued
// request is visible in the live table with its stage while it waits,
// and the recent ring is bounded, evicting oldest-first.
func TestDebugRequestsInflightAndRing(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{maxInflight: 1, maxQueue: 1, requestRing: 2})
	blif := benchBLIF(t, bench.Suite()[0])

	release, ok := s.acquire(context.Background())
	if !ok {
		t.Fatal("could not hold the only slot")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, _ := http.Post(ts.URL+"/map?k=4", "text/plain", strings.NewReader(blif))
		resp.Body.Close()
	}()
	// The request must surface in the live table, stage "queued".
	waitFor(t, func() bool {
		live, _, _ := s.requests.snapshot()
		for _, e := range live {
			if e.Path == "/map" && e.Stage == stageQueued {
				return true
			}
		}
		return false
	})
	var dbg struct {
		Inflight []inflightEntry `json:"inflight"`
	}
	resp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, e := range dbg.Inflight {
		if e.Path == "/map" && e.Stage == stageQueued && !e.Trace.IsZero() {
			found = true
		}
	}
	if !found {
		t.Fatalf("queued request not in /debug/requests inflight: %+v", dbg.Inflight)
	}
	release()
	<-done

	// Overflow the size-2 ring: after three more requests only the two
	// newest remain, newest first, and the finished counter keeps the
	// full total.
	for i := 0; i < 3; i++ {
		resp, _ := postMap(t, ts.URL+"/map?k=4", blif, "text/plain")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: HTTP %d", i, resp.StatusCode)
		}
	}
	waitFor(t, func() bool {
		_, _, finished := s.requests.snapshot()
		return finished == 4
	})
	_, recent, finished := s.requests.snapshot()
	if len(recent) != 2 {
		t.Fatalf("ring holds %d records, want 2", len(recent))
	}
	if finished != 4 {
		t.Fatalf("finished counter %d, want 4", finished)
	}
	if !recent[0].Time.After(recent[1].Time) && !recent[0].Time.Equal(recent[1].Time) {
		t.Error("recent ring is not newest-first")
	}

	// The HTML view renders self-contained.
	hresp, err := http.Get(ts.URL + "/debug/requests?format=html")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var html bytes.Buffer
	if _, err := html.ReadFrom(hresp.Body); err != nil {
		t.Fatal(err)
	}
	if ct := hresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("HTML view Content-Type %q", ct)
	}
	page := html.String()
	if !strings.Contains(page, "chortled requests") {
		t.Error("HTML view missing title")
	}
	for _, banned := range []string{"src=", "href=\"http", "@import", "url("} {
		if strings.Contains(page, banned) {
			t.Errorf("HTML view is not self-contained: found %q", banned)
		}
	}
}

// TestE2ETraceAcrossProcesses is the acceptance end-to-end: the client
// maps through a server whose only slot is held, eats a 429, retries
// after the slot frees, and succeeds — and afterward the client span
// stream and the server access log tell one story under a single trace
// ID, renderable into a valid multi-process Chrome trace.
func TestE2ETraceAcrossProcesses(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{maxInflight: 1, maxQueue: 0})
	blif := benchBLIF(t, bench.Suite()[0])

	release, ok := s.acquire(context.Background())
	if !ok {
		t.Fatal("could not hold the only slot")
	}

	var spans chortle.SpanCollector
	c, err := client.New(client.Config{
		Addrs:       []string{ts.URL},
		Spans:       &spans,
		MaxRetries:  8,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		res *client.MapResponse
		err error
	}
	done := make(chan result, 1)
	go func() {
		res, err := c.Map(context.Background(), client.MapRequest{BLIF: blif, K: 4})
		done <- result{res, err}
	}()

	// Hold the slot until the server has refused at least once, so the
	// client is forced into exactly the retry path under test.
	waitFor(t, func() bool {
		_, recent, _ := s.requests.snapshot()
		for _, rec := range recent {
			if rec.Outcome == "429" {
				return true
			}
		}
		return false
	})
	release()
	r := <-done
	if r.err != nil {
		t.Fatalf("map through retry: %v", r.err)
	}
	if r.res.TraceID == "" {
		t.Fatal("response carries no trace ID")
	}

	// One trace ID across every client span.
	clientSpans := spans.Spans()
	if len(clientSpans) == 0 {
		t.Fatal("client recorded no spans")
	}
	attempts, backoffs := 0, 0
	attemptIDs := map[chortle.SpanID]bool{}
	for _, sp := range clientSpans {
		if sp.Trace.String() != r.res.TraceID {
			t.Fatalf("client span %q trace %s != response trace %s", sp.Name, sp.Trace, r.res.TraceID)
		}
		if sp.Process != "client" {
			t.Fatalf("client span %q from process %q", sp.Name, sp.Process)
		}
		switch sp.Name {
		case "attempt":
			attempts++
			attemptIDs[sp.ID] = true
		case "backoff":
			backoffs++
		}
	}
	if attempts < 2 || backoffs < 1 {
		t.Fatalf("forced retry left %d attempts and %d backoffs, want ≥2 and ≥1", attempts, backoffs)
	}

	// The same trace ID on both server-side records (the 429 and the
	// 2xx), each parented under one of the client's attempt spans.
	_, recent, _ := s.requests.snapshot()
	var serverSpans []chortle.Span
	serverOutcomes := map[string]int{}
	for _, rec := range recent {
		if rec.Trace.String() != r.res.TraceID {
			continue
		}
		serverOutcomes[rec.Outcome]++
		serverSpans = append(serverSpans, rec.Spans...)
		for _, sp := range rec.Spans {
			if sp.Name == "request" && !attemptIDs[sp.Parent] {
				t.Errorf("server root of the %s record is not parented under a client attempt", rec.Outcome)
			}
		}
	}
	if serverOutcomes["429"] < 1 || serverOutcomes["2xx"] != 1 {
		t.Fatalf("server records under the trace: %v, want ≥1 429 and exactly one 2xx", serverOutcomes)
	}

	// The merged streams render into valid Chrome trace JSON spanning
	// both processes.
	var chromeTrace bytes.Buffer
	if err := chortle.WriteChromeTraceMulti(&chromeTrace, append(append([]chortle.Span{}, clientSpans...), serverSpans...), nil); err != nil {
		t.Fatal(err)
	}
	var recs []struct {
		Ph   string `json:"ph"`
		Pid  int    `json:"pid"`
		Name string `json:"name"`
	}
	if err := json.Unmarshal(chromeTrace.Bytes(), &recs); err != nil {
		t.Fatalf("merged trace is not valid Chrome trace JSON: %v", err)
	}
	pids := map[int]bool{}
	for _, rec := range recs {
		if rec.Ph == "X" {
			pids[rec.Pid] = true
		}
	}
	if len(pids) < 2 {
		t.Fatalf("merged timeline spans %d processes, want ≥2 (client and chortled)", len(pids))
	}
}

// TestTracingOutputByteIdentical pins the passivity contract at the
// serving layer: with the trace middleware active and an inbound
// traceparent, the mapped BLIF is byte-identical to a local map of the
// same network.
func TestTracingOutputByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{maxInflight: 2, maxQueue: 4})
	blif := benchBLIF(t, bench.Suite()[0])

	nw, err := chortle.ReadBLIF(strings.NewReader(blif))
	if err != nil {
		t.Fatal(err)
	}
	local, err := chortle.Map(nw, chortle.DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := local.Circuit.WriteBLIF(&want); err != nil {
		t.Fatal(err)
	}

	trace := chortle.NewTraceID()
	parent := chortle.NewSpanID()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/map?k=4", strings.NewReader(blif))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set(chortle.TraceparentHeader, chortle.FormatTraceparent(trace, parent))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	var mr mapResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.TraceID != trace.String() {
		t.Fatalf("server did not adopt the inbound trace: got %s, want %s", mr.TraceID, trace)
	}
	if mr.BLIF != want.String() {
		t.Fatal("served BLIF with tracing on differs from the local map")
	}
}

// TestMetricsOpenMetricsNegotiation pins the /metrics split: plain
// scrapes keep the Prometheus 0.0.4 text format, and an OpenMetrics
// Accept header switches to the exemplar-capable exposition, which a
// served request has stamped with its trace ID.
func TestMetricsOpenMetricsNegotiation(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{maxInflight: 2, maxQueue: 4})
	blif := benchBLIF(t, bench.Suite()[0])
	resp, mr := postMap(t, ts.URL+"/map?k=4", blif, "text/plain")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("map: HTTP %d", resp.StatusCode)
	}

	plain, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Body.Close()
	if ct := plain.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("default /metrics Content-Type %q", ct)
	}
	var plainBody bytes.Buffer
	plainBody.ReadFrom(plain.Body)
	if strings.Contains(plainBody.String(), "# {trace_id=") {
		t.Fatal("exemplars leaked into the Prometheus 0.0.4 exposition")
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	om, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer om.Body.Close()
	if ct := om.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Fatalf("negotiated /metrics Content-Type %q", ct)
	}
	var omBody bytes.Buffer
	omBody.ReadFrom(om.Body)
	text := omBody.String()
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatal("OpenMetrics exposition missing # EOF terminator")
	}
	if !strings.Contains(text, `# {trace_id="`+mr.TraceID+`"}`) {
		t.Fatal("request's trace ID not present as an exemplar")
	}
}

// TestStatsPerEngineBreakdown covers the engine-keyed /stats surface
// across engines and outcome classes.
func TestStatsPerEngineBreakdown(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{maxInflight: 1, maxQueue: 0})
	blif := benchBLIF(t, bench.Suite()[0])

	for _, eng := range []string{"tree", "cut"} {
		resp, _ := postMap(t, ts.URL+"/map?k=4&engine="+eng, blif, "text/plain")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: HTTP %d", eng, resp.StatusCode)
		}
	}
	// A cut-engine 429: capacity refusals count under the engine the
	// request asked for.
	release, ok := s.acquire(context.Background())
	if !ok {
		t.Fatal("could not hold the only slot")
	}
	resp, _ := postMap(t, ts.URL+"/map?k=4&engine=cut", blif, "text/plain")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("held slot: HTTP %d, want 429", resp.StatusCode)
	}
	release()

	var st statsResponse
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	tree, cut := st.Engines["tree"], st.Engines["cut"]
	if tree.Requests != 1 || tree.Outcomes["2xx"] != 1 {
		t.Errorf("tree breakdown: %+v", tree)
	}
	if cut.Requests != 2 || cut.Outcomes["2xx"] != 1 || cut.Outcomes["429"] != 1 {
		t.Errorf("cut breakdown: %+v", cut)
	}
	if _, ok := st.Engines["mis"]; ok {
		t.Error("unused engine reported in /stats")
	}
}
