package main

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chortle"
	"chortle/client"
	"chortle/internal/bench"
)

// testLog is a concurrency-safe log sink for serverConfig.logf; unlike
// t.Logf it tolerates writes from goroutines that outlive the test body.
type testLog struct {
	mu sync.Mutex
	sb strings.Builder
}

func (l *testLog) logf(format string, args ...any) {
	l.mu.Lock()
	fmt.Fprintf(&l.sb, format+"\n", args...)
	l.mu.Unlock()
}

func (l *testLog) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sb.String()
}

func metricsText(t *testing.T, reg *chortle.MetricsRegistry) string {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// quietChaos returns an injector with every fault disabled, for tests
// that want to enable exactly one.
func quietChaos(seed int64, cache *chortle.SharedCache, reg *chortle.MetricsRegistry) *chaosInjector {
	c := newChaosInjector(seed, cache, reg)
	c.setProbs(0, 0, 0, 0)
	c.rng = rand.New(rand.NewSource(seed))
	return c
}

// TestSnapshotPersistRestoreWarm is the crash-safety core: a server
// warms the cache, the snapshotter persists it, a second process
// restores it and must serve the same circuit as a cache hit with
// byte-identical output.
func TestSnapshotPersistRestoreWarm(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snap")
	blif := benchBLIF(t, bench.Suite()[0])

	reg1 := chortle.NewMetricsRegistry()
	cache1 := chortle.NewSharedCache(chortle.SharedCacheConfig{})
	_, ts1 := newTestServer(t, serverConfig{cache: cache1, reg: reg1, maxInflight: 2, maxQueue: 4})
	resp, cold := postMap(t, ts1.URL+"/map?k=4", blif, "text/plain")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold map: HTTP %d", resp.StatusCode)
	}
	sm1 := &serverMetrics{snapRejects: reg1.Counter("chortle_snapshot_rejected", "t")}
	sn1 := newSnapshotter(path, cache1, nil, sm1, reg1, nil)
	if err := sn1.write(); err != nil {
		t.Fatalf("snapshot write: %v", err)
	}

	// "Restart": fresh registry, cache, server; restore at boot.
	reg2 := chortle.NewMetricsRegistry()
	cache2 := chortle.NewSharedCache(chortle.SharedCacheConfig{})
	_, ts2 := newTestServer(t, serverConfig{cache: cache2, reg: reg2, maxInflight: 2, maxQueue: 4})
	log2 := &testLog{}
	sm2 := &serverMetrics{snapRejects: reg2.Counter("chortle_snapshot_rejected", "t")}
	sn2 := newSnapshotter(path, cache2, nil, sm2, reg2, log2.logf)
	sn2.restore()
	if !strings.Contains(log2.String(), "restored") {
		t.Fatalf("restore did not report success: %q", log2.String())
	}

	resp2, warm := postMap(t, ts2.URL+"/map?k=4", blif, "text/plain")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm-after-restart map: HTTP %d", resp2.StatusCode)
	}
	if warm.CacheHits == 0 || warm.CacheMisses != 0 {
		t.Fatalf("restored cache did not hit: hits=%d misses=%d", warm.CacheHits, warm.CacheMisses)
	}
	if warm.BLIF != cold.BLIF {
		t.Fatal("warm-after-restart BLIF differs from the original process's output")
	}
	if mt := metricsText(t, reg2); !strings.Contains(mt, "chortled_snapshot_restored_shapes") {
		t.Fatalf("restored-shapes gauge missing from metrics:\n%s", mt)
	}
}

// TestSnapshotCorruptionBootsCold: every way a snapshot file can be
// damaged must count chortle_snapshot_rejected, leave the cache empty,
// and leave the server serving correct answers — never a panic, never a
// wrong hit.
func TestSnapshotCorruptionBootsCold(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snap")
	blif := benchBLIF(t, bench.Suite()[0])

	cache := chortle.NewSharedCache(chortle.SharedCacheConfig{})
	nw, err := chortle.ReadBLIF(strings.NewReader(blif))
	if err != nil {
		t.Fatal(err)
	}
	opts := chortle.DefaultOptions(4)
	opts.SharedCache = cache
	want, err := chortle.Map(nw, opts)
	if err != nil {
		t.Fatal(err)
	}
	var wantBLIF strings.Builder
	if err := want.Circuit.WriteBLIF(&wantBLIF); err != nil {
		t.Fatal(err)
	}
	reg0 := chortle.NewMetricsRegistry()
	sm0 := &serverMetrics{snapRejects: reg0.Counter("chortle_snapshot_rejected", "t")}
	if err := newSnapshotter(path, cache, nil, sm0, reg0, nil).write(); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(good) < 64 {
		t.Fatalf("suspiciously small snapshot (%d bytes)", len(good))
	}

	corruptions := map[string]func([]byte) []byte{
		"truncated_half":  func(b []byte) []byte { return b[:len(b)/2] },
		"truncated_tail":  func(b []byte) []byte { return b[:len(b)-3] },
		"bitflip_header":  func(b []byte) []byte { c := append([]byte(nil), b...); c[2] ^= 0x40; return c },
		"bitflip_middle":  func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)/2] ^= 0x01; return c },
		"bitflip_trailer": func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)-1] ^= 0x80; return c },
		"empty":           func([]byte) []byte { return nil },
		"garbage":         func([]byte) []byte { return []byte("not a snapshot at all") },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			bad := filepath.Join(dir, name+".snap")
			if err := os.WriteFile(bad, corrupt(good), 0o644); err != nil {
				t.Fatal(err)
			}
			reg := chortle.NewMetricsRegistry()
			fresh := chortle.NewSharedCache(chortle.SharedCacheConfig{})
			srv, m := newMapServer(serverConfig{cache: fresh, reg: reg, maxInflight: 1, maxQueue: 1})
			ts := httptest.NewServer(srv.handler(m))
			defer ts.Close()

			log := &testLog{}
			sn := newSnapshotter(bad, fresh, nil, m, reg, log.logf)
			sn.restore()
			if !strings.Contains(log.String(), "rejected") && !strings.Contains(log.String(), "starting cold") {
				t.Fatalf("corruption not reported: %q", log.String())
			}
			if st := fresh.Stats(); st.Entries != 0 {
				t.Fatalf("rejected snapshot left %d entries resident", st.Entries)
			}
			if mt := metricsText(t, reg); !strings.Contains(mt, "chortle_snapshot_rejected 1") {
				t.Fatalf("chortle_snapshot_rejected not counted:\n%s", mt)
			}
			// Cold boot still serves the correct answer.
			resp, res := postMap(t, ts.URL+"/map?k=4", blif, "text/plain")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("cold serve after rejection: HTTP %d", resp.StatusCode)
			}
			if res.BLIF != wantBLIF.String() {
				t.Fatal("cold serve after rejection produced different BLIF")
			}
			if res.CacheHits != 0 {
				t.Fatalf("cold cache claims %d hits", res.CacheHits)
			}
		})
	}
}

// TestSnapshotWriteFailureKeepsPrevious: a failed rewrite (injected I/O
// fault) must leave the previous on-disk snapshot intact and readable.
func TestSnapshotWriteFailureKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snap")
	reg := chortle.NewMetricsRegistry()
	cache := chortle.NewSharedCache(chortle.SharedCacheConfig{})
	blif := benchBLIF(t, bench.Suite()[0])
	nw, _ := chortle.ReadBLIF(strings.NewReader(blif))
	opts := chortle.DefaultOptions(4)
	opts.SharedCache = cache
	if _, err := chortle.Map(nw, opts); err != nil {
		t.Fatal(err)
	}
	chaos := quietChaos(1, cache, reg)
	sm := &serverMetrics{snapRejects: reg.Counter("chortle_snapshot_rejected", "t")}
	sn := newSnapshotter(path, cache, chaos, sm, reg, nil)
	if err := sn.write(); err != nil {
		t.Fatalf("first write: %v", err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	chaos.setProbs(0, 0, 0, 1) // every snapshot write now fails
	if err := sn.write(); err == nil {
		t.Fatal("injected snapshot I/O fault did not surface")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(good) {
		t.Fatal("failed rewrite damaged the previous snapshot")
	}
	mt := metricsText(t, reg)
	for _, want := range []string{
		"chortled_snapshot_write_errors_total 1",
		"chortled_snapshot_writes_total 1",
		`chortled_chaos_injected_total{kind="snapshot_io"} 1`,
	} {
		if !strings.Contains(mt, want) {
			t.Fatalf("metrics missing %q:\n%s", want, mt)
		}
	}
}

// TestQueueExpiredDeadline504: a request whose deadline expires while it
// waits in the queue answers 504 (with Retry-After) on dequeue, without
// running the solve.
func TestQueueExpiredDeadline504(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{maxInflight: 1, maxQueue: 4})
	blif := benchBLIF(t, bench.Suite()[0])

	s.sem <- struct{}{} // occupy the only slot
	type result struct {
		code       int
		retryAfter string
	}
	done := make(chan result, 1)
	go func() {
		body := fmt.Sprintf(`{"blif":%q,"k":4,"deadline_ms":50}`, blif)
		resp, err := http.Post(ts.URL+"/map", "application/json", strings.NewReader(body))
		if err != nil {
			done <- result{code: -1}
			return
		}
		defer resp.Body.Close()
		done <- result{resp.StatusCode, resp.Header.Get("Retry-After")}
	}()
	time.Sleep(150 * time.Millisecond) // let the 50 ms deadline lapse in queue
	<-s.sem                            // release the slot; the waiter dequeues

	r := <-done
	if r.code != http.StatusGatewayTimeout {
		t.Fatalf("queued-past-deadline request: HTTP %d, want 504", r.code)
	}
	if r.retryAfter == "" {
		t.Fatal("504 refusal missing Retry-After")
	}
	if mt := metricsText(t, s.cfg.reg); !strings.Contains(mt, `chortled_requests_total{code="504"} 1`) {
		t.Fatalf("504 not counted:\n%s", mt)
	}
}

// TestCoDelDropsUnservableDeadline: with an observed p95 solve time
// above the request's remaining deadline, the server refuses with 503
// and a Retry-After sized to the p95 instead of starting doomed work.
func TestCoDelDropsUnservableDeadline(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{maxInflight: 2, maxQueue: 4})
	blif := benchBLIF(t, bench.Suite()[0])
	// The request below names no engine, so it resolves to tree; prime
	// that engine's window (the CoDel estimate is per-engine now).
	for i := 0; i < 20; i++ {
		s.solveTimes[chortle.EngineTree].observe(2 * time.Second)
	}
	body := fmt.Sprintf(`{"blif":%q,"k":4,"deadline_ms":500}`, blif)
	resp, err := http.Post(ts.URL+"/map", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unservable-deadline request: HTTP %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want %q (the p95)", ra, "2")
	}
	if mt := metricsText(t, s.cfg.reg); !strings.Contains(mt, "chortled_queue_deadline_drops_total 1") {
		t.Fatalf("queue-deadline drop not counted:\n%s", mt)
	}
	// A deadline-free request is untouched by the estimator.
	resp2, res := postMap(t, ts.URL+"/map?k=4", blif, "text/plain")
	if resp2.StatusCode != http.StatusOK || res.LUTs == 0 {
		t.Fatalf("deadline-free request: HTTP %d %+v", resp2.StatusCode, res)
	}
}

// TestPanicIsolation: a panicking request becomes a 500 with an
// incident log; the server keeps serving.
func TestPanicIsolation(t *testing.T) {
	reg := chortle.NewMetricsRegistry()
	cache := chortle.NewSharedCache(chortle.SharedCacheConfig{})
	chaos := quietChaos(7, cache, reg)
	chaos.setProbs(0, 1, 0, 0) // every solve panics
	log := &testLog{}
	_, ts := newTestServer(t, serverConfig{
		cache: cache, reg: reg, maxInflight: 2, maxQueue: 4, chaos: chaos, logf: log.logf,
	})
	blif := benchBLIF(t, bench.Suite()[0])

	resp, _ := postMap(t, ts.URL+"/map?k=4", blif, "text/plain")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request: HTTP %d, want 500", resp.StatusCode)
	}
	if lg := log.String(); !strings.Contains(lg, "INCIDENT") || !strings.Contains(lg, "injected solve panic") {
		t.Fatalf("no incident log for the panic: %q", lg)
	}
	chaos.setProbs(0, 0, 0, 0)
	resp2, res := postMap(t, ts.URL+"/map?k=4", blif, "text/plain")
	if resp2.StatusCode != http.StatusOK || res.LUTs == 0 {
		t.Fatalf("server dead after panic: HTTP %d %+v", resp2.StatusCode, res)
	}
	mt := metricsText(t, reg)
	for _, want := range []string{
		`chortled_requests_total{code="500"} 1`,
		`chortled_chaos_injected_total{kind="panic"} 1`,
	} {
		if !strings.Contains(mt, want) {
			t.Fatalf("metrics missing %q:\n%s", want, mt)
		}
	}
}

// TestMemoryPressureValve: above the watermark the valve sheds the
// cache and closes the queue (503 with Retry-After for requests that
// would wait; free slots still serve); below 80% it reopens.
func TestMemoryPressureValve(t *testing.T) {
	reg := chortle.NewMetricsRegistry()
	cache := chortle.NewSharedCache(chortle.SharedCacheConfig{})
	blif := benchBLIF(t, bench.Suite()[0])
	nw, _ := chortle.ReadBLIF(strings.NewReader(blif))
	opts := chortle.DefaultOptions(4)
	opts.SharedCache = cache
	if _, err := chortle.Map(nw, opts); err != nil {
		t.Fatal(err)
	}
	entriesBefore := cache.Stats().Entries
	if entriesBefore == 0 {
		t.Fatal("warming produced no cache entries")
	}
	log := &testLog{}
	s, m := newMapServer(serverConfig{
		cache: cache, reg: reg, maxInflight: 1, maxQueue: 8,
		memWatermark: 1, // one byte: any live heap is over it
		logf:         log.logf,
	})
	ts := httptest.NewServer(s.handler(m))
	defer ts.Close()

	if !s.memCheck(m) {
		t.Fatal("memCheck below a 1-byte watermark did not engage")
	}
	if after := cache.Stats().Entries; after >= entriesBefore && entriesBefore > 1 {
		t.Fatalf("valve did not shed: %d -> %d entries", entriesBefore, after)
	}
	// Slot occupied + valve engaged: a request that would queue is shed.
	s.sem <- struct{}{}
	resp, err := http.Post(ts.URL+"/map?k=4", "text/plain", strings.NewReader(blif))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queue-closed request: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("valve 503 missing Retry-After")
	}
	<-s.sem
	// Free slot still serves while the valve is engaged.
	resp2, res := postMap(t, ts.URL+"/map?k=4", blif, "text/plain")
	if resp2.StatusCode != http.StatusOK || res.LUTs == 0 {
		t.Fatalf("free-slot request under pressure: HTTP %d", resp2.StatusCode)
	}
	// Raise the watermark far above the heap: the valve reopens.
	s.cfg.memWatermark = 1 << 50
	if s.memCheck(m) {
		t.Fatal("valve still engaged far below the watermark")
	}
	if !strings.Contains(log.String(), "reopened") {
		t.Fatalf("valve release not logged: %q", log.String())
	}
	mt := metricsText(t, reg)
	if !strings.Contains(mt, "chortled_memory_pressure_sheds_total 1") {
		t.Fatalf("shed not counted:\n%s", mt)
	}
	if !strings.Contains(mt, "chortled_overloaded 0") {
		t.Fatalf("overloaded gauge not reset:\n%s", mt)
	}
}

// TestRefusalsCarryRetryAfter: every load-shedding refusal (429 at
// capacity, 503 draining — both /map and /healthz) carries Retry-After.
func TestRefusalsCarryRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{maxInflight: 1, maxQueue: 0})
	blif := benchBLIF(t, bench.Suite()[0])

	s.sem <- struct{}{}
	resp, err := http.Post(ts.URL+"/map?k=4", "text/plain", strings.NewReader(blif))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("saturated: HTTP %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	<-s.sem

	s.drain()
	for _, path := range []string{"/map?k=4", "/healthz"} {
		var resp *http.Response
		var err error
		if strings.HasPrefix(path, "/map") {
			resp, err = http.Post(ts.URL+path, "text/plain", strings.NewReader(blif))
		} else {
			resp, err = http.Get(ts.URL + path)
		}
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
			t.Fatalf("draining %s: HTTP %d, Retry-After %q", path, resp.StatusCode, resp.Header.Get("Retry-After"))
		}
	}
}

// TestChaosSoak hammers a fault-injecting server through the resilient
// client: ≥500 requests, ~20% seeing some fault. Asserts zero goroutine
// leaks, zero incorrect 2xx bodies (every success byte-compared against
// a direct chortle.Map), and eventual convergence — after the chaos is
// turned off, the breaker closes and requests succeed.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	circuits := bench.Suite()[:2]
	type target struct{ blif, want string }
	targets := make([]target, len(circuits))
	for i, c := range circuits {
		blif := benchBLIF(t, c)
		nw, err := chortle.ReadBLIF(strings.NewReader(blif))
		if err != nil {
			t.Fatal(err)
		}
		res, err := chortle.Map(nw, chortle.DefaultOptions(4))
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := res.Circuit.WriteBLIF(&sb); err != nil {
			t.Fatal(err)
		}
		targets[i] = target{blif, sb.String()}
	}

	goroutinesBefore := runtime.NumGoroutine()

	serverReg := chortle.NewMetricsRegistry()
	cache := chortle.NewSharedCache(chortle.SharedCacheConfig{})
	chaos := newChaosInjector(42, cache, serverReg)
	chaos.setProbs(0.10, 0.05, 0.05, 0) // ~20% of requests see a fault
	chaos.maxDelay = 10 * time.Millisecond
	log := &testLog{}
	srv, m := newMapServer(serverConfig{
		cache: cache, reg: serverReg, maxInflight: 4, maxQueue: 32,
		chaos: chaos, logf: log.logf,
	})
	ts := httptest.NewServer(srv.handler(m))

	clientReg := chortle.NewMetricsRegistry()
	c, err := client.New(client.Config{
		Addrs:            []string{ts.URL},
		MaxRetries:       12,
		BaseBackoff:      2 * time.Millisecond,
		MaxBackoff:       50 * time.Millisecond,
		FailureThreshold: 6,
		Cooldown:         30 * time.Millisecond,
		Metrics:          clientReg,
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const perWorker = 64 // 512 total ≥ 500
	var successes, failures, wrong atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tgt := targets[(w+i)%len(targets)]
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				res, err := c.Map(ctx, client.MapRequest{BLIF: tgt.blif, K: 4})
				cancel()
				if err != nil {
					failures.Add(1)
					continue
				}
				successes.Add(1)
				if res.BLIF != tgt.want {
					wrong.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	total := int64(workers * perWorker)
	t.Logf("soak: %d requests, %d ok, %d failed, %d wrong; client stats %+v",
		total, successes.Load(), failures.Load(), wrong.Load(), c.Stats())
	if wrong.Load() != 0 {
		t.Fatalf("%d incorrect 2xx bodies — resilience must never change answers", wrong.Load())
	}
	if successes.Load() < total*9/10 {
		t.Fatalf("only %d/%d requests converged to success", successes.Load(), total)
	}
	smt := metricsText(t, serverReg)
	if !strings.Contains(smt, "chortled_chaos_injected_total") {
		t.Fatalf("chaos layer injected nothing:\n%s", smt)
	}

	// Convergence + observable breaker lifecycle: force the breaker open
	// with guaranteed panics, then heal the server and watch it close.
	chaos.setProbs(0, 1, 0, 0)
	for i := 0; i < 4 && c.Stats().BreakerOpens == 0; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_, _ = c.Map(ctx, client.MapRequest{BLIF: targets[0].blif, K: 4})
		cancel()
	}
	if c.Stats().BreakerOpens == 0 {
		t.Fatal("breaker never opened under guaranteed faults")
	}
	chaos.setProbs(0, 0, 0, 0)
	time.Sleep(40 * time.Millisecond) // let the cooldown pass
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	res, err := c.Map(ctx, client.MapRequest{BLIF: targets[0].blif, K: 4})
	cancel()
	if err != nil {
		t.Fatalf("no convergence after chaos ended: %v", err)
	}
	if res.BLIF != targets[0].want {
		t.Fatal("post-chaos answer differs from direct Map")
	}
	cmt := metricsText(t, clientReg)
	for _, want := range []string{
		`chortle_client_breaker_transitions_total{to="open"}`,
		`chortle_client_breaker_transitions_total{to="closed"}`,
		"chortle_client_retries_total",
	} {
		if !strings.Contains(cmt, want) {
			t.Fatalf("client metrics missing %q:\n%s", want, cmt)
		}
	}

	// Zero goroutine leaks once the server is down and the client idle.
	ts.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= goroutinesBefore+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before soak, %d after\n%s",
				goroutinesBefore, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
