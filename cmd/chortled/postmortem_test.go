package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"chortle"
	"chortle/internal/bench"
)

// waitForBundle polls until a postmortem bundle directory appears.
func waitForBundle(t *testing.T, dir string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ents, _ := os.ReadDir(dir)
		for _, e := range ents {
			if e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") {
				return filepath.Join(dir, e.Name())
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("no postmortem bundle appeared")
	return ""
}

// ringEntries polls the recorder until the predicate finds a match in
// its snapshot, returning the full snapshot.
func ringEntries(t *testing.T, rec *chortle.FlightRecorder, match func(chortle.FlightEntry) bool) []chortle.FlightEntry {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap := rec.Snapshot()
		for _, e := range snap {
			if match(e) {
				return snap
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("flight ring never recorded the expected entry")
	return nil
}

// TestChaosPanicWritesBundleWithFailingTrace is the headline incident
// drill: a forced panic under an armed chaos layer must produce a 500,
// a flight-ring access entry and panic decision for that exact trace,
// and a complete postmortem bundle whose ring contains the failing
// request's trace ID.
func TestChaosPanicWritesBundleWithFailingTrace(t *testing.T) {
	reg := chortle.NewMetricsRegistry()
	cache := chortle.NewSharedCache(chortle.SharedCacheConfig{})
	chaos := quietChaos(1, cache, reg)
	rec := chortle.NewFlightRecorder(256, 0)
	pmDir := t.TempDir()
	dump := newDumper(pmDir, rec, reg, nil)
	log := &testLog{}
	_, ts := newTestServer(t, serverConfig{
		cache: cache, reg: reg, maxInflight: 2, maxQueue: 4,
		chaos: chaos, logf: log.logf, recorder: rec, dumper: dump,
	})
	blif := benchBLIF(t, bench.Suite()[0])

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/map?k=4", strings.NewReader(blif))
	req.Header.Set("X-Chaos-Panic", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("forced panic: HTTP %d, want 500", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("500 response missing X-Trace-Id")
	}

	// The ring must hold both halves of the story for that exact trace:
	// the panic decision and the finished access record tagged with it.
	snap := ringEntries(t, rec, func(e chortle.FlightEntry) bool {
		return e.Kind == chortle.FlightAccess && e.Access.Trace.String() == traceID
	})
	var sawDecision, sawAccess bool
	for _, e := range snap {
		switch e.Kind {
		case chortle.FlightDecision:
			if e.Decision.Reason == chortle.ReasonPanic && e.Decision.Trace.String() == traceID {
				sawDecision = true
			}
		case chortle.FlightAccess:
			if e.Access.Trace.String() == traceID {
				sawAccess = true
				if e.Access.Outcome != "500" || e.Access.Decision != chortle.ReasonPanic {
					t.Errorf("access entry = outcome %q decision %q, want 500/panic", e.Access.Outcome, e.Access.Decision)
				}
			}
		}
	}
	if !sawDecision || !sawAccess {
		t.Fatalf("ring missing panic evidence: decision=%v access=%v", sawDecision, sawAccess)
	}

	// The bundle must be complete and its ring must contain the trace.
	bundle := waitForBundle(t, pmDir)
	for _, name := range []string{"ring.jsonl", "metrics.prom", "goroutines.txt", "heap.pprof", "buildinfo.json"} {
		if _, err := os.Stat(filepath.Join(bundle, name)); err != nil {
			t.Errorf("bundle missing %s: %v", name, err)
		}
	}
	ringBytes, err := os.ReadFile(filepath.Join(bundle, "ring.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ringBytes), traceID) {
		t.Fatalf("bundle ring does not contain the failing trace %s", traceID)
	}
	f, err := os.Open(filepath.Join(bundle, "ring.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := chortle.ReadFlightJSONL(f); err != nil {
		t.Fatalf("bundle ring does not parse: %v", err)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for the access log.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

// TestRefusalsCarryDecisionReasons drives every overload refusal the
// server can produce and asserts the canonical decision reason lands in
// both the access log and the flight ring: 429 queue-full, 503
// mem-valve, 504 deadline-expired, 503 codel.
func TestRefusalsCarryDecisionReasons(t *testing.T) {
	rec := chortle.NewFlightRecorder(256, 0)
	logBuf := &syncBuffer{}
	// Two servers share one ring and one access log: refusing at the
	// door (queue-full, mem-valve) needs an empty queue, while waiting
	// out a deadline (504) and CoDel shedding need one to sit in.
	s, ts := newTestServer(t, serverConfig{
		maxInflight: 1, maxQueue: 0,
		recorder:  rec,
		accessLog: newAccessLogger(logBuf),
	})
	sq, tsq := newTestServer(t, serverConfig{
		maxInflight: 1, maxQueue: 4,
		recorder:  rec,
		accessLog: newAccessLogger(logBuf),
	})
	blif := benchBLIF(t, bench.Suite()[0])

	// 429 queue-full: the only slot is held and the queue length is 0.
	s.sem <- struct{}{}
	resp, _ := postMap(t, ts.URL+"/map?k=4", blif, "text/plain")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full: HTTP %d, want 429", resp.StatusCode)
	}

	// 503 mem-valve: the valve is engaged and the slot still held.
	s.overloaded.Store(true)
	resp, _ = postMap(t, ts.URL+"/map?k=4", blif, "text/plain")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mem-valve: HTTP %d, want 503", resp.StatusCode)
	}
	s.overloaded.Store(false)
	<-s.sem

	// 504 deadline-expired: wait in queue past the request's deadline.
	sq.sem <- struct{}{}
	done := make(chan int, 1)
	go func() {
		body := fmt.Sprintf(`{"blif":%q,"k":4,"deadline_ms":50}`, blif)
		resp, err := http.Post(tsq.URL+"/map", "application/json", strings.NewReader(body))
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	time.Sleep(150 * time.Millisecond)
	<-sq.sem
	if code := <-done; code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: HTTP %d, want 504", code)
	}

	// 503 codel: the engine's observed p95 exceeds the deadline.
	for i := 0; i < 20; i++ {
		sq.solveTimes[chortle.EngineTree].observe(2 * time.Second)
	}
	body := fmt.Sprintf(`{"blif":%q,"k":4,"deadline_ms":500}`, blif)
	cresp, err := http.Post(tsq.URL+"/map", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("codel: HTTP %d, want 503", cresp.StatusCode)
	}

	wantReasons := []string{
		chortle.ReasonQueueFull,
		chortle.ReasonMemValve,
		chortle.ReasonDeadlineExpired,
		chortle.ReasonCoDel,
	}

	// Every refusal must appear in the ring as a decision entry and as
	// a finished access record tagged with the same reason.
	last := wantReasons[len(wantReasons)-1]
	snap := ringEntries(t, rec, func(e chortle.FlightEntry) bool {
		return e.Kind == chortle.FlightAccess && e.Access.Decision == last
	})
	decisions := map[string]bool{}
	accesses := map[string]bool{}
	for _, e := range snap {
		switch e.Kind {
		case chortle.FlightDecision:
			decisions[e.Decision.Reason] = true
		case chortle.FlightAccess:
			if e.Access.Decision != "" {
				accesses[e.Access.Decision] = true
			}
		}
	}
	for _, want := range wantReasons {
		if !decisions[want] {
			t.Errorf("flight ring missing decision entry %q", want)
		}
		if !accesses[want] {
			t.Errorf("flight ring access records missing decision %q", want)
		}
	}

	// The CoDel decision must carry the admission numbers that drove it.
	for _, e := range snap {
		if e.Kind == chortle.FlightDecision && e.Decision.Reason == chortle.ReasonCoDel {
			if e.Decision.P95NS <= 0 || e.Decision.RemainingNS <= 0 {
				t.Errorf("codel decision missing state: %+v", e.Decision)
			}
		}
	}

	// And the access log must carry the same vocabulary.
	logText := logBuf.String()
	for _, want := range wantReasons {
		if !strings.Contains(logText, fmt.Sprintf(`"decision":%q`, want)) {
			t.Errorf("access log missing decision %q:\n%s", want, logText)
		}
	}
}

// TestSLOBurnTriggersDump: with a deliberately unmeetable latency
// objective, real traffic burns the error budget; the next evaluation
// tick must flip the burn-rate gauge above threshold, escalate to
// critical, and trigger a postmortem dump.
func TestSLOBurnTriggersDump(t *testing.T) {
	reg := chortle.NewMetricsRegistry()
	rec := chortle.NewFlightRecorder(256, 0)
	pmDir := t.TempDir()
	dump := newDumper(pmDir, rec, reg, nil)
	slos, err := chortle.ParseSLOs("availability=99.9,p95_solve_ms=0.000001")
	if err != nil {
		t.Fatal(err)
	}
	slo := chortle.NewSLOWatchdog(slos, reg, chortle.SLOConfig{
		Windows: []time.Duration{5 * time.Second, 10 * time.Second},
		OnChange: func(status chortle.SLOStatus, _ []chortle.SLOReport) {
			rec.RecordNote("SLO status now " + status.String())
			if status == chortle.SLOCritical {
				dump.trigger("slo-burn")
			}
		},
	})
	dump.setSLO(slo)
	_, ts := newTestServer(t, serverConfig{
		reg: reg, maxInflight: 2, maxQueue: 4,
		recorder: rec, slo: slo, dumper: dump,
	})
	blif := benchBLIF(t, bench.Suite()[0])

	// Every solve exceeds the sub-microsecond objective: an induced
	// latency fault as far as the SLO is concerned.
	for i := 0; i < 5; i++ {
		resp, _ := postMap(t, ts.URL+"/map?k=4", blif, "text/plain")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("map %d: HTTP %d", i, resp.StatusCode)
		}
	}
	slo.Tick(time.Now()) // one evaluation window

	if got := slo.Status(); got != chortle.SLOCritical {
		t.Fatalf("status after burn = %v, want critical; report %+v", got, slo.Report())
	}
	mt := metricsText(t, reg)
	if !strings.Contains(mt, "chortled_slo_burn_rate") || !strings.Contains(mt, `slo="p95_solve_ms"`) {
		t.Fatalf("burn-rate gauge missing:\n%s", mt)
	}
	report := slo.Report()
	var latency *chortle.SLOReport
	for i := range report {
		if report[i].Name == "p95_solve_ms" {
			latency = &report[i]
		}
	}
	if latency == nil || len(latency.Windows) == 0 {
		t.Fatalf("no latency report: %+v", report)
	}
	for _, w := range latency.Windows {
		if w.Burn < 10 {
			t.Errorf("burn[%s] = %.2f, want >= critical threshold 10", w.Window, w.Burn)
		}
	}

	bundle := waitForBundle(t, pmDir)
	sloBytes, err := os.ReadFile(filepath.Join(bundle, "slo.json"))
	if err != nil {
		t.Fatalf("burn-triggered bundle missing slo.json: %v", err)
	}
	if !strings.Contains(string(sloBytes), "p95_solve_ms") {
		t.Fatalf("slo.json missing the burning objective:\n%s", sloBytes)
	}
	// The responses served during the burn advertise the degraded state.
	resp, _ := postMap(t, ts.URL+"/map?k=4", blif, "text/plain")
	if got := resp.Header.Get("X-Slo-Status"); got != "critical" {
		t.Errorf("X-Slo-Status = %q, want critical", got)
	}
}

// TestObservabilityOffZeroAlloc pins the disabled state: with no
// recorder, no watchdog, and no dumper, the request hot path's
// observability hooks must not allocate.
func TestObservabilityOffZeroAlloc(t *testing.T) {
	var rec *chortle.FlightRecorder
	var slo *chortle.SLOWatchdog
	var dump *dumper
	ar := chortle.AccessRecord{Code: 200, Outcome: "2xx"}
	allocs := testing.AllocsPerRun(1000, func() {
		rec.RecordAccess(ar)
		rec.RecordDecision(chortle.OverloadDecision{Code: 429, Reason: chortle.ReasonQueueFull})
		rec.RecordNote("x")
		slo.ObserveRequest(200)
		slo.ObserveSolve(time.Millisecond)
		slo.Status()
		dump.trigger("panic")
	})
	if allocs != 0 {
		t.Fatalf("disabled observability allocates %.1f/op on the hot path, want 0", allocs)
	}
}

// TestDebugRequestsEscapesCircuitName: the /debug/requests HTML view
// renders request-controlled BLIF model names; hostile markup must
// arrive escaped, never live.
func TestDebugRequestsEscapesCircuitName(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{maxInflight: 2, maxQueue: 4})
	payload := `<script>alert("pwn")</script>&"'`
	blif := ".model " + payload + "\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n"

	resp, mr := postMap(t, ts.URL+"/map?k=4", blif, "text/plain")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("map: HTTP %d", resp.StatusCode)
	}
	if mr.Circuit != payload {
		t.Fatalf("circuit round-trip = %q, want %q", mr.Circuit, payload)
	}

	// The record lands in the recent ring after the response commits.
	deadline := time.Now().Add(2 * time.Second)
	var page string
	for time.Now().Before(deadline) {
		hresp, err := http.Get(ts.URL + "/debug/requests?format=html")
		if err != nil {
			t.Fatal(err)
		}
		page = readAll(t, hresp)
		if strings.Contains(page, "script") {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if strings.Contains(page, `<script>alert`) {
		t.Fatalf("/debug/requests serves unescaped request-controlled markup:\n%s", page)
	}
	if !strings.Contains(page, "&lt;script&gt;") {
		t.Fatalf("/debug/requests dropped the circuit name instead of escaping it:\n%s", page)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestStatsCarriesBuildInfoAndUptime: /stats must identify the running
// build and report uptime; /debug/slo and /debug/flight must serve.
func TestStatsCarriesBuildInfoAndUptime(t *testing.T) {
	reg := chortle.NewMetricsRegistry()
	chortle.RegisterBuildInfo(reg, "chortled_build_info")
	rec := chortle.NewFlightRecorder(16, 0)
	slos, _ := chortle.ParseSLOs("availability=99.9")
	slo := chortle.NewSLOWatchdog(slos, reg, chortle.SLOConfig{})
	start := time.Now().Add(-time.Minute)
	_, ts := newTestServer(t, serverConfig{
		reg: reg, maxInflight: 1, maxQueue: 1,
		recorder: rec, slo: slo, start: start,
	})

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Server.Version == "" || stats.Server.GoVersion == "" {
		t.Errorf("stats missing build identity: %+v", stats.Server)
	}
	if stats.Server.Engines != "tree,mis,cut" {
		t.Errorf("stats engines = %q, want tree,mis,cut", stats.Server.Engines)
	}
	if stats.Server.UptimeSeconds < 59 {
		t.Errorf("uptime = %.1fs, want >= 59s (started a minute ago)", stats.Server.UptimeSeconds)
	}
	if stats.Server.SLOStatus != "ok" {
		t.Errorf("slo status = %q, want ok", stats.Server.SLOStatus)
	}

	if mt := metricsText(t, reg); !strings.Contains(mt, "chortled_build_info{") {
		t.Errorf("build-info gauge missing:\n%s", mt)
	}

	sresp, err := http.Get(ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, sresp)
	if sresp.StatusCode != http.StatusOK || !strings.Contains(body, "availability") {
		t.Errorf("/debug/slo: HTTP %d body %s", sresp.StatusCode, body)
	}
	hresp, err := http.Get(ts.URL + "/debug/slo?format=html")
	if err != nil {
		t.Fatal(err)
	}
	if hbody := readAll(t, hresp); !strings.Contains(hbody, "chortled SLOs") {
		t.Errorf("/debug/slo?format=html did not render: %s", hbody)
	}

	rec.RecordNote("hello from the test")
	fresp, err := http.Get(ts.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	if fbody := readAll(t, fresp); !strings.Contains(fbody, "hello from the test") {
		t.Errorf("/debug/flight missing ring contents: %s", fbody)
	}
}
