package main

import (
	"fmt"
	"html/template"
	"net/http"

	"chortle"
)

// /debug/slo and /debug/flight: the operator's live view of the SLO
// watchdog and the flight recorder. Both follow the /debug/requests
// convention — JSON by default, a self-contained HTML page with
// ?format=html, nothing external referenced.

// sloDebugResponse is the /debug/slo JSON body.
type sloDebugResponse struct {
	Status string              `json:"status"`
	SLOs   []chortle.SLOReport `json:"slos"`
}

func (s *mapServer) handleDebugSLO(w http.ResponseWriter, r *http.Request) {
	if s.cfg.slo == nil {
		writeJSON(w, http.StatusNotFound, errResponse{"no SLOs declared (start chortled with -slo)"})
		return
	}
	resp := sloDebugResponse{
		Status: s.cfg.slo.Status().String(),
		SLOs:   s.cfg.slo.Report(),
	}
	if r.URL.Query().Get("format") == "html" {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_ = sloPage.Execute(w, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

var sloPage = template.Must(template.New("slo").Funcs(template.FuncMap{
	"pct":  func(f float64) string { return fmt.Sprintf("%.4g%%", f*100) },
	"burn": func(f float64) string { return fmt.Sprintf("%.2f", f) },
}).Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>chortled SLOs</title>
<style>
body{font-family:system-ui,sans-serif;margin:2em;color:#222}
h1{font-size:1.3em}
table{border-collapse:collapse;width:100%;font-size:0.9em}
th,td{border:1px solid #ddd;padding:4px 8px;text-align:left}
th{background:#f5f5f5}
.st-ok{color:#2a7} .st-warn{color:#b80} .st-critical{color:#c22;font-weight:bold}
small{color:#888}
</style></head><body>
<h1>chortled SLOs — <span class="st-{{.Status}}">{{.Status}}</span></h1>
<p><small>burn rate = (bad fraction over window) / error budget; 1.0 spends the budget exactly at the sustainable rate. Status escalates only when every window burns above threshold.</small></p>
<table>
<tr><th>objective</th><th>kind</th><th>target</th><th>budget</th><th>good</th><th>bad</th><th>burn by window</th><th>status</th></tr>
{{range .SLOs}}<tr>
<td>{{.Name}}{{if .ObjectiveMS}} <small>&le; {{.ObjectiveMS}} ms</small>{{end}}</td>
<td>{{.Kind}}</td>
<td>{{.Target}}%</td>
<td>{{pct .Budget}}</td>
<td>{{.Good}}</td>
<td>{{.Bad}}</td>
<td>{{range .Windows}}{{.Window}}: {{burn .Burn}} {{end}}</td>
<td class="st-{{.Status}}">{{.Status}}</td>
</tr>{{end}}
</table>
</body></html>`))

// handleDebugFlight streams the flight recorder's current ring as
// JSONL — exactly what a postmortem bundle's ring.jsonl would contain
// if one were written now.
func (s *mapServer) handleDebugFlight(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.recorder == nil {
		writeJSON(w, http.StatusNotFound, errResponse{"flight recorder disabled"})
		return
	}
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	_, _ = s.cfg.recorder.WriteJSONL(w)
}
