// Command benchdiff compares two benchjson reports (BENCH_map.json)
// and gates on performance regressions — the CI perf gate.
//
// Usage:
//
//	benchdiff [-threshold 0.10] [-v] old.json new.json
//
// Records are matched by (circuit, K, engine); records from pre-v4
// reports carry no engine field and match as the tree engine, so a new
// multi-engine report still pairs with an old baseline on the tree
// rows. For every pair the ns/op ratio,
// allocation delta and LUT count are compared; LUT drift is flagged as
// a correctness problem (the mapper is deterministic — the same input
// must produce the same LUT count regardless of speed). The command
// exits nonzero when the median ns/op ratio across all matched pairs
// exceeds 1+threshold, or when any LUT count drifts. A median over
// per-pair ratios — rather than any single pair — keeps the gate
// stable on noisy CI machines while still catching real slowdowns.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

type record struct {
	Circuit string `json:"circuit"`
	K       int    `json:"k"`
	// Engine arrived with schema v4; empty (tree) in older reports.
	Engine      string `json:"engine"`
	LUTs        int    `json:"luts"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// SharedCache arrived with schema v3; nil in older reports. It is
	// informational — the regression gate stays on ns_per_op, since
	// warm-cache time is a different (and much flatter) distribution.
	SharedCache *struct {
		ColdNsPerOp int64   `json:"cold_ns_per_op"`
		WarmNsPerOp int64   `json:"warm_ns_per_op"`
		Speedup     float64 `json:"speedup"`
	} `json:"shared_cache"`
}

type report struct {
	Schema  string   `json:"schema"`
	Results []record `json:"results"`
}

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
	}
	os.Exit(code)
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return &rep, nil
}

func key(r record) string {
	eng := r.Engine
	if eng == "" {
		eng = "tree" // pre-v4 reports measured only the tree engine
	}
	return fmt.Sprintf("%s/K=%d/%s", r.Circuit, r.K, eng)
}

// run executes the comparison; exit code 0 = within threshold,
// 1 = regression or LUT drift, 2 = usage/input error.
func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	threshold := fs.Float64("threshold", 0.10, "allowed median ns/op regression (0.10 = 10%)")
	verbose := fs.Bool("v", false, "print every matched pair, not just regressions")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() != 2 {
		return 2, fmt.Errorf("usage: benchdiff [-threshold 0.10] [-v] old.json new.json")
	}
	oldRep, err := load(fs.Arg(0))
	if err != nil {
		return 2, err
	}
	newRep, err := load(fs.Arg(1))
	if err != nil {
		return 2, err
	}

	oldBy := map[string]record{}
	for _, r := range oldRep.Results {
		oldBy[key(r)] = r
	}

	var (
		ratios   []float64
		drifted  int
		matched  int
		unpaired int
	)
	for _, nr := range newRep.Results {
		or, ok := oldBy[key(nr)]
		if !ok {
			unpaired++
			fmt.Fprintf(stdout, "NEW   %-16s %10d ns/op (no baseline)\n", key(nr), nr.NsPerOp)
			continue
		}
		delete(oldBy, key(nr))
		matched++
		ratio := float64(nr.NsPerOp) / float64(or.NsPerOp)
		ratios = append(ratios, ratio)
		drift := nr.LUTs != or.LUTs
		if drift {
			drifted++
			fmt.Fprintf(stdout, "DRIFT %-16s LUTs %d -> %d (correctness: deterministic mapper changed its output)\n",
				key(nr), or.LUTs, nr.LUTs)
		}
		if *verbose || drift || ratio > 1+*threshold {
			fmt.Fprintf(stdout, "      %-16s %10d -> %10d ns/op (%+6.1f%%)  allocs %d -> %d\n",
				key(nr), or.NsPerOp, nr.NsPerOp, (ratio-1)*100, or.AllocsPerOp, nr.AllocsPerOp)
			if *verbose && nr.SharedCache != nil {
				fmt.Fprintf(stdout, "      %-16s warm cache %d ns/op (%.1fx over cold)\n",
					"", nr.SharedCache.WarmNsPerOp, nr.SharedCache.Speedup)
			}
		}
	}
	for k := range oldBy {
		unpaired++
		fmt.Fprintf(stdout, "GONE  %-16s (in baseline only)\n", k)
	}
	if matched == 0 {
		return 2, fmt.Errorf("no (circuit, K) pairs in common")
	}

	med := median(ratios)
	fmt.Fprintf(stdout, "%d pairs compared (%d unpaired), median ns/op ratio %.3f (threshold %.3f)\n",
		matched, unpaired, med, 1+*threshold)
	if drifted > 0 {
		return 1, fmt.Errorf("%d benchmark(s) changed LUT count — mapping output drifted", drifted)
	}
	if med > 1+*threshold {
		return 1, fmt.Errorf("median ns/op regressed %.1f%% (allowed %.1f%%)", (med-1)*100, *threshold*100)
	}
	fmt.Fprintln(stdout, "PASS")
	return 0, nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
