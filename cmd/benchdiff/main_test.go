package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeReport marshals a fixture report to a temp file.
func writeReport(t *testing.T, dir, name string, recs []record) string {
	t.Helper()
	rep := report{Schema: "chortle-bench-map/v2", Results: recs}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func baseline() []record {
	return []record{
		{Circuit: "9symml", K: 4, LUTs: 51, NsPerOp: 180000, AllocsPerOp: 1354},
		{Circuit: "rot", K: 4, LUTs: 300, NsPerOp: 900000, AllocsPerOp: 5000},
		{Circuit: "des", K: 4, LUTs: 1200, NsPerOp: 4000000, AllocsPerOp: 20000},
	}
}

// scale returns the baseline with every ns/op multiplied by f.
func scale(f float64) []record {
	recs := baseline()
	for i := range recs {
		recs[i].NsPerOp = int64(float64(recs[i].NsPerOp) * f)
	}
	return recs
}

func diff(t *testing.T, threshold string, oldRecs, newRecs []record) (int, string) {
	t.Helper()
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", oldRecs)
	newPath := writeReport(t, dir, "new.json", newRecs)
	var out bytes.Buffer
	code, err := run([]string{"-threshold", threshold, oldPath, newPath}, &out)
	t.Logf("exit %d, err %v\n%s", code, err, out.String())
	return code, out.String()
}

func TestIdenticalPasses(t *testing.T) {
	code, out := diff(t, "0.10", baseline(), baseline())
	if code != 0 {
		t.Fatalf("identical reports: exit %d, want 0", code)
	}
	if !strings.Contains(out, "PASS") {
		t.Error("missing PASS line")
	}
}

// TestRegressionFails is the acceptance pin: an injected >10% median
// slowdown must exit nonzero.
func TestRegressionFails(t *testing.T) {
	code, out := diff(t, "0.10", baseline(), scale(1.25))
	if code == 0 {
		t.Fatal("25% regression passed a 10% gate")
	}
	if !strings.Contains(out, "median ns/op ratio 1.250") {
		t.Errorf("ratio not reported:\n%s", out)
	}
}

func TestWithinThresholdPasses(t *testing.T) {
	if code, _ := diff(t, "0.10", baseline(), scale(1.05)); code != 0 {
		t.Fatal("5% drift failed a 10% gate")
	}
	// Speedups always pass.
	if code, _ := diff(t, "0.10", baseline(), scale(0.5)); code != 0 {
		t.Fatal("a 2x speedup failed the gate")
	}
}

// TestMedianNotMax: one outlier pair does not trip the gate; the
// median across pairs does.
func TestMedianNotMax(t *testing.T) {
	recs := baseline()
	recs[0].NsPerOp *= 3 // one noisy pair
	if code, _ := diff(t, "0.10", baseline(), recs); code != 0 {
		t.Fatal("single outlier tripped the median gate")
	}
}

func TestLUTDriftFails(t *testing.T) {
	recs := baseline()
	recs[1].LUTs++
	code, out := diff(t, "0.10", baseline(), recs)
	if code == 0 {
		t.Fatal("LUT drift passed")
	}
	if !strings.Contains(out, "DRIFT") {
		t.Errorf("drift not flagged:\n%s", out)
	}
}

func TestUnpairedReported(t *testing.T) {
	newRecs := append(baseline()[:2], record{Circuit: "extra", K: 5, LUTs: 9, NsPerOp: 1000})
	code, out := diff(t, "0.10", baseline(), newRecs)
	if code != 0 {
		t.Fatalf("unpaired records should not fail the gate: exit %d", code)
	}
	if !strings.Contains(out, "NEW") || !strings.Contains(out, "GONE") {
		t.Errorf("unpaired records not reported:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if code, err := run(nil, &out); code != 2 || err == nil {
		t.Errorf("no args: code %d err %v, want 2 + error", code, err)
	}
	if code, _ := run([]string{"a.json"}, &out); code != 2 {
		t.Error("one arg accepted")
	}
	dir := t.TempDir()
	good := writeReport(t, dir, "good.json", baseline())
	missing := filepath.Join(dir, "missing.json")
	if code, _ := run([]string{good, missing}, &out); code != 2 {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	if code, _ := run([]string{good, bad}, &out); code != 2 {
		t.Error("malformed file accepted")
	}
	empty := writeReport(t, dir, "empty.json", nil)
	if code, _ := run([]string{good, empty}, &out); code != 2 {
		t.Error("empty results accepted")
	}
	disjoint := writeReport(t, dir, "disjoint.json",
		[]record{{Circuit: "other", K: 9, NsPerOp: 1}})
	if code, _ := run([]string{good, disjoint}, &out); code != 2 {
		t.Error("no common pairs accepted")
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %v", m)
	}
	if m := median([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
}

// TestEngineAwareMatching pins the v4 key semantics: records match on
// (circuit, K, engine); a missing engine field means the tree engine,
// so old single-engine baselines still pair with new multi-engine
// reports on the tree rows, and the cut rows show up as unpaired
// instead of cross-matching a different engine's numbers.
func TestEngineAwareMatching(t *testing.T) {
	oldRecs := baseline() // pre-v4: no engine field
	newRecs := append(scale(1.0),
		record{Circuit: "9symml", K: 4, Engine: "cut", LUTs: 40, NsPerOp: 50000})
	newRecs[0].Engine = "tree"
	code, out := diff(t, "0.10", oldRecs, newRecs)
	if code != 0 {
		t.Fatalf("tree rows identical: exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "NEW   9symml/K=4/cut") {
		t.Errorf("cut record should be unpaired, got:\n%s", out)
	}
	if !strings.Contains(out, "3 pairs compared (1 unpaired)") {
		t.Errorf("want 3 matched tree pairs, got:\n%s", out)
	}

	// A cut-row LUT drift must gate exactly like a tree one.
	oldV4 := append(baseline(),
		record{Circuit: "9symml", K: 4, Engine: "cut", LUTs: 40, NsPerOp: 50000})
	newV4 := append(baseline(),
		record{Circuit: "9symml", K: 4, Engine: "cut", LUTs: 41, NsPerOp: 50000})
	code, out = diff(t, "0.10", oldV4, newV4)
	if code != 1 {
		t.Fatalf("cut LUT drift: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "DRIFT 9symml/K=4/cut") {
		t.Errorf("drift should name the cut row, got:\n%s", out)
	}
}
