// Command compare regenerates the paper's experimental tables: for each
// benchmark and each K it optimizes the network with the mini-MIS
// standard script, maps it with both the MIS II-style baseline and
// Chortle, verifies both mapped circuits by simulation, and prints the
// paper's table layout (LUT counts, % difference, times). The per-K
// averages and speedup ranges are collected into one summary block
// after all tables rather than interleaved between them.
//
// Usage:
//
//	compare                 # all four tables (K=2..5)
//	compare -k 4            # Table 3 only
//	compare -circuits alu2,rot -k 5
//	compare -engines tree,cut  # engine columns beside MIS (the default)
//	compare -engines cut    # priority-cut engine only
//	compare -noverify       # skip simulation cross-checks (faster)
//	compare -stats          # per-circuit mapper observability to stderr
//	compare -trace t.jsonl  # stream all mapping events as JSON lines
//	compare -timeout 30s    # hard per-circuit limit on the Chortle map
//	compare -budget 1000000 # per-tree search budget in DP work units
//	compare -debug-addr :6060  # /metrics, expvar and pprof while running
//	compare -report cmp.html   # self-contained HTML report of the tables
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"chortle"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the command body, factored out of main so tests can drive it
// with captured streams. It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kFlag    = fs.Int("k", 0, "single K to run (default: 2,3,4,5)")
		circuits = fs.String("circuits", "", "comma-separated circuit subset (default: all twelve)")
		noverify = fs.Bool("noverify", false, "skip simulation verification of the mapped circuits")
		parallel = fs.Bool("parallel", true, "compute tree DPs on the worker pool (identical output either way)")
		stats    = fs.Bool("stats", false, "print each Chortle mapping's observability report to stderr")
		trace    = fs.String("trace", "", "stream every Chortle mapping's events as JSON lines to this file")
		timeout  = fs.Duration("timeout", 0, "hard per-circuit wall-clock limit for the Chortle map (0 = none)")
		budget   = fs.Int64("budget", 0, "per-tree search budget in DP work units (0 = unlimited); over-budget trees fall back to bin packing")
		debug    = fs.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this host:port while comparing")
		report   = fs.String("report", "", "write the comparison as a self-contained HTML report to this file")
		engines  = fs.String("engines", "tree,cut", "comma-separated engines to map beside the MIS baseline (tree, cut); the first is primary")
		version  = fs.Bool("version", false, "print build identity and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		chortle.PrintVersion(stdout, "compare")
		return 0
	}
	var engineList []chortle.Engine
	for _, name := range strings.Split(*engines, ",") {
		e, err := chortle.ParseEngine(name)
		if err != nil {
			fmt.Fprintln(stderr, "compare:", err)
			return 2
		}
		engineList = append(engineList, e)
	}

	var observers []chortle.Observer
	if *debug != "" {
		reg := chortle.NewMetricsRegistry()
		srv, err := chortle.ServeDebug(*debug, reg)
		if err != nil {
			fmt.Fprintln(stderr, "compare:", err)
			return 1
		}
		fmt.Fprintf(stderr, "debug server on http://%s\n", srv.Addr())
		defer srv.Shutdown(context.Background())
		observers = append(observers, chortle.NewMetricsObserverWithRuntime(reg))
	}

	var ks []int
	if *kFlag != 0 {
		ks = []int{*kFlag}
	} else {
		ks = []int{2, 3, 4, 5}
	}
	opts := chortle.CompareOptions{
		Verify:     !*noverify,
		Sequential: !*parallel,
		Timeout:    *timeout,
		Budget:     *budget,
		// -report needs each run's aggregated stats for its charts, so it
		// turns collection on even without -stats (which only controls the
		// stderr dump).
		Stats:   *stats || *report != "",
		Engines: engineList,
	}
	if *circuits != "" {
		opts.Circuits = strings.Split(*circuits, ",")
	}
	var traceSink *chortle.JSONLObserver
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(stderr, "compare:", err)
			return 1
		}
		defer f.Close()
		traceSink = chortle.NewJSONLObserver(f)
		observers = append(observers, traceSink)
	}
	switch len(observers) {
	case 0:
	case 1:
		opts.Observer = observers[0]
	default:
		opts.Observer = chortle.MultiObserver(observers)
	}
	var tables []chortle.Table
	synthetic := false
	for _, k := range ks {
		tbl, err := chortle.CompareSuite(k, opts)
		if err != nil {
			fmt.Fprintln(stderr, "compare:", err)
			return 1
		}
		fmt.Fprint(stdout, tbl.FormatRows())
		fmt.Fprintln(stdout)
		for _, r := range tbl.Rows {
			if r.Synthetic {
				synthetic = true
			}
			if *stats && r.Report != nil {
				fmt.Fprintf(stderr, "--- %s K=%d ---\n%s", r.Circuit, k, r.Report.Format())
			}
		}
		tables = append(tables, tbl)
	}
	fmt.Fprintln(stdout, "Summary")
	for _, tbl := range tables {
		fmt.Fprint(stdout, tbl.FormatSummary())
	}
	if synthetic {
		fmt.Fprintln(stdout, "(* synthetic stand-in; see DESIGN.md)")
	}
	if traceSink != nil {
		if err := traceSink.Err(); err != nil {
			fmt.Fprintf(stderr, "compare: writing %s: %v\n", *trace, err)
			return 1
		}
	}
	if *report != "" {
		if err := writeReport(*report, tables); err != nil {
			fmt.Fprintf(stderr, "compare: writing %s: %v\n", *report, err)
			return 1
		}
	}
	return 0
}

// writeReport renders the comparison tables as one self-contained HTML
// file: the paper's table as the comparison header, then one section
// per circuit-K pair with the run's aggregated observability charts.
func writeReport(path string, tables []chortle.Table) error {
	data := &chortle.RunReport{
		Title:     "chortle vs MIS baseline",
		Generated: "generated " + time.Now().Format(time.RFC1123) + " by compare -report",
	}
	for _, tbl := range tables {
		primary := chortle.EngineTree
		if len(tbl.Engines) > 0 {
			primary = tbl.Engines[0]
		}
		for _, r := range tbl.Rows {
			luts, _, diff, dur, _ := r.Cols(primary)
			data.Compare = append(data.Compare, chortle.ReportCompareRow{
				Circuit:      fmt.Sprintf("%s (K=%d, %s)", r.Circuit, tbl.K, primary),
				BaselineLUTs: r.MISLUTs,
				ChortleLUTs:  luts,
				// The table's "%" column is positive when the engine wins;
				// the report's diff is a signed LUT delta (negative =
				// fewer LUTs), so flip the sign.
				DiffPct:      -diff,
				BaselineTime: r.MISTime,
				ChortleTime:  dur,
				Synthetic:    r.Synthetic,
			})
			if r.Report != nil {
				data.Sections = append(data.Sections, chortle.ReportSection{
					Name:     r.Circuit,
					K:        tbl.K,
					LUTs:     luts,
					Depth:    r.Report.Depth,
					Trees:    r.Report.Trees,
					Degraded: len(r.Report.Degraded),
					Stats:    r.Report,
				})
			}
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := chortle.WriteRunReport(f, data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
