// Command compare regenerates the paper's experimental tables: for each
// benchmark and each K it optimizes the network with the mini-MIS
// standard script, maps it with both the MIS II-style baseline and
// Chortle, verifies both mapped circuits by simulation, and prints the
// paper's table layout (LUT counts, % difference, times).
//
// Usage:
//
//	compare                 # all four tables (K=2..5)
//	compare -k 4            # Table 3 only
//	compare -circuits alu2,rot -k 5
//	compare -noverify       # skip simulation cross-checks (faster)
//	compare -timeout 30s    # hard per-circuit limit on the Chortle map
//	compare -budget 1000000 # per-tree search budget in DP work units
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"chortle"
)

func main() {
	var (
		kFlag    = flag.Int("k", 0, "single K to run (default: 2,3,4,5)")
		circuits = flag.String("circuits", "", "comma-separated circuit subset (default: all twelve)")
		noverify = flag.Bool("noverify", false, "skip simulation verification of the mapped circuits")
		parallel = flag.Bool("parallel", true, "compute tree DPs on the worker pool (identical output either way)")
		timeout  = flag.Duration("timeout", 0, "hard per-circuit wall-clock limit for the Chortle map (0 = none)")
		budget   = flag.Int64("budget", 0, "per-tree search budget in DP work units (0 = unlimited); over-budget trees fall back to bin packing")
	)
	flag.Parse()

	var ks []int
	if *kFlag != 0 {
		ks = []int{*kFlag}
	} else {
		ks = []int{2, 3, 4, 5}
	}
	opts := chortle.CompareOptions{
		Verify:     !*noverify,
		Sequential: !*parallel,
		Timeout:    *timeout,
		Budget:     *budget,
	}
	if *circuits != "" {
		opts.Circuits = strings.Split(*circuits, ",")
	}
	for i, k := range ks {
		tbl, err := chortle.CompareSuite(k, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "compare:", err)
			os.Exit(1)
		}
		fmt.Print(tbl.Format())
		if i != len(ks)-1 {
			fmt.Println()
		}
	}
}
