package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSummaryAfterAllTables covers the summary-routing fix: with two K
// values, every table's rows must print before the first summary line,
// and the summary block must carry one line per K.
func TestSummaryAfterAllTables(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-circuits", "count", "-k", "0", "-noverify"}, &stdout, &stderr)
	// -k 0 means all of 2..5; keep the run cheap with a single circuit.
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	sumIdx := strings.Index(out, "Summary")
	if sumIdx < 0 {
		t.Fatalf("no Summary block in output:\n%s", out)
	}
	head, tail := out[:sumIdx], out[sumIdx:]
	for k := 2; k <= 5; k++ {
		table := "Table: Results, K=" + string(rune('0'+k))
		if !strings.Contains(head, table) {
			t.Errorf("table for K=%d missing before the summary block", k)
		}
		sum := "K=" + string(rune('0'+k)) + ": average"
		if !strings.Contains(tail, sum) {
			t.Errorf("summary line for K=%d missing after the Summary header", k)
		}
	}
	if strings.Contains(head, "average") {
		t.Errorf("summary text interleaved between tables:\n%s", head)
	}
}

// TestStatsFlag checks that -stats routes per-circuit observability
// reports to stderr and keeps stdout's table format unchanged.
func TestStatsFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-circuits", "count", "-k", "4", "-noverify", "-stats"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	errOut := stderr.String()
	for _, want := range []string{"--- count K=4 ---", "phases:", "search:"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("stderr missing %q:\n%s", want, errOut)
		}
	}
	if strings.Contains(stdout.String(), "phases:") {
		t.Error("observability report leaked to stdout")
	}
}

// TestTraceFlag checks that -trace writes a parseable JSONL event
// stream covering the mapping bracket.
func TestTraceFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var stdout, stderr strings.Builder
	code := run([]string{"-circuits", "count", "-k", "3", "-noverify", "-trace", path}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 {
		t.Fatalf("trace has %d lines, want several", len(lines))
	}
	var starts, ends int
	for _, line := range lines {
		var e map[string]any
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("unparseable trace line %q: %v", line, err)
		}
		switch e["kind"] {
		case "map-start":
			starts++
		case "map-end":
			ends++
		}
	}
	if starts == 0 || ends == 0 {
		t.Errorf("trace has %d map-start and %d map-end events, want at least one of each", starts, ends)
	}
}

// TestBadFlagExitCode pins the flag-error path.
func TestBadFlagExitCode(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d for a bad flag, want 2", code)
	}
}
