// Command benchjson measures the Chortle mapper over the benchmark
// suite and writes the results as JSON — the repository's machine-
// readable performance trajectory file (BENCH_map.json). Each record
// carries the LUT count (a correctness anchor: it must never drift),
// the mapping wall time, and the allocation profile per Map call.
//
// Usage:
//
//	benchjson [-k 4] [-circuits des,rot] [-reps 5] [-o BENCH_map.json]
//
// With no -k every K in 2..5 is measured.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"chortle"
)

type record struct {
	Circuit     string `json:"circuit"`
	K           int    `json:"k"`
	LUTs        int    `json:"luts"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

type report struct {
	Schema     string `json:"schema"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Options    struct {
		Parallel bool `json:"parallel"`
		Memoize  bool `json:"memoize"`
	} `json:"options"`
	Results []record `json:"results"`
}

func main() {
	var (
		kFlag    = flag.Int("k", 0, "single K to measure (default: 2,3,4,5)")
		circuits = flag.String("circuits", "", "comma-separated circuit subset (default: all twelve)")
		reps     = flag.Int("reps", 5, "timed repetitions per (circuit, K); the mean is reported")
		out      = flag.String("o", "BENCH_map.json", "output file (- for stdout)")
		seq      = flag.Bool("sequential", false, "measure with Parallel and Memoize off")
	)
	flag.Parse()

	ks := []int{2, 3, 4, 5}
	if *kFlag != 0 {
		ks = []int{*kFlag}
	}
	names := chortle.SuiteNames()
	if *circuits != "" {
		names = strings.Split(*circuits, ",")
	}
	sort.Strings(names)

	var rep report
	rep.Schema = "chortle-bench-map/v1"
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Options.Parallel = !*seq
	rep.Options.Memoize = !*seq

	for _, name := range names {
		nw, err := chortle.BenchmarkNetwork(name)
		if err != nil {
			fatal(err)
		}
		for _, k := range ks {
			opts := chortle.DefaultOptions(k)
			opts.Parallel = !*seq
			opts.Memoize = !*seq
			rec, err := measure(name, nw, opts, *reps)
			if err != nil {
				fatal(err)
			}
			rep.Results = append(rep.Results, rec)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

func measure(name string, nw *chortle.Network, opts chortle.Options, reps int) (record, error) {
	// Warm up: pulls the arena pool to steady state and gives a LUT count
	// to anchor against.
	res, err := chortle.Map(nw, opts)
	if err != nil {
		return record{}, fmt.Errorf("%s K=%d: %w", name, opts.K, err)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := chortle.Map(nw, opts); err != nil {
			return record{}, fmt.Errorf("%s K=%d: %w", name, opts.K, err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	return record{
		Circuit:     name,
		K:           opts.K,
		LUTs:        res.LUTs,
		NsPerOp:     elapsed.Nanoseconds() / int64(reps),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(reps),
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(reps),
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
