// Command benchjson measures the Chortle mapper over the benchmark
// suite and writes the results as JSON — the repository's machine-
// readable performance trajectory file (BENCH_map.json). Each record
// carries the LUT count (a correctness anchor: it must never drift),
// the mapping wall time, the allocation profile per Map call, and —
// since schema v3 — the cross-run shape cache's cold-versus-warm wall
// time on the same circuit (readers of v2 reports ignore the extra
// field). Schema v4 added the engine dimension: each record names the
// mapping engine it measured, and the default run covers both the tree
// DP and the priority-cut engine, so the cut mapper's speed and LUT
// counts are gated alongside the paper algorithm's.
//
// Usage:
//
//	benchjson [-k 4] [-engines tree,cut] [-circuits des,rot] [-reps 5]
//	          [-o BENCH_map.json]
//
// With no -k every K in 2..5 is measured.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"chortle"
)

type record struct {
	Circuit string `json:"circuit"`
	K       int    `json:"k"`
	// Engine is the mapping engine measured (schema v4); absent in
	// older reports, which measured only the tree engine.
	Engine      string      `json:"engine,omitempty"`
	LUTs        int         `json:"luts"`
	NsPerOp     int64       `json:"ns_per_op"`
	AllocsPerOp int64       `json:"allocs_per_op"`
	BytesPerOp  int64       `json:"bytes_per_op"`
	Stats       *statBlock  `json:"stats,omitempty"`
	SharedCache *cacheBlock `json:"shared_cache,omitempty"`
}

// cacheBlock (schema v3) measures the cross-run shape cache on this
// (circuit, K): mean wall time mapping through a fresh cache per rep
// (cold) versus through a cache warmed by one prior mapping of the same
// circuit (warm), and the warm run's hit/miss counts. The LUT count is
// identical in both — only the time moves.
type cacheBlock struct {
	ColdNsPerOp int64   `json:"cold_ns_per_op"`
	WarmNsPerOp int64   `json:"warm_ns_per_op"`
	Speedup     float64 `json:"speedup"`
	Hits        int     `json:"hits"`
	Misses      int     `json:"misses"`
}

// statBlock is the machine-readable slice of the mapper's observability
// report, captured from a separate observed run so the timed reps stay
// unobserved. Phase times come from that observed run and are in
// nanoseconds.
type statBlock struct {
	Depth           int              `json:"depth"`
	Trees           int              `json:"trees"`
	PhaseNs         map[string]int64 `json:"phase_ns"`
	Solves          int              `json:"solves"`
	WorkUnits       int64            `json:"work_units"`
	MemoHits        int              `json:"memo_hits"`
	MemoHitRate     float64          `json:"memo_hit_rate"`
	TemplateReplays int              `json:"template_replays"`
	Degraded        int              `json:"degraded"`
	ArenaBytes      int64            `json:"arena_bytes"`
	LUTInputHist    map[string]int   `json:"lut_input_hist"`
}

type report struct {
	Schema     string `json:"schema"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Options    struct {
		Parallel bool `json:"parallel"`
		Memoize  bool `json:"memoize"`
	} `json:"options"`
	Results []record `json:"results"`
}

func main() {
	var (
		kFlag    = flag.Int("k", 0, "single K to measure (default: 2,3,4,5)")
		circuits = flag.String("circuits", "", "comma-separated circuit subset (default: all twelve)")
		engines  = flag.String("engines", "tree,cut", "comma-separated engines to measure (tree, mis, cut)")
		reps     = flag.Int("reps", 5, "timed repetitions per (circuit, K); the mean is reported")
		out      = flag.String("o", "BENCH_map.json", "output file (- for stdout)")
		seq      = flag.Bool("sequential", false, "measure with Parallel and Memoize off")
		debug    = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this host:port while benchmarking")
	)
	flag.Parse()

	// The metrics bridge only rides the observed warm-up runs: the timed
	// reps keep a nil observer so the numbers stay undisturbed, but pprof
	// covers the whole process either way. metricsObs stays a nil
	// interface (not a typed-nil pointer) when -debug-addr is unset.
	var metricsObs chortle.Observer
	if *debug != "" {
		reg := chortle.NewMetricsRegistry()
		metricsObs = chortle.NewMetricsObserverWithRuntime(reg)
		srv, err := chortle.ServeDebug(*debug, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s\n", srv.Addr())
		defer srv.Shutdown(context.Background())
	}

	ks := []int{2, 3, 4, 5}
	if *kFlag != 0 {
		ks = []int{*kFlag}
	}
	names := chortle.SuiteNames()
	if *circuits != "" {
		names = strings.Split(*circuits, ",")
	}
	sort.Strings(names)

	var engineList []chortle.Engine
	for _, s := range strings.Split(*engines, ",") {
		e, err := chortle.ParseEngine(s)
		if err != nil {
			fatal(err)
		}
		engineList = append(engineList, e)
	}

	var rep report
	rep.Schema = "chortle-bench-map/v4"
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Options.Parallel = !*seq
	rep.Options.Memoize = !*seq

	for _, name := range names {
		nw, err := chortle.BenchmarkNetwork(name)
		if err != nil {
			fatal(err)
		}
		for _, k := range ks {
			for _, eng := range engineList {
				opts := chortle.DefaultOptions(k)
				opts.Engine = eng
				opts.Parallel = !*seq
				opts.Memoize = !*seq
				rec, err := measure(name, nw, opts, *reps, metricsObs)
				if err != nil {
					fatal(err)
				}
				rep.Results = append(rep.Results, rec)
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

func measure(name string, nw *chortle.Network, opts chortle.Options, reps int, extra chortle.Observer) (record, error) {
	// Warm up: pulls the arena pool to steady state and gives a LUT count
	// to anchor against. The warm-up run is also the observed one — the
	// timed reps below map with a nil observer, so the stats block never
	// taxes the numbers it rides along with.
	var col chortle.Collector
	obsOpts := opts
	obsOpts.Observer = &col
	if extra != nil {
		obsOpts.Observer = chortle.MultiObserver{&col, extra}
	}
	res, err := chortle.Map(nw, obsOpts)
	if err != nil {
		return record{}, fmt.Errorf("%s K=%d: %w", name, opts.K, err)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := chortle.Map(nw, opts); err != nil {
			return record{}, fmt.Errorf("%s K=%d: %w", name, opts.K, err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	// The MIS engine is unobserved, so its record carries no stats
	// block; the timing and LUT anchor still apply.
	var stats *statBlock
	if opts.Engine != chortle.EngineMIS {
		stats = buildStats(col.Report())
	}

	// Shared-cache warm-vs-cold measurement. Cold pays publication on
	// top of the solve (a fresh cache per rep); warm maps through a
	// cache already holding every shape of this circuit. Only
	// meaningful for the tree engine with the memo on — the shared
	// tier rides the tree DP's memoization.
	var cache *cacheBlock
	if opts.Memoize && opts.Engine == chortle.EngineTree {
		cache, err = measureCache(name, nw, opts, reps)
		if err != nil {
			return record{}, err
		}
	}

	return record{
		Circuit:     name,
		K:           opts.K,
		Engine:      opts.Engine.String(),
		LUTs:        res.LUTs,
		NsPerOp:     elapsed.Nanoseconds() / int64(reps),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(reps),
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(reps),
		Stats:       stats,
		SharedCache: cache,
	}, nil
}

func buildStats(r *chortle.MapReport) *statBlock {
	stats := &statBlock{
		Depth:           r.Depth,
		Trees:           r.Trees,
		PhaseNs:         make(map[string]int64, len(r.Phases)),
		Solves:          r.Solves,
		WorkUnits:       r.WorkUnits,
		MemoHits:        r.MemoHits,
		MemoHitRate:     r.MemoHitRate(),
		TemplateReplays: r.TemplateReplays,
		Degraded:        len(r.Degraded),
		ArenaBytes:      r.ArenaBytes,
		LUTInputHist:    make(map[string]int, len(r.LUTInputHist)),
	}
	for _, p := range r.Phases {
		stats.PhaseNs[p.Name] = p.Wall.Nanoseconds()
	}
	for in, n := range r.LUTInputHist {
		stats.LUTInputHist[fmt.Sprint(in)] = n
	}
	return stats
}

func measureCache(name string, nw *chortle.Network, opts chortle.Options, reps int) (*cacheBlock, error) {
	cold := time.Duration(0)
	for i := 0; i < reps; i++ {
		c := chortle.NewSharedCache(chortle.SharedCacheConfig{})
		o := opts
		o.SharedCache = c
		t0 := time.Now()
		if _, err := chortle.Map(nw, o); err != nil {
			return nil, fmt.Errorf("%s K=%d cold: %w", name, opts.K, err)
		}
		cold += time.Since(t0)
	}
	c := chortle.NewSharedCache(chortle.SharedCacheConfig{})
	o := opts
	o.SharedCache = c
	if _, err := chortle.Map(nw, o); err != nil {
		return nil, fmt.Errorf("%s K=%d warmup: %w", name, opts.K, err)
	}
	warm := time.Duration(0)
	var hits, misses int
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		wres, err := chortle.Map(nw, o)
		if err != nil {
			return nil, fmt.Errorf("%s K=%d warm: %w", name, opts.K, err)
		}
		warm += time.Since(t0)
		hits, misses = wres.CacheHits, wres.CacheMisses
	}
	cache := &cacheBlock{
		ColdNsPerOp: cold.Nanoseconds() / int64(reps),
		WarmNsPerOp: warm.Nanoseconds() / int64(reps),
		Hits:        hits,
		Misses:      misses,
	}
	if cache.WarmNsPerOp > 0 {
		cache.Speedup = float64(cache.ColdNsPerOp) / float64(cache.WarmNsPerOp)
	}
	return cache, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
