package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"chortle"
	"chortle/client"
)

// remoteFlags is the -server mode configuration.
type remoteFlags struct {
	addrs    []string // chortled base URLs
	hedge    time.Duration
	out      string
	optimize bool
	plaIn    bool
	stats    bool
	timeout  time.Duration
	k        int
	budget   int64
	engine   string
	traceOut string // -server-trace: client-side span JSONL
}

// remoteMap sends each input to a chortled fleet through the resilient
// client (retries with backoff and jitter, Retry-After awareness,
// per-address circuit breakers, optional hedging) instead of mapping
// in-process. The server's answer is byte-identical to a local map of
// the same network and options, so -server changes where the work runs,
// never the result.
func remoteMap(paths []string, rf remoteFlags) {
	var spans chortle.SpanRecorder
	if rf.traceOut != "" {
		f, err := os.Create(rf.traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		spans = chortle.NewSpanJSONL(f)
	}
	c, err := client.New(client.Config{
		Addrs:      rf.addrs,
		HedgeDelay: rf.hedge,
		Spans:      spans,
	})
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if rf.out != "" {
		f, err := os.Create(rf.out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	ctx := context.Background()
	if rf.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rf.timeout)
		defer cancel()
	}

	// Stdin is the single nameless input, mirroring the local path.
	if len(paths) == 0 {
		paths = []string{"-"}
	}
	for _, p := range paths {
		in := os.Stdin
		if p != "-" {
			f, err := os.Open(p)
			if err != nil {
				fatal(err)
			}
			in = f
		}
		raw, err := io.ReadAll(in)
		if p != "-" {
			in.Close()
		}
		if err != nil {
			fatal(fmt.Errorf("%s: %w", p, err))
		}
		// BLIF input without local preprocessing ships verbatim, so the
		// server parses exactly the bytes a local map would — any
		// re-serialization here would rename uniquified signals and the
		// answer would no longer be byte-comparable. PLA lowering and
		// -opt run locally and send the resulting network instead.
		text := string(raw)
		isPLA := rf.plaIn || strings.HasSuffix(p, ".pla")
		if isPLA || rf.optimize {
			var nw *chortle.Network
			if isPLA {
				nw, err = chortle.ReadPLA(strings.NewReader(text))
			} else {
				nw, err = chortle.ReadBLIF(strings.NewReader(text))
			}
			if err != nil {
				fatal(fmt.Errorf("%s: %w", p, err))
			}
			if rf.optimize {
				if nw, err = chortle.Optimize(nw); err != nil {
					fatal(fmt.Errorf("%s: %w", p, err))
				}
			}
			var blif strings.Builder
			if err := chortle.WriteBLIF(&blif, nw); err != nil {
				fatal(err)
			}
			text = blif.String()
		}
		res, err := c.Map(ctx, client.MapRequest{
			BLIF:            text,
			K:               rf.k,
			Engine:          rf.engine,
			BudgetWorkUnits: rf.budget,
		})
		if err != nil {
			fatal(fmt.Errorf("%s: remote map: %w", p, err))
		}
		if _, err := fmt.Fprint(w, res.BLIF); err != nil {
			fatal(err)
		}
		if rf.stats {
			st := c.Stats()
			fmt.Fprintf(os.Stderr,
				"%s: %d LUTs (K=%d), %d trees, served by %s in %s (server cache: %d hits, %d misses; client: %d retries, %d hedges)\n",
				p, res.LUTs, res.K, res.Trees, res.Addr,
				time.Duration(res.ElapsedNS).Round(time.Millisecond/10),
				res.CacheHits, res.CacheMisses, st.Retries, st.Hedges)
		}
	}
}
