// Command chortle maps a combinational BLIF network into K-input
// lookup tables with the Chortle algorithm and writes the mapped
// circuit as BLIF.
//
// Usage:
//
//	chortle [-k K] [-engine tree|mis|cut] [-o out.blif] [-opt] [-baseline]
//	        [-stats] [-verify] [-trace trace.jsonl] [-timeout 30s] [-budget N]
//	        [-debug-addr :6060] [-explain report.html] [-dot out.dot]
//	        [-shared-cache] [-v] [-log-format text|json]
//	        [-server URL[,URL...]] [-server-hedge 30ms]
//	        [-server-trace spans.jsonl] [in.blif ...]
//
// -engine selects the mapping algorithm: tree (the paper's per-tree
// exhaustive DP, the default), mis (the MIS II-style library baseline)
// or cut (the priority-cut DAG mapper, which sees through reconvergent
// fanout). All engines emit the same circuit format, so -verify, -stats
// and the output writers work unchanged; flags that tune the tree
// search (-dup, -depth, -binpack, -split, -parallel, -memo, -budget,
// -shared-cache) are rejected with the other engines rather than
// silently ignored. In -server mode the engine rides along in the
// request and the fleet maps with it per request.
//
// -server maps remotely through a chortled fleet instead of in-process,
// using the resilient chortle/client (retries with backoff, circuit
// breakers per address, Retry-After awareness; -server-hedge duplicates
// slow requests to the next replica). The served answer is
// byte-identical to a local map of the same network and options.
// -server-trace streams the client's spans — one per attempt, hedge and
// backoff pause, sharing the server's trace IDs — as JSON lines; merge
// that file with chortled's -access-log in cmd/traceview for one
// multi-process timeline of each request.
//
// With no input file the network is read from standard input. Several
// input files map as a batch: the mapped circuits are written in order
// as consecutive BLIF models (batch mode supports -k/-opt/-o/-stats and
// the search flags, but not -baseline/-verify/-explain/-dot/-verilog).
// -shared-cache routes every mapping in the process through one
// cross-run shape cache, so isomorphic trees recurring across the batch
// (or across -dup candidate evaluations) are solved once; -stats then
// reports the hit rate. The emitted circuits are byte-identical with
// the cache on or off.
// -timeout is a hard wall-clock limit: when it expires the mapping is
// cancelled and the command fails. -budget bounds the per-tree
// exhaustive search in DP work units; over-budget trees degrade to the
// bin-packing strategy (still correct, possibly more LUTs) and are
// counted on stderr. -stats prints the mapper's observability report
// (phase wall times, memo hit rates, LUT histograms) to stderr;
// -trace streams every mapping event as one JSON line to the named
// file (convert it with cmd/traceview for Perfetto); -debug-addr
// serves /metrics (Prometheus text), /debug/vars (expvar) and
// /debug/pprof while the command runs. -explain records per-LUT
// provenance during the mapping and writes a self-contained HTML run
// report; -dot writes the mapped circuit as a Graphviz digraph,
// clustered by tree and colored by origin when provenance is on.
// -v / -log-format narrate the run through log/slog on stderr (-v
// opens Debug-level per-tree detail). None of them change the emitted
// circuit.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strings"
	"time"

	"chortle"
)

func main() {
	var (
		k        = flag.Int("k", 4, "lookup table input count (2..6)")
		engine   = flag.String("engine", "tree", "mapping engine: tree (paper's per-tree DP), mis (library baseline), cut (priority-cut DAG mapper)")
		out      = flag.String("o", "", "output BLIF file (default stdout)")
		optimize = flag.Bool("opt", false, "run the mini-MIS standard script before mapping")
		baseline = flag.Bool("baseline", false, "map with the MIS II-style library mapper instead of Chortle")
		stats    = flag.Bool("stats", false, "print area/depth/utilization statistics to stderr")
		check    = flag.Bool("verify", false, "verify the mapped circuit against the input network by simulation")
		dup      = flag.Bool("dup", false, "enable fanout-logic duplication (paper future-work extension)")
		repack   = flag.Bool("repack", false, "merge single-fanout LUT pairs after mapping (reconvergence recovery)")
		clb      = flag.Bool("clb", false, "report XC3000-style CLB count (5-input, 2-LUT blocks)")
		split    = flag.Int("split", 10, "node-splitting fanin threshold (paper: 10)")
		plaIn    = flag.Bool("pla", false, "input is an espresso-format PLA (auto-detected for *.pla files)")
		depth    = flag.Bool("depth", false, "minimize LUT depth first, area second (Chortle-d-style)")
		binpack  = flag.Bool("binpack", false, "use the Chortle-crf-style bin-packing decomposition (faster, near-optimal)")
		verilog  = flag.Bool("verilog", false, "emit structural Verilog instead of BLIF")
		path     = flag.Bool("path", false, "print the critical path to stderr")
		parallel = flag.Bool("parallel", true, "compute tree DPs on the worker pool (identical output either way)")
		memo     = flag.Bool("memo", true, "reuse DP solves across isomorphic trees (identical output either way)")
		timeout  = flag.Duration("timeout", 0, "hard wall-clock limit for the mapping (0 = none); expiry cancels and fails")
		budget   = flag.Int64("budget", 0, "per-tree search budget in DP work units (0 = unlimited); over-budget trees fall back to bin packing")
		trace    = flag.String("trace", "", "stream mapping events as JSON lines to this file")
		debug    = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this host:port while mapping")
		explain  = flag.String("explain", "", "record per-LUT provenance and write a self-contained HTML run report to this file")
		dotOut   = flag.String("dot", "", "write the mapped circuit as a Graphviz DOT file")
		verbose  = flag.Bool("v", false, "log per-tree mapping detail to stderr (implies -log-format text)")
		logFmt   = flag.String("log-format", "", "narrate the run on stderr via log/slog: text or json")
		shared   = flag.Bool("shared-cache", false, "share one cross-run shape cache across all mappings in this process")
		server   = flag.String("server", "", "map remotely via these chortled base URLs (comma-separated) instead of in-process")
		hedge    = flag.Duration("server-hedge", 0, "with ≥2 -server addresses, hedge a slow request to the next replica after this delay (0 = off)")
		srvTrace = flag.String("server-trace", "", "with -server, stream client-side spans (attempts, retries, hedges) as JSON lines to this file; merge with the server's -access-log in chortle-traceview")
		version  = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()

	if *version {
		chortle.PrintVersion(os.Stdout, "chortle")
		return
	}

	eng, engErr := chortle.ParseEngine(*engine)
	if engErr != nil {
		fatal(engErr)
	}
	if eng != chortle.EngineTree {
		if *baseline {
			fatal(fmt.Errorf("-baseline conflicts with -engine %s (it is the pre-engine spelling of -engine mis)", eng))
		}
		// Tree-search tuning flags do nothing under the other engines;
		// reject explicit uses rather than silently ignoring them.
		treeOnly := map[string]bool{
			"dup": true, "depth": true, "binpack": true, "split": true,
			"parallel": true, "memo": true, "budget": true, "shared-cache": true,
		}
		flag.Visit(func(f *flag.Flag) {
			if treeOnly[f.Name] {
				fatal(fmt.Errorf("-%s tunes the tree engine and is not supported with -engine %s", f.Name, eng))
			}
		})
	}
	if eng == chortle.EngineMIS {
		// The library baseline is unobserved and records no provenance,
		// exactly like -baseline.
		for _, bad := range []struct {
			set  bool
			name string
		}{
			{*trace != "", "-trace"}, {*explain != "", "-explain"}, {*dotOut != "", "-dot"},
		} {
			if bad.set {
				fatal(fmt.Errorf("%s is not supported with -engine mis (the library mapper is unobserved)", bad.name))
			}
		}
	}

	if *server != "" {
		// Remote mode: the server owns the mapping options beyond k and
		// budget, so flags that change the local search are rejected
		// rather than silently ignored.
		for _, bad := range []struct {
			set  bool
			name string
		}{
			{*baseline, "-baseline"}, {*check, "-verify"}, {*explain != "", "-explain"},
			{*dotOut != "", "-dot"}, {*trace != "", "-trace"}, {*clb, "-clb"}, {*path, "-path"},
			{*dup, "-dup"}, {*repack, "-repack"}, {*depth, "-depth"}, {*binpack, "-binpack"},
			{*verilog, "-verilog"}, {*shared, "-shared-cache"},
		} {
			if bad.set {
				fatal(fmt.Errorf("%s is not supported with -server (the server owns the mapping options)", bad.name))
			}
		}
		remoteMap(flag.Args(), remoteFlags{
			addrs:    strings.Split(*server, ","),
			hedge:    *hedge,
			out:      *out,
			optimize: *optimize,
			plaIn:    *plaIn,
			stats:    *stats,
			timeout:  *timeout,
			k:        *k,
			budget:   *budget,
			engine:   eng.String(),
			traceOut: *srvTrace,
		})
		return
	}
	if *srvTrace != "" {
		fatal(fmt.Errorf("-server-trace records the remote client's spans and needs -server"))
	}

	var cache *chortle.SharedCache
	if *shared {
		cache = chortle.NewSharedCache(chortle.SharedCacheConfig{})
	}

	var slogObs chortle.Observer
	if *verbose || *logFmt != "" {
		lvl := slog.LevelInfo
		if *verbose {
			lvl = slog.LevelDebug
		}
		var h slog.Handler
		switch *logFmt {
		case "", "text":
			h = slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})
		case "json":
			h = slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})
		default:
			fatal(fmt.Errorf("-log-format must be text or json, got %q", *logFmt))
		}
		slogObs = chortle.NewSlogObserver(slog.New(h))
	}

	var metricsObs *chortle.MetricsObserver
	if *debug != "" {
		reg := chortle.NewMetricsRegistry()
		metricsObs = chortle.NewMetricsObserverWithRuntime(reg)
		srv, err := chortle.ServeDebug(*debug, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s\n", srv.Addr())
		defer srv.Shutdown(context.Background())
	}

	// buildOpts assembles the mapper configuration shared by the single
	// and batch paths; batch-incompatible concerns (provenance,
	// observers) are layered on by the single path.
	buildOpts := func() chortle.Options {
		opts := chortle.DefaultOptions(*k)
		opts.Engine = eng
		opts.SplitThreshold = *split
		opts.Parallel = *parallel
		opts.Memoize = *memo
		opts.DuplicateFanoutLogic = *dup
		opts.RepackLUTs = *repack
		opts.OptimizeDepth = *depth
		opts.Budget.WorkUnits = *budget
		if *binpack {
			opts.Strategy = chortle.StrategyBinPack
		}
		opts.SharedCache = cache
		return opts
	}

	if flag.NArg() > 1 {
		for _, bad := range []struct {
			set  bool
			name string
		}{
			{*baseline, "-baseline"}, {*check, "-verify"}, {*explain != "", "-explain"},
			{*dotOut != "", "-dot"}, {*trace != "", "-trace"}, {*clb, "-clb"}, {*path, "-path"},
		} {
			if bad.set {
				fatal(fmt.Errorf("%s is not supported with multiple inputs", bad.name))
			}
		}
		batchMap(flag.Args(), buildOpts, cache, batchFlags{
			out: *out, optimize: *optimize, plaIn: *plaIn, verilog: *verilog,
			stats: *stats, timeout: *timeout, k: *k,
			slogObs: slogObs, metricsObs: metricsObs,
		})
		return
	}

	in := os.Stdin
	isPLA := *plaIn
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
		if strings.HasSuffix(flag.Arg(0), ".pla") {
			isPLA = true
		}
	}
	var nw *chortle.Network
	var err error
	if isPLA {
		nw, err = chortle.ReadPLA(in)
	} else {
		nw, err = chortle.ReadBLIF(in)
	}
	if err != nil {
		fatal(err)
	}
	if *optimize {
		nw, err = chortle.Optimize(nw)
		if err != nil {
			fatal(err)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var ckt *chortle.Circuit
	var report *chortle.MapReport
	start := time.Now()
	if *baseline {
		if *trace != "" {
			fatal(fmt.Errorf("-trace is not supported with -baseline (the library mapper is unobserved)"))
		}
		if *explain != "" || *dotOut != "" {
			fatal(fmt.Errorf("-explain/-dot are not supported with -baseline (provenance is a Chortle-mapper feature)"))
		}
		res, err := chortle.MapBaseline(nw, *k)
		if err != nil {
			fatal(err)
		}
		ckt = res.Circuit
	} else {
		opts := buildOpts()
		// Provenance is what -explain and -dot render; recording it does
		// not change the emitted circuit.
		opts.Provenance = *explain != "" || *dotOut != ""
		// Observability wiring: -stats aggregates through a collector
		// (-explain needs one too, for the report's charts), -trace
		// streams JSON lines, -v/-log-format narrate through slog,
		// -debug-addr feeds the metrics registry; any combination can be
		// active at once.
		var observers []chortle.Observer
		var col *chortle.Collector
		// The MIS engine emits no observer events, so -stats falls back to
		// the circuit summary instead of an empty mapper report.
		if (*stats && eng != chortle.EngineMIS) || *explain != "" {
			col = &chortle.Collector{}
			observers = append(observers, col)
		}
		if slogObs != nil {
			observers = append(observers, slogObs)
		}
		var traceSink *chortle.JSONLObserver
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			traceSink = chortle.NewJSONLObserver(f)
			observers = append(observers, traceSink)
		}
		if metricsObs != nil {
			observers = append(observers, metricsObs)
		}
		switch len(observers) {
		case 0:
		case 1:
			opts.Observer = observers[0]
		default:
			opts.Observer = chortle.MultiObserver(observers)
		}
		res, err := chortle.MapCtx(ctx, nw, opts)
		if err != nil {
			if ctx.Err() != nil {
				fatal(fmt.Errorf("mapping timed out after %s: %w", *timeout, err))
			}
			fatal(err)
		}
		if traceSink != nil {
			if err := traceSink.Err(); err != nil {
				fatal(fmt.Errorf("writing %s: %w", *trace, err))
			}
		}
		if len(res.Degraded) > 0 {
			fmt.Fprintf(os.Stderr, "budget exhausted on %d tree(s); degraded to bin packing\n",
				len(res.Degraded))
		}
		if col != nil {
			report = col.Report()
		}
		if cache != nil && *stats {
			fmt.Fprint(os.Stderr, cacheLine(cache, res.CacheHits, res.CacheMisses))
		}
		ckt = res.Circuit

		var dotSrc string
		if *dotOut != "" || *explain != "" {
			var db bytes.Buffer
			if err := chortle.WriteCircuitDOT(&db, ckt); err != nil {
				fatal(err)
			}
			dotSrc = db.String()
			if *dotOut != "" {
				if err := os.WriteFile(*dotOut, db.Bytes(), 0o644); err != nil {
					fatal(err)
				}
			}
		}
		if *explain != "" {
			st, err := ckt.Stats()
			if err != nil {
				fatal(err)
			}
			rep := &chortle.RunReport{
				Title:     fmt.Sprintf("chortle mapping report: %s (K=%d)", ckt.Name, *k),
				Generated: "generated " + time.Now().Format(time.RFC1123),
				Sections: []chortle.ReportSection{{
					Name:     ckt.Name,
					K:        *k,
					LUTs:     res.LUTs,
					Depth:    st.Depth,
					Trees:    res.Trees,
					Degraded: len(res.Degraded),
					Origins:  ckt.OriginCounts(),
					Stats:    report,
					DOT:      dotSrc,
				}},
			}
			f, err := os.Create(*explain)
			if err != nil {
				fatal(err)
			}
			if err := chortle.WriteRunReport(f, rep); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}
	elapsed := time.Since(start)

	if *check {
		if err := chortle.Verify(nw, ckt, 64, 1); err != nil {
			fatal(fmt.Errorf("verification FAILED: %w", err))
		}
		fmt.Fprintln(os.Stderr, "verification passed")
	}
	if *stats {
		if report != nil {
			// The mapper's own observability report: phase wall times,
			// search effort, memo hit rates, histograms.
			fmt.Fprint(os.Stderr, report.Format())
		} else {
			s, err := ckt.Stats()
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "%d LUTs (K=%d), depth %d, mapped in %s\n",
				s.LUTs, *k, s.Depth, elapsed.Round(time.Millisecond/10))
			var us []int
			for u := range s.Utilization {
				us = append(us, u)
			}
			sort.Ints(us)
			for _, u := range us {
				fmt.Fprintf(os.Stderr, "  %d-input LUTs: %d\n", u, s.Utilization[u])
			}
		}
	}
	if *clb {
		fmt.Fprintf(os.Stderr, "XC3000 CLBs (5-input, 2-LUT blocks): %d\n",
			ckt.PackCLBs(chortle.XC3000))
	}
	if *path {
		steps, err := ckt.CriticalPath()
		if err != nil {
			fatal(err)
		}
		var parts []string
		for _, s := range steps {
			parts = append(parts, fmt.Sprintf("%s(L%d)", s.Signal, s.Level))
		}
		fmt.Fprintf(os.Stderr, "critical path: %s\n", strings.Join(parts, " -> "))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *verilog {
		if err := ckt.WriteVerilog(w); err != nil {
			fatal(err)
		}
		return
	}
	if err := ckt.WriteBLIF(w); err != nil {
		fatal(err)
	}
}

// cacheLine formats the shared-cache summary -stats prints: this run's
// shape hit rate plus the cache's resident footprint.
func cacheLine(cache *chortle.SharedCache, hits, misses int) string {
	st := cache.Stats()
	rate := 0.0
	if hits+misses > 0 {
		rate = 100 * float64(hits) / float64(hits+misses)
	}
	return fmt.Sprintf("shared cache: %d/%d shape hits (%.0f%%), %d entries, %d KiB resident\n",
		hits, hits+misses, rate, st.Entries, st.Bytes>>10)
}

type batchFlags struct {
	out        string
	optimize   bool
	plaIn      bool
	verilog    bool
	stats      bool
	timeout    time.Duration
	k          int
	slogObs    chortle.Observer
	metricsObs *chortle.MetricsObserver
}

// batchMap maps several input files in order, writing the circuits as
// consecutive BLIF models (or Verilog modules). With -shared-cache the
// whole batch runs through one cross-run shape cache, so trees
// recurring across files are solved once.
func batchMap(paths []string, buildOpts func() chortle.Options, cache *chortle.SharedCache, bf batchFlags) {
	w := os.Stdout
	if bf.out != "" {
		f, err := os.Create(bf.out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	ctx := context.Background()
	if bf.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, bf.timeout)
		defer cancel()
	}
	var observers []chortle.Observer
	if bf.slogObs != nil {
		observers = append(observers, bf.slogObs)
	}
	if bf.metricsObs != nil {
		observers = append(observers, bf.metricsObs)
	}
	var hits, misses int
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			fatal(err)
		}
		var nw *chortle.Network
		if bf.plaIn || strings.HasSuffix(p, ".pla") {
			nw, err = chortle.ReadPLA(f)
		} else {
			nw, err = chortle.ReadBLIF(f)
		}
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", p, err))
		}
		if bf.optimize {
			if nw, err = chortle.Optimize(nw); err != nil {
				fatal(fmt.Errorf("%s: %w", p, err))
			}
		}
		opts := buildOpts()
		switch len(observers) {
		case 0:
		case 1:
			opts.Observer = observers[0]
		default:
			opts.Observer = chortle.MultiObserver(observers)
		}
		res, err := chortle.MapCtx(ctx, nw, opts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", p, err))
		}
		if len(res.Degraded) > 0 {
			fmt.Fprintf(os.Stderr, "%s: budget exhausted on %d tree(s); degraded to bin packing\n",
				p, len(res.Degraded))
		}
		if bf.verilog {
			err = res.Circuit.WriteVerilog(w)
		} else {
			err = res.Circuit.WriteBLIF(w)
		}
		if err != nil {
			fatal(err)
		}
		hits += res.CacheHits
		misses += res.CacheMisses
		if bf.stats {
			fmt.Fprintf(os.Stderr, "%s: %d LUTs (K=%d), %d trees\n", p, res.LUTs, bf.k, res.Trees)
		}
	}
	if bf.stats && cache != nil {
		fmt.Fprint(os.Stderr, cacheLine(cache, hits, misses))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chortle:", err)
	os.Exit(1)
}
