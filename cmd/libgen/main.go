// Command libgen builds the MIS-style lookup-table libraries of the
// paper's Section 4.1 and prints their contents, together with the
// unique-function arithmetic the paper uses to argue library-based
// mapping cannot scale ("for K=2 there are only 10 unique functions out
// of a possible 16, and for K=3 there are 78 unique functions out of a
// possible 256 ... For K=4 ... too large to represent in a MIS library").
//
// Usage:
//
//	libgen -count          # reproduce the Section 4.1 function counts
//	libgen -k 4 -list      # list the K=4 incomplete library cells
//	libgen -k 4 -luts -shared-cache   # Chortle-map every library cell
//
// -luts lowers each library cell's minimized SOP to a two-level Boolean
// network (AND per cube, OR of cubes) and maps it with Chortle,
// printing the structural LUT count per cell. With -shared-cache all
// the cell mappings run through one cross-run shape cache — cells whose
// two-level forms are isomorphic are solved once — and the aggregate
// hit rate is printed.
//
// Like cmd/chortle, -debug-addr serves /metrics, /debug/vars and
// /debug/pprof while the command runs (the K=5 library build is the
// slow part worth profiling), and -trace streams the command's own
// phase events — function counting and library construction — as JSON
// lines.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"chortle"
	"chortle/internal/mislib"
	"chortle/internal/network"
	"chortle/internal/truth"
)

func main() {
	var (
		k      = flag.Int("k", 4, "lookup table input count (2..5)")
		count  = flag.Bool("count", false, "print unique-function counts per K")
		list   = flag.Bool("list", false, "list the library cells for -k")
		debug  = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this host:port while running")
		trace  = flag.String("trace", "", "stream the command's phase events as JSON lines to this file")
		luts   = flag.Bool("luts", false, "Chortle-map each library cell's network and print its LUT count")
		shared = flag.Bool("shared-cache", false, "with -luts, share one cross-run shape cache across the cell mappings")
	)
	flag.Parse()

	if *debug != "" {
		reg := chortle.NewMetricsRegistry()
		srv, err := chortle.ServeDebug(*debug, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "libgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s\n", srv.Addr())
		// Shutdown is idempotent, so the deferred call is safe even if a
		// failure path already tore the server down.
		defer srv.Shutdown(context.Background())
	}
	var traceSink *chortle.JSONLObserver
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "libgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		traceSink = chortle.NewJSONLObserver(f)
	}
	// emit streams the command's own phase timeline when -trace is
	// active; a nil sink costs nothing.
	emit := func(e chortle.Event) {
		if traceSink != nil {
			e.Time = time.Now()
			traceSink.Observe(e)
		}
	}
	emit(chortle.Event{Kind: chortle.EventMapStart, K: *k})

	if *count {
		t0 := time.Now()
		fmt.Println("Unique functions (input-permutation classes, constants excluded):")
		for n := 2; n <= 4; n++ {
			total := uint64(1) << (uint64(1) << uint(n))
			fmt.Printf("  K=%d: %5d unique of %d functions\n", n, truth.CountPClasses(n), total)
		}
		fmt.Println("  (paper: 10 of 16 for K=2; 78 of 256 for K=3; the paper's")
		fmt.Println("   9014 for K=4 is inconsistent with the true count — see EXPERIMENTS.md)")
		fmt.Println("NPN classes (what a mapper with free inverters distinguishes):")
		for n := 2; n <= 4; n++ {
			fmt.Printf("  K=%d: %5d classes\n", n, truth.CountNPNClasses(n))
		}
		emit(chortle.Event{Kind: chortle.EventPhaseEnd, Phase: "count",
			Units: int64(time.Since(t0))})
	}

	if *list || *luts || !*count {
		t0 := time.Now()
		lib, err := mislib.ForK(*k)
		if err != nil {
			fmt.Fprintln(os.Stderr, "libgen:", err)
			os.Exit(1)
		}
		emit(chortle.Event{Kind: chortle.EventPhaseEnd, Phase: "library",
			Units: int64(time.Since(t0))})
		kind := "incomplete (level-0 kernels + duals)"
		if lib.Complete {
			kind = "complete (one cell per NPN class)"
		}
		fmt.Printf("K=%d library: %d cells, %s\n", *k, len(lib.Cells), kind)
		if *list {
			for _, c := range lib.Cells {
				fmt.Printf("  %-8s %d inputs  %v  SOP: %v\n",
					c.Name, c.Vars, c.F, mislib.MinimizeSOP(c.F))
			}
		}
		if *luts {
			var cache *chortle.SharedCache
			if *shared {
				cache = chortle.NewSharedCache(chortle.SharedCacheConfig{})
			}
			t1 := time.Now()
			totalLUTs, hits, misses := 0, 0, 0
			for _, c := range lib.Cells {
				nw, ok := cellNetwork(c)
				if !ok {
					fmt.Printf("  %-8s constant function, nothing to map\n", c.Name)
					continue
				}
				opts := chortle.DefaultOptions(*k)
				opts.SharedCache = cache
				res, err := chortle.Map(nw, opts)
				if err != nil {
					fmt.Fprintf(os.Stderr, "libgen: mapping %s: %v\n", c.Name, err)
					os.Exit(1)
				}
				totalLUTs += res.LUTs
				hits += res.CacheHits
				misses += res.CacheMisses
				fmt.Printf("  %-8s %d LUT(s)\n", c.Name, res.LUTs)
			}
			fmt.Printf("total: %d LUTs over %d cells\n", totalLUTs, len(lib.Cells))
			if cache != nil {
				st := cache.Stats()
				rate := 0.0
				if hits+misses > 0 {
					rate = 100 * float64(hits) / float64(hits+misses)
				}
				fmt.Printf("shared cache: %d/%d shape hits (%.0f%%), %d entries\n",
					hits, hits+misses, rate, st.Entries)
			}
			emit(chortle.Event{Kind: chortle.EventPhaseEnd, Phase: "map",
				Units: int64(time.Since(t1))})
		}
	}
	emit(chortle.Event{Kind: chortle.EventMapEnd})
	if traceSink != nil {
		if err := traceSink.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "libgen: writing %s: %v\n", *trace, err)
			os.Exit(1)
		}
	}
}

// cellNetwork lowers a library cell's minimized SOP to a two-level
// Boolean network (AND per cube, OR of the cubes). Constant cells
// return ok=false — there is nothing to map.
func cellNetwork(c mislib.Cell) (*chortle.Network, bool) {
	s := mislib.MinimizeSOP(c.F)
	if s.IsZero() || s.IsOne() {
		return nil, false
	}
	nw := network.New(c.Name)
	ins := make([]*network.Node, c.Vars)
	for i := range ins {
		ins[i] = nw.AddInput(fmt.Sprintf("x%d", i))
	}
	var terms []network.Fanin
	for ci, cube := range s.Cubes {
		var lits []network.Fanin
		for v := 0; v < c.Vars; v++ {
			if cube.Pos>>uint(v)&1 == 1 {
				lits = append(lits, network.Fanin{Node: ins[v]})
			}
			if cube.Neg>>uint(v)&1 == 1 {
				lits = append(lits, network.Fanin{Node: ins[v], Invert: true})
			}
		}
		switch len(lits) {
		case 0:
			// A constant-true cube would have made the SOP constant.
		case 1:
			terms = append(terms, lits[0])
		default:
			terms = append(terms, network.Fanin{
				Node: nw.AddGate(fmt.Sprintf("p%d", ci), network.OpAnd, lits...),
			})
		}
	}
	if len(terms) == 1 {
		nw.MarkOutput("f", terms[0].Node, terms[0].Invert)
	} else {
		nw.MarkOutput("f", nw.AddGate("sum", network.OpOr, terms...), false)
	}
	return nw, true
}
