// Command libgen builds the MIS-style lookup-table libraries of the
// paper's Section 4.1 and prints their contents, together with the
// unique-function arithmetic the paper uses to argue library-based
// mapping cannot scale ("for K=2 there are only 10 unique functions out
// of a possible 16, and for K=3 there are 78 unique functions out of a
// possible 256 ... For K=4 ... too large to represent in a MIS library").
//
// Usage:
//
//	libgen -count          # reproduce the Section 4.1 function counts
//	libgen -k 4 -list      # list the K=4 incomplete library cells
package main

import (
	"flag"
	"fmt"
	"os"

	"chortle/internal/mislib"
	"chortle/internal/truth"
)

func main() {
	var (
		k     = flag.Int("k", 4, "lookup table input count (2..5)")
		count = flag.Bool("count", false, "print unique-function counts per K")
		list  = flag.Bool("list", false, "list the library cells for -k")
	)
	flag.Parse()

	if *count {
		fmt.Println("Unique functions (input-permutation classes, constants excluded):")
		for n := 2; n <= 4; n++ {
			total := uint64(1) << (uint64(1) << uint(n))
			fmt.Printf("  K=%d: %5d unique of %d functions\n", n, truth.CountPClasses(n), total)
		}
		fmt.Println("  (paper: 10 of 16 for K=2; 78 of 256 for K=3; the paper's")
		fmt.Println("   9014 for K=4 is inconsistent with the true count — see EXPERIMENTS.md)")
		fmt.Println("NPN classes (what a mapper with free inverters distinguishes):")
		for n := 2; n <= 4; n++ {
			fmt.Printf("  K=%d: %5d classes\n", n, truth.CountNPNClasses(n))
		}
	}

	if *list || !*count {
		lib, err := mislib.ForK(*k)
		if err != nil {
			fmt.Fprintln(os.Stderr, "libgen:", err)
			os.Exit(1)
		}
		kind := "incomplete (level-0 kernels + duals)"
		if lib.Complete {
			kind = "complete (one cell per NPN class)"
		}
		fmt.Printf("K=%d library: %d cells, %s\n", *k, len(lib.Cells), kind)
		if *list {
			for _, c := range lib.Cells {
				fmt.Printf("  %-8s %d inputs  %v  SOP: %v\n",
					c.Name, c.Vars, c.F, mislib.MinimizeSOP(c.F))
			}
		}
	}
}
