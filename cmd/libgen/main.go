// Command libgen builds the MIS-style lookup-table libraries of the
// paper's Section 4.1 and prints their contents, together with the
// unique-function arithmetic the paper uses to argue library-based
// mapping cannot scale ("for K=2 there are only 10 unique functions out
// of a possible 16, and for K=3 there are 78 unique functions out of a
// possible 256 ... For K=4 ... too large to represent in a MIS library").
//
// Usage:
//
//	libgen -count          # reproduce the Section 4.1 function counts
//	libgen -k 4 -list      # list the K=4 incomplete library cells
//
// Like cmd/chortle, -debug-addr serves /metrics, /debug/vars and
// /debug/pprof while the command runs (the K=5 library build is the
// slow part worth profiling), and -trace streams the command's own
// phase events — function counting and library construction — as JSON
// lines.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"chortle"
	"chortle/internal/mislib"
	"chortle/internal/truth"
)

func main() {
	var (
		k     = flag.Int("k", 4, "lookup table input count (2..5)")
		count = flag.Bool("count", false, "print unique-function counts per K")
		list  = flag.Bool("list", false, "list the library cells for -k")
		debug = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this host:port while running")
		trace = flag.String("trace", "", "stream the command's phase events as JSON lines to this file")
	)
	flag.Parse()

	if *debug != "" {
		reg := chortle.NewMetricsRegistry()
		srv, err := chortle.ServeDebug(*debug, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "libgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s\n", srv.Addr())
		// Shutdown is idempotent, so the deferred call is safe even if a
		// failure path already tore the server down.
		defer srv.Shutdown(context.Background())
	}
	var traceSink *chortle.JSONLObserver
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "libgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		traceSink = chortle.NewJSONLObserver(f)
	}
	// emit streams the command's own phase timeline when -trace is
	// active; a nil sink costs nothing.
	emit := func(e chortle.Event) {
		if traceSink != nil {
			e.Time = time.Now()
			traceSink.Observe(e)
		}
	}
	emit(chortle.Event{Kind: chortle.EventMapStart, K: *k})

	if *count {
		t0 := time.Now()
		fmt.Println("Unique functions (input-permutation classes, constants excluded):")
		for n := 2; n <= 4; n++ {
			total := uint64(1) << (uint64(1) << uint(n))
			fmt.Printf("  K=%d: %5d unique of %d functions\n", n, truth.CountPClasses(n), total)
		}
		fmt.Println("  (paper: 10 of 16 for K=2; 78 of 256 for K=3; the paper's")
		fmt.Println("   9014 for K=4 is inconsistent with the true count — see EXPERIMENTS.md)")
		fmt.Println("NPN classes (what a mapper with free inverters distinguishes):")
		for n := 2; n <= 4; n++ {
			fmt.Printf("  K=%d: %5d classes\n", n, truth.CountNPNClasses(n))
		}
		emit(chortle.Event{Kind: chortle.EventPhaseEnd, Phase: "count",
			Units: int64(time.Since(t0))})
	}

	if *list || !*count {
		t0 := time.Now()
		lib, err := mislib.ForK(*k)
		if err != nil {
			fmt.Fprintln(os.Stderr, "libgen:", err)
			os.Exit(1)
		}
		emit(chortle.Event{Kind: chortle.EventPhaseEnd, Phase: "library",
			Units: int64(time.Since(t0))})
		kind := "incomplete (level-0 kernels + duals)"
		if lib.Complete {
			kind = "complete (one cell per NPN class)"
		}
		fmt.Printf("K=%d library: %d cells, %s\n", *k, len(lib.Cells), kind)
		if *list {
			for _, c := range lib.Cells {
				fmt.Printf("  %-8s %d inputs  %v  SOP: %v\n",
					c.Name, c.Vars, c.F, mislib.MinimizeSOP(c.F))
			}
		}
	}
	emit(chortle.Event{Kind: chortle.EventMapEnd})
	if traceSink != nil {
		if err := traceSink.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "libgen: writing %s: %v\n", *trace, err)
			os.Exit(1)
		}
	}
}
