package chortle

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"chortle/internal/bench"
)

// The cross-run shape cache's contract, pinned against the full golden
// suite: cache warmth is invisible in the emitted bytes (cold run, warm
// run and no-cache run all produce identical BLIF, in every
// Parallel x Memoize mode at every K), warm runs actually hit, and any
// number of concurrent Map calls may share one cache under the race
// detector.

func mapWithBLIF(t *testing.T, nw *Network, opts Options) (string, *Result) {
	t.Helper()
	res, err := Map(nw, opts)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	var sb strings.Builder
	if err := res.Circuit.WriteBLIF(&sb); err != nil {
		t.Fatalf("WriteBLIF: %v", err)
	}
	return sb.String(), res
}

// TestSharedCacheGoldenSuiteByteIdentical is the acceptance grid: all
// golden benchmarks x K=2..5 x Parallel x Memoize, shared cache off,
// cold, and warm.
func TestSharedCacheGoldenSuiteByteIdentical(t *testing.T) {
	for _, c := range goldenCircuits() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			nw, err := bench.Optimized(c)
			if err != nil {
				t.Fatalf("preparing %s: %v", c.Name, err)
			}
			for k := 2; k <= 5; k++ {
				for _, par := range []bool{false, true} {
					for _, memo := range []bool{false, true} {
						opts := DefaultOptions(k)
						opts.Parallel, opts.Memoize = par, memo
						ref := mapToBLIF(t, nw, opts)

						cache := NewSharedCache(SharedCacheConfig{})
						opts.SharedCache = cache
						cold, coldRes := mapWithBLIF(t, nw, opts)
						if cold != ref {
							t.Fatalf("K=%d par=%v memo=%v: cold shared-cache BLIF differs", k, par, memo)
						}
						warm, warmRes := mapWithBLIF(t, nw, opts)
						if warm != ref {
							t.Fatalf("K=%d par=%v memo=%v: warm shared-cache BLIF differs", k, par, memo)
						}
						if memo {
							if coldRes.CacheMisses == 0 {
								t.Fatalf("K=%d par=%v: cold run reported no misses", k, par)
							}
							if warmRes.CacheHits == 0 || warmRes.CacheMisses != 0 {
								t.Fatalf("K=%d par=%v: warm run hits=%d misses=%d",
									k, par, warmRes.CacheHits, warmRes.CacheMisses)
							}
						} else if coldRes.CacheHits+coldRes.CacheMisses+warmRes.CacheHits+warmRes.CacheMisses != 0 {
							t.Fatalf("K=%d par=%v: shared cache active without Memoize", k, par)
						}
					}
				}
			}
		})
	}
}

// TestSharedCacheConcurrentStress maps the suite from 8 goroutines
// sharing one deliberately small cache (evictions near-guaranteed),
// checking every output against a cache-free reference. Each goroutine
// prepares its own copies of the networks — Map mutates its input's
// bookkeeping (reindexing), so the *cache* is the only shared state,
// exactly as in chortled where every request parses its own network.
// Run under -race in CI.
func TestSharedCacheConcurrentStress(t *testing.T) {
	nets := determinismSuite(t)
	suite := bench.Suite()
	refs := make(map[string]string)
	blifs := make([]string, len(suite))
	for i, c := range suite {
		var sb strings.Builder
		if err := WriteBLIF(&sb, nets[c.Name]); err != nil {
			t.Fatal(err)
		}
		blifs[i] = sb.String()
		// Reference from the same serialized form the goroutines parse:
		// the BLIF round trip renames internal nodes, so a reference from
		// the in-memory network would differ textually.
		nw, err := ReadBLIF(strings.NewReader(blifs[i]))
		if err != nil {
			t.Fatal(err)
		}
		refs[c.Name] = mapToBLIF(t, nw, DefaultOptions(4))
	}

	cache := NewSharedCache(SharedCacheConfig{Shards: 4, MaxEntries: 64, MaxBytes: 1 << 20})
	var wg sync.WaitGroup
	errs := make(chan error, 8*len(suite))
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := range suite {
				// Stagger starting points so goroutines collide on
				// different circuits at any instant.
				ci := (i + g) % len(suite)
				c := suite[ci]
				nw, err := ReadBLIF(strings.NewReader(blifs[ci]))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d parsing %s: %w", g, c.Name, err)
					return
				}
				opts := DefaultOptions(4)
				opts.SharedCache = cache
				res, err := Map(nw, opts)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d %s: %w", g, c.Name, err)
					return
				}
				var sb strings.Builder
				if err := res.Circuit.WriteBLIF(&sb); err != nil {
					errs <- err
					return
				}
				if sb.String() != refs[c.Name] {
					errs <- fmt.Errorf("goroutine %d: %s output differs under shared cache", g, c.Name)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := cache.Stats()
	if st.Hits == 0 {
		t.Errorf("concurrent suite produced no cache hits: %+v", st)
	}
	if st.Entries > 64 {
		t.Errorf("entry bound violated: %+v", st)
	}
}
