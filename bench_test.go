package chortle

// The benchmark harness that regenerates every table and figure of the
// paper's evaluation (run with `go test -bench=. -benchmem`):
//
//	BenchmarkTable1_K2 .. BenchmarkTable4_K5 — the paper's Tables 1-4:
//	    the twelve-circuit suite mapped by the MIS II-style baseline and
//	    by Chortle, reporting total LUTs for both and the average
//	    percentage improvement (paper: ~0%, 6%, 9%, 14% for K = 2..5).
//	BenchmarkMapperSpeed_* — the Section 4.2 speed claim (Chortle 1x-10x
//	    faster than MIS), timed on the largest circuit (des).
//	BenchmarkFigure2Mapping — the Figure 1/2 worked example at K=3.
//	BenchmarkFigure7Decomposition — the Figure 7 wide-node search.
//	BenchmarkNodeSplitting_* — Section 3.1.4: exhaustive search vs the
//	    split heuristic on a fanin-14 node (same LUT count, less time).
//	BenchmarkAblation* — design-choice ablations called out in DESIGN.md
//	    (decomposition search; fanout-logic duplication, the paper's
//	    future work; the baseline's greedy duplication model).
//
// Absolute times are host-dependent; the paper's shape is carried by
// the reported custom metrics (LUT counts and percentages).

import (
	"sync"
	"testing"

	"chortle/internal/bench"
	"chortle/internal/core"
	"chortle/internal/mislib"
	"chortle/internal/mismap"
	"chortle/internal/network"
)

// optimizedSuite caches the mini-MIS-optimized benchmark networks; the
// optimization is the (untimed) experimental setup, identical for both
// mappers, exactly as in the paper.
var (
	suiteOnce sync.Once
	suiteNets map[string]*network.Network
)

func optimizedSuite(b *testing.B) map[string]*network.Network {
	b.Helper()
	suiteOnce.Do(func() {
		suiteNets = make(map[string]*network.Network)
		for _, c := range bench.Suite() {
			nw, err := bench.Optimized(c)
			if err != nil {
				b.Fatalf("preparing %s: %v", c.Name, err)
			}
			suiteNets[c.Name] = nw
		}
	})
	return suiteNets
}

// benchTable runs one paper table: both mappers over the whole suite.
func benchTable(b *testing.B, k int) {
	nets := optimizedSuite(b)
	b.ResetTimer()
	var misTotal, chortleTotal int
	var diffSum float64
	for i := 0; i < b.N; i++ {
		misTotal, chortleTotal, diffSum = 0, 0, 0
		for _, name := range SuiteNames() {
			nw := nets[name]
			mres, err := MapBaseline(nw, k)
			if err != nil {
				b.Fatal(err)
			}
			cres, err := Map(nw, DefaultOptions(k))
			if err != nil {
				b.Fatal(err)
			}
			misTotal += mres.LUTs
			chortleTotal += cres.LUTs
			diffSum += 100 * float64(mres.LUTs-cres.LUTs) / float64(mres.LUTs)
		}
	}
	b.ReportMetric(float64(misTotal), "luts-mis")
	b.ReportMetric(float64(chortleTotal), "luts-chortle")
	b.ReportMetric(diffSum/float64(len(SuiteNames())), "avg-diff-%")
}

func BenchmarkTable1_K2(b *testing.B) { benchTable(b, 2) }
func BenchmarkTable2_K3(b *testing.B) { benchTable(b, 3) }
func BenchmarkTable3_K4(b *testing.B) { benchTable(b, 4) }
func BenchmarkTable4_K5(b *testing.B) { benchTable(b, 5) }

// Mapper speed on the largest benchmark (Section 4.2: "The execution
// speed of Chortle ranges from a factor of 1 to 10 times faster than
// MIS II"). Compare ns/op of the two sub-benchmarks.
func BenchmarkMapperSpeed_Chortle_des(b *testing.B) {
	nw := optimizedSuite(b)["des"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(nw, DefaultOptions(5)); err != nil {
			b.Fatal(err)
		}
	}
}

// The same speed benchmark at the paper's headline K=4, with allocation
// accounting — the figure cmd/benchjson and EXPERIMENTS.md track across
// revisions.
func BenchmarkMapperSpeed_Chortle_des_K4(b *testing.B) {
	nw := optimizedSuite(b)["des"]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(nw, DefaultOptions(4)); err != nil {
			b.Fatal(err)
		}
	}
}

// The single-threaded, unmemoized mapper on the same workload — the
// baseline the performance architecture (DESIGN.md) is measured against.
func BenchmarkMapperSpeed_Chortle_des_K4_NoPerf(b *testing.B) {
	nw := optimizedSuite(b)["des"]
	o := DefaultOptions(4)
	o.Parallel, o.Memoize = false, false
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(nw, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapperSpeed_MIS_des(b *testing.B) {
	nw := optimizedSuite(b)["des"]
	lib, err := mislib.ForK(5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mismap.Map(nw, lib); err != nil {
			b.Fatal(err)
		}
	}
}

// figure1Network rebuilds the paper's running example.
func figure1Network() *network.Network {
	nw := network.New("figure1")
	a := nw.AddInput("a")
	bb := nw.AddInput("b")
	c := nw.AddInput("c")
	d := nw.AddInput("d")
	e := nw.AddInput("e")
	g1 := nw.AddGate("g1", network.OpAnd, network.Fanin{Node: a}, network.Fanin{Node: bb})
	g2 := nw.AddGate("g2", network.OpOr, network.Fanin{Node: c, Invert: true}, network.Fanin{Node: d})
	g3 := nw.AddGate("g3", network.OpOr, network.Fanin{Node: g1}, network.Fanin{Node: g2})
	g4 := nw.AddGate("g4", network.OpAnd, network.Fanin{Node: g2}, network.Fanin{Node: e})
	nw.MarkOutput("y", g3, false)
	nw.MarkOutput("z", g4, true)
	return nw
}

func BenchmarkFigure2Mapping(b *testing.B) {
	nw := figure1Network()
	luts := 0
	for i := 0; i < b.N; i++ {
		res, err := Map(nw, DefaultOptions(3))
		if err != nil {
			b.Fatal(err)
		}
		luts = res.LUTs
	}
	b.ReportMetric(float64(luts), "luts")
}

func BenchmarkFigure7Decomposition(b *testing.B) {
	nw := network.New("figure7")
	var fins []network.Fanin
	for _, name := range []string{"a", "b", "c", "d", "e", "f"} {
		fins = append(fins, network.Fanin{Node: nw.AddInput(name)})
	}
	g := nw.AddGate("g", network.OpOr, fins...)
	nw.MarkOutput("y", g, false)
	luts := 0
	for i := 0; i < b.N; i++ {
		res, err := Map(nw, DefaultOptions(4))
		if err != nil {
			b.Fatal(err)
		}
		luts = res.LUTs
	}
	b.ReportMetric(float64(luts), "luts")
}

// wideNode builds a single gate with the given fanin, the Section 3.1.4
// workload: above fanin ten the exhaustive search explodes and splitting
// kicks in.
func wideNode(fanin int) *network.Network {
	nw := network.New("wide")
	var fins []network.Fanin
	for i := 0; i < fanin; i++ {
		fins = append(fins, network.Fanin{Node: nw.AddInput("x" + string(rune('a'+i)))})
	}
	g := nw.AddGate("g", network.OpAnd, fins...)
	nw.MarkOutput("y", g, false)
	return nw
}

func BenchmarkNodeSplitting_Exact_fanin14(b *testing.B) {
	nw := wideNode(14)
	opts := DefaultOptions(5)
	opts.SplitThreshold = 14 // no splitting: exact 3^14 subset DP
	luts := 0
	for i := 0; i < b.N; i++ {
		res, err := Map(nw, opts)
		if err != nil {
			b.Fatal(err)
		}
		luts = res.LUTs
	}
	b.ReportMetric(float64(luts), "luts")
}

func BenchmarkNodeSplitting_Split_fanin14(b *testing.B) {
	nw := wideNode(14)
	opts := DefaultOptions(5) // paper threshold 10: node is split
	luts := 0
	for i := 0; i < b.N; i++ {
		res, err := Map(nw, opts)
		if err != nil {
			b.Fatal(err)
		}
		luts = res.LUTs
	}
	b.ReportMetric(float64(luts), "luts")
}

// Ablation: the decomposition search (the paper's central feature)
// against plain utilization-division mapping, over the whole suite.
func BenchmarkAblationDecomposition(b *testing.B) {
	nets := optimizedSuite(b)
	var on, off int
	for i := 0; i < b.N; i++ {
		on, off = 0, 0
		for _, name := range SuiteNames() {
			o := DefaultOptions(4)
			res, err := Map(nets[name], o)
			if err != nil {
				b.Fatal(err)
			}
			on += res.LUTs
			o.DisableDecomposition = true
			res, err = Map(nets[name], o)
			if err != nil {
				b.Fatal(err)
			}
			off += res.LUTs
		}
	}
	b.ReportMetric(float64(on), "luts-with-decomp")
	b.ReportMetric(float64(off), "luts-without")
}

// Ablation: Chortle's future-work extension — logic duplication at
// fanout nodes (Conclusions: "optimizations that may result from the
// duplication of logic at fanout nodes").
func BenchmarkAblationFanoutDuplication(b *testing.B) {
	nets := optimizedSuite(b)
	var plain, dup int
	for i := 0; i < b.N; i++ {
		plain, dup = 0, 0
		for _, name := range SuiteNames() {
			res, err := Map(nets[name], DefaultOptions(4))
			if err != nil {
				b.Fatal(err)
			}
			plain += res.LUTs
			o := DefaultOptions(4)
			o.DuplicateFanoutLogic = true
			res, err = Map(nets[name], o)
			if err != nil {
				b.Fatal(err)
			}
			dup += res.LUTs
		}
	}
	b.ReportMetric(float64(plain), "luts-plain")
	b.ReportMetric(float64(dup), "luts-duplicated")
}

// Ablation: the baseline's greedy fanout duplication (the MIS II
// behaviour of Section 4.2) on versus off.
func BenchmarkAblationMISGreedyDup(b *testing.B) {
	nets := optimizedSuite(b)
	lib, err := mislib.ForK(4)
	if err != nil {
		b.Fatal(err)
	}
	var with, without int
	for i := 0; i < b.N; i++ {
		with, without = 0, 0
		for _, name := range SuiteNames() {
			res, err := mismap.Map(nets[name], lib)
			if err != nil {
				b.Fatal(err)
			}
			with += res.LUTs
			res, err = mismap.MapWithOptions(nets[name], lib, mismap.Options{})
			if err != nil {
				b.Fatal(err)
			}
			without += res.LUTs
		}
	}
	b.ReportMetric(float64(with), "luts-greedy-dup")
	b.ReportMetric(float64(without), "luts-clean-trees")
}

// Chortle core scaling: per-tree DP cost against K.
func BenchmarkMapScalingK(b *testing.B) {
	nets := optimizedSuite(b)
	for _, k := range []int{2, 3, 4, 5, 6} {
		k := k
		b.Run(kName(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Map(nets["pair"], DefaultOptions(k)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func kName(k int) string { return "K" + string(rune('0'+k)) }

// Reference check kept honest: the exhaustive paper-literal search and
// the production DP agree on the Figure 1 example (also timed, to show
// why the subset DP matters).
func BenchmarkReferenceSearch(b *testing.B) {
	nw := figure1Network()
	for i := 0; i < b.N; i++ {
		if _, err := core.ReferenceTreeCosts(nw, core.DefaultOptions(4)); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension: post-mapping LUT repacking (reconvergence recovery, a step
// toward the paper's reconvergent-fanout future work). The count
// benchmark — a pure XOR/carry chain — is where the paper's analysis
// predicts the largest recovery.
func BenchmarkExtensionRepack(b *testing.B) {
	nets := optimizedSuite(b)
	var plain, packed, countPlain, countPacked int
	for i := 0; i < b.N; i++ {
		plain, packed = 0, 0
		for _, name := range SuiteNames() {
			res, err := Map(nets[name], DefaultOptions(3))
			if err != nil {
				b.Fatal(err)
			}
			plain += res.LUTs
			o := DefaultOptions(3)
			o.RepackLUTs = true
			pres, err := Map(nets[name], o)
			if err != nil {
				b.Fatal(err)
			}
			packed += pres.Circuit.Count()
			if name == "count" {
				countPlain, countPacked = res.LUTs, pres.Circuit.Count()
			}
		}
	}
	b.ReportMetric(float64(plain), "luts-plain")
	b.ReportMetric(float64(packed), "luts-repacked")
	b.ReportMetric(float64(countPlain), "count-plain")
	b.ReportMetric(float64(countPacked), "count-repacked")
}

// Extension: commercial-architecture block packing (XC3000-style CLBs),
// the paper's last future-work item.
func BenchmarkExtensionCLBPack(b *testing.B) {
	nets := optimizedSuite(b)
	var luts, clbs int
	for i := 0; i < b.N; i++ {
		luts, clbs = 0, 0
		for _, name := range SuiteNames() {
			res, err := Map(nets[name], DefaultOptions(4))
			if err != nil {
				b.Fatal(err)
			}
			luts += res.LUTs
			clbs += res.Circuit.PackCLBs(XC3000)
		}
	}
	b.ReportMetric(float64(luts), "luts")
	b.ReportMetric(float64(clbs), "xc3000-clbs")
}

// Extension: depth-oriented mapping (Chortle-d direction) — total depth
// across the suite's circuits, area mode vs depth mode at K=5.
func BenchmarkExtensionDepthMode(b *testing.B) {
	nets := optimizedSuite(b)
	var areaDepth, depthDepth, areaLUTs, depthLUTs int
	for i := 0; i < b.N; i++ {
		areaDepth, depthDepth, areaLUTs, depthLUTs = 0, 0, 0, 0
		for _, name := range SuiteNames() {
			res, err := Map(nets[name], DefaultOptions(5))
			if err != nil {
				b.Fatal(err)
			}
			s, err := res.Circuit.Stats()
			if err != nil {
				b.Fatal(err)
			}
			areaDepth += s.Depth
			areaLUTs += res.LUTs

			o := DefaultOptions(5)
			o.OptimizeDepth = true
			res, err = Map(nets[name], o)
			if err != nil {
				b.Fatal(err)
			}
			s, err = res.Circuit.Stats()
			if err != nil {
				b.Fatal(err)
			}
			depthDepth += s.Depth
			depthLUTs += res.LUTs
		}
	}
	b.ReportMetric(float64(areaDepth), "sum-depth-area-mode")
	b.ReportMetric(float64(depthDepth), "sum-depth-depth-mode")
	b.ReportMetric(float64(areaLUTs), "luts-area-mode")
	b.ReportMetric(float64(depthLUTs), "luts-depth-mode")
}

// Extension: the Chortle-crf-style bin-packing strategy vs the paper's
// exhaustive search — area gap and speed on the full suite at K=5.
func BenchmarkStrategyExhaustive(b *testing.B) {
	nets := optimizedSuite(b)
	total := 0
	for i := 0; i < b.N; i++ {
		total = 0
		for _, name := range SuiteNames() {
			res, err := Map(nets[name], DefaultOptions(5))
			if err != nil {
				b.Fatal(err)
			}
			total += res.LUTs
		}
	}
	b.ReportMetric(float64(total), "luts")
}

func BenchmarkStrategyBinPack(b *testing.B) {
	nets := optimizedSuite(b)
	total := 0
	for i := 0; i < b.N; i++ {
		total = 0
		for _, name := range SuiteNames() {
			o := DefaultOptions(5)
			o.Strategy = StrategyBinPack
			res, err := Map(nets[name], o)
			if err != nil {
				b.Fatal(err)
			}
			total += res.LUTs
		}
	}
	b.ReportMetric(float64(total), "luts")
}

// Extended (non-paper) circuits: classic MCNC two-level functions
// mapped by both mappers at K=5, widening the workload spectrum.
func BenchmarkExtendedSuite(b *testing.B) {
	nets := make(map[string]*network.Network)
	for _, name := range ExtendedSuiteNames() {
		nw, err := BenchmarkNetwork(name)
		if err != nil {
			b.Fatal(err)
		}
		nets[name] = nw
	}
	b.ResetTimer()
	var mis, ch int
	for i := 0; i < b.N; i++ {
		mis, ch = 0, 0
		for _, name := range ExtendedSuiteNames() {
			mres, err := MapBaseline(nets[name], 5)
			if err != nil {
				b.Fatal(err)
			}
			cres, err := Map(nets[name], DefaultOptions(5))
			if err != nil {
				b.Fatal(err)
			}
			mis += mres.LUTs
			ch += cres.LUTs
		}
	}
	b.ReportMetric(float64(mis), "luts-mis")
	b.ReportMetric(float64(ch), "luts-chortle")
}

// Extension: cost-aware fanout duplication (the profitable form of the
// paper's future-work item) on the smaller suite circuits.
func BenchmarkExtensionCostAwareDup(b *testing.B) {
	nets := optimizedSuite(b)
	circuits := []string{"9symml", "alu2", "count", "apex7", "frg1"}
	var plain, dup, accepted int
	for i := 0; i < b.N; i++ {
		plain, dup, accepted = 0, 0, 0
		for _, name := range circuits {
			res, err := Map(nets[name], DefaultOptions(4))
			if err != nil {
				b.Fatal(err)
			}
			plain += res.LUTs
			dres, acc, err := MapDuplicateCostAware(nets[name], DefaultOptions(4))
			if err != nil {
				b.Fatal(err)
			}
			dup += dres.LUTs
			accepted += acc
		}
	}
	b.ReportMetric(float64(plain), "luts-plain")
	b.ReportMetric(float64(dup), "luts-dup-aware")
	b.ReportMetric(float64(accepted), "duplications")
}

// Calibration: the naive one-LUT-per-gate floor against Chortle — the
// distance between them is the value of technology mapping at all.
func BenchmarkNaiveFloor(b *testing.B) {
	nets := optimizedSuite(b)
	var naive, smart int
	for i := 0; i < b.N; i++ {
		naive, smart = 0, 0
		for _, name := range SuiteNames() {
			nres, err := core.MapNaive(nets[name], 5)
			if err != nil {
				b.Fatal(err)
			}
			naive += nres.LUTs
			cres, err := Map(nets[name], DefaultOptions(5))
			if err != nil {
				b.Fatal(err)
			}
			smart += cres.LUTs
		}
	}
	b.ReportMetric(float64(naive), "luts-naive")
	b.ReportMetric(float64(smart), "luts-chortle")
}

// Parallel per-tree DP on the largest circuit.
func BenchmarkParallelMapping_des(b *testing.B) {
	nw := optimizedSuite(b)["des"]
	o := DefaultOptions(5)
	o.Parallel = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(nw, o); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel DP payoff workload: many wide (fanin-10) nodes, where each
// tree's 3^10 subset DP is expensive enough to amortize a goroutine.
func wideFanoutNetwork() *network.Network {
	nw := network.New("widepar")
	var ins []*network.Node
	for i := 0; i < 40; i++ {
		ins = append(ins, nw.AddInput("i"+string(rune('a'+i%26))+string(rune('0'+i/26))))
	}
	for g := 0; g < 48; g++ {
		var fins []network.Fanin
		for j := 0; j < 10; j++ {
			fins = append(fins, network.Fanin{Node: ins[(g*7+j*3)%len(ins)], Invert: j%3 == 0})
		}
		op := network.OpAnd
		if g%2 == 1 {
			op = network.OpOr
		}
		n := nw.AddGate("w"+string(rune('0'+g/10))+string(rune('0'+g%10)), op, fins...)
		nw.MarkOutput("o"+string(rune('0'+g/10))+string(rune('0'+g%10)), n, false)
	}
	return nw
}

func BenchmarkParallelWideTrees(b *testing.B) {
	nw := wideFanoutNetwork()
	for _, par := range []bool{false, true} {
		par := par
		name := "sequential"
		if par {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			o := DefaultOptions(5)
			o.Parallel = par
			for i := 0; i < b.N; i++ {
				if _, err := Map(nw, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
