module chortle

go 1.22
