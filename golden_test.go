package chortle

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"chortle/internal/bench"
)

// The golden-file regression harness: for every bundled benchmark, the
// LUT count, depth and tree count at each K in 2..6 — in plain Map,
// MapDuplicateCostAware, and priority-cut engine modes — are pinned in
// testdata/golden/. Any mapper change that shifts a number fails here
// first, with the exact drift in the diff. After an intentional
// quality change, rerun with -update and commit the new files:
//
//	go test -run TestGolden -update .

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden from current mapper output")

// goldenEntry pins one (K, mode) mapping outcome.
type goldenEntry struct {
	LUTs  int `json:"luts"`
	Depth int `json:"depth"`
	Trees int `json:"trees"`
	// Accepted is the duplication count (dup mode only).
	Accepted int `json:"accepted,omitempty"`
}

// goldenFile is one circuit's pinned results, keyed "k<K>/<mode>".
type goldenFile struct {
	Schema  string                 `json:"schema"`
	Circuit string                 `json:"circuit"`
	Results map[string]goldenEntry `json:"results"`
}

// v2 added K=6 and the cut-engine rows.
const goldenSchema = "chortle-golden/v2"

func goldenPath(circuit string) string {
	return filepath.Join("testdata", "golden", circuit+".json")
}

// goldenCircuits is the full bundled set: the paper's twelve plus the
// extended MCNC functions.
func goldenCircuits() []bench.Circuit {
	return append(bench.Suite(), bench.ExtendedSuite()...)
}

// computeGolden maps one circuit across the whole (K, mode) grid.
func computeGolden(t *testing.T, c bench.Circuit) goldenFile {
	t.Helper()
	nw, err := bench.Optimized(c)
	if err != nil {
		t.Fatalf("preparing %s: %v", c.Name, err)
	}
	gf := goldenFile{Schema: goldenSchema, Circuit: c.Name, Results: make(map[string]goldenEntry)}
	for k := 2; k <= 6; k++ {
		res, err := Map(nw, DefaultOptions(k))
		if err != nil {
			t.Fatalf("%s K=%d map: %v", c.Name, k, err)
		}
		gf.Results[fmt.Sprintf("k%d/map", k)] = entryOf(t, c.Name, k, res, 0)

		dres, accepted, err := MapDuplicateCostAware(nw, DefaultOptions(k))
		if err != nil {
			t.Fatalf("%s K=%d dup: %v", c.Name, k, err)
		}
		gf.Results[fmt.Sprintf("k%d/dup", k)] = entryOf(t, c.Name, k, dres, accepted)

		copts := DefaultOptions(k)
		copts.Engine = EngineCut
		cres, err := Map(nw, copts)
		if err != nil {
			t.Fatalf("%s K=%d cut: %v", c.Name, k, err)
		}
		gf.Results[fmt.Sprintf("k%d/cut", k)] = entryOf(t, c.Name, k, cres, 0)
	}
	return gf
}

func entryOf(t *testing.T, name string, k int, res *Result, accepted int) goldenEntry {
	t.Helper()
	s, err := res.Circuit.Stats()
	if err != nil {
		t.Fatalf("%s K=%d stats: %v", name, k, err)
	}
	return goldenEntry{LUTs: res.LUTs, Depth: s.Depth, Trees: res.Trees, Accepted: accepted}
}

func TestGolden(t *testing.T) {
	for _, c := range goldenCircuits() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			got := computeGolden(t, c)
			path := goldenPath(c.Name)
			if *updateGolden {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden file for %s (run with -update to create): %v", c.Name, err)
			}
			var want goldenFile
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			if want.Schema != goldenSchema {
				t.Fatalf("%s has schema %q, this harness speaks %q", path, want.Schema, goldenSchema)
			}
			var keys []string
			for key := range want.Results {
				keys = append(keys, key)
			}
			sort.Strings(keys)
			for _, key := range keys {
				if got.Results[key] != want.Results[key] {
					t.Errorf("%s %s: got %+v, golden %+v", c.Name, key, got.Results[key], want.Results[key])
				}
			}
			for key := range got.Results {
				if _, ok := want.Results[key]; !ok {
					t.Errorf("%s %s: result not pinned in golden file (rerun with -update)", c.Name, key)
				}
			}
		})
	}
}
