package chortle_test

import (
	"fmt"
	"log"
	"strings"

	"chortle"
)

// ExampleMap shows the core flow: parse, map to 4-input LUTs, verify,
// and inspect the result.
func ExampleMap() {
	const blif = `.model demo
.inputs a b c d
.outputs y
.names a b t
11 1
.names t c d y
1-- 1
-11 1
.end`
	nw, err := chortle.ReadBLIF(strings.NewReader(blif))
	if err != nil {
		log.Fatal(err)
	}
	res, err := chortle.Map(nw, chortle.DefaultOptions(4))
	if err != nil {
		log.Fatal(err)
	}
	if err := chortle.Verify(nw, res.Circuit, 0, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d LUTs in %d trees\n", res.LUTs, res.Trees)
	// Output: 1 LUTs in 1 trees
}

// ExampleMapBaseline compares Chortle against the paper's MIS II-style
// baseline on the same network.
func ExampleMapBaseline() {
	const blif = `.model wide
.inputs a b c d e f
.outputs y
.names a b c d e f y
111111 1
.end`
	nw, err := chortle.ReadBLIF(strings.NewReader(blif))
	if err != nil {
		log.Fatal(err)
	}
	cres, err := chortle.Map(nw, chortle.DefaultOptions(4))
	if err != nil {
		log.Fatal(err)
	}
	mres, err := chortle.MapBaseline(nw, 4)
	if err != nil {
		log.Fatal(err)
	}
	// Chortle's decomposition search packs the 6-input AND into two
	// LUTs; the structural library matcher needs three (its widest cell
	// shape does not align with the subject's balanced decomposition —
	// the structural bias the paper exploits).
	fmt.Printf("chortle=%d baseline=%d\n", cres.LUTs, mres.LUTs)
	// Output: chortle=2 baseline=3
}

// ExampleDefaultOptions demonstrates the option surface: the paper's
// defaults plus the extensions (depth objective, bin packing, repack).
func ExampleDefaultOptions() {
	o := chortle.DefaultOptions(5)
	fmt.Println(o.K, o.SplitThreshold, o.Strategy == chortle.StrategyExhaustive)
	// Output: 5 10 true
}

// ExampleWriteCircuitDOT is the README's explainability example: map
// with provenance recording on, read each LUT's origin record back, and
// export the circuit as a Graphviz digraph. Both the mapping and the
// DOT bytes are deterministic — across runs and across the Parallel
// and Memoize settings — which is what makes the output pinnable here.
func ExampleWriteCircuitDOT() {
	const blif = `.model demo
.inputs a b c d e
.outputs y
.names a b t
11 1
.names t c u
1- 1
-1 1
.names u d e y
111 1
.end`
	nw, err := chortle.ReadBLIF(strings.NewReader(blif))
	if err != nil {
		log.Fatal(err)
	}
	opts := chortle.DefaultOptions(3)
	opts.Provenance = true
	res, err := chortle.Map(nw, opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range res.Circuit.LUTs {
		p := res.Circuit.ProvenanceOf(l.Name)
		fmt.Printf("%s: tree=%s origin=%s shape=%s covers=%v\n",
			l.Name, p.Tree, p.Origin, p.Shape, p.Covers)
	}
	var dot strings.Builder
	if err := chortle.WriteCircuitDOT(&dot, res.Circuit); err != nil {
		log.Fatal(err)
	}
	fmt.Print(dot.String())
	// Output:
	// u$2$l1: tree=y$3 origin=fresh shape=u3:or[merge(pin,pin),pin] covers=[u$2 t$1]
	// y$3: tree=y$3 origin=fresh shape=u3:and[pin,pin,pin] covers=[y$3]
	// digraph "circuit:demo" {
	//   rankdir=BT;
	//   node [fontname="monospace",style=filled,fillcolor="#ffffff"];
	//   "a" [shape=box];
	//   "b" [shape=box];
	//   "c" [shape=box];
	//   "d" [shape=box];
	//   "e" [shape=box];
	//   subgraph "cluster_t0" {
	//     label="tree y$3";
	//     "u$2$l1" [label="u$2$l1\nu3:or[merge(pin,pin),pin]",fillcolor="#cfe2f3"];
	//     "y$3" [label="y$3\nu3:and[pin,pin,pin]",fillcolor="#cfe2f3"];
	//   }
	//   "out:y" [shape=doublecircle,label="y"];
	//   "a" -> "u$2$l1";
	//   "b" -> "u$2$l1";
	//   "c" -> "u$2$l1";
	//   "u$2$l1" -> "y$3";
	//   "d" -> "y$3";
	//   "e" -> "y$3";
	//   "y$3" -> "out:y";
	// }
}

// ExampleReadPLA maps an espresso-format PLA directly.
func ExampleReadPLA() {
	const pla = `.i 3
.o 1
.ilb a b c
.ob y
11- 1
--1 1
.e`
	nw, err := chortle.ReadPLA(strings.NewReader(pla))
	if err != nil {
		log.Fatal(err)
	}
	res, err := chortle.Map(nw, chortle.DefaultOptions(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.LUTs)
	// Output: 1
}
