package chortle

import (
	"errors"
	"fmt"
	"runtime/debug"

	"chortle/internal/cerrs"
)

// The public error taxonomy. Every error the package returns falls into
// one of three classes:
//
//   - Structured input errors: conditions reachable from user input
//     (malformed files, invalid networks, out-of-range options). These
//     wrap the sentinel values below, so callers can classify them with
//     errors.Is no matter which layer detected the problem.
//   - Context errors: a cancelled or expired context.Context makes
//     MapCtx return context.Canceled / context.DeadlineExceeded.
//   - *InternalError: a bug inside the mapper (a recovered panic),
//     carrying the stack trace captured at the recovery point. The
//     public entry points never let an internal panic escape.
//
// Search-budget exhaustion (Options.Budget) is deliberately NOT an
// error: budgeted mappings degrade per-tree to the bin-packing strategy
// and report the affected trees in Result.Degraded.

// Sentinel errors for user-input-reachable failure conditions. Match
// with errors.Is; the concrete error wraps them with file/line/name
// context.
var (
	// ErrCycle: the input network (or BLIF model) contains a
	// combinational cycle.
	ErrCycle = cerrs.ErrCycle
	// ErrDuplicateName: a node, signal, or label name is declared
	// twice (or collides across namespaces, e.g. an input reusing a
	// gate name).
	ErrDuplicateName = cerrs.ErrDuplicateName
	// ErrBadK: the requested lookup-table input count is outside the
	// supported range.
	ErrBadK = cerrs.ErrBadK
	// ErrArityMismatch: declared and actual widths disagree (cube rows
	// vs. declared inputs, label lists vs. .i/.o counts, ...).
	ErrArityMismatch = cerrs.ErrArityMismatch
)

// InternalError is a panic recovered at the public API boundary (or in
// a mapping worker): a bug in the mapper, not a problem with the input.
// It carries the panic value and the stack captured at recovery, so a
// service embedding the mapper can log the stack and keep serving
// instead of crashing. If the panic value was itself an error, Unwrap
// exposes it (and through it any sentinel it wraps).
type InternalError struct {
	// Value is the value the internal code passed to panic.
	Value any
	// Stack is the goroutine stack captured where the panic was
	// recovered.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("chortle: internal error: %v", e.Value)
}

// Unwrap exposes panic values that are themselves errors.
func (e *InternalError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// guard is deferred by every public entry point that crosses into the
// internal packages: it converts an escaping panic into *InternalError.
func guard(err *error) {
	if r := recover(); r != nil {
		*err = &InternalError{Value: r, Stack: debug.Stack()}
	}
}

// wrapInternal normalizes errors crossing the API boundary: a worker
// panic recovered inside the execution layer travels as an internal
// *cerrs.PanicError and is converted here to the public *InternalError,
// so callers see one type for "the mapper broke" regardless of which
// goroutine broke it.
func wrapInternal(err error) error {
	var pe *cerrs.PanicError
	if errors.As(err, &pe) {
		return &InternalError{Value: pe.Value, Stack: pe.Stack}
	}
	return err
}
