package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"chortle"
)

func newRegistry() *chortle.MetricsRegistry { return chortle.NewMetricsRegistry() }

// fastClient returns a Client aimed at the given servers with the time
// seams neutered: sleeps return immediately (recording the requested
// durations), jitter is deterministic (the full window), and now is a
// controllable clock.
func fastClient(t *testing.T, cfg Config) (*Client, *[]time.Duration, *time.Time) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	now := time.Unix(1000, 0)
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	c.jitter = func(max time.Duration) time.Duration { return max }
	c.now = func() time.Time { return now }
	return c, &slept, &now
}

func okHandler(t *testing.T) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req MapRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("server decode: %v", err)
		}
		_ = json.NewEncoder(w).Encode(MapResponse{Circuit: "c", K: req.K, LUTs: 3, BLIF: "mapped:" + req.BLIF})
	}
}

func TestMapSuccess(t *testing.T) {
	ts := httptest.NewServer(okHandler(t))
	defer ts.Close()
	c, _, _ := fastClient(t, Config{Addrs: []string{ts.URL}})
	res, err := c.Map(context.Background(), MapRequest{BLIF: "net", K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.BLIF != "mapped:net" || res.K != 4 || res.Addr != ts.URL {
		t.Fatalf("unexpected response: %+v", res)
	}
	if st := c.Stats(); st.Requests != 1 || st.Attempts != 1 || st.Retries != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRetryOn503ThenSuccess(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"error":"overloaded"}`))
			return
		}
		okHandler(t)(w, r)
	}))
	defer ts.Close()
	c, slept, _ := fastClient(t, Config{Addrs: []string{ts.URL}, MaxBackoff: 10 * time.Second})
	res, err := c.Map(context.Background(), MapRequest{BLIF: "n"})
	if err != nil {
		t.Fatal(err)
	}
	if res.LUTs != 3 {
		t.Fatalf("response: %+v", res)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	// Retry-After (7 s) dominates the small jittered windows.
	for i, d := range *slept {
		if d != 7*time.Second {
			t.Fatalf("sleep %d = %v, want 7 s from Retry-After", i, d)
		}
	}
	if st := c.Stats(); st.Retries != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPermanent400NotRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":"bad blif"}`))
	}))
	defer ts.Close()
	c, _, _ := fastClient(t, Config{Addrs: []string{ts.URL}})
	_, err := c.Map(context.Background(), MapRequest{BLIF: "x"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != 400 {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want exactly 1", calls.Load())
	}
}

func TestRetriesExhausted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	c, _, _ := fastClient(t, Config{Addrs: []string{ts.URL}, MaxRetries: 2, FailureThreshold: 100})
	_, err := c.Map(context.Background(), MapRequest{BLIF: "x"})
	if err == nil || !strings.Contains(err.Error(), "3 attempts failed") {
		t.Fatalf("err = %v, want exhaustion after 3 attempts", err)
	}
}

func TestBreakerOpensHalfOpensCloses(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if failing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		okHandler(t)(w, r)
	}))
	defer ts.Close()
	c, _, now := fastClient(t, Config{
		Addrs: []string{ts.URL}, MaxRetries: 1, FailureThreshold: 2, Cooldown: time.Second,
	})

	// Two failing calls (one retry each) push 4 consecutive failures
	// through a threshold of 2: breaker opens.
	for i := 0; i < 2; i++ {
		if _, err := c.Map(context.Background(), MapRequest{BLIF: "x"}); err == nil {
			t.Fatal("expected failure")
		}
	}
	if st := c.Stats(); st.BreakerOpens == 0 || st.BreakersOpenNow != 1 {
		t.Fatalf("breaker never opened: %+v", st)
	}
	// While open (cooldown not elapsed), no request reaches the server.
	before := calls.Load()
	if _, err := c.Map(context.Background(), MapRequest{BLIF: "x"}); !errors.Is(err, ErrNoHealthyAddr) {
		t.Fatalf("err = %v, want ErrNoHealthyAddr", err)
	}
	if calls.Load() != before {
		t.Fatal("open breaker let a request through")
	}
	// After cooldown the probe goes through, succeeds, and closes.
	failing.Store(false)
	*now = now.Add(2 * time.Second)
	if _, err := c.Map(context.Background(), MapRequest{BLIF: "x"}); err != nil {
		t.Fatalf("post-cooldown probe: %v", err)
	}
	st := c.Stats()
	if st.BreakerCloses == 0 || st.BreakersOpenNow != 0 {
		t.Fatalf("breaker never closed: %+v", st)
	}
}

func TestHedgeWinsAgainstSlowPrimary(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		okHandler(t)(w, r)
	}))
	defer slow.Close()
	defer close(release)
	fast := httptest.NewServer(okHandler(t))
	defer fast.Close()

	c, _, _ := fastClient(t, Config{
		Addrs:      []string{slow.URL, fast.URL},
		HedgeDelay: 5 * time.Millisecond,
	})
	// Force the rotation to start at the slow server.
	c.next.Store(0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := c.Map(ctx, MapRequest{BLIF: "n"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Addr != fast.URL {
		t.Fatalf("answer came from %s, want the hedge target %s", res.Addr, fast.URL)
	}
	if st := c.Stats(); st.Hedges != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFailoverToReplica(t *testing.T) {
	dead := httptest.NewServer(nil)
	dead.Close() // connection refused
	live := httptest.NewServer(okHandler(t))
	defer live.Close()
	c, _, _ := fastClient(t, Config{Addrs: []string{dead.URL, live.URL}})
	c.next.Store(0)
	res, err := c.Map(context.Background(), MapRequest{BLIF: "n"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Addr != live.URL {
		t.Fatalf("served by %s, want %s", res.Addr, live.URL)
	}
}

func TestContextCancellationStopsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c, err := New(Config{Addrs: []string{ts.URL}, MaxRetries: 1000, FailureThreshold: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	c.sleep = func(ctx context.Context, d time.Duration) error {
		calls++
		if calls >= 3 {
			cancel()
		}
		return ctx.Err()
	}
	_, err = c.Map(ctx, MapRequest{BLIF: "x"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls > 4 {
		t.Fatalf("%d sleeps after cancellation", calls)
	}
}

func TestDeadlineDerivedFromContext(t *testing.T) {
	var got atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req MapRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		got.Store(req.DeadlineMS)
		_ = json.NewEncoder(w).Encode(MapResponse{BLIF: "ok"})
	}))
	defer ts.Close()
	c, _, _ := fastClient(t, Config{Addrs: []string{ts.URL}})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Map(ctx, MapRequest{BLIF: "n"}); err != nil {
		t.Fatal(err)
	}
	if ms := got.Load(); ms <= 0 || ms > 10_000 {
		t.Fatalf("derived deadline_ms = %d, want in (0, 10000]", ms)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted empty Addrs")
	}
	if _, err := New(Config{Addrs: []string{"not-a-url"}}); err == nil {
		t.Fatal("New accepted a bare host")
	}
}

func TestMetricsRegistered(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	reg := newRegistry()
	c, _, _ := fastClient(t, Config{Addrs: []string{ts.URL}, MaxRetries: 5, FailureThreshold: 2, Metrics: reg})
	_, _ = c.Map(context.Background(), MapRequest{BLIF: "x"})
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`chortle_client_requests_total{outcome="error"} 1`,
		`chortle_client_breaker_transitions_total{to="open"} 1`,
		"chortle_client_breaker_open 1",
		"chortle_client_retries_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}
