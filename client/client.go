// Package client is a resilient HTTP client for the chortled mapping
// server: context-aware retries with exponential backoff and full
// jitter, Retry-After awareness, a half-open circuit breaker per server
// address, and optional hedged requests against replica addresses.
//
// The client is built for the failure modes a chortled fleet actually
// exhibits: 429 (admission queue full), 503 (draining, overload valve,
// or queue-deadline drop — all carrying Retry-After), 504 (deadline
// expired while queued), 500 (isolated per-request panic), and plain
// network errors. All of those are retryable — the server either
// refused cheaply or failed without side effects, since mapping is
// pure. Client errors (400) are permanent and returned immediately.
//
//	c, err := client.New(client.Config{Addrs: []string{"http://10.0.0.1:8080"}})
//	res, err := c.Map(ctx, client.MapRequest{BLIF: blifText, K: 4})
//
// With more than one address, requests rotate across healthy addresses
// and — when Config.HedgeDelay is set — a slow attempt is hedged by a
// duplicate request to the next healthy address, first answer wins.
// Mapping is deterministic and side-effect free, so hedging never
// produces divergent answers, only lower tail latency.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"chortle"
)

// MapRequest is one mapping request. BLIF is required; zero-valued
// options take the server's defaults.
type MapRequest struct {
	BLIF string `json:"blif"`
	K    int    `json:"k,omitempty"`
	// Engine selects the server-side mapping algorithm: "tree" (default),
	// "mis" or "cut".
	Engine          string `json:"engine,omitempty"`
	BudgetWorkUnits int64  `json:"budget_work_units,omitempty"`
	// DeadlineMS bounds the server-side solve. When zero and the context
	// has a deadline, the client derives it from the context so the
	// server's queue-deadline admission can drop requests that would
	// miss it anyway.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// MapResponse is the server's success body.
type MapResponse struct {
	Circuit     string   `json:"circuit"`
	K           int      `json:"k"`
	Engine      string   `json:"engine"`
	LUTs        int      `json:"luts"`
	Trees       int      `json:"trees"`
	Degraded    []string `json:"degraded,omitempty"`
	CacheHits   int      `json:"cache_hits"`
	CacheMisses int      `json:"cache_misses"`
	ElapsedNS   int64    `json:"elapsed_ns"`
	BLIF        string   `json:"blif"`

	// TraceID is the request's trace identifier — the one the client
	// generated (when Config.Spans is set) or the server assigned, echoed
	// from the response. Grep it in chortled's -access-log to find the
	// server-side view of this exact request.
	TraceID string `json:"trace_id,omitempty"`

	// Addr is the server address that answered (useful under hedging).
	Addr string `json:"-"`

	// SLOStatus is the server's X-Slo-Status header: "warn" or
	// "critical" when the answering server's SLO watchdog is burning
	// error budget, empty when healthy (the header is only sent while
	// degraded). Callers can use it to shed optional load before the
	// server starts refusing.
	SLOStatus string `json:"-"`
}

// APIError is a non-2xx server answer.
type APIError struct {
	Code    int
	Message string
	// RetryAfter is the server's Retry-After hint, zero if absent.
	RetryAfter time.Duration
	// SLOStatus is the server's X-Slo-Status header, empty if absent —
	// a refusal stamped "critical" means the whole service is degraded,
	// not just this request.
	SLOStatus string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server returned HTTP %d: %s", e.Code, e.Message)
}

// Retryable reports whether the failure is safe and useful to retry:
// the server refused cheaply (429/503/504) or failed a pure computation
// (5xx). Client errors are permanent.
func (e *APIError) Retryable() bool {
	return e.Code == http.StatusTooManyRequests || e.Code >= 500
}

// ErrNoHealthyAddr is returned (wrapped) when every configured address
// has an open circuit breaker and retries are exhausted.
var ErrNoHealthyAddr = errors.New("client: all server addresses have open circuit breakers")

// Config tunes a Client. Zero fields take the documented defaults.
type Config struct {
	// Addrs are the server base URLs ("http://host:port"). The first is
	// the preferred address; the rest are replicas used for rotation,
	// breaker failover, and hedging. At least one is required.
	Addrs []string

	// HTTPClient is the transport; default is a client with a 30 s
	// overall timeout (per attempt; the context bounds the whole call).
	HTTPClient *http.Client

	// MaxRetries is how many times a retryable failure is retried after
	// the first attempt. Default 4. Zero keeps the default; negative
	// disables retries.
	MaxRetries int

	// BaseBackoff and MaxBackoff bound the exponential backoff. The
	// sleep before retry n is a full-jitter draw from
	// [0, min(MaxBackoff, BaseBackoff·2ⁿ)], raised to the server's
	// Retry-After when one was sent. Defaults 50 ms and 5 s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// HedgeDelay, when positive, launches a duplicate of a slow attempt
	// against the next healthy address after this delay; the first
	// answer wins and the loser is cancelled. Needs ≥ 2 addresses.
	HedgeDelay time.Duration

	// FailureThreshold consecutive retryable failures open an address's
	// breaker (default 5). An open breaker rejects instantly until
	// Cooldown (default 2 s) has passed, then admits one probe
	// (half-open): success closes the breaker, failure re-opens it.
	FailureThreshold int
	Cooldown         time.Duration

	// Metrics, when non-nil, registers the client's observability
	// series: chortle_client_requests_total{outcome=...},
	// chortle_client_retries_total, chortle_client_hedges_total,
	// chortle_client_breaker_transitions_total{to=...} and the
	// chortle_client_breaker_open gauge.
	Metrics *chortle.MetricsRegistry

	// Spans, when non-nil, turns on client-side tracing: every Map call
	// opens a trace, propagates its ID to the server in the W3C
	// traceparent header, and records one span per HTTP attempt (hedges
	// included) plus each backoff pause into this recorder. Attempt
	// spans carry the address, status code, and any breaker transition
	// the attempt caused. Stream them with chortle.NewSpanJSONL and
	// merge the file with chortled's -access-log in chortle-traceview
	// for a single client+server timeline. Nil costs nothing.
	Spans chortle.SpanRecorder
}

// Stats is a point-in-time snapshot of client activity.
type Stats struct {
	Requests        int64 // Map calls
	Attempts        int64 // HTTP attempts (including hedges)
	Retries         int64 // backoff-then-retry transitions
	Hedges          int64 // hedge requests launched
	BreakerOpens    int64 // closed/half-open -> open transitions
	BreakerCloses   int64 // half-open -> closed transitions
	BreakersOpenNow int64 // addresses currently open or half-open
}

// Client is safe for concurrent use.
type Client struct {
	cfg      Config
	http     *http.Client
	breakers []*breaker
	next     atomic.Int64 // rotation cursor

	requests, attempts, retries, hedges atomic.Int64
	breakerOpens, breakerCloses         atomic.Int64

	mOK, mErr, mRetries, mHedges    counter
	mToOpen, mToHalfOpen, mToClosed counter

	// test seams
	sleep  func(ctx context.Context, d time.Duration) error
	jitter func(max time.Duration) time.Duration
	now    func() time.Time
}

// counter is the narrow metrics dependency, satisfied by the registry's
// Counter and by a no-op when no registry is configured.
type counter interface{ Inc() }

type noopCounter struct{}

func (noopCounter) Inc() {}

// New validates cfg and returns a ready Client.
func New(cfg Config) (*Client, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("client: Config.Addrs must name at least one server")
	}
	for i, a := range cfg.Addrs {
		if !strings.HasPrefix(a, "http://") && !strings.HasPrefix(a, "https://") {
			return nil, fmt.Errorf("client: address %d (%q) must be a base URL", i, a)
		}
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 4
	} else if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2 * time.Second
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	c := &Client{
		cfg:  cfg,
		http: hc,
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		},
		jitter: func(max time.Duration) time.Duration {
			if max <= 0 {
				return 0
			}
			return time.Duration(rand.Int63n(int64(max)))
		},
		now: time.Now,
	}
	c.breakers = make([]*breaker, len(cfg.Addrs))
	for i := range c.breakers {
		c.breakers[i] = &breaker{c: c}
	}
	c.mOK, c.mErr, c.mRetries, c.mHedges = noopCounter{}, noopCounter{}, noopCounter{}, noopCounter{}
	c.mToOpen, c.mToHalfOpen, c.mToClosed = noopCounter{}, noopCounter{}, noopCounter{}
	if reg := cfg.Metrics; reg != nil {
		c.mOK = reg.Counter("chortle_client_requests_total", "Client mapping calls by outcome.", chortle.MetricsLabel{Key: "outcome", Value: "ok"})
		c.mErr = reg.Counter("chortle_client_requests_total", "Client mapping calls by outcome.", chortle.MetricsLabel{Key: "outcome", Value: "error"})
		c.mRetries = reg.Counter("chortle_client_retries_total", "Retries after retryable failures.")
		c.mHedges = reg.Counter("chortle_client_hedges_total", "Hedge requests launched against replicas.")
		c.mToOpen = reg.Counter("chortle_client_breaker_transitions_total", "Circuit breaker state transitions.", chortle.MetricsLabel{Key: "to", Value: "open"})
		c.mToHalfOpen = reg.Counter("chortle_client_breaker_transitions_total", "Circuit breaker state transitions.", chortle.MetricsLabel{Key: "to", Value: "half_open"})
		c.mToClosed = reg.Counter("chortle_client_breaker_transitions_total", "Circuit breaker state transitions.", chortle.MetricsLabel{Key: "to", Value: "closed"})
		reg.GaugeFunc("chortle_client_breaker_open", "Addresses whose circuit breaker is currently open or half-open.",
			func() float64 { return float64(c.openBreakers()) })
	}
	return c, nil
}

// Stats snapshots the client's counters.
func (c *Client) Stats() Stats {
	return Stats{
		Requests:        c.requests.Load(),
		Attempts:        c.attempts.Load(),
		Retries:         c.retries.Load(),
		Hedges:          c.hedges.Load(),
		BreakerOpens:    c.breakerOpens.Load(),
		BreakerCloses:   c.breakerCloses.Load(),
		BreakersOpenNow: int64(c.openBreakers()),
	}
}

func (c *Client) openBreakers() int {
	n := 0
	for _, b := range c.breakers {
		if b.snapshotState() != breakerClosed {
			n++
		}
	}
	return n
}

// Map sends one mapping request, retrying retryable failures with
// exponential backoff and full jitter until the context ends or the
// retry budget is spent. The returned response's BLIF is exactly what a
// local chortle.Map of the same network and options would emit.
func (c *Client) Map(ctx context.Context, req MapRequest) (res *MapResponse, err error) {
	if req.BLIF == "" {
		return nil, errors.New("client: MapRequest.BLIF is empty")
	}
	if req.DeadlineMS == 0 {
		if dl, ok := ctx.Deadline(); ok {
			if ms := time.Until(dl).Milliseconds(); ms > 0 {
				req.DeadlineMS = ms
			}
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	c.requests.Add(1)

	// rt is nil (and every span call inert) unless Config.Spans asked
	// for client-side tracing; the flush runs on every return path so a
	// context-expired call still leaves a complete client timeline.
	rt := c.newTrace()
	if rt != nil {
		defer func() {
			if err != nil {
				rt.AnnotateRoot("err", err.Error())
			}
			for _, sp := range rt.Finish(chortle.SpanID{}) {
				c.cfg.Spans.RecordSpan(sp)
			}
		}()
	}

	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last failure: %v)", err, lastErr)
			}
			return nil, err
		}
		addrIdx, ok := c.pickAddr()
		if !ok {
			lastErr = c.stampErr(ErrNoHealthyAddr)
		} else {
			res, err := c.attemptWithHedge(ctx, rt, addrIdx, body)
			if err == nil {
				c.mOK.Inc()
				if rt != nil {
					rt.AnnotateRoot("winner_addr", res.Addr)
				}
				return res, nil
			}
			lastErr = err
			if !retryable(err) || ctx.Err() != nil {
				c.mErr.Inc()
				return nil, err
			}
		}
		if attempt >= c.cfg.MaxRetries {
			c.mErr.Inc()
			return nil, fmt.Errorf("client: %d attempts failed: %w", attempt+1, lastErr)
		}
		c.retries.Add(1)
		c.mRetries.Inc()
		bo := rt.Start("backoff")
		if rt != nil {
			bo.Annotate("after", lastErr.Error())
		}
		sleepErr := c.sleep(ctx, c.backoff(attempt, lastErr))
		bo.End()
		if sleepErr != nil {
			c.mErr.Inc()
			return nil, fmt.Errorf("%w (last failure: %v)", sleepErr, lastErr)
		}
	}
}

// newTrace opens a client-side request trace, or returns nil (the
// inert state) when tracing is off.
func (c *Client) newTrace() *chortle.ReqTrace {
	if c.cfg.Spans == nil {
		return nil
	}
	return chortle.NewReqTrace("client", "map", chortle.TraceID{}, chortle.SpanID{}, 128, 1)
}

// stampErr marks sentinel errors as retryable pauses without wrapping
// noise; currently identity, kept for symmetry.
func (c *Client) stampErr(err error) error { return err }

// backoff computes the pre-retry sleep: full jitter over the
// exponentially grown window, raised to the server's Retry-After hint.
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	window := c.cfg.BaseBackoff << uint(attempt)
	if window > c.cfg.MaxBackoff || window <= 0 {
		window = c.cfg.MaxBackoff
	}
	d := c.jitter(window)
	var apiErr *APIError
	if errors.As(lastErr, &apiErr) && apiErr.RetryAfter > d {
		d = apiErr.RetryAfter
		if d > c.cfg.MaxBackoff {
			d = c.cfg.MaxBackoff
		}
	}
	return d
}

// retryable classifies an attempt failure. Network-level errors and
// retryable API errors qualify; context expiry and client errors don't.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrNoHealthyAddr) {
		return true // waiting out a cooldown may free an address
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Retryable()
	}
	return true // transport-level failure
}

// pickAddr returns the next address whose breaker admits a request,
// rotating so retries and concurrent calls spread across the fleet.
func (c *Client) pickAddr() (int, bool) {
	start := int(c.next.Add(1) - 1)
	for i := 0; i < len(c.breakers); i++ {
		idx := (start + i) % len(c.breakers)
		if c.breakers[idx].allow() {
			return idx, true
		}
	}
	return 0, false
}

// attemptWithHedge performs one logical attempt: the request to the
// chosen address, plus — after HedgeDelay, when configured and another
// address is healthy — a duplicate to the next address. First answer
// (success or permanent failure) wins; the loser's context is
// cancelled. Breakers settle per physical request.
func (c *Client) attemptWithHedge(ctx context.Context, rt *chortle.ReqTrace, addrIdx int, body []byte) (*MapResponse, error) {
	if c.cfg.HedgeDelay <= 0 || len(c.cfg.Addrs) < 2 {
		return c.do(ctx, rt, "attempt", addrIdx, body)
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		res *MapResponse
		err error
	}
	results := make(chan outcome, 2)
	launched := 1
	go func() {
		res, err := c.do(actx, rt, "attempt", addrIdx, body)
		results <- outcome{res, err}
	}()
	hedgeTimer := time.NewTimer(c.cfg.HedgeDelay)
	defer hedgeTimer.Stop()

	var firstErr error
	for {
		select {
		case <-hedgeTimer.C:
			if hIdx, ok := c.pickAddr(); ok && hIdx != addrIdx {
				launched++
				c.hedges.Add(1)
				c.mHedges.Inc()
				go func() {
					res, err := c.do(actx, rt, "hedge", hIdx, body)
					results <- outcome{res, err}
				}()
			}
		case o := <-results:
			if o.err == nil {
				return o.res, nil
			}
			if !retryable(o.err) && ctx.Err() == nil {
				return nil, o.err // permanent answer beats a pending hedge
			}
			if firstErr == nil {
				firstErr = o.err
			}
			launched--
			if launched == 0 {
				return nil, firstErr
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// do performs one physical HTTP request and settles the address's
// breaker on the result. spanName distinguishes primary attempts from
// hedges on the trace; the attempt span carries the address, the status
// code, and any breaker transition this attempt caused.
func (c *Client) do(ctx context.Context, rt *chortle.ReqTrace, spanName string, addrIdx int, body []byte) (*MapResponse, error) {
	c.attempts.Add(1)
	b := c.breakers[addrIdx]
	sp := rt.Start(spanName)
	stateBefore := b.snapshotState()
	settle := func(code int) {
		if rt == nil {
			return
		}
		sp.Annotate("addr", c.cfg.Addrs[addrIdx])
		if code != 0 {
			sp.Annotate("code", strconv.Itoa(code))
		}
		if after := b.snapshotState(); after != stateBefore {
			sp.Annotate("breaker", after.String())
		}
		sp.End()
	}
	url := strings.TrimSuffix(c.cfg.Addrs[addrIdx], "/") + "/map"
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		settle(0)
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if rt != nil {
		// The attempt span is the server root's parent, so each retry or
		// hedge becomes its own subtree of this one trace.
		hreq.Header.Set(chortle.TraceparentHeader, chortle.FormatTraceparent(rt.TraceID(), sp.ID()))
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		if ctx.Err() == nil {
			b.onFailure()
		}
		settle(0)
		return nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		b.onFailure()
		settle(resp.StatusCode)
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{
			Code:       resp.StatusCode,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
			SLOStatus:  resp.Header.Get("X-Slo-Status"),
		}
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(payload, &eb) == nil && eb.Error != "" {
			apiErr.Message = eb.Error
		} else {
			apiErr.Message = strings.TrimSpace(string(payload))
		}
		if apiErr.Retryable() {
			b.onFailure()
		} else {
			b.onSuccess() // the server answered deliberately; it is healthy
		}
		settle(resp.StatusCode)
		return nil, apiErr
	}
	var mr MapResponse
	if err := json.Unmarshal(payload, &mr); err != nil {
		b.onFailure()
		settle(resp.StatusCode)
		return nil, fmt.Errorf("client: decoding response from %s: %w", c.cfg.Addrs[addrIdx], err)
	}
	b.onSuccess()
	mr.Addr = c.cfg.Addrs[addrIdx]
	mr.SLOStatus = resp.Header.Get("X-Slo-Status")
	if mr.TraceID == "" {
		mr.TraceID = resp.Header.Get("X-Trace-Id")
	}
	settle(resp.StatusCode)
	return &mr, nil
}

func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// --- circuit breaker ---

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one address's half-open circuit breaker. Transitions:
// closed → open after FailureThreshold consecutive retryable failures;
// open → half-open after Cooldown, admitting exactly one probe;
// half-open → closed on probe success, → open on probe failure.
type breaker struct {
	c *Client

	mu       sync.Mutex
	state    breakerState
	failures int
	openedAt time.Time
	probing  bool
}

func (b *breaker) snapshotState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.c.now().Sub(b.openedAt) >= b.c.cfg.Cooldown {
			b.state = breakerHalfOpen
			b.probing = true
			b.c.mToHalfOpen.Inc()
			return true
		}
		return false
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerClosed {
		b.c.breakerCloses.Add(1)
		b.c.mToClosed.Inc()
	}
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
}

func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.open()
	case breakerClosed:
		b.failures++
		if b.failures >= b.c.cfg.FailureThreshold {
			b.open()
		}
	case breakerOpen:
		// A straggling in-flight failure; stay open, refresh nothing.
	}
}

// open transitions to open. Callers hold b.mu.
func (b *breaker) open() {
	b.state = breakerOpen
	b.openedAt = b.c.now()
	b.probing = false
	b.failures = 0
	b.c.breakerOpens.Add(1)
	b.c.mToOpen.Inc()
}
