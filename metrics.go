package chortle

import (
	"io"

	"chortle/internal/metrics"
	"chortle/internal/obs"
)

// Metrics and exposition. A MetricsRegistry holds counters, gauges and
// duration histograms; NewMetricsObserver bridges a mapping run's event
// stream into one, and ServeDebug exposes it over HTTP as Prometheus
// text (/metrics), expvar (/debug/vars) and the net/http/pprof surface
// — the cmd/chortle -debug-addr flag in library form.

// MetricsRegistry is a concurrency-safe collection of named metric
// series with Prometheus text and expvar exposition.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.New() }

// MetricsObserver folds mapping events into a registry: run and phase
// wall-time histograms, solve durations, memo hit rate, degraded-tree
// and LUT counters. It is an Observer — set it (possibly inside a
// MultiObserver) as Options.Observer. Once constructed it allocates
// nothing per event, so it may ride on the parallel solve path.
type MetricsObserver = metrics.Observer

// NewMetricsObserver returns a bridge writing into reg.
func NewMetricsObserver(reg *MetricsRegistry) *MetricsObserver {
	return metrics.NewObserver(reg)
}

// NewMetricsObserverWithRuntime is NewMetricsObserver plus a
// runtime/metrics sampler that brackets each outermost mapping run with
// heap, GC-pause and goroutine snapshots (chortle_run_* series) and
// registers live process-level gauges (chortle_process_*).
func NewMetricsObserverWithRuntime(reg *MetricsRegistry) *MetricsObserver {
	return metrics.NewObserverWithRuntime(reg)
}

// DebugServer is the handle returned by ServeDebug.
type DebugServer = metrics.Server

// ServeDebug starts the debug/observability HTTP server on addr
// (host:port; :0 picks a free port) serving /metrics, /debug/vars and
// /debug/pprof/ from its own mux on a side goroutine. Stop it with
// Shutdown.
func ServeDebug(addr string, reg *MetricsRegistry) (*DebugServer, error) {
	return metrics.Serve(addr, reg)
}

// MetricsLabel is one constant name/value pair attached to a metric
// series at registration (e.g. code="200" on a request counter).
type MetricsLabel = metrics.Label

// OpenMetricsContentType is the Content-Type of the OpenMetrics text
// exposition — the only format carrying histogram exemplars, so scrapes
// negotiating it get trace IDs attached to latency buckets.
const OpenMetricsContentType = metrics.OpenMetricsContentType

// RegisterCacheMetrics exposes a SharedCache's live statistics on a
// registry as chortle_shape_cache_* gauges (hits, misses, inserts,
// evictions, resident entries and bytes), so /metrics scrapes track
// cross-run cache effectiveness. Call once per (registry, cache) pair.
func RegisterCacheMetrics(reg *MetricsRegistry, cache *SharedCache) {
	reg.GaugeFunc("chortle_shape_cache_hits", "Shared shape cache hits (verified cross-run reuses).",
		func() float64 { return float64(cache.Stats().Hits) })
	reg.GaugeFunc("chortle_shape_cache_misses", "Shared shape cache misses.",
		func() float64 { return float64(cache.Stats().Misses) })
	reg.GaugeFunc("chortle_shape_cache_inserts", "Shapes published to the shared cache.",
		func() float64 { return float64(cache.Stats().Puts) })
	reg.GaugeFunc("chortle_shape_cache_evictions", "Shapes evicted by the LRU bound.",
		func() float64 { return float64(cache.Stats().Evictions) })
	reg.GaugeFunc("chortle_shape_cache_entries", "Resident shapes in the shared cache.",
		func() float64 { return float64(cache.Stats().Entries) })
	reg.GaugeFunc("chortle_shape_cache_bytes", "Accounted resident bytes in the shared cache.",
		func() float64 { return float64(cache.Stats().Bytes) })
}

// LiveHeapBytes reads the process's current live heap size from
// runtime/metrics — the input to server-side memory-pressure valves
// (cmd/chortled sheds cache and queued load above a heap watermark).
func LiveHeapBytes() float64 { return metrics.LiveHeapBytes() }

// NewBoundedCollector returns a Collector that retains only the most
// recent capacity events (older ones are dropped, counted by Dropped) —
// bounded memory for long-running or server processes.
func NewBoundedCollector(capacity int) *Collector { return obs.NewBoundedCollector(capacity) }

// ReadEventsJSONL parses a JSONL event trace (the cmd/chortle -trace
// format) back into events, for replay through AggregateEvents or
// WriteChromeTrace.
func ReadEventsJSONL(r io.Reader) ([]Event, error) { return obs.ReadJSONL(r) }

// WriteChromeTrace converts an event stream into the Chrome
// trace_event JSON array loaded by Perfetto and chrome://tracing:
// map brackets and phases as nested spans on a pipeline track, per-tree
// DP solves laid out across solver-lane tracks, memo hits and
// degradations as instant markers.
func WriteChromeTrace(w io.Writer, events []Event) error { return obs.WriteChromeTrace(w, events) }
