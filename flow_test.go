package chortle

// End-to-end flow integration: benchmark generation → BLIF text →
// re-parse → mini-MIS optimization → both mappers → verification →
// post-passes (repack, CLB packing, Verilog emission). This is the
// path a downstream user strings together from the public API, run as
// one test so a regression anywhere in the pipeline surfaces here.

import (
	"strings"
	"testing"

	"chortle/internal/blif"
)

func TestFullFlow(t *testing.T) {
	for _, name := range []string{"9symml", "count", "rd53"} {
		name := name
		t.Run(name, func(t *testing.T) {
			raw, err := RawBenchmarkNetwork(name)
			if err != nil {
				t.Fatal(err)
			}

			// Serialize to BLIF and back: the textual interchange step.
			text, err := blif.WriteString(raw)
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := ReadBLIF(strings.NewReader(text))
			if err != nil {
				t.Fatalf("re-parse: %v", err)
			}

			// Optimize (bounded script), then map with both mappers.
			optd, err := OptimizeForBench(parsed)
			if err != nil {
				t.Fatal(err)
			}
			for k := 3; k <= 5; k++ {
				o := DefaultOptions(k)
				o.RepackLUTs = true
				cres, err := Map(optd, o)
				if err != nil {
					t.Fatalf("K=%d: %v", k, err)
				}
				// Verify the final circuit against the ORIGINAL raw
				// network — the whole pipeline must be neutral.
				if err := Verify(raw, cres.Circuit, 32, 17); err != nil {
					t.Fatalf("K=%d chortle: %v", k, err)
				}
				mres, err := MapBaseline(optd, k)
				if err != nil {
					t.Fatalf("K=%d baseline: %v", k, err)
				}
				if err := Verify(raw, mres.Circuit, 32, 17); err != nil {
					t.Fatalf("K=%d baseline: %v", k, err)
				}

				// Post-passes must not crash and must stay consistent.
				if blocks := cres.Circuit.PackCLBs(XC3000); blocks > cres.Circuit.Count() {
					t.Fatalf("K=%d: CLB packing grew the block count", k)
				}
				var vb strings.Builder
				if err := cres.Circuit.WriteVerilog(&vb); err != nil {
					t.Fatalf("K=%d verilog: %v", k, err)
				}
				if !strings.Contains(vb.String(), "endmodule") {
					t.Fatalf("K=%d: truncated Verilog", k)
				}
				if _, err := cres.Circuit.CriticalPath(); err != nil {
					t.Fatalf("K=%d path: %v", k, err)
				}

				// Mapped BLIF re-parses and still verifies.
				var mb strings.Builder
				if err := cres.Circuit.WriteBLIF(&mb); err != nil {
					t.Fatal(err)
				}
				back, err := ReadBLIF(strings.NewReader(mb.String()))
				if err != nil {
					t.Fatalf("K=%d mapped BLIF: %v", k, err)
				}
				if err := VerifyNetworks(raw, back, 32, 17); err != nil {
					t.Fatalf("K=%d mapped BLIF function: %v", k, err)
				}
			}
		})
	}
}
