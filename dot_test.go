package chortle

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The DOT exporter's output for a provenance-recorded mapping is pinned
// byte for byte in testdata/golden_dot/: the graph must not depend on
// the Parallel or Memoize settings (clusters come from provenance
// trees, colors from the mode-independent origin class). Regenerate
// with: go test -run TestGoldenDOT -update

func goldenDOTPath(circuit string) string {
	return filepath.Join("testdata", "golden_dot", circuit+".dot")
}

// dotCircuits are small enough that the golden files stay reviewable.
var dotCircuits = []string{"majority", "xor5", "rd53"}

func TestGoldenDOT(t *testing.T) {
	for _, name := range dotCircuits {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			nw, err := BenchmarkNetwork(name)
			if err != nil {
				t.Fatal(err)
			}
			var want []byte
			for _, parallel := range []bool{false, true} {
				for _, memoize := range []bool{false, true} {
					opts := DefaultOptions(4)
					opts.Parallel, opts.Memoize = parallel, memoize
					opts.Provenance = true
					res, err := Map(nw, opts)
					if err != nil {
						t.Fatal(err)
					}
					var buf bytes.Buffer
					if err := WriteCircuitDOT(&buf, res.Circuit); err != nil {
						t.Fatal(err)
					}
					if err := ValidateDOT(buf.Bytes()); err != nil {
						t.Fatalf("exported DOT fails validation: %v", err)
					}
					mode := fmt.Sprintf("parallel=%v memoize=%v", parallel, memoize)
					if want == nil {
						want = buf.Bytes()
						if *updateGolden {
							if err := os.MkdirAll(filepath.Dir(goldenDOTPath(name)), 0o755); err != nil {
								t.Fatal(err)
							}
							if err := os.WriteFile(goldenDOTPath(name), want, 0o644); err != nil {
								t.Fatal(err)
							}
						}
					} else if !bytes.Equal(want, buf.Bytes()) {
						t.Fatalf("DOT output differs at %s — export must be mode-independent", mode)
					}
				}
			}
			golden, err := os.ReadFile(goldenDOTPath(name))
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(golden, want) {
				t.Fatalf("DOT output for %s differs from %s (run with -update to regenerate)",
					name, goldenDOTPath(name))
			}
		})
	}
}

// TestGoldenDOTFilesValidate round-trips the checked-in golden files
// through the structural validator, so a hand-edited or truncated
// golden cannot silently pass the byte comparison above.
func TestGoldenDOTFilesValidate(t *testing.T) {
	for _, name := range dotCircuits {
		data, err := os.ReadFile(goldenDOTPath(name))
		if err != nil {
			t.Fatalf("%v (run TestGoldenDOT with -update to regenerate)", err)
		}
		if err := ValidateDOT(data); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
