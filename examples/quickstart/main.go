// Quickstart: parse a small BLIF design, map it into 4-input LUTs with
// Chortle, verify the mapping by simulation, and print the circuit.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"chortle"
)

// A full adder plus a comparator bit — small enough to read, large
// enough to show LUT merging.
const design = `
.model quickstart
.inputs a b cin x y
.outputs sum cout eq
.names a b axb
10 1
01 1
.names axb cin sum
10 1
01 1
.names a b cin cout
11- 1
1-1 1
-11 1
.names x y eq
00 1
11 1
.end
`

func main() {
	nw, err := chortle.ReadBLIF(strings.NewReader(design))
	if err != nil {
		log.Fatal(err)
	}

	res, err := chortle.Map(nw, chortle.DefaultOptions(4))
	if err != nil {
		log.Fatal(err)
	}
	if err := chortle.Verify(nw, res.Circuit, 0, 1); err != nil {
		log.Fatalf("mapping is not equivalent to the source: %v", err)
	}

	stats, err := res.Circuit.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped %q into %d 4-input LUTs across %d fanout-free trees (depth %d)\n",
		nw.Name, res.LUTs, res.Trees, stats.Depth)
	fmt.Println()
	fmt.Print(res.Circuit)
	fmt.Println("\nBLIF of the mapped circuit:")
	if err := res.Circuit.WriteBLIF(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
