// ALU: map the alu4 benchmark (the paper's largest functional circuit)
// across K = 2..5 with both mappers, printing one row of each of the
// paper's Tables 1-4 and the resulting depth/utilization profile.
//
//	go run ./examples/alu
package main

import (
	"fmt"
	"log"
	"time"

	"chortle"
)

func main() {
	nw, err := chortle.BenchmarkNetwork("alu4")
	if err != nil {
		log.Fatal(err)
	}
	s := nw.Stats()
	fmt.Printf("alu4 after the mini-MIS script: %d inputs, %d outputs, %d gates, depth %d\n\n",
		s.Inputs, s.Outputs, s.Gates, s.Depth)

	fmt.Printf("%-4s %10s %10s %7s %12s\n", "K", "# MIS", "# Chortle", "%", "Chortle time")
	for k := 2; k <= 5; k++ {
		mres, err := chortle.MapBaseline(nw, k)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		cres, err := chortle.Map(nw, chortle.DefaultOptions(k))
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(t0)
		if err := chortle.Verify(nw, cres.Circuit, 0, 1); err != nil {
			log.Fatalf("K=%d: %v", k, err)
		}
		diff := 100 * float64(mres.LUTs-cres.LUTs) / float64(mres.LUTs)
		fmt.Printf("%-4d %10d %10d %6.1f%% %12s\n",
			k, mres.LUTs, cres.LUTs, diff, elapsed.Round(time.Millisecond/10))
	}

	// Depth and pin-utilization profile at K=5.
	res, err := chortle.Map(nw, chortle.DefaultOptions(5))
	if err != nil {
		log.Fatal(err)
	}
	st, err := res.Circuit.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nK=5 circuit: depth %d LUT levels; pins used per LUT:\n", st.Depth)
	for u := 1; u <= 5; u++ {
		if n := st.Utilization[u]; n > 0 {
			fmt.Printf("  %d inputs: %d LUTs\n", u, n)
		}
	}
}
