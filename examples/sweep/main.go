// Sweep: explores the design space around the paper's defaults on one
// benchmark — K from 2 to 6, the node-splitting threshold, the
// decomposition search, and the fanout-duplication extension the paper
// lists as future work — reporting the LUT count of each configuration.
//
//	go run ./examples/sweep [circuit]
package main

import (
	"fmt"
	"log"
	"os"

	"chortle"
)

func mustMap(nw *chortle.Network, opts chortle.Options) *chortle.Result {
	res, err := chortle.Map(nw, opts)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	name := "count"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	nw, err := chortle.BenchmarkNetwork(name)
	if err != nil {
		log.Fatal(err)
	}
	s := nw.Stats()
	fmt.Printf("%s: %d inputs, %d outputs, %d gates after optimization\n\n",
		name, s.Inputs, s.Outputs, s.Gates)

	fmt.Println("K sweep (paper defaults):")
	for k := 2; k <= 6; k++ {
		res := mustMap(nw, chortle.DefaultOptions(k))
		st, _ := res.Circuit.Stats()
		fmt.Printf("  K=%d: %4d LUTs, depth %2d\n", k, res.LUTs, st.Depth)
	}

	fmt.Println("\nAblations at K=4:")
	base := mustMap(nw, chortle.DefaultOptions(4))
	fmt.Printf("  %-42s %4d LUTs\n", "paper defaults", base.LUTs)

	noDecomp := chortle.DefaultOptions(4)
	noDecomp.DisableDecomposition = true
	res := mustMap(nw, noDecomp)
	fmt.Printf("  %-42s %4d LUTs\n", "decomposition search disabled", res.LUTs)

	for _, thr := range []int{4, 6, 10, 14} {
		o := chortle.DefaultOptions(4)
		o.SplitThreshold = thr
		res = mustMap(nw, o)
		fmt.Printf("  node splitting threshold %-17d %4d LUTs\n", thr, res.LUTs)
	}

	dup := chortle.DefaultOptions(4)
	dup.DuplicateFanoutLogic = true
	res = mustMap(nw, dup)
	if err := chortle.Verify(nw, res.Circuit, 32, 7); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-42s %4d LUTs\n", "fanout-logic duplication (future work)", res.LUTs)

	rp := chortle.DefaultOptions(4)
	rp.RepackLUTs = true
	res = mustMap(nw, rp)
	if err := chortle.Verify(nw, res.Circuit, 32, 7); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-42s %4d LUTs\n", "LUT repacking (reconvergence recovery)", res.Circuit.Count())
	fmt.Printf("  %-42s %4d blocks\n", "packed into XC3000 CLBs (5-in, 2-LUT)",
		res.Circuit.PackCLBs(chortle.XC3000))
}
