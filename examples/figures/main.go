// Figures: walks the worked examples of the paper, reproducing what its
// figures illustrate —
//
//	Figure 1/2: an example Boolean network and its mapping into
//	            3-input lookup tables;
//	Figure 3:   creating a forest of fanout-free trees from a DAG;
//	Figure 5/6: utilization divisions of a node's root lookup table
//	            (minmap(n, u) for each utilization u);
//	Figure 7:   decomposition of a node whose fanin exceeds K.
//
//	go run ./examples/figures
package main

import (
	"fmt"
	"log"

	"chortle"
	"chortle/internal/forest"
	"chortle/internal/network"
)

func main() {
	figure12()
	figure3()
	figure56()
	figure7()
}

// figure12 builds the running example network (five inputs, four
// gates, one fanout node, two outputs) and maps it with K=3.
func figure12() {
	fmt.Println("== Figures 1 and 2: a Boolean network and a 3-input mapping ==")
	nw := network.New("figure1")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	c := nw.AddInput("c")
	d := nw.AddInput("d")
	e := nw.AddInput("e")
	g1 := nw.AddGate("g1", network.OpAnd, network.Fanin{Node: a}, network.Fanin{Node: b})
	g2 := nw.AddGate("g2", network.OpOr, network.Fanin{Node: c, Invert: true}, network.Fanin{Node: d})
	g3 := nw.AddGate("g3", network.OpOr, network.Fanin{Node: g1}, network.Fanin{Node: g2})
	g4 := nw.AddGate("g4", network.OpAnd, network.Fanin{Node: g2}, network.Fanin{Node: e})
	nw.MarkOutput("y", g3, false)
	nw.MarkOutput("z", g4, true)

	fmt.Println("network: y = ab + (c' + d);  z = ((c' + d)·e)'")
	res, err := chortle.Map(nw, chortle.DefaultOptions(3))
	if err != nil {
		log.Fatal(err)
	}
	if err := chortle.Verify(nw, res.Circuit, 0, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped with K=3 into %d lookup tables (Figure 2 shows the same 3-LUT cover):\n", res.LUTs)
	fmt.Print(res.Circuit)
	fmt.Println()
}

// figure3 shows the forest construction: the multi-fanout node n roots
// its own tree and appears as a leaf of both consumer trees.
func figure3() {
	fmt.Println("== Figure 3: creating a forest of fanout-free trees ==")
	nw := network.New("figure3")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	c := nw.AddInput("c")
	d := nw.AddInput("d")
	n := nw.AddGate("n", network.OpAnd, network.Fanin{Node: a}, network.Fanin{Node: b})
	g1 := nw.AddGate("g1", network.OpOr, network.Fanin{Node: n}, network.Fanin{Node: c})
	g2 := nw.AddGate("g2", network.OpAnd, network.Fanin{Node: n}, network.Fanin{Node: d})
	nw.MarkOutput("x", g1, false)
	nw.MarkOutput("y", g2, false)

	f, err := forest.Decompose(nw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node n = ab has out-degree 2, so the DAG splits into %d trees:\n", len(f.Roots))
	for _, root := range f.Roots {
		var leaves []string
		for _, l := range f.TreeLeaves(root) {
			leaves = append(leaves, l.Name)
		}
		var gates []string
		for _, g := range f.TreeNodes(root) {
			gates = append(gates, g.Name)
		}
		fmt.Printf("  tree rooted at %-2s  gates %v, leaf edges %v\n", root.Name, gates, leaves)
	}
	fmt.Println()
}

// figure56 prints minmap(n, u) for each utilization u of a small tree,
// showing how utilization divisions trade a fanin's finished signal
// (u_i = 1) against merging its root LUT (u_i >= 2).
func figure56() {
	fmt.Println("== Figures 5 and 6: utilization divisions, minmap(n, u) ==")
	nw := network.New("figure5")
	var fins []network.Fanin
	for _, name := range []string{"a", "b", "c"} {
		fins = append(fins, network.Fanin{Node: nw.AddInput(name)})
	}
	sub := nw.AddGate("sub", network.OpAnd, fins...) // a 3-leaf subtree
	top := nw.AddGate("n", network.OpAnd,
		network.Fanin{Node: sub}, network.Fanin{Node: nw.AddInput("d")})
	nw.MarkOutput("y", top, false)

	fmt.Println("tree: n = (a·b·c)·d with 4-input LUTs")
	fmt.Println("  division {1,1}: sub mapped separately, n's LUT uses 2 inputs -> 2 LUTs")
	fmt.Println("  division {3,1}: sub's root LUT merged into n's        -> 1 LUT")
	for _, k := range []int{2, 3, 4} {
		res, err := chortle.Map(nw, chortle.DefaultOptions(k))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  K=%d: best mapping uses %d LUTs\n", k, res.LUTs)
	}
	fmt.Println()
}

// figure7 decomposes a node with fanin 6 under K=4: intermediate nodes
// are introduced and the whole search picks the cheapest grouping.
func figure7() {
	fmt.Println("== Figure 7: decomposition of a wide node ==")
	nw := network.New("figure7")
	var fins []network.Fanin
	for _, name := range []string{"a", "b", "c", "d", "e", "f"} {
		fins = append(fins, network.Fanin{Node: nw.AddInput(name)})
	}
	g := nw.AddGate("g", network.OpOr, fins...)
	nw.MarkOutput("y", g, false)

	for _, k := range []int{2, 3, 4, 5} {
		res, err := chortle.Map(nw, chortle.DefaultOptions(k))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  6-input OR with K=%d: %d LUTs (closed form ceil(5/%d) = %d)\n",
			k, res.LUTs, k-1, (5+k-2)/(k-1))
	}
	fmt.Println("\nWithout the decomposition search the same node costs more:")
	opts := chortle.DefaultOptions(3)
	opts.DisableDecomposition = true
	res, err := chortle.Map(nw, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  K=3, decomposition disabled (balanced pre-split only): %d LUTs\n", res.LUTs)
}
