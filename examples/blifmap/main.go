// Blifmap: a filter that maps any combinational BLIF model from stdin
// into K-input LUTs and writes the mapped BLIF to stdout, with a
// summary on stderr. A library-style demonstration of composing the
// public API; equivalent to `cmd/chortle` but shaped as a pipeline.
//
//	go run ./examples/mcnc-style-flow | go run ./examples/blifmap -k 5
//	go run ./cmd/mcnc 9symml | go run ./examples/blifmap
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"chortle"
)

func main() {
	k := flag.Int("k", 4, "LUT input count")
	optimize := flag.Bool("opt", true, "run the mini-MIS script before mapping")
	flag.Parse()

	nw, err := chortle.ReadBLIF(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	before := nw.Stats()
	if *optimize {
		if nw, err = chortle.Optimize(nw); err != nil {
			log.Fatal(err)
		}
	}
	res, err := chortle.Map(nw, chortle.DefaultOptions(*k))
	if err != nil {
		log.Fatal(err)
	}
	if err := chortle.Verify(nw, res.Circuit, 32, 1); err != nil {
		log.Fatalf("mapped circuit failed verification: %v", err)
	}
	st, err := res.Circuit.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s: %d gates -> %d %d-LUTs (depth %d), %d trees\n",
		nw.Name, before.Gates, res.LUTs, *k, st.Depth, res.Trees)
	if err := res.Circuit.WriteBLIF(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
