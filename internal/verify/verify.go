// Package verify checks functional equivalence between representations
// of a design — Boolean networks (internal/network) and mapped LUT
// circuits (internal/lut) — by 64-way parallel simulation: exhaustive
// when the input count permits, seeded-random otherwise. Technology
// mapping must never change functionality; every mapper test and the
// benchmark harness run through these checks.
package verify

import (
	"fmt"
	"math/rand"
	"sort"

	"chortle/internal/lut"
	"chortle/internal/network"
)

// ExhaustiveLimit is the input count up to which equivalence is checked
// on all 2^n minterms rather than random samples.
const ExhaustiveLimit = 16

// Simulatable is anything that evaluates 64 input patterns in parallel.
type Simulatable interface {
	Simulate(assign map[string]uint64) (map[string]uint64, error)
}

var (
	_ Simulatable = (*network.Network)(nil)
	_ Simulatable = (*lut.Circuit)(nil)
)

// Equivalent checks that a and b compute identical outputs for the given
// shared input and output names. Inputs with <= ExhaustiveLimit names
// are checked exhaustively; otherwise `patterns` random 64-pattern
// blocks are simulated with the given seed. A nil return means no
// mismatch was found.
func Equivalent(a, b Simulatable, inputs, outputs []string, patterns int, seed int64) error {
	if len(inputs) <= ExhaustiveLimit {
		return exhaustive(a, b, inputs, outputs)
	}
	return random(a, b, inputs, outputs, patterns, seed)
}

func compareBlock(a, b Simulatable, assign map[string]uint64, outputs []string, mask uint64, context string) error {
	ra, err := a.Simulate(assign)
	if err != nil {
		return fmt.Errorf("verify: simulating first design: %w", err)
	}
	rb, err := b.Simulate(assign)
	if err != nil {
		return fmt.Errorf("verify: simulating second design: %w", err)
	}
	for _, o := range outputs {
		wa, oka := ra[o]
		wb, okb := rb[o]
		if !oka || !okb {
			return fmt.Errorf("verify: output %q missing (first=%v second=%v)", o, oka, okb)
		}
		if wa&mask != wb&mask {
			return fmt.Errorf("verify: output %q differs %s: %016x vs %016x (mask %016x)",
				o, context, wa&mask, wb&mask, mask)
		}
	}
	return nil
}

func exhaustive(a, b Simulatable, inputs, outputs []string) error {
	n := uint(len(inputs))
	total := uint64(1) << n
	for base := uint64(0); base < total; base += 64 {
		assign := make(map[string]uint64, len(inputs))
		for i, in := range inputs {
			var w uint64
			for j := uint64(0); j < 64 && base+j < total; j++ {
				if (base+j)>>uint(i)&1 == 1 {
					w |= 1 << j
				}
			}
			assign[in] = w
		}
		mask := ^uint64(0)
		if total-base < 64 {
			mask = 1<<(total-base) - 1
		}
		if err := compareBlock(a, b, assign, outputs, mask,
			fmt.Sprintf("at minterms %d..%d", base, base+min64(64, total-base)-1)); err != nil {
			return err
		}
	}
	return nil
}

func random(a, b Simulatable, inputs, outputs []string, patterns int, seed int64) error {
	if patterns < 1 {
		patterns = 32
	}
	rng := rand.New(rand.NewSource(seed))
	for p := 0; p < patterns; p++ {
		assign := make(map[string]uint64, len(inputs))
		for _, in := range inputs {
			assign[in] = rng.Uint64()
		}
		if err := compareBlock(a, b, assign, outputs, ^uint64(0),
			fmt.Sprintf("on random block %d (seed %d)", p, seed)); err != nil {
			return err
		}
	}
	return nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// NetworkVsCircuit verifies that a mapped circuit implements its source
// network, deriving the shared input/output name lists from the network.
// Latch data inputs are compared alongside the primary outputs (both
// representations report them as pseudo-outputs), so sequential designs
// are verified over their full combinational core.
func NetworkVsCircuit(nw *network.Network, ckt *lut.Circuit, patterns int, seed int64) error {
	inputs := make([]string, 0, len(nw.Inputs))
	for _, in := range nw.Inputs {
		inputs = append(inputs, in.Name)
	}
	outputs := make([]string, 0, len(nw.Outputs)+len(nw.Latches))
	for _, o := range nw.Outputs {
		outputs = append(outputs, o.Name)
	}
	for _, l := range nw.Latches {
		outputs = append(outputs, network.LatchKey(l.Q))
	}
	sort.Strings(outputs)
	return Equivalent(nw, ckt, inputs, outputs, patterns, seed)
}

// NetworkVsNetwork verifies two networks against each other (including
// latch data inputs).
func NetworkVsNetwork(a, b *network.Network, patterns int, seed int64) error {
	inputs := make([]string, 0, len(a.Inputs))
	for _, in := range a.Inputs {
		inputs = append(inputs, in.Name)
	}
	outputs := make([]string, 0, len(a.Outputs)+len(a.Latches))
	for _, o := range a.Outputs {
		outputs = append(outputs, o.Name)
	}
	for _, l := range a.Latches {
		outputs = append(outputs, network.LatchKey(l.Q))
	}
	sort.Strings(outputs)
	return Equivalent(a, b, inputs, outputs, patterns, seed)
}
