package verify

import (
	"strings"
	"testing"

	"chortle/internal/lut"
	"chortle/internal/network"
	"chortle/internal/truth"
)

// andNetwork builds y = a AND b as a network.
func andNetwork() *network.Network {
	nw := network.New("and")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	g := nw.AddGate("g", network.OpAnd, network.Fanin{Node: a}, network.Fanin{Node: b})
	nw.MarkOutput("y", g, false)
	return nw
}

// andCircuit builds the matching (or, with brokenTable, mismatching)
// LUT circuit.
func andCircuit(brokenTable bool) *lut.Circuit {
	c := lut.New("and", 2)
	c.AddInput("a")
	c.AddInput("b")
	t := truth.Var(0, 2).And(truth.Var(1, 2))
	if brokenTable {
		t = truth.Var(0, 2).Or(truth.Var(1, 2))
	}
	c.AddLUT("g", []string{"a", "b"}, t)
	c.MarkOutput("y", "g", false)
	return c
}

func TestNetworkVsCircuitMatch(t *testing.T) {
	if err := NetworkVsCircuit(andNetwork(), andCircuit(false), 8, 1); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkVsCircuitMismatchDetected(t *testing.T) {
	err := NetworkVsCircuit(andNetwork(), andCircuit(true), 8, 1)
	if err == nil {
		t.Fatal("OR circuit accepted as AND implementation")
	}
	if !strings.Contains(err.Error(), "y") {
		t.Fatalf("error should name the failing output: %v", err)
	}
}

func TestMissingOutputDetected(t *testing.T) {
	c := andCircuit(false)
	c.Outputs[0].Name = "z" // different output name
	if err := NetworkVsCircuit(andNetwork(), c, 8, 1); err == nil {
		t.Fatal("missing output accepted")
	}
}

// wideDesign returns equivalent network/circuit pairs with the given
// number of inputs, to exercise both the exhaustive and random paths.
func wideDesign(nIn int, broken bool) (*network.Network, *lut.Circuit) {
	nw := network.New("wide")
	var fins []network.Fanin
	names := make([]string, nIn)
	for i := 0; i < nIn; i++ {
		names[i] = "x" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		fins = append(fins, network.Fanin{Node: nw.AddInput(names[i])})
	}
	g := nw.AddGate("g", network.OpOr, fins...)
	nw.MarkOutput("y", g, false)

	// Circuit: tree of OR LUTs (K=4).
	c := lut.New("wide", 4)
	for _, n := range names {
		c.AddInput(n)
	}
	level := names
	li := 0
	or := func(n int) truth.Table {
		t := truth.Const(n, false)
		for i := 0; i < n; i++ {
			t = t.Or(truth.Var(i, n))
		}
		return t
	}
	for len(level) > 1 {
		var next []string
		for i := 0; i < len(level); i += 4 {
			end := i + 4
			if end > len(level) {
				end = len(level)
			}
			group := level[i:end]
			if len(group) == 1 {
				next = append(next, group[0])
				continue
			}
			li++
			name := "l" + string(rune('0'+li/10)) + string(rune('0'+li%10))
			c.AddLUT(name, group, or(len(group)))
			next = append(next, name)
		}
		level = next
	}
	// A broken variant inverts the root: an OR tree disagrees on rare
	// all-zero events only if broken mid-tree, so the fault is planted
	// where every pattern sees it.
	c.MarkOutput("y", level[0], broken)
	return nw, c
}

func TestExhaustivePathMultiWord(t *testing.T) {
	// 8 inputs: 256 minterms = 4 blocks of 64.
	nw, c := wideDesign(8, false)
	if err := NetworkVsCircuit(nw, c, 0, 1); err != nil {
		t.Fatal(err)
	}
	nw, c = wideDesign(8, true)
	if err := NetworkVsCircuit(nw, c, 0, 1); err == nil {
		t.Fatal("broken 8-input circuit accepted")
	}
}

func TestRandomPathBeyondExhaustiveLimit(t *testing.T) {
	nw, c := wideDesign(20, false)
	if err := NetworkVsCircuit(nw, c, 16, 7); err != nil {
		t.Fatal(err)
	}
	nw, c = wideDesign(20, true)
	if err := NetworkVsCircuit(nw, c, 16, 7); err == nil {
		t.Fatal("broken 20-input circuit accepted")
	}
}

func TestNetworkVsNetwork(t *testing.T) {
	a := andNetwork()
	b := andNetwork()
	if err := NetworkVsNetwork(a, b, 8, 1); err != nil {
		t.Fatal(err)
	}
	// Complement one output.
	b.Outputs[0].Invert = true
	if err := NetworkVsNetwork(a, b, 8, 1); err == nil {
		t.Fatal("inverted output accepted")
	}
}

func TestExhaustiveBoundary(t *testing.T) {
	// Exactly at the limit (uses the exhaustive path with 2^16 points).
	nw, c := wideDesign(ExhaustiveLimit, false)
	if err := NetworkVsCircuit(nw, c, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultPatternCount(t *testing.T) {
	// patterns < 1 falls back to a sane default rather than zero work.
	nw, c := wideDesign(20, true)
	if err := NetworkVsCircuit(nw, c, 0, 3); err == nil {
		t.Fatal("zero-pattern verification validated a broken circuit")
	}
}
