// Package mislib generates the lookup-table cell libraries the paper's
// Section 4.1 builds for the MIS II baseline: complete libraries (one
// cell per function equivalence class) for K = 2 and 3, and incomplete
// libraries for K = 4 and 5 assembled from "the set of all level-0
// kernels with four or fewer literals and their duals" plus the common
// elements (ANDs, ORs, XOR/MUX shapes) that the slot-sharing
// construction yields. Cells carry structural patterns — binarized
// factored forms — for the DAGON-style tree matcher in internal/mismap.
package mislib

import (
	"math/bits"
	"sort"

	"chortle/internal/sop"
	"chortle/internal/truth"
)

// MinimizeSOP converts a truth table into a compact sum-of-products by
// Quine-McCluskey prime generation followed by an essential-then-greedy
// cover. Exact minimality is not required — the cover seeds factored
// forms for cell patterns — but for the small functions involved
// (<= 5 inputs) the result is minimal or near-minimal.
func MinimizeSOP(t truth.Table) sop.SOP {
	n := t.N
	if ok, v := t.IsConst(); ok {
		if v {
			return sop.OneSOP(n)
		}
		return sop.Zero(n)
	}

	// A QM implicant is (values, mask): mask bits are don't-cares.
	type imp struct{ val, mask uint32 }
	covers := func(a imp, m uint32) bool { return a.val&^a.mask == m&^a.mask }

	var current []imp
	seen := map[imp]bool{}
	for m := uint32(0); m < 1<<uint(n); m++ {
		if t.Eval(uint(m)) {
			i := imp{val: m}
			current = append(current, i)
			seen[i] = true
		}
	}
	var primes []imp
	for len(current) > 0 {
		combined := make(map[imp]bool, len(current))
		merged := make([]bool, len(current))
		var next []imp
		for i := 0; i < len(current); i++ {
			for j := i + 1; j < len(current); j++ {
				a, b := current[i], current[j]
				if a.mask != b.mask {
					continue
				}
				diff := a.val ^ b.val
				if bits.OnesCount32(diff) != 1 {
					continue
				}
				c := imp{val: a.val &^ diff, mask: a.mask | diff}
				merged[i], merged[j] = true, true
				if !combined[c] {
					combined[c] = true
					next = append(next, c)
				}
			}
		}
		for i, a := range current {
			if !merged[i] {
				primes = append(primes, a)
			}
		}
		current = next
	}

	// Cover the minterms: essential primes first, then greedy by
	// coverage count (deterministic tie-break by implicant value).
	var minterms []uint32
	for m := uint32(0); m < 1<<uint(n); m++ {
		if t.Eval(uint(m)) {
			minterms = append(minterms, m)
		}
	}
	sort.Slice(primes, func(i, j int) bool {
		if primes[i].mask != primes[j].mask {
			return primes[i].mask > primes[j].mask // wider first
		}
		return primes[i].val < primes[j].val
	})
	covered := make(map[uint32]bool, len(minterms))
	var chosen []imp
	// Essential primes.
	for _, m := range minterms {
		cnt, last := 0, -1
		for pi, p := range primes {
			if covers(p, m) {
				cnt++
				last = pi
			}
		}
		if cnt == 1 && !covered[m] {
			chosen = append(chosen, primes[last])
			for _, mm := range minterms {
				if covers(primes[last], mm) {
					covered[mm] = true
				}
			}
		}
	}
	// Greedy for the rest.
	for {
		remaining := 0
		for _, m := range minterms {
			if !covered[m] {
				remaining++
			}
		}
		if remaining == 0 {
			break
		}
		bestIdx, bestGain := -1, 0
		for pi, p := range primes {
			gain := 0
			for _, m := range minterms {
				if !covered[m] && covers(p, m) {
					gain++
				}
			}
			if gain > bestGain {
				bestGain, bestIdx = gain, pi
			}
		}
		p := primes[bestIdx]
		chosen = append(chosen, p)
		for _, m := range minterms {
			if covers(p, m) {
				covered[m] = true
			}
		}
	}

	out := sop.SOP{NumVars: n}
	for _, p := range chosen {
		var c sop.Cube
		for i := 0; i < n; i++ {
			bit := uint32(1) << uint(i)
			if p.mask&bit != 0 {
				continue
			}
			if p.val&bit != 0 {
				c.Pos |= 1 << uint(i)
			} else {
				c.Neg |= 1 << uint(i)
			}
		}
		out.Cubes = append(out.Cubes, c)
	}
	out.MinimizeSCC()
	return out
}
