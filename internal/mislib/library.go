package mislib

import (
	"fmt"
	"sort"

	"chortle/internal/network"
	"chortle/internal/opt"
	"chortle/internal/truth"
)

// PatNode is one node of a cell's structural pattern: a binarized,
// polarized AND/OR tree whose leaves are pattern variables. A pattern
// with a repeated variable is a leaf-DAG (XOR-style cells), which the
// matcher supports by requiring consistent bindings.
type PatNode struct {
	// Leaf slot.
	Leaf bool
	Var  int
	Neg  bool
	// Internal node.
	Op   network.Op
	L, R *PatNode
}

// Leaves counts the leaf slots (with multiplicity).
func (p *PatNode) Leaves() int {
	if p.Leaf {
		return 1
	}
	return p.L.Leaves() + p.R.Leaves()
}

// Cell is one library element: a K-LUT programmed with function F.
type Cell struct {
	Name    string
	F       truth.Table // over Vars inputs, full support
	Vars    int
	Pattern *PatNode
	Cost    int // LUTs; always 1 (inverters are free and not cells)
}

// Library is the cell set for one K.
type Library struct {
	K        int
	Cells    []Cell
	Complete bool // complete up to equivalence for functions of <= K inputs
}

// buildPattern converts a function into its structural pattern: minimize
// to SOP, factor, then binarize the factored form balanced, pushing all
// negations onto literals.
func buildPattern(t truth.Table) (*PatNode, error) {
	s := MinimizeSOP(t)
	e, err := opt.Factor(s)
	if err != nil {
		return nil, err
	}
	return exprToPattern(e)
}

func exprToPattern(e *opt.Expr) (*PatNode, error) {
	switch e.Kind {
	case opt.ExprLit:
		return &PatNode{Leaf: true, Var: e.Var, Neg: e.Neg}, nil
	case opt.ExprAnd, opt.ExprOr:
		op := network.OpAnd
		if e.Kind == opt.ExprOr {
			op = network.OpOr
		}
		kids := make([]*PatNode, len(e.Kids))
		for i, k := range e.Kids {
			p, err := exprToPattern(k)
			if err != nil {
				return nil, err
			}
			kids[i] = p
		}
		return balance(op, kids), nil
	}
	return nil, fmt.Errorf("mislib: invalid factored expression")
}

// balance builds a balanced binary tree of op over the children,
// mirroring the subject-graph decomposition so shapes line up.
func balance(op network.Op, kids []*PatNode) *PatNode {
	if len(kids) == 1 {
		return kids[0]
	}
	mid := (len(kids) + 1) / 2
	return &PatNode{Op: op, L: balance(op, kids[:mid]), R: balance(op, kids[mid:])}
}

// newCell builds a cell from a function table (which must have full
// support over its N variables).
func newCell(name string, t truth.Table) (Cell, error) {
	p, err := buildPattern(t)
	if err != nil {
		return Cell{}, err
	}
	return Cell{Name: name, F: t, Vars: t.N, Pattern: p, Cost: 1}, nil
}

// CompleteLibrary enumerates one cell per NPN equivalence class of
// functions with full support of 2..K inputs. This realizes the paper's
// "complete library" for K = 2 and 3 — the paper dedupes by input
// permutation only (10 and 78 cells) but grants MIS free inverters,
// which collapses each NPN class to one effective cell; enumerating NPN
// classes directly keeps the matcher honest and the library minimal.
// Feasible for K <= 4.
func CompleteLibrary(k int) (Library, error) {
	if k < 2 || k > 4 {
		return Library{}, fmt.Errorf("mislib: complete library only for K in [2,4], got %d", k)
	}
	lib := Library{K: k, Complete: true}
	for s := 2; s <= k; s++ {
		classes := truth.NPNClasses(s, false)
		idx := 0
		for _, c := range classes {
			if c.SupportSize() != s {
				continue // covered at its own support size
			}
			idx++
			cell, err := newCell(fmt.Sprintf("c%d_%d", s, idx), c)
			if err != nil {
				return Library{}, err
			}
			lib.Cells = append(lib.Cells, cell)
		}
	}
	return lib, nil
}

// KernelLibrary builds the incomplete K = 4 or 5 library of Section 4.1:
// every level-0 kernel with at most K literals, their duals, and the
// plain AND cubes. Functions are generated structurally — cube-size
// partitions with optional opposite-phase variable sharing between
// cubes — and deduplicated by NPN canonical form.
func KernelLibrary(k int) (Library, error) {
	if k < 2 || k > truth.MaxVars {
		return Library{}, fmt.Errorf("mislib: K=%d out of range", k)
	}
	funcs := generateKernelFunctions(k)
	lib := Library{K: k, Complete: false}
	for i, f := range funcs {
		cell, err := newCell(fmt.Sprintf("k%d_%d", k, i+1), f)
		if err != nil {
			return Library{}, err
		}
		lib.Cells = append(lib.Cells, cell)
	}
	return lib, nil
}

// ForK returns the library the paper's experiments use at each K:
// complete for K = 2, 3; level-0-kernel incomplete for K >= 4.
func ForK(k int) (Library, error) {
	if k <= 3 {
		return CompleteLibrary(k)
	}
	return KernelLibrary(k)
}

// generateKernelFunctions enumerates the NPN-distinct level-0 kernel
// functions with at most maxLits literals, their duals, and single
// cubes, each shrunk to full support.
func generateKernelFunctions(maxLits int) []truth.Table {
	seen := map[truth.Table]bool{}
	var out []truth.Table
	add := func(t truth.Table) {
		small, _ := t.Shrink()
		if small.N < 2 {
			return // wires and inverters are free, not cells
		}
		canon := small.CanonNPN()
		if !seen[canon] {
			seen[canon] = true
			out = append(out, canon)
		}
	}

	// Single cubes: AND of m literals (polarity is free).
	for m := 2; m <= maxLits; m++ {
		and := truth.Const(m, true)
		for i := 0; i < m; i++ {
			and = and.And(truth.Var(i, m))
		}
		add(and)
	}

	// Level-0 kernels: partition m <= maxLits slots into >= 2 cubes,
	// then share variables between opposite-phase slot pairs across
	// different cubes. Base assignment: every slot its own positive
	// variable; sharings: matchings over slot pairs (a, b) in different
	// cubes, where b's literal becomes the complement of a's variable.
	for m := 2; m <= maxLits; m++ {
		for _, part := range partitions(m) {
			if len(part) < 2 {
				continue
			}
			// Slot layout: cube ci owns slots [ofs(ci), ofs(ci)+part[ci]).
			cubeOf := make([]int, m)
			s := 0
			for ci, sz := range part {
				for j := 0; j < sz; j++ {
					cubeOf[s] = ci
					s++
				}
			}
			for _, matching := range matchings(m, cubeOf) {
				if t, ok := kernelTable(m, cubeOf, matching); ok {
					add(t)
					// Dual: swap AND/OR, i.e. complement output and all
					// inputs.
					dual := t.Not().NegateInputs(uint(1)<<uint(t.N) - 1)
					add(dual)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].N != out[j].N {
			return out[i].N < out[j].N
		}
		return out[i].Bits < out[j].Bits
	})
	return out
}

// partitions enumerates the non-increasing integer partitions of m.
func partitions(m int) [][]int {
	var out [][]int
	var cur []int
	var rec func(rem, max int)
	rec = func(rem, max int) {
		if rem == 0 {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for v := min(rem, max); v >= 1; v-- {
			cur = append(cur, v)
			rec(rem-v, v)
			cur = cur[:len(cur)-1]
		}
	}
	rec(m, m)
	return out
}

// matchings enumerates sets of disjoint slot pairs whose members lie in
// different cubes (variable sharing with opposite phases), including
// the empty matching.
func matchings(m int, cubeOf []int) [][][2]int {
	var out [][][2]int
	var cur [][2]int
	used := make([]bool, m)
	var rec func(i int)
	rec = func(i int) {
		if i == m {
			out = append(out, append([][2]int(nil), cur...))
			return
		}
		if used[i] {
			rec(i + 1)
			return
		}
		// Option: slot i unpaired.
		rec(i + 1)
		// Option: pair slot i with a later slot in a different cube.
		used[i] = true
		for j := i + 1; j < m; j++ {
			if used[j] || cubeOf[j] == cubeOf[i] {
				continue
			}
			used[j] = true
			cur = append(cur, [2]int{i, j})
			rec(i + 1)
			cur = cur[:len(cur)-1]
			used[j] = false
		}
		used[i] = false
	}
	rec(0)
	return out
}

// kernelTable builds the truth table of the SOP described by the slot
// layout and sharing matching. Returns ok=false if the construction
// degenerates (repeated variable inside a cube, or a non-level-0 form).
func kernelTable(m int, cubeOf []int, matching [][2]int) (truth.Table, bool) {
	// Assign variables: unpaired slot -> fresh positive var; paired
	// slots share one variable, second slot negated.
	varOf := make([]int, m)
	negOf := make([]bool, m)
	for i := range varOf {
		varOf[i] = -1
	}
	nv := 0
	for _, pr := range matching {
		varOf[pr[0]] = nv
		varOf[pr[1]] = nv
		negOf[pr[1]] = true
		nv++
	}
	for i := 0; i < m; i++ {
		if varOf[i] < 0 {
			varOf[i] = nv
			nv++
		}
	}
	if nv > truth.MaxVars {
		return truth.Table{}, false
	}
	nCubes := 0
	for _, c := range cubeOf {
		if c+1 > nCubes {
			nCubes = c + 1
		}
	}
	t := truth.FromFunc(nv, func(a uint) bool {
		for ci := 0; ci < nCubes; ci++ {
			all := true
			any := false
			for s := 0; s < m; s++ {
				if cubeOf[s] != ci {
					continue
				}
				any = true
				v := a>>uint(varOf[s])&1 == 1
				if negOf[s] {
					v = !v
				}
				if !v {
					all = false
					break
				}
			}
			if any && all {
				return true
			}
		}
		return false
	})
	// Degenerate sharings can collapse support (e.g. a + a' = 1).
	if ok, _ := t.IsConst(); ok {
		return truth.Table{}, false
	}
	return t, true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
