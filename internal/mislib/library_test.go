package mislib

import (
	"math/rand"
	"testing"

	"chortle/internal/network"
	"chortle/internal/truth"
)

func TestMinimizeSOPEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(5)
		f := truth.New(n, rng.Uint64())
		s := MinimizeSOP(f)
		for a := uint64(0); a < 1<<uint(n); a++ {
			if s.Eval(a) != f.Eval(uint(a)) {
				t.Fatalf("trial %d: SOP %v wrong for %v at %b", trial, s, f, a)
			}
		}
	}
}

func TestMinimizeSOPKnownFunctions(t *testing.T) {
	and := truth.Var(0, 2).And(truth.Var(1, 2))
	if s := MinimizeSOP(and); len(s.Cubes) != 1 || s.Literals() != 2 {
		t.Fatalf("AND minimized to %v", s)
	}
	xor := truth.Var(0, 2).Xor(truth.Var(1, 2))
	if s := MinimizeSOP(xor); len(s.Cubes) != 2 || s.Literals() != 4 {
		t.Fatalf("XOR minimized to %v", s)
	}
	// a + bc needs 2 cubes / 3 literals.
	f := truth.Var(0, 3).Or(truth.Var(1, 3).And(truth.Var(2, 3)))
	if s := MinimizeSOP(f); len(s.Cubes) != 2 || s.Literals() != 3 {
		t.Fatalf("a+bc minimized to %v", s)
	}
	if !MinimizeSOP(truth.Const(3, true)).IsOne() {
		t.Fatal("constant 1 wrong")
	}
	if !MinimizeSOP(truth.Const(3, false)).IsZero() {
		t.Fatal("constant 0 wrong")
	}
}

// evalPattern evaluates a pattern on a variable assignment.
func evalPattern(p *PatNode, assign uint) bool {
	if p.Leaf {
		v := assign>>uint(p.Var)&1 == 1
		return v != p.Neg
	}
	l, r := evalPattern(p.L, assign), evalPattern(p.R, assign)
	if p.Op == network.OpAnd {
		return l && r
	}
	return l || r
}

func TestPatternsComputeCellFunctions(t *testing.T) {
	for k := 2; k <= 5; k++ {
		lib, err := ForK(k)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range lib.Cells {
			if c.Pattern == nil {
				t.Fatalf("K=%d cell %s has no pattern", k, c.Name)
			}
			for a := uint(0); a < 1<<uint(c.Vars); a++ {
				if evalPattern(c.Pattern, a) != c.F.Eval(a) {
					t.Fatalf("K=%d cell %s pattern disagrees with function at %b", k, c.Name, a)
				}
			}
			if c.Cost != 1 {
				t.Fatalf("cell %s cost %d", c.Name, c.Cost)
			}
			if c.F.SupportSize() != c.Vars {
				t.Fatalf("cell %s does not have full support", c.Name)
			}
		}
	}
}

func TestCompleteLibrarySizes(t *testing.T) {
	// NPN classes with full support: n=2: AND, XOR (2 of the 4 classes
	// have support 2); n=3: 10 full-support classes of the 14.
	lib2, err := CompleteLibrary(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib2.Cells) != 2 {
		t.Fatalf("K=2 complete library has %d cells, want 2 (AND, XOR)", len(lib2.Cells))
	}
	lib3, err := CompleteLibrary(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib3.Cells) != 12 {
		t.Fatalf("K=3 complete library has %d cells, want 12 (2 + 10)", len(lib3.Cells))
	}
	if !lib3.Complete {
		t.Fatal("complete flag unset")
	}
	if _, err := CompleteLibrary(5); err == nil {
		t.Fatal("complete K=5 should be rejected as intractable")
	}
}

func TestKernelLibraryContents(t *testing.T) {
	lib4, err := KernelLibrary(4)
	if err != nil {
		t.Fatal(err)
	}
	if lib4.Complete {
		t.Fatal("kernel library must be flagged incomplete")
	}
	find := func(lib Library, f truth.Table) bool {
		canon := f.CanonNPN()
		for _, c := range lib.Cells {
			if c.F == canon {
				return true
			}
		}
		return false
	}
	and2 := truth.Var(0, 2).And(truth.Var(1, 2))
	or2 := truth.Var(0, 2).Or(truth.Var(1, 2))
	xor2 := truth.Var(0, 2).Xor(truth.Var(1, 2))
	aoi := truth.Var(0, 3).Or(truth.Var(1, 3).And(truth.Var(2, 3))) // a + bc
	mux := truth.FromFunc(3, func(m uint) bool {                    // s ? a : b
		if m>>2&1 == 1 {
			return m&1 == 1
		}
		return m>>1&1 == 1
	})
	for name, f := range map[string]truth.Table{
		"AND2": and2, "OR2": or2, "XOR2": xor2, "a+bc": aoi, "MUX": mux,
	} {
		if !find(lib4, f) {
			t.Errorf("K=4 kernel library missing %s", name)
		}
	}
	// Every cell respects the literal bound in factored form: the
	// Section 4.1 rule bounds kernel literals, and a dual like (a+b)cd
	// keeps 4 factored literals even though its SOP expands to 6.
	for _, c := range lib4.Cells {
		if n := c.Pattern.Leaves(); n > 4 {
			t.Errorf("cell %s has %d factored literals (>4): %v", c.Name, n, MinimizeSOP(c.F))
		}
	}
	// The incomplete K=4 library must be much smaller than the 222-class
	// complete set — that incompleteness is what the paper measures.
	complete4, err := CompleteLibrary(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib4.Cells) >= len(complete4.Cells) {
		t.Fatalf("kernel library (%d) not smaller than complete (%d)", len(lib4.Cells), len(complete4.Cells))
	}
	lib5, err := KernelLibrary(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib5.Cells) <= len(lib4.Cells) {
		t.Fatalf("K=5 library (%d cells) should extend K=4 (%d)", len(lib5.Cells), len(lib4.Cells))
	}
}

func TestKernelLibraryCellsAreCanonicalAndDistinct(t *testing.T) {
	lib, err := KernelLibrary(5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[truth.Table]bool{}
	for _, c := range lib.Cells {
		if c.F.CanonNPN() != c.F {
			t.Fatalf("cell %s not NPN-canonical", c.Name)
		}
		if seen[c.F] {
			t.Fatalf("duplicate cell function %v", c.F)
		}
		seen[c.F] = true
	}
}

func TestForK(t *testing.T) {
	for k := 2; k <= 5; k++ {
		lib, err := ForK(k)
		if err != nil {
			t.Fatal(err)
		}
		if lib.K != k {
			t.Fatalf("lib.K = %d", lib.K)
		}
		wantComplete := k <= 3
		if lib.Complete != wantComplete {
			t.Fatalf("K=%d complete=%v", k, lib.Complete)
		}
		if len(lib.Cells) == 0 {
			t.Fatalf("K=%d library empty", k)
		}
	}
}
