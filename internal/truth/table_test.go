package truth

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVarProjection(t *testing.T) {
	for n := 1; n <= MaxVars; n++ {
		for i := 0; i < n; i++ {
			v := Var(i, n)
			for m := uint(0); m < 1<<uint(n); m++ {
				want := m>>uint(i)&1 == 1
				if v.Eval(m) != want {
					t.Fatalf("Var(%d,%d).Eval(%b) = %v, want %v", i, n, m, v.Eval(m), want)
				}
			}
		}
	}
}

func TestConst(t *testing.T) {
	for n := 0; n <= MaxVars; n++ {
		c0, c1 := Const(n, false), Const(n, true)
		if ok, v := c0.IsConst(); !ok || v {
			t.Fatalf("Const(%d,false) not recognized", n)
		}
		if ok, v := c1.IsConst(); !ok || !v {
			t.Fatalf("Const(%d,true) not recognized", n)
		}
		if c0.Ones() != 0 || c1.Ones() != 1<<uint(n) {
			t.Fatalf("Ones wrong for constants over %d vars", n)
		}
	}
}

func TestBooleanAlgebraIdentities(t *testing.T) {
	// De Morgan, double complement, absorption — on random 4-var tables.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := New(4, rng.Uint64())
		b := New(4, rng.Uint64())
		if a.And(b).Not() != a.Not().Or(b.Not()) {
			t.Fatal("De Morgan (AND) violated")
		}
		if a.Or(b).Not() != a.Not().And(b.Not()) {
			t.Fatal("De Morgan (OR) violated")
		}
		if a.Not().Not() != a {
			t.Fatal("double complement violated")
		}
		if a.Or(a.And(b)) != a {
			t.Fatal("absorption violated")
		}
		if a.Xor(b) != a.And(b.Not()).Or(a.Not().And(b)) {
			t.Fatal("XOR expansion violated")
		}
	}
}

func TestShannonExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		f := New(5, rng.Uint64())
		for v := 0; v < 5; v++ {
			x := Var(v, 5)
			rebuilt := x.And(f.Cofactor(v, true)).Or(x.Not().And(f.Cofactor(v, false)))
			if rebuilt != f {
				t.Fatalf("Shannon expansion on var %d failed for %v", v, f)
			}
		}
	}
}

func TestSupport(t *testing.T) {
	f := Var(0, 4).And(Var(2, 4)) // depends on x0, x2 only
	if got := f.Support(); got != 0b0101 {
		t.Fatalf("Support = %04b, want 0101", got)
	}
	if f.SupportSize() != 2 {
		t.Fatalf("SupportSize = %d, want 2", f.SupportSize())
	}
	if c, _ := Const(4, true).IsConst(); !c || Const(4, true).Support() != 0 {
		t.Fatal("constant should have empty support")
	}
}

func TestShrinkGrowRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		f := New(5, rng.Uint64())
		small, vars := f.Shrink()
		if small.N != f.SupportSize() {
			t.Fatalf("Shrink arity %d != support size %d", small.N, f.SupportSize())
		}
		if small.Grow(5, vars) != f {
			t.Fatalf("Shrink/Grow round trip failed for %v", f)
		}
	}
}

func TestPermuteComposition(t *testing.T) {
	// Permuting by p then q equals permuting by the composition.
	f := FromFunc(3, func(m uint) bool { return m == 0b011 || m == 0b100 })
	p := []int{1, 2, 0}
	q := []int{2, 0, 1}
	lhs := f.Permute(p).Permute(q)
	comp := make([]int, 3)
	for i := range comp {
		comp[i] = p[q[i]]
	}
	rhs := f.Permute(comp)
	if lhs != rhs {
		t.Fatalf("permute composition: %v vs %v", lhs, rhs)
	}
}

func TestPermuteSemantics(t *testing.T) {
	// r = f.Permute(p) must satisfy r(x) = f(x_{p[0]},...,x_{p[n-1]}).
	f := Var(0, 3) // f = x0
	r := f.Permute([]int{2, 0, 1})
	// r's input 0 is driven by variable 2, so r = x2.
	if r != Var(2, 3) {
		t.Fatalf("Permute semantics: got %v, want x2", r)
	}
}

func TestNegateInput(t *testing.T) {
	f := Var(1, 3)
	if f.NegateInput(1) != Var(1, 3).Not() {
		t.Fatal("NegateInput on projection should complement it")
	}
	if f.NegateInput(0) != f {
		t.Fatal("NegateInput on unused variable should be identity")
	}
	if f.NegateInputs(0b010) != f.Not() {
		t.Fatal("NegateInputs mask semantics wrong")
	}
}

func TestCanonPInvariance(t *testing.T) {
	// CanonP must be invariant under any input permutation.
	err := quick.Check(func(bits uint64, seed int64) bool {
		f := New(4, bits)
		rng := rand.New(rand.NewSource(seed))
		p := rng.Perm(4)
		return f.CanonP() == f.Permute(p).CanonP()
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCanonNPNInvariance(t *testing.T) {
	err := quick.Check(func(bits uint64, seed int64) bool {
		f := New(4, bits)
		rng := rand.New(rand.NewSource(seed))
		g := f.NegateInputs(uint(rng.Intn(16))).Permute(rng.Perm(4))
		if rng.Intn(2) == 1 {
			g = g.Not()
		}
		return f.CanonNPN() == g.CanonNPN()
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// TestUniqueFunctionCounts reproduces the library-size arithmetic of the
// paper's Section 4.1: 10 unique functions for K=2 (out of 16) and 78
// for K=3 (out of 256) — permutation classes with constants excluded.
// The known total class counts (with constants) 4, 12, 80, 3984 and the
// NPN counts 2, 4, 14, 222 pin down the implementation independently.
func TestUniqueFunctionCounts(t *testing.T) {
	if got := CountPClasses(2); got != 10 {
		t.Errorf("K=2 unique functions = %d, paper says 10", got)
	}
	if got := CountPClasses(3); got != 78 {
		t.Errorf("K=3 unique functions = %d, paper says 78", got)
	}
	wantPTotal := map[int]int{1: 4, 2: 12, 3: 80, 4: 3984}
	for n, want := range wantPTotal {
		if got := len(PClasses(n, true)); got != want {
			t.Errorf("total P classes n=%d: got %d, want %d", n, got, want)
		}
	}
	wantNPN := map[int]int{1: 2, 2: 4, 3: 14, 4: 222}
	for n, want := range wantNPN {
		if got := len(NPNClasses(n, true)); got != want {
			t.Errorf("total NPN classes n=%d: got %d, want %d", n, got, want)
		}
	}
}

func TestPClassRepresentativesAreCanonical(t *testing.T) {
	for _, c := range PClasses(3, true) {
		if c.CanonP() != c {
			t.Fatalf("representative %v is not its own canonical form", c)
		}
	}
}

func TestMinterms(t *testing.T) {
	and := Var(0, 2).And(Var(1, 2))
	ms := and.Minterms()
	if len(ms) != 1 || ms[0] != "11" {
		t.Fatalf("AND minterms = %v, want [11]", ms)
	}
	xor := Var(0, 2).Xor(Var(1, 2))
	ms = xor.Minterms()
	if len(ms) != 2 || ms[0] != "10" || ms[1] != "01" {
		t.Fatalf("XOR minterms = %v", ms)
	}
}

func BenchmarkCanonP4(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	tabs := make([]Table, 256)
	for i := range tabs {
		tabs[i] = New(4, rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tabs[i%len(tabs)].CanonP()
	}
}

func BenchmarkPClassEnumeration3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = PClasses(3, false)
	}
}
