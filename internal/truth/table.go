// Package truth implements bit-packed truth tables for Boolean functions
// of up to six variables, together with the equivalence-class machinery
// (permutation and negation canonical forms) that the Chortle paper uses
// to size lookup-table libraries: a K-input lookup table implements any
// of the 2^(2^K) functions of K variables, and the MIS-style baseline
// library of Section 4.1 needs one representative per permutation class.
//
// A Table stores the function's output column as a uint64: bit m holds
// f(m) where minterm m assigns variable i the value of bit i of m.
// All operations are value semantics; Tables are comparable and can be
// used as map keys, which the class-enumeration code relies on.
package truth

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxVars is the largest supported number of variables. 2^(2^6) functions
// do not fit any table, but a single 6-input function fits in a uint64,
// which is all the mapper needs (the paper evaluates K = 2..5).
const MaxVars = 6

// Table is a Boolean function of N variables stored as a packed truth
// table. Bits above 2^N are kept zeroed so that equal functions compare
// equal with ==.
type Table struct {
	Bits uint64 // bit m = f(m)
	N    int    // number of variables, 0..MaxVars
}

// Mask returns the bitmask covering the 2^n rows of an n-variable table.
func Mask(n int) uint64 {
	if n >= MaxVars {
		return ^uint64(0)
	}
	return (uint64(1) << (1 << uint(n))) - 1
}

// New returns a table over n variables with the given output bits.
// Bits outside the table are cleared. It panics if n is out of range,
// which indicates a programming error in the caller.
func New(n int, bits uint64) Table {
	if n < 0 || n > MaxVars {
		panic(fmt.Sprintf("truth: %d variables out of range [0,%d]", n, MaxVars))
	}
	return Table{Bits: bits & Mask(n), N: n}
}

// Const returns the constant function v over n variables.
func Const(n int, v bool) Table {
	if v {
		return New(n, ^uint64(0))
	}
	return New(n, 0)
}

// Var returns the projection function x_i over n variables.
func Var(i, n int) Table {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("truth: variable %d out of range for %d inputs", i, n))
	}
	var b uint64
	for m := uint(0); m < 1<<uint(n); m++ {
		if m>>uint(i)&1 == 1 {
			b |= 1 << m
		}
	}
	return Table{Bits: b, N: n}
}

// FromFunc builds a table by evaluating f on every minterm.
func FromFunc(n int, f func(m uint) bool) Table {
	var b uint64
	for m := uint(0); m < 1<<uint(n); m++ {
		if f(m) {
			b |= 1 << m
		}
	}
	return New(n, b)
}

// Eval returns f(m) for the minterm m (bit i of m = value of variable i).
func (t Table) Eval(m uint) bool { return t.Bits>>(m&(1<<uint(t.N)-1))&1 == 1 }

// Not returns the complement of t.
func (t Table) Not() Table { return Table{Bits: ^t.Bits & Mask(t.N), N: t.N} }

// And returns t AND u. Both tables must range over the same variables.
func (t Table) And(u Table) Table { t.mustMatch(u); return Table{Bits: t.Bits & u.Bits, N: t.N} }

// Or returns t OR u.
func (t Table) Or(u Table) Table { t.mustMatch(u); return Table{Bits: t.Bits | u.Bits, N: t.N} }

// Xor returns t XOR u.
func (t Table) Xor(u Table) Table { t.mustMatch(u); return Table{Bits: t.Bits ^ u.Bits, N: t.N} }

func (t Table) mustMatch(u Table) {
	if t.N != u.N {
		panic(fmt.Sprintf("truth: mixed arities %d and %d", t.N, u.N))
	}
}

// IsConst reports whether t is a constant function, and which constant.
func (t Table) IsConst() (bool, bool) {
	switch t.Bits {
	case 0:
		return true, false
	case Mask(t.N):
		return true, true
	}
	return false, false
}

// Ones returns the number of minterms on which t is true.
func (t Table) Ones() int { return bits.OnesCount64(t.Bits) }

// Cofactor returns the cofactor of t with variable i fixed to val.
// The result still ranges over all N variables (variable i is simply
// unused in it), which keeps compositions simple.
func (t Table) Cofactor(i int, val bool) Table {
	return FromFunc(t.N, func(m uint) bool {
		if val {
			return t.Eval(m | 1<<uint(i))
		}
		return t.Eval(m &^ (1 << uint(i)))
	})
}

// DependsOn reports whether t actually depends on variable i.
func (t Table) DependsOn(i int) bool {
	return t.Cofactor(i, false) != t.Cofactor(i, true)
}

// Support returns the bitmask of variables t depends on.
func (t Table) Support() uint {
	var s uint
	for i := 0; i < t.N; i++ {
		if t.DependsOn(i) {
			s |= 1 << uint(i)
		}
	}
	return s
}

// SupportSize returns the number of variables t depends on.
func (t Table) SupportSize() int { return bits.OnesCount(t.Support()) }

// Shrink re-expresses t over only its support variables, in ascending
// order, and returns the new table together with the original index of
// each remaining variable. A constant shrinks to a 0-variable table.
func (t Table) Shrink() (Table, []int) {
	var vars []int
	for i := 0; i < t.N; i++ {
		if t.DependsOn(i) {
			vars = append(vars, i)
		}
	}
	out := FromFunc(len(vars), func(m uint) bool {
		var full uint
		for j, v := range vars {
			if m>>uint(j)&1 == 1 {
				full |= 1 << uint(v)
			}
		}
		return t.Eval(full)
	})
	return out, vars
}

// Grow re-expresses t over n >= t.N variables, mapping old variable j to
// new position vars[j]. Positions must be distinct and < n.
func (t Table) Grow(n int, vars []int) Table {
	if len(vars) != t.N {
		panic("truth: Grow needs one position per existing variable")
	}
	return FromFunc(n, func(m uint) bool {
		var small uint
		for j, v := range vars {
			if m>>uint(v)&1 == 1 {
				small |= 1 << uint(j)
			}
		}
		return t.Eval(small)
	})
}

// Permute returns t with its inputs permuted: the result r satisfies
// r(x_0..x_{n-1}) = t(x_{p[0]}, ..., x_{p[n-1]}); that is, input i of t
// is driven by variable p[i].
func (t Table) Permute(p []int) Table {
	if len(p) != t.N {
		panic("truth: permutation length mismatch")
	}
	return FromFunc(t.N, func(m uint) bool {
		var pm uint
		for i := 0; i < t.N; i++ {
			if m>>uint(p[i])&1 == 1 {
				pm |= 1 << uint(i)
			}
		}
		return t.Eval(pm)
	})
}

// NegateInput returns t with input i complemented.
func (t Table) NegateInput(i int) Table {
	return FromFunc(t.N, func(m uint) bool { return t.Eval(m ^ 1<<uint(i)) })
}

// NegateInputs returns t with every input in mask complemented.
func (t Table) NegateInputs(mask uint) Table {
	return FromFunc(t.N, func(m uint) bool { return t.Eval(m ^ mask) })
}

// String renders the table as its hex output column, most significant
// row first, e.g. the 2-input AND is "Table[2]{0x8}".
func (t Table) String() string {
	return fmt.Sprintf("Table[%d]{%#x}", t.N, t.Bits)
}

// Minterms renders the on-set as a PLA-style cube list, one line per
// minterm, for debugging and BLIF emission of raw tables.
func (t Table) Minterms() []string {
	var out []string
	for m := uint(0); m < 1<<uint(t.N); m++ {
		if t.Eval(m) {
			var sb strings.Builder
			for i := 0; i < t.N; i++ {
				if m>>uint(i)&1 == 1 {
					sb.WriteByte('1')
				} else {
					sb.WriteByte('0')
				}
			}
			out = append(out, sb.String())
		}
	}
	return out
}
