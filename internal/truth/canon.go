package truth

// Canonical forms and equivalence-class enumeration.
//
// The Chortle paper's Section 4.1 sizes MIS libraries by the number of
// Boolean functions unique up to input permutation: "for K=2 there are
// only 10 unique functions out of a possible 16, and for K=3 there are
// 78 unique functions out of a possible 256". Those are exactly the
// permutation (P) classes with the two constants excluded, which
// CountPClasses reproduces. NPN classes (permutation + input and output
// negation) are also provided; they are what a mapper with free
// inverters effectively distinguishes.

// permutations returns all permutations of 0..n-1 in lexicographic order.
func permutations(n int) [][]int {
	var out [][]int
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			cp := make([]int, n)
			copy(cp, p)
			out = append(out, cp)
			return
		}
		for i := k; i < n; i++ {
			p[k], p[i] = p[i], p[k]
			rec(k + 1)
			p[k], p[i] = p[i], p[k]
		}
	}
	rec(0)
	return out
}

var permCache [MaxVars + 1][][]int

func permsOf(n int) [][]int {
	if permCache[n] == nil {
		permCache[n] = permutations(n)
	}
	return permCache[n]
}

// permMaps[n] holds, for each permutation p of n variables, the map from
// output minterm m to the source minterm of Permute: row m of the result
// reads row permMap[m] of the original. Precomputed because class
// enumeration applies every permutation to tens of thousands of tables.
var permMapCache [MaxVars + 1][][]uint8

func permMapsOf(n int) [][]uint8 {
	if permMapCache[n] == nil {
		perms := permsOf(n)
		maps := make([][]uint8, len(perms))
		for pi, p := range perms {
			mm := make([]uint8, 1<<uint(n))
			for m := uint(0); m < 1<<uint(n); m++ {
				var pm uint
				for i := 0; i < n; i++ {
					if m>>uint(p[i])&1 == 1 {
						pm |= 1 << uint(i)
					}
				}
				mm[m] = uint8(pm)
			}
			maps[pi] = mm
		}
		permMapCache[n] = maps
	}
	return permMapCache[n]
}

// applyMap permutes the rows of bits according to mm (n <= 5 variables).
func applyMap(bits uint64, mm []uint8) uint64 {
	var out uint64
	for m, src := range mm {
		out |= (bits >> src & 1) << uint(m)
	}
	return out
}

// CanonP returns the canonical representative of t's permutation class:
// the minimum Bits value over all input permutations.
func (t Table) CanonP() Table {
	best := t.Bits
	for _, mm := range permMapsOf(t.N) {
		if q := applyMap(t.Bits, mm); q < best {
			best = q
		}
	}
	return Table{Bits: best, N: t.N}
}

// CanonNPN returns the canonical representative of t's NPN class: the
// minimum Bits value over all input permutations, input complementations
// and output complementation.
func (t Table) CanonNPN() Table {
	best := ^uint64(0) & Mask(t.N)
	maps := permMapsOf(t.N)
	for _, out := range []uint64{t.Bits, ^t.Bits & Mask(t.N)} {
		for neg := uint(0); neg < 1<<uint(t.N); neg++ {
			// Complementing inputs in neg permutes rows by m -> m^neg.
			var u uint64
			for m := uint(0); m < 1<<uint(t.N); m++ {
				u |= (out >> (m ^ neg) & 1) << m
			}
			for _, mm := range maps {
				if q := applyMap(u, mm); q < best {
					best = q
				}
			}
		}
	}
	return Table{Bits: best, N: t.N}
}

// PClasses enumerates one canonical representative per permutation class
// of the n-variable functions. includeConstants controls whether the two
// constant functions are listed (the paper excludes them when counting
// library cells). Feasible for n <= 4 (65536 functions); larger n would
// need 2^32+ table scans and is rejected.
func PClasses(n int, includeConstants bool) []Table {
	if n > 4 {
		panic("truth: PClasses is only tractable for n <= 4")
	}
	seen := make(map[uint64]bool)
	var out []Table
	for b := uint64(0); b <= Mask(n); b++ {
		t := Table{Bits: b, N: n}
		if c, _ := t.IsConst(); c && !includeConstants {
			continue
		}
		canon := t.CanonP()
		if !seen[canon.Bits] {
			seen[canon.Bits] = true
			out = append(out, canon)
		}
		if b == Mask(n) { // avoid uint64 wrap when Mask(n) is all-ones
			break
		}
	}
	return out
}

// CountPClasses returns the number of permutation classes of n-variable
// functions, excluding the two constants — the quantity the paper calls
// "unique functions" (10 for K=2, 78 for K=3).
func CountPClasses(n int) int { return len(PClasses(n, false)) }

// NPNClasses enumerates one canonical representative per NPN class.
func NPNClasses(n int, includeConstants bool) []Table {
	if n > 4 {
		panic("truth: NPNClasses is only tractable for n <= 4")
	}
	seen := make(map[uint64]bool)
	var out []Table
	for b := uint64(0); b <= Mask(n); b++ {
		t := Table{Bits: b, N: n}
		if c, _ := t.IsConst(); c && !includeConstants {
			continue
		}
		canon := t.CanonNPN()
		if !seen[canon.Bits] {
			seen[canon.Bits] = true
			out = append(out, canon)
		}
		if b == Mask(n) {
			break
		}
	}
	return out
}

// CountNPNClasses returns the number of NPN classes excluding constants.
func CountNPNClasses(n int) int { return len(NPNClasses(n, false)) }
