package truth

import (
	"math/bits"
	"math/rand"
	"testing"
)

// Property-based tests: the canonicalization and structural operators
// are checked against algebraic invariants on seeded random tables, and
// the paper's unique-function counts (10 for K=2, 78 for K=3) are
// re-derived by two independent routes — brute-force orbit partition
// and Burnside's lemma — neither of which shares code with PClasses.

// randTable draws a uniform n-variable table.
func randTable(rng *rand.Rand, n int) Table {
	return New(n, rng.Uint64())
}

// randPerm draws a uniform permutation of n elements.
func randPerm(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}

// TestCanonPInvariantUnderPermutation: permuting inputs never changes
// the permutation-class representative, and canonicalization is
// idempotent and never increases the packed bits (it is the orbit
// minimum).
func TestCanonPInvariantUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(MaxVars)
		tab := randTable(rng, n)
		canon := tab.CanonP()
		if got := tab.Permute(randPerm(rng, n)).CanonP(); got != canon {
			t.Fatalf("n=%d %v: permuted canon %v != %v", n, tab, got, canon)
		}
		if canon.CanonP() != canon {
			t.Fatalf("n=%d %v: CanonP not idempotent", n, tab)
		}
		if canon.Bits > tab.Bits {
			t.Fatalf("n=%d %v: canon bits %#x exceed original %#x", n, tab, canon.Bits, tab.Bits)
		}
	}
}

// TestCanonNPNInvariant: the NPN representative is unchanged by input
// permutation, input negation, and output negation — including all
// three composed, which is the full acceptance identity
// canon(permute(negate(f))) == canon(f).
func TestCanonNPNInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	// NPN canonicalization of a 6-variable table scans 720 permutations
	// x 64 negations x 2 phases; keep the trial count moderate.
	for trial := 0; trial < 250; trial++ {
		n := 1 + rng.Intn(MaxVars)
		tab := randTable(rng, n)
		canon := tab.CanonNPN()
		mangled := tab.NegateInputs(uint(rng.Intn(1 << n))).Permute(randPerm(rng, n))
		if rng.Intn(2) == 1 {
			mangled = mangled.Not()
		}
		if got := mangled.CanonNPN(); got != canon {
			t.Fatalf("n=%d %v: mangled canon %v != %v", n, tab, got, canon)
		}
		if canon.CanonNPN() != canon {
			t.Fatalf("n=%d %v: CanonNPN not idempotent", n, tab)
		}
	}
}

// TestCanonPReachable: for small n, the representative is actually in
// the orbit — some explicit permutation maps the table onto it.
func TestCanonPReachable(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(3)
		tab := randTable(rng, n)
		canon := tab.CanonP()
		found := false
		for _, p := range enumPerms(n) {
			if tab.Permute(p) == canon {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("n=%d %v: canon %v not reachable by any permutation", n, tab, canon)
		}
	}
}

// TestShannonExpansionAllWidths: f = x_i·f|x_i=1 + x_i'·f|x_i=0 for
// every variable of random tables at every width 1..MaxVars (the
// table_test version fixes n=5).
func TestShannonExpansionAllWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 1000; trial++ {
		n := 1 + rng.Intn(MaxVars)
		tab := randTable(rng, n)
		for i := 0; i < n; i++ {
			x := Var(i, n)
			rebuilt := x.And(tab.Cofactor(i, true)).Or(x.Not().And(tab.Cofactor(i, false)))
			if rebuilt != tab {
				t.Fatalf("n=%d %v: Shannon expansion on x%d gives %v", n, tab, i, rebuilt)
			}
		}
	}
}

// TestSupportConsistency ties DependsOn, Support, SupportSize, Cofactor
// and Shrink/Grow together on random tables.
func TestSupportConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 1000; trial++ {
		n := 1 + rng.Intn(MaxVars)
		tab := randTable(rng, n)
		support := tab.Support()
		for i := 0; i < n; i++ {
			dep := tab.DependsOn(i)
			if dep != (support>>uint(i)&1 == 1) {
				t.Fatalf("n=%d %v: DependsOn(%d)=%v disagrees with Support %#b", n, tab, i, dep, support)
			}
			if dep == (tab.Cofactor(i, true) == tab.Cofactor(i, false)) {
				t.Fatalf("n=%d %v: DependsOn(%d)=%v but cofactors say otherwise", n, tab, i, dep)
			}
		}
		if tab.SupportSize() != bits.OnesCount(support) {
			t.Fatalf("n=%d %v: SupportSize %d != popcount(%#b)", n, tab, tab.SupportSize(), support)
		}
		shrunk, vars := tab.Shrink()
		if len(vars) != tab.SupportSize() {
			t.Fatalf("n=%d %v: Shrink kept %d vars, support is %d", n, tab, len(vars), tab.SupportSize())
		}
		if shrunk.SupportSize() != shrunk.N {
			t.Fatalf("n=%d %v: shrunk table %v does not depend on all its variables", n, tab, shrunk)
		}
		if regrown := shrunk.Grow(n, vars); regrown != tab {
			t.Fatalf("n=%d %v: Shrink+Grow round trip gives %v", n, tab, regrown)
		}
	}
}

// enumPerms enumerates all permutations of n elements with its own
// recursion, independent of canon.go's enumeration.
func enumPerms(n int) [][]int {
	var out [][]int
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), p...))
			return
		}
		for i := k; i < n; i++ {
			p[k], p[i] = p[i], p[k]
			rec(k + 1)
			p[k], p[i] = p[i], p[k]
		}
	}
	rec(0)
	return out
}

// permuteMinterm applies permutation p to a minterm's variable bits:
// bit i of the result is bit p[i] of m — the same action Permute uses
// on table rows.
func permuteMinterm(m uint, p []int) uint {
	var out uint
	for i, pi := range p {
		out |= (m >> uint(pi) & 1) << uint(i)
	}
	return out
}

// TestUniqueFunctionCountsByEnumeration re-derives the paper's unique
// n-input function counts two independent ways and checks both against
// CountPClasses and PClasses:
//
//  1. brute force: canonicalize all 2^2^n functions by explicit orbit
//     minimum over the enumerated permutations (no CanonP);
//  2. Burnside's lemma: classes = (1/n!) * sum over permutations of
//     2^(cycles of the permutation's action on minterms).
//
// The paper's counts are 10 unique 2-input and 78 unique 3-input
// functions, constants excluded.
func TestUniqueFunctionCountsByEnumeration(t *testing.T) {
	want := map[int]int{2: 10, 3: 78}
	for n := 1; n <= 3; n++ {
		perms := enumPerms(n)
		rows := uint(1) << uint(n)

		// Route 1: explicit orbit partition.
		distinct := make(map[uint64]bool)
		for bitsVal := uint64(0); bitsVal < 1<<(1<<uint(n)); bitsVal++ {
			tab := New(n, bitsVal)
			min := tab.Bits
			for _, p := range perms {
				if b := tab.Permute(p).Bits; b < min {
					min = b
				}
			}
			distinct[min] = true
		}
		bruteClasses := len(distinct) - 2 // drop the two constants

		// Route 2: Burnside. Count, for each permutation, the cycles of
		// its action on the 2^n minterms; it fixes 2^cycles functions.
		var fixedSum uint64
		for _, p := range perms {
			seen := make([]bool, rows)
			cycles := 0
			for m := uint(0); m < rows; m++ {
				if seen[m] {
					continue
				}
				cycles++
				for x := m; !seen[x]; x = permuteMinterm(x, p) {
					seen[x] = true
				}
			}
			fixedSum += 1 << uint(cycles)
		}
		burnsideClasses := int(fixedSum/uint64(len(perms))) - 2

		if bruteClasses != burnsideClasses {
			t.Fatalf("n=%d: brute force says %d classes, Burnside says %d", n, bruteClasses, burnsideClasses)
		}
		if got := CountPClasses(n); got != bruteClasses {
			t.Errorf("n=%d: CountPClasses=%d, independent derivations say %d", n, got, bruteClasses)
		}
		if got := len(PClasses(n, false)); got != bruteClasses {
			t.Errorf("n=%d: len(PClasses)=%d, independent derivations say %d", n, got, bruteClasses)
		}
		if w, ok := want[n]; ok && bruteClasses != w {
			t.Errorf("n=%d: derived %d unique functions, paper says %d", n, bruteClasses, w)
		}
	}
}
