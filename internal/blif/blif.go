// Package blif reads and writes the Berkeley Logic Interchange Format
// subset used by MIS II and the MCNC-89 benchmark suite: .model,
// .inputs, .outputs, .names with {0,1,-} cube tables, and .end.
// Sequential elements (.latch) and hierarchy (.subckt) are out of scope
// for combinational technology mapping and are rejected with an error.
//
// A .names table is lowered onto the AND/OR network representation of
// internal/network: each cube becomes an AND over polarized literals and
// the cover becomes an OR of cubes; off-set covers (output plane '0')
// become an inverted reference. Constants are folded into consumers.
package blif

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"chortle/internal/cerrs"
	"chortle/internal/network"
)

// decl is one parsed .names table before lowering.
type decl struct {
	inputs []string
	output string
	cubes  []string // input planes, all with the same output phase
	phase  byte     // '1' (on-set) or '0' (off-set)
	line   int
}

// latchDecl is one parsed .latch line.
type latchDecl struct {
	d, q string
	init byte
	line int
}

// Read parses a BLIF model from r and lowers it to a Boolean network.
func Read(r io.Reader) (*network.Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	var (
		model   string
		inputs  []string
		outputs []string
		decls   []*decl
		latches []latchDecl
		cur     *decl
		lineNo  int
		sawEnd  bool
	)

	// logical lines: backslash continuation, '#' comments stripped.
	nextFields := func() ([]string, bool, error) {
		var acc []string
		for sc.Scan() {
			lineNo++
			line := sc.Text()
			if i := strings.IndexByte(line, '#'); i >= 0 {
				line = line[:i]
			}
			cont := false
			line = strings.TrimSpace(line)
			if strings.HasSuffix(line, "\\") {
				cont = true
				line = strings.TrimSuffix(line, "\\")
			}
			acc = append(acc, strings.Fields(line)...)
			if cont {
				continue
			}
			if len(acc) == 0 {
				continue
			}
			return acc, true, nil
		}
		if err := sc.Err(); err != nil {
			return nil, false, err
		}
		if len(acc) > 0 {
			return acc, true, nil
		}
		return nil, false, nil
	}

	for {
		fields, ok, err := nextFields()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if sawEnd {
			return nil, fmt.Errorf("blif line %d: content after .end", lineNo)
		}
		tok := fields[0]
		switch {
		case tok == ".model":
			if len(fields) > 1 {
				model = fields[1]
			}
			cur = nil
		case tok == ".inputs":
			inputs = append(inputs, fields[1:]...)
			cur = nil
		case tok == ".outputs":
			outputs = append(outputs, fields[1:]...)
			cur = nil
		case tok == ".names":
			if len(fields) < 2 {
				return nil, fmt.Errorf("blif line %d: .names needs an output", lineNo)
			}
			cur = &decl{
				inputs: fields[1 : len(fields)-1],
				output: fields[len(fields)-1],
				line:   lineNo,
			}
			decls = append(decls, cur)
		case tok == ".end":
			sawEnd = true
			cur = nil
		case tok == ".latch":
			// Forms: .latch D Q [init] | .latch D Q <type> <control> [init]
			args := fields[1:]
			ld := latchDecl{line: lineNo, init: '3'}
			switch len(args) {
			case 2:
				ld.d, ld.q = args[0], args[1]
			case 3:
				ld.d, ld.q = args[0], args[1]
				ld.init = args[2][0]
			case 4:
				ld.d, ld.q = args[0], args[1]
			case 5:
				ld.d, ld.q = args[0], args[1]
				ld.init = args[4][0]
			default:
				return nil, fmt.Errorf("blif line %d: malformed .latch", lineNo)
			}
			if ld.init != '0' && ld.init != '1' && ld.init != '2' && ld.init != '3' {
				return nil, fmt.Errorf("blif line %d: bad latch init %q", lineNo, ld.init)
			}
			latches = append(latches, ld)
			cur = nil
		case tok == ".subckt" || tok == ".gate" || tok == ".mlatch":
			return nil, fmt.Errorf("blif line %d: %s is not supported", lineNo, tok)
		case strings.HasPrefix(tok, "."):
			// Unknown dot-directives (.default_input_arrival etc.) are
			// ignored, matching common tool behaviour.
			cur = nil
		default:
			// A cube row of the current .names table.
			if cur == nil {
				return nil, fmt.Errorf("blif line %d: cube row outside .names", lineNo)
			}
			var inPlane, outPlane string
			if len(cur.inputs) == 0 {
				if len(fields) != 1 || len(fields[0]) != 1 {
					return nil, fmt.Errorf("blif line %d: constant table row must be a single 0/1", lineNo)
				}
				inPlane, outPlane = "", fields[0]
			} else {
				if len(fields) != 2 {
					return nil, fmt.Errorf("blif line %d: cube row must be <input-plane> <output>", lineNo)
				}
				inPlane, outPlane = fields[0], fields[1]
			}
			if len(inPlane) != len(cur.inputs) {
				return nil, fmt.Errorf("blif line %d: %w: cube width %d != %d inputs", lineNo, cerrs.ErrArityMismatch, len(inPlane), len(cur.inputs))
			}
			for _, c := range inPlane {
				if c != '0' && c != '1' && c != '-' {
					return nil, fmt.Errorf("blif line %d: invalid cube character %q", lineNo, c)
				}
			}
			if outPlane != "0" && outPlane != "1" {
				return nil, fmt.Errorf("blif line %d: output plane must be 0 or 1", lineNo)
			}
			if cur.phase == 0 {
				cur.phase = outPlane[0]
			} else if cur.phase != outPlane[0] {
				return nil, fmt.Errorf("blif line %d: mixed on-set and off-set rows in one table", lineNo)
			}
			cur.cubes = append(cur.cubes, inPlane)
		}
	}

	if model == "" {
		model = "blif"
	}
	if len(inputs) == 0 && len(decls) == 0 && len(latches) == 0 {
		return nil, fmt.Errorf("blif: empty model")
	}
	return lower(model, inputs, outputs, decls, latches)
}

// ReadString parses a BLIF model from a string.
func ReadString(s string) (*network.Network, error) { return Read(strings.NewReader(s)) }

// lit is a signal value during lowering: a polarized node or a constant.
type lit struct {
	node    *network.Node
	invert  bool
	isConst bool
	cval    bool
}

func (l lit) not() lit {
	if l.isConst {
		l.cval = !l.cval
		return l
	}
	l.invert = !l.invert
	return l
}

// lower builds the network from parsed declarations, resolving signal
// references in dependency order.
func lower(model string, inputs, outputs []string, decls []*decl, latches []latchDecl) (*network.Network, error) {
	nw := network.New(model)
	byOutput := make(map[string]*decl, len(decls))
	for _, d := range decls {
		if prev, dup := byOutput[d.output]; dup {
			return nil, fmt.Errorf("blif line %d: %w: signal %q already defined at line %d", d.line, cerrs.ErrDuplicateName, d.output, prev.line)
		}
		byOutput[d.output] = d
	}

	vals := make(map[string]lit)
	for _, name := range inputs {
		if _, dup := vals[name]; dup {
			return nil, fmt.Errorf("blif: %w: input %q", cerrs.ErrDuplicateName, name)
		}
		if _, isGate := byOutput[name]; isGate {
			return nil, fmt.Errorf("blif: %w: signal %q is both an input and a .names output", cerrs.ErrDuplicateName, name)
		}
		vals[name] = lit{node: nw.AddInput(name)}
	}
	// Latch outputs are primary inputs of the combinational view.
	for _, ld := range latches {
		if _, dup := vals[ld.q]; dup {
			return nil, fmt.Errorf("blif line %d: latch output %q collides with an input", ld.line, ld.q)
		}
		if _, isGate := byOutput[ld.q]; isGate {
			return nil, fmt.Errorf("blif line %d: latch output %q is also a .names output", ld.line, ld.q)
		}
		vals[ld.q] = lit{node: nw.AddInput(ld.q)}
	}

	gensym := 0
	fresh := func(base string) string {
		for {
			gensym++
			name := fmt.Sprintf("%s$%d", base, gensym)
			if nw.Find(name) == nil {
				return name
			}
		}
	}

	// materialize returns a network node carrying the literal's value
	// with the requested polarity folded in; constants have no node, so
	// callers that need one get a clear error.
	var resolve func(name string, stack map[string]bool) (lit, error)

	// buildGate creates op(fanins) handling constant folding and arity
	// 0/1 degeneracies. identity is the op's neutral element.
	buildGate := func(base string, op network.Op, fanins []lit) lit {
		identity := op == network.OpAnd // AND identity = 1, OR identity = 0
		var real []network.Fanin
		seen := make(map[network.Fanin]bool)
		for _, f := range fanins {
			if f.isConst {
				if f.cval == identity {
					continue // neutral element
				}
				return lit{isConst: true, cval: !identity} // absorbing element
			}
			nf := network.Fanin{Node: f.node, Invert: f.invert}
			if seen[nf] {
				continue
			}
			seen[nf] = true
			real = append(real, nf)
		}
		switch len(real) {
		case 0:
			return lit{isConst: true, cval: identity}
		case 1:
			return lit{node: real[0].Node, invert: real[0].Invert}
		}
		return lit{node: nw.AddGate(fresh(base), op, real...)}
	}

	resolve = func(name string, stack map[string]bool) (lit, error) {
		if v, ok := vals[name]; ok {
			return v, nil
		}
		d, ok := byOutput[name]
		if !ok {
			return lit{}, fmt.Errorf("blif: undefined signal %q", name)
		}
		if stack[name] {
			return lit{}, fmt.Errorf("blif line %d: %w through %q", d.line, cerrs.ErrCycle, name)
		}
		stack[name] = true
		defer delete(stack, name)

		fins := make([]lit, len(d.inputs))
		for i, in := range d.inputs {
			v, err := resolve(in, stack)
			if err != nil {
				return lit{}, err
			}
			fins[i] = v
		}

		var v lit
		switch {
		case len(d.cubes) == 0:
			// Empty cover: constant 0.
			v = lit{isConst: true, cval: false}
		default:
			cubeLits := make([]lit, 0, len(d.cubes))
			for _, cube := range d.cubes {
				var terms []lit
				for i, c := range cube {
					switch c {
					case '1':
						terms = append(terms, fins[i])
					case '0':
						terms = append(terms, fins[i].not())
					}
				}
				cubeLits = append(cubeLits, buildGate(d.output, network.OpAnd, terms))
			}
			v = buildGate(d.output, network.OpOr, cubeLits)
		}
		if d.phase == '0' {
			v = v.not()
		}
		vals[name] = v
		return v, nil
	}

	if len(outputs) == 0 && len(latches) == 0 {
		return nil, fmt.Errorf("blif: model %q declares no outputs", model)
	}
	for _, out := range outputs {
		v, err := resolve(out, map[string]bool{})
		if err != nil {
			return nil, err
		}
		if v.isConst {
			return nil, fmt.Errorf("blif: output %q is the constant %v; constant outputs cannot be mapped to logic", out, v.cval)
		}
		nw.MarkOutput(out, v.node, v.invert)
	}
	for _, ld := range latches {
		v, err := resolve(ld.d, map[string]bool{})
		if err != nil {
			return nil, err
		}
		if v.isConst {
			return nil, fmt.Errorf("blif line %d: latch %q data input is the constant %v", ld.line, ld.q, v.cval)
		}
		nw.AddLatch(ld.q, v.node, v.invert, ld.init)
	}
	nw.Sweep()
	return nw, nil
}

// Write emits the network as BLIF. Gates become on-set .names tables
// (an AND is one cube; an OR is one single-literal cube per fanin);
// inverted outputs get an explicit inverter table so the emitted model
// is self-contained.
func Write(w io.Writer, nw *network.Network) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", nw.Name)

	// Latch outputs are inputs of the combinational view but are driven
	// by .latch lines in the file, not by .inputs.
	latchQ := make(map[string]bool, len(nw.Latches))
	for _, l := range nw.Latches {
		latchQ[l.Q] = true
	}
	fmt.Fprint(bw, ".inputs")
	for _, in := range nw.Inputs {
		if latchQ[in.Name] {
			continue
		}
		fmt.Fprintf(bw, " %s", in.Name)
	}
	fmt.Fprintln(bw)

	outs := nw.SortedOutputs()
	fmt.Fprint(bw, ".outputs")
	for _, o := range outs {
		fmt.Fprintf(bw, " %s", o.Name)
	}
	fmt.Fprintln(bw)

	order, err := nw.TopoSort()
	if err != nil {
		return err
	}
	// Internal gate names may collide with declared output names (e.g.
	// an inverted output whose driver shares its name would otherwise
	// emit a self-referential table). Gates whose name clashes with an
	// output or input name are emitted under a mangled alias, and every
	// output gets an explicit buffer/inverter table unless it is a
	// direct non-inverted reference that already carries the right name.
	reserved := make(map[string]bool, len(nw.Inputs)+len(outs))
	for _, in := range nw.Inputs {
		reserved[in.Name] = true
	}
	for _, o := range outs {
		reserved[o.Name] = true
	}
	emitName := make(map[*network.Node]string, len(nw.Nodes))
	for _, in := range nw.Inputs {
		emitName[in] = in.Name
	}
	for _, n := range order {
		if n.IsInput() {
			continue
		}
		name := n.Name
		for reserved[name] {
			name += "$int"
		}
		reserved[name] = true
		emitName[n] = name
	}
	for _, n := range order {
		if n.IsInput() {
			continue
		}
		fmt.Fprint(bw, ".names")
		for _, f := range n.Fanins {
			fmt.Fprintf(bw, " %s", emitName[f.Node])
		}
		fmt.Fprintf(bw, " %s\n", emitName[n])
		switch n.Op {
		case network.OpAnd:
			for _, f := range n.Fanins {
				if f.Invert {
					fmt.Fprint(bw, "0")
				} else {
					fmt.Fprint(bw, "1")
				}
			}
			fmt.Fprintln(bw, " 1")
		case network.OpOr:
			for i, f := range n.Fanins {
				for j := range n.Fanins {
					switch {
					case j != i:
						fmt.Fprint(bw, "-")
					case f.Invert:
						fmt.Fprint(bw, "0")
					default:
						fmt.Fprint(bw, "1")
					}
				}
				fmt.Fprintln(bw, " 1")
			}
		}
	}
	for _, o := range outs {
		if emitName[o.Node] == o.Name && !o.Invert {
			continue // the signal already carries the output name
		}
		fmt.Fprintf(bw, ".names %s %s\n", emitName[o.Node], o.Name)
		if o.Invert {
			fmt.Fprintln(bw, "0 1")
		} else {
			fmt.Fprintln(bw, "1 1")
		}
	}
	for _, l := range nw.Latches {
		dname := emitName[l.D]
		if l.DInv {
			inv := l.Q + "$D"
			for reserved[inv] {
				inv += "$"
			}
			reserved[inv] = true
			fmt.Fprintf(bw, ".names %s %s\n0 1\n", dname, inv)
			dname = inv
		}
		fmt.Fprintf(bw, ".latch %s %s %c\n", dname, l.Q, l.Init)
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// WriteString renders the network as a BLIF string.
func WriteString(nw *network.Network) (string, error) {
	var sb strings.Builder
	if err := Write(&sb, nw); err != nil {
		return "", err
	}
	return sb.String(), nil
}
