package blif

import (
	"strings"
	"testing"
)

// FuzzRead drives the parser with mangled inputs; any input may be
// rejected with an error but must never panic, and anything accepted
// must produce a network that validates and re-emits.
func FuzzRead(f *testing.F) {
	seeds := []string{
		sampleBLIF,
		sequentialBLIF,
		"",
		".model x\n",
		".model x\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n",
		".inputs a b\n.outputs y\n.names a b y\n-1 1\n1- 1\n",
		".model \\\n x\n.inputs a\n.outputs a\n.end",
		".latch d q 0\n.names q d\n0 1\n.outputs q\n... garbage",
		".model m\n.inputs a\n.outputs y\n.names a y\n0 0\n.end",
		strings.Repeat(".names a b c\n111 1\n", 10),
		".model m\n.inputs a\n.outputs y\n.names a y\n\x00 1\n.end",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		nw, err := ReadString(src)
		if err != nil {
			return
		}
		if err := nw.Validate(); err != nil {
			t.Fatalf("accepted network fails validation: %v\ninput:\n%s", err, src)
		}
		if _, err := WriteString(nw); err != nil {
			t.Fatalf("accepted network fails to write: %v", err)
		}
	})
}
