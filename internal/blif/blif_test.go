package blif

import (
	"math/rand"
	"testing"

	"chortle/internal/network"
)

const sampleBLIF = `
# a small two-output model
.model sample
.inputs a b c d e
.outputs y z
.names a b t1
11 1
.names c d t2
0- 1
-1 1
.names t1 t2 y
1- 1
-1 1
.names t2 e z
11 0
.end
`

func TestReadSample(t *testing.T) {
	nw, err := ReadString(sampleBLIF)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if nw.Name != "sample" {
		t.Fatalf("model name = %q", nw.Name)
	}
	if len(nw.Inputs) != 5 || len(nw.Outputs) != 2 {
		t.Fatalf("IO = %d/%d", len(nw.Inputs), len(nw.Outputs))
	}
	// Functional check: y = ab + (!c + d), z = !((!c+d) & e).
	assign := exhaustive(nw)
	got, err := nw.Simulate(assign)
	if err != nil {
		t.Fatal(err)
	}
	for m := uint(0); m < 32; m++ {
		a, b := bit(m, 0), bit(m, 1)
		c, d, e := bit(m, 2), bit(m, 3), bit(m, 4)
		t2 := !c || d
		wantY := (a && b) || t2
		wantZ := !(t2 && e)
		if bit(uint(got["y"]), int(m)) != wantY {
			t.Fatalf("y wrong at %05b", m)
		}
		if bit(uint(got["z"]), int(m)) != wantZ {
			t.Fatalf("z wrong at %05b", m)
		}
	}
}

func bit(w uint, i int) bool { return w>>uint(i)&1 == 1 }

// exhaustive assigns the first PIs their exhaustive 2^n pattern columns
// (n = number of inputs, must be <= 6 for a single word).
func exhaustive(nw *network.Network) map[string]uint64 {
	assign := map[string]uint64{}
	n := len(nw.Inputs)
	for i, in := range nw.Inputs {
		var w uint64
		for m := uint(0); m < 1<<uint(n); m++ {
			if m>>uint(i)&1 == 1 {
				w |= 1 << m
			}
		}
		assign[in.Name] = w
	}
	return assign
}

func TestRoundTrip(t *testing.T) {
	nw, err := ReadString(sampleBLIF)
	if err != nil {
		t.Fatal(err)
	}
	text, err := WriteString(nw)
	if err != nil {
		t.Fatal(err)
	}
	nw2, err := ReadString(text)
	if err != nil {
		t.Fatalf("re-read failed: %v\n%s", err, text)
	}
	assign := exhaustive(nw)
	got1, _ := nw.Simulate(assign)
	got2, _ := nw2.Simulate(assign)
	mask := uint64(1)<<32 - 1
	for _, o := range nw.Outputs {
		if got1[o.Name]&mask != got2[o.Name]&mask {
			t.Fatalf("output %q differs after round trip\n%s", o.Name, text)
		}
	}
}

func TestContinuationAndComments(t *testing.T) {
	src := `.model m # trailing comment
.inputs a b \
c
.outputs y
.names a b c y  # three-input AND
111 1
.end`
	nw, err := ReadString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Inputs) != 3 {
		t.Fatalf("continuation lost inputs: %d", len(nw.Inputs))
	}
	got, _ := nw.Simulate(map[string]uint64{"a": ^uint64(0), "b": ^uint64(0), "c": 1})
	if got["y"] != 1 {
		t.Fatalf("y = %x", got["y"])
	}
}

func TestOffsetCover(t *testing.T) {
	// y defined by its off-set: y=0 iff a=1,b=1  =>  y = NAND(a,b).
	src := `.model m
.inputs a b
.outputs y
.names a b y
11 0
.end`
	nw, err := ReadString(src)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := nw.Simulate(exhaustive(nw))
	if got["y"]&0xF != 0b0111 {
		t.Fatalf("NAND truth = %04b", got["y"]&0xF)
	}
}

func TestConstantFolding(t *testing.T) {
	// t is constant 1; y = AND(t, a) must fold to y = a.
	src := `.model m
.inputs a
.outputs y
.names t
1
.names t a y
11 1
.end`
	nw, err := ReadString(src)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := nw.Simulate(map[string]uint64{"a": 0b10})
	if got["y"]&0b11 != 0b10 {
		t.Fatalf("y = %b, want a", got["y"]&0b11)
	}
	if s := nw.Stats(); s.Gates != 0 {
		t.Fatalf("constant not folded, %d gates remain", s.Gates)
	}
}

func TestConstantOutputRejected(t *testing.T) {
	src := `.model m
.inputs a
.outputs y
.names y
1
.end`
	if _, err := ReadString(src); err == nil {
		t.Fatal("constant output accepted")
	}
}

func TestErrorCases(t *testing.T) {
	cases := map[string]string{
		"badlatch":     ".model m\n.inputs a\n.outputs y\n.latch a\n.end",
		"latchinit":    ".model m\n.inputs a\n.outputs y\n.latch a q 7\n.names q y\n1 1\n.end",
		"latchclash":   ".model m\n.inputs a q\n.outputs y\n.latch a q 0\n.names q y\n1 1\n.end",
		"latchgate":    ".model m\n.inputs a\n.outputs q\n.names a q\n1 1\n.latch a q 0\n.end",
		"subckt":       ".model m\n.inputs a\n.outputs y\n.subckt foo a=a y=y\n.end",
		"cycle":        ".model m\n.inputs a\n.outputs y\n.names y a t\n11 1\n.names t y\n1 1\n.end",
		"undefined":    ".model m\n.inputs a\n.outputs y\n.names a q y\n11 1\n.end",
		"badcube":      ".model m\n.inputs a\n.outputs y\n.names a y\n2 1\n.end",
		"widthcube":    ".model m\n.inputs a\n.outputs y\n.names a y\n11 1\n.end",
		"mixedphase":   ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end",
		"strayrow":     ".model m\n.inputs a\n.outputs y\n11 1\n.end",
		"afterend":     ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n.names a z\n1 1",
		"redefinition": ".model m\n.inputs a b\n.outputs y\n.names a y\n1 1\n.names b y\n1 1\n.end",
		"noout":        ".model m\n.inputs a b\n.names a b t\n11 1\n.end",
		"inputgate":    ".model m\n.inputs a\n.outputs y\n.names a\n1\n.names a y\n1 1\n.end",
	}
	for name, src := range cases {
		if _, err := ReadString(src); err == nil {
			t.Errorf("case %q: error expected, got none", name)
		}
	}
}

func TestWriteNamesCollision(t *testing.T) {
	// An inverted output whose driving gate has the output's own name
	// must not produce a self-referential table.
	nw := network.New("m")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	g := nw.AddGate("y", network.OpAnd, network.Fanin{Node: a}, network.Fanin{Node: b})
	nw.MarkOutput("y", g, true)
	text, err := WriteString(nw)
	if err != nil {
		t.Fatal(err)
	}
	nw2, err := ReadString(text)
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, text)
	}
	got, _ := nw2.Simulate(map[string]uint64{"a": 0b1010, "b": 0b1100})
	if got["y"]&0xF != 0b0111 {
		t.Fatalf("collision handling broke function: y=%04b\n%s", got["y"]&0xF, text)
	}
}

func TestRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		nw := randomNetwork(rng, trial)
		text, err := WriteString(nw)
		if err != nil {
			t.Fatal(err)
		}
		nw2, err := ReadString(text)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, text)
		}
		assign := map[string]uint64{}
		for _, in := range nw.Inputs {
			assign[in.Name] = rng.Uint64()
		}
		got1, err := nw.Simulate(assign)
		if err != nil {
			t.Fatal(err)
		}
		got2, err := nw2.Simulate(assign)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range nw.Outputs {
			if got1[o.Name] != got2[o.Name] {
				t.Fatalf("trial %d: output %q differs\n%s", trial, o.Name, text)
			}
		}
	}
}

func randomNetwork(rng *rand.Rand, id int) *network.Network {
	nw := network.New("rand")
	var pool []*network.Node
	nIn := 2 + rng.Intn(5)
	for i := 0; i < nIn; i++ {
		pool = append(pool, nw.AddInput("in"+string(rune('a'+i))))
	}
	nGates := 3 + rng.Intn(12)
	for i := 0; i < nGates; i++ {
		op := network.OpAnd
		if rng.Intn(2) == 1 {
			op = network.OpOr
		}
		k := 2 + rng.Intn(3)
		fins := make([]network.Fanin, 0, k)
		for j := 0; j < k; j++ {
			fins = append(fins, network.Fanin{Node: pool[rng.Intn(len(pool))], Invert: rng.Intn(2) == 1})
		}
		pool = append(pool, nw.AddGate("g"+string(rune('0'+i%10))+string(rune('a'+i/10)), op, fins...))
	}
	nw.MarkOutput("out0", pool[len(pool)-1], rng.Intn(2) == 1)
	nw.MarkOutput("out1", pool[len(pool)-2], rng.Intn(2) == 1)
	nw.Sweep()
	return nw
}

// sequentialBLIF is a 2-bit counter with enable: a small FSM exercising
// .latch support end to end.
const sequentialBLIF = `
.model counter2
.inputs en
.outputs q0out q1out
.latch d0 q0 re clk 0
.latch d1 q1 0
.names en q0 d0
10 1
01 1
.names en q0 carry
11 1
.names carry q1 d1
10 1
01 1
.names q0 q0out
1 1
.names q1 q1out
1 1
.end`

func TestSequentialRead(t *testing.T) {
	nw, err := ReadString(sequentialBLIF)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(nw.Latches) != 2 {
		t.Fatalf("latches = %d, want 2", len(nw.Latches))
	}
	if len(nw.Inputs) != 3 {
		t.Fatalf("combinational inputs = %d, want 3 (en, q0, q1)", len(nw.Inputs))
	}
	if nw.Latches[0].Init != '0' || nw.Latches[1].Init != '0' {
		t.Fatalf("latch init values lost: %+v", nw.Latches)
	}
	// Next-state function: d0 = en XOR q0; d1 = q1 XOR (en AND q0).
	got, err := nw.Simulate(map[string]uint64{"en": 0b1010, "q0": 0b1100, "q1": 0b1111})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint(0); i < 4; i++ {
		en, q0, q1 := 0b1010>>i&1 == 1, 0b1100>>i&1 == 1, true
		wantD0 := en != q0
		wantD1 := q1 != (en && q0)
		if got["$latch$q0"]>>i&1 == 1 != wantD0 {
			t.Fatalf("d0 wrong at pattern %d", i)
		}
		if got["$latch$q1"]>>i&1 == 1 != wantD1 {
			t.Fatalf("d1 wrong at pattern %d", i)
		}
	}
}

func TestSequentialRoundTrip(t *testing.T) {
	nw, err := ReadString(sequentialBLIF)
	if err != nil {
		t.Fatal(err)
	}
	text, err := WriteString(nw)
	if err != nil {
		t.Fatal(err)
	}
	nw2, err := ReadString(text)
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, text)
	}
	if len(nw2.Latches) != 2 {
		t.Fatalf("latches lost in round trip:\n%s", text)
	}
	assign := map[string]uint64{"en": 0xF0F0, "q0": 0xFF00, "q1": 0xAAAA}
	a, _ := nw.Simulate(assign)
	b, _ := nw2.Simulate(assign)
	for _, key := range []string{"q0out", "q1out", "$latch$q0", "$latch$q1"} {
		if a[key] != b[key] {
			t.Fatalf("%s differs after round trip\n%s", key, text)
		}
	}
}
