package forest

import (
	"math/rand"
	"testing"

	"chortle/internal/network"
)

// figure3 builds a DAG in the spirit of the paper's Figure 3: a node n
// with out-degree two whose edges must be cut, yielding a forest.
func figure3() *network.Network {
	nw := network.New("figure3")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	c := nw.AddInput("c")
	d := nw.AddInput("d")
	n := nw.AddGate("n", network.OpAnd, network.Fanin{Node: a}, network.Fanin{Node: b})
	g1 := nw.AddGate("g1", network.OpOr, network.Fanin{Node: n}, network.Fanin{Node: c})
	g2 := nw.AddGate("g2", network.OpAnd, network.Fanin{Node: n}, network.Fanin{Node: d})
	nw.MarkOutput("x", g1, false)
	nw.MarkOutput("y", g2, false)
	return nw
}

func TestDecomposeFigure3(t *testing.T) {
	nw := figure3()
	f, err := Decompose(nw)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Roots) != 3 {
		t.Fatalf("roots = %d, want 3 (n, g1, g2)", len(f.Roots))
	}
	n := nw.Find("n")
	if !f.IsRoot(n) {
		t.Fatal("multi-fanout node n must be a tree root")
	}
	if !f.IsLeafEdge(n) || !f.IsLeafEdge(nw.Find("a")) {
		t.Fatal("roots and inputs must be leaf edges")
	}
	if f.IsLeafEdge(nw.Find("g1")) != true {
		t.Fatal("output drivers are roots, hence leaf edges elsewhere")
	}
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
	// n's tree must come before its consumers in Roots.
	pos := map[string]int{}
	for i, r := range f.Roots {
		pos[r.Name] = i
	}
	if pos["n"] > pos["g1"] || pos["n"] > pos["g2"] {
		t.Fatalf("root order not topological: %v", pos)
	}
}

func TestTreeNodesAndLeaves(t *testing.T) {
	nw := network.New("chain")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	c := nw.AddInput("c")
	g1 := nw.AddGate("g1", network.OpAnd, network.Fanin{Node: a}, network.Fanin{Node: b})
	g2 := nw.AddGate("g2", network.OpOr, network.Fanin{Node: g1}, network.Fanin{Node: c})
	nw.MarkOutput("y", g2, false)
	f, err := Decompose(nw)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Roots) != 1 || f.Roots[0] != g2 {
		t.Fatalf("expected single tree rooted at g2")
	}
	nodes := f.TreeNodes(g2)
	if len(nodes) != 2 || nodes[0] != g1 || nodes[1] != g2 {
		t.Fatalf("postorder wrong: %v", nodes)
	}
	leaves := f.TreeLeaves(g2)
	if len(leaves) != 3 {
		t.Fatalf("leaves = %d, want 3", len(leaves))
	}
}

func TestLeafEdgeMultiplicity(t *testing.T) {
	// A multi-fanout node feeding one tree through two different tree
	// nodes must appear once per edge in TreeLeaves, matching the
	// paper's per-edge duplication.
	nw := network.New("mult")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	c := nw.AddInput("c")
	x := nw.AddGate("x", network.OpAnd, network.Fanin{Node: a}, network.Fanin{Node: b})
	g1 := nw.AddGate("g1", network.OpOr, network.Fanin{Node: x}, network.Fanin{Node: c})
	g2 := nw.AddGate("g2", network.OpAnd, network.Fanin{Node: g1}, network.Fanin{Node: x, Invert: true})
	nw.MarkOutput("y", g2, false)
	f, err := Decompose(nw)
	if err != nil {
		t.Fatal(err)
	}
	leaves := f.TreeLeaves(g2)
	count := 0
	for _, l := range leaves {
		if l == x {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("x appears %d times as leaf, want 2", count)
	}
}

func TestEveryGateInExactlyOneTree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		nw := randomDAG(rng)
		f, err := Decompose(nw)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Check(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func randomDAG(rng *rand.Rand) *network.Network {
	nw := network.New("rand")
	var pool []*network.Node
	for i := 0; i < 4; i++ {
		pool = append(pool, nw.AddInput("in"+string(rune('a'+i))))
	}
	nGates := 5 + rng.Intn(20)
	for i := 0; i < nGates; i++ {
		op := network.OpAnd
		if rng.Intn(2) == 1 {
			op = network.OpOr
		}
		k := 2 + rng.Intn(3)
		seen := map[*network.Node]bool{}
		var fins []network.Fanin
		for len(fins) < k {
			n := pool[rng.Intn(len(pool))]
			if seen[n] {
				continue
			}
			seen[n] = true
			fins = append(fins, network.Fanin{Node: n, Invert: rng.Intn(2) == 1})
		}
		pool = append(pool, nw.AddGate("g"+string(rune('0'+i/10))+string(rune('0'+i%10)), op, fins...))
	}
	nw.MarkOutput("y", pool[len(pool)-1], false)
	nw.MarkOutput("z", pool[len(pool)-2], true)
	nw.Sweep()
	return nw
}
