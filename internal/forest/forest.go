// Package forest implements the first step of the Chortle algorithm
// (Section 3, Figure 3): converting a Boolean network DAG into a forest
// of maximal fanout-free trees. Every node with out-degree greater than
// one — and every node driving a primary output — becomes the root of
// its own tree; consumers see such nodes as leaves, exactly as if each
// outgoing edge originated from a duplicated node as in the paper's
// construction. Trees are then mapped independently and the resulting
// circuits stitched back together at the shared (root) signals.
package forest

import (
	"fmt"

	"chortle/internal/network"
)

// Forest is the tree decomposition of a network.
type Forest struct {
	Net *network.Network
	// Roots lists the tree roots in topological order (a tree's leaf
	// trees come first), so mappers can realize shared signals before
	// their consumers.
	Roots []*network.Node

	rootSet map[*network.Node]bool
}

// Decompose splits the network into maximal fanout-free trees.
// The network must be valid (acyclic, swept).
func Decompose(nw *network.Network) (*Forest, error) {
	order, err := nw.TopoSort()
	if err != nil {
		return nil, err
	}
	nw.Reindex()
	counts := nw.FanoutCounts()

	f := &Forest{Net: nw, rootSet: make(map[*network.Node]bool)}
	isRoot := func(n *network.Node) bool {
		if n.IsInput() {
			return false
		}
		return counts[n.ID] != 1 || drivesOutput(nw, n)
	}
	for _, n := range order {
		if isRoot(n) {
			f.rootSet[n] = true
			f.Roots = append(f.Roots, n)
		}
	}
	if len(f.Roots) == 0 {
		return nil, fmt.Errorf("forest: network %q has no gate outputs to map", nw.Name)
	}
	return f, nil
}

func drivesOutput(nw *network.Network, n *network.Node) bool {
	for _, o := range nw.Outputs {
		if o.Node == n {
			return true
		}
	}
	for _, l := range nw.Latches {
		if l.D == n {
			return true
		}
	}
	return false
}

// IsRoot reports whether the node roots a tree.
func (f *Forest) IsRoot(n *network.Node) bool { return f.rootSet[n] }

// IsLeafEdge reports whether, inside some tree, a fanin reference to n
// terminates the tree: n is a primary input or the root of another tree.
func (f *Forest) IsLeafEdge(n *network.Node) bool {
	return n.IsInput() || f.rootSet[n]
}

// TreeNodes returns the gate nodes of the tree rooted at root, in
// postorder (fanins before the root). Leaf edges are not included.
func (f *Forest) TreeNodes(root *network.Node) []*network.Node {
	var out []*network.Node
	var walk func(n *network.Node)
	walk = func(n *network.Node) {
		for _, fin := range n.Fanins {
			if !f.IsLeafEdge(fin.Node) {
				walk(fin.Node)
			}
		}
		out = append(out, n)
	}
	walk(root)
	return out
}

// TreeLeaves returns the leaf nodes referenced by the tree rooted at
// root, one entry per leaf edge (a multi-fanout node feeding the tree
// twice appears twice, matching the paper's per-edge duplication).
func (f *Forest) TreeLeaves(root *network.Node) []*network.Node {
	var out []*network.Node
	var walk func(n *network.Node)
	walk = func(n *network.Node) {
		for _, fin := range n.Fanins {
			if f.IsLeafEdge(fin.Node) {
				out = append(out, fin.Node)
			} else {
				walk(fin.Node)
			}
		}
	}
	walk(root)
	return out
}

// Check verifies the decomposition invariants: every gate belongs to
// exactly one tree, and every tree edge appears in exactly one tree.
func (f *Forest) Check() error {
	seen := make(map[*network.Node]int)
	for _, r := range f.Roots {
		for _, n := range f.TreeNodes(r) {
			seen[n]++
		}
	}
	for _, n := range f.Net.Nodes {
		if n.IsInput() {
			continue
		}
		if seen[n] != 1 {
			return fmt.Errorf("forest: gate %q appears in %d trees, want 1", n.Name, seen[n])
		}
	}
	return nil
}
