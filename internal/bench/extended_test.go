package bench

import (
	"math/bits"
	"testing"

	"chortle/internal/verify"
)

func TestRdCircuits(t *testing.T) {
	for _, n := range []int{5, 7, 8} {
		nw := Rd(n)
		if err := nw.Validate(); err != nil {
			t.Fatalf("rd%d: %v", n, err)
		}
		wantBits := bits.Len(uint(n))
		if len(nw.Inputs) != n || len(nw.Outputs) != wantBits {
			t.Fatalf("rd%d IO = %d/%d, want %d/%d", n, len(nw.Inputs), len(nw.Outputs), n, wantBits)
		}
		// Exhaustive functional check through simulation.
		for base := uint64(0); base < 1<<uint(n); base += 64 {
			assign := map[string]uint64{}
			for i := 0; i < n; i++ {
				var w uint64
				for j := uint64(0); j < 64 && base+j < 1<<uint(n); j++ {
					if (base+j)>>uint(i)&1 == 1 {
						w |= 1 << j
					}
				}
				assign[nw.Inputs[i].Name] = w
			}
			got, err := nw.Simulate(assign)
			if err != nil {
				t.Fatal(err)
			}
			for j := uint64(0); j < 64 && base+j < 1<<uint(n); j++ {
				ones := bits.OnesCount64(base + j)
				for b := 0; b < wantBits; b++ {
					want := ones>>uint(b)&1 == 1
					key := "s" + string(rune('0'+b))
					if got[key]>>j&1 == 1 != want {
						t.Fatalf("rd%d s%d wrong at minterm %d", n, b, base+j)
					}
				}
			}
		}
	}
}

func TestXor5AndParity(t *testing.T) {
	x := Xor5()
	got, err := x.Simulate(map[string]uint64{"a": 0xAAAA, "b": 0xCCCC, "c": 0xF0F0, "d": 0xFF00, "e": 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint(0); i < 16; i++ {
		ones := bits.OnesCount(uint(i))
		if got["y"]>>i&1 == 1 != (ones%2 == 1) {
			t.Fatalf("xor5 wrong at %04b", i)
		}
	}
	p := Parity()
	if len(p.Inputs) != 16 {
		t.Fatalf("parity inputs = %d", len(p.Inputs))
	}
	assign := map[string]uint64{}
	for i := 0; i < 16; i++ {
		assign[p.Inputs[i].Name] = 0
	}
	assign["x3"] = ^uint64(0)
	assign["x9"] = ^uint64(0)
	pg, err := p.Simulate(assign)
	if err != nil {
		t.Fatal(err)
	}
	if pg["y"] != 0 {
		t.Fatal("parity of two ones should be 0")
	}
	assign["x15"] = ^uint64(0)
	pg, _ = p.Simulate(assign)
	if pg["y"] != ^uint64(0) {
		t.Fatal("parity of three ones should be 1")
	}
}

func TestZ4mlAndMajority(t *testing.T) {
	z := Z4ml()
	if len(z.Inputs) != 7 || len(z.Outputs) != 4 {
		t.Fatalf("z4ml IO = %d/%d", len(z.Inputs), len(z.Outputs))
	}
	m := Majority()
	got, err := m.Simulate(map[string]uint64{"a": 0b0111, "b": 0b0101, "c": 0b0011, "d": 0b1001, "e": 0b1000})
	if err != nil {
		t.Fatal(err)
	}
	// pattern 0: a,b,c... bits: a=1,b=1,c=1,d=1,e=0 -> maj 1; etc.
	want := []bool{true, true, true, true}
	for i, w := range want[:3] {
		ones := 0
		for _, v := range []uint64{0b0111, 0b0101, 0b0011, 0b1001, 0b1000} {
			if v>>uint(i)&1 == 1 {
				ones++
			}
		}
		if (got["y"]>>uint(i)&1 == 1) != (ones >= 3) {
			t.Fatalf("majority wrong at pattern %d (%v)", i, w)
		}
	}
}

func TestExtendedSuiteMapsAndVerifies(t *testing.T) {
	for _, c := range ExtendedSuite() {
		nw := c.Build()
		if err := nw.Validate(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		optd, err := Optimized(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if err := verify.NetworkVsNetwork(nw, optd, 16, 3); err != nil {
			t.Fatalf("%s: optimization broke function: %v", c.Name, err)
		}
	}
}
