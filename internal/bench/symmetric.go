// Package bench builds the benchmark suite of the paper's Section 4.2:
// the twelve MCNC-89 logic synthesis circuits Chortle and MIS II were
// compared on. The original netlist files are not distributable here,
// so each circuit is reconstructed (see DESIGN.md §4 for the policy):
//
//   - circuits with publicly known functionality are rebuilt from
//     scratch behaviourally — 9symml (9-input symmetric), alu2/alu4
//     (74181-style 2-/4-bit ALUs, matching the originals' input
//     counts), count (loadable 16-bit incrementer, 35 inputs), rot
//     (32-bit barrel rotator);
//   - circuits whose structure is not public (des, apex6, apex7, frg1,
//     frg2, k2, pair) are seeded pseudo-random multi-level networks
//     with the published primary input/output counts and comparable
//     gate counts.
//
// All circuits are emitted as raw AND/OR networks; the harness then runs
// the mini-MIS standard script (internal/opt), mirroring the paper's
// "input networks for both mappers were optimized by the standard MIS II
// script".
package bench

import (
	"fmt"

	"chortle/internal/network"
)

// lit is a polarized signal reference used by the builders.
type lit = network.Fanin

func pos(n *network.Node) lit { return lit{Node: n} }
func neg(n *network.Node) lit { return lit{Node: n, Invert: true} }

func flip(l lit) lit { l.Invert = !l.Invert; return l }

// builder wraps a network with gate-name generation and literal-level
// AND/OR/XOR constructors.
type builder struct {
	nw  *network.Network
	seq int
}

func newBuilder(name string) *builder {
	return &builder{nw: network.New(name)}
}

func (b *builder) input(name string) lit { return pos(b.nw.AddInput(name)) }

func (b *builder) gate(op network.Op, fins ...lit) lit {
	if len(fins) == 1 {
		return fins[0] // degenerate gate: just the literal
	}
	b.seq++
	return pos(b.nw.AddGate(fmt.Sprintf("n%d", b.seq), op, fins...))
}

func (b *builder) and(fins ...lit) lit { return b.gate(network.OpAnd, fins...) }
func (b *builder) or(fins ...lit) lit  { return b.gate(network.OpOr, fins...) }

// xor builds x XOR y as (x·y') + (x'·y) — the reconvergent structure the
// paper notes Chortle cannot merge but a library mapper can.
func (b *builder) xor(x, y lit) lit {
	return b.or(b.and(x, flip(y)), b.and(flip(x), y))
}

// mux builds s ? t : e.
func (b *builder) mux(s, t, e lit) lit {
	return b.or(b.and(s, t), b.and(flip(s), e))
}

func (b *builder) output(name string, l lit) {
	b.nw.MarkOutput(name, l.Node, l.Invert)
}

func (b *builder) done() *network.Network {
	b.nw.Sweep()
	return b.nw
}

// NineSymmlNetlist is a gate-level alternative construction of the
// 9symml function (the suite uses the PLA-derived NineSymml): the
// classic exact-count dynamic programming network e[i][j] = "exactly j
// of the first i inputs are one", a fanout-rich multi-level structure
// useful for exercising the mappers on shared logic.
func NineSymmlNetlist() *network.Network {
	b := newBuilder("9symml")
	const n = 9
	xs := make([]lit, n)
	for i := range xs {
		xs[i] = b.input(fmt.Sprintf("x%d", i))
	}
	// e[j] after processing i inputs; valid j in 0..i. Base i=1.
	e := map[int]lit{0: flip(xs[0]), 1: xs[0]}
	for i := 2; i <= n; i++ {
		x := xs[i-1]
		ne := map[int]lit{}
		for j := 0; j <= i; j++ {
			stay, hasStay := e[j]
			up, hasUp := e[j-1]
			switch {
			case hasStay && hasUp:
				ne[j] = b.or(b.and(stay, flip(x)), b.and(up, x))
			case hasStay:
				ne[j] = b.and(stay, flip(x))
			case hasUp:
				ne[j] = b.and(up, x)
			}
		}
		e = ne
	}
	b.output("out", b.or(e[3], e[4], e[5], e[6]))
	return b.done()
}
