package bench

import (
	"fmt"
	"math/rand"

	"chortle/internal/network"
)

// Synthetic stand-ins for the MCNC circuits whose netlists are not
// publicly reconstructible (des, apex6, apex7, frg1, frg2, k2, pair).
// Each is a seeded pseudo-random multi-level network with the published
// primary input/output counts and a gate budget comparable to the
// original's size class. The mapper-vs-mapper comparison depends on
// structural statistics (tree sizes, fanin distribution, fanout
// sharing), which the generator models: mostly 2-4 input gates with an
// occasional wide gate, geometric depth, and reuse-heavy wiring.

// SyntheticSpec parameterizes one synthetic circuit.
type SyntheticSpec struct {
	Name    string
	Inputs  int
	Outputs int
	Gates   int
	Seed    int64
}

// Synthetic generates the circuit for a spec, deterministically.
//
// Deep random AND/OR logic saturates: signal probabilities drift toward
// 0 or 1 and outputs become constant, which no real benchmark exhibits.
// The generator therefore tracks an estimated truth probability per
// signal and picks input polarities that keep every gate's output
// probability in a healthy band — ANDs consume high-probability
// literals, ORs low-probability ones.
func Synthetic(spec SyntheticSpec) *network.Network {
	rng := rand.New(rand.NewSource(spec.Seed))
	nw := network.New(spec.Name)
	var pool []*network.Node
	prob := map[*network.Node]float64{}
	for i := 0; i < spec.Inputs; i++ {
		in := nw.AddInput(fmt.Sprintf("i%d", i))
		pool = append(pool, in)
		prob[in] = 0.5
	}
	pool = growRandomLogic(nw, rng, pool, prob, spec.Gates, "g")
	usable := varyingGates(rng, pool, spec.Inputs)
	if len(usable) == 0 {
		panic(fmt.Sprintf("bench: synthetic %s produced no varying gates", spec.Name))
	}
	for o := 0; o < spec.Outputs; o++ {
		n := usable[o%len(usable)]
		nw.MarkOutput(fmt.Sprintf("o%d", o), n, rng.Intn(5) == 0)
	}
	nw.Sweep()
	return nw
}

// growRandomLogic appends nGates probability-balanced random gates over
// (and beyond) the given signal pool, returning the extended pool.
// prob carries each existing signal's estimated truth probability
// (inputs default to 0.5 if absent).
func growRandomLogic(nw *network.Network, rng *rand.Rand, pool []*network.Node,
	prob map[*network.Node]float64, nGates int, prefix string) []*network.Node {
	// Favour recent signals slightly so the network gains depth, while
	// keeping enough reuse for realistic fanout.
	pick := func() *network.Node {
		n := len(pool)
		if rng.Intn(3) == 0 {
			return pool[rng.Intn(n)]
		}
		lo := n * 3 / 4
		return pool[lo+rng.Intn(n-lo)]
	}
	pOf := func(n *network.Node) float64 {
		if p, ok := prob[n]; ok {
			return p
		}
		return 0.5
	}
	for g := 0; g < nGates; g++ {
		op := network.OpAnd
		if rng.Intn(2) == 1 {
			op = network.OpOr
		}
		fanin := 2 + rng.Intn(3)
		if rng.Intn(20) == 0 {
			fanin = 5 + rng.Intn(8) // occasional wide gate
		}
		seen := map[*network.Node]bool{}
		var fins []network.Fanin
		pOut := 1.0
		for len(fins) < fanin && len(seen) < len(pool) {
			n := pick()
			if seen[n] {
				continue
			}
			seen[n] = true
			p := pOf(n)
			var invert bool
			if op == network.OpAnd {
				invert = p < 0.5 // use the likelier phase
			} else {
				invert = p > 0.5 // use the unlikelier phase
			}
			if rng.Intn(8) == 0 {
				invert = !invert // occasional contrarian edge for variety
			}
			q := p
			if invert {
				q = 1 - p
			}
			if op == network.OpAnd {
				pOut *= q
			} else {
				pOut *= 1 - q
			}
			fins = append(fins, network.Fanin{Node: n, Invert: invert})
		}
		gate := nw.AddGate(fmt.Sprintf("%s%d", prefix, g), op, fins...)
		if op == network.OpOr {
			pOut = 1 - pOut
		}
		pool = append(pool, gate)
		prob[gate] = pOut
	}
	return pool
}

// varyingGates simulates the pool on random patterns and returns the
// gate nodes (deepest first) whose value actually toggles.
func varyingGates(rng *rand.Rand, pool []*network.Node, gateStart int) []*network.Node {
	// Output selection. Probability estimates ignore reconvergent
	// correlation, so a gate can still be a genuine tautology (or vary
	// too rarely to be useful); simulate a few thousand random patterns
	// and only expose gates that actually toggle. An exact constant
	// never toggles, so this guarantees mappable outputs.
	const simWords = 32
	vals := make(map[*network.Node][]uint64, len(pool))
	varies := make([]bool, len(pool))
	for idx, n := range pool {
		w := make([]uint64, simWords)
		if n.IsInput() {
			for j := range w {
				w[j] = rng.Uint64()
			}
		} else {
			for j := range w {
				if n.Op == network.OpAnd {
					w[j] = ^uint64(0)
				}
			}
			for _, f := range n.Fanins {
				fw := vals[f.Node]
				for j := range w {
					x := fw[j]
					if f.Invert {
						x = ^x
					}
					if n.Op == network.OpAnd {
						w[j] &= x
					} else {
						w[j] |= x
					}
				}
			}
		}
		vals[n] = w
		for _, x := range w {
			if x != 0 && x != ^uint64(0) {
				varies[idx] = true
				break
			}
		}
	}
	var usable []*network.Node
	for idx := len(pool) - 1; idx >= gateStart; idx-- { // deepest first
		if varies[idx] {
			usable = append(usable, pool[idx])
		}
	}
	return usable
}

// Specs for the seven non-reconstructible MCNC circuits. Input/output
// counts are the published MCNC-89 profiles; gate budgets are scaled to
// keep the whole suite runnable in seconds while preserving the
// relative size ordering (des largest, frg1 smallest).
var syntheticSpecs = map[string]SyntheticSpec{
	"apex6": {Name: "apex6", Inputs: 135, Outputs: 99, Gates: 450, Seed: 1006},
	"apex7": {Name: "apex7", Inputs: 49, Outputs: 37, Gates: 160, Seed: 1007},
	"des":   {Name: "des", Inputs: 256, Outputs: 245, Gates: 1400, Seed: 1008},
	"frg1":  {Name: "frg1", Inputs: 28, Outputs: 3, Gates: 90, Seed: 1009},
	"frg2":  {Name: "frg2", Inputs: 143, Outputs: 139, Gates: 600, Seed: 1010},
	"k2":    {Name: "k2", Inputs: 45, Outputs: 45, Gates: 500, Seed: 1011},
	"pair":  {Name: "pair", Inputs: 173, Outputs: 137, Gates: 750, Seed: 1012},
}
