package bench

import (
	"fmt"
	"testing"

	"chortle/internal/opt"
	"chortle/internal/verify"
)

func TestNineSymmlFunction(t *testing.T) {
	nw := NineSymml()
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(nw.Inputs) != 9 || len(nw.Outputs) != 1 {
		t.Fatalf("IO = %d/%d", len(nw.Inputs), len(nw.Outputs))
	}
	// Exhaustive check of the symmetric on-set (weights 3..6).
	for base := uint64(0); base < 512; base += 64 {
		assign := map[string]uint64{}
		for i := 0; i < 9; i++ {
			var w uint64
			for j := uint64(0); j < 64; j++ {
				if (base+j)>>uint(i)&1 == 1 {
					w |= 1 << j
				}
			}
			assign[nw.Inputs[i].Name] = w
		}
		got, err := nw.Simulate(assign)
		if err != nil {
			t.Fatal(err)
		}
		for j := uint64(0); j < 64; j++ {
			m := base + j
			ones := 0
			for i := 0; i < 9; i++ {
				if m>>uint(i)&1 == 1 {
					ones++
				}
			}
			want := ones >= 3 && ones <= 6
			if got["out"]>>j&1 == 1 != want {
				t.Fatalf("9symml wrong at weight %d (minterm %d)", ones, m)
			}
		}
	}
}

func TestALUProfilesMatchMCNC(t *testing.T) {
	alu2 := ALU(2)
	if len(alu2.Inputs) != 10 || len(alu2.Outputs) != 6 {
		t.Fatalf("alu2 IO = %d/%d, want 10/6", len(alu2.Inputs), len(alu2.Outputs))
	}
	alu4 := ALU(4)
	if len(alu4.Inputs) != 14 || len(alu4.Outputs) != 8 {
		t.Fatalf("alu4 IO = %d/%d, want 14/8", len(alu4.Inputs), len(alu4.Outputs))
	}
	if err := alu4.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestALUArithmetic(t *testing.T) {
	// M=0, S0=0, S1=0: F = A + B + Cin.
	nw := ALU(4)
	for a := uint64(0); a < 16; a++ {
		for bb := uint64(0); bb < 16; bb += 3 {
			for cin := uint64(0); cin < 2; cin++ {
				assign := map[string]uint64{"m": 0, "s0": 0, "s1": 0, "s2": 0, "s3": 0, "cin": ^uint64(0) * cin}
				for i := 0; i < 4; i++ {
					assign[sprintf("a%d", i)] = ^uint64(0) * (a >> uint(i) & 1)
					assign[sprintf("b%d", i)] = ^uint64(0) * (bb >> uint(i) & 1)
				}
				got, err := nw.Simulate(assign)
				if err != nil {
					t.Fatal(err)
				}
				sum := a + bb + cin
				for i := 0; i < 4; i++ {
					want := sum>>uint(i)&1 == 1
					if (got[sprintf("f%d", i)]&1 == 1) != want {
						t.Fatalf("A=%d B=%d Cin=%d: f%d wrong", a, bb, cin, i)
					}
				}
				if (got["cout"]&1 == 1) != (sum >= 16) {
					t.Fatalf("A=%d B=%d Cin=%d: cout wrong", a, bb, cin)
				}
				if (got["zero"]&1 == 1) != (sum%16 == 0) {
					t.Fatalf("A=%d B=%d Cin=%d: zero wrong", a, bb, cin)
				}
			}
		}
	}
}

func TestALULogicModes(t *testing.T) {
	nw := ALU(2)
	cases := []struct {
		s3, s2 uint64
		f      func(a, b bool) bool
	}{
		{0, 0, func(a, b bool) bool { return a && b }},
		{0, 1, func(a, b bool) bool { return a || b }},
		{1, 0, func(a, b bool) bool { return a != b }},
		{1, 1, func(a, b bool) bool { return !(a || b) }},
	}
	for _, c := range cases {
		for m := uint64(0); m < 16; m++ {
			assign := map[string]uint64{
				"m": ^uint64(0), "s0": 0, "s1": 0, "cin": 0,
				"s2": ^uint64(0) * c.s2, "s3": ^uint64(0) * c.s3,
				"a0": ^uint64(0) * (m & 1), "a1": ^uint64(0) * (m >> 1 & 1),
				"b0": ^uint64(0) * (m >> 2 & 1), "b1": ^uint64(0) * (m >> 3 & 1),
			}
			got, err := nw.Simulate(assign)
			if err != nil {
				t.Fatal(err)
			}
			a0, a1 := m&1 == 1, m>>1&1 == 1
			b0, b1 := m>>2&1 == 1, m>>3&1 == 1
			if (got["f0"]&1 == 1) != c.f(a0, b0) || (got["f1"]&1 == 1) != c.f(a1, b1) {
				t.Fatalf("logic mode s3=%d s2=%d wrong at %04b", c.s3, c.s2, m)
			}
		}
	}
}

func TestCountIncrement(t *testing.T) {
	nw := Count()
	if len(nw.Inputs) != 35 || len(nw.Outputs) != 16 {
		t.Fatalf("count IO = %d/%d, want 35/16", len(nw.Inputs), len(nw.Outputs))
	}
	for _, x := range []uint64{0, 1, 5, 0xFFFE, 0xFFFF, 0x8000} {
		assign := map[string]uint64{"load": 0, "en": ^uint64(0), "reset": 0}
		for i := 0; i < 16; i++ {
			assign[sprintf("x%d", i)] = ^uint64(0) * (x >> uint(i) & 1)
			assign[sprintf("d%d", i)] = 0
		}
		got, err := nw.Simulate(assign)
		if err != nil {
			t.Fatal(err)
		}
		want := (x + 1) & 0xFFFF
		for i := 0; i < 16; i++ {
			if (got[sprintf("o%d", i)]&1 == 1) != (want>>uint(i)&1 == 1) {
				t.Fatalf("count(%#x): bit %d wrong", x, i)
			}
		}
	}
}

func TestRotRotates(t *testing.T) {
	nw := RotBarrel()
	if len(nw.Inputs) != 37 || len(nw.Outputs) != 32 {
		t.Fatalf("rot IO = %d/%d", len(nw.Inputs), len(nw.Outputs))
	}
	x := uint64(0xDEADBEEF)
	for _, sh := range []uint{0, 1, 7, 13, 31} {
		assign := map[string]uint64{}
		for i := 0; i < 32; i++ {
			assign[sprintf("x%d", i)] = ^uint64(0) * (x >> uint(i) & 1)
		}
		for i := 0; i < 5; i++ {
			assign[sprintf("s%d", i)] = ^uint64(0) * uint64(sh>>uint(i)&1)
		}
		got, err := nw.Simulate(assign)
		if err != nil {
			t.Fatal(err)
		}
		want := x
		if sh != 0 {
			want = uint64(uint32(x)<<sh | uint32(x)>>(32-sh))
		}
		for i := 0; i < 32; i++ {
			if (got[sprintf("o%d", i)]&1 == 1) != (want>>uint(i)&1 == 1) {
				t.Fatalf("rot by %d: bit %d wrong (want %#x)", sh, i, want)
			}
		}
	}
}

func TestSyntheticDeterministicAndSized(t *testing.T) {
	for name, spec := range syntheticSpecs {
		a := Synthetic(spec)
		b := Synthetic(spec)
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(a.Inputs) != spec.Inputs || len(a.Outputs) != spec.Outputs {
			t.Fatalf("%s IO = %d/%d, want %d/%d", name,
				len(a.Inputs), len(a.Outputs), spec.Inputs, spec.Outputs)
		}
		sa, sb := a.Stats(), b.Stats()
		if sa != sb {
			t.Fatalf("%s not deterministic: %+v vs %+v", name, sa, sb)
		}
		if sa.Gates < spec.Gates/2 {
			t.Fatalf("%s swept down to %d gates (budget %d)", name, sa.Gates, spec.Gates)
		}
	}
}

func TestSuiteCompleteAndOrdered(t *testing.T) {
	s := Suite()
	want := []string{"9symml", "alu2", "alu4", "apex6", "apex7", "count",
		"des", "frg1", "frg2", "k2", "pair", "rot"}
	if len(s) != len(want) {
		t.Fatalf("suite has %d circuits", len(s))
	}
	for i, c := range s {
		if c.Name != want[i] {
			t.Fatalf("suite[%d] = %s, want %s", i, c.Name, want[i])
		}
	}
	if _, err := ByName("rot"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("unknown circuit accepted")
	}
}

func TestOptimizedPreservesFunction(t *testing.T) {
	// The mini-MIS script + lowering must preserve every circuit's
	// function. Check the functional (non-synthetic) small circuits
	// exhaustively-ish; spot-check one synthetic.
	for _, name := range []string{"9symml", "alu2", "frg1"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		raw := c.Build()
		optd, err := Optimized(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := verify.NetworkVsNetwork(raw, optd, 48, 99); err != nil {
			t.Fatalf("%s: optimization changed function: %v", name, err)
		}
	}
}

func TestOptimizeReducesLiterals(t *testing.T) {
	c, _ := ByName("9symml")
	raw := c.Build()
	nt, err := opt.FromNetwork(raw)
	if err != nil {
		t.Fatal(err)
	}
	before := nt.Cost()
	after := nt.Optimize(OptimizeOptions())
	if after > before {
		t.Fatalf("optimization grew 9symml: %d -> %d literals", before, after)
	}
}

func sprintf(format string, args ...interface{}) string {
	return fmt.Sprintf(format, args...)
}

func TestPLAAndNetlistVariantsAgree(t *testing.T) {
	// The PLA-derived suite circuits and the gate-level alternative
	// constructions implement the same behaviour.
	if err := verify.NetworkVsNetwork(NineSymmlNetlist(), NineSymml(), 0, 1); err != nil {
		t.Fatalf("9symml: %v", err)
	}
	if err := verify.NetworkVsNetwork(ALUNetlist(2), ALU(2), 0, 1); err != nil {
		t.Fatalf("alu2: %v", err)
	}
	if err := verify.NetworkVsNetwork(ALUNetlist(4), ALU(4), 0, 1); err != nil {
		t.Fatalf("alu4: %v", err)
	}
}
