package bench

import (
	"fmt"

	"chortle/internal/network"
	"chortle/internal/opt"
)

// Circuit is one benchmark: a named builder producing the raw network.
type Circuit struct {
	Name  string
	Build func() *network.Network
	// Synthetic marks the circuits rebuilt as random stand-ins rather
	// than from known functionality (see the package comment).
	Synthetic bool
}

// Suite returns the twelve circuits of the paper's Tables 1-4, in the
// tables' order.
func Suite() []Circuit {
	mk := func(name string) Circuit {
		spec := syntheticSpecs[name]
		return Circuit{Name: name, Build: func() *network.Network { return Synthetic(spec) }, Synthetic: true}
	}
	return []Circuit{
		{Name: "9symml", Build: NineSymml},
		{Name: "alu2", Build: func() *network.Network { return ALU(2) }},
		{Name: "alu4", Build: func() *network.Network { return ALU(4) }},
		mk("apex6"),
		mk("apex7"),
		{Name: "count", Build: Count},
		mk("des"),
		mk("frg1"),
		mk("frg2"),
		mk("k2"),
		mk("pair"),
		{Name: "rot", Build: Rot},
	}
}

// ByName returns the named circuit (paper suite or extended suite) or
// an error listing the available names.
func ByName(name string) (Circuit, error) {
	for _, c := range Suite() {
		if c.Name == name {
			return c, nil
		}
	}
	for _, c := range ExtendedSuite() {
		if c.Name == name {
			return c, nil
		}
	}
	return Circuit{}, fmt.Errorf("bench: unknown circuit %q (paper suite: 9symml alu2 alu4 apex6 apex7 count des frg1 frg2 k2 pair rot; extended: rd53 rd73 rd84 xor5 parity z4ml majority t481)", name)
}

// OptimizeOptions is the bounded mini-MIS script used for benchmarking:
// the standard pass structure with iteration caps that keep the largest
// circuits (des-scale) in the seconds range.
func OptimizeOptions() opt.ScriptOptions {
	return opt.ScriptOptions{
		EliminateThreshold: 0,
		MaxKernelIters:     80,
		MaxCubeIters:       80,
		Rounds:             1,
		Resubstitute:       false,
	}
}

// Optimized builds the circuit and runs it through the mini-MIS
// standard script, returning the optimized AND/OR network both mappers
// consume — the paper's experimental input.
func Optimized(c Circuit) (*network.Network, error) {
	raw := c.Build()
	nt, err := opt.FromNetwork(raw)
	if err != nil {
		return nil, err
	}
	nt.Optimize(OptimizeOptions())
	nw, err := nt.Lower()
	if err != nil {
		return nil, err
	}
	return nw, nil
}
