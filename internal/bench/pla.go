package bench

import (
	"fmt"

	"chortle/internal/network"
	"chortle/internal/opt"
	"chortle/internal/sop"
)

// PLA-derived circuits. The MCNC originals of 9sym(ml), alu2 and alu4
// are two-level PLA benchmarks: espresso covers later restructured by
// MIS. We reproduce that provenance by synthesizing a two-level cover
// from a behavioural oracle (sop.CoverFromOracle, an espresso-style
// expand) and lowering its factored form — so the mapped networks have
// the PLA-derived structure the paper's inputs had, rather than the
// XOR/mux-pure netlists a direct structural construction would give.

// plaOut is one output column of a PLA specification.
type plaOut struct {
	name string
	f    func(m uint64) bool
}

// plaNetwork synthesizes a network from per-output oracles over the
// named inputs (input i = bit i of the oracle argument).
func plaNetwork(name string, inNames []string, outs []plaOut) *network.Network {
	nt := opt.NewNet(name)
	for _, in := range inNames {
		nt.AddInput(in)
	}
	for _, o := range outs {
		cover := sop.CoverFromOracle(len(inNames), o.f)
		if cover.IsZero() || cover.IsOne() {
			panic(fmt.Sprintf("bench: PLA output %s.%s is constant", name, o.name))
		}
		node := o.name + "$n"
		nt.AddNode(node, inNames, cover)
		nt.MarkOutput(o.name, node, false)
	}
	nw, err := nt.Lower()
	if err != nil {
		panic(fmt.Sprintf("bench: lowering PLA %s: %v", name, err))
	}
	return nw
}

// NineSymml is the 9-input symmetric MCNC benchmark 9symml/9sym: the
// output is true iff between 3 and 6 of the 9 inputs are true. Derived
// from its defining oracle through the two-level PLA flow, matching the
// benchmark's provenance.
func NineSymml() *network.Network {
	names := make([]string, 9)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	return plaNetwork("9symml", names, []plaOut{{
		name: "out",
		f: func(m uint64) bool {
			ones := 0
			for i := 0; i < 9; i++ {
				if m>>uint(i)&1 == 1 {
					ones++
				}
			}
			return ones >= 3 && ones <= 6
		},
	}})
}

// ALU builds the n-bit ALU through the PLA flow, with the same
// behaviour and interface as ALUNetlist: 2n+6 inputs and n+4 outputs
// (10→6 for alu2, 14→8 for alu4, the MCNC profiles).
func ALU(n int) *network.Network {
	inNames := aluInputNames(n)
	var outs []plaOut
	for i := 0; i < n; i++ {
		i := i
		outs = append(outs, plaOut{
			name: fmt.Sprintf("f%d", i),
			f:    func(m uint64) bool { return aluEval(n, m).f>>uint(i)&1 == 1 },
		})
	}
	outs = append(outs,
		plaOut{"cout", func(m uint64) bool { return aluEval(n, m).cout }},
		plaOut{"zero", func(m uint64) bool { return aluEval(n, m).zero }},
		plaOut{"p", func(m uint64) bool { return aluEval(n, m).p }},
		plaOut{"g", func(m uint64) bool { return aluEval(n, m).g }},
	)
	return plaNetwork(fmt.Sprintf("alu%d", n), inNames, outs)
}

// aluInputNames fixes the oracle's bit layout: a0..a{n-1}, b0..b{n-1},
// s0, s1, s2, s3, m, cin.
func aluInputNames(n int) []string {
	var names []string
	for i := 0; i < n; i++ {
		names = append(names, fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		names = append(names, fmt.Sprintf("b%d", i))
	}
	names = append(names, "s0", "s1", "s2", "s3", "m", "cin")
	return names
}

type aluResult struct {
	f          uint64
	cout       bool
	zero, p, g bool
}

// aluEval is the behavioural reference shared by the PLA flow and the
// tests: M=1 selects logic mode with (S3,S2) choosing AND/OR/XOR/NOR;
// M=0 computes A + (B^S0)·(!S1) + Cin with flags.
func aluEval(n int, m uint64) aluResult {
	a := m & (1<<uint(n) - 1)
	b := m >> uint(n) & (1<<uint(n) - 1)
	s0 := m>>uint(2*n)&1 == 1
	s1 := m>>uint(2*n+1)&1 == 1
	s2 := m>>uint(2*n+2)&1 == 1
	s3 := m>>uint(2*n+3)&1 == 1
	mode := m>>uint(2*n+4)&1 == 1
	cin := m>>uint(2*n+5)&1 == 1

	bm := b
	if s0 {
		bm ^= 1<<uint(n) - 1
	}
	if s1 {
		bm = 0
	}
	sum := a + bm
	if cin {
		sum++
	}
	var logic uint64
	switch {
	case !s3 && !s2:
		logic = a & b
	case !s3 && s2:
		logic = a | b
	case s3 && !s2:
		logic = a ^ b
	default:
		logic = ^(a | b) & (1<<uint(n) - 1)
	}
	var res aluResult
	if mode {
		res.f = logic
	} else {
		res.f = sum & (1<<uint(n) - 1)
	}
	res.cout = !mode && sum>>uint(n)&1 == 1
	res.zero = res.f == 0
	prop := a ^ bm
	res.p = prop == 1<<uint(n)-1
	// Group generate: a carry is generated somewhere and propagates out.
	g := false
	for i := n - 1; i >= 0; i-- {
		if a>>uint(i)&1 == 1 && bm>>uint(i)&1 == 1 {
			ok := true
			for j := i + 1; j < n; j++ {
				if prop>>uint(j)&1 != 1 {
					ok = false
					break
				}
			}
			if ok {
				g = true
				break
			}
		}
	}
	res.g = g
	return res
}
