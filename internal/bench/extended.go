package bench

import (
	"fmt"

	"chortle/internal/network"
)

// Extended suite: classic MCNC two-level circuits whose functions are
// public knowledge, rebuilt through the same PLA flow as 9symml and the
// ALUs. These are not part of the paper's Tables 1-4 (Suite covers
// those); they widen the workload spectrum for the harness and give
// downstream users familiar reference points.
//
//	rd53/rd73/rd84  — binary count of ones in 5/7/8 inputs
//	xor5            — 5-input parity
//	parity          — 16-input parity (built as a gate tree: its PLA
//	                  form is exponential, as espresso users know)
//	z4ml            — 2-bit + 2-bit + carry 3-bit add (7 in, 4 out
//	                  MCNC profile)
//	majority        — 5-input majority vote
//	t481            — stands in via a 16-input unate threshold function
//	                  (the original's function is not public)

// Rd builds the rdNM circuit: the binary count of ones of n inputs on
// ceil(log2(n+1)) outputs, derived through the PLA flow.
func Rd(n int) *network.Network {
	if n < 2 || n > 16 {
		panic("bench: Rd supports 2..16 inputs")
	}
	bits := 0
	for 1<<uint(bits) <= n {
		bits++
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	var outs []plaOut
	for b := 0; b < bits; b++ {
		b := b
		outs = append(outs, plaOut{
			name: fmt.Sprintf("s%d", b),
			f: func(m uint64) bool {
				ones := 0
				for i := 0; i < n; i++ {
					if m>>uint(i)&1 == 1 {
						ones++
					}
				}
				return ones>>uint(b)&1 == 1
			},
		})
	}
	return plaNetwork(fmt.Sprintf("rd%d%d", n, bits), names, outs)
}

// Xor5 is the 5-input parity benchmark xor5.
func Xor5() *network.Network {
	names := []string{"a", "b", "c", "d", "e"}
	return plaNetwork("xor5", names, []plaOut{{
		name: "y",
		f: func(m uint64) bool {
			ones := 0
			for i := 0; i < 5; i++ {
				if m>>uint(i)&1 == 1 {
					ones++
				}
			}
			return ones%2 == 1
		},
	}})
}

// Parity is the 16-input parity benchmark. Its two-level cover has
// 2^15 cubes, so (like the original netlist) it is built as a balanced
// XOR tree of gates instead of through the PLA flow.
func Parity() *network.Network {
	b := newBuilder("parity")
	level := make([]lit, 16)
	for i := range level {
		level[i] = b.input(fmt.Sprintf("x%d", i))
	}
	for len(level) > 1 {
		var next []lit
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, b.xor(level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	b.output("y", level[0])
	return b.done()
}

// Z4ml adds two 2-bit numbers and a carry-in onto 3 sum bits plus an
// overflow flag: the 7-input 4-output MCNC z4ml profile.
func Z4ml() *network.Network {
	names := []string{"a0", "a1", "b0", "b1", "cin", "u0", "u1"}
	sum := func(m uint64) uint64 {
		a := m & 3
		bb := m >> 2 & 3
		cin := m >> 4 & 1
		u := m >> 5 & 3 // a third small addend fills the 7-input profile
		return a + bb + cin + u
	}
	var outs []plaOut
	for b := 0; b < 4; b++ {
		b := b
		outs = append(outs, plaOut{
			name: fmt.Sprintf("s%d", b),
			f:    func(m uint64) bool { return sum(m)>>uint(b)&1 == 1 },
		})
	}
	return plaNetwork("z4ml", names, outs)
}

// Majority is the 5-input majority voter.
func Majority() *network.Network {
	names := []string{"a", "b", "c", "d", "e"}
	return plaNetwork("majority", names, []plaOut{{
		name: "y",
		f: func(m uint64) bool {
			ones := 0
			for i := 0; i < 5; i++ {
				if m>>uint(i)&1 == 1 {
					ones++
				}
			}
			return ones >= 3
		},
	}})
}

// T481 stands in for the MCNC t481 benchmark (16 inputs, 1 output;
// original function not public) with a unate threshold function of
// matching profile: true iff the weighted sum of inputs exceeds half
// the total weight.
func T481() *network.Network {
	names := make([]string, 16)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	weights := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3}
	total := 0
	for _, w := range weights {
		total += w
	}
	// A 16-variable threshold PLA is large but tractable for the
	// expand-based cover; keep the oracle cheap.
	return plaNetwork("t481", names, []plaOut{{
		name: "y",
		f: func(m uint64) bool {
			s := 0
			for i := 0; i < 16; i++ {
				if m>>uint(i)&1 == 1 {
					s += weights[i]
				}
			}
			return 2*s > total
		},
	}})
}

// ExtendedSuite lists the additional circuits.
func ExtendedSuite() []Circuit {
	return []Circuit{
		{Name: "rd53", Build: func() *network.Network { return Rd(5) }},
		{Name: "rd73", Build: func() *network.Network { return Rd(7) }},
		{Name: "rd84", Build: func() *network.Network { return Rd(8) }},
		{Name: "xor5", Build: Xor5},
		{Name: "parity", Build: Parity},
		{Name: "z4ml", Build: Z4ml},
		{Name: "majority", Build: Majority},
		{Name: "t481", Build: T481},
	}
}
