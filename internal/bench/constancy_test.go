package bench

import (
	"math/rand"
	"testing"
)

// TestSyntheticOutputsNotConstant guards the probability-balancing
// generator: every synthetic output must vary under random simulation
// (constant outputs cannot be technology mapped and no real MCNC
// benchmark has them).
func TestSyntheticOutputsNotConstant(t *testing.T) {
	for name, spec := range syntheticSpecs {
		nw := Synthetic(spec)
		rng := rand.New(rand.NewSource(5))
		varying := map[string]bool{}
		for p := 0; p < 100; p++ {
			assign := map[string]uint64{}
			for _, in := range nw.Inputs {
				assign[in.Name] = rng.Uint64()
			}
			got, err := nw.Simulate(assign)
			if err != nil {
				t.Fatal(err)
			}
			for sig, w := range got {
				if w != 0 && w != ^uint64(0) {
					varying[sig] = true
				}
			}
		}
		for _, o := range nw.Outputs {
			if !varying[o.Name] {
				t.Errorf("%s: output %s looks constant over 6400 random patterns", name, o.Name)
			}
		}
	}
}

func TestRotProfile(t *testing.T) {
	nw := Rot()
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(nw.Inputs) != 135 || len(nw.Outputs) != 107 {
		t.Fatalf("rot IO = %d/%d, want 135/107 (MCNC profile)", len(nw.Inputs), len(nw.Outputs))
	}
	a, b := Rot().Stats(), Rot().Stats()
	if a != b {
		t.Fatal("rot not deterministic")
	}
}
