package bench

import (
	"fmt"
	"math/rand"

	"chortle/internal/network"
)

// Rot stands in for the MCNC `rot` benchmark with its published profile:
// 135 inputs and 107 outputs. The original is a rotator datapath wrapped
// in a large block of irregular control logic (a bare barrel shifter
// would need only 37 inputs); we reproduce that composition with the
// RotBarrel core — 32 data bits, 5 shift bits — gated and surrounded by
// seeded pseudo-random control logic over the remaining 98 inputs.
func Rot() *network.Network {
	const (
		dataBits  = 32
		shiftBits = 5
		ctrlBits  = 135 - dataBits - shiftBits
		glueGates = 260
		glueOuts  = 107 - dataBits
	)
	rng := rand.New(rand.NewSource(1013))
	b := newBuilder("rot")

	data := make([]lit, dataBits)
	for i := range data {
		data[i] = b.input(fmt.Sprintf("x%d", i))
	}
	s := make([]lit, shiftBits)
	for i := range s {
		s[i] = b.input(fmt.Sprintf("s%d", i))
	}
	var ctrl []*network.Node
	for i := 0; i < ctrlBits; i++ {
		ctrl = append(ctrl, b.input(fmt.Sprintf("c%d", i)).Node)
	}

	// Barrel core: left rotation of data by s.
	cur := data
	for level := 0; level < shiftBits; level++ {
		shift := 1 << uint(level)
		next := make([]lit, dataBits)
		for i := 0; i < dataBits; i++ {
			next[i] = b.mux(s[level], cur[(i+dataBits-shift)%dataBits], cur[i])
		}
		cur = next
	}

	// Control glue over the remaining inputs.
	prob := map[*network.Node]float64{}
	pool := growRandomLogic(b.nw, rng, ctrl, prob, glueGates, "rc")
	usable := varyingGates(rng, pool, ctrlBits)
	if len(usable) < 2 {
		panic("bench: rot glue degenerated")
	}

	// Rotated data gated by control enables.
	for i := 0; i < dataBits; i++ {
		en := pos(usable[i%len(usable)])
		b.output(fmt.Sprintf("o%d", i), b.and(cur[i], en))
	}
	// Pure control outputs fill out the 107-output profile.
	for i := 0; i < glueOuts; i++ {
		b.output(fmt.Sprintf("o%d", dataBits+i), pos(usable[(dataBits+i)%len(usable)]))
	}
	return b.done()
}
