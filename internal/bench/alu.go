package bench

import (
	"fmt"

	"chortle/internal/network"
)

// ALUNetlist is the gate-level 74181-flavoured construction of the ALU
// behaviour (the suite uses the PLA-derived ALU): ripple-carry
// arithmetic built from explicit XOR/mux structures. Its reconvergent
// fanout is exactly the structure the paper's Table 1 analysis singles
// out as invisible to Chortle but visible to a library matcher, so it
// doubles as a stress test for that effect.
func ALUNetlist(n int) *network.Network {
	b := newBuilder(fmt.Sprintf("alu%d", n))
	A := make([]lit, n)
	B := make([]lit, n)
	for i := 0; i < n; i++ {
		A[i] = b.input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		B[i] = b.input(fmt.Sprintf("b%d", i))
	}
	s0 := b.input("s0")
	s1 := b.input("s1")
	s2 := b.input("s2")
	s3 := b.input("s3")
	m := b.input("m")
	cin := b.input("cin")

	// Arithmetic operand: B xor S0 (subtract), gated off by S1
	// (increment mode adds only the carry).
	Bm := make([]lit, n)
	for i := 0; i < n; i++ {
		Bm[i] = b.and(b.xor(B[i], s0), flip(s1))
	}
	// Ripple-carry adder.
	carry := cin
	sum := make([]lit, n)
	prop := make([]lit, n)
	for i := 0; i < n; i++ {
		prop[i] = b.xor(A[i], Bm[i])
		sum[i] = b.xor(prop[i], carry)
		carry = b.or(b.and(A[i], Bm[i]), b.and(prop[i], carry))
	}

	// Logic unit per bit, selected by (S3, S2).
	F := make([]lit, n)
	for i := 0; i < n; i++ {
		andL := b.and(A[i], B[i])
		orL := b.or(A[i], B[i])
		xorL := b.xor(A[i], B[i])
		norL := flip(orL)
		logic := b.mux(s3, b.mux(s2, norL, xorL), b.mux(s2, orL, andL))
		F[i] = b.mux(m, logic, sum[i])
		b.output(fmt.Sprintf("f%d", i), F[i])
	}
	b.output("cout", b.and(carry, flip(m)))
	// Zero flag: NOR of all outputs.
	zero := F[0]
	for i := 1; i < n; i++ {
		zero = b.or(zero, F[i])
	}
	b.output("zero", flip(zero))
	// Group propagate and generate (carry-lookahead style flags).
	p := prop[0]
	for i := 1; i < n; i++ {
		p = b.and(p, prop[i])
	}
	b.output("p", p)
	g := b.and(A[n-1], Bm[n-1])
	for i := n - 2; i >= 0; i-- {
		g = b.or(g, b.and(A[i], Bm[i], andAll(b, prop[i+1:])))
	}
	b.output("g", g)
	return b.done()
}

func andAll(b *builder, ls []lit) lit {
	if len(ls) == 1 {
		return ls[0]
	}
	return b.and(ls...)
}

// Count builds the loadable, resettable 16-bit incrementer standing in
// for the MCNC `count` benchmark: 35 inputs (x[16], d[16], load, en,
// reset) and 16 outputs, dominated by the XOR/AND carry chain.
func Count() *network.Network {
	b := newBuilder("count")
	x := make([]lit, 16)
	d := make([]lit, 16)
	for i := range x {
		x[i] = b.input(fmt.Sprintf("x%d", i))
	}
	for i := range d {
		d[i] = b.input(fmt.Sprintf("d%d", i))
	}
	load := b.input("load")
	en := b.input("en")
	reset := b.input("reset")
	carry := en
	for i := 0; i < 16; i++ {
		inc := b.xor(x[i], carry)
		if i < 15 {
			carry = b.and(carry, x[i])
		}
		b.output(fmt.Sprintf("o%d", i), b.and(flip(reset), b.mux(load, d[i], inc)))
	}
	return b.done()
}

// RotBarrel builds the pure 32-bit left-rotate barrel shifter used as
// the datapath core of the `rot` benchmark (and as a mux-saturated
// stress case in its own right): data x[32] and shift amount s[5], 32
// outputs, five layers of 2:1 multiplexers.
func RotBarrel() *network.Network {
	b := newBuilder("rot")
	cur := make([]lit, 32)
	for i := range cur {
		cur[i] = b.input(fmt.Sprintf("x%d", i))
	}
	s := make([]lit, 5)
	for i := range s {
		s[i] = b.input(fmt.Sprintf("s%d", i))
	}
	for level := 0; level < 5; level++ {
		shift := 1 << uint(level)
		next := make([]lit, 32)
		for i := 0; i < 32; i++ {
			// Left rotation: output bit i comes from input bit i-shift.
			next[i] = b.mux(s[level], cur[(i+32-shift)%32], cur[i])
		}
		cur = next
	}
	for i := 0; i < 32; i++ {
		b.output(fmt.Sprintf("o%d", i), cur[i])
	}
	return b.done()
}
