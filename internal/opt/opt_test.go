package opt

import (
	"math/rand"
	"strings"
	"testing"

	"chortle/internal/sop"
)

// mkSOP builds an SOP over n vars from (pos, neg) index lists per cube.
func mkSOP(n int, cubes ...[2][]int) sop.SOP {
	s := sop.SOP{NumVars: n}
	for _, cu := range cubes {
		var c sop.Cube
		for _, i := range cu[0] {
			c.Pos |= 1 << uint(i)
		}
		for _, i := range cu[1] {
			c.Neg |= 1 << uint(i)
		}
		s.Cubes = append(s.Cubes, c)
	}
	return s
}

// twoLevelNet is a small multi-output two-level net with sharing
// opportunities: f = ab + ac + ad, g = b + c (shared kernel b+c... and
// h = a'e).
func twoLevelNet() *Net {
	nt := NewNet("t")
	for _, in := range []string{"a", "b", "c", "d", "e"} {
		nt.AddInput(in)
	}
	nt.AddNode("f", []string{"a", "b", "c", "d"},
		mkSOP(4, [2][]int{{0, 1}, nil}, [2][]int{{0, 2}, nil}, [2][]int{{0, 3}, nil}))
	nt.AddNode("g", []string{"b", "c"},
		mkSOP(2, [2][]int{{0}, nil}, [2][]int{{1}, nil}))
	nt.AddNode("h", []string{"a", "e"},
		mkSOP(2, [2][]int{{1}, {0}}))
	nt.MarkOutput("f", "f", false)
	nt.MarkOutput("g", "g", false)
	nt.MarkOutput("h", "h", true)
	return nt
}

// exhaustiveAssign gives input i the exhaustive column pattern over
// 2^len(inputs) minterms (inputs must number <= 6).
func exhaustiveAssign(inputs []string) map[string]uint64 {
	assign := map[string]uint64{}
	for i, in := range inputs {
		var w uint64
		for m := uint(0); m < 1<<uint(len(inputs)); m++ {
			if m>>uint(i)&1 == 1 {
				w |= 1 << m
			}
		}
		assign[in] = w
	}
	return assign
}

// mustEquivalent checks two nets compute identical outputs exhaustively.
func mustEquivalent(t *testing.T, a, b *Net, context string) {
	t.Helper()
	assign := exhaustiveAssign(a.Inputs)
	mask := uint64(1)<<(1<<uint(len(a.Inputs))) - 1
	if len(a.Inputs) >= 6 {
		mask = ^uint64(0)
	}
	ra, err := a.Simulate(assign)
	if err != nil {
		t.Fatalf("%s: %v", context, err)
	}
	rb, err := b.Simulate(assign)
	if err != nil {
		t.Fatalf("%s: %v", context, err)
	}
	for _, o := range a.Outputs {
		if ra[o.Name]&mask != rb[o.Name]&mask {
			t.Fatalf("%s: output %q differs (%x vs %x)", context, o.Name, ra[o.Name]&mask, rb[o.Name]&mask)
		}
	}
}

func TestNetBasics(t *testing.T) {
	nt := twoLevelNet()
	if err := nt.Validate(); err != nil {
		t.Fatal(err)
	}
	if nt.Cost() != 6+2+2 {
		t.Fatalf("Cost = %d", nt.Cost())
	}
	order, err := nt.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("topo order %v", order)
	}
}

func TestSimulate(t *testing.T) {
	nt := twoLevelNet()
	got, err := nt.Simulate(exhaustiveAssign(nt.Inputs))
	if err != nil {
		t.Fatal(err)
	}
	for m := uint(0); m < 32; m++ {
		a, b := m&1 == 1, m>>1&1 == 1
		c, d, e := m>>2&1 == 1, m>>3&1 == 1, m>>4&1 == 1
		wantF := (a && b) || (a && c) || (a && d)
		wantG := b || c
		wantH := !(!a && e)
		if got["f"]>>m&1 == 1 != wantF {
			t.Fatalf("f wrong at %05b", m)
		}
		if got["g"]>>m&1 == 1 != wantG {
			t.Fatalf("g wrong at %05b", m)
		}
		if got["h"]>>m&1 == 1 != wantH {
			t.Fatalf("h wrong at %05b", m)
		}
	}
}

func TestEliminatePreservesFunction(t *testing.T) {
	nt := NewNet("e")
	for _, in := range []string{"a", "b", "c"} {
		nt.AddInput(in)
	}
	// t1 = ab (used once) should be eliminated into f.
	nt.AddNode("t1", []string{"a", "b"}, mkSOP(2, [2][]int{{0, 1}, nil}))
	nt.AddNode("f", []string{"t1", "c"}, mkSOP(2, [2][]int{{0}, nil}, [2][]int{{1}, nil}))
	nt.MarkOutput("f", "f", false)
	ref := nt.Clone()
	removed := nt.Eliminate(0)
	if removed != 1 {
		t.Fatalf("Eliminate removed %d, want 1", removed)
	}
	if nt.Node("t1") != nil {
		t.Fatal("t1 survived elimination")
	}
	mustEquivalent(t, ref, nt, "eliminate")
}

func TestEliminateNegativePhase(t *testing.T) {
	nt := NewNet("e2")
	for _, in := range []string{"a", "b", "c"} {
		nt.AddInput(in)
	}
	// t = a + b used negatively: f = t'c. Collapse requires complement.
	nt.AddNode("t", []string{"a", "b"}, mkSOP(2, [2][]int{{0}, nil}, [2][]int{{1}, nil}))
	nt.AddNode("f", []string{"t", "c"}, mkSOP(2, [2][]int{{1}, {0}}))
	nt.MarkOutput("f", "f", false)
	ref := nt.Clone()
	nt.Eliminate(5)
	mustEquivalent(t, ref, nt, "eliminate negative phase")
	if nt.Node("t") != nil {
		t.Fatal("t should have been collapsed")
	}
}

func TestEliminateKeepsOutputNodes(t *testing.T) {
	nt := twoLevelNet()
	nt.Eliminate(100)
	for _, o := range nt.Outputs {
		if !nt.isSignal(o.Signal) {
			t.Fatalf("output signal %q vanished", o.Signal)
		}
	}
}

func TestSweepNetConstantsAndBuffers(t *testing.T) {
	nt := NewNet("s")
	for _, in := range []string{"a", "b"} {
		nt.AddInput(in)
	}
	// zero = 0 (empty cover); buf = a; f = buf & b + zero & a  -> f = ab.
	nt.AddNode("zero", nil, sop.Zero(0))
	nt.AddNode("buf", []string{"a"}, mkSOP(1, [2][]int{{0}, nil}))
	nt.AddNode("f", []string{"buf", "b", "zero"},
		mkSOP(3, [2][]int{{0, 1}, nil}, [2][]int{{2, 0}, nil}))
	nt.MarkOutput("f", "f", false)
	ref := nt.Clone()
	nt.SweepNet()
	mustEquivalent(t, ref, nt, "sweep")
	if nt.Node("zero") != nil || nt.Node("buf") != nil {
		t.Fatal("constant/buffer nodes survived sweep")
	}
	f := nt.Node("f")
	if got := f.F.String(); got != "ab" {
		t.Fatalf("f = %v, want ab", got)
	}
}

func TestExtractKernelsShared(t *testing.T) {
	nt := NewNet("x")
	for _, in := range []string{"a", "b", "c", "d", "e"} {
		nt.AddInput(in)
	}
	// f = ad + bd, g = ae + be: shared kernel (a + b).
	nt.AddNode("f", []string{"a", "b", "d"},
		mkSOP(3, [2][]int{{0, 2}, nil}, [2][]int{{1, 2}, nil}))
	nt.AddNode("g", []string{"a", "b", "e"},
		mkSOP(3, [2][]int{{0, 2}, nil}, [2][]int{{1, 2}, nil}))
	nt.MarkOutput("f", "f", false)
	nt.MarkOutput("g", "g", false)
	ref := nt.Clone()
	costBefore := nt.Cost()
	saving := nt.ExtractKernels(10)
	if saving <= 0 {
		t.Fatalf("no extraction happened (cost %d)", costBefore)
	}
	if nt.Cost() >= costBefore {
		t.Fatalf("cost did not drop: %d -> %d", costBefore, nt.Cost())
	}
	if nt.NumNodes() != 3 {
		t.Fatalf("expected one new node, have %d nodes", nt.NumNodes())
	}
	if err := nt.Validate(); err != nil {
		t.Fatal(err)
	}
	mustEquivalent(t, ref, nt, "extract kernels")
}

func TestExtractCubesShared(t *testing.T) {
	nt := NewNet("x2")
	for _, in := range []string{"a", "b", "c", "d"} {
		nt.AddInput(in)
	}
	// f = abc + abd': the cube ab appears in both products.
	nt.AddNode("f", []string{"a", "b", "c", "d"},
		mkSOP(4, [2][]int{{0, 1, 2}, nil}, [2][]int{{0, 1}, {3}}))
	// g = abd.
	nt.AddNode("g", []string{"a", "b", "d"}, mkSOP(3, [2][]int{{0, 1, 2}, nil}))
	nt.MarkOutput("f", "f", false)
	nt.MarkOutput("g", "g", false)
	ref := nt.Clone()
	costBefore := nt.Cost()
	nt.ExtractCubes(10)
	if nt.Cost() >= costBefore {
		t.Fatalf("cube extraction did not help: %d -> %d", costBefore, nt.Cost())
	}
	if err := nt.Validate(); err != nil {
		t.Fatal(err)
	}
	mustEquivalent(t, ref, nt, "extract cubes")
}

func TestResubstitute(t *testing.T) {
	nt := NewNet("r")
	for _, in := range []string{"a", "b", "c", "d"} {
		nt.AddInput(in)
	}
	// d1 = a + b exists; m = ac + bc + d should be rewritten m = d1*c + d.
	nt.AddNode("d1", []string{"a", "b"}, mkSOP(2, [2][]int{{0}, nil}, [2][]int{{1}, nil}))
	nt.AddNode("m", []string{"a", "b", "c", "d"},
		mkSOP(4, [2][]int{{0, 2}, nil}, [2][]int{{1, 2}, nil}, [2][]int{{3}, nil}))
	nt.MarkOutput("d1", "d1", false)
	nt.MarkOutput("m", "m", false)
	ref := nt.Clone()
	saving := nt.Resubstitute()
	if saving <= 0 {
		t.Fatal("resubstitution found nothing")
	}
	m := nt.Node("m")
	if m.faninIndex("d1") < 0 {
		t.Fatal("m does not use d1 after resub")
	}
	if err := nt.Validate(); err != nil {
		t.Fatal(err)
	}
	mustEquivalent(t, ref, nt, "resub")
}

func TestFactorTextbook(t *testing.T) {
	// ab + ac + ad  ->  a(b + c + d)
	s := mkSOP(4, [2][]int{{0, 1}, nil}, [2][]int{{0, 2}, nil}, [2][]int{{0, 3}, nil})
	e, err := Factor(s)
	if err != nil {
		t.Fatal(err)
	}
	if e.Literals() != 4 {
		t.Fatalf("factored literals = %d (%s), want 4", e.Literals(), e)
	}
	for a := uint64(0); a < 16; a++ {
		if EvalExpr(e, a) != s.Eval(a) {
			t.Fatalf("factored form wrong at %04b", a)
		}
	}
}

func TestFactorKernelExample(t *testing.T) {
	// ad + ae + bd + be + cd + ce = (a+b+c)(d+e): 6 literals factored.
	s := mkSOP(5,
		[2][]int{{0, 3}, nil}, [2][]int{{0, 4}, nil},
		[2][]int{{1, 3}, nil}, [2][]int{{1, 4}, nil},
		[2][]int{{2, 3}, nil}, [2][]int{{2, 4}, nil})
	e, err := Factor(s)
	if err != nil {
		t.Fatal(err)
	}
	if e.Literals() != 5 {
		t.Fatalf("factored literals = %d (%s), want 5", e.Literals(), e)
	}
}

func TestFactorConstantRejected(t *testing.T) {
	if _, err := Factor(sop.Zero(2)); err == nil {
		t.Fatal("factored the zero cover")
	}
	if _, err := Factor(sop.OneSOP(2)); err == nil {
		t.Fatal("factored the one cover")
	}
}

func TestFactorRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(5)
		s := randomCover(rng, n, 10)
		e, err := Factor(s)
		if err != nil {
			t.Fatal(err)
		}
		for a := uint64(0); a < 1<<uint(n); a++ {
			if EvalExpr(e, a) != s.Eval(a) {
				t.Fatalf("trial %d: factored %v -> %s wrong at %b", trial, s, e, a)
			}
		}
		if e.Literals() > s.Literals() {
			t.Fatalf("trial %d: factoring grew literals %d -> %d", trial, s.Literals(), e.Literals())
		}
	}
}

func randomCover(rng *rand.Rand, n, maxCubes int) sop.SOP {
	s := sop.SOP{NumVars: n}
	for i := 0; i < 1+rng.Intn(maxCubes); i++ {
		var c sop.Cube
		for v := 0; v < n; v++ {
			switch rng.Intn(3) {
			case 0:
				c.Pos |= 1 << uint(v)
			case 1:
				c.Neg |= 1 << uint(v)
			}
		}
		if !c.Contradictory() && c.Literals() > 0 {
			s.Cubes = append(s.Cubes, c)
		}
	}
	if len(s.Cubes) == 0 {
		s.Cubes = append(s.Cubes, sop.Cube{Pos: 1})
	}
	s.MinimizeSCC()
	return s
}

func TestLowerAndImportRoundTrip(t *testing.T) {
	nt := twoLevelNet()
	nw, err := nt.Lower()
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	// Simulate both representations exhaustively.
	assign := exhaustiveAssign(nt.Inputs)
	want, _ := nt.Simulate(assign)
	got, err := nw.Simulate(assign)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range nt.Outputs {
		if want[o.Name]&0xFFFFFFFF != got[o.Name]&0xFFFFFFFF {
			t.Fatalf("output %q differs after lowering", o.Name)
		}
	}
	// Import back and check again.
	nt2, err := FromNetwork(nw)
	if err != nil {
		t.Fatal(err)
	}
	mustEquivalent(t, nt, nt2, "import")
}

func TestOptimizeScriptEquivalenceAndImprovement(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		nt := randomNet(rng)
		ref := nt.Clone()
		before := nt.Cost()
		after := nt.Optimize(DefaultScript())
		if err := nt.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if after > before {
			t.Fatalf("trial %d: optimization grew cost %d -> %d", trial, before, after)
		}
		mustEquivalent(t, ref, nt, "optimize")
	}
}

func randomNet(rng *rand.Rand) *Net {
	nt := NewNet("rn")
	inputs := []string{"a", "b", "c", "d", "e"}
	for _, in := range inputs {
		nt.AddInput(in)
	}
	pool := append([]string(nil), inputs...)
	nNodes := 4 + rng.Intn(8)
	for i := 0; i < nNodes; i++ {
		k := 2 + rng.Intn(3)
		fanins := map[string]bool{}
		for len(fanins) < k {
			fanins[pool[rng.Intn(len(pool))]] = true
		}
		var fl []string
		for _, p := range pool {
			if fanins[p] {
				fl = append(fl, p)
			}
		}
		name := "n" + string(rune('0'+i))
		nt.AddNode(name, fl, randomCover(rng, len(fl), 5))
		pool = append(pool, name)
	}
	nt.MarkOutput("y", pool[len(pool)-1], rng.Intn(2) == 1)
	nt.MarkOutput("z", pool[len(pool)-2], false)
	nt.SweepNet()
	// SweepNet may alias outputs straight to inputs in degenerate draws;
	// that is fine for equivalence testing.
	return nt
}

func TestLowerRejectsConstantNode(t *testing.T) {
	nt := NewNet("c")
	nt.AddInput("a")
	nt.AddNode("k", nil, sop.OneSOP(0))
	nt.AddNode("f", []string{"a", "k"}, mkSOP(2, [2][]int{{0, 1}, nil}))
	nt.MarkOutput("f", "f", false)
	if _, err := nt.Lower(); err == nil {
		t.Fatal("Lower accepted a constant node")
	}
}

func TestLowerUsesNetworkOps(t *testing.T) {
	// A factored node must become multiple gates with correct structure.
	nt := NewNet("g")
	for _, in := range []string{"a", "b", "c", "d"} {
		nt.AddInput(in)
	}
	// f = ab + ac + ad = a(b+c+d): expect an OR gate feeding an AND gate.
	nt.AddNode("f", []string{"a", "b", "c", "d"},
		mkSOP(4, [2][]int{{0, 1}, nil}, [2][]int{{0, 2}, nil}, [2][]int{{0, 3}, nil}))
	nt.MarkOutput("f", "f", false)
	nw, err := nt.Lower()
	if err != nil {
		t.Fatal(err)
	}
	s := nw.Stats()
	if s.Gates != 2 {
		t.Fatalf("lowered gates = %d, want 2 (AND over OR)", s.Gates)
	}
	if s.Depth != 2 {
		t.Fatalf("depth = %d, want 2", s.Depth)
	}
}

func TestFactorLargeCoverUsesLiteralPath(t *testing.T) {
	// A cover above the kernel bound must still factor correctly via
	// the literal-division fallback. 6-variable parity has 32 minterm
	// cubes... use 7 variables mixed to exceed 48 cubes.
	rng := rand.New(rand.NewSource(83))
	s := sop.SOP{NumVars: 7}
	seen := map[sop.Cube]bool{}
	for len(s.Cubes) < 60 {
		var c sop.Cube
		for v := 0; v < 7; v++ {
			switch rng.Intn(3) {
			case 0:
				c.Pos |= 1 << uint(v)
			case 1:
				c.Neg |= 1 << uint(v)
			}
		}
		if c.Literals() < 2 || c.Contradictory() || seen[c] {
			continue
		}
		seen[c] = true
		s.Cubes = append(s.Cubes, c)
	}
	s.MinimizeSCC()
	if len(s.Cubes) <= 48 {
		t.Skip("random draw collapsed below the kernel bound")
	}
	e, err := Factor(s)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 128; a++ {
		if EvalExpr(e, a) != s.Eval(a) {
			t.Fatalf("large-cover factoring wrong at %07b", a)
		}
	}
}

func TestExprString(t *testing.T) {
	s := mkSOP(3, [2][]int{{0, 1}, nil}, [2][]int{nil, {2}})
	e, err := Factor(s)
	if err != nil {
		t.Fatal(err)
	}
	str := e.String()
	if !strings.Contains(str, "+") || !strings.Contains(str, "'") {
		t.Fatalf("String rendering suspicious: %q", str)
	}
}
