// Package opt is a miniature MIS II: multi-level logic optimization over
// networks of sum-of-products nodes. The Chortle paper assumes "the
// boolean network to be mapped has already gone through logic
// optimization" by the standard MIS II script; this package provides
// that substrate — sweep, eliminate, kernel and cube extraction,
// resubstitution, and good-factor decomposition into the AND/OR network
// form (internal/network) both mappers consume.
//
// Area is measured in factored-form literals, MIS's cost function.
package opt

import (
	"fmt"
	"sort"

	"chortle/internal/sop"
)

// Node is one logic node: a single-output SOP function over named fanin
// signals. F's variable i is the signal Fanins[i].
type Node struct {
	Name   string
	Fanins []string
	F      sop.SOP
}

// Clone deep-copies the node.
func (n *Node) Clone() *Node {
	return &Node{Name: n.Name, Fanins: append([]string(nil), n.Fanins...), F: n.F.Clone()}
}

// faninIndex returns the index of signal in the fanin list, or -1.
func (n *Node) faninIndex(signal string) int {
	for i, f := range n.Fanins {
		if f == signal {
			return i
		}
	}
	return -1
}

// Output designates a network output signal, optionally inverted.
type Output struct {
	Name   string
	Signal string
	Invert bool
}

// Net is a multi-level logic network of SOP nodes.
type Net struct {
	Name    string
	Inputs  []string
	Outputs []Output

	nodes map[string]*Node
	order []string // node names in insertion order, for determinism
}

// NewNet returns an empty logic network.
func NewNet(name string) *Net {
	return &Net{Name: name, nodes: make(map[string]*Node)}
}

// AddInput declares a primary input signal.
func (nt *Net) AddInput(name string) {
	if nt.isSignal(name) {
		panic(fmt.Sprintf("opt: duplicate signal %q", name))
	}
	nt.Inputs = append(nt.Inputs, name)
}

// AddNode adds a logic node computing f (over fanins) named name.
func (nt *Net) AddNode(name string, fanins []string, f sop.SOP) *Node {
	if nt.isSignal(name) {
		panic(fmt.Sprintf("opt: duplicate signal %q", name))
	}
	if f.NumVars != len(fanins) {
		panic(fmt.Sprintf("opt: node %q SOP arity %d != %d fanins", name, f.NumVars, len(fanins)))
	}
	n := &Node{Name: name, Fanins: append([]string(nil), fanins...), F: f.Clone()}
	nt.nodes[name] = n
	nt.order = append(nt.order, name)
	return n
}

// MarkOutput declares signal (optionally inverted) as output name.
func (nt *Net) MarkOutput(name, signal string, invert bool) {
	nt.Outputs = append(nt.Outputs, Output{Name: name, Signal: signal, Invert: invert})
}

// Node returns the node producing signal, or nil for inputs/unknowns.
func (nt *Net) Node(name string) *Node { return nt.nodes[name] }

// isSignal reports whether name is already an input or node.
func (nt *Net) isSignal(name string) bool {
	if _, ok := nt.nodes[name]; ok {
		return true
	}
	for _, in := range nt.Inputs {
		if in == name {
			return true
		}
	}
	return false
}

// isInput reports whether name is a primary input.
func (nt *Net) isInput(name string) bool {
	for _, in := range nt.Inputs {
		if in == name {
			return true
		}
	}
	return false
}

// NodeNames returns the node names in deterministic (insertion) order,
// skipping deleted entries.
func (nt *Net) NodeNames() []string {
	out := make([]string, 0, len(nt.order))
	for _, name := range nt.order {
		if _, ok := nt.nodes[name]; ok {
			out = append(out, name)
		}
	}
	nt.order = out // compact lazily
	return append([]string(nil), out...)
}

// removeNode deletes a node (callers ensure nothing references it).
func (nt *Net) removeNode(name string) { delete(nt.nodes, name) }

// NumNodes returns the live node count.
func (nt *Net) NumNodes() int { return len(nt.nodes) }

// Cost returns the total SOP literal count, the MIS area metric.
func (nt *Net) Cost() int {
	total := 0
	for _, name := range nt.NodeNames() {
		total += nt.nodes[name].F.Literals()
	}
	return total
}

// TopoOrder returns node names with fanins before consumers, or an
// error on a combinational cycle or undefined signal.
func (nt *Net) TopoOrder() ([]string, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make(map[string]uint8, len(nt.nodes))
	var out []string
	var visit func(name string) error
	visit = func(name string) error {
		if nt.isInput(name) {
			return nil
		}
		n := nt.nodes[name]
		if n == nil {
			return fmt.Errorf("opt net %q: undefined signal %q", nt.Name, name)
		}
		switch state[name] {
		case gray:
			return fmt.Errorf("opt net %q: combinational cycle through %q", nt.Name, name)
		case black:
			return nil
		}
		state[name] = gray
		for _, f := range n.Fanins {
			if err := visit(f); err != nil {
				return err
			}
		}
		state[name] = black
		out = append(out, name)
		return nil
	}
	for _, o := range nt.Outputs {
		if err := visit(o.Signal); err != nil {
			return nil, err
		}
	}
	for _, name := range nt.NodeNames() {
		if err := visit(name); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Validate checks structural invariants.
func (nt *Net) Validate() error {
	for _, name := range nt.NodeNames() {
		n := nt.nodes[name]
		if n.F.NumVars != len(n.Fanins) {
			return fmt.Errorf("opt net %q: node %q arity mismatch", nt.Name, name)
		}
		seen := map[string]bool{}
		for _, f := range n.Fanins {
			if seen[f] {
				return fmt.Errorf("opt net %q: node %q repeats fanin %q", nt.Name, name, f)
			}
			seen[f] = true
			if !nt.isSignal(f) {
				return fmt.Errorf("opt net %q: node %q references undefined %q", nt.Name, name, f)
			}
		}
	}
	if len(nt.Outputs) == 0 {
		return fmt.Errorf("opt net %q: no outputs", nt.Name)
	}
	for _, o := range nt.Outputs {
		if !nt.isSignal(o.Signal) {
			return fmt.Errorf("opt net %q: output %q references undefined %q", nt.Name, o.Name, o.Signal)
		}
	}
	_, err := nt.TopoOrder()
	return err
}

// Clone deep-copies the network.
func (nt *Net) Clone() *Net {
	cp := NewNet(nt.Name)
	cp.Inputs = append([]string(nil), nt.Inputs...)
	cp.Outputs = append([]Output(nil), nt.Outputs...)
	for _, name := range nt.NodeNames() {
		n := nt.nodes[name]
		cp.nodes[name] = n.Clone()
		cp.order = append(cp.order, name)
	}
	return cp
}

// Simulate evaluates the net on 64 parallel patterns per input signal.
func (nt *Net) Simulate(assign map[string]uint64) (map[string]uint64, error) {
	order, err := nt.TopoOrder()
	if err != nil {
		return nil, err
	}
	val := make(map[string]uint64, len(order)+len(nt.Inputs))
	for _, in := range nt.Inputs {
		val[in] = assign[in]
	}
	for _, name := range order {
		n := nt.nodes[name]
		vals := make([]uint64, len(n.Fanins))
		for i, f := range n.Fanins {
			vals[i] = val[f]
		}
		val[name] = n.F.EvalWide(vals)
	}
	out := make(map[string]uint64, len(nt.Outputs))
	for _, o := range nt.Outputs {
		w := val[o.Signal]
		if o.Invert {
			w = ^w
		}
		out[o.Name] = w
	}
	return out, nil
}

// fanoutUsers returns, per signal, the names of nodes whose SOP support
// actually includes it, in deterministic order.
func (nt *Net) fanoutUsers() map[string][]string {
	users := make(map[string][]string)
	for _, name := range nt.NodeNames() {
		n := nt.nodes[name]
		support := n.F.Vars()
		for i, f := range n.Fanins {
			if support>>uint(i)&1 == 1 {
				users[f] = append(users[f], name)
			}
		}
	}
	return users
}

// outputSignals returns the set of signals designated as outputs.
func (nt *Net) outputSignals() map[string]bool {
	out := make(map[string]bool, len(nt.Outputs))
	for _, o := range nt.Outputs {
		out[o.Signal] = true
	}
	return out
}

// pruneFanins removes fanin signals outside the SOP support and remaps
// the cover accordingly.
func (n *Node) pruneFanins() {
	support := n.F.Vars()
	keep := make([]int, 0, len(n.Fanins))
	for i := range n.Fanins {
		if support>>uint(i)&1 == 1 {
			keep = append(keep, i)
		}
	}
	if len(keep) == len(n.Fanins) {
		return
	}
	remap := make([]int, n.F.NumVars)
	for i := range remap {
		remap[i] = -1
	}
	newFanins := make([]string, len(keep))
	for newIdx, oldIdx := range keep {
		remap[oldIdx] = newIdx
		newFanins[newIdx] = n.Fanins[oldIdx]
	}
	n.F = remapSOP(n.F, remap, len(keep))
	n.Fanins = newFanins
}

// remapSOP rewrites a cover onto a new variable space: old variable i
// becomes mapping[i] (-1 means the variable must be unused).
func remapSOP(s sop.SOP, mapping []int, newN int) sop.SOP {
	out := sop.SOP{NumVars: newN, Cubes: make([]sop.Cube, 0, len(s.Cubes))}
	for _, c := range s.Cubes {
		var nc sop.Cube
		for i := 0; i < s.NumVars; i++ {
			bit := uint64(1) << uint(i)
			if c.Pos&bit != 0 {
				if mapping[i] < 0 {
					panic("opt: remapSOP dropping a used variable")
				}
				nc.Pos |= 1 << uint(mapping[i])
			}
			if c.Neg&bit != 0 {
				if mapping[i] < 0 {
					panic("opt: remapSOP dropping a used variable")
				}
				nc.Neg |= 1 << uint(mapping[i])
			}
		}
		out.Cubes = append(out.Cubes, nc)
	}
	return out
}

// rebase expresses the node's cover over the given signal list (which
// must include all of the node's used fanins). Returns the rewritten
// cover; signals carries the index of each signal name.
func rebase(n *Node, signals map[string]int, numVars int) sop.SOP {
	mapping := make([]int, len(n.Fanins))
	for i, f := range n.Fanins {
		idx, ok := signals[f]
		if !ok {
			mapping[i] = -1 // allowed only if unused
		} else {
			mapping[i] = idx
		}
	}
	return remapSOP(n.F, mapping, numVars)
}

// signalIndex builds a deterministic signal->index map over the union of
// several fanin lists, returning also the ordered list.
func signalIndex(lists ...[]string) (map[string]int, []string) {
	seen := map[string]bool{}
	var ordered []string
	for _, l := range lists {
		for _, s := range l {
			if !seen[s] {
				seen[s] = true
				ordered = append(ordered, s)
			}
		}
	}
	idx := make(map[string]int, len(ordered))
	for i, s := range ordered {
		idx[s] = i
	}
	return idx, ordered
}

// sortedKeys returns map keys sorted, for deterministic iteration.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
