package opt

import (
	"fmt"
	"sort"
	"strings"

	"chortle/internal/sop"
)

// Multi-node extraction: find subexpressions (kernels and cubes) common
// to several covers, pull each one out as a new node, and re-express the
// covers by algebraic division — the gkx/gcx steps of the MIS standard
// script. Extraction is what produces the factored, level-0-kernel-leaf
// structure the paper's Section 4.1 observes in MIS-optimized networks.

// maxExtractCubes skips pathologically large covers during candidate
// collection (kernelling is exponential in the worst case).
const maxExtractCubes = 64

// globalSOP is a cover expressed over signal names instead of local
// variable indices, used to compare subexpressions across nodes.
type globalSOP struct {
	signals []string // sorted support
	f       sop.SOP  // over signals indices
}

// toGlobal translates a local cover (over n.Fanins) to a globalSOP.
func toGlobal(n *Node, local sop.SOP) globalSOP {
	used := local.Vars()
	var sigs []string
	for i, f := range n.Fanins {
		if used>>uint(i)&1 == 1 {
			sigs = append(sigs, f)
		}
	}
	sort.Strings(sigs)
	idx := make(map[string]int, len(sigs))
	for i, s := range sigs {
		idx[s] = i
	}
	mapping := make([]int, local.NumVars)
	for i, f := range n.Fanins {
		if used>>uint(i)&1 == 1 {
			mapping[i] = idx[f]
		} else {
			mapping[i] = -1
		}
	}
	g := globalSOP{signals: sigs, f: remapSOP(local, mapping, len(sigs))}
	g.f.Sort()
	return g
}

// key returns a canonical identity for the global cover.
func (g globalSOP) key() string {
	var sb strings.Builder
	for _, c := range g.f.Cubes {
		var lits []string
		for i, s := range g.signals {
			bit := uint64(1) << uint(i)
			if c.Pos&bit != 0 {
				lits = append(lits, s)
			}
			if c.Neg&bit != 0 {
				lits = append(lits, s+"'")
			}
		}
		sort.Strings(lits)
		sb.WriteString(strings.Join(lits, "."))
		sb.WriteByte('+')
	}
	return sb.String()
}

// rewriteWithDivisor divides node n by the divisor (a global cover whose
// signals must all be fanins of n or addable), introducing newSig for
// the quotient. Returns the literal delta (negative = improvement) and
// whether the rewrite happened.
func (nt *Net) rewriteWithDivisor(n *Node, div globalSOP, newSig string) (int, bool) {
	before := n.F.Literals()
	sigIdx, ordered := signalIndex(n.Fanins, div.signals, []string{newSig})
	if len(ordered) > sop.MaxVars {
		return 0, false
	}
	nF := rebase(n, sigIdx, len(ordered))
	mapping := make([]int, len(div.signals))
	for i, s := range div.signals {
		mapping[i] = sigIdx[s]
	}
	dF := remapSOP(div.f, mapping, len(ordered))
	q, r := nF.Div(dF)
	if q.IsZero() {
		return 0, false
	}
	lit := sop.PosLit(sigIdx[newSig], len(ordered))
	n.F = q.Mul(lit).Add(r)
	n.Fanins = ordered
	n.pruneFanins()
	return n.F.Literals() - before, true
}

// candidate is a subexpression seen in several nodes.
type candidate struct {
	g     globalSOP
	nodes map[string]bool
}

// heuristicValue estimates the literal saving of extracting c.
func (c *candidate) heuristicValue() int {
	occ := len(c.nodes)
	lits := c.g.f.Literals()
	return (occ - 1) * (lits - 1)
}

// ExtractKernels repeatedly extracts the most valuable kernel shared by
// two or more nodes (or re-usable within one), creating new nodes named
// prefix$kN. It stops when no extraction reduces the literal count or
// after maxIter extractions. Returns the total literal saving.
func (nt *Net) ExtractKernels(maxIter int) int {
	totalSaving := 0
	gensym := 0
	for iter := 0; iter < maxIter; iter++ {
		cands := make(map[string]*candidate)
		for _, name := range nt.NodeNames() {
			n := nt.nodes[name]
			if len(n.F.Cubes) < 2 || len(n.F.Cubes) > maxExtractCubes {
				continue
			}
			for _, k := range n.F.Kernels() {
				g := toGlobal(n, k.K)
				if g.f.Literals() < 2 {
					continue
				}
				key := g.key()
				c := cands[key]
				if c == nil {
					c = &candidate{g: g, nodes: map[string]bool{}}
					cands[key] = c
				}
				c.nodes[name] = true
			}
		}
		// Rank candidates; require presence in >= 2 nodes (single-node
		// re-factoring is Factor's job, not extraction's).
		var ranked []*candidate
		for _, key := range sortedKeys(cands) {
			c := cands[key]
			if len(c.nodes) >= 2 && c.heuristicValue() > 0 {
				ranked = append(ranked, c)
			}
		}
		if len(ranked) == 0 {
			return totalSaving
		}
		sort.Slice(ranked, func(i, j int) bool {
			vi, vj := ranked[i].heuristicValue(), ranked[j].heuristicValue()
			if vi != vj {
				return vi > vj
			}
			return ranked[i].g.key() < ranked[j].g.key()
		})

		applied := false
		for _, c := range ranked[:min(len(ranked), 8)] {
			gensym++
			newSig := fmt.Sprintf("%s$k%d", nt.Name, gensym)
			for nt.isSignal(newSig) {
				gensym++
				newSig = fmt.Sprintf("%s$k%d", nt.Name, gensym)
			}
			// Trial on clones of the affected nodes.
			affected := sortedKeys(c.nodes)
			backup := make(map[string]*Node, len(affected))
			delta := c.g.f.Literals() // cost of the new node
			any := false
			for _, name := range affected {
				n := nt.nodes[name]
				backup[name] = n.Clone()
				d, ok := nt.rewriteWithDivisor(n, c.g, newSig)
				if ok {
					any = true
					delta += d
				}
			}
			if !any || delta >= 0 {
				for name, old := range backup {
					nt.nodes[name] = old
				}
				continue
			}
			nt.AddNode(newSig, c.g.signals, c.g.f)
			totalSaving -= delta
			applied = true
			break
		}
		if !applied {
			return totalSaving
		}
	}
	return totalSaving
}

// ExtractCubes repeatedly extracts the most valuable multi-literal cube
// occurring in two or more product terms across the network, as new
// nodes named prefix$cN. Returns the total literal saving.
func (nt *Net) ExtractCubes(maxIter int) int {
	totalSaving := 0
	gensym := 0
	for iter := 0; iter < maxIter; iter++ {
		// Candidate cubes: pairwise intersections of cubes within each
		// node (cross-node sharing still surfaces because the same
		// intersection cube arises in each node's own pairs whenever it
		// is shared; counting below is global).
		type cubeCand struct {
			g     globalSOP
			count int
			nodes map[string]bool
		}
		cands := make(map[string]*cubeCand)
		addCand := func(n *Node, c sop.Cube) {
			if c.Literals() < 2 {
				return
			}
			g := toGlobal(n, sop.SOP{NumVars: n.F.NumVars, Cubes: []sop.Cube{c}})
			key := g.key()
			if cands[key] == nil {
				cands[key] = &cubeCand{g: g, nodes: map[string]bool{}}
			}
		}
		names := nt.NodeNames()
		for _, name := range names {
			n := nt.nodes[name]
			if len(n.F.Cubes) > maxExtractCubes {
				continue
			}
			for i := 0; i < len(n.F.Cubes); i++ {
				for j := i + 1; j < len(n.F.Cubes); j++ {
					addCand(n, n.F.Cubes[i].Common(n.F.Cubes[j]))
				}
			}
		}
		if len(cands) == 0 {
			return totalSaving
		}
		// Cap the candidate set before the (nodes x candidates) counting
		// pass: prefer bigger cubes, which save more when shared.
		if len(cands) > 512 {
			keys := sortedKeys(cands)
			sort.Slice(keys, func(i, j int) bool {
				li, lj := cands[keys[i]].g.f.Literals(), cands[keys[j]].g.f.Literals()
				if li != lj {
					return li > lj
				}
				return keys[i] < keys[j]
			})
			trimmed := make(map[string]*cubeCand, 512)
			for _, k := range keys[:512] {
				trimmed[k] = cands[k]
			}
			cands = trimmed
		}
		// Count global occurrences: cubes (in any node) divisible by the
		// candidate.
		for _, name := range names {
			n := nt.nodes[name]
			for _, cc := range cands {
				// Translate candidate into n's space if its signals are
				// all fanins of n.
				ok := true
				mask := sop.Cube{}
				for i, s := range cc.g.signals {
					fi := n.faninIndex(s)
					if fi < 0 {
						ok = false
						break
					}
					bit := uint64(1) << uint(i)
					if cc.g.f.Cubes[0].Pos&bit != 0 {
						mask.Pos |= 1 << uint(fi)
					}
					if cc.g.f.Cubes[0].Neg&bit != 0 {
						mask.Neg |= 1 << uint(fi)
					}
				}
				if !ok {
					continue
				}
				for _, c := range n.F.Cubes {
					if c.HasAllOf(mask) {
						cc.count++
						cc.nodes[name] = true
					}
				}
			}
		}
		var ranked []*cubeCand
		for _, key := range sortedKeys(cands) {
			cc := cands[key]
			lits := cc.g.f.Literals()
			if cc.count >= 2 && (cc.count-1)*(lits-1) > 1 {
				ranked = append(ranked, cc)
			}
		}
		if len(ranked) == 0 {
			return totalSaving
		}
		sort.Slice(ranked, func(i, j int) bool {
			li, lj := ranked[i].g.f.Literals(), ranked[j].g.f.Literals()
			vi := (ranked[i].count - 1) * (li - 1)
			vj := (ranked[j].count - 1) * (lj - 1)
			if vi != vj {
				return vi > vj
			}
			return ranked[i].g.key() < ranked[j].g.key()
		})

		applied := false
		for _, cc := range ranked[:min(len(ranked), 8)] {
			gensym++
			newSig := fmt.Sprintf("%s$c%d", nt.Name, gensym)
			for nt.isSignal(newSig) {
				gensym++
				newSig = fmt.Sprintf("%s$c%d", nt.Name, gensym)
			}
			affected := sortedKeys(cc.nodes)
			backup := make(map[string]*Node, len(affected))
			delta := cc.g.f.Literals()
			any := false
			for _, name := range affected {
				n := nt.nodes[name]
				backup[name] = n.Clone()
				d, ok := nt.rewriteWithDivisor(n, cc.g, newSig)
				if ok {
					any = true
					delta += d
				}
			}
			if !any || delta >= 0 {
				for name, old := range backup {
					nt.nodes[name] = old
				}
				continue
			}
			nt.AddNode(newSig, cc.g.signals, cc.g.f)
			totalSaving -= delta
			applied = true
			break
		}
		if !applied {
			return totalSaving
		}
	}
	return totalSaving
}

// transitiveFanins returns the set of signals in the transitive fanin
// cone of the named node (excluding itself).
func (nt *Net) transitiveFanins(name string) map[string]bool {
	seen := map[string]bool{}
	var walk func(s string)
	walk = func(s string) {
		n := nt.nodes[s]
		if n == nil {
			return
		}
		for _, f := range n.Fanins {
			if !seen[f] {
				seen[f] = true
				walk(f)
			}
		}
	}
	walk(name)
	return seen
}

// Resubstitute tries to re-express each node using each existing node as
// an algebraic divisor (positive phase), keeping rewrites that lower the
// literal count. Returns the total literal saving.
func (nt *Net) Resubstitute() int {
	totalSaving := 0
	names := nt.NodeNames()
	for _, dname := range names {
		d := nt.nodes[dname]
		if d == nil || len(d.F.Cubes) == 0 || len(d.F.Cubes) > maxExtractCubes {
			continue
		}
		dg := toGlobal(d, d.F)
		if dg.f.Literals() < 2 {
			continue
		}
		for _, mname := range names {
			if mname == dname {
				continue
			}
			m := nt.nodes[mname]
			if m == nil || m.faninIndex(dname) >= 0 {
				continue // already uses it
			}
			// All divisor signals must already feed m (the profitable
			// resub case), and adding edge d->m must not create a cycle.
			ok := true
			for _, s := range dg.signals {
				if m.faninIndex(s) < 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if nt.transitiveFanins(dname)[mname] {
				continue
			}
			backup := m.Clone()
			delta, done := nt.rewriteWithDivisor(m, dg, dname)
			if !done || delta >= 0 {
				nt.nodes[mname] = backup
				continue
			}
			totalSaving -= delta
		}
	}
	return totalSaving
}
