package opt

import (
	"fmt"

	"chortle/internal/network"
	"chortle/internal/sop"
)

// Lowering between the SOP-node world and the AND/OR network world.

// FromNetwork imports an AND/OR network as an SOP-node net (each gate
// becomes one node), the starting point for re-optimization.
func FromNetwork(nw *network.Network) (*Net, error) {
	order, err := nw.TopoSort()
	if err != nil {
		return nil, err
	}
	nt := NewNet(nw.Name)
	for _, in := range nw.Inputs {
		nt.AddInput(in.Name)
	}
	for _, n := range order {
		if n.IsInput() {
			continue
		}
		fanins := make([]string, len(n.Fanins))
		for i, f := range n.Fanins {
			fanins[i] = f.Node.Name
		}
		var f sop.SOP
		switch n.Op {
		case network.OpAnd:
			var c sop.Cube
			for i, fin := range n.Fanins {
				if fin.Invert {
					c.Neg |= 1 << uint(i)
				} else {
					c.Pos |= 1 << uint(i)
				}
			}
			f = sop.New(len(fanins), c)
		case network.OpOr:
			f = sop.SOP{NumVars: len(fanins)}
			for i, fin := range n.Fanins {
				var c sop.Cube
				if fin.Invert {
					c.Neg = 1 << uint(i)
				} else {
					c.Pos = 1 << uint(i)
				}
				f.Cubes = append(f.Cubes, c)
			}
		default:
			return nil, fmt.Errorf("opt: cannot import node %q with op %v", n.Name, n.Op)
		}
		nt.AddNode(n.Name, fanins, f)
	}
	for _, o := range nw.Outputs {
		nt.MarkOutput(o.Name, o.Node.Name, o.Invert)
	}
	return nt, nil
}

// Lower factors every node and emits the resulting AND/OR network with
// polarized edges — the form the technology mappers consume. Constant
// nodes are rejected (run SweepNet first; constant primary outputs have
// no gate-level realization in this representation).
func (nt *Net) Lower() (*network.Network, error) {
	order, err := nt.TopoOrder()
	if err != nil {
		return nil, err
	}
	nw := network.New(nt.Name)
	ref := make(map[string]network.Fanin, len(order)+len(nt.Inputs))
	for _, in := range nt.Inputs {
		ref[in] = network.Fanin{Node: nw.AddInput(in)}
	}

	gensym := 0
	fresh := func(base string) string {
		name := base
		for nw.Find(name) != nil {
			gensym++
			name = fmt.Sprintf("%s$f%d", base, gensym)
		}
		return name
	}

	for _, name := range order {
		n := nt.nodes[name]
		if n.F.IsZero() || n.F.IsOne() {
			return nil, fmt.Errorf("opt: node %q is constant; sweep the net before lowering", name)
		}
		expr, err := Factor(n.F)
		if err != nil {
			return nil, err
		}
		var build func(e *Expr, top bool) (network.Fanin, error)
		build = func(e *Expr, top bool) (network.Fanin, error) {
			switch e.Kind {
			case ExprLit:
				r, ok := ref[n.Fanins[e.Var]]
				if !ok {
					return network.Fanin{}, fmt.Errorf("opt: node %q references unlowered %q", name, n.Fanins[e.Var])
				}
				r.Invert = r.Invert != e.Neg
				return r, nil
			case ExprAnd, ExprOr:
				fins := make([]network.Fanin, 0, len(e.Kids))
				for _, k := range e.Kids {
					r, err := build(k, false)
					if err != nil {
						return network.Fanin{}, err
					}
					fins = append(fins, r)
				}
				op := network.OpAnd
				if e.Kind == ExprOr {
					op = network.OpOr
				}
				gname := fresh(name)
				if !top {
					gname = fresh(name + "$f")
				}
				return network.Fanin{Node: nw.AddGate(gname, op, fins...)}, nil
			}
			return network.Fanin{}, fmt.Errorf("opt: invalid expression kind %d", e.Kind)
		}
		r, err := build(expr, true)
		if err != nil {
			return nil, err
		}
		ref[name] = r
	}

	for _, o := range nt.Outputs {
		r, ok := ref[o.Signal]
		if !ok {
			return nil, fmt.Errorf("opt: output %q references unknown signal %q", o.Name, o.Signal)
		}
		nw.MarkOutput(o.Name, r.Node, r.Invert != o.Invert)
	}
	nw.Sweep()
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	return nw, nil
}
