package opt

import (
	"fmt"

	"chortle/internal/sop"
)

// Good-factoring: turn a two-level cover into a factored form (an
// alternating AND/OR expression tree over literals), choosing at each
// step the kernel divisor that saves the most literals. This is the
// "decomp" step that converts optimized SOP nodes into the AND/OR
// Boolean network the mappers consume; the MIS standard script's
// factored forms have exactly this shape.

// ExprKind discriminates factored-form expression nodes.
type ExprKind uint8

const (
	// ExprLit is a literal: fanin variable Var, negated if Neg.
	ExprLit ExprKind = iota
	// ExprAnd is a conjunction of Kids.
	ExprAnd
	// ExprOr is a disjunction of Kids.
	ExprOr
)

// Expr is a factored-form expression tree.
type Expr struct {
	Kind ExprKind
	Var  int // ExprLit only
	Neg  bool
	Kids []*Expr // ExprAnd / ExprOr only
}

// Literals counts the literal leaves of the expression.
func (e *Expr) Literals() int {
	if e.Kind == ExprLit {
		return 1
	}
	n := 0
	for _, k := range e.Kids {
		n += k.Literals()
	}
	return n
}

// String renders the factored form with a..z variable names.
func (e *Expr) String() string {
	switch e.Kind {
	case ExprLit:
		c := sop.Cube{}
		if e.Neg {
			c.Neg = 1 << uint(e.Var)
		} else {
			c.Pos = 1 << uint(e.Var)
		}
		return c.String()
	case ExprAnd:
		s := ""
		for _, k := range e.Kids {
			if k.Kind == ExprOr {
				s += "(" + k.String() + ")"
			} else {
				s += k.String()
			}
		}
		return s
	case ExprOr:
		s := ""
		for i, k := range e.Kids {
			if i > 0 {
				s += " + "
			}
			s += k.String()
		}
		return s
	}
	return "?"
}

// lit returns a literal expression.
func lit(v int, neg bool) *Expr { return &Expr{Kind: ExprLit, Var: v, Neg: neg} }

// group builds an AND/OR node, flattening same-kind children and
// collapsing single-child groups.
func group(kind ExprKind, kids ...*Expr) *Expr {
	var flat []*Expr
	for _, k := range kids {
		if k == nil {
			continue
		}
		if k.Kind == kind {
			flat = append(flat, k.Kids...)
		} else {
			flat = append(flat, k)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &Expr{Kind: kind, Kids: flat}
}

// cubeExpr renders one cube as an AND of literals.
func cubeExpr(c sop.Cube, n int) *Expr {
	var kids []*Expr
	for i := 0; i < n; i++ {
		bit := uint64(1) << uint(i)
		if c.Pos&bit != 0 {
			kids = append(kids, lit(i, false))
		}
		if c.Neg&bit != 0 {
			kids = append(kids, lit(i, true))
		}
	}
	if len(kids) == 0 {
		return nil // the universal cube; callers handle constants
	}
	return group(ExprAnd, kids...)
}

// Factor converts a non-constant cover into a factored form.
func Factor(s sop.SOP) (*Expr, error) {
	if s.IsZero() || s.IsOne() {
		return nil, fmt.Errorf("opt: cannot factor the constant cover %v", s)
	}
	return factorRec(s), nil
}

func factorRec(s sop.SOP) *Expr {
	if len(s.Cubes) == 1 {
		return cubeExpr(s.Cubes[0], s.NumVars)
	}
	// If no literal repeats, the cover is its own best factored form.
	if noRepeatedLiteral(s) {
		kids := make([]*Expr, 0, len(s.Cubes))
		for _, c := range s.Cubes {
			kids = append(kids, cubeExpr(c, s.NumVars))
		}
		return group(ExprOr, kids...)
	}
	// Pull out the common cube first: s = cc * rest.
	if cc := s.CommonCube(); cc != sop.One {
		rest, _ := s.MakeCubeFree()
		return group(ExprAnd, cubeExpr(cc, s.NumVars), factorRec(rest))
	}
	// Best kernel divisor by realized literal saving. Kernel
	// enumeration is exponential in the worst case; above this bound
	// fall straight to literal division (large covers come from PLA
	// import, where the quick factor is what espresso-era flows used).
	const maxFactorKernelCubes = 48
	if len(s.Cubes) > maxFactorKernelCubes {
		return factorByLiteral(s)
	}
	var bestK sop.SOP
	var bestQ, bestR sop.SOP
	bestSaving := 0
	for _, k := range s.Kernels() {
		if k.K.Equal(s) {
			continue
		}
		q, r := s.Div(k.K)
		if q.IsZero() {
			continue
		}
		saving := s.Literals() - (k.K.Literals() + q.Literals() + r.Literals())
		if saving > bestSaving {
			bestSaving, bestK, bestQ, bestR = saving, k.K, q, r
		}
	}
	if bestSaving > 0 {
		dq := group(ExprAnd, factorRec(bestK), factorRec(bestQ))
		if bestR.IsZero() {
			return dq
		}
		return group(ExprOr, dq, factorRec(bestR))
	}
	return factorByLiteral(s)
}

// factorByLiteral divides by the most frequent literal — the quick
// factoring fallback, linear per level.
func factorByLiteral(s sop.SOP) *Expr {
	j := mostFrequentLiteral(s)
	lc := litCubeOf(j, s.NumVars)
	q, r := s.DivCube(lc)
	le := lit(j%s.NumVars, j >= s.NumVars)
	dq := group(ExprAnd, le, factorRec(q))
	if r.IsZero() {
		return dq
	}
	return group(ExprOr, dq, factorRec(r))
}

// noRepeatedLiteral reports whether every literal occurs in at most one
// cube (the shape of a level-0 kernel or a plain disjoint sum).
func noRepeatedLiteral(s sop.SOP) bool {
	var seenPos, seenNeg uint64
	for _, c := range s.Cubes {
		if c.Pos&seenPos != 0 || c.Neg&seenNeg != 0 {
			return false
		}
		seenPos |= c.Pos
		seenNeg |= c.Neg
	}
	return true
}

// mostFrequentLiteral returns the literal index (0..2n-1) occurring in
// the most cubes; ties go to the lowest index.
func mostFrequentLiteral(s sop.SOP) int {
	best, bestCount := 0, -1
	for j := 0; j < 2*s.NumVars; j++ {
		lc := litCubeOf(j, s.NumVars)
		count := 0
		for _, c := range s.Cubes {
			if c.HasAllOf(lc) {
				count++
			}
		}
		if count > bestCount {
			best, bestCount = j, count
		}
	}
	return best
}

func litCubeOf(j, n int) sop.Cube {
	if j < n {
		return sop.Cube{Pos: 1 << uint(j)}
	}
	return sop.Cube{Neg: 1 << uint(j-n)}
}

// EvalExpr evaluates a factored form on an assignment (bit i = var i).
func EvalExpr(e *Expr, assign uint64) bool {
	switch e.Kind {
	case ExprLit:
		v := assign>>uint(e.Var)&1 == 1
		return v != e.Neg
	case ExprAnd:
		for _, k := range e.Kids {
			if !EvalExpr(k, assign) {
				return false
			}
		}
		return true
	case ExprOr:
		for _, k := range e.Kids {
			if EvalExpr(k, assign) {
				return true
			}
		}
		return false
	}
	return false
}
