package opt

import (
	"chortle/internal/sop"
)

// Node elimination (MIS "eliminate"): collapse low-value nodes into
// their consumers. The value of a node estimates the literal growth its
// collapse would cause: with l literals in the node and u literal
// occurrences of its signal among consumers, collapsing replaces u
// literals by roughly u*l, while deleting the node saves l. Nodes with
// value = u*l - u - l at or below the threshold are eliminated; the MIS
// standard script runs eliminate with small thresholds to remove the
// trivia left by translation and extraction.

// maxCollapseSupport bounds the fanin count of a consumer after a
// collapse. Beyond this the substitution (and its complement) would
// blow up; such collapses are skipped.
const maxCollapseSupport = 24

// literalUses counts, per signal, the literal occurrences (both phases)
// across all node covers.
func (nt *Net) literalUses() map[string]int {
	uses := make(map[string]int)
	for _, name := range nt.NodeNames() {
		n := nt.nodes[name]
		for _, c := range n.F.Cubes {
			for i, f := range n.Fanins {
				bit := uint64(1) << uint(i)
				if c.Pos&bit != 0 {
					uses[f]++
				}
				if c.Neg&bit != 0 {
					uses[f]++
				}
			}
		}
	}
	return uses
}

// collapseInto substitutes the definition of src into the consumer dst,
// removing src from dst's fanins. Reports whether the substitution was
// performed (it is skipped when it would exceed support bounds).
func (nt *Net) collapseInto(src, dst *Node) bool {
	di := dst.faninIndex(src.Name)
	if di < 0 {
		return false
	}
	sigIdx, ordered := signalIndex(dst.Fanins, src.Fanins)
	if len(ordered) > maxCollapseSupport || len(ordered) > sop.MaxVars {
		return false
	}
	dstF := rebase(dst, sigIdx, len(ordered))
	srcF := rebase(src, sigIdx, len(ordered))
	newF := dstF.Substitute(sigIdx[src.Name], srcF)
	dst.Fanins = ordered
	dst.F = newF
	dst.pruneFanins()
	return true
}

// Eliminate collapses every node whose value is at or below threshold
// into its consumers, repeating until stable. Output signals are never
// deleted (their nodes must survive), but they may still be substituted
// into consumers when profitable. Returns the number of nodes removed.
func (nt *Net) Eliminate(threshold int) int {
	removed := 0
	outputs := nt.outputSignals()
	for changed := true; changed; {
		changed = false
		uses := nt.literalUses()
		for _, name := range nt.NodeNames() {
			n := nt.nodes[name]
			if outputs[name] {
				continue
			}
			u := uses[name]
			if u == 0 {
				// Dead node: no consumer and not an output.
				nt.removeNode(name)
				removed++
				changed = true
				continue
			}
			l := n.F.Literals()
			value := u*l - u - l
			if value > threshold {
				continue
			}
			// The value formula is an estimate (negative-phase collapses
			// complement the node function, which can blow up), so the
			// collapse is applied trially and rolled back if the real
			// literal growth exceeds the threshold.
			users := nt.fanoutUsers()[name]
			backup := make(map[string]*Node, len(users))
			delta := -l // deleting the node saves its literals
			ok := true
			for _, uname := range users {
				u := nt.nodes[uname]
				backup[uname] = u.Clone()
				before := u.F.Literals()
				if !nt.collapseInto(n, u) {
					ok = false
					break
				}
				delta += u.F.Literals() - before
			}
			if !ok || delta > threshold {
				for uname, old := range backup {
					nt.nodes[uname] = old
				}
				continue
			}
			nt.removeNode(name)
			removed++
			changed = true
			uses = nt.literalUses() // consumers changed
		}
	}
	return removed
}

// SweepNet removes dead nodes, propagates constants, bypasses buffer
// nodes (single positive literal covers), and containment-minimizes
// every cover. Returns the number of nodes removed.
func (nt *Net) SweepNet() int {
	removed := 0
	for changed := true; changed; {
		changed = false
		// Constant and buffer propagation.
		for _, name := range nt.NodeNames() {
			n := nt.nodes[name]
			n.F.MinimizeSCC()
			n.pruneFanins()
		}
		for _, name := range nt.NodeNames() {
			n := nt.nodes[name]
			var constVal *bool
			var alias *struct {
				sig string
				inv bool
			}
			switch {
			case n.F.IsZero():
				v := false
				constVal = &v
			case n.F.IsOne():
				v := true
				constVal = &v
			case len(n.F.Cubes) == 1 && n.F.Cubes[0].Literals() == 1:
				c := n.F.Cubes[0]
				for i, f := range n.Fanins {
					bit := uint64(1) << uint(i)
					if c.Pos&bit != 0 {
						alias = &struct {
							sig string
							inv bool
						}{f, false}
					} else if c.Neg&bit != 0 {
						alias = &struct {
							sig string
							inv bool
						}{f, true}
					}
				}
			}
			if constVal == nil && alias == nil {
				continue
			}
			// Rewrite consumers.
			for _, uname := range nt.fanoutUsers()[name] {
				u := nt.nodes[uname]
				i := u.faninIndex(name)
				if i < 0 {
					continue
				}
				switch {
				case constVal != nil:
					var g sop.SOP
					if *constVal {
						g = sop.OneSOP(u.F.NumVars)
					} else {
						g = sop.Zero(u.F.NumVars)
					}
					u.F = u.F.Substitute(i, g)
				case alias.sig == uname:
					continue // self-reference would be a cycle; leave it
				default:
					// Replace literal n by (possibly inverted) alias.
					sigIdx, ordered := signalIndex(u.Fanins, []string{alias.sig})
					if len(ordered) > sop.MaxVars {
						continue
					}
					uf := rebase(u, sigIdx, len(ordered))
					g := sop.PosLit(sigIdx[alias.sig], len(ordered))
					if alias.inv {
						g = sop.NegLit(sigIdx[alias.sig], len(ordered))
					}
					u.F = uf.Substitute(sigIdx[name], g)
					u.Fanins = ordered
				}
				u.pruneFanins()
				changed = true
			}
			// Rewrite outputs referencing this node.
			for oi := range nt.Outputs {
				o := &nt.Outputs[oi]
				if o.Signal != name {
					continue
				}
				switch {
				case constVal != nil:
					// Constant outputs stay as a constant node; keep it.
				case alias != nil:
					o.Signal = alias.sig
					o.Invert = o.Invert != alias.inv
					changed = true
				}
			}
		}
		// Dead-node removal.
		outputs := nt.outputSignals()
		users := nt.fanoutUsers()
		for _, name := range nt.NodeNames() {
			if !outputs[name] && len(users[name]) == 0 {
				nt.removeNode(name)
				removed++
				changed = true
			}
		}
	}
	return removed
}
