package opt

// The "standard script". The paper: "The input networks for both
// mappers were optimized by the standard MIS II script." Our equivalent
// runs the same pass structure: clean-up, node elimination, iterated
// common-divisor extraction (kernels then cubes), resubstitution, and a
// final clean-up. The result is a literal-minimized multi-level net
// whose factored forms have level-0 kernel leaves.

// ScriptOptions tunes the standard optimization script.
type ScriptOptions struct {
	// EliminateThreshold is the node-value cutoff for collapsing
	// (MIS eliminate threshold; 0 collapses only value<=0 nodes).
	EliminateThreshold int
	// MaxKernelIters bounds kernel extractions per round.
	MaxKernelIters int
	// MaxCubeIters bounds cube extractions per round.
	MaxCubeIters int
	// Rounds repeats the extract/resub cycle.
	Rounds int
	// Resubstitute enables the algebraic resubstitution pass.
	Resubstitute bool
}

// DefaultScript mirrors the shape of the MIS II standard script.
func DefaultScript() ScriptOptions {
	return ScriptOptions{
		EliminateThreshold: 0,
		MaxKernelIters:     200,
		MaxCubeIters:       200,
		Rounds:             2,
		Resubstitute:       true,
	}
}

// Optimize runs the standard script in place and returns the final
// literal count.
func (nt *Net) Optimize(o ScriptOptions) int {
	nt.SweepNet()
	nt.Eliminate(o.EliminateThreshold)
	nt.SweepNet()
	for r := 0; r < o.Rounds; r++ {
		gained := 0
		gained += nt.ExtractKernels(o.MaxKernelIters)
		gained += nt.ExtractCubes(o.MaxCubeIters)
		if o.Resubstitute {
			gained += nt.Resubstitute()
		}
		nt.SweepNet()
		if gained == 0 {
			break
		}
	}
	nt.Eliminate(o.EliminateThreshold)
	nt.SweepNet()
	return nt.Cost()
}
