package mismap

import (
	"fmt"

	"chortle/internal/forest"
	"chortle/internal/lut"
	"chortle/internal/mislib"
	"chortle/internal/network"
	"chortle/internal/truth"
)

// Result is the outcome of a baseline mapping run.
type Result struct {
	Circuit *lut.Circuit
	LUTs    int
	Trees   int
	// DuplicatedNodes counts gate copies made by the greedy fanout
	// heuristic (zero when disabled).
	DuplicatedNodes int
}

// Options tunes the baseline mapper.
type Options struct {
	// GreedyFanoutDup models the MIS II behaviour the paper describes in
	// Section 4.2: "the greedy algorithm used by MIS to deal with nodes
	// with fanout greater than one tends to duplicate logic at fanout
	// nodes. We have found that it is difficult to realize any savings
	// by this greedy approach." Small multi-fanout gates are copied
	// into each consumer's tree before covering; the copies sometimes
	// merge into cells but usually just replicate area.
	GreedyFanoutDup bool
	// MaxDupFanout bounds how widely shared a gate may be and still get
	// duplicated (0 = unlimited). Highly shared gates replicate too
	// much area for even a greedy heuristic.
	MaxDupFanout int
}

// DefaultOptions reproduces the paper's MIS II configuration.
func DefaultOptions() Options { return Options{GreedyFanoutDup: true, MaxDupFanout: 3} }

// Map covers the network with cells from the library using the paper's
// MIS II configuration. See MapWithOptions.
func Map(input *network.Network, lib mislib.Library) (*Result, error) {
	return MapWithOptions(input, lib, DefaultOptions())
}

// MapWithOptions covers the network with cells from the library, K-input
// LUT cost one per cell and inverters free, returning the mapped
// circuit. The input network is not modified.
func MapWithOptions(input *network.Network, lib mislib.Library, o Options) (*Result, error) {
	if err := input.Validate(); err != nil {
		return nil, err
	}
	nw := input.Clone()
	nw.Sweep()
	dups := 0
	if o.GreedyFanoutDup {
		dups = greedyFanoutDup(nw, lib.K, o.MaxDupFanout)
	}
	f, err := forest.Decompose(nw)
	if err != nil {
		return nil, err
	}

	m := &emitter{
		lib: &lib,
		ckt: lut.New(nw.Name, lib.K),
		sig: make(map[*network.Node]string),
		seq: 0,
	}
	for _, in := range nw.Inputs {
		m.ckt.AddInput(in.Name)
		m.sig[in] = in.Name
	}

	for _, root := range f.Roots {
		leafIntern := make(map[*network.Node]*subjNode)
		leafNode := func(n *network.Node) *subjNode {
			if s, ok := leafIntern[n]; ok {
				return s
			}
			sig, ok := m.sig[n]
			if !ok {
				sig = "?" // resolved later; roots are realized in order
			}
			s := &subjNode{leaf: true, signal: sig}
			leafIntern[n] = s
			return s
		}
		subj, err := buildSubject(root, f.IsLeafEdge, leafNode)
		if err != nil {
			return nil, err
		}
		computeBest(subj, m.lib)
		if subj.best >= 1<<29 {
			return nil, fmt.Errorf("mismap: tree %q has no cover in the K=%d library", root.Name, lib.K)
		}
		sig, err := m.emit(subj, root.Name)
		if err != nil {
			return nil, err
		}
		m.sig[root] = sig
	}

	for _, o := range nw.Outputs {
		sig, ok := m.sig[o.Node]
		if !ok {
			return nil, fmt.Errorf("mismap: output %q driver unmapped", o.Name)
		}
		m.ckt.MarkOutput(o.Name, sig, o.Invert)
	}
	for _, l := range nw.Latches {
		sig, ok := m.sig[l.D]
		if !ok {
			return nil, fmt.Errorf("mismap: latch %q driver unmapped", l.Q)
		}
		m.ckt.AddLatch(l.Q, sig, l.DInv, l.Init)
	}
	if err := m.ckt.Validate(); err != nil {
		return nil, fmt.Errorf("mismap: mapped circuit invalid: %w", err)
	}
	return &Result{Circuit: m.ckt, LUTs: m.ckt.Count(), Trees: len(f.Roots), DuplicatedNodes: dups}, nil
}

// greedyFanoutDup copies small multi-fanout gates into each consumer,
// dissolving tree boundaries the way the paper describes MIS II doing.
// Only gates small enough to merge into a K-input cell are copied.
func greedyFanoutDup(nw *network.Network, k, maxFanout int) int {
	nw.Reindex()
	counts := nw.FanoutCounts()
	gensym := 0
	fresh := func(base string) string {
		for {
			gensym++
			name := fmt.Sprintf("%s$g%d", base, gensym)
			if nw.Find(name) == nil {
				return name
			}
		}
	}
	gates := make([]*network.Node, 0, len(nw.Nodes))
	for _, n := range nw.Nodes {
		if !n.IsInput() {
			gates = append(gates, n)
		}
	}
	dups := 0
	for _, n := range gates {
		// Only two-input gates are considered: wider copies replicate
		// too much logic to ever pay off, and (per the paper) even this
		// rarely realizes savings.
		if len(n.Fanins) > 2 || len(n.Fanins) >= k {
			continue
		}
		if counts[n.ID] < 2 || (maxFanout > 0 && counts[n.ID] > maxFanout) {
			continue
		}
		for _, consumer := range gates {
			if consumer == n {
				continue
			}
			// Greedy absorbability check: copy only where a single
			// K-input cell could cover the consumer together with the
			// copy (the copy replaces one consumer input with its own
			// fanins).
			if len(consumer.Fanins)+len(n.Fanins)-1 > k {
				continue
			}
			for i, f := range consumer.Fanins {
				if f.Node != n {
					continue
				}
				cp := nw.AddGate(fresh(n.Name), n.Op, append([]network.Fanin(nil), n.Fanins...)...)
				consumer.Fanins[i] = network.Fanin{Node: cp, Invert: f.Invert}
				dups++
			}
		}
	}
	nw.Sweep()
	return dups
}

type emitter struct {
	lib *mislib.Library
	ckt *lut.Circuit
	sig map[*network.Node]string
	seq int
}

func (m *emitter) fresh(base string) string {
	for {
		m.seq++
		name := fmt.Sprintf("%s$m%d", base, m.seq)
		if m.ckt.Find(name) == nil {
			return name
		}
	}
}

// emit realizes the signal of an internal subject node from its chosen
// match, memoized, returning the signal name.
func (m *emitter) emit(n *subjNode, base string) (string, error) {
	if n.leaf {
		if n.signal == "?" {
			return "", fmt.Errorf("mismap: unresolved leaf signal under %q", base)
		}
		return n.signal, nil
	}
	if n.emitted != "" {
		return n.emitted, nil
	}
	rec := n.chosen
	if rec == nil {
		return "", fmt.Errorf("mismap: no match chosen under %q", base)
	}
	// Distinct bound nodes become the LUT inputs.
	var inputs []string
	inputIdx := map[*subjNode]int{}
	var order []*subjNode
	for v := 0; v < rec.cell.Vars; v++ {
		b := rec.binding[v]
		if _, ok := inputIdx[b.n]; ok {
			continue
		}
		sig, err := m.emit(b.n, base)
		if err != nil {
			return "", err
		}
		inputIdx[b.n] = len(inputs)
		inputs = append(inputs, sig)
		order = append(order, b.n)
	}
	_ = order
	// Table over the distinct inputs: variable v of the cell reads input
	// pin inputIdx[binding[v].n], inverted if the binding phase is set;
	// the whole output is inverted if matched at phase 1.
	table := truth.FromFunc(len(inputs), func(assign uint) bool {
		var cellAssign uint
		for v := 0; v < rec.cell.Vars; v++ {
			b := rec.binding[v]
			val := assign>>uint(inputIdx[b.n])&1 == 1
			if b.phase {
				val = !val
			}
			if val {
				cellAssign |= 1 << uint(v)
			}
		}
		out := rec.cell.F.Eval(cellAssign)
		if rec.outPhase {
			out = !out
		}
		return out
	})
	name := base
	if m.ckt.Find(name) != nil || m.hasInput(name) {
		name = m.fresh(base)
	}
	m.ckt.AddLUT(name, inputs, table)
	n.emitted = name
	return name, nil
}

func (m *emitter) hasInput(name string) bool {
	for _, in := range m.ckt.Inputs {
		if in == name {
			return true
		}
	}
	return false
}
