// Package mismap is the MIS II-style baseline technology mapper the
// paper compares Chortle against (Section 4): a DAGON-style tree
// coverer. Each fanout-free tree is decomposed into a binary AND/OR
// subject tree with polarized edges; library cells (internal/mislib)
// are matched structurally — through De Morgan phase flips, with
// leaf-DAG patterns for XOR-shaped cells — and a dynamic program picks
// the minimum-cost cover. Inverters are free, the concession the paper
// grants MIS ("we do not count the inverters used by MIS as logic
// blocks").
package mismap

import (
	"fmt"

	"chortle/internal/network"
)

// subjNode is a node of the binarized subject tree. Leaves reference a
// finished signal (primary input or another tree's mapped root);
// internal nodes are two-input AND/OR gates with polarized child edges.
type subjNode struct {
	leaf   bool
	signal string // leaf only: realized signal name

	op         network.Op
	l, r       *subjNode
	lInv, rInv bool

	// DP state.
	best   int32
	chosen *matchRec

	// Emission memo.
	emitted string
}

// subjEdge is a polarized reference used during construction.
type subjEdge struct {
	n   *subjNode
	inv bool
}

// buildSubject binarizes the fanout-free tree rooted at root into a
// subject tree. isLeafEdge decides where the tree stops; leafNode
// interns leaf subject nodes per source so that a multi-fanout source
// feeding the tree twice becomes a shared leaf (enabling XOR-style
// leaf-DAG matches, which is how MIS wins the paper's K=2 XOR cases).
func buildSubject(root *network.Node, isLeafEdge func(*network.Node) bool, leafNode func(*network.Node) *subjNode) (*subjNode, error) {
	var build func(n *network.Node) (*subjNode, error)
	build = func(n *network.Node) (*subjNode, error) {
		if n.IsInput() {
			return nil, fmt.Errorf("mismap: cannot build subject at input %q", n.Name)
		}
		edges := make([]subjEdge, 0, len(n.Fanins))
		for _, f := range n.Fanins {
			if isLeafEdge(f.Node) {
				edges = append(edges, subjEdge{n: leafNode(f.Node), inv: f.Invert})
				continue
			}
			sub, err := build(f.Node)
			if err != nil {
				return nil, err
			}
			edges = append(edges, subjEdge{n: sub, inv: f.Invert})
		}
		if len(edges) == 1 {
			// A buffer/inverter gate (should be swept away); absorb the
			// polarity by wrapping in a trivial OR is wrong — instead
			// reject, since mappers run on swept networks.
			return nil, fmt.Errorf("mismap: gate %q has a single fanin; sweep the network first", n.Name)
		}
		return balanceSubject(n.Op, edges), nil
	}
	return build(root)
}

// balanceSubject folds a polarized edge list into a balanced binary
// tree of op nodes.
func balanceSubject(op network.Op, edges []subjEdge) *subjNode {
	if len(edges) == 2 {
		return &subjNode{op: op, l: edges[0].n, lInv: edges[0].inv, r: edges[1].n, rInv: edges[1].inv}
	}
	mid := (len(edges) + 1) / 2
	var left, right subjEdge
	if mid == 1 {
		left = edges[0]
	} else {
		left = subjEdge{n: balanceSubject(op, edges[:mid])}
	}
	if len(edges)-mid == 1 {
		right = edges[mid]
	} else {
		right = subjEdge{n: balanceSubject(op, edges[mid:])}
	}
	return &subjNode{op: op, l: left.n, lInv: left.inv, r: right.n, rInv: right.inv}
}

// postorder lists internal nodes, children first.
func postorder(root *subjNode) []*subjNode {
	var out []*subjNode
	var walk func(n *subjNode)
	walk = func(n *subjNode) {
		if n == nil || n.leaf {
			return
		}
		walk(n.l)
		walk(n.r)
		out = append(out, n)
	}
	walk(root)
	return out
}
