package mismap

import (
	"chortle/internal/mislib"
	"chortle/internal/network"
)

// Structural pattern matching with De Morgan phase propagation.
//
// A pattern is matched against a polarized subject reference (node,
// inv): an AND pattern node matches an AND subject node directly, or an
// OR subject node seen through an inversion (¬(a+b) = ¬a·¬b), pushing
// the inversion onto the child edges. Pattern leaves bind (node, phase)
// pairs; a repeated pattern variable (leaf-DAG cells such as XOR) must
// bind the identical pair. All complete matches are enumerated — child
// order is tried both ways at every binary node — because different
// bindings cost differently.

// boundRef is a pattern variable binding: the subject node whose value
// (XOR phase) feeds the variable.
type boundRef struct {
	n     *subjNode
	phase bool
}

// matchRec is one complete match of a cell at a subject node.
type matchRec struct {
	cell     *mislib.Cell
	outPhase bool
	binding  []boundRef
}

// matchState carries the in-progress binding.
type matchState struct {
	binding []boundRef
	bound   []bool
}

// matchAll enumerates every binding of pattern p against the polarized
// subject reference (n, inv), invoking yield for each complete match of
// the whole pattern (yield is called by the caller-level driver).
func matchAll(p *mislib.PatNode, n *subjNode, inv bool, st *matchState, yield func()) {
	if p.Leaf {
		ref := boundRef{n: n, phase: inv != p.Neg}
		if st.bound[p.Var] {
			if st.binding[p.Var] == ref {
				yield()
			}
			return
		}
		st.bound[p.Var] = true
		st.binding[p.Var] = ref
		yield()
		st.bound[p.Var] = false
		return
	}
	if n.leaf {
		return // structural pattern deeper than the subject
	}
	wantOp := n.op
	if inv {
		wantOp = n.op.Dual()
	}
	if p.Op != wantOp {
		return
	}
	lInv, rInv := n.lInv != inv, n.rInv != inv
	// Direct order, then swapped (AND/OR are commutative).
	matchAll(p.L, n.l, lInv, st, func() {
		matchAll(p.R, n.r, rInv, st, yield)
	})
	matchAll(p.L, n.r, rInv, st, func() {
		matchAll(p.R, n.l, lInv, st, yield)
	})
}

// computeBest runs the tree-covering DP over the subject in postorder.
func computeBest(root *subjNode, lib *mislib.Library) {
	for _, n := range postorder(root) {
		n.best = 1 << 29
		n.chosen = nil
		for ci := range lib.Cells {
			cell := &lib.Cells[ci]
			for _, outPhase := range []bool{false, true} {
				st := &matchState{
					binding: make([]boundRef, cell.Vars),
					bound:   make([]bool, cell.Vars),
				}
				matchAll(cell.Pattern, n, outPhase, st, func() {
					// Cost: the cell plus realizing each distinct bound
					// subject node (phases are free inverters).
					cost := int32(cell.Cost)
					seen := map[*subjNode]bool{}
					for v := 0; v < cell.Vars; v++ {
						b := st.binding[v]
						if seen[b.n] {
							continue
						}
						seen[b.n] = true
						if !b.n.leaf {
							cost += b.n.best
						}
					}
					if cost < n.best {
						n.best = cost
						rec := &matchRec{cell: cell, outPhase: outPhase,
							binding: append([]boundRef(nil), st.binding...)}
						n.chosen = rec
					}
				})
			}
		}
	}
}

// opDual is a tiny safety net: ensure network.Op.Dual is what the
// matcher assumes (compile-time documentation).
var _ = network.OpAnd.Dual
