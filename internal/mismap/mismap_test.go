package mismap_test

import (
	"math/rand"
	"testing"

	"chortle/internal/core"
	"chortle/internal/mislib"
	"chortle/internal/mismap"
	"chortle/internal/network"
	"chortle/internal/verify"
)

func figure1() *network.Network {
	nw := network.New("figure1")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	c := nw.AddInput("c")
	d := nw.AddInput("d")
	e := nw.AddInput("e")
	g1 := nw.AddGate("g1", network.OpAnd, network.Fanin{Node: a}, network.Fanin{Node: b})
	g2 := nw.AddGate("g2", network.OpOr, network.Fanin{Node: c, Invert: true}, network.Fanin{Node: d})
	g3 := nw.AddGate("g3", network.OpOr, network.Fanin{Node: g1}, network.Fanin{Node: g2})
	g4 := nw.AddGate("g4", network.OpAnd, network.Fanin{Node: g2}, network.Fanin{Node: e})
	nw.MarkOutput("y", g3, false)
	nw.MarkOutput("z", g4, true)
	return nw
}

func TestMapFigure1AllK(t *testing.T) {
	nw := figure1()
	for k := 2; k <= 5; k++ {
		lib, err := mislib.ForK(k)
		if err != nil {
			t.Fatal(err)
		}
		// Without fanout duplication the three trees are covered
		// independently, so three LUTs is a hard lower bound.
		res, err := mismap.MapWithOptions(nw, lib, mismap.Options{})
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if err := verify.NetworkVsCircuit(nw, res.Circuit, 0, 1); err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if res.LUTs < 3 {
			t.Fatalf("K=%d: %d LUTs beats the 3-tree lower bound", k, res.LUTs)
		}
		// The paper-default greedy duplication must stay functionally
		// correct (here it even merges g2 into both consumers).
		dres, err := mismap.Map(nw, lib)
		if err != nil {
			t.Fatalf("K=%d dup: %v", k, err)
		}
		if err := verify.NetworkVsCircuit(nw, dres.Circuit, 0, 1); err != nil {
			t.Fatalf("K=%d dup: %v", k, err)
		}
	}
}

func TestXORReconvergence(t *testing.T) {
	// y = a·b' + a'·b: reconvergent fanout that Chortle cannot merge but
	// the library matcher finds via its leaf-DAG XOR cell — the paper's
	// explanation for the K=2 rows where MIS beats Chortle.
	nw := network.New("xor")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	g1 := nw.AddGate("g1", network.OpAnd, network.Fanin{Node: a}, network.Fanin{Node: b, Invert: true})
	g2 := nw.AddGate("g2", network.OpAnd, network.Fanin{Node: a, Invert: true}, network.Fanin{Node: b})
	g3 := nw.AddGate("g3", network.OpOr, network.Fanin{Node: g1}, network.Fanin{Node: g2})
	nw.MarkOutput("y", g3, false)

	lib, err := mislib.ForK(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mismap.Map(nw, lib)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.NetworkVsCircuit(nw, res.Circuit, 0, 1); err != nil {
		t.Fatal(err)
	}
	if res.LUTs != 1 {
		t.Fatalf("XOR mapped to %d LUTs by the library matcher, want 1", res.LUTs)
	}
	// Chortle, mapping the same network, cannot see through the
	// reconvergence and needs 3.
	cres, err := core.Map(nw, core.DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if cres.LUTs != 3 {
		t.Fatalf("Chortle mapped XOR to %d LUTs, expected 3", cres.LUTs)
	}
}

func TestSingleOpTreeK2MatchesChortle(t *testing.T) {
	// With the complete K=2 library every node is fully decomposed into
	// two-input gates, so (absent reconvergence) MIS and Chortle tie —
	// the paper's Table 1 observation.
	rng := rand.New(rand.NewSource(5))
	lib, err := mislib.ForK(2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		nw := randomTree(rng, 3+rng.Intn(10), false)
		mres, err := mismap.Map(nw, lib)
		if err != nil {
			t.Fatal(err)
		}
		cres, err := core.Map(nw, core.DefaultOptions(2))
		if err != nil {
			t.Fatal(err)
		}
		if mres.LUTs != cres.LUTs {
			t.Fatalf("trial %d: K=2 MIS=%d Chortle=%d on a tree", trial, mres.LUTs, cres.LUTs)
		}
		if err := verify.NetworkVsCircuit(nw, mres.Circuit, 16, int64(trial)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMapEquivalenceRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		nw := randomDAG(rng, 5, 8+rng.Intn(15))
		for k := 2; k <= 5; k++ {
			lib, err := mislib.ForK(k)
			if err != nil {
				t.Fatal(err)
			}
			res, err := mismap.Map(nw, lib)
			if err != nil {
				t.Fatalf("trial %d K=%d: %v", trial, k, err)
			}
			if err := verify.NetworkVsCircuit(nw, res.Circuit, 32, int64(trial)); err != nil {
				t.Fatalf("trial %d K=%d: %v", trial, k, err)
			}
		}
	}
}

func TestChortleNeverWorseOnTreesBigK(t *testing.T) {
	// On fanout-free trees Chortle is optimal over all decompositions,
	// so the structural library matcher can never beat it (no
	// reconvergence exists inside these trees to exploit).
	rng := rand.New(rand.NewSource(11))
	atLeastOnceBetter := false
	for trial := 0; trial < 25; trial++ {
		nw := randomTree(rng, 4+rng.Intn(10), true)
		for k := 3; k <= 5; k++ {
			lib, err := mislib.ForK(k)
			if err != nil {
				t.Fatal(err)
			}
			mres, err := mismap.Map(nw, lib)
			if err != nil {
				t.Fatal(err)
			}
			cres, err := core.Map(nw, core.DefaultOptions(k))
			if err != nil {
				t.Fatal(err)
			}
			if cres.LUTs > mres.LUTs {
				t.Fatalf("trial %d K=%d: Chortle %d > MIS %d on a tree", trial, k, cres.LUTs, mres.LUTs)
			}
			if cres.LUTs < mres.LUTs {
				atLeastOnceBetter = true
			}
		}
	}
	if !atLeastOnceBetter {
		t.Fatal("Chortle never beat the baseline on any tree; the comparison is vacuous")
	}
}

// randomTree builds a fanout-free tree (mixed ops if mixed is true).
func randomTree(rng *rand.Rand, nLeaves int, mixed bool) *network.Network {
	nw := network.New("tree")
	var avail []*network.Node
	for i := 0; i < nLeaves; i++ {
		avail = append(avail, nw.AddInput(inName(i)))
	}
	g := 0
	op := network.OpAnd
	for len(avail) > 1 {
		k := 2 + rng.Intn(3)
		if k > len(avail) {
			k = len(avail)
		}
		var fins []network.Fanin
		for i := 0; i < k; i++ {
			j := rng.Intn(len(avail))
			fins = append(fins, network.Fanin{Node: avail[j], Invert: rng.Intn(3) == 0})
			avail = append(avail[:j], avail[j+1:]...)
		}
		if mixed && rng.Intn(2) == 1 {
			op = network.OpOr
		}
		g++
		avail = append(avail, nw.AddGate(gName(g), op, fins...))
	}
	nw.MarkOutput("y", avail[0], false)
	return nw
}

func randomDAG(rng *rand.Rand, nIn, nGates int) *network.Network {
	nw := network.New("dag")
	var pool []*network.Node
	for i := 0; i < nIn; i++ {
		pool = append(pool, nw.AddInput(inName(i)))
	}
	for i := 0; i < nGates; i++ {
		op := network.OpAnd
		if rng.Intn(2) == 1 {
			op = network.OpOr
		}
		k := 2 + rng.Intn(4)
		seen := map[*network.Node]bool{}
		var fins []network.Fanin
		for len(fins) < k && len(fins) < len(pool) {
			n := pool[rng.Intn(len(pool))]
			if seen[n] {
				continue
			}
			seen[n] = true
			fins = append(fins, network.Fanin{Node: n, Invert: rng.Intn(3) == 0})
		}
		pool = append(pool, nw.AddGate(gName(i+1), op, fins...))
	}
	nw.MarkOutput("y", pool[len(pool)-1], false)
	nw.MarkOutput("z", pool[len(pool)-2], true)
	nw.Sweep()
	return nw
}

func inName(i int) string { return "x" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }
func gName(i int) string  { return "g" + string(rune('0'+i/10)) + string(rune('0'+i%10)) }
