package network

// Structural clean-up passes. The mappers assume a swept network: every
// gate has at least two distinct fanins and every node reaches an output.
// Logic optimization can leave buffers, inverter chains (fanin-1 gates),
// duplicate fanins and dead logic behind; Sweep removes them all.

// Sweep simplifies the network in place:
//
//   - fanin-1 gates (buffers/inverters) are bypassed, folding their
//     polarity into every consumer;
//   - duplicate same-polarity fanins of a gate are merged (x AND x = x);
//   - gates unreachable from any output are deleted.
//
// It returns the number of nodes removed. Sweep preserves network
// functionality (outputs compute the same functions).
func (nw *Network) Sweep() int {
	type lit struct {
		n   *Node
		inv bool
	}
	// chase follows chains of fanin-1 gates to the driving literal.
	chase := func(n *Node, inv bool) lit {
		for !n.IsInput() && len(n.Fanins) == 1 {
			inv = inv != n.Fanins[0].Invert
			n = n.Fanins[0].Node
		}
		return lit{n, inv}
	}

	for changed := true; changed; {
		changed = false
		for _, n := range nw.Nodes {
			if n.IsInput() {
				continue
			}
			kept := n.Fanins[:0]
			seen := make(map[lit]bool, len(n.Fanins))
			for _, f := range n.Fanins {
				l := chase(f.Node, f.Invert)
				if l.n != f.Node || l.inv != f.Invert {
					changed = true
				}
				if seen[l] {
					changed = true
					continue // duplicate literal: idempotent under AND/OR
				}
				seen[l] = true
				kept = append(kept, Fanin{Node: l.n, Invert: l.inv})
			}
			n.Fanins = kept
		}
	}
	for i := range nw.Outputs {
		l := chase(nw.Outputs[i].Node, nw.Outputs[i].Invert)
		nw.Outputs[i].Node, nw.Outputs[i].Invert = l.n, l.inv
	}
	for i := range nw.Latches {
		l := chase(nw.Latches[i].D, nw.Latches[i].DInv)
		nw.Latches[i].D, nw.Latches[i].DInv = l.n, l.inv
	}

	// Dead-logic removal: keep primary inputs (the external interface is
	// stable even if an input is unused) and everything reachable from
	// an output.
	live := make(map[*Node]bool, len(nw.Nodes))
	var mark func(n *Node)
	mark = func(n *Node) {
		if live[n] {
			return
		}
		live[n] = true
		for _, f := range n.Fanins {
			mark(f.Node)
		}
	}
	for _, o := range nw.Outputs {
		mark(o.Node)
	}
	for _, l := range nw.Latches {
		mark(l.D)
	}
	removed := 0
	keptNodes := nw.Nodes[:0]
	for _, n := range nw.Nodes {
		if n.IsInput() || live[n] {
			keptNodes = append(keptNodes, n)
		} else {
			delete(nw.byName, n.Name)
			removed++
		}
	}
	nw.Nodes = keptNodes
	nw.Reindex()
	return removed
}

// Clone returns a deep copy of the network. Node identity is fresh; the
// copy can be edited without affecting the original.
func (nw *Network) Clone() *Network {
	cp := New(nw.Name)
	m := make(map[*Node]*Node, len(nw.Nodes))
	for _, n := range nw.Nodes {
		nn := &Node{Name: n.Name, Op: n.Op}
		cp.insert(nn)
		if n.IsInput() {
			cp.Inputs = append(cp.Inputs, nn)
		}
		m[n] = nn
	}
	for _, n := range nw.Nodes {
		nn := m[n]
		for _, f := range n.Fanins {
			nn.Fanins = append(nn.Fanins, Fanin{Node: m[f.Node], Invert: f.Invert})
		}
	}
	for _, o := range nw.Outputs {
		cp.Outputs = append(cp.Outputs, Output{Name: o.Name, Node: m[o.Node], Invert: o.Invert})
	}
	for _, l := range nw.Latches {
		cp.Latches = append(cp.Latches, Latch{Q: l.Q, D: m[l.D], DInv: l.DInv, Init: l.Init})
	}
	return cp
}
