package network

import "fmt"

// Simulate evaluates the network on 64 input patterns in parallel: bit b
// of the word assigned to an input is that input's value in pattern b.
// It returns one word per output, keyed by output name. Inputs absent
// from the assignment default to zero.
func (nw *Network) Simulate(assign map[string]uint64) (map[string]uint64, error) {
	order, err := nw.TopoSort()
	if err != nil {
		return nil, err
	}
	val := make([]uint64, len(nw.Nodes))
	for _, n := range order {
		switch n.Op {
		case OpInput:
			val[n.ID] = assign[n.Name]
		case OpAnd:
			w := ^uint64(0)
			for _, f := range n.Fanins {
				x := val[f.Node.ID]
				if f.Invert {
					x = ^x
				}
				w &= x
			}
			val[n.ID] = w
		case OpOr:
			var w uint64
			for _, f := range n.Fanins {
				x := val[f.Node.ID]
				if f.Invert {
					x = ^x
				}
				w |= x
			}
			val[n.ID] = w
		default:
			return nil, fmt.Errorf("network %q: node %q has invalid op", nw.Name, n.Name)
		}
	}
	out := make(map[string]uint64, len(nw.Outputs)+len(nw.Latches))
	for _, o := range nw.Outputs {
		w := val[o.Node.ID]
		if o.Invert {
			w = ^w
		}
		out[o.Name] = w
	}
	for _, l := range nw.Latches {
		w := val[l.D.ID]
		if l.DInv {
			w = ^w
		}
		out[latchKey(l.Q)] = w
	}
	return out, nil
}
