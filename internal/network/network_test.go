package network

import (
	"math/rand"
	"testing"
)

// figure1 builds a small network in the spirit of the paper's Figure 1:
// five inputs a..e feeding a two-level AND/OR structure with an inverted
// edge, two outputs y and z.
func figure1() *Network {
	nw := New("figure1")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	c := nw.AddInput("c")
	d := nw.AddInput("d")
	e := nw.AddInput("e")
	g1 := nw.AddGate("g1", OpAnd, Fanin{Node: a}, Fanin{Node: b})
	g2 := nw.AddGate("g2", OpOr, Fanin{Node: c, Invert: true}, Fanin{Node: d})
	g3 := nw.AddGate("g3", OpOr, Fanin{Node: g1}, Fanin{Node: g2})
	g4 := nw.AddGate("g4", OpAnd, Fanin{Node: g2}, Fanin{Node: e})
	nw.MarkOutput("y", g3, false)
	nw.MarkOutput("z", g4, true)
	return nw
}

func TestValidateAndStats(t *testing.T) {
	nw := figure1()
	if err := nw.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s := nw.Stats()
	if s.Inputs != 5 || s.Outputs != 2 || s.Gates != 4 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.Depth != 2 {
		t.Fatalf("Depth = %d, want 2", s.Depth)
	}
	if s.MaxFanin != 2 || s.Edges != 8 {
		t.Fatalf("MaxFanin/Edges = %d/%d, want 2/8", s.MaxFanin, s.Edges)
	}
}

func TestTopoSortOrder(t *testing.T) {
	nw := figure1()
	order, err := nw.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[*Node]int)
	for i, n := range order {
		pos[n] = i
	}
	for _, n := range nw.Nodes {
		for _, f := range n.Fanins {
			if pos[f.Node] >= pos[n] {
				t.Fatalf("fanin %q not before %q", f.Node.Name, n.Name)
			}
		}
	}
}

func TestCycleDetection(t *testing.T) {
	nw := New("cyclic")
	a := nw.AddInput("a")
	g1 := nw.AddGate("g1", OpAnd, Fanin{Node: a})
	g2 := nw.AddGate("g2", OpOr, Fanin{Node: g1})
	g1.Fanins = append(g1.Fanins, Fanin{Node: g2}) // close the loop
	nw.MarkOutput("y", g2, false)
	if _, err := nw.TopoSort(); err == nil {
		t.Fatal("TopoSort accepted a cyclic network")
	}
	if err := nw.Validate(); err == nil {
		t.Fatal("Validate accepted a cyclic network")
	}
}

func TestValidateRejectsBadNetworks(t *testing.T) {
	empty := New("empty")
	empty.AddInput("a")
	if err := empty.Validate(); err == nil {
		t.Fatal("Validate accepted a network with no outputs")
	}

	noFanin := New("nofanin")
	in := noFanin.AddInput("a")
	g := noFanin.AddGate("g", OpAnd, Fanin{Node: in})
	g.Fanins = nil
	noFanin.MarkOutput("y", g, false)
	if err := noFanin.Validate(); err == nil {
		t.Fatal("Validate accepted a gate with no fanins")
	}
}

func TestSimulateFigure1(t *testing.T) {
	nw := figure1()
	// Exhaustive over the 32 input combinations, packed into one word.
	assign := map[string]uint64{}
	for i, name := range []string{"a", "b", "c", "d", "e"} {
		var w uint64
		for m := uint(0); m < 32; m++ {
			if m>>uint(i)&1 == 1 {
				w |= 1 << m
			}
		}
		assign[name] = w
	}
	got, err := nw.Simulate(assign)
	if err != nil {
		t.Fatal(err)
	}
	for m := uint(0); m < 32; m++ {
		a, b := m&1 == 1, m>>1&1 == 1
		c, d, e := m>>2&1 == 1, m>>3&1 == 1, m>>4&1 == 1
		g2 := !c || d
		wantY := (a && b) || g2
		wantZ := !(g2 && e)
		if got["y"]>>m&1 == 1 != wantY {
			t.Fatalf("y wrong at minterm %05b", m)
		}
		if got["z"]>>m&1 == 1 != wantZ {
			t.Fatalf("z wrong at minterm %05b", m)
		}
	}
}

func TestSweepBypassesBuffersAndInverters(t *testing.T) {
	nw := New("buf")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	inv := nw.AddGate("inv", OpAnd, Fanin{Node: a, Invert: true}) // inverter
	buf := nw.AddGate("buf", OpOr, Fanin{Node: inv})              // buffer of inverter
	g := nw.AddGate("g", OpAnd, Fanin{Node: buf}, Fanin{Node: b})
	nw.MarkOutput("y", g, false)

	before, err := nw.Simulate(map[string]uint64{"a": 0b0101, "b": 0b0011})
	if err != nil {
		t.Fatal(err)
	}
	removed := nw.Sweep()
	if removed != 2 {
		t.Fatalf("Sweep removed %d nodes, want 2 (buffer+inverter)", removed)
	}
	if len(g.Fanins) != 2 || g.Fanins[0].Node != a || !g.Fanins[0].Invert {
		t.Fatalf("inverter not folded into consumer: %+v", g.Fanins)
	}
	after, err := nw.Simulate(map[string]uint64{"a": 0b0101, "b": 0b0011})
	if err != nil {
		t.Fatal(err)
	}
	if before["y"] != after["y"] {
		t.Fatal("Sweep changed functionality")
	}
}

func TestSweepDeduplicatesFanins(t *testing.T) {
	nw := New("dup")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	g := nw.AddGate("g", OpAnd, Fanin{Node: a}, Fanin{Node: a}, Fanin{Node: b})
	nw.MarkOutput("y", g, false)
	nw.Sweep()
	if len(g.Fanins) != 2 {
		t.Fatalf("duplicate fanin not merged: %d fanins", len(g.Fanins))
	}
}

func TestSweepRemovesDeadLogic(t *testing.T) {
	nw := figure1()
	// Dead branch: two gates never reaching an output.
	d1 := nw.AddGate("dead1", OpAnd, Fanin{Node: nw.Find("a")}, Fanin{Node: nw.Find("b")})
	nw.AddGate("dead2", OpOr, Fanin{Node: d1}, Fanin{Node: nw.Find("c")})
	if removed := nw.Sweep(); removed != 2 {
		t.Fatalf("Sweep removed %d, want 2", removed)
	}
	if nw.Find("dead1") != nil || nw.Find("dead2") != nil {
		t.Fatal("dead nodes still findable after Sweep")
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSweepOutputOfInverterChain(t *testing.T) {
	nw := New("chain")
	a := nw.AddInput("a")
	i1 := nw.AddGate("i1", OpAnd, Fanin{Node: a, Invert: true})
	i2 := nw.AddGate("i2", OpAnd, Fanin{Node: i1, Invert: true})
	nw.MarkOutput("y", i2, true) // y = !(!!a) = !a
	nw.Sweep()
	if len(nw.Outputs) != 1 || nw.Outputs[0].Node != a || !nw.Outputs[0].Invert {
		t.Fatalf("output not resolved through chain: %+v", nw.Outputs[0])
	}
	got, err := nw.Simulate(map[string]uint64{"a": 0b10})
	if err != nil {
		t.Fatal(err)
	}
	if got["y"]&0b11 != 0b01 {
		t.Fatalf("y = %b, want !a", got["y"]&0b11)
	}
}

func TestClone(t *testing.T) {
	nw := figure1()
	cp := nw.Clone()
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mutating the clone must not affect the original.
	cp.Find("g1").Fanins[0].Invert = true
	if nw.Find("g1").Fanins[0].Invert {
		t.Fatal("clone shares fanin storage with original")
	}
	assign := map[string]uint64{"a": 3, "b": 5, "c": 9, "d": 17, "e": 33}
	got1, _ := nw.Simulate(assign)
	nw2 := figure1()
	got2, _ := nw2.Simulate(assign)
	if got1["y"] != got2["y"] || got1["z"] != got2["z"] {
		t.Fatal("network construction is not deterministic")
	}
}

func TestFanoutCounts(t *testing.T) {
	nw := figure1()
	nw.Reindex()
	counts := nw.FanoutCounts()
	g2 := nw.Find("g2")
	if counts[g2.ID] != 2 {
		t.Fatalf("g2 fanout = %d, want 2", counts[g2.ID])
	}
	g3 := nw.Find("g3")
	if counts[g3.ID] != 1 {
		t.Fatalf("g3 fanout = %d, want 1 (output)", counts[g3.ID])
	}
}

func TestOpString(t *testing.T) {
	if OpAnd.String() != "and" || OpOr.String() != "or" || OpInput.String() != "input" {
		t.Fatal("Op.String values changed")
	}
	if OpAnd.Dual() != OpOr || OpOr.Dual() != OpAnd || OpInput.Dual() != OpInput {
		t.Fatal("Op.Dual wrong")
	}
}

func TestRandomNetworkSimulationStability(t *testing.T) {
	// Build random DAGs and check Sweep never changes simulated outputs.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		nw := New("rand")
		var pool []*Node
		nIn := 3 + rng.Intn(5)
		names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		for i := 0; i < nIn; i++ {
			pool = append(pool, nw.AddInput(names[i]))
		}
		nGates := 5 + rng.Intn(15)
		for i := 0; i < nGates; i++ {
			op := OpAnd
			if rng.Intn(2) == 1 {
				op = OpOr
			}
			k := 1 + rng.Intn(3)
			var fins []Fanin
			for j := 0; j < k; j++ {
				fins = append(fins, Fanin{Node: pool[rng.Intn(len(pool))], Invert: rng.Intn(2) == 1})
			}
			pool = append(pool, nw.AddGate(names[nIn-1]+"_g"+string(rune('A'+i)), op, fins...))
		}
		nw.MarkOutput("y", pool[len(pool)-1], rng.Intn(2) == 1)
		nw.MarkOutput("z", pool[len(pool)-2], false)

		assign := map[string]uint64{}
		for i := 0; i < nIn; i++ {
			assign[names[i]] = rng.Uint64()
		}
		before, err := nw.Simulate(assign)
		if err != nil {
			t.Fatal(err)
		}
		nw.Sweep()
		if err := nw.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		after, err := nw.Simulate(assign)
		if err != nil {
			t.Fatal(err)
		}
		if before["y"] != after["y"] || before["z"] != after["z"] {
			t.Fatalf("trial %d: Sweep changed functionality", trial)
		}
	}
}

func TestLatchSupport(t *testing.T) {
	nw := New("seq")
	q := nw.AddInput("q")
	en := nw.AddInput("en")
	d := nw.AddGate("d", OpAnd, Fanin{Node: q, Invert: true}, Fanin{Node: en})
	nw.AddLatch("q", d, false, '0')
	nw.MarkOutput("y", d, true)
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := nw.Simulate(map[string]uint64{"q": 0b0011, "en": 0b0101})
	if err != nil {
		t.Fatal(err)
	}
	// d = !q & en.
	if got[LatchKey("q")]&0xF != 0b0100 {
		t.Fatalf("latch D = %04b", got[LatchKey("q")]&0xF)
	}
	if got["y"]&0xF != 0b1011 {
		t.Fatalf("y = %04b", got["y"]&0xF)
	}
	// Clone preserves latches with remapped nodes.
	cp := nw.Clone()
	if len(cp.Latches) != 1 || cp.Latches[0].D == d {
		t.Fatal("Clone latch remap wrong")
	}
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
	// Fanout counts include the latch data reference.
	nw.Reindex()
	if nw.FanoutCounts()[d.ID] != 2 { // output + latch
		t.Fatalf("latch D fanout = %d, want 2", nw.FanoutCounts()[d.ID])
	}
	// Sweep keeps latch-only logic alive.
	nw.Outputs = nil
	nw.Sweep()
	if nw.Find("d") == nil {
		t.Fatal("Sweep removed latch-driving logic")
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateLatchErrors(t *testing.T) {
	nw := New("bad")
	a := nw.AddInput("a")
	g := nw.AddGate("g", OpAnd, Fanin{Node: a}, Fanin{Node: a, Invert: true})
	nw.MarkOutput("y", g, false)
	nw.AddLatch("notdeclared", g, false, '0')
	if err := nw.Validate(); err == nil {
		t.Fatal("latch with undeclared Q accepted")
	}
	nw2 := New("dup")
	q := nw2.AddInput("q")
	b := nw2.AddInput("b")
	g2 := nw2.AddGate("g", OpOr, Fanin{Node: q}, Fanin{Node: b})
	nw2.AddLatch("q", g2, false, '0')
	nw2.AddLatch("q", g2, true, '1')
	if err := nw2.Validate(); err == nil {
		t.Fatal("duplicate latch accepted")
	}
}

func TestSortedOutputs(t *testing.T) {
	nw := figure1()
	outs := nw.SortedOutputs()
	if len(outs) != 2 || outs[0].Name != "y" || outs[1].Name != "z" {
		t.Fatalf("SortedOutputs = %v", outs)
	}
}

func TestValidateDuplicateOutputName(t *testing.T) {
	nw := figure1()
	nw.MarkOutput("y", nw.Find("g4"), false)
	if err := nw.Validate(); err == nil {
		t.Fatal("duplicate output name accepted")
	}
}
