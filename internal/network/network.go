// Package network implements the Boolean network representation of the
// Chortle paper's Section 2: a directed acyclic graph whose non-input
// nodes each compute a single AND or OR over their fanin variables, with
// edges labelled for polarity (inversion) and designated output nodes.
// This is the technology-independent form handed to the mappers; the
// logic optimizer (internal/opt) produces it and both Chortle
// (internal/core) and the MIS-style baseline (internal/mismap) consume it.
package network

import (
	"fmt"
	"sort"

	"chortle/internal/cerrs"
)

// Op is the Boolean operation of a node.
type Op uint8

const (
	// OpInput marks a primary input (no fanins).
	OpInput Op = iota
	// OpAnd computes the conjunction of the fanin literals.
	OpAnd
	// OpOr computes the disjunction of the fanin literals.
	OpOr
)

// String returns the conventional lowercase name of the operation.
func (o Op) String() string {
	switch o {
	case OpInput:
		return "input"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Dual returns the other gate operation (AND <-> OR). Inputs are self-dual.
func (o Op) Dual() Op {
	switch o {
	case OpAnd:
		return OpOr
	case OpOr:
		return OpAnd
	}
	return o
}

// Fanin is a polarized edge from Node into its consumer.
type Fanin struct {
	Node   *Node
	Invert bool
}

// Node is a vertex of the Boolean network. Input nodes have no fanins;
// gate nodes apply Op over two or more fanin literals (a single fanin is
// a buffer or inverter, tolerated transiently and removed by Sweep).
type Node struct {
	Name   string
	Op     Op
	Fanins []Fanin

	// ID is the node's index in Network.Nodes after Reindex. Algorithms
	// use it to key side tables; it is not stable across edits.
	ID int
}

// IsInput reports whether the node is a primary input.
func (n *Node) IsInput() bool { return n.Op == OpInput }

// Output designates a network output: the polarized value of a node.
type Output struct {
	Name   string
	Node   *Node
	Invert bool
}

// Latch is a sequential element seen from the combinational view: its
// output Q is a primary input, and its data input D (a polarized node)
// must be realized like a primary output. Technology mapping is purely
// combinational — latches ride through unchanged, as in the MIS/SIS
// flow the paper's benchmarks came from.
type Latch struct {
	Q    string // latch output signal; must be a declared input
	D    *Node  // data input driver
	DInv bool
	Init byte // BLIF initial value: '0', '1', '2' (don't care) or '3'
}

// Network is a multi-input multi-output Boolean network.
type Network struct {
	Name    string
	Nodes   []*Node // all nodes; inputs and gates in insertion order
	Inputs  []*Node
	Outputs []Output
	Latches []Latch

	byName map[string]*Node
}

// New returns an empty network with the given model name.
func New(name string) *Network {
	return &Network{Name: name, byName: make(map[string]*Node)}
}

// AddInput creates and returns a primary input node. Duplicate names are
// a programming error and panic.
func (nw *Network) AddInput(name string) *Node {
	n := &Node{Name: name, Op: OpInput}
	nw.insert(n)
	nw.Inputs = append(nw.Inputs, n)
	return n
}

// AddGate creates a gate node computing op over the fanins.
func (nw *Network) AddGate(name string, op Op, fanins ...Fanin) *Node {
	if op != OpAnd && op != OpOr {
		panic("network: AddGate requires OpAnd or OpOr")
	}
	n := &Node{Name: name, Op: op, Fanins: fanins}
	nw.insert(n)
	return n
}

func (nw *Network) insert(n *Node) {
	if nw.byName == nil {
		nw.byName = make(map[string]*Node)
	}
	if _, dup := nw.byName[n.Name]; dup {
		// A programming error at this layer, but reachable from user
		// input through builder paths; the panic value is an error
		// wrapping the sentinel so the public API boundary can recover
		// it into something errors.Is can classify.
		panic(fmt.Errorf("network: %w: node %q", cerrs.ErrDuplicateName, n.Name))
	}
	n.ID = len(nw.Nodes)
	nw.Nodes = append(nw.Nodes, n)
	nw.byName[n.Name] = n
}

// Find returns the node with the given name, or nil.
func (nw *Network) Find(name string) *Node {
	return nw.byName[name]
}

// MarkOutput designates the (possibly inverted) node value as a network
// output with the given name.
func (nw *Network) MarkOutput(name string, n *Node, invert bool) {
	nw.Outputs = append(nw.Outputs, Output{Name: name, Node: n, Invert: invert})
}

// AddLatch registers a latch whose output q (an already-declared input)
// is fed by the polarized value of d.
func (nw *Network) AddLatch(q string, d *Node, dInv bool, init byte) {
	nw.Latches = append(nw.Latches, Latch{Q: q, D: d, DInv: dInv, Init: init})
}

// latchKey is the pseudo-output name under which Simulate reports a
// latch's data-input value.
func latchKey(q string) string { return "$latch$" + q }

// LatchKey exposes the pseudo-output naming for verification tools.
func LatchKey(q string) string { return latchKey(q) }

// Reindex renumbers node IDs to match their position in Nodes.
func (nw *Network) Reindex() {
	for i, n := range nw.Nodes {
		n.ID = i
	}
}

// FanoutCounts returns, indexed by node ID, the out-degree of every node:
// the number of fanin references from gates plus output designations.
// Callers must Reindex first if they have edited the network.
func (nw *Network) FanoutCounts() []int {
	counts := make([]int, len(nw.Nodes))
	for _, n := range nw.Nodes {
		for _, f := range n.Fanins {
			counts[f.Node.ID]++
		}
	}
	for _, o := range nw.Outputs {
		counts[o.Node.ID]++
	}
	for _, l := range nw.Latches {
		counts[l.D.ID]++
	}
	return counts
}

// TopoSort returns the nodes in topological order (fanins before
// consumers) or an error if the graph has a cycle or a dangling edge.
func (nw *Network) TopoSort() ([]*Node, error) {
	nw.Reindex()
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make([]uint8, len(nw.Nodes))
	order := make([]*Node, 0, len(nw.Nodes))
	var visit func(n *Node) error
	visit = func(n *Node) error {
		switch state[n.ID] {
		case gray:
			return fmt.Errorf("network %q: %w through node %q", nw.Name, cerrs.ErrCycle, n.Name)
		case black:
			return nil
		}
		state[n.ID] = gray
		for _, f := range n.Fanins {
			if f.Node == nil {
				return fmt.Errorf("network %q: node %q has nil fanin", nw.Name, n.Name)
			}
			if f.Node.ID >= len(nw.Nodes) || nw.Nodes[f.Node.ID] != f.Node {
				return fmt.Errorf("network %q: node %q has fanin %q not in network", nw.Name, n.Name, f.Node.Name)
			}
			if err := visit(f.Node); err != nil {
				return err
			}
		}
		state[n.ID] = black
		order = append(order, n)
		return nil
	}
	// Visit from outputs first so the order favours live logic, then the
	// rest so dangling nodes still get positions.
	for _, o := range nw.Outputs {
		if err := visit(o.Node); err != nil {
			return nil, err
		}
	}
	for _, l := range nw.Latches {
		if err := visit(l.D); err != nil {
			return nil, err
		}
	}
	for _, n := range nw.Nodes {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Validate checks structural invariants: unique names, registered
// fanins, acyclicity, gates with at least one fanin, and outputs that
// reference network nodes. It returns the first violation found.
func (nw *Network) Validate() error {
	seen := make(map[string]bool, len(nw.Nodes))
	for _, n := range nw.Nodes {
		if seen[n.Name] {
			return fmt.Errorf("network %q: %w: node %q", nw.Name, cerrs.ErrDuplicateName, n.Name)
		}
		seen[n.Name] = true
		switch n.Op {
		case OpInput:
			if len(n.Fanins) != 0 {
				return fmt.Errorf("network %q: input %q has fanins", nw.Name, n.Name)
			}
		case OpAnd, OpOr:
			if len(n.Fanins) == 0 {
				return fmt.Errorf("network %q: gate %q has no fanins", nw.Name, n.Name)
			}
		default:
			return fmt.Errorf("network %q: node %q has invalid op %d", nw.Name, n.Name, n.Op)
		}
	}
	if len(nw.Outputs) == 0 && len(nw.Latches) == 0 {
		return fmt.Errorf("network %q: no outputs", nw.Name)
	}
	outNames := make(map[string]bool, len(nw.Outputs))
	for _, o := range nw.Outputs {
		if o.Node == nil {
			return fmt.Errorf("network %q: output %q references nil node", nw.Name, o.Name)
		}
		if outNames[o.Name] {
			return fmt.Errorf("network %q: %w: output %q", nw.Name, cerrs.ErrDuplicateName, o.Name)
		}
		outNames[o.Name] = true
	}
	latchQ := make(map[string]bool, len(nw.Latches))
	for _, l := range nw.Latches {
		if l.D == nil {
			return fmt.Errorf("network %q: latch %q has nil data input", nw.Name, l.Q)
		}
		if nw.Find(l.Q) == nil || !nw.Find(l.Q).IsInput() {
			return fmt.Errorf("network %q: latch output %q is not a declared input", nw.Name, l.Q)
		}
		if latchQ[l.Q] {
			return fmt.Errorf("network %q: duplicate latch %q", nw.Name, l.Q)
		}
		latchQ[l.Q] = true
	}
	_, err := nw.TopoSort()
	return err
}

// Stats summarizes the structure of a network.
type Stats struct {
	Inputs   int
	Outputs  int
	Gates    int
	Edges    int
	MaxFanin int
	Depth    int // longest input-to-output path in gate levels
}

// Stats computes structural statistics. The network must be acyclic.
func (nw *Network) Stats() Stats {
	s := Stats{Inputs: len(nw.Inputs), Outputs: len(nw.Outputs)}
	order, err := nw.TopoSort()
	if err != nil {
		panic(err) // Stats on a cyclic network is a programming error
	}
	depth := make([]int, len(nw.Nodes))
	for _, n := range order {
		if n.IsInput() {
			continue
		}
		s.Gates++
		s.Edges += len(n.Fanins)
		if len(n.Fanins) > s.MaxFanin {
			s.MaxFanin = len(n.Fanins)
		}
		d := 0
		for _, f := range n.Fanins {
			if fd := depth[f.Node.ID]; fd > d {
				d = fd
			}
		}
		depth[n.ID] = d + 1
		if depth[n.ID] > s.Depth {
			s.Depth = depth[n.ID]
		}
	}
	return s
}

// SortedOutputs returns the outputs ordered by name, for deterministic
// iteration in writers and comparisons.
func (nw *Network) SortedOutputs() []Output {
	out := append([]Output(nil), nw.Outputs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
