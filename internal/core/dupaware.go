package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"chortle/internal/cerrs"
	"chortle/internal/network"
)

// Cost-aware fanout duplication. The naive duplication pass
// (Options.DuplicateFanoutLogic) copies every small shared gate and, as
// the paper observed of MIS's greedy version, usually loses area.
// MapDuplicateCostAware instead evaluates each candidate with the tree
// DP itself: a shared gate is duplicated only if the total cost of the
// affected trees (the gate's own tree plus its consumers' trees)
// strictly drops. This is the profitable form of the paper's
// "duplication of logic at fanout nodes" future work — the idea that
// became replication in Chortle-crf.

// MapDuplicateCostAware greedily applies profitable duplications and
// then maps. The returned Result reflects the final mapping; the int is
// the number of duplications accepted.
func MapDuplicateCostAware(input *network.Network, opts Options) (*Result, int, error) {
	return MapDuplicateCostAwareCtx(context.Background(), input, opts)
}

// MapDuplicateCostAwareCtx is MapDuplicateCostAware under a context.
// The search observes cancellation between candidates and inside every
// cost probe; a cancelled context aborts with its error. A wall-clock
// budget (Options.Budget.WallClock) instead stops the search gracefully
// — duplications accepted so far are kept and the final mapping
// degrades per-tree like any budgeted MapCtx call.
func MapDuplicateCostAwareCtx(ctx context.Context, input *network.Network, opts Options) (*Result, int, error) {
	if err := opts.validate(); err != nil {
		return nil, 0, err
	}
	if opts.Engine != EngineTree {
		// The duplication search's cost oracle is the tree DP; the other
		// engines cover the DAG directly and have no per-tree cost to
		// improve, so the combination is a configuration error.
		return nil, 0, fmt.Errorf("core: engine %v does not support cost-aware duplication", opts.Engine)
	}
	if err := input.Validate(); err != nil {
		return nil, 0, err
	}
	nw := input.Clone()
	nw.Sweep()
	accepted := 0
	tr := tracer{opts.Observer}
	tr.mapStart(opts.K, len(nw.Nodes))
	// One cost memo for the entire search: the trial networks differ from
	// the base in only the trees a duplication touches, so nearly every
	// tree cost of a trial is a memo hit instead of a DP solve. Cost
	// probes run unbudgeted (work units bound the final mapping, not the
	// search's cost oracle) but still observe ctx and the deadline. They
	// are also unobserved: a probe is a cost oracle, not a mapping run,
	// and emitting its thousands of solves would drown the trace.
	cm := newCostMemo()
	probeOpts := opts
	probeOpts.Budget = Budget{}
	probeOpts.Observer = nil
	// The soft wall-clock budget bounds the search phase through a
	// derived deadline (per-probe budgets would restart the clock every
	// trial); the final mapping below then gets its own budget window.
	searchCtx := ctx
	if opts.Budget.WallClock > 0 {
		var cancel context.CancelFunc
		searchCtx, cancel = context.WithTimeout(ctx, opts.Budget.WallClock)
		defer cancel()
	}
	// Iterate to a fixed point with a safety bound: each accepted
	// duplication strictly reduces the DP cost, which is bounded below.
	endPhase := tr.phase("dup-search")
	for pass := 0; pass < 8; pass++ {
		changed, err := dupPass(searchCtx, nw, probeOpts, cm, &accepted, tr)
		if err != nil {
			// The search-phase deadline stops the search, keeping the
			// duplications found so far; the caller's own cancellation
			// aborts outright.
			if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
				break
			}
			endPhase()
			return nil, 0, err
		}
		if !changed {
			break
		}
	}
	endPhase()
	res, err := MapCtx(ctx, nw, opts)
	if err != nil {
		return nil, 0, err
	}
	return res, accepted, nil
}

// totalTreeCost maps (cost only) the whole network, resolving known
// tree shapes through the cost memo.
func totalTreeCost(ctx context.Context, nw *network.Network, opts Options, cm *costMemo) (int, error) {
	costs, err := treeCosts(ctx, nw, opts, cm)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, c := range costs {
		total += c
	}
	return total, nil
}

// dupPass tries every candidate once, committing improvements.
func dupPass(ctx context.Context, nw *network.Network, opts Options, cm *costMemo, accepted *int, tr tracer) (bool, error) {
	base, err := totalTreeCost(ctx, nw, opts, cm)
	if err != nil {
		return false, err
	}
	// Candidates: multi-fanout gates small enough to merge into a
	// consumer LUT. Deterministic order by name.
	nw.Reindex()
	counts := nw.FanoutCounts()
	var candidates []string
	for _, n := range nw.Nodes {
		if n.IsInput() || len(n.Fanins) >= opts.K {
			continue
		}
		if fo := counts[n.ID]; fo >= 2 && fo <= maxDupFanout {
			candidates = append(candidates, n.Name)
		}
	}
	sort.Strings(candidates)

	changed := false
	for _, name := range candidates {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		n := nw.Find(name)
		if n == nil {
			continue // removed by an earlier accepted duplication
		}
		trial := nw.Clone()
		if !duplicateOne(trial, name) {
			continue
		}
		trial.Sweep()
		if err := trial.Validate(); err != nil {
			continue
		}
		cost, err := totalTreeCost(ctx, trial, opts, cm)
		if err != nil {
			// Cancellation and deadline expiry must abort the pass; any
			// other probe failure just disqualifies this candidate.
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
				errors.Is(err, cerrs.ErrBudgetExhausted) {
				return false, err
			}
			continue
		}
		if cost < base {
			// Commit by replaying on the live network.
			if duplicateOne(nw, name) {
				nw.Sweep()
				base = cost
				*accepted++
				changed = true
				tr.dupAccepted(name)
			}
		}
	}
	return changed, nil
}

// duplicateOne gives each gate consumer of the named node a private
// copy. Returns false if the node no longer qualifies.
func duplicateOne(nw *network.Network, name string) bool {
	n := nw.Find(name)
	if n == nil || n.IsInput() {
		return false
	}
	gensym := 0
	fresh := func() string {
		for {
			gensym++
			cand := name + "$ca" + string(rune('0'+gensym%10)) + string(rune('a'+gensym/10%26))
			if nw.Find(cand) == nil {
				return cand
			}
		}
	}
	did := false
	for _, consumer := range nw.Nodes {
		if consumer.IsInput() || consumer == n {
			continue
		}
		for i, f := range consumer.Fanins {
			if f.Node != n {
				continue
			}
			cp := nw.AddGate(fresh(), n.Op, append([]network.Fanin(nil), n.Fanins...)...)
			consumer.Fanins[i] = network.Fanin{Node: cp, Invert: f.Invert}
			did = true
		}
	}
	return did
}
