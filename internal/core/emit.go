package core

import (
	"errors"
	"fmt"
	"math/bits"
	"strconv"

	"chortle/internal/cerrs"
	"chortle/internal/forest"
	"chortle/internal/lut"
	"chortle/internal/network"
	"chortle/internal/truth"
)

// Circuit reconstruction. The DP records, for every (subset, utilization)
// state, how the pivot fanin was placed; walking those choices rebuilds
// the chosen cover. Each emitted LUT's truth table is evaluated from the
// expression tree of the network logic it absorbs — including every edge
// inversion, which is how Chortle gets inverters for free.

// exprNode is the function of one LUT over its collected input signals.
type exprNode struct {
	leaf     bool
	inputIdx int // leaf: index into the LUT's input list
	invert   bool
	op       network.Op // internal: AND/OR over kids
	kids     []*exprNode
}

func evalExpr(e *exprNode, assign uint) bool {
	if e.leaf {
		return (assign>>uint(e.inputIdx)&1 == 1) != e.invert
	}
	var v bool
	if e.op == network.OpAnd {
		v = true
		for _, k := range e.kids {
			if !evalExpr(k, assign) {
				v = false
				break
			}
		}
	} else {
		for _, k := range e.kids {
			if evalExpr(k, assign) {
				v = true
				break
			}
		}
	}
	return v != e.invert
}

// mapper carries the reconstruction state across trees.
type mapper struct {
	opts Options
	nw   *network.Network
	f    *forest.Forest
	ckt  *lut.Circuit
	sig  map[*network.Node]string // realized signal of PIs and tree roots
	seq  int

	// rec, when non-nil, passively records the emission of the current
	// tree as a template for structurally identical trees (template.go).
	rec *emitRecorder

	// Per-tree provenance context (provenance.go), meaningful only when
	// opts.Provenance is set: the tree being realized, how it was
	// realized, and its solve's metered work units.
	provTree   string
	provOrigin lut.Origin
	provUnits  int64
}

func (m *mapper) fresh(base string) string {
	for {
		m.seq++
		name := fmt.Sprintf("%s$l%d", base, m.seq)
		if m.ckt.Find(name) == nil && !m.cktHasInput(name) {
			return name
		}
	}
}

// freshFor draws a fresh name seeded by dp's node, noting the draw for
// the template recorder so replays can reproduce the exact sequence.
func (m *mapper) freshFor(dp *nodeDP) string {
	name := m.fresh(dp.node.Name)
	if m.rec != nil {
		m.rec.noteFresh(name, dp.nodeIdx)
	}
	return name
}

func (m *mapper) cktHasInput(name string) bool {
	for _, in := range m.ckt.Inputs {
		if in == name {
			return true
		}
	}
	return false
}

// addInput interns a signal in the LUT's input list, deduplicating
// repeated signals (the DP charges one pin per leaf edge, as the paper
// does; the physical LUT can share the pin).
func addInput(inputs *[]string, sig string) int {
	for i, s := range *inputs {
		if s == sig {
			return i
		}
	}
	*inputs = append(*inputs, sig)
	return len(*inputs) - 1
}

// leafSignal resolves a leaf edge's node to its finished signal: the PI
// name, or the signal of an already-mapped tree root.
func (m *mapper) leafSignal(n *network.Node) (string, error) {
	if n.IsInput() {
		return n.Name, nil
	}
	sig, ok := m.sig[n]
	if !ok {
		return "", fmt.Errorf("core: tree root %q not yet realized", n.Name)
	}
	return sig, nil
}

// signalOf realizes fanin fr as a finished signal: leaf edges resolve to
// the PI or previously mapped tree root; internal children emit their
// best mapping rooted at a fresh LUT.
func (m *mapper) signalOf(fr faninRef) (string, error) {
	if fr.child == nil {
		sig, err := m.leafSignal(fr.edge.Node)
		if err != nil {
			return "", err
		}
		if m.rec != nil {
			m.rec.noteLeaf(sig, fr.leafIdx)
		}
		return sig, nil
	}
	c := fr.child
	return m.emitLUT(c, c.full, c.bestU, m.freshFor(c), m.provFor(c))
}

// collectGroups walks the DP choices for (dp, s, u), returning the
// group expressions of the covering LUT and extending inputs with the
// signals it consumes. pf (nil when provenance is off) accumulates the
// covered nodes and shape tokens of the LUT being collected.
func (m *mapper) collectGroups(dp *nodeDP, s uint32, u int, inputs *[]string, pf *provFrame) ([]*exprNode, error) {
	var groups []*exprNode
	for s != 0 {
		if u < 1 {
			return nil, fmt.Errorf("core: utilization underflow reconstructing %q", dp.node.Name)
		}
		ch := dp.choiceAt(s, u)
		switch ch.kind {
		case choiceSingleton:
			pivot := bits.TrailingZeros32(s)
			fr := dp.fanins[pivot]
			if ch.v == 1 {
				sig, err := m.signalOf(fr)
				if err != nil {
					return nil, err
				}
				pf.token("pin")
				groups = append(groups, &exprNode{leaf: true, inputIdx: addInput(inputs, sig), invert: fr.edge.Invert})
			} else {
				c := fr.child
				pf.open("merge")
				pf.cover(c.node.Name, c.nodeIdx)
				kids, err := m.collectGroups(c, c.full, int(ch.v), inputs, pf)
				if err != nil {
					return nil, err
				}
				pf.close()
				groups = append(groups, &exprNode{op: c.node.Op, kids: kids, invert: fr.edge.Invert})
			}
			s &^= 1 << uint(pivot)
			u -= int(ch.v)
		case choiceIntermediate:
			sig, err := m.emitLUT(dp, ch.d, int(dp.mmBestU[ch.d]), m.freshFor(dp), m.provGroupFor(dp))
			if err != nil {
				return nil, err
			}
			if pf != nil {
				pf.token("grp" + strconv.Itoa(bits.OnesCount32(ch.d)))
			}
			groups = append(groups, &exprNode{leaf: true, inputIdx: addInput(inputs, sig)})
			s &^= ch.d
			u--
		default:
			return nil, fmt.Errorf("core: no DP choice recorded for %q subset %b utilization %d", dp.node.Name, s, u)
		}
	}
	if u != 0 {
		return nil, fmt.Errorf("core: utilization leftover %d reconstructing %q", u, dp.node.Name)
	}
	return groups, nil
}

// emitLUT materializes one lookup table computing op(dp.node) over the
// fanin subset s with utilization u, returning its signal name. pf, when
// non-nil, becomes the LUT's provenance record.
func (m *mapper) emitLUT(dp *nodeDP, s uint32, u int, name string, pf *provFrame) (string, error) {
	var inputs []string
	groups, err := m.collectGroups(dp, s, u, &inputs, pf)
	if err != nil {
		return "", err
	}
	root := &exprNode{op: dp.node.Op, kids: groups}
	if len(inputs) > m.opts.K {
		return "", fmt.Errorf("core: LUT %q collected %d inputs for K=%d", name, len(inputs), m.opts.K)
	}
	table := truth.FromFunc(len(inputs), func(assign uint) bool { return evalExpr(root, assign) })
	m.ckt.AddLUT(name, inputs, table)
	if m.rec != nil {
		m.rec.noteLUT(name, inputs, table)
	}
	m.recordProv(pf, name, inputs, dp.node.Op.String(), u)
	return name, nil
}

// realizeTreeFromDP reconstructs a tree's circuit from a computed DP.
func (m *mapper) realizeTreeFromDP(root *network.Node, dp *nodeDP) (int32, error) {
	if dp == nil {
		return 0, fmt.Errorf("core: missing DP for tree %q", root.Name)
	}
	if dp.bestCost >= infinity {
		return 0, errUnmappable(root.Name, m.opts.K)
	}
	name := root.Name
	if m.ckt.Find(name) != nil || m.cktHasInput(name) {
		name = m.fresh(root.Name)
	}
	sig, err := m.emitLUT(dp, dp.full, dp.bestU, name, m.provFor(dp))
	if err != nil {
		return 0, err
	}
	m.sig[root] = sig
	return dp.bestCost, nil
}

// errDegraded marks a tree whose exhaustive solve ran out of budget;
// Map catches it (via cerrs.ErrBudgetExhausted) and remaps the tree
// with the bin-packing strategy.
func errDegraded(name string) error {
	return fmt.Errorf("core: tree %q: %w", name, cerrs.ErrBudgetExhausted)
}

// realizeTreeCtx maps the tree rooted at root using the per-Map context:
// through the shape memo when memoization is on, from the parallel
// prepass's DP when one exists, or with a fresh solve in the context's
// sequential arena. An error wrapping cerrs.ErrBudgetExhausted means
// the tree's solve ran out of budget and the caller should degrade it;
// any other error aborts the mapping.
func (m *mapper) realizeTreeCtx(root *network.Node, mc *mapCtx) (int32, error) {
	if mc.cache != nil {
		return m.realizeTreeMemo(root, mc)
	}
	if dp, ok := mc.prebuilt[root]; ok {
		if dp == nil {
			return 0, errDegraded(root.Name)
		}
		m.setProvTree(root.Name, lut.OriginFresh, mc.prebuiltUnits[root])
		return m.realizeTreeFromDP(root, dp)
	}
	gov := mc.newGov()
	start := mc.tr.now()
	dp, err := solveDP(mc.seqArena, m.f, root, m.opts, gov)
	if err != nil {
		return 0, err
	}
	mc.tr.treeSolve(root.Name, gov.units, dp.bestCost, start)
	m.setProvTree(root.Name, lut.OriginFresh, gov.units)
	return m.realizeTreeFromDP(root, dp)
}

// realizeTreeMemo maps one tree through the shape memo. A shape hit
// reuses the cached DP tables (rebound to this tree's nodes); a
// (shape, leaf-pattern) hit replays the recorded emission outright. On
// a full miss the tree is solved and reconstructed normally with no
// further memo machinery: most shapes never repeat, so templates are
// recorded only from a shape's second instance on, once repetition is
// proven. (A shape seen exactly twice reconstructs twice; from the
// third instance on it replays.)
func (m *mapper) realizeTreeMemo(root *network.Node, mc *mapCtx) (int32, error) {
	si := mc.infoFor(root)
	e := mc.cache.lookup(m.f, root, si)
	if e == nil {
		e = &shapeEntry{f: m.f, rep: root, templates: make(map[string]*emitTemplate)}
		gov := mc.newGov()
		start := mc.tr.now()
		dp, err := solveDP(mc.seqArena, m.f, root, m.opts, gov)
		if err != nil {
			if !errors.Is(err, cerrs.ErrBudgetExhausted) {
				return 0, err
			}
			e.degraded = true
		}
		if !e.degraded {
			mc.tr.treeSolve(root.Name, gov.units, dp.bestCost, start)
		}
		e.dp = dp
		e.units = gov.units
		mc.cache.insert(si, e)
		mc.cache.publish(root, si, e)
	}
	if e.degraded {
		return 0, errDegraded(root.Name)
	}
	if e.dp.bestCost >= infinity {
		return 0, errUnmappable(root.Name, m.opts.K)
	}
	dp := e.dp
	switch {
	case e.frozen:
		// Cross-run hit: the cached tables are a frozen copy with no
		// live node or edge pointers, so even this run's first instance
		// of the shape rebinds. Its solve happened in another run —
		// memo-reuse origin, zero work units.
		mc.tr.memoHit(root.Name, e.dp.bestCost)
		dp = rebindDP(mc.seqArena, e.dp, m.f, root)
		m.setProvTree(root.Name, lut.OriginMemo, 0)
	case e.rep != root:
		mc.tr.memoHit(root.Name, e.dp.bestCost)
		dp = rebindDP(mc.seqArena, e.dp, m.f, root)
		// A memo hit did no search of its own; its records carry the
		// reuse origin and zero work units.
		m.setProvTree(root.Name, lut.OriginMemo, 0)
	default:
		m.setProvTree(root.Name, lut.OriginFresh, e.units)
	}
	if !e.seen {
		e.seen = true
		return m.realizeTreeFromDP(root, dp)
	}
	names, leafSigs, err := m.treeNamesAndLeafSigs(root)
	if err != nil {
		return 0, err
	}
	pattern := patternOf(leafSigs)
	if t := e.templateFor(pattern); t != nil {
		m.setProvTree(root.Name, lut.OriginReplay, 0)
		if _, err := m.replayTemplate(root, t, names, leafSigs); err != nil {
			return 0, err
		}
		mc.tr.templateReplay(root.Name)
		return e.dp.bestCost, nil
	}
	m.rec = newEmitRecorder()
	cost, err := m.realizeTreeFromDP(root, dp)
	rec := m.rec
	m.rec = nil
	if err != nil {
		return 0, err
	}
	if t := rec.template(); t != nil {
		e.putTemplate(pattern, t)
	}
	return cost, nil
}
