package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"chortle/internal/forest"
	"chortle/internal/lut"
	"chortle/internal/network"
	"chortle/internal/truth"
)

// Circuit reconstruction. The DP records, for every (subset, utilization)
// state, how the pivot fanin was placed; walking those choices rebuilds
// the chosen cover. Each emitted LUT's truth table is evaluated from the
// expression tree of the network logic it absorbs — including every edge
// inversion, which is how Chortle gets inverters for free.

// exprNode is the function of one LUT over its collected input signals.
type exprNode struct {
	leaf     bool
	inputIdx int // leaf: index into the LUT's input list
	invert   bool
	op       network.Op // internal: AND/OR over kids
	kids     []*exprNode
}

func evalExpr(e *exprNode, assign uint) bool {
	if e.leaf {
		return (assign>>uint(e.inputIdx)&1 == 1) != e.invert
	}
	var v bool
	if e.op == network.OpAnd {
		v = true
		for _, k := range e.kids {
			if !evalExpr(k, assign) {
				v = false
				break
			}
		}
	} else {
		for _, k := range e.kids {
			if evalExpr(k, assign) {
				v = true
				break
			}
		}
	}
	return v != e.invert
}

// mapper carries the reconstruction state across trees.
type mapper struct {
	opts Options
	nw   *network.Network
	f    *forest.Forest
	ckt  *lut.Circuit
	sig  map[*network.Node]string // realized signal of PIs and tree roots
	seq  int
}

func (m *mapper) fresh(base string) string {
	for {
		m.seq++
		name := fmt.Sprintf("%s$l%d", base, m.seq)
		if m.ckt.Find(name) == nil && !m.cktHasInput(name) {
			return name
		}
	}
}

func (m *mapper) cktHasInput(name string) bool {
	for _, in := range m.ckt.Inputs {
		if in == name {
			return true
		}
	}
	return false
}

// addInput interns a signal in the LUT's input list, deduplicating
// repeated signals (the DP charges one pin per leaf edge, as the paper
// does; the physical LUT can share the pin).
func addInput(inputs *[]string, sig string) int {
	for i, s := range *inputs {
		if s == sig {
			return i
		}
	}
	*inputs = append(*inputs, sig)
	return len(*inputs) - 1
}

// signalOf realizes fanin fr as a finished signal: leaf edges resolve to
// the PI or previously mapped tree root; internal children emit their
// best mapping rooted at a fresh LUT.
func (m *mapper) signalOf(fr faninRef) (string, error) {
	if fr.child == nil {
		n := fr.edge.Node
		if n.IsInput() {
			return n.Name, nil
		}
		sig, ok := m.sig[n]
		if !ok {
			return "", fmt.Errorf("core: tree root %q not yet realized", n.Name)
		}
		return sig, nil
	}
	c := fr.child
	return m.emitLUT(c, c.full, c.bestU, m.fresh(c.node.Name))
}

// collectGroups walks the DP choices for (dp, s, u), returning the
// group expressions of the covering LUT and extending inputs with the
// signals it consumes.
func (m *mapper) collectGroups(dp *nodeDP, s uint32, u int, inputs *[]string) ([]*exprNode, error) {
	var groups []*exprNode
	for s != 0 {
		if u < 1 {
			return nil, fmt.Errorf("core: utilization underflow reconstructing %q", dp.node.Name)
		}
		ch := dp.choice[s][u]
		switch ch.kind {
		case choiceSingleton:
			pivot := bits.TrailingZeros32(s)
			fr := dp.fanins[pivot]
			if ch.v == 1 {
				sig, err := m.signalOf(fr)
				if err != nil {
					return nil, err
				}
				groups = append(groups, &exprNode{leaf: true, inputIdx: addInput(inputs, sig), invert: fr.edge.Invert})
			} else {
				c := fr.child
				kids, err := m.collectGroups(c, c.full, int(ch.v), inputs)
				if err != nil {
					return nil, err
				}
				groups = append(groups, &exprNode{op: c.node.Op, kids: kids, invert: fr.edge.Invert})
			}
			s &^= 1 << uint(pivot)
			u -= int(ch.v)
		case choiceIntermediate:
			sig, err := m.emitLUT(dp, ch.d, int(dp.mmBestU[ch.d]), m.fresh(dp.node.Name))
			if err != nil {
				return nil, err
			}
			groups = append(groups, &exprNode{leaf: true, inputIdx: addInput(inputs, sig)})
			s &^= ch.d
			u--
		default:
			return nil, fmt.Errorf("core: no DP choice recorded for %q subset %b utilization %d", dp.node.Name, s, u)
		}
	}
	if u != 0 {
		return nil, fmt.Errorf("core: utilization leftover %d reconstructing %q", u, dp.node.Name)
	}
	return groups, nil
}

// emitLUT materializes one lookup table computing op(dp.node) over the
// fanin subset s with utilization u, returning its signal name.
func (m *mapper) emitLUT(dp *nodeDP, s uint32, u int, name string) (string, error) {
	var inputs []string
	groups, err := m.collectGroups(dp, s, u, &inputs)
	if err != nil {
		return "", err
	}
	root := &exprNode{op: dp.node.Op, kids: groups}
	if len(inputs) > m.opts.K {
		return "", fmt.Errorf("core: LUT %q collected %d inputs for K=%d", name, len(inputs), m.opts.K)
	}
	table := truth.FromFunc(len(inputs), func(assign uint) bool { return evalExpr(root, assign) })
	m.ckt.AddLUT(name, inputs, table)
	return name, nil
}

// realizeTree maps the tree rooted at root and registers its signal.
func (m *mapper) realizeTree(root *network.Node) (int32, error) {
	return m.realizeTreeFromDP(root, buildDP(m.f, root, m.opts))
}

// realizeTreeFromDP reconstructs a tree's circuit from an already
// computed DP (used by the parallel path).
func (m *mapper) realizeTreeFromDP(root *network.Node, dp *nodeDP) (int32, error) {
	if dp == nil {
		return 0, fmt.Errorf("core: missing DP for tree %q", root.Name)
	}
	if dp.bestCost >= infinity {
		return 0, errUnmappable(root.Name, m.opts.K)
	}
	name := root.Name
	if m.ckt.Find(name) != nil || m.cktHasInput(name) {
		name = m.fresh(root.Name)
	}
	sig, err := m.emitLUT(dp, dp.full, dp.bestU, name)
	if err != nil {
		return 0, err
	}
	m.sig[root] = sig
	return dp.bestCost, nil
}

// buildDPsParallel computes every tree's DP concurrently.
func buildDPsParallel(f *forest.Forest, opts Options) map[*network.Node]*nodeDP {
	type built struct {
		root *network.Node
		dp   *nodeDP
	}
	results := make(chan built, len(f.Roots))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, root := range f.Roots {
		root := root
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results <- built{root: root, dp: buildDP(f, root, opts)}
		}()
	}
	wg.Wait()
	close(results)
	out := make(map[*network.Node]*nodeDP, len(f.Roots))
	for b := range results {
		out[b.root] = b.dp
	}
	return out
}
