package core

import (
	"bytes"
	"math/rand"
	"testing"

	"chortle/internal/network"
)

// Snapshot/restore contract at the core level: a restored cache behaves
// exactly like the warm cache it was written from — same hits, byte-
// identical output — and every corruption mode degrades to a cold
// cache, never to a panic or a wrong hit.

func TestSnapshotRoundTripByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type netCase struct {
		name string
		nw   *network.Network
	}
	nets := []netCase{
		{name: "identical", nw: identicalTrees(6)},
		{name: "dag24", nw: randomDAG(rng, 6, 24)},
		{name: "dag40", nw: randomDAG(rng, 8, 40)},
	}
	for k := 3; k <= 5; k++ {
		cache := NewSharedShapeCache(SharedCacheConfig{})
		want := make([]string, len(nets))
		for i, nc := range nets {
			opts := DefaultOptions(k)
			opts.Memoize = true
			opts.SharedCache = cache
			res, err := Map(nc.nw, opts)
			if err != nil {
				t.Fatalf("K=%d %s warm-up: %v", k, nc.name, err)
			}
			want[i] = blifOf(t, res)
		}
		if cache.Len() == 0 {
			t.Fatalf("K=%d: warm-up published no shapes", k)
		}

		var snap bytes.Buffer
		if err := cache.WriteSnapshot(&snap); err != nil {
			t.Fatalf("K=%d WriteSnapshot: %v", k, err)
		}
		restored := NewSharedShapeCache(SharedCacheConfig{})
		n, err := restored.RestoreSnapshot(bytes.NewReader(snap.Bytes()))
		if err != nil {
			t.Fatalf("K=%d RestoreSnapshot: %v", k, err)
		}
		if n != cache.Len() {
			t.Fatalf("K=%d: restored %d shapes, want %d", k, n, cache.Len())
		}

		for i, nc := range nets {
			opts := DefaultOptions(k)
			opts.Memoize = true
			opts.SharedCache = restored
			res, err := Map(nc.nw, opts)
			if err != nil {
				t.Fatalf("K=%d %s restored run: %v", k, nc.name, err)
			}
			if got := blifOf(t, res); got != want[i] {
				t.Fatalf("K=%d %s: restored-cache BLIF differs from warm", k, nc.name)
			}
			if res.CacheHits == 0 {
				t.Fatalf("K=%d %s: no hits against the restored cache", k, nc.name)
			}
			if res.CacheMisses != 0 {
				t.Fatalf("K=%d %s: %d misses against a fully restored cache", k, nc.name, res.CacheMisses)
			}
		}
	}
}

func TestSnapshotWrongSeedNeverHits(t *testing.T) {
	// A snapshot taken at K=4 restored into a K=5 server must simply
	// never hit: the seed prefix in every canonical encoding differs, so
	// entries are unreachable — present but harmless.
	nw := identicalTrees(6)
	cache := NewSharedShapeCache(SharedCacheConfig{})
	opts := DefaultOptions(4)
	opts.Memoize = true
	opts.SharedCache = cache
	if _, err := Map(nw, opts); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := cache.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	restored := NewSharedShapeCache(SharedCacheConfig{})
	if _, err := restored.RestoreSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	o5 := DefaultOptions(5)
	o5.Memoize = true
	o5.SharedCache = restored
	res, err := Map(nw, o5)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 0 {
		t.Fatalf("K=5 run hit a K=4 snapshot %d times", res.CacheHits)
	}
}

func TestSnapshotCorruptionDegradesToCold(t *testing.T) {
	nw := identicalTrees(8)
	cache := NewSharedShapeCache(SharedCacheConfig{})
	opts := DefaultOptions(4)
	opts.Memoize = true
	opts.SharedCache = cache
	ref, err := Map(nw, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := blifOf(t, ref)
	var snap bytes.Buffer
	if err := cache.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	good := snap.Bytes()

	corruptions := map[string][]byte{
		"truncated-header": good[:4],
		"truncated-mid":    good[:len(good)/2],
		"truncated-tail":   good[:len(good)-1],
	}
	for i, pos := range []int{10, len(good) / 3, len(good) / 2, len(good) - 12} {
		bad := append([]byte(nil), good...)
		bad[pos] ^= 0x20
		corruptions[map[int]string{0: "flip-a", 1: "flip-b", 2: "flip-c", 3: "flip-d"}[i]] = bad
	}
	for name, bad := range corruptions {
		t.Run(name, func(t *testing.T) {
			c := NewSharedShapeCache(SharedCacheConfig{})
			n, err := c.RestoreSnapshot(bytes.NewReader(bad))
			if err == nil {
				t.Fatalf("corrupted snapshot accepted (%d entries)", n)
			}
			if c.Len() != 0 {
				t.Fatalf("cache not empty after rejected restore: %d", c.Len())
			}
			// Cold cache still maps correctly.
			o := DefaultOptions(4)
			o.Memoize = true
			o.SharedCache = c
			res, err := Map(nw, o)
			if err != nil {
				t.Fatalf("cold map after rejected restore: %v", err)
			}
			if got := blifOf(t, res); got != want {
				t.Fatal("cold map after rejected restore emitted different bytes")
			}
		})
	}
}

func TestSnapshotNamespaceMismatchRejected(t *testing.T) {
	// A container written under a different payload namespace (e.g. a
	// future codec) must be rejected wholesale.
	nw := identicalTrees(4)
	cache := NewSharedShapeCache(SharedCacheConfig{})
	opts := DefaultOptions(4)
	opts.Memoize = true
	opts.SharedCache = cache
	if _, err := Map(nw, opts); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	err := cache.cache.Snapshot(&snap, "chortle-shape-v999", func(v any) ([]byte, error) {
		return encodeSharedShape(v.(*sharedShape)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	c := NewSharedShapeCache(SharedCacheConfig{})
	if n, err := c.RestoreSnapshot(&snap); err == nil {
		t.Fatalf("wrong-namespace snapshot accepted (%d entries)", n)
	} else if !bytes.Contains([]byte(err.Error()), []byte("namespace")) {
		t.Fatalf("unexpected rejection: %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("cache not empty after namespace rejection")
	}
}

func TestSharedShapeCodecRoundTrip(t *testing.T) {
	// Exercise the codec directly on cache-resident entries: every
	// encoded shape must decode to an equal encoding, DP geometry, and
	// template set.
	rng := rand.New(rand.NewSource(23))
	cache := NewSharedShapeCache(SharedCacheConfig{})
	for _, nw := range []*network.Network{identicalTrees(6), randomDAG(rng, 7, 30)} {
		opts := DefaultOptions(4)
		opts.Memoize = true
		opts.SharedCache = cache
		if _, err := Map(nw, opts); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	cache.cache.Range(func(_ uint64, v any, _ int64) bool {
		ss := v.(*sharedShape)
		dec, err := decodeSharedShape(encodeSharedShape(ss))
		if err != nil {
			t.Fatalf("decode(encode(shape)): %v", err)
		}
		if !bytes.Equal(dec.enc, ss.enc) {
			t.Fatal("encoding changed across the codec")
		}
		if dec.units != ss.units {
			t.Fatalf("units %d != %d", dec.units, ss.units)
		}
		if !sameDPShape(dec.dp, ss.dp) {
			t.Fatal("DP skeleton changed across the codec")
		}
		count++
		return true
	})
	if count == 0 {
		t.Fatal("no shapes to round-trip")
	}
}

// sameDPShape structurally compares two frozen DP trees.
func sameDPShape(a, b *nodeDP) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.full != b.full || a.nodeIdx != b.nodeIdx || a.stride != b.stride ||
		a.bestCost != b.bestCost || a.bestU != b.bestU ||
		len(a.g) != len(b.g) || len(a.choice) != len(b.choice) ||
		len(a.mmBest) != len(b.mmBest) || len(a.mmBestU) != len(b.mmBestU) ||
		len(a.fanins) != len(b.fanins) {
		return false
	}
	for i := range a.g {
		if a.g[i] != b.g[i] || a.choice[i] != b.choice[i] {
			return false
		}
	}
	for i := range a.mmBest {
		if a.mmBest[i] != b.mmBest[i] || a.mmBestU[i] != b.mmBestU[i] {
			return false
		}
	}
	for i := range a.fanins {
		if a.fanins[i].leafIdx != b.fanins[i].leafIdx {
			return false
		}
		if !sameDPShape(a.fanins[i].child, b.fanins[i].child) {
			return false
		}
	}
	return true
}
