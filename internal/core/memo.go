package core

import (
	"strconv"

	"chortle/internal/forest"
	"chortle/internal/network"
)

// Isomorphic-tree memoization: per-Map caches keyed by the structural
// tree hash (treehash.go). A shapeEntry owns the DP tables solved for
// the first tree of a shape plus the emission templates recorded while
// reconstructing trees of that shape; later trees rebind the tables to
// their own nodes (rebindDP) or replay a template outright, skipping
// both the 3^fanin DP and the per-LUT truth-table evaluation.

// shapeEntry is the memoized state of one tree shape.
type shapeEntry struct {
	f   *forest.Forest
	rep *network.Node // representative tree whose nodes dp is bound to
	dp  *nodeDP

	// nodes and leaves are the shape's cheap invariants (shapeInfo),
	// compared before the full sameTreeShape walk on bucket scans.
	nodes  int32
	leaves int32

	// units is the metered work of the shape's one solve, kept for the
	// representative tree's provenance records (reused trees record 0).
	units int64

	// frozen marks dp as a heap-frozen cross-run copy (freezeDP) whose
	// node and edge pointers are gone: every tree of the shape — the
	// representative included — must rebind before reconstructing, and
	// all of them carry the memo-reuse origin (their solve happened in
	// another run).
	frozen bool

	// shared, when non-nil, is the cross-run shape this entry mirrors
	// (cache hit) or published (cache insert). Template lookups fall
	// through to it and template recordings are offered to it, so a
	// pattern recorded by any run replays in every later run.
	shared *sharedShape

	// degraded marks a shape whose solve exhausted its search budget
	// (dp is nil). Every tree of the shape degrades to bin packing —
	// the work cost of a shape is deterministic, so this keeps the
	// degraded set identical with memoization on or off.
	degraded bool

	// seen is set once a tree of this shape has been reconstructed. Most
	// shapes never repeat, so the template machinery (leaf-signal walk,
	// emission recording) is engaged only from the second instance on.
	seen bool

	// templates maps a leaf-coincidence pattern (patternOf) to the
	// recorded emission for that pattern. The emitted LUT structure
	// depends not only on the tree shape but on which leaf edges happen
	// to resolve to the same signal (the LUT input list deduplicates
	// repeated signals), so templates are keyed by that partition.
	templates map[string]*emitTemplate
}

// templateFor resolves a leaf-pattern's recorded emission: run-local
// templates first, then the shared shape's (recorded by this or any
// earlier run).
func (e *shapeEntry) templateFor(pattern string) *emitTemplate {
	if t := e.templates[pattern]; t != nil {
		return t
	}
	if e.shared != nil {
		return e.shared.templateFor(pattern)
	}
	return nil
}

// putTemplate stores a freshly recorded template locally and offers it
// to the shared shape, if any.
func (e *shapeEntry) putTemplate(pattern string, t *emitTemplate) {
	e.templates[pattern] = t
	if e.shared != nil {
		e.shared.addTemplate(pattern, t)
	}
}

// shapeMemo is the per-Map shape cache. Buckets hold every distinct
// shape that hashed to the same value; lookups verify the full structure
// so hash collisions degrade to cache misses, never to wrong reuse.
type shapeMemo struct {
	buckets map[uint64][]*shapeEntry
}

func newShapeMemo() *shapeMemo { return &shapeMemo{buckets: make(map[uint64][]*shapeEntry)} }

func (m *shapeMemo) lookup(f *forest.Forest, root *network.Node, si shapeInfo) *shapeEntry {
	for _, e := range m.buckets[si.hash] {
		if e.rep == root {
			return e
		}
		// Colliding entries of a different shape almost always differ in
		// size; the counts reject them without walking either tree.
		if e.nodes != si.nodes || e.leaves != si.leaves {
			continue
		}
		if sameTreeShape(e.f, e.rep, f, root) {
			return e
		}
	}
	return nil
}

func (m *shapeMemo) insert(si shapeInfo, e *shapeEntry) {
	e.nodes, e.leaves = si.nodes, si.leaves
	m.buckets[si.hash] = append(m.buckets[si.hash], e)
}

// shapeCache is the seam between one Map run and its shape storage. Two
// implementations exist: runShapeCache, the per-run memo with exactly
// the pre-refactor behavior (the default), and tieredShapeCache
// (sharedcache.go), which backs the per-run memo with a process-wide
// SharedShapeCache so solves and templates survive across Map calls.
// All methods are called from the run's main goroutine only; the tiered
// implementation handles cross-run concurrency internally.
type shapeCache interface {
	// lookup returns this run's entry for root's shape, or nil. The
	// tiered implementation may materialize an entry from cross-run
	// storage; either way a non-nil entry is registered in the run.
	lookup(f *forest.Forest, root *network.Node, si shapeInfo) *shapeEntry
	// insert registers a freshly created (possibly not yet solved)
	// entry for root's shape.
	insert(si shapeInfo, e *shapeEntry)
	// publish offers a fully solved entry to cross-run storage. A no-op
	// for the per-run cache; the tiered cache freezes and stores it
	// unless it is degraded, unmappable, or already shared.
	publish(root *network.Node, si shapeInfo, e *shapeEntry)
	// stats reports the run's cross-run hit/miss counts (distinct
	// shapes resolved from / missing in the shared tier; always zero
	// for the per-run cache).
	stats() (hits, misses int)
}

// runShapeCache is the default shapeCache: the per-run memo and nothing
// else. Byte-for-byte the pre-refactor behavior.
type runShapeCache struct {
	memo *shapeMemo
}

func newRunShapeCache() *runShapeCache { return &runShapeCache{memo: newShapeMemo()} }

func (c *runShapeCache) lookup(f *forest.Forest, root *network.Node, si shapeInfo) *shapeEntry {
	return c.memo.lookup(f, root, si)
}

func (c *runShapeCache) insert(si shapeInfo, e *shapeEntry) { c.memo.insert(si, e) }

func (c *runShapeCache) publish(*network.Node, shapeInfo, *shapeEntry) {}

func (c *runShapeCache) stats() (int, int) { return 0, 0 }

// rebindDP binds cached DP tables — solved on a structurally identical
// tree — to the nodes of the tree rooted at root. The flat table slabs
// are shared read-only; only the nodeDP skeleton and fanin references
// (which name actual network nodes for reconstruction) are rebuilt, so a
// cache hit costs O(tree) pointer work instead of an O(3^fanin) solve.
func rebindDP(a *dpArena, cached *nodeDP, f *forest.Forest, root *network.Node) *nodeDP {
	var leafCtr int32
	var walk func(c *nodeDP, n *network.Node) *nodeDP
	walk = func(c *nodeDP, n *network.Node) *nodeDP {
		dp := a.allocNode()
		frs := a.allocFanins(len(n.Fanins))
		for i, e := range n.Fanins {
			fr := faninRef{edge: e, leafIdx: -1}
			if cc := c.fanins[i].child; cc != nil {
				fr.child = walk(cc, e.Node)
			} else {
				fr.leafIdx = leafCtr
				leafCtr++
			}
			frs[i] = fr
		}
		*dp = nodeDP{
			node: n, fanins: frs, full: c.full,
			nodeIdx: c.nodeIdx, stride: c.stride,
			g: c.g, choice: c.choice, mmBest: c.mmBest, mmBestU: c.mmBestU,
			bestCost: c.bestCost, bestU: c.bestU,
		}
		return dp
	}
	return walk(cached, root)
}

// patternOf canonicalizes which leaf signals coincide: entry i is the
// first leaf index carrying the same signal as leaf i. Two same-shaped
// trees with equal patterns emit identical LUT structure.
func patternOf(sigs []string) string {
	buf := make([]byte, 0, 3*len(sigs))
	first := make(map[string]int, len(sigs))
	for i, s := range sigs {
		j, ok := first[s]
		if !ok {
			j = i
			first[s] = i
		}
		buf = strconv.AppendInt(buf, int64(j), 10)
		buf = append(buf, '.')
	}
	return string(buf)
}

// costMemo caches tree costs by shape across networks — the cost-aware
// duplication search maps hundreds of trial networks that differ from
// the base network in only a couple of trees, so almost every tree of a
// trial resolves here in O(tree) hashing instead of an O(3^fanin) solve.
// Entries remember their origin forest so verification can compare
// shapes across networks.
type costMemo struct {
	buckets map[uint64][]costEntry
}

type costEntry struct {
	f    *forest.Forest
	rep  *network.Node
	cost int32
}

func newCostMemo() *costMemo { return &costMemo{buckets: make(map[uint64][]costEntry)} }

func (m *costMemo) lookup(f *forest.Forest, root *network.Node, h uint64) (int32, bool) {
	for _, e := range m.buckets[h] {
		if sameTreeShape(e.f, e.rep, f, root) {
			return e.cost, true
		}
	}
	return 0, false
}

func (m *costMemo) insert(h uint64, f *forest.Forest, rep *network.Node, cost int32) {
	m.buckets[h] = append(m.buckets[h], costEntry{f: f, rep: rep, cost: cost})
}
