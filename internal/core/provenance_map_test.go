package core

import (
	"math/rand"
	"testing"

	"chortle/internal/network"
	"chortle/internal/verify"
)

// preparedGates returns the names of the prepared network's non-input
// nodes — the set provenance Covers must partition exactly.
func preparedGates(t *testing.T, res *Result) map[string]bool {
	t.Helper()
	if res.Prepared == nil {
		t.Fatal("Result.Prepared not recorded with Provenance on")
	}
	gates := make(map[string]bool)
	for _, n := range res.Prepared.Nodes {
		if !n.IsInput() {
			gates[n.Name] = true
		}
	}
	return gates
}

func checkProvenance(t *testing.T, res *Result) {
	t.Helper()
	if err := res.Circuit.CheckProvenance(preparedGates(t, res)); err != nil {
		t.Fatal(err)
	}
}

// TestProvenanceRandomDAGs maps random reconvergent DAGs with
// provenance recording on, in every mode the mapper has, and checks
// the coverage invariant each time: every prepared gate is covered by
// exactly one LUT, every LUT carries a complete record.
func TestProvenanceRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	modes := []struct {
		name string
		tune func(*Options)
	}{
		{"sequential", func(o *Options) { o.Parallel, o.Memoize = false, false }},
		{"memo", func(o *Options) { o.Parallel, o.Memoize = false, true }},
		{"parallel", func(o *Options) { o.Parallel, o.Memoize = true, true }},
		{"binpack", func(o *Options) { o.Strategy = StrategyBinPack }},
		{"depth", func(o *Options) { o.OptimizeDepth = true }},
		{"repack", func(o *Options) { o.RepackLUTs = true }},
		{"degraded", func(o *Options) { o.Budget.WorkUnits = 1 }},
	}
	for trial := 0; trial < 6; trial++ {
		nw := randomDAG(rng, 5+rng.Intn(4), 10+rng.Intn(20))
		for k := 3; k <= 5; k++ {
			for _, mode := range modes {
				opts := DefaultOptions(k)
				opts.Provenance = true
				mode.tune(&opts)
				res, err := Map(nw, opts)
				if err != nil {
					t.Fatalf("trial %d K=%d %s: %v", trial, k, mode.name, err)
				}
				checkProvenance(t, res)
				if err := verify.NetworkVsCircuit(nw, res.Circuit, 16, int64(trial)); err != nil {
					t.Fatalf("trial %d K=%d %s: %v", trial, k, mode.name, err)
				}
			}
		}
	}
}

// identicalTrees builds a network of count structurally identical
// multi-level trees, each its own output — the shape memo's best case,
// forcing the rebind path (second instance) and the template replay
// path (third instance onward).
func identicalTrees(count int) *network.Network {
	nw := network.New("iso")
	for i := 0; i < count; i++ {
		p := string(rune('a'+i)) + "_"
		var ins []*network.Node
		for j := 0; j < 6; j++ {
			ins = append(ins, nw.AddInput(p+inName(j)))
		}
		l1 := nw.AddGate(p+"l1", network.OpAnd,
			network.Fanin{Node: ins[0]}, network.Fanin{Node: ins[1], Invert: true})
		l2 := nw.AddGate(p+"l2", network.OpOr,
			network.Fanin{Node: ins[2]}, network.Fanin{Node: ins[3]})
		l3 := nw.AddGate(p+"l3", network.OpAnd,
			network.Fanin{Node: l1}, network.Fanin{Node: l2},
			network.Fanin{Node: ins[4]})
		root := nw.AddGate(p+"root", network.OpOr,
			network.Fanin{Node: l3}, network.Fanin{Node: ins[5], Invert: true})
		nw.MarkOutput(p+"y", root, false)
	}
	return nw
}

// TestProvenanceMemoOrigins drives the memo machinery through all
// three of its branches — fresh solve, DP rebind, template replay —
// and checks that origins land accordingly while coverage stays exact.
func TestProvenanceMemoOrigins(t *testing.T) {
	nw := identicalTrees(5)
	opts := DefaultOptions(4)
	opts.Provenance = true
	opts.Parallel = false
	opts.Memoize = true
	res, err := Map(nw, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkProvenance(t, res)
	counts := res.Circuit.OriginCounts()
	if counts["fresh"] == 0 || counts["memo"] == 0 || counts["replay"] == 0 {
		t.Fatalf("want fresh, memo and replay origins across 5 identical trees, got %v", counts)
	}
	// Mode independence: same trees, same shapes, same covers without
	// memoization — only the origins may differ.
	opts2 := opts
	opts2.Memoize = false
	res2, err := Map(nw, opts2)
	if err != nil {
		t.Fatal(err)
	}
	checkProvenance(t, res2)
	for _, l := range res.Circuit.LUTs {
		p, q := res.Circuit.ProvenanceOf(l.Name), res2.Circuit.ProvenanceOf(l.Name)
		if q == nil {
			t.Fatalf("LUT %s missing from non-memo run", l.Name)
		}
		if p.Shape != q.Shape || p.Tree != q.Tree {
			t.Fatalf("LUT %s: shape/tree differ across memoize: %q/%q vs %q/%q",
				l.Name, p.Shape, p.Tree, q.Shape, q.Tree)
		}
		if !p.Origin.Searched() || !q.Origin.Searched() {
			t.Fatalf("LUT %s: non-searched origin %v/%v", l.Name, p.Origin, q.Origin)
		}
	}
}

// TestProvenanceDuplication covers the cost-aware duplication path
// with provenance on.
func TestProvenanceDuplication(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	nw := randomDAG(rng, 6, 18)
	opts := DefaultOptions(4)
	opts.Provenance = true
	res, _, err := MapDuplicateCostAwareCtx(t.Context(), nw, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkProvenance(t, res)
}

// TestProvenanceOffNoPrepared pins that the prepared network is only
// retained when provenance asks for it.
func TestProvenanceOffNoPrepared(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	nw := randomDAG(rng, 5, 10)
	res, err := Map(nw, DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Prepared != nil {
		t.Fatal("Result.Prepared retained with Provenance off")
	}
	if res.Circuit.HasProvenance() {
		t.Fatal("provenance records present with Provenance off")
	}
}
