package core

import (
	"math/rand"
	"testing"

	"chortle/internal/forest"
	"chortle/internal/network"
	"chortle/internal/verify"
)

// figure1 is the running example network of the paper (Figures 1 and 2):
// five inputs, four gates, one internal fanout node, two outputs.
func figure1() *network.Network {
	nw := network.New("figure1")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	c := nw.AddInput("c")
	d := nw.AddInput("d")
	e := nw.AddInput("e")
	g1 := nw.AddGate("g1", network.OpAnd, network.Fanin{Node: a}, network.Fanin{Node: b})
	g2 := nw.AddGate("g2", network.OpOr, network.Fanin{Node: c, Invert: true}, network.Fanin{Node: d})
	g3 := nw.AddGate("g3", network.OpOr, network.Fanin{Node: g1}, network.Fanin{Node: g2})
	g4 := nw.AddGate("g4", network.OpAnd, network.Fanin{Node: g2}, network.Fanin{Node: e})
	nw.MarkOutput("y", g3, false)
	nw.MarkOutput("z", g4, true)
	return nw
}

func TestMapFigure1(t *testing.T) {
	nw := figure1()
	for k := 2; k <= 6; k++ {
		res, err := Map(nw, DefaultOptions(k))
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if err := verify.NetworkVsCircuit(nw, res.Circuit, 0, 1); err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if res.LUTs != res.PredictedCost {
			t.Fatalf("K=%d: emitted %d != predicted %d", k, res.LUTs, res.PredictedCost)
		}
		if res.Trees != 3 {
			t.Fatalf("K=%d: trees = %d, want 3 (g2, g3, g4)", k, res.Trees)
		}
	}
	// With 3-input LUTs the three trees need one LUT each (Figure 2
	// shows a 3-LUT realization of this network).
	res, _ := Map(nw, DefaultOptions(3))
	if res.LUTs != 3 {
		t.Fatalf("K=3: LUTs = %d, want 3", res.LUTs)
	}
}

// mkAndTree builds a random-shaped fanout-free tree of `op` gates with
// exactly nLeaves distinct primary-input leaf edges.
func mkTree(rng *rand.Rand, op network.Op, nLeaves int) *network.Network {
	nw := network.New("tree")
	type sig struct{ n *network.Node }
	var avail []sig
	for i := 0; i < nLeaves; i++ {
		avail = append(avail, sig{nw.AddInput(inName(i))})
	}
	g := 0
	for len(avail) > 1 {
		k := 2 + rng.Intn(3)
		if k > len(avail) {
			k = len(avail)
		}
		var fins []network.Fanin
		for i := 0; i < k; i++ {
			j := rng.Intn(len(avail))
			fins = append(fins, network.Fanin{Node: avail[j].n, Invert: rng.Intn(4) == 0})
			avail = append(avail[:j], avail[j+1:]...)
		}
		g++
		avail = append(avail, sig{nw.AddGate(gName(g), op, fins...)})
	}
	nw.MarkOutput("y", avail[0].n, false)
	return nw
}

func inName(i int) string { return "x" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }
func gName(i int) string  { return "g" + string(rune('0'+i/10)) + string(rune('0'+i%10)) }

// TestSingleNodeClosedForm checks the decomposition search against an
// independent closed form: a single gate with L fanin leaves maps to
// exactly ceil((L-1)/(K-1)) K-LUTs, because decomposing one node can
// rebalance its fanins freely. (For multi-node trees the closed form is
// only a lower bound: Chortle decomposes nodes but never re-associates
// logic across existing node boundaries, so a rigid tree shape can
// force imperfect packing.)
func TestSingleNodeClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		op := network.OpAnd
		if trial%2 == 1 {
			op = network.OpOr
		}
		nLeaves := 2 + rng.Intn(9) // up to 10: below the split threshold
		nw := network.New("one")
		var fins []network.Fanin
		for i := 0; i < nLeaves; i++ {
			fins = append(fins, network.Fanin{Node: nw.AddInput(inName(i)), Invert: rng.Intn(4) == 0})
		}
		g := nw.AddGate("g", op, fins...)
		nw.MarkOutput("y", g, false)
		for k := 2; k <= 5; k++ {
			res, err := Map(nw, DefaultOptions(k))
			if err != nil {
				t.Fatalf("trial %d K=%d: %v", trial, k, err)
			}
			want := (nLeaves - 2 + k - 1) / (k - 1) // ceil((L-1)/(K-1))
			if want < 1 {
				want = 1
			}
			if res.LUTs != want {
				t.Fatalf("trial %d: %v node with %d fanins, K=%d: got %d LUTs, want %d",
					trial, op, nLeaves, k, res.LUTs, want)
			}
			if err := verify.NetworkVsCircuit(nw, res.Circuit, 16, int64(trial)); err != nil {
				t.Fatalf("trial %d K=%d: %v", trial, k, err)
			}
		}
	}
}

// TestTreeLowerAndUpperBounds sanity-checks general trees: the LUT count
// can never beat the information-theoretic packing bound and never
// exceeds one LUT per gate.
func TestTreeLowerAndUpperBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 60; trial++ {
		op := network.OpAnd
		if trial%2 == 1 {
			op = network.OpOr
		}
		nLeaves := 2 + rng.Intn(14)
		nw := mkTree(rng, op, nLeaves)
		for k := 2; k <= 5; k++ {
			res, err := Map(nw, DefaultOptions(k))
			if err != nil {
				t.Fatalf("trial %d K=%d: %v", trial, k, err)
			}
			lower := (nLeaves - 2 + k - 1) / (k - 1)
			if lower < 1 {
				lower = 1
			}
			// Upper bound: mapping each gate on its own needs
			// ceil((fanin-1)/(K-1)) LUTs per gate.
			upper := 0
			for _, n := range nw.Nodes {
				if !n.IsInput() {
					upper += (len(n.Fanins) - 2 + k - 1) / (k - 1)
					if len(n.Fanins) == 1 {
						upper++
					}
				}
			}
			if res.LUTs < lower {
				t.Fatalf("trial %d K=%d: %d LUTs beats the packing bound %d", trial, k, res.LUTs, lower)
			}
			if res.LUTs > upper {
				t.Fatalf("trial %d K=%d: %d LUTs exceeds naive bound %d", trial, k, res.LUTs, upper)
			}
			if err := verify.NetworkVsCircuit(nw, res.Circuit, 16, int64(trial)); err != nil {
				t.Fatalf("trial %d K=%d: %v", trial, k, err)
			}
		}
	}
}

// randomMixedTree builds a fanout-free tree with mixed AND/OR gates.
func randomMixedTree(rng *rand.Rand, nLeaves int) *network.Network {
	nw := network.New("mixed")
	var avail []*network.Node
	for i := 0; i < nLeaves; i++ {
		avail = append(avail, nw.AddInput(inName(i)))
	}
	g := 0
	for len(avail) > 1 {
		k := 2 + rng.Intn(3)
		if k > len(avail) {
			k = len(avail)
		}
		var fins []network.Fanin
		for i := 0; i < k; i++ {
			j := rng.Intn(len(avail))
			fins = append(fins, network.Fanin{Node: avail[j], Invert: rng.Intn(3) == 0})
			avail = append(avail[:j], avail[j+1:]...)
		}
		op := network.OpAnd
		if rng.Intn(2) == 1 {
			op = network.OpOr
		}
		g++
		avail = append(avail, nw.AddGate(gName(g), op, fins...))
	}
	nw.MarkOutput("y", avail[0], false)
	return nw
}

// TestDPMatchesExhaustiveReference validates the production subset DP
// against the paper-literal exhaustive partition/division search.
func TestDPMatchesExhaustiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		nw := randomMixedTree(rng, 2+rng.Intn(8))
		for k := 2; k <= 5; k++ {
			opts := DefaultOptions(k)
			fast, err := TreeCosts(nw, opts)
			if err != nil {
				t.Fatalf("trial %d K=%d: %v", trial, k, err)
			}
			slow, err := ReferenceTreeCosts(nw, opts)
			if err != nil {
				t.Fatalf("trial %d K=%d: %v", trial, k, err)
			}
			for name, fc := range fast {
				if sc, ok := slow[name]; !ok || sc != fc {
					t.Fatalf("trial %d K=%d tree %q: DP=%d reference=%d", trial, k, name, fc, sc)
				}
			}
		}
	}
}

// TestMonotonicityLemma checks the paper's Section 3.1 claim
// cost(minmap(n,U)) >= cost(minmap(n,K)) under the "utilization at most
// U" reading: minmapAtMost(u) = min over 2 <= v <= u of minmap(v) must
// be non-increasing... i.e. minmapAtMost(K) is the overall best. Under
// the literal exact-utilization reading the lemma has counterexamples —
// see TestMonotonicityCounterexample — but the algorithm's optimality
// only needs the at-most version: bestCost = min over all utilizations,
// which this test pins down.
func TestMonotonicityLemma(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 100; trial++ {
		nw := randomMixedTree(rng, 2+rng.Intn(10))
		nw.Sweep()
		k := 2 + rng.Intn(4)
		opts := DefaultOptions(k)
		splitWideNodes(nw, opts.SplitThreshold)
		f, err := forest.Decompose(nw)
		if err != nil {
			t.Fatal(err)
		}
		for _, root := range f.Roots {
			dp := buildDP(f, root, opts)
			atMost := func(u int) int32 {
				best := infinity
				for v := 2; v <= u; v++ {
					if dp.minmap(v) < best {
						best = dp.minmap(v)
					}
				}
				return best
			}
			for u := 2; u <= k; u++ {
				if atMost(u) < atMost(k) {
					t.Fatalf("trial %d: at-most minmap(%d)=%d < at-most minmap(K=%d)=%d at %q",
						trial, u, atMost(u), k, atMost(k), root.Name)
				}
				if dp.minmap(u) < dp.bestCost {
					t.Fatalf("trial %d: minmap(%d) below bestCost at %q", trial, u, root.Name)
				}
			}
			if dp.bestCost != atMost(k) {
				t.Fatalf("trial %d: bestCost %d != min over utilizations %d at %q",
					trial, dp.bestCost, atMost(k), root.Name)
			}
		}
	}
}

// TestMonotonicityCounterexample documents a reproduction finding: with
// utilization read as *exactly* U (Definition 3's literal wording), the
// paper's lemma cost(minmap(n,U)) >= cost(minmap(n,K)) fails. In this
// tree the root's child g3 has minmap(2)=3, minmap(3)=2, minmap(4)=1;
// granting the root's child-slot 2 pins (utilization 4 overall) costs
// more than feeding the finished child signal (utilization 3), because
// merging g3's cheap utilization-4 root would overshoot K=4.
func TestMonotonicityCounterexample(t *testing.T) {
	nw := network.New("cex")
	xa := nw.AddInput("xa")
	xb := nw.AddInput("xb")
	xc := nw.AddInput("xc")
	xd := nw.AddInput("xd")
	xe := nw.AddInput("xe")
	xf := nw.AddInput("xf")
	g1 := nw.AddGate("g1", network.OpAnd, network.Fanin{Node: xc}, network.Fanin{Node: xf, Invert: true})
	g2 := nw.AddGate("g2", network.OpOr, network.Fanin{Node: xd}, network.Fanin{Node: xa, Invert: true})
	g3 := nw.AddGate("g3", network.OpOr, network.Fanin{Node: g1, Invert: true}, network.Fanin{Node: g2})
	g4 := nw.AddGate("g4", network.OpAnd, network.Fanin{Node: xe}, network.Fanin{Node: g3, Invert: true}, network.Fanin{Node: xb})
	nw.MarkOutput("y", g4, false)

	f, err := forest.Decompose(nw)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Roots) != 1 {
		t.Fatalf("expected a single tree, got %d", len(f.Roots))
	}
	dp := buildDP(f, f.Roots[0], DefaultOptions(4))
	if dp.minmap(3) != 2 || dp.minmap(4) != 3 {
		t.Fatalf("counterexample drifted: minmap(3)=%d minmap(4)=%d, want 2 and 3",
			dp.minmap(3), dp.minmap(4))
	}
	if dp.bestCost != 2 {
		t.Fatalf("bestCost = %d, want 2", dp.bestCost)
	}
	// The mapper must still pick the 2-LUT mapping and stay correct.
	res, err := Map(nw, DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.LUTs != 2 {
		t.Fatalf("mapped %d LUTs, want 2", res.LUTs)
	}
	if err := verify.NetworkVsCircuit(nw, res.Circuit, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestMapEquivalenceRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 40; trial++ {
		nw := randomDAG(rng, 5+rng.Intn(4), 8+rng.Intn(20))
		for k := 2; k <= 6; k++ {
			res, err := Map(nw, DefaultOptions(k))
			if err != nil {
				t.Fatalf("trial %d K=%d: %v", trial, k, err)
			}
			if err := verify.NetworkVsCircuit(nw, res.Circuit, 32, int64(trial)); err != nil {
				t.Fatalf("trial %d K=%d: %v", trial, k, err)
			}
		}
	}
}

// randomDAG builds a random multi-output DAG with reconvergence and
// internal fanout.
func randomDAG(rng *rand.Rand, nIn, nGates int) *network.Network {
	nw := network.New("dag")
	var pool []*network.Node
	for i := 0; i < nIn; i++ {
		pool = append(pool, nw.AddInput(inName(i)))
	}
	for i := 0; i < nGates; i++ {
		op := network.OpAnd
		if rng.Intn(2) == 1 {
			op = network.OpOr
		}
		k := 2 + rng.Intn(4)
		seen := map[*network.Node]bool{}
		var fins []network.Fanin
		for len(fins) < k && len(fins) < len(pool) {
			n := pool[rng.Intn(len(pool))]
			if seen[n] {
				continue
			}
			seen[n] = true
			fins = append(fins, network.Fanin{Node: n, Invert: rng.Intn(3) == 0})
		}
		pool = append(pool, nw.AddGate(gName(i+1), op, fins...))
	}
	nw.MarkOutput("y", pool[len(pool)-1], false)
	nw.MarkOutput("z", pool[len(pool)-2], true)
	nw.MarkOutput("w", pool[len(pool)-3], false)
	nw.Sweep()
	return nw
}

func TestNodeSplittingQuality(t *testing.T) {
	// Section 3.1.4: "the mapping of a split node uses no more lookup
	// tables than the mapping of the non-split nodes". Compare wide
	// single-op nodes mapped with threshold 10 (split) vs threshold 16
	// (exact DP over the whole fanin).
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		nLeaves := 11 + rng.Intn(5) // 11..15 fanin: exact still feasible
		nw := network.New("wide")
		var fins []network.Fanin
		for i := 0; i < nLeaves; i++ {
			fins = append(fins, network.Fanin{Node: nw.AddInput(inName(i)), Invert: rng.Intn(4) == 0})
		}
		op := network.OpAnd
		if trial%2 == 1 {
			op = network.OpOr
		}
		g := nw.AddGate("wide", op, fins...)
		nw.MarkOutput("y", g, false)
		for k := 2; k <= 5; k++ {
			split := DefaultOptions(k) // threshold 10 -> splits
			exact := DefaultOptions(k)
			exact.SplitThreshold = 16 // no split
			rs, err := Map(nw, split)
			if err != nil {
				t.Fatal(err)
			}
			re, err := Map(nw, exact)
			if err != nil {
				t.Fatal(err)
			}
			if rs.SplitNodes == 0 {
				t.Fatalf("trial %d: expected splitting at fanin %d", trial, nLeaves)
			}
			if rs.LUTs != re.LUTs {
				t.Fatalf("trial %d K=%d: split=%d exact=%d LUTs", trial, k, rs.LUTs, re.LUTs)
			}
			if err := verify.NetworkVsCircuit(nw, rs.Circuit, 16, 7); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestDecompositionAblation(t *testing.T) {
	// Searching decompositions must never hurt, and on trees with wide
	// nodes it must help for small K.
	rng := rand.New(rand.NewSource(43))
	helped := false
	for trial := 0; trial < 30; trial++ {
		nw := randomMixedTree(rng, 4+rng.Intn(8))
		for k := 2; k <= 5; k++ {
			on := DefaultOptions(k)
			off := DefaultOptions(k)
			off.DisableDecomposition = true
			ron, err := Map(nw, on)
			if err != nil {
				t.Fatal(err)
			}
			roff, err := Map(nw, off)
			if err != nil {
				t.Fatal(err)
			}
			if ron.LUTs > roff.LUTs {
				t.Fatalf("trial %d K=%d: decomposition hurt (%d > %d)", trial, k, ron.LUTs, roff.LUTs)
			}
			if ron.LUTs < roff.LUTs {
				helped = true
			}
			if err := verify.NetworkVsCircuit(nw, roff.Circuit, 16, 3); err != nil {
				t.Fatalf("ablation mapping wrong: %v", err)
			}
		}
	}
	if !helped {
		t.Fatal("decomposition search never improved any trial; ablation is vacuous")
	}
}

func TestFanoutDuplication(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	improvedSomewhere := false
	for trial := 0; trial < 25; trial++ {
		nw := randomDAG(rng, 5, 12+rng.Intn(10))
		for k := 3; k <= 5; k++ {
			plain := DefaultOptions(k)
			dup := DefaultOptions(k)
			dup.DuplicateFanoutLogic = true
			rp, err := Map(nw, plain)
			if err != nil {
				t.Fatal(err)
			}
			rd, err := Map(nw, dup)
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.NetworkVsCircuit(nw, rd.Circuit, 32, int64(trial)); err != nil {
				t.Fatalf("duplication broke function: %v", err)
			}
			if rd.LUTs < rp.LUTs {
				improvedSomewhere = true
			}
		}
	}
	_ = improvedSomewhere // duplication is a heuristic; improvement is workload dependent
}

func TestOutputDrivenByInput(t *testing.T) {
	nw := network.New("pi")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	g := nw.AddGate("g", network.OpAnd, network.Fanin{Node: a}, network.Fanin{Node: b})
	nw.MarkOutput("y", g, false)
	nw.MarkOutput("pass", a, false)
	nw.MarkOutput("npass", a, true)
	res, err := Map(nw, DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.LUTs != 1 {
		t.Fatalf("LUTs = %d, want 1", res.LUTs)
	}
	if err := verify.NetworkVsCircuit(nw, res.Circuit, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsValidation(t *testing.T) {
	nw := figure1()
	if _, err := Map(nw, Options{K: 1, SplitThreshold: 10}); err == nil {
		t.Fatal("K=1 accepted")
	}
	if _, err := Map(nw, Options{K: 7, SplitThreshold: 10}); err == nil {
		t.Fatal("K=7 accepted")
	}
	if _, err := Map(nw, Options{K: 4, SplitThreshold: 1}); err == nil {
		t.Fatal("threshold 1 accepted")
	}
}

func TestSplitWideNodes(t *testing.T) {
	nw := network.New("w")
	var fins []network.Fanin
	for i := 0; i < 25; i++ {
		fins = append(fins, network.Fanin{Node: nw.AddInput(inName(i))})
	}
	g := nw.AddGate("g", network.OpAnd, fins...)
	nw.MarkOutput("y", g, false)
	before, _ := nw.Simulate(map[string]uint64{inName(3): 0})
	added := splitWideNodes(nw, 10)
	if added == 0 {
		t.Fatal("no split happened")
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, n := range nw.Nodes {
		if !n.IsInput() && len(n.Fanins) > 10 {
			t.Fatalf("node %q still has fanin %d", n.Name, len(n.Fanins))
		}
	}
	after, _ := nw.Simulate(map[string]uint64{inName(3): 0})
	if before["y"] != after["y"] {
		t.Fatal("split changed function")
	}
}

// TestRepackOption checks the reconvergence-recovery post-pass: on an
// XOR structure the repacked mapping reaches the function's true input
// count, and functionality is always preserved.
func TestRepackOption(t *testing.T) {
	// y = x XOR c, built with reconvergent fanout on both inputs.
	nw := network.New("xor")
	x := nw.AddInput("x")
	c := nw.AddInput("c")
	g1 := nw.AddGate("g1", network.OpAnd, network.Fanin{Node: x}, network.Fanin{Node: c, Invert: true})
	g2 := nw.AddGate("g2", network.OpAnd, network.Fanin{Node: x, Invert: true}, network.Fanin{Node: c})
	g3 := nw.AddGate("g3", network.OpOr, network.Fanin{Node: g1}, network.Fanin{Node: g2})
	nw.MarkOutput("y", g3, false)

	plain, err := Map(nw, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if plain.LUTs != 2 {
		t.Fatalf("plain XOR at K=3: %d LUTs, want 2 (per-edge accounting)", plain.LUTs)
	}
	o := DefaultOptions(3)
	o.RepackLUTs = true
	packed, err := Map(nw, o)
	if err != nil {
		t.Fatal(err)
	}
	if got := packed.Circuit.Count(); got != 1 {
		t.Fatalf("repacked XOR: %d LUTs, want 1", got)
	}
	if err := verify.NetworkVsCircuit(nw, packed.Circuit, 0, 1); err != nil {
		t.Fatal(err)
	}
}

// TestRepackNeverHurtsAndPreserves runs the repack option over random
// DAGs: LUT count can only drop, and equivalence must hold.
func TestRepackNeverHurtsAndPreserves(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	improved := false
	for trial := 0; trial < 30; trial++ {
		nw := randomDAG(rng, 5+rng.Intn(3), 10+rng.Intn(15))
		for k := 3; k <= 5; k++ {
			plain, err := Map(nw, DefaultOptions(k))
			if err != nil {
				t.Fatal(err)
			}
			o := DefaultOptions(k)
			o.RepackLUTs = true
			packed, err := Map(nw, o)
			if err != nil {
				t.Fatal(err)
			}
			if packed.Circuit.Count() > plain.LUTs {
				t.Fatalf("trial %d K=%d: repack grew %d -> %d", trial, k, plain.LUTs, packed.Circuit.Count())
			}
			if packed.Circuit.Count() < plain.LUTs {
				improved = true
			}
			if err := verify.NetworkVsCircuit(nw, packed.Circuit, 32, int64(trial)); err != nil {
				t.Fatalf("trial %d K=%d: %v", trial, k, err)
			}
		}
	}
	if !improved {
		t.Log("repack found no merges in any trial (acceptable but unusual)")
	}
}

// TestDepthMode checks the depth-oriented objective: mapped depth never
// exceeds the area-mode depth, functionality holds, and on a structure
// with a known depth trade-off the mode actually reduces levels.
func TestDepthMode(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	improved := false
	for trial := 0; trial < 30; trial++ {
		nw := randomDAG(rng, 5+rng.Intn(3), 12+rng.Intn(20))
		for k := 3; k <= 5; k++ {
			area, err := Map(nw, DefaultOptions(k))
			if err != nil {
				t.Fatal(err)
			}
			o := DefaultOptions(k)
			o.OptimizeDepth = true
			depth, err := Map(nw, o)
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.NetworkVsCircuit(nw, depth.Circuit, 32, int64(trial)); err != nil {
				t.Fatalf("trial %d K=%d: %v", trial, k, err)
			}
			sa, err := area.Circuit.Stats()
			if err != nil {
				t.Fatal(err)
			}
			sd, err := depth.Circuit.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if sd.Depth > sa.Depth {
				t.Fatalf("trial %d K=%d: depth mode deeper (%d) than area mode (%d)",
					trial, k, sd.Depth, sa.Depth)
			}
			if sd.Depth < sa.Depth {
				improved = true
			}
			if depth.LUTs < area.LUTs {
				t.Fatalf("trial %d K=%d: depth mode beat the area-optimal count (%d < %d)",
					trial, k, depth.LUTs, area.LUTs)
			}
		}
	}
	if !improved {
		t.Error("depth mode never reduced depth on any trial; objective seems inert")
	}
}

// TestDepthModeKnownTradeoff pins a concrete case: a chain where the
// area-greedy cover happens to serialize but a depth-aware division
// balances. g = AND over {x1, c1} with c1 = AND(x2, c2), c2 = AND(x3,
// x4, x5, x6): at K=4, area mode can realize the tree in 2 LUTs several
// ways (some depth 3); depth mode must find a 2-level cover.
func TestDepthModeKnownTradeoff(t *testing.T) {
	nw := network.New("chain")
	x := make([]*network.Node, 7)
	for i := range x {
		x[i] = nw.AddInput(inName(i))
	}
	c2 := nw.AddGate("c2", network.OpAnd,
		network.Fanin{Node: x[2]}, network.Fanin{Node: x[3]},
		network.Fanin{Node: x[4]}, network.Fanin{Node: x[5]})
	c1 := nw.AddGate("c1", network.OpAnd,
		network.Fanin{Node: x[1]}, network.Fanin{Node: c2})
	g := nw.AddGate("g", network.OpAnd,
		network.Fanin{Node: x[0]}, network.Fanin{Node: c1})
	nw.MarkOutput("y", g, false)

	o := DefaultOptions(4)
	o.OptimizeDepth = true
	res, err := Map(nw, o)
	if err != nil {
		t.Fatal(err)
	}
	s, err := res.Circuit.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth != 2 {
		t.Fatalf("depth mode found depth %d, want 2 (7 leaves, K=4)", s.Depth)
	}
	if err := verify.NetworkVsCircuit(nw, res.Circuit, 0, 1); err != nil {
		t.Fatal(err)
	}
}

// TestBinPackStrategy: the crf-style packer must be functionally
// correct, never beat the exhaustive optimum on trees, and handle
// arbitrarily wide nodes without splitting.
func TestBinPackStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 30; trial++ {
		nw := randomDAG(rng, 5+rng.Intn(3), 10+rng.Intn(15))
		for k := 2; k <= 5; k++ {
			exact, err := Map(nw, DefaultOptions(k))
			if err != nil {
				t.Fatal(err)
			}
			o := DefaultOptions(k)
			o.Strategy = StrategyBinPack
			packed, err := Map(nw, o)
			if err != nil {
				t.Fatalf("trial %d K=%d: %v", trial, k, err)
			}
			if err := verify.NetworkVsCircuit(nw, packed.Circuit, 32, int64(trial)); err != nil {
				t.Fatalf("trial %d K=%d: %v", trial, k, err)
			}
			if packed.LUTs < exact.LUTs {
				t.Fatalf("trial %d K=%d: bin packing (%d) beat the exhaustive optimum (%d)",
					trial, k, packed.LUTs, exact.LUTs)
			}
			// crf should stay close to optimal on typical fanins.
			if packed.LUTs > exact.LUTs*3/2+1 {
				t.Fatalf("trial %d K=%d: bin packing %d vs optimal %d (too far)",
					trial, k, packed.LUTs, exact.LUTs)
			}
		}
	}
}

// TestBinPackWideNode: a fanin-40 gate maps optimally with no split.
func TestBinPackWideNode(t *testing.T) {
	nw := network.New("wide")
	var fins []network.Fanin
	for i := 0; i < 40; i++ {
		fins = append(fins, network.Fanin{Node: nw.AddInput(inName(i)), Invert: i%5 == 0})
	}
	g := nw.AddGate("g", network.OpOr, fins...)
	nw.MarkOutput("y", g, false)
	for k := 2; k <= 5; k++ {
		o := DefaultOptions(k)
		o.Strategy = StrategyBinPack
		res, err := Map(nw, o)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		want := (40 - 2 + k - 1) / (k - 1)
		if res.LUTs != want {
			t.Fatalf("K=%d: bin packing used %d LUTs on a single wide node, want %d", k, res.LUTs, want)
		}
		if err := verify.NetworkVsCircuit(nw, res.Circuit, 16, 5); err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
	}
}

// TestCostAwareDuplication: accepting only DP-verified improvements
// must never increase LUT count and must find the figure-1-style win
// where a shared node merges into both consumers.
func TestCostAwareDuplication(t *testing.T) {
	// figure1 at K=4: duplicating g2 into g3's and g4's trees lets both
	// absorb it: 3 LUTs -> 2.
	nw := figure1()
	plain, err := Map(nw, DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	res, accepted, err := MapDuplicateCostAware(nw, DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if accepted == 0 || res.LUTs >= plain.LUTs {
		t.Fatalf("cost-aware duplication missed the win: accepted=%d, %d vs %d LUTs",
			accepted, res.LUTs, plain.LUTs)
	}
	if err := verify.NetworkVsCircuit(nw, res.Circuit, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestCostAwareDuplicationNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 15; trial++ {
		nw := randomDAG(rng, 5, 10+rng.Intn(12))
		for _, k := range []int{3, 5} {
			plain, err := Map(nw, DefaultOptions(k))
			if err != nil {
				t.Fatal(err)
			}
			res, _, err := MapDuplicateCostAware(nw, DefaultOptions(k))
			if err != nil {
				t.Fatalf("trial %d K=%d: %v", trial, k, err)
			}
			if res.LUTs > plain.LUTs {
				t.Fatalf("trial %d K=%d: cost-aware duplication grew %d -> %d",
					trial, k, plain.LUTs, res.LUTs)
			}
			if err := verify.NetworkVsCircuit(nw, res.Circuit, 32, int64(trial)); err != nil {
				t.Fatalf("trial %d K=%d: %v", trial, k, err)
			}
		}
	}
}

// TestMapNaive: the floor baseline is correct and never beats Chortle.
func TestMapNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 20; trial++ {
		nw := randomDAG(rng, 5, 10+rng.Intn(15))
		for _, k := range []int{2, 4, 6} {
			naive, err := MapNaive(nw, k)
			if err != nil {
				t.Fatalf("trial %d K=%d: %v", trial, k, err)
			}
			if err := verify.NetworkVsCircuit(nw, naive.Circuit, 32, int64(trial)); err != nil {
				t.Fatalf("trial %d K=%d: %v", trial, k, err)
			}
			smart, err := Map(nw, DefaultOptions(k))
			if err != nil {
				t.Fatal(err)
			}
			if smart.LUTs > naive.LUTs {
				t.Fatalf("trial %d K=%d: Chortle (%d) worse than naive (%d)",
					trial, k, smart.LUTs, naive.LUTs)
			}
		}
	}
}

// TestParallelMappingIdentical: the concurrent DP path must produce a
// byte-identical circuit to the sequential one.
func TestParallelMappingIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 15; trial++ {
		nw := randomDAG(rng, 6, 15+rng.Intn(20))
		for _, k := range []int{3, 5} {
			so := DefaultOptions(k)
			so.Parallel, so.Memoize = false, false
			seq, err := Map(nw, so)
			if err != nil {
				t.Fatal(err)
			}
			o := DefaultOptions(k)
			o.Parallel, o.Memoize = true, true
			par, err := Map(nw, o)
			if err != nil {
				t.Fatal(err)
			}
			if seq.LUTs != par.LUTs || seq.Trees != par.Trees {
				t.Fatalf("trial %d K=%d: parallel got %d/%d vs %d/%d",
					trial, k, par.LUTs, par.Trees, seq.LUTs, seq.Trees)
			}
			if seq.Circuit.String() != par.Circuit.String() {
				t.Fatalf("trial %d K=%d: parallel circuit differs structurally", trial, k)
			}
		}
	}
}
