package core

import (
	"fmt"

	"chortle/internal/network"
)

// Logic duplication at fanout nodes — the extension the paper's
// conclusions list as future work ("optimizations that may result from
// the duplication of logic at fanout nodes"). The forest decomposition
// never duplicates logic: a multi-fanout node always becomes its own
// tree and costs at least one LUT. Duplicating a cheap multi-fanout node
// into each consumer dissolves that tree boundary and lets the node's
// logic merge into the consumers' root LUTs.
//
// The heuristic duplicates gates that are small enough to merge
// (fanin <= K-1) and modestly shared (fanout 2..maxDupFanout); anything
// wider would multiply logic faster than merging can recover.

const maxDupFanout = 4

// duplicateFanoutLogic rewrites the network in place, giving each
// consumer of an eligible multi-fanout gate a private copy. Returns the
// number of copies created.
func duplicateFanoutLogic(nw *network.Network, opts Options) int {
	nw.Reindex()
	counts := nw.FanoutCounts()
	gensym := 0
	fresh := func(base string) string {
		for {
			gensym++
			name := fmt.Sprintf("%s$d%d", base, gensym)
			if nw.Find(name) == nil {
				return name
			}
		}
	}
	// Snapshot the gate list: duplication appends nodes.
	gates := make([]*network.Node, 0, len(nw.Nodes))
	for _, n := range nw.Nodes {
		if !n.IsInput() {
			gates = append(gates, n)
		}
	}
	dups := 0
	for _, n := range gates {
		if len(n.Fanins) > opts.K-1 {
			continue
		}
		fo := counts[n.ID]
		if fo < 2 || fo > maxDupFanout {
			continue
		}
		for _, consumer := range gates {
			if consumer == n {
				continue
			}
			for i, f := range consumer.Fanins {
				if f.Node != n {
					continue
				}
				cp := nw.AddGate(fresh(n.Name), n.Op, append([]network.Fanin(nil), n.Fanins...)...)
				consumer.Fanins[i] = network.Fanin{Node: cp, Invert: f.Invert}
				dups++
			}
		}
	}
	// The originals stay only if an output still references them;
	// Sweep removes the rest.
	nw.Sweep()
	return dups
}
