package core

// FaultHook, when non-nil, is invoked at instrumented points of the
// mapping pipeline: ("solve", nodeID) at the start of every tree DP
// solve, and ("worker", item) before each item a pool worker picks up.
// It exists only for fault-injection tests — forcing a mid-map
// cancellation or a worker panic at a precise point — and must be nil
// in production use. Tests that set it must restore nil before other
// tests run (it is read without synchronization beyond the usual
// happens-before of test setup).
var FaultHook func(site string, i int)

func fireFaultHook(site string, i int) {
	if h := FaultHook; h != nil {
		h(site, i)
	}
}
