package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"chortle/internal/network"
	"chortle/internal/verify"
)

func blifOf(t *testing.T, res *Result) string {
	t.Helper()
	var b strings.Builder
	if err := res.Circuit.WriteBLIF(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestSharedCacheByteIdentical maps networks with the shared cache off,
// cold, and warm, in every Parallel x Memoize mode, and requires the
// emitted BLIF to be identical every time: cache warmth must be
// invisible in the output.
func TestSharedCacheByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nets := []*network.Network{
		identicalTrees(6),
		randomDAG(rng, 6, 24),
		randomDAG(rng, 8, 40),
	}
	for k := 2; k <= 5; k++ {
		for _, par := range []bool{false, true} {
			cache := NewSharedShapeCache(SharedCacheConfig{})
			for ni, nw := range nets {
				base := DefaultOptions(k)
				base.Parallel = par
				base.Memoize = true
				ref, err := Map(nw, base)
				if err != nil {
					t.Fatalf("K=%d par=%v net=%d: %v", k, par, ni, err)
				}
				want := blifOf(t, ref)

				warm := base
				warm.SharedCache = cache
				cold, err := Map(nw, warm)
				if err != nil {
					t.Fatalf("K=%d par=%v net=%d cold: %v", k, par, ni, err)
				}
				if got := blifOf(t, cold); got != want {
					t.Fatalf("K=%d par=%v net=%d: cold shared-cache BLIF differs", k, par, ni)
				}
				hot, err := Map(nw, warm)
				if err != nil {
					t.Fatalf("K=%d par=%v net=%d warm: %v", k, par, ni, err)
				}
				if got := blifOf(t, hot); got != want {
					t.Fatalf("K=%d par=%v net=%d: warm shared-cache BLIF differs", k, par, ni)
				}
				if hot.CacheHits == 0 {
					t.Fatalf("K=%d par=%v net=%d: warm run reported no cache hits", k, par, ni)
				}
				if cold.CacheHits != 0 && ni == 0 && k == 2 && !par {
					// Only the very first run of the suite is guaranteed
					// fully cold; later nets may legitimately share shapes.
					t.Fatalf("first cold run reported %d hits", cold.CacheHits)
				}
			}
		}
	}
}

// TestSharedCacheSeedNamespaces verifies that runs whose options fold
// into different shape seeds never exchange entries: same network at
// K=3 and K=4, with and without a work-unit budget, with and without
// provenance.
func TestSharedCacheSeedNamespaces(t *testing.T) {
	nw := identicalTrees(4)
	cache := NewSharedShapeCache(SharedCacheConfig{})

	run := func(tune func(*Options)) *Result {
		t.Helper()
		opts := DefaultOptions(3)
		opts.Parallel = false
		opts.SharedCache = cache
		tune(&opts)
		res, err := Map(nw, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	run(func(o *Options) {})
	variants := []func(*Options){
		func(o *Options) { o.K = 4 },
		func(o *Options) { o.Budget.WorkUnits = 1 << 40 },
		func(o *Options) { o.Provenance = true },
	}
	for i, tune := range variants {
		if res := run(tune); res.CacheHits != 0 {
			t.Fatalf("variant %d: run in a different option namespace hit %d cached shapes", i, res.CacheHits)
		}
	}
	// The exact same options hit.
	if res := run(func(o *Options) {}); res.CacheHits == 0 {
		t.Fatalf("identical re-run missed the cache")
	}
}

// TestSharedCacheWallClockBypass: a run under a wall-clock budget must
// neither read nor write the shared tier.
func TestSharedCacheWallClockBypass(t *testing.T) {
	nw := identicalTrees(3)
	cache := NewSharedShapeCache(SharedCacheConfig{})
	opts := DefaultOptions(4)
	opts.SharedCache = cache
	opts.Budget.WallClock = 1 << 40 // effectively unlimited, but set
	res, err := Map(nw, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 0 || res.CacheMisses != 0 {
		t.Fatalf("wall-clock run touched the shared cache: hits=%d misses=%d", res.CacheHits, res.CacheMisses)
	}
	if st := cache.Stats(); st.Entries != 0 || st.Puts != 0 {
		t.Fatalf("wall-clock run published to the shared cache: %+v", st)
	}
}

// TestSharedCacheProvenanceOrigins: a warm run's provenance must carry
// the reuse origins (memo for rebinds, replay for template hits) and
// still satisfy the coverage invariant.
func TestSharedCacheProvenanceOrigins(t *testing.T) {
	nw := identicalTrees(5)
	cache := NewSharedShapeCache(SharedCacheConfig{})
	opts := DefaultOptions(4)
	opts.Parallel = false
	opts.Provenance = true
	opts.SharedCache = cache

	first, err := Map(nw, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkProvenance(t, first)

	second, err := Map(nw, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkProvenance(t, second)
	counts := second.Circuit.OriginCounts()
	if counts["fresh"] != 0 {
		t.Fatalf("warm run re-solved %d trees fresh: %v", counts["fresh"], counts)
	}
	if counts["memo"]+counts["replay"] == 0 {
		t.Fatalf("warm run carries no reuse origins: %v", counts)
	}
	if second.CacheHits == 0 || second.CacheMisses != 0 {
		t.Fatalf("warm run: hits=%d misses=%d", second.CacheHits, second.CacheMisses)
	}
}

// TestSharedCacheEvictionPressure: a cache far too small for the
// workload must still map correctly — eviction costs hits, not
// correctness.
func TestSharedCacheEvictionPressure(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cache := NewSharedShapeCache(SharedCacheConfig{Shards: 1, MaxEntries: 2, MaxBytes: 1 << 12})
	for trial := 0; trial < 4; trial++ {
		nw := randomDAG(rng, 6, 30)
		opts := DefaultOptions(4)
		opts.SharedCache = cache
		ref, err := Map(nw, DefaultOptions(4))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Map(nw, opts)
		if err != nil {
			t.Fatal(err)
		}
		if blifOf(t, res) != blifOf(t, ref) {
			t.Fatalf("trial %d: output differs under eviction pressure", trial)
		}
		if err := verify.NetworkVsCircuit(nw, res.Circuit, 16, int64(trial)); err != nil {
			t.Fatal(err)
		}
	}
	if st := cache.Stats(); st.Evictions == 0 {
		t.Fatalf("pressure test evicted nothing: %+v", st)
	}
}

// TestShapeEncInjective: equal shapes encode equal across networks;
// structurally different trees encode differently.
func TestShapeEncInjective(t *testing.T) {
	seed := shapeSeed(DefaultOptions(4))
	fa, ra := chainTree(t, "a", 3, false, network.OpAnd)
	fb, rb := chainTree(t, "b", 3, false, network.OpAnd)
	if !bytes.Equal(shapeEnc(fa, ra, seed), shapeEnc(fb, rb, seed)) {
		t.Fatalf("identical shapes encode differently")
	}
	variants := []struct {
		name string
		enc  []byte
	}{}
	add := func(name string, depth int, invert bool, op network.Op) {
		f, r := chainTree(t, name, depth, invert, op)
		variants = append(variants, struct {
			name string
			enc  []byte
		}{name, shapeEnc(f, r, seed)})
	}
	add("inverted", 3, true, network.OpAnd)
	add("op", 3, false, network.OpOr)
	add("deeper", 4, false, network.OpAnd)
	base := shapeEnc(fa, ra, seed)
	for _, v := range variants {
		if bytes.Equal(v.enc, base) {
			t.Errorf("%s: encoding collides with base shape", v.name)
		}
	}
	// A different seed prefixes a different encoding for the same tree.
	if bytes.Equal(shapeEnc(fa, ra, seed), shapeEnc(fa, ra, shapeSeed(DefaultOptions(5)))) {
		t.Errorf("encodings for different seeds coincide")
	}
}

// TestFreezeDPRoundTrip: a frozen copy keeps every field rebindDP needs
// and drops every pointer into the origin network.
func TestFreezeDPRoundTrip(t *testing.T) {
	f, root := chainTree(t, "fz", 3, true, network.OpAnd)
	dp := buildDP(f, root, DefaultOptions(4))
	frozen, sz := freezeDP(dp)
	if sz <= 0 {
		t.Fatalf("freezeDP reported %d bytes", sz)
	}
	var walk func(orig, fz *nodeDP)
	walk = func(orig, fz *nodeDP) {
		if fz.node != nil {
			t.Fatalf("frozen copy retains a network node pointer")
		}
		if fz.full != orig.full || fz.nodeIdx != orig.nodeIdx || fz.stride != orig.stride ||
			fz.bestCost != orig.bestCost || fz.bestU != orig.bestU {
			t.Fatalf("frozen scalar fields differ")
		}
		if len(fz.g) != len(orig.g) || len(fz.choice) != len(orig.choice) ||
			len(fz.mmBest) != len(orig.mmBest) || len(fz.mmBestU) != len(orig.mmBestU) {
			t.Fatalf("frozen table lengths differ")
		}
		for i := range orig.g {
			if fz.g[i] != orig.g[i] {
				t.Fatalf("frozen g table differs at %d", i)
			}
		}
		if len(fz.fanins) != len(orig.fanins) {
			t.Fatalf("frozen fanin count differs")
		}
		for i := range orig.fanins {
			if fz.fanins[i].edge.Node != nil {
				t.Fatalf("frozen fanin retains an edge node pointer")
			}
			oc, fc := orig.fanins[i].child, fz.fanins[i].child
			if (oc == nil) != (fc == nil) {
				t.Fatalf("frozen fanin child structure differs")
			}
			if oc != nil {
				walk(oc, fc)
			}
		}
	}
	walk(dp, frozen)

	// Rebinding the frozen copy onto the original tree reconstructs the
	// same circuit a direct solve would.
	a := acquireArena()
	defer a.release()
	rb := rebindDP(a, frozen, f, root)
	if rb.bestCost != dp.bestCost || rb.node != root {
		t.Fatalf("rebind of frozen copy: cost %d vs %d, node %v", rb.bestCost, dp.bestCost, rb.node)
	}
}
