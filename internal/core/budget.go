package core

import (
	"context"
	"fmt"
	"time"

	"chortle/internal/cerrs"
	"chortle/internal/forest"
	"chortle/internal/network"
)

// Search budgets and cooperative cancellation for the exhaustive DP.
//
// The decomposition search is exponential in node fanin, so a single
// pathological tree can hold a mapping hostage. A Budget bounds it two
// ways: WorkUnits caps the search effort spent on any one tree, and
// WallClock is a soft deadline for the whole run. Neither failure mode
// aborts the mapping — a tree that exhausts its budget is remapped
// with the bin-packing strategy (Chortle-crf's own answer to the same
// problem) and reported in Result.Degraded, so the caller always gets
// a valid circuit and knows which parts of it are best-effort.
//
// Cancellation is separate and hard: a Done context makes Map return
// its error promptly, with no circuit. Both signals reach the inner
// loops the same way — a governor charged once per DP subset row
// panics with *solveAbort, which solveDP converts back into an error
// at the tree boundary.

// Budget bounds the exhaustive decomposition search. The zero value
// means unlimited. Budgets never make a mapping fail: exhausted trees
// fall back per-tree to StrategyBinPack and are listed in
// Result.Degraded.
type Budget struct {
	// WorkUnits caps the search effort per tree, measured in DP work
	// units (roughly one unit per decomposition candidate examined).
	// 0 means unlimited. A generous, never-exhausted budget leaves the
	// mapping byte-identical to an unbudgeted run.
	WorkUnits int64
	// WallClock is a soft deadline for the whole Map call, measured
	// from its start. Once it passes, the tree being solved and every
	// tree after it degrade to bin packing. 0 means none. Unlike a
	// context deadline, passing it still yields a valid circuit —
	// but which trees degrade depends on machine speed, so runs are
	// not reproducible once it triggers.
	WallClock time.Duration
}

func (b Budget) active() bool { return b.WorkUnits > 0 || b.WallClock > 0 }

// govCheckInterval is how many work units a governor accumulates
// between deadline/cancellation probes; it keeps time.Now and ctx.Err
// off the per-subset fast path.
const govCheckInterval = 8192

// governor meters one tree solve. It is single-goroutine (each solve
// creates its own) and nil-safe: a nil governor is an unmetered solve.
type governor struct {
	ctx        context.Context // nil = never cancelled
	limit      int64           // per-tree work cap; 0 = unlimited
	deadline   time.Time       // whole-run soft deadline; zero = none
	units      int64
	sinceCheck int64
}

// solveAbort is the panic payload that unwinds an in-progress DP solve;
// solveDP converts it back into its error.
type solveAbort struct{ err error }

// charge adds n work units and, every govCheckInterval units, probes
// the cancellation and budget conditions, panicking with *solveAbort
// when one has tripped. compute calls it once per subset row.
func (g *governor) charge(n int64) {
	if g == nil {
		return
	}
	g.units += n
	g.sinceCheck += n
	if g.sinceCheck < govCheckInterval {
		return
	}
	g.sinceCheck = 0
	if g.ctx != nil {
		if err := g.ctx.Err(); err != nil {
			panic(&solveAbort{err})
		}
	}
	if g.limit > 0 && g.units > g.limit {
		panic(&solveAbort{fmt.Errorf("tree exceeded %d work units: %w", g.limit, cerrs.ErrBudgetExhausted)})
	}
	if !g.deadline.IsZero() && time.Now().After(g.deadline) {
		panic(&solveAbort{fmt.Errorf("wall-clock budget passed: %w", cerrs.ErrBudgetExhausted)})
	}
}

// solveDP runs one metered tree solve, converting a governor abort back
// into an error. Any other panic propagates to the caller's recovery
// boundary (the worker pool or the public API guard).
func solveDP(a *dpArena, f *forest.Forest, root *network.Node, opts Options, gov *governor) (dp *nodeDP, err error) {
	defer func() {
		if r := recover(); r != nil {
			ab, ok := r.(*solveAbort)
			if !ok {
				panic(r)
			}
			dp, err = nil, ab.err
		}
	}()
	fireFaultHook("solve", int(root.ID))
	var nodeCtr, leafCtr int32
	return buildDPIn(a, f, root, opts, &nodeCtr, &leafCtr, gov), nil
}

// solveDepthDP is solveDP for the depth-objective DP.
func solveDepthDP(f *forest.Forest, root *network.Node, opts Options, leafArr func(*network.Node) int32, gov *governor) (ds *depthState, err error) {
	defer func() {
		if r := recover(); r != nil {
			ab, ok := r.(*solveAbort)
			if !ok {
				panic(r)
			}
			ds, err = nil, ab.err
		}
	}()
	fireFaultHook("solve", int(root.ID))
	return buildDepthDP(f, root, opts, leafArr, gov), nil
}
