package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"chortle/internal/forest"
	"chortle/internal/network"
)

// The parallel mapping pipeline. Tree DPs are independent under the
// default strategy and area objective, so a bounded worker pool
// (GOMAXPROCS workers, one arena each) computes them concurrently; with
// memoization on, the pool solves one DP per *distinct* tree shape and
// reconstruction rebinds the shared tables to each duplicate tree.
// Reconstruction itself stays sequential, so the emitted circuit is
// byte-identical to the sequential mapper's output.

// mapCtx carries the per-Map performance machinery: the recycled
// arenas, the shape memo, and the root hashes. It exists only for the
// exhaustive-strategy area objective; the bin-packing and depth paths
// keep their own state.
type mapCtx struct {
	opts Options
	f    *forest.Forest
	seed uint64

	memo   *shapeMemo               // nil when opts.Memoize is off
	hashes map[*network.Node]uint64 // cached per tree root

	prebuilt map[*network.Node]*nodeDP // parallel path without memoization

	seqArena *dpArena
	mu       sync.Mutex // guards arenas during the parallel build
	arenas   []*dpArena
}

func newMapCtx(f *forest.Forest, opts Options) *mapCtx {
	ctx := &mapCtx{opts: opts, f: f, seed: shapeSeed(opts), seqArena: acquireArena()}
	ctx.arenas = append(ctx.arenas, ctx.seqArena)
	if opts.Memoize {
		ctx.memo = newShapeMemo()
		ctx.hashes = make(map[*network.Node]uint64, len(f.Roots))
	}
	return ctx
}

// release returns every arena to the pool. No nodeDP reached through the
// context may be used afterwards.
func (ctx *mapCtx) release() {
	for _, a := range ctx.arenas {
		a.release()
	}
	ctx.arenas = nil
}

func (ctx *mapCtx) hashFor(root *network.Node) uint64 {
	if h, ok := ctx.hashes[root]; ok {
		return h
	}
	h := treeHash(ctx.f, root, ctx.seed)
	ctx.hashes[root] = h
	return h
}

// workerArena hands each pool worker its own arena, registered with the
// context so the slabs live until the whole Map completes.
func (ctx *mapCtx) workerArena() *dpArena {
	a := acquireArena()
	ctx.mu.Lock()
	ctx.arenas = append(ctx.arenas, a)
	ctx.mu.Unlock()
	return a
}

// runPool executes fn(arena, i) for i in [0, n) on a bounded worker
// pool. The WaitGroup forms the happens-before edge that publishes the
// workers' writes to the caller.
func (ctx *mapCtx) runPool(n int, fn func(a *dpArena, i int)) {
	if n == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(ctx.seqArena, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := ctx.workerArena()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(a, i)
			}
		}()
	}
	wg.Wait()
}

// buildDPsParallel computes the tree DPs up front on the worker pool.
// With memoization, only one DP is solved per distinct shape — workers
// share the dedup performed (sequentially, it is O(trees) hashing) on
// the main goroutine; duplicates are rebound lazily during sequential
// reconstruction. Without memoization every tree gets its own DP, as
// the sequential non-memoized path would produce.
func (ctx *mapCtx) buildDPsParallel() {
	roots := ctx.f.Roots
	if ctx.memo != nil {
		var reps []*network.Node
		entries := make([]*shapeEntry, 0, len(roots))
		for _, r := range roots {
			h := ctx.hashFor(r)
			if ctx.memo.lookup(ctx.f, r, h) != nil {
				continue
			}
			e := &shapeEntry{f: ctx.f, rep: r, templates: make(map[string]*emitTemplate)}
			ctx.memo.insert(h, e)
			reps = append(reps, r)
			entries = append(entries, e)
		}
		ctx.runPool(len(reps), func(a *dpArena, i int) {
			var nodeCtr, leafCtr int32
			entries[i].dp = buildDPIn(a, ctx.f, reps[i], ctx.opts, &nodeCtr, &leafCtr)
		})
		return
	}
	dps := make([]*nodeDP, len(roots))
	ctx.runPool(len(roots), func(a *dpArena, i int) {
		var nodeCtr, leafCtr int32
		dps[i] = buildDPIn(a, ctx.f, roots[i], ctx.opts, &nodeCtr, &leafCtr)
	})
	ctx.prebuilt = make(map[*network.Node]*nodeDP, len(roots))
	for i, r := range roots {
		ctx.prebuilt[r] = dps[i]
	}
}
