package core

import (
	"context"
	"errors"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"chortle/internal/cerrs"
	"chortle/internal/forest"
	"chortle/internal/network"
)

// The parallel mapping pipeline. Tree DPs are independent under the
// default strategy and area objective, so a bounded worker pool
// (GOMAXPROCS workers, one arena each) computes them concurrently; with
// memoization on, the pool solves one DP per *distinct* tree shape and
// reconstruction rebinds the shared tables to each duplicate tree.
// Reconstruction itself stays sequential, so the emitted circuit is
// byte-identical to the sequential mapper's output.
//
// The pipeline is also the execution layer's resilience boundary: every
// pool run observes context cancellation between items (and, through
// the per-solve governors, inside a solve), and a panicking worker is
// recovered into an error — the pool always drains its goroutines and
// the per-Map arenas are always returned, whatever kills the run.

// mapCtx carries the per-Map performance and control machinery: the
// recycled arenas, the shape memo, the root hashes, and the
// cancellation/budget state. It exists only for the exhaustive-strategy
// area objective; the bin-packing and depth paths keep their own state.
type mapCtx struct {
	opts Options
	f    *forest.Forest
	seed uint64

	// tr emits observability events (no-op when opts.Observer is nil).
	tr tracer

	// ctx is the caller's cancellation signal (never nil; Background
	// when the caller used the context-free API).
	ctx context.Context
	// deadline is the soft wall-clock budget boundary; zero when no
	// WallClock budget is set. Trees solved past it degrade.
	deadline time.Time

	// cache is the run's shape storage (nil when opts.Memoize is off):
	// the plain per-run memo, or — when Options.SharedCache is set and
	// eligible — the tiered cache backing it with cross-run storage.
	cache shapeCache
	infos map[*network.Node]shapeInfo // cached per tree root

	// prebuilt holds the parallel path's per-tree DPs when memoization
	// is off. A present nil entry records a tree whose solve exhausted
	// its budget and must degrade. prebuiltUnits carries each solve's
	// metered work units for the trees' provenance records.
	prebuilt      map[*network.Node]*nodeDP
	prebuiltUnits map[*network.Node]int64

	seqArena *dpArena
	mu       sync.Mutex // guards arenas during the parallel build
	arenas   []*dpArena
}

func newMapCtx(ctx context.Context, f *forest.Forest, opts Options) *mapCtx {
	mc := &mapCtx{opts: opts, f: f, ctx: ctx, seed: shapeSeed(opts), seqArena: acquireArena(), tr: tracer{opts.Observer}}
	if opts.Budget.WallClock > 0 {
		mc.deadline = time.Now().Add(opts.Budget.WallClock)
	}
	mc.arenas = append(mc.arenas, mc.seqArena)
	if opts.Memoize {
		// The shared tier is bypassed under a wall-clock budget: which
		// trees such a run degrades is timing-dependent, and cache
		// warmth must never change emitted bytes.
		if opts.SharedCache != nil && opts.Budget.WallClock == 0 {
			mc.cache = newTieredShapeCache(opts.SharedCache, f, mc.seed)
		} else {
			mc.cache = newRunShapeCache()
		}
		mc.infos = make(map[*network.Node]shapeInfo, len(f.Roots))
	}
	return mc
}

// newGov creates the per-solve governor wiring one tree solve to the
// run's cancellation and budget state.
func (mc *mapCtx) newGov() *governor {
	return &governor{ctx: mc.ctx, limit: mc.opts.Budget.WorkUnits, deadline: mc.deadline}
}

// release returns every arena to the pool. No nodeDP reached through the
// context may be used afterwards.
func (mc *mapCtx) release() {
	if mc.tr.on() && len(mc.arenas) > 0 {
		var bytes int64
		for _, a := range mc.arenas {
			bytes += a.slabBytes()
		}
		mc.tr.arenaStats(len(mc.arenas), bytes)
	}
	for _, a := range mc.arenas {
		a.release()
	}
	mc.arenas = nil
}

func (mc *mapCtx) infoFor(root *network.Node) shapeInfo {
	if si, ok := mc.infos[root]; ok {
		return si
	}
	si := treeShapeInfo(mc.f, root, mc.seed)
	mc.infos[root] = si
	return si
}

// workerArena hands each pool worker its own arena, registered with the
// context so the slabs live until the whole Map completes (and are
// returned by release even when the worker dies).
func (mc *mapCtx) workerArena() *dpArena {
	a := acquireArena()
	mc.mu.Lock()
	mc.arenas = append(mc.arenas, a)
	mc.mu.Unlock()
	return a
}

// runPool executes fn(arena, i) for i in [0, n) on a bounded worker
// pool and returns the first error any item produced. The pool drains
// unconditionally: cancellation and item errors stop further pickup but
// every started goroutine is joined before runPool returns, and a
// panicking worker is recovered into a *cerrs.PanicError instead of
// crashing the process. The WaitGroup forms the happens-before edge
// that publishes the workers' writes to the caller.
func (mc *mapCtx) runPool(n int, fn func(a *dpArena, i int) error) error {
	if n == 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := mc.ctx.Err(); err != nil {
				return err
			}
			fireFaultHook("worker", i)
			if err := fn(mc.seqArena, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// A solveAbort escaping here means fn skipped the
					// solveDP boundary; keep its error rather than
					// reporting a panic.
					if ab, ok := r.(*solveAbort); ok {
						fail(ab.err)
						return
					}
					fail(&cerrs.PanicError{Value: r, Stack: debug.Stack()})
				}
			}()
			a := mc.workerArena()
			work := func() {
				for {
					if stop.Load() {
						return
					}
					if err := mc.ctx.Err(); err != nil {
						fail(err)
						return
					}
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					fireFaultHook("worker", i)
					if err := fn(a, i); err != nil {
						fail(err)
						return
					}
				}
			}
			if mc.opts.PprofLabels {
				pprof.Do(mc.ctx, pprof.Labels("chortle", "dp-worker"),
					func(context.Context) { work() })
			} else {
				work()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// buildDPsParallel computes the tree DPs up front on the worker pool.
// With memoization, only one DP is solved per distinct shape — workers
// share the dedup performed (sequentially, it is O(trees) hashing) on
// the main goroutine; duplicates are rebound lazily during sequential
// reconstruction. Without memoization every tree gets its own DP, as
// the sequential non-memoized path would produce. Budget-exhausted
// solves are recorded (degraded shape entries / nil prebuilt DPs) so
// sequential reconstruction degrades those trees; cancellation or a
// worker panic aborts the whole prepass with the error.
func (mc *mapCtx) buildDPsParallel() error {
	roots := mc.f.Roots
	solveOne := func(a *dpArena, root *network.Node) (*nodeDP, int64, bool, error) {
		gov := mc.newGov()
		start := mc.tr.now()
		dp, err := solveDP(a, mc.f, root, mc.opts, gov)
		if err != nil {
			if errors.Is(err, cerrs.ErrBudgetExhausted) {
				return nil, gov.units, true, nil
			}
			return nil, gov.units, false, err
		}
		mc.tr.treeSolve(root.Name, gov.units, dp.bestCost, start)
		return dp, gov.units, false, nil
	}
	if mc.cache != nil {
		var reps []*network.Node
		var sis []shapeInfo
		entries := make([]*shapeEntry, 0, len(roots))
		for _, r := range roots {
			si := mc.infoFor(r)
			if mc.cache.lookup(mc.f, r, si) != nil {
				continue
			}
			e := &shapeEntry{f: mc.f, rep: r, templates: make(map[string]*emitTemplate)}
			mc.cache.insert(si, e)
			reps = append(reps, r)
			sis = append(sis, si)
			entries = append(entries, e)
		}
		err := mc.runPool(len(reps), func(a *dpArena, i int) error {
			dp, units, degraded, err := solveOne(a, reps[i])
			if err != nil {
				return err
			}
			entries[i].dp, entries[i].units, entries[i].degraded = dp, units, degraded
			return nil
		})
		if err != nil {
			return err
		}
		// Publication happens here, after the pool's happens-before
		// join, so the shared tier only ever sees fully solved entries.
		for i := range reps {
			mc.cache.publish(reps[i], sis[i], entries[i])
		}
		return nil
	}
	dps := make([]*nodeDP, len(roots))
	units := make([]int64, len(roots))
	err := mc.runPool(len(roots), func(a *dpArena, i int) error {
		dp, u, _, err := solveOne(a, roots[i])
		if err != nil {
			return err
		}
		dps[i] = dp // nil when degraded
		units[i] = u
		return nil
	})
	if err != nil {
		return err
	}
	mc.prebuilt = make(map[*network.Node]*nodeDP, len(roots))
	mc.prebuiltUnits = make(map[*network.Node]int64, len(roots))
	for i, r := range roots {
		mc.prebuilt[r] = dps[i]
		mc.prebuiltUnits[r] = units[i]
	}
	return nil
}
