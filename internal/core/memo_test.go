package core

import (
	"strings"
	"testing"

	"chortle/internal/forest"
	"chortle/internal/network"
)

// chain builds a named network of the shape
// root = op(leaf, op(leaf, ... )) with the given depth and edge
// inversions, returning the decomposed forest and the root node.
func chainTree(t *testing.T, name string, depth int, invert bool, op network.Op) (*forest.Forest, *network.Node) {
	t.Helper()
	nw := network.New(name)
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	cur := nw.AddGate("g0", op, network.Fanin{Node: a}, network.Fanin{Node: b, Invert: invert})
	for i := 1; i < depth; i++ {
		in := nw.AddInput("x" + string(rune('0'+i)))
		cur = nw.AddGate("g"+string(rune('0'+i)), op,
			network.Fanin{Node: cur}, network.Fanin{Node: in, Invert: invert})
	}
	nw.MarkOutput("y", cur, false)
	f, err := forest.Decompose(nw)
	if err != nil {
		t.Fatal(err)
	}
	return f, f.Roots[len(f.Roots)-1]
}

func TestTreeHashShapeOnly(t *testing.T) {
	seed := shapeSeed(DefaultOptions(4))

	// Same shape, different leaf identities: the second network renames
	// every input, which must not affect the hash.
	fa, ra := chainTree(t, "a", 3, false, network.OpAnd)
	fb, rb := chainTree(t, "b", 3, false, network.OpAnd)
	if treeHash(fa, ra, seed) != treeHash(fb, rb, seed) {
		t.Fatalf("identical shapes hash differently")
	}
	if !sameTreeShape(fa, ra, fb, rb) {
		t.Fatalf("sameTreeShape rejects identical shapes")
	}

	// Structural differences that must change the hash.
	variants := []struct {
		name string
		f    *forest.Forest
		r    *network.Node
	}{}
	fInv, rInv := chainTree(t, "inv", 3, true, network.OpAnd)
	variants = append(variants, struct {
		name string
		f    *forest.Forest
		r    *network.Node
	}{"inverted edges", fInv, rInv})
	fOp, rOp := chainTree(t, "op", 3, false, network.OpOr)
	variants = append(variants, struct {
		name string
		f    *forest.Forest
		r    *network.Node
	}{"different op", fOp, rOp})
	fDeep, rDeep := chainTree(t, "deep", 4, false, network.OpAnd)
	variants = append(variants, struct {
		name string
		f    *forest.Forest
		r    *network.Node
	}{"extra level", fDeep, rDeep})

	base := treeHash(fa, ra, seed)
	for _, v := range variants {
		if treeHash(v.f, v.r, seed) == base {
			t.Errorf("%s: hash collides with base shape", v.name)
		}
		if sameTreeShape(fa, ra, v.f, v.r) {
			t.Errorf("%s: sameTreeShape accepts different shape", v.name)
		}
	}

	// Different K must produce a different seed (one memo may never serve
	// two K values).
	if shapeSeed(DefaultOptions(4)) == shapeSeed(DefaultOptions(5)) {
		t.Errorf("shape seeds for K=4 and K=5 coincide")
	}
}

// TestShapeMemoCollisionSafety force-inserts a cache entry for one shape
// under another shape's hash — simulating a 64-bit collision — and
// checks that lookup refuses to serve it: a collision must degrade to a
// miss, never to reuse of the wrong DP.
func TestShapeMemoCollisionSafety(t *testing.T) {
	fa, ra := chainTree(t, "a", 3, false, network.OpAnd)
	fb, rb := chainTree(t, "b", 4, false, network.OpOr) // different shape

	seed := shapeSeed(DefaultOptions(4))
	sa := treeShapeInfo(fa, ra, seed)
	sb := treeShapeInfo(fb, rb, seed)

	memo := newShapeMemo()
	// Wrong shape under ra's hash, carrying its own true counts: the
	// size prefilter alone rejects it (fb is one level deeper).
	memo.insert(shapeInfo{hash: sa.hash, nodes: sb.nodes, leaves: sb.leaves},
		&shapeEntry{f: fb, rep: rb})
	if e := memo.lookup(fa, ra, sa); e != nil {
		t.Fatalf("lookup served a colliding entry of different shape")
	}

	// A same-size collision (equal counts, different op) must fall
	// through the prefilter and still be rejected by the structure walk.
	fc, rc := chainTree(t, "c", 3, false, network.OpOr)
	sc := treeShapeInfo(fc, rc, seed)
	if sc.nodes != sa.nodes || sc.leaves != sa.leaves {
		t.Fatalf("test premise broken: same-depth chains should have equal counts")
	}
	memo.insert(shapeInfo{hash: sa.hash, nodes: sc.nodes, leaves: sc.leaves},
		&shapeEntry{f: fc, rep: rc})
	if e := memo.lookup(fa, ra, sa); e != nil {
		t.Fatalf("lookup served a same-size colliding entry of different shape")
	}

	// The genuine entry is still found behind the impostors in the bucket.
	real := &shapeEntry{f: fa, rep: ra}
	memo.insert(sa, real)
	if e := memo.lookup(fa, ra, sa); e != real {
		t.Fatalf("lookup failed to find the matching entry in a collided bucket")
	}

	// Same guard on the cost memo.
	cm := newCostMemo()
	cm.insert(sa.hash, fb, rb, 7)
	if _, ok := cm.lookup(fa, ra, sa.hash); ok {
		t.Fatalf("cost memo served a colliding entry of different shape")
	}
	cm.insert(sa.hash, fa, ra, 3)
	if c, ok := cm.lookup(fa, ra, sa.hash); !ok || c != 3 {
		t.Fatalf("cost memo missed the matching entry, got (%d, %v)", c, ok)
	}
}

func TestPatternOf(t *testing.T) {
	cases := []struct {
		sigs []string
		want string
	}{
		{nil, ""},
		{[]string{"a", "b", "c"}, "0.1.2."},
		{[]string{"a", "a", "c"}, "0.0.2."},
		{[]string{"a", "b", "a", "b"}, "0.1.0.1."},
	}
	for _, c := range cases {
		if got := patternOf(c.sigs); got != c.want {
			t.Errorf("patternOf(%v) = %q, want %q", c.sigs, got, c.want)
		}
	}
	// Distinct coincidence structures must key distinct templates even
	// when the signal sets overlap.
	if patternOf([]string{"a", "a", "b"}) == patternOf([]string{"a", "b", "b"}) {
		t.Errorf("different coincidence structures share a pattern key")
	}
}

// TestMemoizedMapMatchesPlain checks LUT counts agree between memoized
// and plain mapping on a network built to contain many isomorphic trees
// with varying leaf coincidence (the template cache's hard case).
func TestMemoizedMapMatchesPlain(t *testing.T) {
	nw := network.New("iso")
	var ins []*network.Node
	for i := 0; i < 8; i++ {
		ins = append(ins, nw.AddInput("i"+string(rune('a'+i))))
	}
	for g := 0; g < 24; g++ {
		x := ins[g%8]
		y := ins[(g*3+1)%8]
		z := ins[(g*5+2)%8] // sometimes y == z: different leaf pattern, same shape
		a := nw.AddGate("a"+string(rune('a'+g%26))+string(rune('0'+g/26)), network.OpAnd,
			network.Fanin{Node: x}, network.Fanin{Node: y, Invert: g%2 == 0})
		o := nw.AddGate("o"+string(rune('a'+g%26))+string(rune('0'+g/26)), network.OpOr,
			network.Fanin{Node: a}, network.Fanin{Node: z})
		nw.MarkOutput("y"+string(rune('a'+g%26))+string(rune('0'+g/26)), o, false)
	}

	for k := 2; k <= 5; k++ {
		plain := Options{K: k, SplitThreshold: 10}
		memo := Options{K: k, SplitThreshold: 10, Memoize: true}
		rp, err := Map(nw, plain)
		if err != nil {
			t.Fatalf("K=%d plain: %v", k, err)
		}
		rm, err := Map(nw, memo)
		if err != nil {
			t.Fatalf("K=%d memoized: %v", k, err)
		}
		if rp.LUTs != rm.LUTs {
			t.Errorf("K=%d: plain %d LUTs, memoized %d", k, rp.LUTs, rm.LUTs)
		}
		var a, b strings.Builder
		if err := rp.Circuit.WriteBLIF(&a); err != nil {
			t.Fatal(err)
		}
		if err := rm.Circuit.WriteBLIF(&b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("K=%d: memoized BLIF differs from plain", k)
		}
	}
}
