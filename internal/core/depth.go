package core

import (
	"fmt"
	"math/bits"

	"chortle/internal/forest"
	"chortle/internal/lut"
	"chortle/internal/network"
)

// Depth-oriented mapping — the direction the Chortle line took next
// (Chortle-d, FPGA'91, and ultimately FlowMap): minimize the number of
// LUT levels on the longest path, breaking ties by area. The same
// utilization-division/decomposition search runs with a lexicographic
// (arrival, cost) objective instead of cost alone:
//
//   - the arrival of a signal is its LUT level (primary inputs 0);
//   - a root LUT's arrival is 1 + max over its input signals;
//   - merging a child's root LUT inherits the child's input arrivals;
//   - an intermediate node adds one level on its own inputs.
//
// Trees are mapped in topological order so leaf arrivals (other trees'
// mapped roots) are known. Within the fanout-free tree model the
// resulting depth is optimal per tree (max composes monotonically over
// the same search space); area under that depth is greedy, as in
// Chortle-d.

// dvalue is the lexicographic (arrival, cost) DP value.
type dvalue struct {
	arr  int32 // max arrival among the collected root-LUT inputs
	cost int32 // LUTs
}

var dInfinity = dvalue{arr: infinity, cost: infinity}

func dBetter(a, b dvalue) bool {
	if a.arr != b.arr {
		return a.arr < b.arr
	}
	return a.cost < b.cost
}

func dCombine(a, b dvalue) dvalue {
	arr := a.arr
	if b.arr > arr {
		arr = b.arr
	}
	return dvalue{arr: arr, cost: a.cost + b.cost}
}

func (v dvalue) infinite() bool { return v.arr >= infinity || v.cost >= infinity }

// depthState augments a nodeDP with arrival tracking; the choice tables
// of the embedded nodeDP are filled by the depth DP so the standard
// reconstruction (emit.go) rebuilds the chosen circuit unchanged.
type depthState struct {
	*nodeDP
	gd       [][]dvalue
	mmBestD  []dvalue
	children []*depthState
	// bestArr is the arrival of the node's completed signal (its root
	// LUT output) under the best mapping.
	bestArr int32
}

// buildDepthDP mirrors buildDP with the lexicographic objective.
// leafArr supplies arrivals for leaf edges (PIs and mapped tree roots).
// gov (nil = unmetered) observes cancellation and budgets exactly as in
// buildDPIn; enter through solveDepthDP when it is non-nil.
func buildDepthDP(f *forest.Forest, n *network.Node, opts Options, leafArr func(*network.Node) int32, gov *governor) *depthState {
	ds := &depthState{nodeDP: &nodeDP{node: n}}
	for _, e := range n.Fanins {
		fr := faninRef{edge: e, leafIdx: -1}
		var child *depthState
		if !f.IsLeafEdge(e.Node) {
			child = buildDepthDP(f, e.Node, opts, leafArr, gov)
			fr.child = child.nodeDP
		}
		ds.fanins = append(ds.fanins, fr)
		ds.children = append(ds.children, child)
	}
	ds.computeDepth(opts, leafArr, gov)
	return ds
}

// signalValue is the (arrival, cost) of feeding fanin i as a finished
// signal.
func (ds *depthState) signalValue(i int, leafArr func(*network.Node) int32) dvalue {
	if ds.children[i] == nil {
		return dvalue{arr: leafArr(ds.fanins[i].edge.Node), cost: 0}
	}
	c := ds.children[i]
	return dvalue{arr: c.bestArr, cost: c.bestCost}
}

// mergeValue is the (arrival, cost) of merging fanin i's root LUT with
// v of our pins: the child's collected input arrivals propagate, its
// root LUT disappears.
func (ds *depthState) mergeValue(i, v int) dvalue {
	c := ds.children[i]
	if c == nil {
		return dInfinity
	}
	return c.gd[c.full][v]
}

func (ds *depthState) computeDepth(opts Options, leafArr func(*network.Node) int32, gov *governor) {
	f := len(ds.fanins)
	K := opts.K
	size := uint32(1) << uint(f)
	ds.full = size - 1
	ds.gd = make([][]dvalue, size)
	ds.mmBestD = make([]dvalue, size)
	// The choice table shares emit.go's flat layout (choiceAt), so the
	// standard reconstruction reads it unchanged; the depth path is cold,
	// so plain make (zeroed, which is the correct empty choice) is fine.
	ds.stride = int32(K + 1)
	ds.choice = make([]gChoice, int(size)*(K+1))
	ds.mmBestU = make([]int8, size)

	base := make([]dvalue, K+1)
	for u := 1; u <= K; u++ {
		base[u] = dInfinity
	}
	ds.gd[0] = base

	for s := uint32(1); s < size; s++ {
		if gov != nil {
			work := int64((K + 1) * (K + 1))
			if !opts.DisableDecomposition {
				work += int64(K-1) << uint(bits.OnesCount32(s))
			}
			gov.charge(work)
		}
		row := make([]dvalue, K+1)
		ch := ds.choice[int(s)*(K+1) : (int(s)+1)*(K+1)]
		row[0] = dInfinity
		pivot := bits.TrailingZeros32(s)
		pbit := uint32(1) << uint(pivot)
		rest0 := s ^ pbit

		for u := 2; u <= K; u++ {
			best := dInfinity
			var bc gChoice
			for v := 1; v <= u; v++ {
				var c dvalue
				if v == 1 {
					c = ds.signalValue(pivot, leafArr)
				} else {
					c = ds.mergeValue(pivot, v)
				}
				if c.infinite() {
					continue
				}
				r := ds.gd[rest0][u-v]
				if r.infinite() {
					continue
				}
				if cand := dCombine(c, r); dBetter(cand, best) {
					best = cand
					bc = gChoice{kind: choiceSingleton, v: int8(v)}
				}
			}
			if !opts.DisableDecomposition {
				for d := (s - 1) & s; d > 0; d = (d - 1) & s {
					if d&pbit == 0 || bits.OnesCount32(d) < 2 {
						continue
					}
					c := ds.mmBestD[d]
					if c.infinite() {
						continue
					}
					r := ds.gd[s&^d][u-1]
					if r.infinite() {
						continue
					}
					if cand := dCombine(c, r); dBetter(cand, best) {
						best = cand
						bc = gChoice{kind: choiceIntermediate, d: d}
					}
				}
			}
			row[u] = best
			ch[u] = bc
		}

		// Intermediate-node value: one more LUT and one more level on
		// its own inputs.
		mb := dInfinity
		var mu int8
		for u := 2; u <= K; u++ {
			if row[u].infinite() {
				continue
			}
			cand := dvalue{arr: row[u].arr + 1, cost: row[u].cost + 1}
			if dBetter(cand, mb) {
				mb = cand
				mu = int8(u)
			}
		}
		ds.mmBestD[s] = mb
		ds.mmBestU[s] = mu

		switch {
		case s == pbit:
			row[1] = ds.signalValue(pivot, leafArr)
			ch[1] = gChoice{kind: choiceSingleton, v: 1}
		case !opts.DisableDecomposition:
			row[1] = mb
			ch[1] = gChoice{kind: choiceIntermediate, d: s}
		default:
			row[1] = dInfinity
		}

		ds.gd[s] = row
	}

	bestV := dInfinity
	for u := 2; u <= K; u++ {
		if ds.gd[ds.full][u].infinite() {
			continue
		}
		cand := dvalue{arr: ds.gd[ds.full][u].arr + 1, cost: ds.gd[ds.full][u].cost + 1}
		if dBetter(cand, bestV) {
			bestV = cand
			ds.bestU = u
		}
	}
	ds.bestArr = bestV.arr
	ds.bestCost = bestV.cost
}

func errUnmappable(name string, k int) error {
	return fmt.Errorf("core: tree %q is unmappable with K=%d (fanin too wide without decomposition?)", name, k)
}

// realizeTreeDepth maps one tree depth-first and registers its signal
// and arrival. A governor abort (cancellation, budget) surfaces as the
// returned error; Map degrades budget-exhausted trees to bin packing.
func (m *mapper) realizeTreeDepth(root *network.Node, arr map[*network.Node]int32, gov *governor) (int32, error) {
	leafArr := func(n *network.Node) int32 {
		if n.IsInput() {
			return 0
		}
		return arr[n]
	}
	ds, err := solveDepthDP(m.f, root, m.opts, leafArr, gov)
	if err != nil {
		return 0, err
	}
	if ds.bestCost >= infinity {
		return 0, errUnmappable(root.Name, m.opts.K)
	}
	var units int64
	if gov != nil {
		units = gov.units
	}
	m.setProvTree(root.Name, lut.OriginFresh, units)
	name := root.Name
	if m.ckt.Find(name) != nil || m.cktHasInput(name) {
		name = m.fresh(root.Name)
	}
	sig, err := m.emitLUT(ds.nodeDP, ds.full, ds.bestU, name, m.provFor(ds.nodeDP))
	if err != nil {
		return 0, err
	}
	m.sig[root] = sig
	arr[root] = ds.bestArr
	return ds.bestCost, nil
}
