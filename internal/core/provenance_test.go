package core

import (
	"testing"

	"chortle/internal/lut"
	"chortle/internal/network"
)

// TestProvenanceHooksOffZeroAlloc pins the provenance-off path: with
// Options.Provenance unset every hook on the reconstruction walk — the
// nil-frame methods, the frame constructors' gates, the per-tree
// context setter and the record finalizer — must allocate nothing.
// This is the same discipline the nil-observer tracer is held to.
func TestProvenanceHooksOffZeroAlloc(t *testing.T) {
	m := &mapper{opts: Options{K: 4}}
	dp := &nodeDP{node: &network.Node{Name: "n", Op: network.OpAnd}}
	var pf *provFrame
	allocs := testing.AllocsPerRun(1000, func() {
		pf.cover("gate", 3)
		pf.token("pin")
		pf.open("merge")
		pf.close()
		if m.provFor(dp) != nil || m.provGroupFor(dp) != nil {
			t.Fatal("frames built with provenance off")
		}
		m.setProvTree("tree", lut.OriginFresh, 42)
		m.recordProv(nil, "lut", nil, "and", 2)
	})
	if allocs != 0 {
		t.Fatalf("provenance-off hooks allocated %v allocs/op, want 0", allocs)
	}
}

// TestProvFrameShape checks the shape token grammar the frames build:
// comma separation at the top level, none right after an opening
// parenthesis, and nesting via open/close.
func TestProvFrameShape(t *testing.T) {
	pf := &provFrame{partIdx: -1}
	pf.token("pin")
	pf.open("merge")
	pf.token("pin")
	pf.token("grp3")
	pf.close()
	pf.token("pin")
	if got, want := pf.shape.String(), "pin,merge(pin,grp3),pin"; got != want {
		t.Fatalf("shape = %q, want %q", got, want)
	}
}
