package core

import (
	"context"
	"strings"
	"testing"

	"chortle/internal/lut"
	"chortle/internal/network"
	"chortle/internal/truth"
	"chortle/internal/verify"
)

func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
		ok   bool
	}{
		{"", EngineTree, true},
		{"tree", EngineTree, true},
		{"Tree", EngineTree, true},
		{"mis", EngineMIS, true},
		{"MIS", EngineMIS, true},
		{"  cut\t", EngineCut, true},
		{"dagon", EngineTree, false},
	} {
		got, err := ParseEngine(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

func TestEngineString(t *testing.T) {
	if EngineTree.String() != "tree" || EngineMIS.String() != "mis" || EngineCut.String() != "cut" {
		t.Fatalf("engine names drifted: %s %s %s", EngineTree, EngineMIS, EngineCut)
	}
	if got := Engine(9).String(); !strings.Contains(got, "9") {
		t.Errorf("out-of-range engine stringer: %q", got)
	}
}

func TestInvalidEngineRejected(t *testing.T) {
	nw := figure1()
	opts := DefaultOptions(3)
	opts.Engine = Engine(9)
	if _, err := Map(nw, opts); err == nil {
		t.Fatal("Map accepted an out-of-range engine")
	}
	if _, _, err := MapDuplicateCostAware(nw, opts); err == nil {
		t.Fatal("MapDuplicateCostAware accepted an out-of-range engine")
	}
}

func TestValidateRejectsNegativeBudgets(t *testing.T) {
	nw := figure1()
	opts := DefaultOptions(3)
	opts.Budget.WorkUnits = -1
	if _, err := Map(nw, opts); err == nil {
		t.Error("negative work-unit budget accepted")
	}
	opts = DefaultOptions(3)
	opts.Budget.WallClock = -1
	if _, err := Map(nw, opts); err == nil {
		t.Error("negative wall-clock budget accepted")
	}
}

// TestEngineDispatch runs every engine through MapCtx on the paper's
// Figure 1 network and checks the shared result contract: a valid,
// equivalent circuit and a populated LUT count.
func TestEngineDispatch(t *testing.T) {
	nw := figure1()
	for _, eng := range []Engine{EngineTree, EngineMIS, EngineCut} {
		opts := DefaultOptions(3)
		opts.Engine = eng
		res, err := Map(nw, opts)
		if err != nil {
			t.Fatalf("engine %s: %v", eng, err)
		}
		if res.LUTs <= 0 || res.LUTs != res.Circuit.Count() {
			t.Errorf("engine %s: LUTs=%d, circuit has %d", eng, res.LUTs, res.Circuit.Count())
		}
		if err := verify.NetworkVsCircuit(nw, res.Circuit, 0, 1); err != nil {
			t.Errorf("engine %s: %v", eng, err)
		}
	}
}

// TestEngineRepack exercises the engine-independent post-processing
// path (finishEngineResult): repacking must keep the circuit valid and
// keep Result.LUTs in sync with the repacked count.
func TestEngineRepack(t *testing.T) {
	nw := figure1()
	for _, eng := range []Engine{EngineMIS, EngineCut} {
		opts := DefaultOptions(2)
		opts.Engine = eng
		opts.RepackLUTs = true
		res, err := Map(nw, opts)
		if err != nil {
			t.Fatalf("engine %s: %v", eng, err)
		}
		if res.LUTs != res.Circuit.Count() {
			t.Errorf("engine %s: LUTs=%d not resynced after repack (circuit %d)", eng, res.LUTs, res.Circuit.Count())
		}
		if err := verify.NetworkVsCircuit(nw, res.Circuit, 0, 1); err != nil {
			t.Errorf("engine %s repacked: %v", eng, err)
		}
	}
}

func TestEngineCancellation(t *testing.T) {
	nw := figure1()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, eng := range []Engine{EngineMIS, EngineCut} {
		opts := DefaultOptions(3)
		opts.Engine = eng
		if _, err := MapCtx(ctx, nw, opts); err != context.Canceled {
			t.Errorf("engine %s on cancelled ctx: got %v, want context.Canceled", eng, err)
		}
	}
}

func TestEngineBadK(t *testing.T) {
	nw := figure1()
	for _, eng := range []Engine{EngineMIS, EngineCut} {
		opts := DefaultOptions(1)
		opts.Engine = eng
		if _, err := Map(nw, opts); err == nil {
			t.Errorf("engine %s accepted K=1", eng)
		}
	}
	// The MIS library is complete only for small K; an unsupported K
	// must surface the library error, not panic.
	opts := DefaultOptions(16)
	opts.Engine = EngineMIS
	if _, err := Map(nw, opts); err == nil {
		t.Log("mislib supports K=16; no error expected then")
	}
}

// TestDupAwareRejectsNonTreeEngines pins the configuration error for
// the duplication search, whose cost oracle is the tree DP.
func TestDupAwareRejectsNonTreeEngines(t *testing.T) {
	nw := figure1()
	for _, eng := range []Engine{EngineMIS, EngineCut} {
		opts := DefaultOptions(3)
		opts.Engine = eng
		if _, _, err := MapDuplicateCostAware(nw, opts); err == nil {
			t.Errorf("engine %s: duplication search accepted a non-tree engine", eng)
		}
	}
}

// TestEngineErrorPlumbing drives the engine adapters' error branches
// directly (they sit behind MapCtx's own early checks, so the public
// surface can't reach all of them deterministically).
func TestEngineErrorPlumbing(t *testing.T) {
	nw := figure1()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mapMIS(cancelled, nw, DefaultOptions(3)); err != context.Canceled {
		t.Errorf("mapMIS on cancelled ctx: %v", err)
	}
	if _, err := mapCut(cancelled, nw, DefaultOptions(3)); err == nil {
		t.Error("mapCut on cancelled ctx: want error")
	}
	// K=1 bypasses Options.validate here and must surface the library
	// construction error, not panic.
	if _, err := mapMIS(context.Background(), nw, Options{K: 1}); err == nil {
		t.Error("mapMIS with K=1: want library error")
	}
	// A single-fanin gate is a valid network that mismap refuses (it
	// wants swept input); the error must flow out of Map.
	single := network.New("single")
	a := single.AddInput("a")
	buf := single.AddGate("buf", network.OpAnd, network.Fanin{Node: a})
	single.MarkOutput("y", buf, false)
	mopts := DefaultOptions(3)
	mopts.Engine = EngineMIS
	if _, err := Map(single, mopts); err == nil {
		t.Error("Map(mis) on unswept single-fanin gate: want error")
	}
	// Invalid input network: the engine dispatch must not be reached.
	empty := network.New("empty")
	for _, eng := range []Engine{EngineTree, EngineMIS, EngineCut} {
		opts := DefaultOptions(3)
		opts.Engine = eng
		if _, err := Map(empty, opts); err == nil {
			t.Errorf("engine %s accepted a network with no outputs", eng)
		}
	}
}

// TestFinishEngineResultErrors covers the repack post-processing
// failure branches with hand-built broken circuits.
func TestFinishEngineResultErrors(t *testing.T) {
	opts := Options{RepackLUTs: true}

	// A combinational cycle makes Repack's topological sort fail.
	cyc := lut.New("cyc", 2)
	cyc.AddInput("a")
	l1 := cyc.AddLUT("l1", []string{"l2", "a"}, truth.Var(0, 2))
	_ = l1
	cyc.AddLUT("l2", []string{"l1", "a"}, truth.Var(0, 2))
	cyc.MarkOutput("y", "l2", false)
	if _, err := finishEngineResult(&Result{Circuit: cyc}, opts); err == nil {
		t.Error("cyclic circuit repacked without error")
	}

	// Duplicate inputs repack fine but fail the post-repack validation.
	dup := lut.New("dup", 2)
	dup.AddInput("a")
	dup.AddInput("a")
	dup.AddLUT("l", []string{"a"}, truth.Var(0, 1))
	dup.MarkOutput("y", "l", false)
	if _, err := finishEngineResult(&Result{Circuit: dup}, opts); err == nil {
		t.Error("duplicate-input circuit validated after repack")
	}
}

// TestCutEngineReconvergent maps a reconvergent diamond — the shape the
// tree decomposition must split but a DAG cover sees whole — through
// the cut engine and checks it does no worse than the tree DP.
func TestCutEngineReconvergent(t *testing.T) {
	nw := network.New("diamond")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	c := nw.AddInput("c")
	shared := nw.AddGate("s", network.OpAnd, network.Fanin{Node: a}, network.Fanin{Node: b})
	l := nw.AddGate("l", network.OpOr, network.Fanin{Node: shared}, network.Fanin{Node: c})
	r := nw.AddGate("r", network.OpAnd, network.Fanin{Node: shared}, network.Fanin{Node: c, Invert: true})
	top := nw.AddGate("top", network.OpOr, network.Fanin{Node: l}, network.Fanin{Node: r})
	nw.MarkOutput("y", top, false)

	topts := DefaultOptions(4)
	tres, err := Map(nw, topts)
	if err != nil {
		t.Fatal(err)
	}
	copts := DefaultOptions(4)
	copts.Engine = EngineCut
	cres, err := Map(nw, copts)
	if err != nil {
		t.Fatal(err)
	}
	if cres.LUTs > tres.LUTs {
		t.Errorf("cut %d LUTs vs tree %d on a reconvergent diamond", cres.LUTs, tres.LUTs)
	}
	if cres.Trees != cres.LUTs {
		t.Errorf("cut engine Trees=%d, want the selected-cut count %d", cres.Trees, cres.LUTs)
	}
	if err := verify.NetworkVsCircuit(nw, cres.Circuit, 0, 1); err != nil {
		t.Error(err)
	}
}
