package core

import (
	"fmt"

	"chortle/internal/forest"
	"chortle/internal/lut"
	"chortle/internal/network"
	"chortle/internal/truth"
)

// MapNaive is the floor baseline: one lookup table per gate, with gates
// wider than K pre-split balanced. No merging across gates, no
// decomposition search — the mapping a direct netlist translation
// would produce. It exists to calibrate the real mappers: the paper's
// entire contribution is the distance between this and Map.
func MapNaive(input *network.Network, k int) (*Result, error) {
	opts := DefaultOptions(k)
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := input.Validate(); err != nil {
		return nil, err
	}
	nw := input.Clone()
	nw.Sweep()
	split := splitWideNodes(nw, k)
	// Forest decomposition only to reuse the output bookkeeping; every
	// gate becomes its own LUT regardless of tree structure.
	if _, err := forest.Decompose(nw); err != nil {
		return nil, err
	}
	order, err := nw.TopoSort()
	if err != nil {
		return nil, err
	}
	ckt := lut.New(nw.Name, k)
	for _, in := range nw.Inputs {
		ckt.AddInput(in.Name)
	}
	sig := make(map[*network.Node]string, len(order))
	for _, in := range nw.Inputs {
		sig[in] = in.Name
	}
	for _, n := range order {
		if n.IsInput() {
			continue
		}
		inputs := make([]string, len(n.Fanins))
		invs := make([]bool, len(n.Fanins))
		for i, f := range n.Fanins {
			s, ok := sig[f.Node]
			if !ok {
				return nil, fmt.Errorf("core: naive mapping order broken at %q", n.Name)
			}
			inputs[i] = s
			invs[i] = f.Invert
		}
		op := n.Op
		table := truth.FromFunc(len(inputs), func(m uint) bool {
			if op == network.OpAnd {
				for i := range inputs {
					if (m>>uint(i)&1 == 1) == invs[i] {
						return false
					}
				}
				return true
			}
			for i := range inputs {
				if (m>>uint(i)&1 == 1) != invs[i] {
					return true
				}
			}
			return false
		})
		name := n.Name
		if ckt.Find(name) != nil {
			name = name + "$nv"
		}
		ckt.AddLUT(name, inputs, table)
		sig[n] = name
	}
	for _, o := range nw.Outputs {
		ckt.MarkOutput(o.Name, sig[o.Node], o.Invert)
	}
	for _, l := range nw.Latches {
		ckt.AddLatch(l.Q, sig[l.D], l.DInv, l.Init)
	}
	if err := ckt.Validate(); err != nil {
		return nil, err
	}
	return &Result{Circuit: ckt, LUTs: ckt.Count(), Trees: 0, PredictedCost: ckt.Count(), SplitNodes: split}, nil
}
