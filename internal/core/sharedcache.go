package core

import (
	"bytes"
	"sync"
	"sync/atomic"
	"unsafe"

	"chortle/internal/forest"
	"chortle/internal/network"
	"chortle/internal/shapecache"
)

// The cross-run shape cache. The per-run memo (memo.go) already proves
// that a tree DP and its emission templates depend only on the tree's
// shape and the option seed; this file promotes that reuse across Map
// calls. Storage is internal/shapecache — sharded, bounded, LRU — and
// the values are sharedShape: an immutable-after-publish bundle of the
// canonical shape encoding (the verification key), a heap-frozen DP, and
// a copy-on-write template map.
//
// Immutability discipline: the per-run memo hands out arena-backed DP
// tables that die with the run, so publication deep-copies them to the
// heap (freezeDP) with all node and edge pointers dropped — a cached
// shape pins nothing of the network that produced it, and consumers must
// rebind (rebindDP) before reconstructing. Templates are the one field
// that grows after publish; they go through an atomic copy-on-write map
// so readers never lock and never observe a partial write.
//
// Correctness discipline: hits are verified by byte-comparing canonical
// encodings (seed-prefixed, injective — see appendShapeEnc), so a 64-bit
// hash collision degrades to a miss, never to wrong reuse. Degraded and
// unmappable solves are never published. Runs under a wall-clock budget
// bypass the shared tier entirely: which trees such a run degrades is
// timing-dependent, and cache warmth must never change emitted bytes.

// SharedCacheConfig bounds a SharedShapeCache. Zero fields take the
// storage layer's defaults (16 shards, 65536 entries, 256 MiB).
type SharedCacheConfig struct {
	// Shards is the lock-striping factor, rounded up to a power of two.
	Shards int
	// MaxEntries bounds the resident shape count.
	MaxEntries int
	// MaxBytes bounds the accounted resident cost: frozen DP tables,
	// encodings, and published templates.
	MaxBytes int64
}

// SharedShapeCache is a process-wide, concurrency-safe cache of tree
// shape solutions, shared by any number of concurrent Map calls through
// Options.SharedCache. A warm cache turns the per-shape DP solve and
// most of reconstruction into O(tree) pointer work. Eviction only costs
// future hits; a full or thrashing cache still maps correctly.
type SharedShapeCache struct {
	cache *shapecache.Cache
}

// NewSharedShapeCache returns an empty cache honoring cfg.
func NewSharedShapeCache(cfg SharedCacheConfig) *SharedShapeCache {
	return &SharedShapeCache{cache: shapecache.New(shapecache.Config{
		Shards:     cfg.Shards,
		MaxEntries: cfg.MaxEntries,
		MaxBytes:   cfg.MaxBytes,
	})}
}

// Stats snapshots the cache's hit/miss/eviction counters and resident
// totals.
func (c *SharedShapeCache) Stats() shapecache.Stats { return c.cache.Stats() }

// Len reports the resident shape count.
func (c *SharedShapeCache) Len() int { return c.cache.Len() }

// maxSharedTemplates caps the leaf-coincidence patterns published per
// shape. Patterns beyond the cap stay run-local: correctness is
// unaffected (a missing template means normal reconstruction), and the
// cap keeps one pathological shape from monopolizing the byte budget.
const maxSharedTemplates = 16

// sharedShape is one cached shape. enc and dp are immutable after
// publish; templates grow copy-on-write.
type sharedShape struct {
	enc []byte  // seed-prefixed canonical encoding; the verification key
	dp  *nodeDP // frozen heap copy (freezeDP); consumers must rebind

	// units is the metered work the origin run spent solving the shape,
	// kept for metrics (a hit saves this much search work).
	units int64

	mu        sync.Mutex // serializes template publication
	templates atomic.Pointer[map[string]*emitTemplate]
	handle    atomic.Pointer[shapecache.Handle]
}

func (s *sharedShape) templateFor(pattern string) *emitTemplate {
	m := s.templates.Load()
	if m == nil {
		return nil
	}
	return (*m)[pattern]
}

// addTemplate publishes a recorded template under its leaf pattern via
// copy-on-write: the first writer of a pattern wins (all recordings of a
// (shape, pattern, seed) class are identical anyway), and the resident
// entry's accounted cost grows by the template's footprint.
func (s *sharedShape) addTemplate(pattern string, t *emitTemplate) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.templates.Load()
	if old != nil {
		if _, ok := (*old)[pattern]; ok {
			return
		}
		if len(*old) >= maxSharedTemplates {
			return
		}
	}
	next := make(map[string]*emitTemplate, 1)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	next[pattern] = t
	s.templates.Store(&next)
	if h := s.handle.Load(); h != nil {
		h.Grow(templateBytes(pattern, t))
	}
}

// setHandle attaches the storage handle once, right after Put. A reader
// that raced in between Put and setHandle merely skips one Grow — an
// accounting slack of one template, never a correctness issue.
func (s *sharedShape) setHandle(h shapecache.Handle) {
	s.handle.CompareAndSwap(nil, &h)
}

// tieredShapeCache is the shapeCache that backs the per-run memo (L1)
// with a SharedShapeCache (L2). L1 keeps this run's arena-backed entries
// and its wrappers around L2 hits; L2 sees only frozen, verified,
// immutable state. All methods run on the Map's main goroutine.
type tieredShapeCache struct {
	memo   *shapeMemo
	shared *SharedShapeCache
	f      *forest.Forest
	seed   uint64

	// encs caches each root's canonical encoding: lookup computes it on
	// an L1 miss and publish reuses it.
	encs map[*network.Node][]byte

	hits, misses int
}

func newTieredShapeCache(shared *SharedShapeCache, f *forest.Forest, seed uint64) *tieredShapeCache {
	return &tieredShapeCache{
		memo:   newShapeMemo(),
		shared: shared,
		f:      f,
		seed:   seed,
		encs:   make(map[*network.Node][]byte),
	}
}

func (c *tieredShapeCache) encFor(root *network.Node) []byte {
	if enc, ok := c.encs[root]; ok {
		return enc
	}
	enc := shapeEnc(c.f, root, c.seed)
	c.encs[root] = enc
	return enc
}

func (c *tieredShapeCache) lookup(f *forest.Forest, root *network.Node, si shapeInfo) *shapeEntry {
	if e := c.memo.lookup(f, root, si); e != nil {
		return e
	}
	enc := c.encFor(root)
	v, ok := c.shared.cache.Get(si.hash, func(v any) bool {
		return bytes.Equal(v.(*sharedShape).enc, enc)
	})
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	ss := v.(*sharedShape)
	// Wrap the frozen shape in a run-local entry: rep is this run's
	// first instance (so later same-run trees verify against a live
	// network), frozen forces a rebind even for that instance, and seen
	// engages the template machinery immediately — the shared shape has
	// proven repetition already.
	e := &shapeEntry{
		f: f, rep: root, dp: ss.dp,
		frozen: true, seen: true, shared: ss,
		templates: make(map[string]*emitTemplate),
	}
	c.memo.insert(si, e)
	return e
}

func (c *tieredShapeCache) insert(si shapeInfo, e *shapeEntry) { c.memo.insert(si, e) }

func (c *tieredShapeCache) publish(root *network.Node, si shapeInfo, e *shapeEntry) {
	if e.shared != nil || e.frozen || e.degraded || e.dp == nil || e.dp.bestCost >= infinity {
		return
	}
	enc := c.encFor(root)
	frozen, sz := freezeDP(e.dp)
	ss := &sharedShape{enc: enc, dp: frozen, units: e.units}
	res, h := c.shared.cache.Put(si.hash, ss, int64(len(enc))+sz+sharedShapeOverhead,
		func(v any) bool { return bytes.Equal(v.(*sharedShape).enc, enc) })
	win := res.(*sharedShape)
	if win == ss {
		win.setHandle(h)
	}
	// On a lost race the earlier publisher's shape wins and our frozen
	// copy is garbage; either way the local entry keeps its arena-backed
	// dp (this run's arenas outlive it) and only templates flow through.
	e.shared = win
}

func (c *tieredShapeCache) stats() (int, int) { return c.hits, c.misses }

// sharedShapeOverhead approximates a sharedShape's fixed footprint for
// the byte accounting.
const sharedShapeOverhead = int64(unsafe.Sizeof(sharedShape{})) + 64

// freezeDP deep-copies an arena-backed DP tree to the heap for cross-run
// sharing. Arena slabs are recycled when the run releases them, so every
// table the cached shape needs is copied out; node and edge pointers
// into the origin network are dropped (rebindDP rebuilds them from the
// consuming tree), so a cached shape keeps nothing of its origin run
// alive. The copy preserves exactly the fields rebindDP reads: full,
// nodeIdx, stride, the four table slabs, bestCost/bestU, and the
// fanins' child skeleton. Returns the frozen root and the copy's
// accounted byte size.
func freezeDP(dp *nodeDP) (*nodeDP, int64) {
	var sz int64
	var walk func(c *nodeDP) *nodeDP
	walk = func(c *nodeDP) *nodeDP {
		n := &nodeDP{
			full:    c.full,
			nodeIdx: c.nodeIdx,
			stride:  c.stride,
			g:       append([]int32(nil), c.g...),
			choice:  append([]gChoice(nil), c.choice...),
			mmBest:  append([]int32(nil), c.mmBest...),
			mmBestU: append([]int8(nil), c.mmBestU...),

			bestCost: c.bestCost,
			bestU:    c.bestU,
		}
		sz += int64(unsafe.Sizeof(nodeDP{})) +
			int64(len(c.g))*int64(unsafe.Sizeof(int32(0))) +
			int64(len(c.choice))*int64(unsafe.Sizeof(gChoice{})) +
			int64(len(c.mmBest))*int64(unsafe.Sizeof(int32(0))) +
			int64(len(c.mmBestU))
		if len(c.fanins) > 0 {
			n.fanins = make([]faninRef, len(c.fanins))
			sz += int64(len(c.fanins)) * int64(unsafe.Sizeof(faninRef{}))
			for i := range c.fanins {
				n.fanins[i] = faninRef{leafIdx: c.fanins[i].leafIdx}
				if cc := c.fanins[i].child; cc != nil {
					n.fanins[i].child = walk(cc)
				}
			}
		}
		return n
	}
	return walk(dp), sz
}

// templateBytes approximates a template's heap footprint for the byte
// accounting.
func templateBytes(pattern string, t *emitTemplate) int64 {
	sz := int64(len(pattern)) + 64
	sz += int64(len(t.freshes)) * 4
	for i := range t.luts {
		l := &t.luts[i]
		sz += int64(unsafe.Sizeof(lutSpec{}))
		sz += int64(len(l.inputs)) * 4
		sz += int64(len(l.covers))*4 + int64(len(l.shape))
	}
	return sz
}
