package core

import (
	"context"
	"errors"
	"fmt"

	"chortle/internal/cerrs"
	"chortle/internal/forest"
	"chortle/internal/lut"
	"chortle/internal/network"
)

// Result is the outcome of a mapping run.
type Result struct {
	// Circuit is the mapped K-LUT circuit.
	Circuit *lut.Circuit
	// LUTs is the circuit area (lookup table count).
	LUTs int
	// Trees is the number of fanout-free trees mapped.
	Trees int
	// PredictedCost is the DP's cost total; it always equals LUTs (a
	// mismatch would indicate a reconstruction bug and is reported as an
	// error by Map).
	PredictedCost int
	// SplitNodes counts nodes added by the wide-fanin pre-split.
	SplitNodes int
	// Degraded lists, in mapping order, the root names of trees whose
	// exhaustive search exhausted Options.Budget and were remapped with
	// the bin-packing strategy instead. Empty means every tree got the
	// full search (the circuit is tree-optimal as usual); non-empty
	// means the circuit is valid but best-effort on those trees.
	Degraded []string
	// CacheHits and CacheMisses count the distinct tree shapes this run
	// resolved from, respectively missed in, the cross-run shared cache
	// (Options.SharedCache). Both are zero when no shared cache was in
	// effect; within-run memo reuse is not counted here.
	CacheHits   int
	CacheMisses int
	// Prepared is the preprocessed network the mapper actually covered
	// — cloned, swept, wide nodes split, optional fanout duplication
	// applied — recorded only when Options.Provenance is set, so the
	// circuit's provenance records (which name this network's gates)
	// and the explainability exporters have the graph they refer to.
	// Nil otherwise.
	Prepared *network.Network
}

// Map runs the Chortle algorithm on the network, producing a circuit of
// K-input lookup tables that implements it. The input network is not
// modified. For fanout-free trees the result is area-optimal under the
// paper's cost model; across trees the forest decomposition is the
// paper's (no logic duplication at fanout nodes unless
// Options.DuplicateFanoutLogic is set).
func Map(input *network.Network, opts Options) (*Result, error) {
	return MapCtx(context.Background(), input, opts)
}

// MapCtx is Map under a context: cancellation or deadline expiry makes
// the mapping return ctx.Err() promptly — the worker pool observes the
// context between trees and the DP inner loops observe it every few
// thousand work units — with all goroutines joined and all arenas
// returned. Budgets (Options.Budget) are independent of the context:
// they degrade trees instead of failing, see Result.Degraded.
func MapCtx(ctx context.Context, input *network.Network, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := input.Validate(); err != nil {
		return nil, err
	}
	switch opts.Engine {
	case EngineMIS:
		return mapMIS(ctx, input, opts)
	case EngineCut:
		return mapCut(ctx, input, opts)
	}
	tr := tracer{opts.Observer}
	tr.mapStart(opts.K, len(input.Nodes))
	endPhase := tr.phase("prepare")
	nw := input.Clone()
	nw.Sweep()

	split := 0
	if opts.Strategy == StrategyExhaustive {
		limit := opts.SplitThreshold
		if opts.DisableDecomposition && limit > opts.K {
			// Without the decomposition search, the DP cannot cover
			// nodes wider than K; pre-split down to K.
			limit = opts.K
		}
		split = splitWideNodes(nw, limit)
	}

	if opts.DuplicateFanoutLogic {
		duplicateFanoutLogic(nw, opts)
	}
	endPhase()

	endPhase = tr.phase("forest")
	f, err := forest.Decompose(nw)
	endPhase()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	m := &mapper{
		opts: opts,
		nw:   nw,
		f:    f,
		ckt:  lut.New(nw.Name, opts.K),
		sig:  make(map[*network.Node]string),
	}
	for _, in := range nw.Inputs {
		m.ckt.AddInput(in.Name)
	}

	predicted := 0
	var degraded []string
	arrivals := make(map[*network.Node]int32)
	// With the default strategy and objective, per-tree DPs are
	// independent (tree costs never depend on other trees' results), so
	// they can run concurrently and identical shapes can share one solve;
	// reconstruction stays sequential for deterministic naming. The
	// bin-packing and depth paths keep their own per-tree state. mctx
	// also carries the run's cancellation/budget plumbing, which the
	// depth path borrows for its governors.
	mctx := newMapCtx(ctx, f, opts)
	defer mctx.release()
	exhaustiveArea := opts.Strategy == StrategyExhaustive && !opts.OptimizeDepth
	if exhaustiveArea && opts.Parallel {
		endPhase = tr.phase("solve")
		err := mctx.buildDPsParallel()
		endPhase()
		if err != nil {
			return nil, err
		}
	}
	endPhase = tr.phase("reconstruct")
	for _, root := range f.Roots {
		if err := ctx.Err(); err != nil {
			endPhase()
			return nil, err
		}
		var cost int32
		var err error
		switch {
		case opts.Strategy == StrategyBinPack:
			m.setProvTree(root.Name, lut.OriginBinPack, 0)
			cost, err = m.realizeTreeCRF(root, arrivals)
		case opts.OptimizeDepth:
			gov := mctx.newGov()
			solveStart := tr.now()
			cost, err = m.realizeTreeDepth(root, arrivals, gov)
			if err == nil {
				tr.treeSolve(root.Name, gov.units, cost, solveStart)
			}
		default:
			cost, err = m.realizeTreeCtx(root, mctx)
		}
		if err != nil && errors.Is(err, cerrs.ErrBudgetExhausted) {
			// Budget ran out on this tree: degrade it to the bin-packing
			// strategy, which needs no search budget, and keep going.
			tr.budgetExhausted(root.Name, opts.Budget.WorkUnits)
			m.setProvTree(root.Name, lut.OriginDegraded, 0)
			cost, err = m.realizeTreeCRF(root, arrivals)
			if err == nil {
				degraded = append(degraded, root.Name)
				tr.treeDegraded(root.Name, cost)
			}
		}
		if err != nil {
			endPhase()
			return nil, err
		}
		predicted += int(cost)
	}
	endPhase()

	endPhase = tr.phase("finalize")
	for _, o := range nw.Outputs {
		if o.Node.IsInput() {
			m.ckt.MarkOutput(o.Name, o.Node.Name, o.Invert)
			continue
		}
		sig, ok := m.sig[o.Node]
		if !ok {
			return nil, fmt.Errorf("core: output %q driver %q was not mapped", o.Name, o.Node.Name)
		}
		m.ckt.MarkOutput(o.Name, sig, o.Invert)
	}
	for _, l := range nw.Latches {
		if l.D.IsInput() {
			m.ckt.AddLatch(l.Q, l.D.Name, l.DInv, l.Init)
			continue
		}
		sig, ok := m.sig[l.D]
		if !ok {
			return nil, fmt.Errorf("core: latch %q driver %q was not mapped", l.Q, l.D.Name)
		}
		m.ckt.AddLatch(l.Q, sig, l.DInv, l.Init)
	}

	if err := m.ckt.Validate(); err != nil {
		endPhase()
		return nil, fmt.Errorf("core: mapped circuit invalid: %w", err)
	}
	if m.ckt.Count() != predicted {
		endPhase()
		return nil, fmt.Errorf("core: reconstruction emitted %d LUTs but DP predicted %d", m.ckt.Count(), predicted)
	}
	endPhase()
	if opts.RepackLUTs {
		endPhase = tr.phase("repack")
		if _, err := m.ckt.Repack(); err != nil {
			endPhase()
			return nil, fmt.Errorf("core: repacking: %w", err)
		}
		if err := m.ckt.Validate(); err != nil {
			endPhase()
			return nil, fmt.Errorf("core: repacked circuit invalid: %w", err)
		}
		endPhase()
	}
	tr.circuit(m.ckt, len(f.Roots))
	res := &Result{
		Circuit:       m.ckt,
		LUTs:          m.ckt.Count(),
		Trees:         len(f.Roots),
		PredictedCost: predicted,
		SplitNodes:    split,
		Degraded:      degraded,
	}
	if mctx.cache != nil {
		res.CacheHits, res.CacheMisses = mctx.cache.stats()
	}
	if opts.Provenance {
		res.Prepared = nw
	}
	return res, nil
}

// TreeCosts maps the network and returns the per-tree optimal LUT
// counts, keyed by tree root name — the quantity the optimality tests
// compare against exhaustive reference enumeration. With
// Options.Parallel set, tree DPs are solved on the worker pool.
func TreeCosts(input *network.Network, opts Options) (map[string]int, error) {
	return treeCosts(context.Background(), input, opts, nil)
}

// treeCosts is TreeCosts with a context and an optional cross-network
// cost memo: trees whose shape is already known (from a previous network
// sharing most of its structure, as the duplication search's trial
// clones do) skip the DP solve entirely. Cost probes have no bin-packing
// fallback, so cancellation, deadline expiry and budget exhaustion all
// surface as errors here (the latter wrapping cerrs.ErrBudgetExhausted).
func treeCosts(ctx context.Context, input *network.Network, opts Options, cm *costMemo) (map[string]int, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nw := input.Clone()
	nw.Sweep()
	limit := opts.SplitThreshold
	if opts.DisableDecomposition && limit > opts.K {
		limit = opts.K
	}
	splitWideNodes(nw, limit)
	f, err := forest.Decompose(nw)
	if err != nil {
		return nil, err
	}

	mctx := newMapCtx(ctx, f, opts)
	defer mctx.release()
	costs := make([]int32, len(f.Roots))
	var hs []uint64
	unknown := make([]int, 0, len(f.Roots))
	if cm != nil {
		hs = make([]uint64, len(f.Roots))
		for i, root := range f.Roots {
			hs[i] = treeHash(f, root, mctx.seed)
			if c, ok := cm.lookup(f, root, hs[i]); ok {
				costs[i] = c
			} else {
				unknown = append(unknown, i)
			}
		}
	} else {
		for i := range f.Roots {
			unknown = append(unknown, i)
		}
	}

	solved := make([]int32, len(unknown))
	if opts.Parallel {
		err := mctx.runPool(len(unknown), func(a *dpArena, j int) error {
			dp, err := solveDP(a, f, f.Roots[unknown[j]], opts, mctx.newGov())
			if err != nil {
				return err
			}
			solved[j] = dp.bestCost
			return nil
		})
		if err != nil {
			return nil, err
		}
	} else {
		for j, i := range unknown {
			// Only the cost survives each solve, so the arena can be
			// recycled tree by tree.
			mctx.seqArena.reset()
			dp, err := solveDP(mctx.seqArena, f, f.Roots[i], opts, mctx.newGov())
			if err != nil {
				return nil, err
			}
			solved[j] = dp.bestCost
		}
	}
	for j, i := range unknown {
		costs[i] = solved[j]
		if cm != nil {
			cm.insert(hs[i], f, f.Roots[i], solved[j])
		}
	}

	out := make(map[string]int, len(f.Roots))
	for i, root := range f.Roots {
		if costs[i] >= infinity {
			return nil, fmt.Errorf("core: tree %q unmappable", root.Name)
		}
		out[root.Name] = int(costs[i])
	}
	return out, nil
}
