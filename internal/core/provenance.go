package core

import (
	"strconv"
	"strings"

	"chortle/internal/lut"
)

// Provenance recording — the algorithm-level explainability layer.
//
// When Options.Provenance is set, every emission path annotates the
// LUTs it adds with a lut.Provenance record: the covered gate nodes,
// the decomposition shape chosen at the LUT's root, the owning tree,
// the realization origin, and the tree solve's metered work units.
// The discipline mirrors the observer layer's: recording is strictly
// passive (the emitted circuit is byte-identical with provenance on or
// off, in every Parallel x Memoize x Budget combination), and with the
// option off every hook is a nil check that allocates nothing — pinned
// by TestProvenanceHooksOffZeroAlloc.

// provFrame accumulates one LUT's provenance while the reconstruction
// walk collects its groups. A nil frame disables all recording.
type provFrame struct {
	// covers lists the gate nodes fully absorbed by this LUT; idx is
	// the node's preorder index within its tree, which the emission
	// template uses to rebind the record across identical trees.
	covers []coveredRef
	// partOf names the node this LUT partially computes when it is an
	// intermediate group (or an under-filled bin) rather than any
	// node's completed root; partIdx is its preorder index.
	partOf  string
	partIdx int32
	// shape accumulates one token per placement of the root walk.
	shape strings.Builder
}

type coveredRef struct {
	name string
	idx  int32
}

// cover records a gate node absorbed into the frame's LUT.
func (pf *provFrame) cover(name string, idx int32) {
	if pf == nil {
		return
	}
	pf.covers = append(pf.covers, coveredRef{name: name, idx: idx})
}

// token appends one shape token ("pin", "grp3", "merge(", ")", ...).
// Tokens inside a group list are comma-separated.
func (pf *provFrame) token(s string) {
	if pf == nil {
		return
	}
	b := &pf.shape
	if n := b.Len(); n > 0 {
		if last := b.String()[n-1]; last != '(' {
			b.WriteByte(',')
		}
	}
	b.WriteString(s)
}

// open starts a nested token group: "merge(" ... ")".
func (pf *provFrame) open(prefix string) {
	if pf == nil {
		return
	}
	pf.token(prefix)
	pf.shape.WriteByte('(')
}

func (pf *provFrame) close() {
	if pf == nil {
		return
	}
	pf.shape.WriteByte(')')
}

// ownerFrame is the frame for a LUT that completes a node's function —
// a tree root or an internal child realized as its own signal.
func ownerFrame(dp *nodeDP) *provFrame {
	pf := &provFrame{partIdx: -1}
	pf.cover(dp.node.Name, dp.nodeIdx)
	return pf
}

// groupFrame is the frame for an intermediate LUT covering a subset of
// dp's fanins: it completes no node and is attributed to dp partially.
func groupFrame(dp *nodeDP) *provFrame {
	return &provFrame{partOf: dp.node.Name, partIdx: dp.nodeIdx}
}

// record finalizes the frame into a provenance record on the circuit,
// reading the current tree/origin/effort context off the mapper. The
// op and u arguments describe the LUT root (its node operation and the
// utilization the DP granted it).
func (m *mapper) recordProv(pf *provFrame, name string, inputs []string, opName string, u int) {
	if pf == nil {
		return
	}
	covers := make([]string, len(pf.covers))
	for i, c := range pf.covers {
		covers[i] = c.name
	}
	p := &lut.Provenance{
		Tree:      m.provTree,
		Origin:    m.provOrigin,
		Covers:    covers,
		PartOf:    pf.partOf,
		Shape:     "u" + strconv.Itoa(u) + ":" + opName + "[" + pf.shape.String() + "]",
		FaninLUTs: m.faninLUTs(inputs),
		WorkUnits: m.provUnits,
	}
	m.ckt.SetProvenance(name, p)
	if m.rec != nil {
		m.rec.noteProv(pf, p.Shape)
	}
}

// faninLUTs filters an input list down to the signals that are other
// LUTs (every non-LUT input is a primary input).
func (m *mapper) faninLUTs(inputs []string) []string {
	var out []string
	for _, in := range inputs {
		if m.ckt.Find(in) != nil {
			out = append(out, in)
		}
	}
	return out
}

// provFor builds the emission frame for one owning LUT, or nil when
// provenance is off — the single gate every hot-path caller tests.
func (m *mapper) provFor(dp *nodeDP) *provFrame {
	if !m.opts.Provenance {
		return nil
	}
	return ownerFrame(dp)
}

// provGroupFor is provFor for intermediate-group LUTs.
func (m *mapper) provGroupFor(dp *nodeDP) *provFrame {
	if !m.opts.Provenance {
		return nil
	}
	return groupFrame(dp)
}

// setProvTree resets the per-tree provenance context before a tree is
// realized. No-op (and alloc-free) when provenance is off.
func (m *mapper) setProvTree(tree string, origin lut.Origin, units int64) {
	if !m.opts.Provenance {
		return
	}
	m.provTree = tree
	m.provOrigin = origin
	m.provUnits = units
}
