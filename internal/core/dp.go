package core

import (
	"math/bits"

	"chortle/internal/forest"
	"chortle/internal/network"
)

// The tree-mapping dynamic program (Sections 3.1.1–3.1.3).
//
// For a tree node n with fanin edges e_0..e_{f-1}, the paper's
// minmap(n,u) — the cheapest circuit for the subtree at n whose root
// lookup table uses exactly u inputs — is found by searching all
// utilization divisions of all decompositions of n. We organize that
// search as an exact DP over (fanin subset, remaining utilization):
//
//	G[S][u] = minimum cost of realizing the inputs that the root LUT
//	          needs to cover op(n) over exactly the fanins in S, using
//	          exactly u of the root LUT's input pins
//
// with three ways to place the lowest-indexed fanin i of S:
//
//	singleton, u_i = 1: the fanin's finished signal feeds one pin;
//	    cost = bestcost(n_i)            (paper: minmap(n_i, K))
//	singleton, u_i = v >= 2: the fanin subtree's root LUT is merged
//	    into ours, its v inputs becoming our pins;
//	    cost = cost(minmap(n_i, v)) - 1 = G_i[full_i][v]
//	intermediate group d (i in d, |d| >= 2): a new node computing op(n)
//	    over the fanins in d feeds one pin (the paper requires u_i = 1
//	    for intermediate groups); cost = mm(d) = 1 + min_u G[d][u].
//
// Enumerating the group containing the pivot and recursing on S minus
// that group enumerates every set partition and every division exactly
// once, in O(3^f * K) instead of the Bell-number blow-up of the naive
// search. minmap(n, u) = 1 + G[full][u].
//
// G[S][1] (|S| >= 2) covers the case where the *rest* of a parent's
// division wraps all of S into one intermediate node: G[S][1] = mm(S).

type choiceKind uint8

const (
	choiceNone choiceKind = iota
	choiceSingleton
	choiceIntermediate
)

// gChoice records how the pivot fanin of a subset was placed, for
// circuit reconstruction.
type gChoice struct {
	kind choiceKind
	v    int8   // singleton: utilization granted to the pivot subtree
	d    uint32 // intermediate: the group's fanin mask
}

// faninRef is one fanin edge of a tree node: either a leaf edge
// (primary input or another tree's root) or an internal child with its
// own DP table.
type faninRef struct {
	edge  network.Fanin
	child *nodeDP // nil for leaf edges
}

// nodeDP holds the DP state of one tree node.
type nodeDP struct {
	node   *network.Node
	fanins []faninRef
	full   uint32

	g       [][]int32   // g[s][u], u in 0..K
	choice  [][]gChoice // choice[s][u]
	mmBest  []int32     // mm(s) = 1 + min_u g[s][u]
	mmBestU []int8

	bestCost int32 // min_u minmap(node, u)
	bestU    int
}

// buildDP constructs DP tables for the tree rooted at n (which must be a
// gate inside the tree), recursively building children first.
func buildDP(f *forest.Forest, n *network.Node, opts Options) *nodeDP {
	dp := &nodeDP{node: n}
	for _, e := range n.Fanins {
		fr := faninRef{edge: e}
		if !f.IsLeafEdge(e.Node) {
			fr.child = buildDP(f, e.Node, opts)
		}
		dp.fanins = append(dp.fanins, fr)
	}
	dp.compute(opts)
	return dp
}

// costSignal is the cost of feeding fanin i as a finished signal
// (utilization 1): zero for leaf edges, bestcost of the child otherwise.
func (dp *nodeDP) costSignal(i int) int32 {
	if dp.fanins[i].child == nil {
		return 0
	}
	return dp.fanins[i].child.bestCost
}

// costMerge is the cost of merging fanin i's root LUT into ours with v
// of our pins: cost(minmap(child, v)) - 1. Leaf edges cannot merge.
func (dp *nodeDP) costMerge(i, v int) int32 {
	c := dp.fanins[i].child
	if c == nil {
		return infinity
	}
	return c.g[c.full][v] // (1 + g) - 1
}

func (dp *nodeDP) compute(opts Options) {
	f := len(dp.fanins)
	K := opts.K
	size := uint32(1) << uint(f)
	dp.full = size - 1
	dp.g = make([][]int32, size)
	dp.choice = make([][]gChoice, size)
	dp.mmBest = make([]int32, size)
	dp.mmBestU = make([]int8, size)

	base := make([]int32, K+1)
	for u := 1; u <= K; u++ {
		base[u] = infinity
	}
	dp.g[0] = base
	dp.choice[0] = make([]gChoice, K+1)

	for s := uint32(1); s < size; s++ {
		row := make([]int32, K+1)
		ch := make([]gChoice, K+1)
		row[0] = infinity
		pivot := bits.TrailingZeros32(s)
		pbit := uint32(1) << uint(pivot)
		rest0 := s ^ pbit

		for u := 2; u <= K; u++ {
			best := infinity
			var bc gChoice
			for v := 1; v <= u; v++ {
				var c int32
				if v == 1 {
					c = dp.costSignal(pivot)
				} else {
					c = dp.costMerge(pivot, v)
				}
				if c >= infinity {
					continue
				}
				r := dp.g[rest0][u-v]
				if r >= infinity {
					continue
				}
				if c+r < best {
					best = c + r
					bc = gChoice{kind: choiceSingleton, v: int8(v)}
				}
			}
			if !opts.DisableDecomposition {
				// Proper submasks d of s containing the pivot, |d| >= 2.
				for d := (s - 1) & s; d > 0; d = (d - 1) & s {
					if d&pbit == 0 || bits.OnesCount32(d) < 2 {
						continue
					}
					c := dp.mmBest[d] // d < s, already computed
					if c >= infinity {
						continue
					}
					r := dp.g[s&^d][u-1]
					if r >= infinity {
						continue
					}
					if c+r < best {
						best = c + r
						bc = gChoice{kind: choiceIntermediate, d: d}
					}
				}
			}
			row[u] = best
			ch[u] = bc
		}

		// mm(s): the cost of an intermediate node covering exactly s.
		mb := infinity
		var mu int8
		for u := 2; u <= K; u++ {
			if row[u] < infinity && row[u]+1 < mb {
				mb = row[u] + 1
				mu = int8(u)
			}
		}
		dp.mmBest[s] = mb
		dp.mmBestU[s] = mu

		// G[s][1]: a single pin covering all of s.
		switch {
		case s == pbit:
			row[1] = dp.costSignal(pivot)
			ch[1] = gChoice{kind: choiceSingleton, v: 1}
		case !opts.DisableDecomposition:
			row[1] = mb
			ch[1] = gChoice{kind: choiceIntermediate, d: s}
		default:
			row[1] = infinity
		}

		dp.g[s] = row
		dp.choice[s] = ch
	}

	dp.bestCost = infinity
	for u := 2; u <= K; u++ {
		if c := dp.g[dp.full][u]; c < infinity && c+1 < dp.bestCost {
			dp.bestCost = c + 1
			dp.bestU = u
		}
	}
}

// minmap returns cost(minmap(node, u)) for u in 2..K, or infinity when
// infeasible — exposed for the paper's monotonicity lemma tests.
func (dp *nodeDP) minmap(u int) int32 {
	c := dp.g[dp.full][u]
	if c >= infinity {
		return infinity
	}
	return c + 1
}
