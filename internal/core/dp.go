package core

import (
	"math/bits"

	"chortle/internal/forest"
	"chortle/internal/network"
)

// The tree-mapping dynamic program (Sections 3.1.1–3.1.3).
//
// For a tree node n with fanin edges e_0..e_{f-1}, the paper's
// minmap(n,u) — the cheapest circuit for the subtree at n whose root
// lookup table uses exactly u inputs — is found by searching all
// utilization divisions of all decompositions of n. We organize that
// search as an exact DP over (fanin subset, remaining utilization):
//
//	G[S][u] = minimum cost of realizing the inputs that the root LUT
//	          needs to cover op(n) over exactly the fanins in S, using
//	          exactly u of the root LUT's input pins
//
// with three ways to place the lowest-indexed fanin i of S:
//
//	singleton, u_i = 1: the fanin's finished signal feeds one pin;
//	    cost = bestcost(n_i)            (paper: minmap(n_i, K))
//	singleton, u_i = v >= 2: the fanin subtree's root LUT is merged
//	    into ours, its v inputs becoming our pins;
//	    cost = cost(minmap(n_i, v)) - 1 = G_i[full_i][v]
//	intermediate group d (i in d, |d| >= 2): a new node computing op(n)
//	    over the fanins in d feeds one pin (the paper requires u_i = 1
//	    for intermediate groups); cost = mm(d) = 1 + min_u G[d][u].
//
// Enumerating the group containing the pivot and recursing on S minus
// that group enumerates every set partition and every division exactly
// once, in O(3^f * K) instead of the Bell-number blow-up of the naive
// search. minmap(n, u) = 1 + G[full][u].
//
// G[S][1] (|S| >= 2) covers the case where the *rest* of a parent's
// division wraps all of S into one intermediate node: G[S][1] = mm(S).
//
// Memory layout: the G and choice tables of a node are flat slabs
// indexed s*(K+1)+u, carved out of a per-goroutine dpArena, so building
// a tree's DP costs O(1) allocations instead of one per subset row.

type choiceKind uint8

const (
	choiceNone choiceKind = iota
	choiceSingleton
	choiceIntermediate
)

// gChoice records how the pivot fanin of a subset was placed, for
// circuit reconstruction.
type gChoice struct {
	kind choiceKind
	v    int8   // singleton: utilization granted to the pivot subtree
	d    uint32 // intermediate: the group's fanin mask
}

// faninRef is one fanin edge of a tree node: either a leaf edge
// (primary input or another tree's root) or an internal child with its
// own DP table. Leaf edges carry their index in the tree's preorder
// leaf enumeration, which emission templates use to rebind input
// signals across structurally identical trees.
type faninRef struct {
	edge    network.Fanin
	child   *nodeDP // nil for leaf edges
	leafIdx int32   // preorder leaf index; -1 for internal children
}

// nodeDP holds the DP state of one tree node.
type nodeDP struct {
	node   *network.Node
	fanins []faninRef
	full   uint32

	// nodeIdx is the node's preorder index within its tree; emission
	// templates use it to rebind fresh-name bases across identical trees.
	nodeIdx int32
	// stride is K+1, the row length of the flat g/choice tables.
	stride int32

	g       []int32   // g[s*stride+u], u in 0..K
	choice  []gChoice // choice[s*stride+u]
	mmBest  []int32   // mm(s) = 1 + min_u g[s][u]
	mmBestU []int8

	bestCost int32 // min_u minmap(node, u)
	bestU    int
}

func (dp *nodeDP) gAt(s uint32, u int) int32 { return dp.g[int(s)*int(dp.stride)+u] }

func (dp *nodeDP) choiceAt(s uint32, u int) gChoice { return dp.choice[int(s)*int(dp.stride)+u] }

// buildDP constructs DP tables for the tree rooted at n (which must be a
// gate inside the tree), recursively building children first. This
// standalone form allocates a private arena and runs unmetered; the
// mapping hot path goes through buildDPIn with a recycled arena and a
// governor.
func buildDP(f *forest.Forest, n *network.Node, opts Options) *nodeDP {
	var nodeCtr, leafCtr int32
	return buildDPIn(new(dpArena), f, n, opts, &nodeCtr, &leafCtr, nil)
}

// buildDPIn constructs the tree DP with all state carved from arena a.
// nodeCtr and leafCtr thread the preorder numbering of gates and leaf
// edges through the recursion. gov (nil = unmetered) observes
// cancellation and search budgets; on a trip it unwinds the whole solve
// with a *solveAbort panic, so callers must enter through solveDP.
func buildDPIn(a *dpArena, f *forest.Forest, n *network.Node, opts Options, nodeCtr, leafCtr *int32, gov *governor) *nodeDP {
	dp := a.allocNode()
	idx := *nodeCtr
	*nodeCtr++
	frs := a.allocFanins(len(n.Fanins))
	for i, e := range n.Fanins {
		fr := faninRef{edge: e, leafIdx: -1}
		if !f.IsLeafEdge(e.Node) {
			fr.child = buildDPIn(a, f, e.Node, opts, nodeCtr, leafCtr, gov)
		} else {
			fr.leafIdx = *leafCtr
			*leafCtr++
		}
		frs[i] = fr
	}
	*dp = nodeDP{node: n, fanins: frs, nodeIdx: idx}
	dp.compute(a, opts, gov)
	return dp
}

// costSignal is the cost of feeding fanin i as a finished signal
// (utilization 1): zero for leaf edges, bestcost of the child otherwise.
func (dp *nodeDP) costSignal(i int) int32 {
	if dp.fanins[i].child == nil {
		return 0
	}
	return dp.fanins[i].child.bestCost
}

// costMerge is the cost of merging fanin i's root LUT into ours with v
// of our pins: cost(minmap(child, v)) - 1. Leaf edges cannot merge.
func (dp *nodeDP) costMerge(i, v int) int32 {
	c := dp.fanins[i].child
	if c == nil {
		return infinity
	}
	return c.gAt(c.full, v) // (1 + g) - 1
}

func (dp *nodeDP) compute(a *dpArena, opts Options, gov *governor) {
	f := len(dp.fanins)
	K := opts.K
	stride := K + 1
	size := 1 << uint(f)
	dp.full = uint32(size - 1)
	dp.stride = int32(stride)
	dp.g = a.allocI32(size * stride)
	dp.choice = a.allocChoice(size * stride)
	dp.mmBest = a.allocI32(size)
	dp.mmBestU = a.allocI8(size)

	// Arena slabs are recycled, so every cell read later must be written
	// here; the loops below cover u = 0..K for every subset.
	g, choices := dp.g, dp.choice
	g[0] = 0
	choices[0] = gChoice{}
	for u := 1; u <= K; u++ {
		g[u] = infinity
		choices[u] = gChoice{}
	}

	for s := 1; s < size; s++ {
		// One budget charge per subset row, sized to the row's search
		// effort: the singleton scan is O(K^2) and the intermediate-group
		// scan is O(K * 2^|s|) submask probes.
		if gov != nil {
			work := int64(stride * stride)
			if !opts.DisableDecomposition {
				work += int64(K-1) << uint(bits.OnesCount32(uint32(s)))
			}
			gov.charge(work)
		}
		row := g[s*stride : (s+1)*stride]
		ch := choices[s*stride : (s+1)*stride]
		row[0] = infinity
		ch[0] = gChoice{}
		pivot := bits.TrailingZeros32(uint32(s))
		pbit := 1 << uint(pivot)
		rest0 := g[(s^pbit)*stride:]

		for u := 2; u <= K; u++ {
			best := infinity
			var bc gChoice
			for v := 1; v <= u; v++ {
				var c int32
				if v == 1 {
					c = dp.costSignal(pivot)
				} else {
					c = dp.costMerge(pivot, v)
				}
				if c >= infinity {
					continue
				}
				r := rest0[u-v]
				if r >= infinity {
					continue
				}
				if c+r < best {
					best = c + r
					bc = gChoice{kind: choiceSingleton, v: int8(v)}
				}
			}
			if !opts.DisableDecomposition {
				// Proper submasks d of s containing the pivot, |d| >= 2.
				for d := (s - 1) & s; d > 0; d = (d - 1) & s {
					if d&pbit == 0 || bits.OnesCount32(uint32(d)) < 2 {
						continue
					}
					c := dp.mmBest[d] // d < s, already computed
					if c >= infinity {
						continue
					}
					r := g[(s&^d)*stride+u-1]
					if r >= infinity {
						continue
					}
					if c+r < best {
						best = c + r
						bc = gChoice{kind: choiceIntermediate, d: uint32(d)}
					}
				}
			}
			row[u] = best
			ch[u] = bc
		}

		// mm(s): the cost of an intermediate node covering exactly s.
		mb := infinity
		var mu int8
		for u := 2; u <= K; u++ {
			if row[u] < infinity && row[u]+1 < mb {
				mb = row[u] + 1
				mu = int8(u)
			}
		}
		dp.mmBest[s] = mb
		dp.mmBestU[s] = mu

		// G[s][1]: a single pin covering all of s.
		switch {
		case s == pbit:
			row[1] = dp.costSignal(pivot)
			ch[1] = gChoice{kind: choiceSingleton, v: 1}
		case !opts.DisableDecomposition:
			row[1] = mb
			ch[1] = gChoice{kind: choiceIntermediate, d: uint32(s)}
		default:
			row[1] = infinity
			ch[1] = gChoice{}
		}
	}

	dp.bestCost = infinity
	for u := 2; u <= K; u++ {
		if c := dp.gAt(dp.full, u); c < infinity && c+1 < dp.bestCost {
			dp.bestCost = c + 1
			dp.bestU = u
		}
	}
}

// minmap returns cost(minmap(node, u)) for u in 2..K, or infinity when
// infeasible — exposed for the paper's monotonicity lemma tests.
func (dp *nodeDP) minmap(u int) int32 {
	c := dp.gAt(dp.full, u)
	if c >= infinity {
		return infinity
	}
	return c + 1
}
