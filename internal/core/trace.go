package core

import (
	"time"

	"chortle/internal/lut"
	"chortle/internal/obs"
)

// tracer is the core's emission shim over obs.Observer. Every method is
// a no-op when no observer is attached — a single nil check, no
// time.Now call, no event construction, no allocation — which is what
// lets DefaultOptions leave observability compiled into the hot path.
// With an observer attached, every emission is read-only with respect
// to the mapping: sinks see data, they never influence a search
// decision, so the emitted circuit is byte-identical either way.
type tracer struct {
	o obs.Observer
}

// on reports whether an observer is attached; callers use it to skip
// preparing data (circuit stats, level maps) that only events consume.
func (t tracer) on() bool { return t.o != nil }

// noopDone is the pre-allocated closure phase returns when disabled.
var noopDone = func() {}

// phase opens a pipeline phase and returns the closure that closes it.
// The end event carries the phase's wall time, so aggregation needs no
// start/end pairing.
func (t tracer) phase(name string) func() {
	if t.o == nil {
		return noopDone
	}
	start := time.Now()
	t.o.Observe(obs.Event{Kind: obs.KindPhaseStart, Time: start, Phase: name})
	return func() {
		now := time.Now()
		t.o.Observe(obs.Event{Kind: obs.KindPhaseEnd, Time: now, Phase: name, Units: int64(now.Sub(start))})
	}
}

func (t tracer) mapStart(k, nodes int) {
	if t.o == nil {
		return
	}
	t.o.Observe(obs.Event{Kind: obs.KindMapStart, Time: time.Now(), K: k, N: nodes})
}

// now is the tracer's clock: the zero time with no observer attached
// (no time.Now call on the disabled path), the wall clock otherwise.
// Solve sites read it before the DP so treeSolve can report a duration.
func (t tracer) now() time.Time {
	if t.o == nil {
		return time.Time{}
	}
	return time.Now()
}

// treeSolve records one completed tree DP solve, the work units its
// governor metered, and — when the caller bracketed the solve with
// t.now() — its wall time.
func (t tracer) treeSolve(tree string, units int64, cost int32, start time.Time) {
	if t.o == nil {
		return
	}
	now := time.Now()
	var d time.Duration
	if !start.IsZero() {
		d = now.Sub(start)
	}
	t.o.Observe(obs.Event{Kind: obs.KindTreeSolve, Time: now, Tree: tree, Units: units, Cost: int(cost), Dur: d})
}

// memoHit records a tree that reused the DP of a structurally identical
// tree instead of solving its own.
func (t tracer) memoHit(tree string, cost int32) {
	if t.o == nil {
		return
	}
	t.o.Observe(obs.Event{Kind: obs.KindMemoHit, Time: time.Now(), Tree: tree, Cost: int(cost)})
}

func (t tracer) templateReplay(tree string) {
	if t.o == nil {
		return
	}
	t.o.Observe(obs.Event{Kind: obs.KindTemplateReplay, Time: time.Now(), Tree: tree})
}

func (t tracer) budgetExhausted(tree string, limit int64) {
	if t.o == nil {
		return
	}
	t.o.Observe(obs.Event{Kind: obs.KindBudgetExhausted, Time: time.Now(), Tree: tree, Units: limit})
}

func (t tracer) treeDegraded(tree string, cost int32) {
	if t.o == nil {
		return
	}
	t.o.Observe(obs.Event{Kind: obs.KindTreeDegraded, Time: time.Now(), Tree: tree, Cost: int(cost)})
}

func (t tracer) arenaStats(count int, bytes int64) {
	if t.o == nil {
		return
	}
	t.o.Observe(obs.Event{Kind: obs.KindArenaStats, Time: time.Now(), N: count, Units: bytes})
}

func (t tracer) dupAccepted(node string) {
	if t.o == nil {
		return
	}
	t.o.Observe(obs.Event{Kind: obs.KindDupAccepted, Time: time.Now(), Tree: node})
}

// circuit closes a run: one KindLUT event per emitted lookup table
// (input count and level) and the KindMapEnd summary. Emitted only when
// an observer is attached, so the level computation never runs on an
// unobserved map.
func (t tracer) circuit(ckt *lut.Circuit, trees int) {
	if t.o == nil {
		return
	}
	levels, err := ckt.Levels()
	if err != nil {
		// The circuit was validated just before; a cycle here cannot
		// happen. Emit the summary without per-LUT detail regardless —
		// instrumentation must not fail the mapping.
		levels = nil
	}
	depth := 0
	now := time.Now()
	for _, l := range ckt.LUTs {
		lv := levels[l.Name]
		if lv > depth {
			depth = lv
		}
		t.o.Observe(obs.Event{Kind: obs.KindLUT, Time: now, Tree: l.Name, N: len(l.Inputs), Depth: lv})
	}
	t.o.Observe(obs.Event{Kind: obs.KindMapEnd, Time: time.Now(), Cost: ckt.Count(), Depth: depth, N: trees})
}
