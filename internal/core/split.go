package core

import (
	"fmt"

	"chortle/internal/network"
)

// Node splitting (Section 3.1.4): "For a node with fanin greater than
// ten the number of decompositions to be searched becomes impractically
// large. ... we initially decompose such large fanin nodes into two
// nodes with roughly equal fanin and then decompose each node
// separately." The split preserves function because AND and OR are
// associative, and the new half-nodes have fanout one so they stay
// inside the same fanout-free tree.

// splitWideNodes rewrites, in place, every gate whose fanin exceeds
// limit into a balanced binary structure of gates each with fanin at
// most limit. Returns the number of nodes added.
func splitWideNodes(nw *network.Network, limit int) int {
	added := 0
	gensym := 0
	fresh := func(base string) string {
		for {
			gensym++
			name := fmt.Sprintf("%s$s%d", base, gensym)
			if nw.Find(name) == nil {
				return name
			}
		}
	}
	// Recursively split one node; newly created halves are split in turn.
	var split func(n *network.Node)
	split = func(n *network.Node) {
		for len(n.Fanins) > limit {
			// Pull roughly half the fanins (never fewer than two, so no
			// degenerate buffer nodes appear) into a new half-node.
			mid := (len(n.Fanins) + 1) / 2
			a := nw.AddGate(fresh(n.Name), n.Op, append([]network.Fanin(nil), n.Fanins[:mid]...)...)
			rest := append([]network.Fanin{{Node: a}}, n.Fanins[mid:]...)
			n.Fanins = rest
			added++
			split(a)
		}
	}
	// Snapshot: splitting appends to nw.Nodes.
	gates := make([]*network.Node, 0, len(nw.Nodes))
	for _, n := range nw.Nodes {
		if !n.IsInput() {
			gates = append(gates, n)
		}
	}
	for _, n := range gates {
		split(n)
	}
	nw.Reindex()
	return added
}
