package core

import (
	"math/bits"

	"chortle/internal/forest"
	"chortle/internal/network"
)

// Reference implementation of the tree-mapping search, transliterating
// the paper's pseudo code (Figure 4) directly: for every node, for every
// utilization U = 2..K, exhaustively enumerate all decompositions (set
// partitions of the fanins into singleton and intermediate groups) and
// all utilization divisions of each. Exponential in fanin — usable only
// for small trees — but structurally independent of the production
// subset DP in dp.go, which the tests validate against it.

type refNode struct {
	node   *network.Node
	fanins []refFanin
	// minmap[u] for u in 0..K (index 1 unused; 2..K populated);
	// best = min over u.
	minmap []int
	best   int
	// mm memoizes intermediate-node costs per fanin subset.
	mm map[uint32]int
	k  int
}

type refFanin struct {
	child *refNode // nil for leaf edges
}

const refInf = int(1) << 30

func buildRef(f *forest.Forest, n *network.Node, k int) *refNode {
	r := &refNode{node: n, k: k, mm: make(map[uint32]int)}
	for _, e := range n.Fanins {
		rf := refFanin{}
		if !f.IsLeafEdge(e.Node) {
			rf.child = buildRef(f, e.Node, k)
		}
		r.fanins = append(r.fanins, rf)
	}
	r.compute()
	return r
}

func (r *refNode) compute() {
	r.minmap = make([]int, r.k+1)
	full := uint32(1)<<uint(len(r.fanins)) - 1
	for u := 2; u <= r.k; u++ {
		r.minmap[u] = r.searchSubset(full, u)
		if r.minmap[u] < refInf {
			r.minmap[u]++ // the root lookup table itself
		}
	}
	r.best = refInf
	for u := 2; u <= r.k; u++ {
		if r.minmap[u] < r.best {
			r.best = r.minmap[u]
		}
	}
}

// searchSubset exhaustively searches all decompositions of the fanin
// subset s and all utilization divisions summing to exactly u, returning
// the minimum input-realization cost (root LUT excluded).
func (r *refNode) searchSubset(s uint32, u int) int {
	members := maskMembers(s)
	best := refInf
	// Enumerate set partitions of members by recursive block assignment.
	var parts [][]int
	var rec func(i int)
	rec = func(i int) {
		if i == len(members) {
			if c := r.costOfPartition(parts, u); c < best {
				best = c
			}
			return
		}
		for bi := range parts {
			parts[bi] = append(parts[bi], members[i])
			rec(i + 1)
			parts[bi] = parts[bi][:len(parts[bi])-1]
		}
		parts = append(parts, []int{members[i]})
		rec(i + 1)
		parts = parts[:len(parts)-1]
	}
	rec(0)
	return best
}

// costOfPartition enumerates utilization divisions of the given
// decomposition: intermediate groups (size >= 2) contribute exactly one
// input (the paper's u_i = 1 rule); singletons get u_i in 1..K. The
// total must equal u.
func (r *refNode) costOfPartition(parts [][]int, u int) int {
	// Feasibility first (each group needs at least one input, singletons
	// at most K): this also breaks the recursion that the trivial
	// one-block partition of the node's own fanin set would otherwise
	// cause via intermediateCost.
	fixedInputs := 0
	nSingles := 0
	for _, p := range parts {
		if len(p) >= 2 {
			fixedInputs++
		} else {
			nSingles++
		}
	}
	if fixedInputs+nSingles > u || fixedInputs+nSingles*r.k < u {
		return refInf
	}
	fixedCost := 0
	var singles []int
	for _, p := range parts {
		if len(p) >= 2 {
			var mask uint32
			for _, i := range p {
				mask |= 1 << uint(i)
			}
			c := r.intermediateCost(mask)
			if c >= refInf {
				return refInf
			}
			fixedCost += c
		} else {
			singles = append(singles, p[0])
		}
	}
	// Distribute the remaining utilization among singletons.
	best := refInf
	var rec func(idx, remaining, acc int)
	rec = func(idx, remaining, acc int) {
		if acc >= best {
			return
		}
		if idx == len(singles) {
			if remaining == 0 && acc < best {
				best = acc
			}
			return
		}
		i := singles[idx]
		minNeeded := len(singles) - idx - 1 // later singletons need >= 1 each
		for v := 1; v <= r.k && remaining-v >= minNeeded; v++ {
			var c int
			if v == 1 {
				c = r.signalCost(i)
			} else {
				c = r.mergeCost(i, v)
			}
			if c >= refInf {
				continue
			}
			rec(idx+1, remaining-v, acc+c)
		}
	}
	rec(0, u-fixedInputs, fixedCost)
	return best
}

func (r *refNode) signalCost(i int) int {
	if r.fanins[i].child == nil {
		return 0
	}
	return r.fanins[i].child.best
}

func (r *refNode) mergeCost(i, v int) int {
	c := r.fanins[i].child
	if c == nil || c.minmap[v] >= refInf {
		return refInf
	}
	return c.minmap[v] - 1
}

// intermediateCost is the paper's minmap(n_d, K) minimized over
// utilization: the intermediate node over subset mask, including its own
// root LUT, searched with the same exhaustive procedure.
func (r *refNode) intermediateCost(mask uint32) int {
	if c, ok := r.mm[mask]; ok {
		return c
	}
	best := refInf
	for u := 2; u <= r.k; u++ {
		if c := r.searchSubset(mask, u); c < refInf && c+1 < best {
			best = c + 1
		}
	}
	r.mm[mask] = best
	return best
}

func maskMembers(s uint32) []int {
	var out []int
	for s != 0 {
		i := bits.TrailingZeros32(s)
		out = append(out, i)
		s &^= 1 << uint(i)
	}
	return out
}

// ReferenceTreeCosts computes per-tree optimal costs with the
// exhaustive reference search. Intended for validation on small
// networks only.
func ReferenceTreeCosts(input *network.Network, opts Options) (map[string]int, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	nw := input.Clone()
	nw.Sweep()
	limit := opts.SplitThreshold
	if opts.DisableDecomposition && limit > opts.K {
		limit = opts.K
	}
	splitWideNodes(nw, limit)
	f, err := forest.Decompose(nw)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, len(f.Roots))
	for _, root := range f.Roots {
		r := buildRef(f, root, opts.K)
		out[root.Name] = r.best
	}
	return out, nil
}
