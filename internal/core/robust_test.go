package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"chortle/internal/cerrs"
	"chortle/internal/network"
	"chortle/internal/verify"
)

// Fault-injection tests for the execution layer: a worker that panics
// or a context cancelled in the middle of a mapping must never leak a
// goroutine or an arena, and must surface as an ordinary error.

// waitGoroutines waits for the goroutine count to settle back to at
// most base (the runtime needs a moment to retire exiting goroutines).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d > %d at baseline\n%s",
				runtime.NumGoroutine(), base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// checkArenas asserts every arena checked out during the test was
// returned to the pool.
func checkArenas(t *testing.T, base int64) {
	t.Helper()
	if n := liveArenas(); n != base {
		t.Fatalf("arenas leaked: %d live, baseline %d", n, base)
	}
}

func withFaultHook(t *testing.T, h func(site string, i int)) {
	t.Helper()
	FaultHook = h
	t.Cleanup(func() { FaultHook = nil })
}

// TestWorkerPanicRecovered injects a panic into a pool worker and
// checks that Map reports it as an error (not a crash), joins every
// worker, and returns all arenas.
func TestWorkerPanicRecovered(t *testing.T) {
	prev := runtime.GOMAXPROCS(4) // force the multi-worker pool path
	defer runtime.GOMAXPROCS(prev)

	withFaultHook(t, func(site string, i int) {
		if site == "worker" && i == 1 {
			panic("injected worker fault")
		}
	})

	baseG := runtime.NumGoroutine()
	baseA := liveArenas()
	opts := DefaultOptions(4)
	opts.Parallel, opts.Memoize = true, false
	res, err := Map(figure1(), opts)
	if err == nil {
		t.Fatalf("injected worker panic did not surface: res=%+v", res)
	}
	var pe *cerrs.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("worker panic surfaced as %T (%v), want *cerrs.PanicError", err, err)
	}
	if pe.Value != "injected worker fault" {
		t.Fatalf("panic value = %v, want the injected fault", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("recovered panic carries no stack")
	}
	waitGoroutines(t, baseG)
	checkArenas(t, baseA)
}

// TestFaultHookCancellation cancels the context from inside a tree
// solve and checks that MapCtx returns ctx.Err() with everything
// cleaned up.
func TestFaultHookCancellation(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withFaultHook(t, func(site string, i int) {
		if site == "solve" {
			cancel() // fires mid-map, before the solve's first charge
		}
	})

	baseG := runtime.NumGoroutine()
	baseA := liveArenas()
	opts := DefaultOptions(4)
	opts.Parallel = true
	res, err := MapCtx(ctx, figure1(), opts)
	if err == nil {
		t.Fatalf("mid-map cancellation returned a result: %+v", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-map cancellation returned %v, want context.Canceled", err)
	}
	waitGoroutines(t, baseG)
	checkArenas(t, baseA)
}

// TestPreCancelledContext: an already-dead context must fail fast, in
// every Parallel x Memoize mode.
func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	nw := figure1()
	for _, par := range []bool{false, true} {
		for _, memo := range []bool{false, true} {
			opts := DefaultOptions(4)
			opts.Parallel, opts.Memoize = par, memo
			baseA := liveArenas()
			if _, err := MapCtx(ctx, nw, opts); !errors.Is(err, context.Canceled) {
				t.Fatalf("parallel=%v memoize=%v: got %v, want context.Canceled", par, memo, err)
			}
			checkArenas(t, baseA)
		}
	}
}

// TestBudgetDegradesToBinPack: a tree too big for its work budget must
// be remapped with the bin-packing strategy — the result is still a
// correct circuit and the tree is reported in Degraded.
func TestBudgetDegradesToBinPack(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nw := mkTree(rng, network.OpAnd, 70)
	for _, par := range []bool{false, true} {
		for _, memo := range []bool{false, true} {
			opts := DefaultOptions(5)
			opts.Parallel, opts.Memoize = par, memo
			opts.Budget.WorkUnits = 1
			baseA := liveArenas()
			res, err := Map(nw, opts)
			if err != nil {
				t.Fatalf("parallel=%v memoize=%v: budgeted map failed: %v", par, memo, err)
			}
			if len(res.Degraded) == 0 {
				t.Fatalf("parallel=%v memoize=%v: 1-unit budget did not degrade any tree", par, memo)
			}
			if err := verify.NetworkVsCircuit(nw, res.Circuit, 16, 1); err != nil {
				t.Fatalf("parallel=%v memoize=%v: degraded circuit wrong: %v", par, memo, err)
			}
			checkArenas(t, baseA)
		}
	}
}

// TestWallClockBudgetDegrades: an immediately-expired wall-clock budget
// degrades every tree but still yields a correct circuit.
func TestWallClockBudgetDegrades(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nw := mkTree(rng, network.OpOr, 70)
	opts := DefaultOptions(5)
	opts.Budget.WallClock = time.Nanosecond
	res, err := Map(nw, opts)
	if err != nil {
		t.Fatalf("wall-clock budgeted map failed: %v", err)
	}
	if len(res.Degraded) == 0 {
		t.Fatal("expired wall-clock budget did not degrade any tree")
	}
	if err := verify.NetworkVsCircuit(nw, res.Circuit, 16, 1); err != nil {
		t.Fatalf("degraded circuit wrong: %v", err)
	}
}

// TestGenerousBudgetNoDegradation: a budget that is never exhausted
// must not alter the result or report degradations.
func TestGenerousBudgetNoDegradation(t *testing.T) {
	nw := figure1()
	opts := DefaultOptions(4)
	opts.Budget.WorkUnits = 1 << 40
	res, err := Map(nw, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degraded) != 0 {
		t.Fatalf("generous budget degraded trees: %v", res.Degraded)
	}
	ref, err := Map(nw, DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.LUTs != ref.LUTs {
		t.Fatalf("budgeted LUTs %d != unbudgeted %d", res.LUTs, ref.LUTs)
	}
}
