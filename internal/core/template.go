package core

import (
	"chortle/internal/lut"
	"chortle/internal/network"
	"chortle/internal/truth"
)

// Emission templates: the reusable half of tree memoization. Once one
// tree of a shape has been reconstructed, the sequence of LUTs it
// emitted — their truth tables, their input wiring, and the order of
// fresh-name draws — is recorded as a template. Every later tree with
// the same shape *and* the same leaf-coincidence pattern replays the
// template: resolve its own leaf signals, draw its own fresh names (in
// the recorded order, so the global name sequence advances exactly as a
// from-scratch reconstruction would), and add the recorded truth tables
// verbatim. Replay skips the DP choice walk and the per-LUT truth-table
// evaluation, and is what keeps memoized output byte-identical to the
// sequential mapper's.

// lutSpec is one recorded LUT.
type lutSpec struct {
	// nameRef indexes the template's fresh-name draws; -1 means the name
	// is supplied by the caller (the tree's root LUT, whose name depends
	// on circuit state, not on the shape).
	nameRef int32
	// inputs are signal tokens: tok >= 0 is the tree's leaf edge number
	// tok (preorder); tok < 0 is LUT -(tok+1) emitted earlier in this
	// same template.
	inputs []int32
	table  truth.Table

	// Provenance, recorded only when Options.Provenance is on (shape is
	// then non-empty): the preorder indices of the covered tree nodes,
	// the partially-computed node's index (-1 = none), and the shape
	// string — everything a replayed tree needs to rebuild the record
	// against its own node names.
	covers  []int32
	partIdx int32
	shape   string
}

// emitTemplate is the recorded emission of one (shape, leaf-pattern)
// class of trees.
type emitTemplate struct {
	// freshes lists, in draw order, the preorder index of the tree node
	// whose name seeds each fresh-name draw.
	freshes []int32
	luts    []lutSpec
}

// emitRecorder captures a template while the normal reconstruction path
// runs. Recording is passive: it never changes what is emitted, and a
// recording failure (an input signal that cannot be tokenized) only
// means no template is stored.
type emitRecorder struct {
	sigTok    map[string]int32 // signal -> token
	freshName map[string]int32 // fresh name -> index in freshes
	freshes   []int32
	specs     []lutSpec
	failed    bool
}

func newEmitRecorder() *emitRecorder {
	return &emitRecorder{
		sigTok:    make(map[string]int32),
		freshName: make(map[string]int32),
	}
}

// noteLeaf registers the signal a leaf edge resolved to. The first leaf
// index seen for a signal wins; any leaf index carrying the same signal
// is equivalent under the template's leaf pattern.
func (r *emitRecorder) noteLeaf(sig string, leafIdx int32) {
	if leafIdx < 0 {
		r.failed = true
		return
	}
	if _, ok := r.sigTok[sig]; !ok {
		r.sigTok[sig] = leafIdx
	}
}

// noteFresh registers a fresh-name draw seeded by tree node nodeIdx.
func (r *emitRecorder) noteFresh(name string, nodeIdx int32) {
	r.freshName[name] = int32(len(r.freshes))
	r.freshes = append(r.freshes, nodeIdx)
}

// noteLUT records one emitted LUT and makes its output signal
// addressable by later LUTs of the same tree.
func (r *emitRecorder) noteLUT(name string, inputs []string, table truth.Table) {
	spec := lutSpec{nameRef: -1, table: table, inputs: make([]int32, len(inputs))}
	if i, ok := r.freshName[name]; ok {
		spec.nameRef = i
	}
	for j, s := range inputs {
		tok, ok := r.sigTok[s]
		if !ok {
			r.failed = true
			return
		}
		spec.inputs[j] = tok
	}
	r.specs = append(r.specs, spec)
	r.sigTok[name] = -int32(len(r.specs)) // LUT j-1 -> token -j
}

// noteProv attaches the provenance of the most recently recorded LUT to
// its spec, keyed by preorder node indices so replay can rebind it.
func (r *emitRecorder) noteProv(pf *provFrame, shape string) {
	if r.failed || len(r.specs) == 0 {
		return
	}
	spec := &r.specs[len(r.specs)-1]
	spec.shape = shape
	spec.partIdx = pf.partIdx
	if len(pf.covers) > 0 {
		spec.covers = make([]int32, len(pf.covers))
		for i, c := range pf.covers {
			spec.covers[i] = c.idx
		}
	}
}

// template returns the finished template, or nil if recording failed or
// produced nothing.
func (r *emitRecorder) template() *emitTemplate {
	if r.failed || len(r.specs) == 0 {
		return nil
	}
	return &emitTemplate{freshes: r.freshes, luts: r.specs}
}

// treeNamesAndLeafSigs walks the tree rooted at root in the DP's
// preorder, returning the gate names (indexed by nodeIdx) and the
// resolved signal of every leaf edge (indexed by leafIdx).
func (m *mapper) treeNamesAndLeafSigs(root *network.Node) (names []string, sigs []string, err error) {
	var walk func(n *network.Node) error
	walk = func(n *network.Node) error {
		names = append(names, n.Name)
		for _, e := range n.Fanins {
			if m.f.IsLeafEdge(e.Node) {
				s, lerr := m.leafSignal(e.Node)
				if lerr != nil {
					return lerr
				}
				sigs = append(sigs, s)
			} else if werr := walk(e.Node); werr != nil {
				return werr
			}
		}
		return nil
	}
	if err = walk(root); err != nil {
		return nil, nil, err
	}
	return names, sigs, nil
}

// replayTemplate re-emits a recorded tree for the structurally identical
// tree rooted at root, and registers its root signal.
func (m *mapper) replayTemplate(root *network.Node, t *emitTemplate, names []string, leafSigs []string) (string, error) {
	rootName := root.Name
	if m.ckt.Find(rootName) != nil || m.cktHasInput(rootName) {
		rootName = m.fresh(root.Name)
	}
	freshNames := make([]string, len(t.freshes))
	for i, idx := range t.freshes {
		freshNames[i] = m.fresh(names[idx])
	}
	emitted := make([]string, len(t.luts))
	for j, spec := range t.luts {
		name := rootName
		if spec.nameRef >= 0 {
			name = freshNames[spec.nameRef]
		}
		inputs := make([]string, len(spec.inputs))
		for i, tok := range spec.inputs {
			if tok >= 0 {
				inputs[i] = leafSigs[tok]
			} else {
				inputs[i] = emitted[-tok-1]
			}
		}
		m.ckt.AddLUT(name, inputs, spec.table)
		if m.opts.Provenance && spec.shape != "" {
			covers := make([]string, len(spec.covers))
			for i, idx := range spec.covers {
				covers[i] = names[idx]
			}
			partOf := ""
			if spec.partIdx >= 0 {
				partOf = names[spec.partIdx]
			}
			m.ckt.SetProvenance(name, &lut.Provenance{
				Tree:      m.provTree,
				Origin:    m.provOrigin,
				Covers:    covers,
				PartOf:    partOf,
				Shape:     spec.shape,
				FaninLUTs: m.faninLUTs(inputs),
				WorkUnits: m.provUnits,
			})
		}
		emitted[j] = name
	}
	sig := emitted[len(emitted)-1]
	m.sig[root] = sig
	return sig, nil
}
