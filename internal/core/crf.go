package core

import (
	"fmt"
	"sort"
	"strconv"

	"chortle/internal/lut"
	"chortle/internal/network"
	"chortle/internal/truth"
)

// Bin-packing decomposition — the successor algorithm's idea
// (Chortle-crf, DAC'91) retrofitted as an alternative strategy: instead
// of exhaustively searching all decompositions and divisions (3^f per
// node), treat each fanin's root LUT as an item whose size is its pin
// count and first-fit-decreasing pack the items into K-input bins,
// emitting full bins as LUTs and repacking their outputs until one bin
// remains. Quality is near the exhaustive search on typical fanin
// distributions, with no fanin bound and no node splitting.

// Strategy selects the per-node decomposition search.
type Strategy uint8

const (
	// StrategyExhaustive is the paper's algorithm: optimal per tree.
	StrategyExhaustive Strategy = iota
	// StrategyBinPack is the Chortle-crf-style first-fit-decreasing
	// packing: much faster on wide nodes, not guaranteed optimal.
	StrategyBinPack
)

// crfExpr is logic accumulated for a not-yet-emitted LUT: an AND/OR
// tree over named signals.
type crfExpr struct {
	leaf   bool
	sig    string
	invert bool
	op     network.Op
	kids   []*crfExpr
}

func crfEval(e *crfExpr, val map[string]bool) bool {
	if e.leaf {
		return val[e.sig] != e.invert
	}
	var v bool
	if e.op == network.OpAnd {
		v = true
		for _, k := range e.kids {
			if !crfEval(k, val) {
				v = false
				break
			}
		}
	} else {
		for _, k := range e.kids {
			if crfEval(k, val) {
				v = true
				break
			}
		}
	}
	return v != e.invert
}

// crfItem is a packable unit: an expression plus the distinct signals it
// consumes.
type crfItem struct {
	expr    *crfExpr
	inputs  []string
	arrival int32 // max arrival of inputs (depth bookkeeping)
	// nodes lists the gate nodes whose function this item fully absorbs
	// (populated only when provenance recording is on). Whichever LUT
	// finally emits the item covers them.
	nodes []string
}

func (it crfItem) size() int { return len(it.inputs) }

// crfMapping is a subtree's not-yet-emitted root: op over packed items.
type crfMapping struct {
	item crfItem
}

// crfState runs the strategy over one tree.
type crfState struct {
	m    *mapper
	arr  map[*network.Node]int32
	cost int32
}

// mapNode maps the subtree at n, emitting all LUTs except the root's.
func (cs *crfState) mapNode(n *network.Node) (crfMapping, error) {
	items := make([]crfItem, 0, len(n.Fanins))
	for _, e := range n.Fanins {
		if cs.m.f.IsLeafEdge(e.Node) {
			sig, arrv, err := cs.leafSignal(e.Node)
			if err != nil {
				return crfMapping{}, err
			}
			items = append(items, crfItem{
				expr:    &crfExpr{leaf: true, sig: sig, invert: e.Invert},
				inputs:  []string{sig},
				arrival: arrv,
			})
			continue
		}
		sub, err := cs.mapNode(e.Node)
		if err != nil {
			return crfMapping{}, err
		}
		it := sub.item
		if cs.m.opts.Provenance {
			// The child node's function is now complete inside this item.
			it.nodes = append(it.nodes, e.Node.Name)
		}
		if e.Invert {
			// Wrap so the inversion rides into whichever LUT absorbs
			// it (a single-child AND is an identity, so this is safe
			// for any expression shape).
			it.expr = &crfExpr{op: network.OpAnd, kids: []*crfExpr{it.expr}, invert: true}
		}
		items = append(items, it)
	}
	return cs.pack(n.Op, n.Name, items)
}

// pack runs first-fit-decreasing rounds until everything fits one bin.
// owner names the node being packed, for attributing under-filled bins.
func (cs *crfState) pack(op network.Op, owner string, items []crfItem) (crfMapping, error) {
	K := cs.m.opts.K
	for {
		total := 0
		for _, it := range items {
			total += it.size()
		}
		if total <= K {
			// Everything fits one root LUT (left to the caller to emit
			// or merge further up).
			return crfMapping{item: cs.combine(op, items)}, nil
		}
		// First-fit decreasing; stable order for determinism.
		sort.SliceStable(items, func(i, j int) bool { return items[i].size() > items[j].size() })
		type bin struct {
			items []crfItem
			used  int
		}
		var bins []*bin
		for _, it := range items {
			placed := false
			for _, b := range bins {
				if b.used+it.size() <= K {
					b.items = append(b.items, it)
					b.used += it.size()
					placed = true
					break
				}
			}
			if !placed {
				if it.size() > K {
					return crfMapping{}, fmt.Errorf("core: bin packing item exceeds K=%d", K)
				}
				bins = append(bins, &bin{items: []crfItem{it}, used: it.size()})
			}
		}
		// Full bins become LUTs; partial bins pass through as combined
		// (un-emitted) items so later rounds can keep filling them —
		// emitting an under-filled LUT early is the waste a packer must
		// avoid. If nothing was emitted and nothing merged, every item
		// is too wide to pair: emit them all so their size-1 outputs
		// unblock the next round.
		progressed := false
		next := make([]crfItem, 0, len(bins))
		var emit []crfItem
		for _, b := range bins {
			switch {
			case b.used == K:
				emit = append(emit, cs.combine(op, b.items))
				progressed = true
			case len(b.items) > 1:
				next = append(next, cs.combine(op, b.items))
				progressed = true
			default:
				next = append(next, b.items[0])
			}
		}
		if !progressed {
			emit = append(emit, next...)
			next = next[:0]
		}
		for _, it := range emit {
			sig, err := cs.emitItem(op, it, owner)
			if err != nil {
				return crfMapping{}, err
			}
			next = append(next, crfItem{
				expr:    &crfExpr{leaf: true, sig: sig},
				inputs:  []string{sig},
				arrival: it.arrival + 1,
			})
		}
		items = next
	}
}

// combine merges items into one op-expression, deduplicating inputs.
func (cs *crfState) combine(op network.Op, items []crfItem) crfItem {
	var kids []*crfExpr
	var inputs []string
	seen := map[string]bool{}
	var arrv int32
	for _, it := range items {
		// Flatten same-op children for cleaner expressions.
		if !it.expr.leaf && it.expr.op == op && !it.expr.invert {
			kids = append(kids, it.expr.kids...)
		} else {
			kids = append(kids, it.expr)
		}
		for _, in := range it.inputs {
			if !seen[in] {
				seen[in] = true
				inputs = append(inputs, in)
			}
		}
		if it.arrival > arrv {
			arrv = it.arrival
		}
	}
	var nodes []string
	for _, it := range items {
		nodes = append(nodes, it.nodes...)
	}
	return crfItem{expr: &crfExpr{op: op, kids: kids}, inputs: inputs, arrival: arrv, nodes: nodes}
}

// emitItem materializes an item as a LUT and returns its signal. partOf
// attributes an under-filled bin (one covering no complete node) to the
// node whose packing produced it.
func (cs *crfState) emitItem(op network.Op, it crfItem, partOf string) (string, error) {
	if len(it.inputs) > cs.m.opts.K {
		return "", fmt.Errorf("core: bin emitted with %d inputs (K=%d)", len(it.inputs), cs.m.opts.K)
	}
	table := truth.FromFunc(len(it.inputs), func(assign uint) bool {
		val := make(map[string]bool, len(it.inputs))
		for i, in := range it.inputs {
			val[in] = assign>>uint(i)&1 == 1
		}
		return crfEval(it.expr, val)
	})
	name := cs.m.fresh("crf")
	cs.m.ckt.AddLUT(name, it.inputs, table)
	cs.recordCRFProv(name, it, partOf)
	cs.cost++
	return name, nil
}

// recordCRFProv writes the provenance record of one bin-packed LUT.
func (cs *crfState) recordCRFProv(name string, it crfItem, partOf string) {
	m := cs.m
	if !m.opts.Provenance {
		return
	}
	if len(it.nodes) > 0 {
		partOf = ""
	}
	p := &lut.Provenance{
		Tree:      m.provTree,
		Origin:    m.provOrigin,
		Covers:    it.nodes,
		PartOf:    partOf,
		Shape:     "pack(" + strconv.Itoa(len(it.inputs)) + ")",
		FaninLUTs: m.faninLUTs(it.inputs),
		WorkUnits: m.provUnits,
	}
	m.ckt.SetProvenance(name, p)
}

func (cs *crfState) leafSignal(n *network.Node) (string, int32, error) {
	if n.IsInput() {
		return n.Name, 0, nil
	}
	sig, ok := cs.m.sig[n]
	if !ok {
		return "", 0, fmt.Errorf("core: tree root %q not yet realized", n.Name)
	}
	return sig, cs.arr[n], nil
}

// realizeTreeCRF maps one tree with the bin-packing strategy.
func (m *mapper) realizeTreeCRF(root *network.Node, arr map[*network.Node]int32) (int32, error) {
	cs := &crfState{m: m, arr: arr}
	mp, err := cs.mapNode(root)
	if err != nil {
		return 0, err
	}
	// Emit the tree's root LUT under the root's name.
	name := root.Name
	if m.ckt.Find(name) != nil || m.cktHasInput(name) {
		name = m.fresh(root.Name)
	}
	table := truth.FromFunc(len(mp.item.inputs), func(assign uint) bool {
		val := make(map[string]bool, len(mp.item.inputs))
		for i, in := range mp.item.inputs {
			val[in] = assign>>uint(i)&1 == 1
		}
		return crfEval(mp.item.expr, val)
	})
	m.ckt.AddLUT(name, mp.item.inputs, table)
	if m.opts.Provenance {
		it := mp.item
		it.nodes = append(it.nodes, root.Name)
		cs.recordCRFProv(name, it, "")
	}
	cs.cost++
	m.sig[root] = name
	arr[root] = mp.item.arrival + 1
	return cs.cost, nil
}
