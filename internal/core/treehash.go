package core

import (
	"chortle/internal/forest"
	"chortle/internal/network"
)

// Structural hashing of fanout-free trees. Real netlists are full of
// structurally identical trees (bit slices of adders, repeated control
// cones), and the tree DP's result depends only on the tree's *shape*:
// node operations, fanin order, edge polarities, and which edges are
// leaves — never on which primary input or mapped root a leaf edge
// happens to reference (a leaf edge always costs zero and can never be
// merged). treeHash fingerprints exactly that shape, so one DP solve can
// be reused for every tree with the same fingerprint.
//
// The hash is order-sensitive on purpose: reusing a DP across trees
// whose fanins are permuted would require re-canonicalizing fanin order
// everywhere to keep reconstruction deterministic, changing emitted
// circuits relative to the plain sequential mapper. Hash hits are always
// confirmed with a full structural walk (sameTreeShape) before any
// reuse, so a 64-bit collision can cost a missed reuse, never a wrong
// circuit.

const (
	hashBasis = 0xcbf29ce484222325 // FNV-64 offset basis
	hashPrime = 0x00000100000001b3 // FNV-64 prime
	hashLeaf  = 0x9e3779b97f4a7c15 // leaf-edge marker (any odd constant)
)

func hashStep(h, v uint64) uint64 {
	h ^= v
	h *= hashPrime
	// One extra shuffle keeps single-bit input differences (op codes,
	// invert flags) from landing in nearby output bits.
	h ^= h >> 29
	return h
}

// shapeSeed folds the option fields the DP result depends on into the
// hash, so one memo table could never conflate runs at different K or
// with the decomposition search ablated.
func shapeSeed(opts Options) uint64 {
	h := hashStep(hashBasis, uint64(opts.K))
	if opts.DisableDecomposition {
		h = hashStep(h, 1)
	} else {
		h = hashStep(h, 2)
	}
	return h
}

// treeHash fingerprints the shape of the fanout-free tree rooted at n.
func treeHash(f *forest.Forest, n *network.Node, seed uint64) uint64 {
	h := hashStep(seed, uint64(n.Op))
	h = hashStep(h, uint64(len(n.Fanins)))
	for _, e := range n.Fanins {
		if e.Invert {
			h = hashStep(h, 3)
		} else {
			h = hashStep(h, 5)
		}
		if f.IsLeafEdge(e.Node) {
			h = hashStep(h, hashLeaf)
		} else {
			h = hashStep(h, treeHash(f, e.Node, seed))
		}
	}
	return h
}

// sameTreeShape reports whether the trees rooted at a (in forest fa) and
// b (in forest fb) have identical shape: same ops, same fanin order and
// arity, same edge polarities, and leaf edges in the same positions.
// This is the collision guard behind every hash hit.
func sameTreeShape(fa *forest.Forest, a *network.Node, fb *forest.Forest, b *network.Node) bool {
	if a.Op != b.Op || len(a.Fanins) != len(b.Fanins) {
		return false
	}
	for i := range a.Fanins {
		ea, eb := a.Fanins[i], b.Fanins[i]
		if ea.Invert != eb.Invert {
			return false
		}
		la, lb := fa.IsLeafEdge(ea.Node), fb.IsLeafEdge(eb.Node)
		if la != lb {
			return false
		}
		if !la && !sameTreeShape(fa, ea.Node, fb, eb.Node) {
			return false
		}
	}
	return true
}
