package core

import (
	"encoding/binary"

	"chortle/internal/forest"
	"chortle/internal/network"
)

// Structural hashing of fanout-free trees. Real netlists are full of
// structurally identical trees (bit slices of adders, repeated control
// cones), and the tree DP's result depends only on the tree's *shape*:
// node operations, fanin order, edge polarities, and which edges are
// leaves — never on which primary input or mapped root a leaf edge
// happens to reference (a leaf edge always costs zero and can never be
// merged). treeHash fingerprints exactly that shape, so one DP solve can
// be reused for every tree with the same fingerprint.
//
// The hash is order-sensitive on purpose: reusing a DP across trees
// whose fanins are permuted would require re-canonicalizing fanin order
// everywhere to keep reconstruction deterministic, changing emitted
// circuits relative to the plain sequential mapper. Hash hits are always
// confirmed with a full structural walk (sameTreeShape) before any
// reuse, so a 64-bit collision can cost a missed reuse, never a wrong
// circuit.

const (
	hashBasis = 0xcbf29ce484222325 // FNV-64 offset basis
	hashPrime = 0x00000100000001b3 // FNV-64 prime
	hashLeaf  = 0x9e3779b97f4a7c15 // leaf-edge marker (any odd constant)
)

func hashStep(h, v uint64) uint64 {
	h ^= v
	h *= hashPrime
	// One extra shuffle keeps single-bit input differences (op codes,
	// invert flags) from landing in nearby output bits.
	h ^= h >> 29
	return h
}

// shapeSeed folds the option fields the cached solve and emission depend
// on into the hash, so one memo table — and, through the shared cache,
// one cross-run namespace — could never conflate runs whose results
// would differ. Beyond K and the decomposition ablation it folds the
// work-unit budget (which shapes degrade is a deterministic function of
// the limit, and degradation must be identical warm or cold) and the
// provenance flag (templates recorded without provenance carry no
// ancestry payload and must not be replayed into a run that wants one).
func shapeSeed(opts Options) uint64 {
	h := hashStep(hashBasis, uint64(opts.K))
	if opts.DisableDecomposition {
		h = hashStep(h, 1)
	} else {
		h = hashStep(h, 2)
	}
	h = hashStep(h, uint64(opts.Budget.WorkUnits))
	if opts.Provenance {
		h = hashStep(h, 7)
	} else {
		h = hashStep(h, 11)
	}
	return h
}

// shapeInfo bundles a tree's structural hash with two invariants that
// are free to compute during the same walk. Collision-bucket scans
// compare the counts before paying for a full sameTreeShape walk:
// different-shaped trees that collide on the 64-bit hash almost always
// differ in size, so the expensive verification runs only on genuine
// shape matches (and on the pathological same-size collision).
type shapeInfo struct {
	hash   uint64
	nodes  int32 // gates in the tree
	leaves int32 // leaf edges of the tree
}

// treeShapeInfo fingerprints the shape of the fanout-free tree rooted at
// n, returning the structural hash plus the node and leaf-edge counts.
func treeShapeInfo(f *forest.Forest, n *network.Node, seed uint64) shapeInfo {
	var si shapeInfo
	si.hash = treeHashCount(f, n, seed, &si.nodes, &si.leaves)
	return si
}

// treeHash fingerprints the shape of the fanout-free tree rooted at n.
func treeHash(f *forest.Forest, n *network.Node, seed uint64) uint64 {
	var nodes, leaves int32
	return treeHashCount(f, n, seed, &nodes, &leaves)
}

func treeHashCount(f *forest.Forest, n *network.Node, seed uint64, nodes, leaves *int32) uint64 {
	*nodes++
	h := hashStep(seed, uint64(n.Op))
	h = hashStep(h, uint64(len(n.Fanins)))
	for _, e := range n.Fanins {
		if e.Invert {
			h = hashStep(h, 3)
		} else {
			h = hashStep(h, 5)
		}
		if f.IsLeafEdge(e.Node) {
			*leaves++
			h = hashStep(h, hashLeaf)
		} else {
			h = hashStep(h, treeHashCount(f, e.Node, seed, nodes, leaves))
		}
	}
	return h
}

// appendShapeEnc appends an injective canonical encoding of the tree's
// shape: preorder, each node contributing its op and fanin count, each
// fanin edge one marker byte packing the invert flag (bit 0) and
// leafness (bit 1), internal edges followed by their subtree. Explicit
// arity makes the encoding prefix-free per subtree, so byte equality of
// two encodings implies sameTreeShape. The shared cache verifies hits by
// comparing encodings — unlike the per-run memo it cannot keep the
// origin network alive to walk, and the encoding is the shape with the
// network distilled out.
func appendShapeEnc(buf []byte, f *forest.Forest, n *network.Node) []byte {
	buf = binary.AppendUvarint(buf, uint64(n.Op))
	buf = binary.AppendUvarint(buf, uint64(len(n.Fanins)))
	for _, e := range n.Fanins {
		var m byte
		if e.Invert {
			m |= 1
		}
		if f.IsLeafEdge(e.Node) {
			buf = append(buf, m|2)
		} else {
			buf = append(buf, m)
			buf = appendShapeEnc(buf, f, e.Node)
		}
	}
	return buf
}

// shapeEnc is appendShapeEnc prefixed with the run's option seed, so
// encodings from runs at different K (or any other folded option) can
// never compare equal even if the bare trees match.
func shapeEnc(f *forest.Forest, root *network.Node, seed uint64) []byte {
	buf := make([]byte, 8, 64)
	binary.BigEndian.PutUint64(buf, seed)
	return appendShapeEnc(buf, f, root)
}

// sameTreeShape reports whether the trees rooted at a (in forest fa) and
// b (in forest fb) have identical shape: same ops, same fanin order and
// arity, same edge polarities, and leaf edges in the same positions.
// This is the collision guard behind every hash hit.
func sameTreeShape(fa *forest.Forest, a *network.Node, fb *forest.Forest, b *network.Node) bool {
	if a.Op != b.Op || len(a.Fanins) != len(b.Fanins) {
		return false
	}
	for i := range a.Fanins {
		ea, eb := a.Fanins[i], b.Fanins[i]
		if ea.Invert != eb.Invert {
			return false
		}
		la, lb := fa.IsLeafEdge(ea.Node), fb.IsLeafEdge(eb.Node)
		if la != lb {
			return false
		}
		if !la && !sameTreeShape(fa, ea.Node, fb, eb.Node) {
			return false
		}
	}
	return true
}
