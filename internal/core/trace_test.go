package core

import (
	"math/rand"
	"strings"
	"testing"

	"chortle/internal/forest"
	"chortle/internal/network"
	"chortle/internal/obs"
)

// The observability layer's two core guarantees, tested at the source:
// a nil observer costs the hot path nothing (no allocations, no
// time.Now), and an attached observer sees a faithful event stream
// without perturbing the mapping.

// TestTracerNoopZeroAlloc pins the no-op path: every tracer hook with a
// nil observer must allocate nothing. This is what lets the emission
// sites live unconditionally on the per-tree solve path.
func TestTracerNoopZeroAlloc(t *testing.T) {
	var tr tracer
	allocs := testing.AllocsPerRun(1000, func() {
		end := tr.phase("reconstruct")
		tr.mapStart(4, 100)
		tr.treeSolve("tree", 123, 4, tr.now())
		tr.memoHit("tree", 4)
		tr.templateReplay("tree")
		tr.budgetExhausted("tree", 1000)
		tr.treeDegraded("tree", 5)
		tr.arenaStats(2, 4096)
		tr.dupAccepted("node")
		end()
	})
	if allocs != 0 {
		t.Fatalf("nil-observer tracer hooks allocated %v allocs/op, want 0", allocs)
	}
}

// solveBenchFixture builds a single-tree network wide enough for the DP
// to do real work, plus everything a raw solve needs.
func solveBenchFixture(tb testing.TB, leaves int) (*forest.Forest, *network.Node, Options) {
	tb.Helper()
	nw := mkTree(rand.New(rand.NewSource(7)), network.OpAnd, leaves)
	f, err := forest.Decompose(nw)
	if err != nil {
		tb.Fatal(err)
	}
	if len(f.Roots) != 1 {
		tb.Fatalf("fixture has %d trees, want 1", len(f.Roots))
	}
	return f, f.Roots[0], DefaultOptions(4)
}

// TestSolvePathNoObserverZeroAddedAllocs asserts the acceptance
// criterion directly: the per-tree solve path with the tracer hooks in
// place but no observer attached allocates exactly as much as the bare
// solve — zero allocations added.
func TestSolvePathNoObserverZeroAddedAllocs(t *testing.T) {
	f, root, opts := solveBenchFixture(t, 12)
	a := acquireArena()
	defer a.release()
	gov0 := &governor{}
	if _, err := solveDP(a, f, root, opts, gov0); err != nil {
		t.Fatal(err)
	}

	bare := testing.AllocsPerRun(200, func() {
		a.reset()
		gov := &governor{}
		if _, err := solveDP(a, f, root, opts, gov); err != nil {
			t.Fatal(err)
		}
	})
	var tr tracer // nil observer: exactly what an unobserved MapCtx threads through
	traced := testing.AllocsPerRun(200, func() {
		a.reset()
		gov := &governor{}
		start := tr.now()
		dp, err := solveDP(a, f, root, opts, gov)
		if err != nil {
			t.Fatal(err)
		}
		tr.treeSolve(root.Name, gov.units, dp.bestCost, start)
	})
	if traced != bare {
		t.Fatalf("solve path with nil observer allocates %v allocs/op, bare solve %v — tracing added allocations", traced, bare)
	}
}

// BenchmarkPerTreeSolve is the published form of the same guarantee:
// the bare solve and the nil-observer solve report identical allocs/op.
func BenchmarkPerTreeSolve(b *testing.B) {
	f, root, opts := solveBenchFixture(b, 12)
	a := acquireArena()
	defer a.release()
	if _, err := solveDP(a, f, root, opts, &governor{}); err != nil {
		b.Fatal(err)
	}

	b.Run("bare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.reset()
			gov := &governor{}
			if _, err := solveDP(a, f, root, opts, gov); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nil-observer", func(b *testing.B) {
		var tr tracer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.reset()
			gov := &governor{}
			start := tr.now()
			dp, err := solveDP(a, f, root, opts, gov)
			if err != nil {
				b.Fatal(err)
			}
			tr.treeSolve(root.Name, gov.units, dp.bestCost, start)
		}
	})
	b.Run("collector", func(b *testing.B) {
		tr := tracer{o: &obs.Collector{}}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.reset()
			gov := &governor{}
			start := tr.now()
			dp, err := solveDP(a, f, root, opts, gov)
			if err != nil {
				b.Fatal(err)
			}
			tr.treeSolve(root.Name, gov.units, dp.bestCost, start)
		}
	})
}

// mkRepeatedTrees builds a multi-output network of `copies` structurally
// identical two-level trees over disjoint inputs — every copy after the
// first is a guaranteed shape-memo hit.
func mkRepeatedTrees(copies int) *network.Network {
	nw := network.New("repeat")
	for c := 0; c < copies; c++ {
		p := string(rune('a'+c%26)) + string(rune('0'+c/26))
		var ins [4]*network.Node
		for i := range ins {
			ins[i] = nw.AddInput("x" + p + string(rune('0'+i)))
		}
		a := nw.AddGate("and0"+p, network.OpAnd,
			network.Fanin{Node: ins[0]}, network.Fanin{Node: ins[1]})
		b := nw.AddGate("and1"+p, network.OpAnd,
			network.Fanin{Node: ins[2]}, network.Fanin{Node: ins[3], Invert: true})
		r := nw.AddGate("or"+p, network.OpOr,
			network.Fanin{Node: a}, network.Fanin{Node: b})
		nw.MarkOutput("y"+p, r, false)
	}
	return nw
}

// countKinds tallies an event stream by kind.
func countKinds(events []obs.Event) map[obs.Kind]int {
	m := make(map[obs.Kind]int)
	for _, e := range events {
		m[e.Kind]++
	}
	return m
}

// TestObservedMapEventStream checks the stream's accounting in all four
// Parallel x Memoize modes: one map bracket, the standard phases, one
// solve or memo hit per tree, one LUT event per emitted table, and
// arena stats — while the mapped result stays identical to the
// unobserved run.
func TestObservedMapEventStream(t *testing.T) {
	nw := mkRepeatedTrees(12)
	ref, err := Map(nw, DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []bool{false, true} {
		for _, memo := range []bool{false, true} {
			var c obs.Collector
			opts := DefaultOptions(4)
			opts.Parallel, opts.Memoize = par, memo
			opts.Observer = &c
			res, err := Map(nw, opts)
			if err != nil {
				t.Fatalf("parallel=%v memoize=%v: %v", par, memo, err)
			}
			if res.LUTs != ref.LUTs || res.Trees != ref.Trees {
				t.Fatalf("parallel=%v memoize=%v: observed map diverged: %d/%d LUTs, %d/%d trees",
					par, memo, res.LUTs, ref.LUTs, res.Trees, ref.Trees)
			}
			events := c.Events()
			kinds := countKinds(events)
			if kinds[obs.KindMapStart] != 1 || kinds[obs.KindMapEnd] != 1 {
				t.Errorf("parallel=%v memoize=%v: map bracket %d/%d, want 1/1",
					par, memo, kinds[obs.KindMapStart], kinds[obs.KindMapEnd])
			}
			if got := kinds[obs.KindTreeSolve] + kinds[obs.KindMemoHit]; got != res.Trees {
				t.Errorf("parallel=%v memoize=%v: %d solves + %d hits != %d trees",
					par, memo, kinds[obs.KindTreeSolve], kinds[obs.KindMemoHit], res.Trees)
			}
			if kinds[obs.KindLUT] != res.LUTs {
				t.Errorf("parallel=%v memoize=%v: %d LUT events, want %d", par, memo, kinds[obs.KindLUT], res.LUTs)
			}
			if kinds[obs.KindArenaStats] != 1 {
				t.Errorf("parallel=%v memoize=%v: %d arena-stats events, want 1", par, memo, kinds[obs.KindArenaStats])
			}
			r := c.Report()
			if r.LUTs != res.LUTs || r.Trees != res.Trees || r.K != 4 {
				t.Errorf("parallel=%v memoize=%v: report totals %d LUTs %d trees K=%d", par, memo, r.LUTs, r.Trees, r.K)
			}
			var names []string
			for _, p := range r.Phases {
				names = append(names, p.Name)
			}
			joined := strings.Join(names, " ")
			for _, want := range []string{"prepare", "forest", "reconstruct", "finalize"} {
				if !strings.Contains(joined, want) {
					t.Errorf("parallel=%v memoize=%v: phases %q missing %q", par, memo, joined, want)
				}
			}
			if memo && r.MemoHits == 0 {
				t.Errorf("memoize=%v parallel=%v: no memo hits recorded on a netlist with repeated shapes", memo, par)
			}
		}
	}
}

// TestObservedBudgetDegradation checks that a budget small enough to
// degrade trees produces the budget-exhausted / tree-degraded pair and
// that the report lists exactly Result.Degraded.
func TestObservedBudgetDegradation(t *testing.T) {
	nw := mkTree(rand.New(rand.NewSource(3)), network.OpOr, 40)
	for _, memo := range []bool{false, true} {
		var c obs.Collector
		opts := DefaultOptions(5)
		opts.Parallel = false
		opts.Memoize = memo
		opts.Budget.WorkUnits = 200
		opts.Observer = &c
		res, err := Map(nw, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Degraded) == 0 {
			t.Fatalf("memoize=%v: budget of 200 units did not degrade the 40-leaf tree", memo)
		}
		r := c.Report()
		if r.BudgetTrips == 0 {
			t.Errorf("memoize=%v: no budget-exhausted events", memo)
		}
		if len(r.Degraded) != len(res.Degraded) {
			t.Errorf("memoize=%v: report lists %v degraded, result %v", memo, r.Degraded, res.Degraded)
		}
	}
}

// TestObservedDupAware checks the duplication search's events: a
// dup-search phase, one dup-accepted event per accepted candidate, and
// the inner map's own bracket.
func TestObservedDupAware(t *testing.T) {
	// figure1 at K=4 has a proven profitable duplication (g2 merges into
	// both consumers), so at least one dup-accepted event must appear.
	nw := figure1()
	var c obs.Collector
	opts := DefaultOptions(4)
	opts.Observer = &c
	res, accepted, err := MapDuplicateCostAware(nw, opts)
	if err != nil {
		t.Fatal(err)
	}
	if accepted == 0 {
		t.Fatal("figure1 at K=4 accepted no duplications")
	}
	r := c.Report()
	if r.DupAccepted != accepted {
		t.Errorf("report counts %d accepted duplications, API returned %d", r.DupAccepted, accepted)
	}
	var sawSearch bool
	for _, p := range r.Phases {
		if p.Name == "dup-search" {
			sawSearch = true
		}
	}
	if !sawSearch {
		t.Error("no dup-search phase recorded")
	}
	if r.LUTs != res.LUTs {
		t.Errorf("report LUTs %d, result %d", r.LUTs, res.LUTs)
	}
}
