package core

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// dpArena is a bump allocator for the tree DP's working memory. The
// exhaustive DP wants one 2^fanin x (K+1) table pair per tree node; with
// per-row make() calls a single Map of a large netlist performs
// O(sum 2^fanin) allocations. The arena hands out sub-slices of a few
// large slabs instead, so a whole tree costs O(1) allocations once the
// slabs have grown to size, and slabs are recycled across Map calls
// through a sync.Pool.
//
// An arena is single-goroutine: the parallel pipeline gives each worker
// its own. Slabs handed out are never zeroed — every consumer writes all
// cells it will read (compute() fills every table cell, rebindDP and
// buildDPIn assign whole structs).
type dpArena struct {
	i32   []int32
	ch    []gChoice
	i8    []int8
	nodes []nodeDP
	frs   []faninRef

	oI32, oCh, oI8, oNodes, oFrs int
}

var arenaPool = sync.Pool{New: func() any { return new(dpArena) }}

// arenasLive counts arenas checked out of the pool and not yet
// released. Fault-injection tests assert it returns to zero after a
// cancelled or panicking Map, proving the cleanup path ran.
var arenasLive atomic.Int64

// liveArenas reports the number of outstanding (acquired, unreleased)
// arenas — a test-only leak probe.
func liveArenas() int64 { return arenasLive.Load() }

// acquireArena takes a recycled arena from the pool (offsets reset;
// slab capacity retained from earlier use).
func acquireArena() *dpArena {
	a := arenaPool.Get().(*dpArena)
	a.reset()
	arenasLive.Add(1)
	return a
}

// release returns the arena and its slabs to the pool. The caller must
// not retain references into the arena after releasing it.
func (a *dpArena) release() {
	arenasLive.Add(-1)
	arenaPool.Put(a)
}

// reset rewinds the arena so its slabs can be reused. Outstanding
// sub-slices keep referencing the old backing arrays and stay valid;
// reset is only safe once they are no longer needed (or the arena was
// freshly acquired).
func (a *dpArena) reset() {
	a.oI32, a.oCh, a.oI8, a.oNodes, a.oFrs = 0, 0, 0, 0, 0
}

// grown returns a slab length that amortizes regrowth: at least need,
// at least double the old backing, with a floor that skips the tiny-slab
// churn of the first trees.
func grown(old, need, floor int) int {
	n := 2 * old
	if n < need {
		n = need
	}
	if n < floor {
		n = floor
	}
	return n
}

// slabBytes reports the arena's current backing-slab footprint — what
// the observability layer's arena-stats event carries. Capacity, not
// use: recycled slabs keep their high-water size.
func (a *dpArena) slabBytes() int64 {
	return int64(len(a.i32))*int64(unsafe.Sizeof(int32(0))) +
		int64(len(a.ch))*int64(unsafe.Sizeof(gChoice{})) +
		int64(len(a.i8)) +
		int64(len(a.nodes))*int64(unsafe.Sizeof(nodeDP{})) +
		int64(len(a.frs))*int64(unsafe.Sizeof(faninRef{}))
}

func (a *dpArena) allocI32(n int) []int32 {
	if a.oI32+n > len(a.i32) {
		a.i32 = make([]int32, grown(len(a.i32), n, 4096))
		a.oI32 = 0
	}
	s := a.i32[a.oI32 : a.oI32+n : a.oI32+n]
	a.oI32 += n
	return s
}

func (a *dpArena) allocChoice(n int) []gChoice {
	if a.oCh+n > len(a.ch) {
		a.ch = make([]gChoice, grown(len(a.ch), n, 4096))
		a.oCh = 0
	}
	s := a.ch[a.oCh : a.oCh+n : a.oCh+n]
	a.oCh += n
	return s
}

func (a *dpArena) allocI8(n int) []int8 {
	if a.oI8+n > len(a.i8) {
		a.i8 = make([]int8, grown(len(a.i8), n, 4096))
		a.oI8 = 0
	}
	s := a.i8[a.oI8 : a.oI8+n : a.oI8+n]
	a.oI8 += n
	return s
}

func (a *dpArena) allocNode() *nodeDP {
	if a.oNodes >= len(a.nodes) {
		a.nodes = make([]nodeDP, grown(len(a.nodes), 1, 256))
		a.oNodes = 0
	}
	dp := &a.nodes[a.oNodes]
	a.oNodes++
	return dp
}

func (a *dpArena) allocFanins(n int) []faninRef {
	if a.oFrs+n > len(a.frs) {
		a.frs = make([]faninRef, grown(len(a.frs), n, 1024))
		a.oFrs = 0
	}
	s := a.frs[a.oFrs : a.oFrs+n : a.oFrs+n]
	a.oFrs += n
	return s
}
