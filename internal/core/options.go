// Package core implements the Chortle technology mapping algorithm
// (Francis, Rose, Chung, DAC 1990): covering a Boolean network with the
// minimum number of K-input lookup tables. The network is first split
// into maximal fanout-free trees (internal/forest); each tree is mapped
// optimally by a dynamic programming traversal that, at every node,
// considers every utilization division of the root lookup table and
// every decomposition of the node (Sections 3.1.1–3.1.3), with node
// splitting above a fanin threshold (Section 3.1.4).
package core

import (
	"fmt"

	"chortle/internal/cerrs"
	"chortle/internal/obs"
	"chortle/internal/truth"
)

// Options configures the mapper.
type Options struct {
	// K is the lookup table input count. The paper evaluates K = 2..5;
	// anything up to truth.MaxVars (6) is supported.
	K int

	// Engine selects the mapping algorithm: EngineTree (the paper's
	// fanout-free-tree DP, the default), EngineMIS (the MIS II-style
	// baseline coverer) or EngineCut (the priority-cut DAG mapper).
	// All engines emit the same lut.Circuit representation; the fields
	// below that tune the tree search are ignored by the other two.
	Engine Engine

	// SplitThreshold is the fanin bound above which a node is first
	// split into two nodes of roughly equal fanin (Section 3.1.4: "the
	// speed of our utilization division search ... makes it practical
	// for us to consider all possible decompositions of a node as long
	// as the fanin of the node is bounded by ten"). Optimality is no
	// longer guaranteed for split nodes.
	SplitThreshold int

	// DisableDecomposition is an ablation switch: when set, nodes are
	// never decomposed beyond what fanin > K forces (a balanced
	// pre-split down to fanin K), and the DP considers only utilization
	// divisions of the undecomposed node. This isolates the paper's
	// claim that searching all decompositions reduces LUT count.
	DisableDecomposition bool

	// DuplicateFanoutLogic enables the paper's future-work extension:
	// after forest decomposition, single-LUT trees that feed few
	// consumers may be duplicated into their consumers' trees when that
	// removes the shared LUT entirely.
	DuplicateFanoutLogic bool

	// Strategy selects the per-node decomposition search:
	// StrategyExhaustive (the paper's algorithm, default) or
	// StrategyBinPack (Chortle-crf-style first-fit-decreasing packing —
	// faster, unbounded fanin, not guaranteed optimal). StrategyBinPack
	// ignores SplitThreshold, DisableDecomposition and OptimizeDepth.
	Strategy Strategy

	// OptimizeDepth switches the per-tree objective from area to
	// lexicographic (depth, area): minimize LUT levels on the longest
	// path first — the direction the Chortle line took next (Chortle-d,
	// then FlowMap). Depth is optimal per fanout-free tree; the area
	// under it is greedy, so Result.LUTs may exceed the pure-area
	// mapping's count and no longer matches any optimality claim.
	OptimizeDepth bool

	// Parallel computes the per-tree dynamic programs concurrently on a
	// bounded worker pool (reconstruction stays sequential, so results
	// and naming are deterministic). Only effective with the default
	// strategy and the area objective: bin packing emits while mapping,
	// and the depth objective threads arrival times between trees.
	Parallel bool

	// Memoize reuses DP solves and recorded emissions across structurally
	// identical trees within one Map call (real netlists repeat bit-slice
	// shapes heavily). Every hash hit is verified against the full tree
	// structure before reuse, and the emitted circuit is byte-identical
	// with or without the flag. Effective under the same conditions as
	// Parallel.
	Memoize bool

	// Budget bounds the exhaustive decomposition search per tree
	// (work units) and per run (soft wall-clock deadline). Trees that
	// exhaust it are remapped with StrategyBinPack and listed in
	// Result.Degraded; the mapping never fails on a budget. The zero
	// value is unlimited. See Budget.
	Budget Budget

	// Observer, when non-nil, receives structured events from the
	// mapping pipeline: phase boundaries with wall times, per-tree DP
	// solves with their metered work units, memo hits and template
	// replays, budget trips and degradations, arena statistics, and a
	// per-LUT summary of the finished circuit (see internal/obs). The
	// zero value disables all instrumentation: every emission site is a
	// single nil check and the hot path allocates nothing extra.
	// Observation is strictly read-only — the emitted circuit is
	// byte-identical with or without an observer, in every
	// Parallel x Memoize x Budget combination. Sinks must tolerate
	// concurrent calls: the parallel pipeline emits from its workers.
	Observer obs.Observer

	// PprofLabels tags the parallel pipeline's worker goroutines with
	// the pprof label chortle=dp-worker, so CPU profiles attribute DP
	// solve time to the pool rather than to anonymous goroutines. Off
	// by default; purely observational.
	PprofLabels bool

	// Provenance records, on the emitted lut.Circuit, a per-LUT
	// ancestry record: the covered network gate nodes (a partition of
	// the prepared network's gates), the decomposition shape the DP
	// chose at the LUT's root, the owning tree with its solve's work
	// units, and the realization origin (fresh solve, memo reuse,
	// template replay, bin packing, budget degradation). Result.Prepared
	// additionally carries the preprocessed network the records refer
	// to. Recording is strictly passive — the circuit is byte-identical
	// with or without it — and with the flag off every hook is a nil
	// check that allocates nothing, the same discipline as the nil
	// Observer. Consumed by the explainability exporters
	// (internal/explain: DOT graphs, HTML run reports).
	Provenance bool

	// SharedCache, when non-nil, backs this run's shape memo with a
	// process-wide cross-run cache (NewSharedShapeCache): DP solves and
	// emission templates published by any earlier Map call with
	// compatible options are reused, and this run's solves are published
	// back. Effective only with Memoize set; ignored under a wall-clock
	// budget (Budget.WallClock), whose degradations are timing-dependent
	// — cache warmth never changes emitted bytes. Every hit is verified
	// against a canonical shape encoding before reuse, so collisions
	// degrade to misses, and cached state is immutable after publish,
	// so any number of Map calls may share one cache concurrently.
	SharedCache *SharedShapeCache

	// RepackLUTs enables the post-mapping peephole that merges
	// single-fanout LUTs into consumers when the combined distinct
	// inputs fit K. It recovers part of the reconvergent-fanout loss
	// the paper describes (XOR structures cost Chortle one pin per leaf
	// edge even when the physical signals coincide) — a step toward the
	// paper's reconvergent-fanout future work. When set, Result.LUTs
	// may be lower than Result.PredictedCost (the DP's tree-optimal
	// count).
	RepackLUTs bool
}

// DefaultOptions returns the paper's configuration for a given K.
// Parallel and Memoize are pure performance switches — the mapping and
// its emitted circuit are identical with them off — so they default on.
func DefaultOptions(k int) Options {
	return Options{K: k, SplitThreshold: 10, Parallel: true, Memoize: true}
}

// validate rejects out-of-range configurations.
func (o Options) validate() error {
	if o.K < 2 || o.K > truth.MaxVars {
		return fmt.Errorf("core: K=%d out of range [2,%d]: %w", o.K, truth.MaxVars, cerrs.ErrBadK)
	}
	if int(o.Engine) >= len(engineNames) {
		return fmt.Errorf("core: invalid engine %d", o.Engine)
	}
	if o.SplitThreshold < 2 {
		return fmt.Errorf("core: split threshold %d must be at least 2", o.SplitThreshold)
	}
	if o.Budget.WorkUnits < 0 {
		return fmt.Errorf("core: negative work-unit budget %d", o.Budget.WorkUnits)
	}
	if o.Budget.WallClock < 0 {
		return fmt.Errorf("core: negative wall-clock budget %s", o.Budget.WallClock)
	}
	return nil
}

// infinity is the unreachable-cost sentinel for the DP tables.
const infinity = int32(1) << 30
