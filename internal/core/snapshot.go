package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"chortle/internal/truth"
)

// Shape cache persistence: the value codec behind SharedShapeCache
// snapshots. internal/shapecache owns the container (magic, version,
// namespace, checksum, atomic whole-file validation); this file owns
// the per-entry payload — a varint-framed serialization of sharedShape:
// the seed-prefixed canonical encoding, the frozen DP tree, the metered
// solve units, and the published emission templates.
//
// Safety discipline mirrors the live cache. The namespace string below
// names this payload format; any incompatible change to sharedShape,
// nodeDP, emitTemplate or the canonical shape encoding must bump it so
// old snapshots are rejected (cold boot) instead of misread. Decoding
// validates every structural invariant rebindDP and template replay
// rely on — table geometry, index ranges, and a full lockstep walk of
// the decoded DP skeleton against the entry's own canonical encoding —
// so a snapshot that passes the container checksum but disagrees with
// itself still loads as nothing rather than as a crash or a wrong hit.
// After restore, the normal verification-on-hit (byte-comparing the
// canonical encoding against the live tree) applies unchanged.

// shapeSnapshotNamespace identifies the payload codec. Bump on any
// incompatible change to the encodings in this file or the structures
// they serialize.
const shapeSnapshotNamespace = "chortle-shape-v1"

// errBadShapePayload rejects a structurally invalid entry payload.
var errBadShapePayload = errors.New("core: invalid shape snapshot payload")

// decode bounds, applied before allocation so corrupted length fields
// cannot drive memory growth or unbounded recursion.
const (
	maxSnapDPNodes   = 1 << 20
	maxSnapTableLen  = 1 << 24
	maxSnapTemplates = maxSharedTemplates
	maxSnapLUTs      = 1 << 16
	maxSnapStride    = 64
)

// WriteSnapshot serializes every resident shape to w in the versioned,
// checksummed container format. The snapshot is a warm start for a
// later process: restoring it recovers solved DP tables and emission
// templates, not correctness-critical state — a lost or rejected
// snapshot only costs cold-cache latency.
func (c *SharedShapeCache) WriteSnapshot(w io.Writer) error {
	return c.cache.Snapshot(w, shapeSnapshotNamespace, func(v any) ([]byte, error) {
		ss, ok := v.(*sharedShape)
		if !ok {
			return nil, nil
		}
		return encodeSharedShape(ss), nil
	})
}

// RestoreSnapshot loads a snapshot written by WriteSnapshot into the
// cache, returning the number of shapes restored. The whole file is
// validated before anything is inserted: any truncation, corruption,
// version or namespace mismatch, or structurally invalid entry rejects
// the snapshot entirely and leaves the cache as it was, so a failed
// boot-time restore degrades to a cold cache. Restored entries carry no
// storage handle, so templates they accept later grow unaccounted — a
// bounded slack (maxSharedTemplates per shape), never a correctness
// issue.
func (c *SharedShapeCache) RestoreSnapshot(r io.Reader) (int, error) {
	return c.cache.Restore(r, shapeSnapshotNamespace, func(p []byte) (any, error) {
		return decodeSharedShape(p)
	})
}

// Shed evicts roughly the given fraction of resident shapes, least
// recently used first, returning the count evicted — the memory
// pressure valve for long-running servers. Shedding only costs future
// hits.
func (c *SharedShapeCache) Shed(fraction float64) int { return c.cache.Shed(fraction) }

// --- encoding ---

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func appendBytes(b, p []byte) []byte {
	b = appendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendInt32s(b []byte, xs []int32) []byte {
	b = appendUvarint(b, uint64(len(xs)))
	for _, x := range xs {
		b = appendVarint(b, int64(x))
	}
	return b
}

func encodeSharedShape(ss *sharedShape) []byte {
	b := make([]byte, 0, 256)
	b = appendBytes(b, ss.enc)
	b = appendUvarint(b, uint64(ss.units))
	b = appendDP(b, ss.dp)
	var tmpls map[string]*emitTemplate
	if m := ss.templates.Load(); m != nil {
		tmpls = *m
	}
	b = appendUvarint(b, uint64(len(tmpls)))
	for pattern, t := range tmpls {
		b = appendBytes(b, []byte(pattern))
		b = appendTemplate(b, t)
	}
	return b
}

func appendDP(b []byte, dp *nodeDP) []byte {
	b = appendUvarint(b, uint64(dp.full))
	b = appendUvarint(b, uint64(dp.nodeIdx))
	b = appendUvarint(b, uint64(dp.stride))
	b = appendInt32s(b, dp.g)
	b = appendUvarint(b, uint64(len(dp.choice)))
	for _, ch := range dp.choice {
		b = append(b, byte(ch.kind), byte(ch.v))
		b = appendUvarint(b, uint64(ch.d))
	}
	b = appendInt32s(b, dp.mmBest)
	b = appendUvarint(b, uint64(len(dp.mmBestU)))
	for _, u := range dp.mmBestU {
		b = append(b, byte(u))
	}
	b = appendVarint(b, int64(dp.bestCost))
	b = appendVarint(b, int64(dp.bestU))
	b = appendUvarint(b, uint64(len(dp.fanins)))
	for _, fr := range dp.fanins {
		b = appendVarint(b, int64(fr.leafIdx))
		if fr.child != nil {
			b = append(b, 1)
			b = appendDP(b, fr.child)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

func appendTemplate(b []byte, t *emitTemplate) []byte {
	b = appendInt32s(b, t.freshes)
	b = appendUvarint(b, uint64(len(t.luts)))
	for i := range t.luts {
		l := &t.luts[i]
		b = appendVarint(b, int64(l.nameRef))
		b = appendInt32s(b, l.inputs)
		b = appendUvarint(b, l.table.Bits)
		b = appendUvarint(b, uint64(l.table.N))
		b = appendInt32s(b, l.covers)
		b = appendVarint(b, int64(l.partIdx))
		b = appendBytes(b, []byte(l.shape))
	}
	return b
}

// --- decoding ---

// snapReader is a bounds-checked cursor over one entry payload. All
// read methods report failure by setting err sticky, so decoders can
// read linearly and check once.
type snapReader struct {
	b   []byte
	err error
}

func (r *snapReader) fail() {
	if r.err == nil {
		r.err = errBadShapePayload
	}
}

func (r *snapReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *snapReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *snapReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.fail()
		return 0
	}
	c := r.b[0]
	r.b = r.b[1:]
	return c
}

func (r *snapReader) bytes(maxLen int) []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(maxLen) || n > uint64(len(r.b)) {
		r.fail()
		return nil
	}
	out := append([]byte(nil), r.b[:n]...)
	r.b = r.b[n:]
	return out
}

func (r *snapReader) int32s(maxLen int) []int32 {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(maxLen) || n > uint64(len(r.b)) { // each element is ≥1 byte
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		v := r.varint()
		if v < -1<<31 || v > 1<<31-1 {
			r.fail()
			return nil
		}
		out[i] = int32(v)
	}
	if r.err != nil {
		return nil
	}
	return out
}

func decodeSharedShape(p []byte) (*sharedShape, error) {
	r := &snapReader{b: p}
	enc := r.bytes(1 << 20)
	units := r.uvarint()
	var nodes int
	dp := decodeDP(r, &nodes)
	ntmpl := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if ntmpl > maxSnapTemplates {
		return nil, errBadShapePayload
	}
	var tmpls map[string]*emitTemplate
	if ntmpl > 0 {
		tmpls = make(map[string]*emitTemplate, ntmpl)
		for i := uint64(0); i < ntmpl; i++ {
			pattern := string(r.bytes(1 << 16))
			t := decodeTemplate(r)
			if r.err != nil {
				return nil, r.err
			}
			tmpls[pattern] = t
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", errBadShapePayload)
	}
	if dp == nil || dp.bestCost >= infinity || dp.bestCost < 0 {
		return nil, errBadShapePayload
	}
	// The decoded DP skeleton must match the entry's own canonical
	// encoding — the key it will be verified against on every hit. A
	// payload that disagrees with itself never enters the cache.
	if !dpMatchesEnc(enc, dp) {
		return nil, fmt.Errorf("%w: DP skeleton disagrees with canonical encoding", errBadShapePayload)
	}
	ss := &sharedShape{enc: enc, dp: dp, units: int64(units)}
	if tmpls != nil {
		ss.templates.Store(&tmpls)
	}
	return ss, nil
}

func decodeDP(r *snapReader, nodes *int) *nodeDP {
	*nodes++
	if *nodes > maxSnapDPNodes {
		r.fail()
		return nil
	}
	dp := &nodeDP{
		full:    uint32(r.uvarint()),
		nodeIdx: int32(r.uvarint()),
		stride:  int32(r.uvarint()),
		g:       r.int32s(maxSnapTableLen),
	}
	nchoice := r.uvarint()
	if r.err != nil {
		return nil
	}
	if nchoice > maxSnapTableLen {
		r.fail()
		return nil
	}
	if nchoice > 0 {
		dp.choice = make([]gChoice, nchoice)
		for i := range dp.choice {
			dp.choice[i] = gChoice{
				kind: choiceKind(r.byte()),
				v:    int8(r.byte()),
				d:    uint32(r.uvarint()),
			}
			if dp.choice[i].kind > choiceIntermediate {
				r.fail()
				return nil
			}
		}
	}
	dp.mmBest = r.int32s(maxSnapTableLen)
	nmmu := r.uvarint()
	if r.err != nil {
		return nil
	}
	if nmmu > maxSnapTableLen || nmmu > uint64(len(r.b)) {
		r.fail()
		return nil
	}
	if nmmu > 0 {
		dp.mmBestU = make([]int8, nmmu)
		for i := range dp.mmBestU {
			dp.mmBestU[i] = int8(r.byte())
		}
	}
	dp.bestCost = int32(r.varint())
	dp.bestU = int(r.varint())
	nfan := r.uvarint()
	if r.err != nil {
		return nil
	}
	if nfan > 32 {
		r.fail()
		return nil
	}
	if nfan > 0 {
		dp.fanins = make([]faninRef, nfan)
		for i := range dp.fanins {
			leafIdx := r.varint()
			if leafIdx < -1 || leafIdx > 1<<31-1 {
				r.fail()
				return nil
			}
			dp.fanins[i].leafIdx = int32(leafIdx)
			switch r.byte() {
			case 0:
			case 1:
				dp.fanins[i].child = decodeDP(r, nodes)
			default:
				r.fail()
			}
			if r.err != nil {
				return nil
			}
		}
	}
	if r.err != nil {
		return nil
	}
	// Table geometry invariants rebindDP and the choice walk rely on.
	if dp.stride < 1 || dp.stride > maxSnapStride {
		r.fail()
		return nil
	}
	if len(dp.g) != len(dp.choice) || len(dp.g)%int(dp.stride) != 0 {
		r.fail()
		return nil
	}
	if len(dp.mmBest) != len(dp.mmBestU) {
		r.fail()
		return nil
	}
	if dp.bestU < 0 || dp.bestU >= int(dp.stride) {
		r.fail()
		return nil
	}
	return dp
}

func decodeTemplate(r *snapReader) *emitTemplate {
	t := &emitTemplate{freshes: r.int32s(maxSnapLUTs)}
	nluts := r.uvarint()
	if r.err != nil {
		return nil
	}
	if nluts > maxSnapLUTs {
		r.fail()
		return nil
	}
	if nluts > 0 {
		t.luts = make([]lutSpec, nluts)
		for i := range t.luts {
			l := &t.luts[i]
			l.nameRef = int32(r.varint())
			l.inputs = r.int32s(maxSnapLUTs)
			l.table = truth.Table{Bits: r.uvarint(), N: int(r.uvarint())}
			l.covers = r.int32s(maxSnapLUTs)
			l.partIdx = int32(r.varint())
			l.shape = string(r.bytes(1 << 16))
			if r.err != nil {
				return nil
			}
			if l.table.N < 0 || l.table.N > truth.MaxVars {
				r.fail()
				return nil
			}
		}
	}
	if r.err != nil {
		return nil
	}
	return t
}

// dpMatchesEnc walks the canonical shape encoding (see appendShapeEnc:
// an 8-byte seed prefix, then per node op + fanin count + per-fanin
// mark bytes) in lockstep with the decoded DP skeleton, requiring the
// same fanin arity and the same leaf/internal split at every position.
func dpMatchesEnc(enc []byte, dp *nodeDP) bool {
	if len(enc) < 8 {
		return false
	}
	b := enc[8:]
	var walk func(dp *nodeDP) bool
	walk = func(dp *nodeDP) bool {
		if dp == nil {
			return false
		}
		_, n := binary.Uvarint(b) // op
		if n <= 0 {
			return false
		}
		b = b[n:]
		nf, n := binary.Uvarint(b)
		if n <= 0 {
			return false
		}
		b = b[n:]
		if nf != uint64(len(dp.fanins)) {
			return false
		}
		for i := range dp.fanins {
			if len(b) == 0 {
				return false
			}
			mark := b[0]
			b = b[1:]
			leaf := mark&2 != 0
			if leaf != (dp.fanins[i].child == nil) {
				return false
			}
			if !leaf && !walk(dp.fanins[i].child) {
				return false
			}
		}
		return true
	}
	return walk(dp) && len(b) == 0
}
