package core

import (
	"context"
	"fmt"
	"strings"

	"chortle/internal/cut"
	"chortle/internal/mislib"
	"chortle/internal/mismap"
	"chortle/internal/network"
)

// Engine selects which mapping algorithm Map runs. All engines consume
// the same Boolean network and emit the same lut.Circuit, so the
// simulation, verification and provenance stacks work unchanged across
// them; they differ in how they cover the network with K-input tables.
type Engine uint8

const (
	// EngineTree is the paper's algorithm (the default): fanout-free
	// tree decomposition with an exhaustive per-tree decomposition DP.
	// Area-optimal per tree, blind to reconvergent fanout.
	EngineTree Engine = iota
	// EngineMIS is the paper's baseline: a DAGON/MIS II-style
	// structural tree coverer over the Section 4.1 library.
	EngineMIS
	// EngineCut is the priority-cut DAG mapper (internal/cut):
	// K-feasible cut enumeration over the whole network with area-flow
	// cover selection — the engine that sees through reconvergent
	// fanout. Tree-engine tuning options (Strategy, SplitThreshold,
	// DisableDecomposition, Parallel, Memoize, Budget, SharedCache) do
	// not apply and are ignored.
	EngineCut
)

var engineNames = [...]string{
	EngineTree: "tree",
	EngineMIS:  "mis",
	EngineCut:  "cut",
}

func (e Engine) String() string {
	if int(e) < len(engineNames) {
		return engineNames[e]
	}
	return fmt.Sprintf("engine(%d)", uint8(e))
}

// ParseEngine resolves an engine name ("tree", "mis", "cut"; case
// insensitive, empty means tree) to its Engine value.
func ParseEngine(s string) (Engine, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "tree":
		return EngineTree, nil
	case "mis":
		return EngineMIS, nil
	case "cut":
		return EngineCut, nil
	}
	return EngineTree, fmt.Errorf("core: unknown engine %q (want tree, mis or cut)", s)
}

// mapCut runs the priority-cut engine and adapts its result. Trees
// reports the selected-cut count (every LUT roots one cut).
func mapCut(ctx context.Context, input *network.Network, opts Options) (*Result, error) {
	r, err := cut.MapCtx(ctx, input, cut.Options{
		K:          opts.K,
		Observer:   opts.Observer,
		Provenance: opts.Provenance,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Circuit:       r.Circuit,
		LUTs:          r.LUTs,
		Trees:         r.LUTs,
		PredictedCost: r.LUTs,
		Prepared:      r.Prepared,
	}
	return finishEngineResult(res, opts)
}

// mapMIS runs the MIS II-style baseline as an engine. The library is
// derived from K (complete for K <= 3, level-0 kernels above).
func mapMIS(ctx context.Context, input *network.Network, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	lib, err := mislib.ForK(opts.K)
	if err != nil {
		return nil, err
	}
	r, err := mismap.Map(input, lib)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Circuit:       r.Circuit,
		LUTs:          r.LUTs,
		Trees:         r.Trees,
		PredictedCost: r.LUTs,
	}
	return finishEngineResult(res, opts)
}

// finishEngineResult applies the engine-independent post-processing
// the tree path gets in MapCtx: the optional repacking peephole plus a
// final structural validation.
func finishEngineResult(res *Result, opts Options) (*Result, error) {
	if opts.RepackLUTs {
		if _, err := res.Circuit.Repack(); err != nil {
			return nil, fmt.Errorf("core: repacking: %w", err)
		}
		if err := res.Circuit.Validate(); err != nil {
			return nil, fmt.Errorf("core: repacked circuit invalid: %w", err)
		}
		res.LUTs = res.Circuit.Count()
	}
	return res, nil
}
