package explain

import (
	"bytes"
	"strings"
	"testing"

	"chortle/internal/core"
	"chortle/internal/forest"
	"chortle/internal/network"
	"chortle/internal/obs"
)

// testNetwork builds a small two-output network with fanout (so the
// forest has more than one tree) and an inverted edge.
func testNetwork(t *testing.T) *network.Network {
	t.Helper()
	nw := network.New("demo")
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	c := nw.AddInput("c")
	d := nw.AddInput("d")
	g1 := nw.AddGate("g1", network.OpAnd,
		network.Fanin{Node: a}, network.Fanin{Node: b, Invert: true})
	g2 := nw.AddGate("g2", network.OpOr,
		network.Fanin{Node: g1}, network.Fanin{Node: c})
	g3 := nw.AddGate("g3", network.OpAnd,
		network.Fanin{Node: g1}, network.Fanin{Node: d})
	nw.MarkOutput("f", g2, false)
	nw.MarkOutput("g", g3, true)
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	return nw
}

func mapWithProvenance(t *testing.T, nw *network.Network) *core.Result {
	t.Helper()
	opts := core.DefaultOptions(3)
	opts.Provenance = true
	res, err := core.Map(nw, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNetworkDOTValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := NetworkDOT(&buf, testNetwork(t)); err != nil {
		t.Fatal(err)
	}
	if err := ValidateDOT(buf.Bytes()); err != nil {
		t.Fatalf("network DOT invalid: %v\n%s", err, buf.String())
	}
	for _, want := range []string{`"g1"`, `arrowhead=odot`, `"out:f"`, `shape=box`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("network DOT missing %q", want)
		}
	}
}

func TestForestDOTValidates(t *testing.T) {
	nw := testNetwork(t)
	f, err := forest.Decompose(nw)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ForestDOT(&buf, f); err != nil {
		t.Fatal(err)
	}
	if err := ValidateDOT(buf.Bytes()); err != nil {
		t.Fatalf("forest DOT invalid: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "subgraph") {
		t.Error("forest DOT has no tree clusters")
	}
	if !strings.Contains(buf.String(), "style=dashed") {
		t.Error("forest DOT has no dashed leaf edges")
	}
}

func TestCircuitDOTValidatesAndClusters(t *testing.T) {
	res := mapWithProvenance(t, testNetwork(t))
	var buf bytes.Buffer
	if err := CircuitDOT(&buf, res.Circuit); err != nil {
		t.Fatal(err)
	}
	if err := ValidateDOT(buf.Bytes()); err != nil {
		t.Fatalf("circuit DOT invalid: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "subgraph") {
		t.Error("provenance-recorded circuit DOT has no tree clusters")
	}
	if !strings.Contains(out, colorSearched) {
		t.Error("no searched-origin fill color in circuit DOT")
	}
}

func TestCircuitDOTWithoutProvenance(t *testing.T) {
	nw := testNetwork(t)
	res, err := core.Map(nw, core.DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := CircuitDOT(&buf, res.Circuit); err != nil {
		t.Fatal(err)
	}
	if err := ValidateDOT(buf.Bytes()); err != nil {
		t.Fatalf("flat circuit DOT invalid: %v", err)
	}
	if strings.Contains(buf.String(), "subgraph") {
		t.Error("circuit without provenance should render flat")
	}
}

// TestCircuitDOTDeterministic pins byte-identity across the
// Parallel x Memoize grid — the property the golden DOT files rely on.
func TestCircuitDOTDeterministic(t *testing.T) {
	nw := testNetwork(t)
	var first []byte
	for _, parallel := range []bool{false, true} {
		for _, memoize := range []bool{false, true} {
			opts := core.DefaultOptions(3)
			opts.Parallel, opts.Memoize, opts.Provenance = parallel, memoize, true
			res, err := core.Map(nw, opts)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := CircuitDOT(&buf, res.Circuit); err != nil {
				t.Fatal(err)
			}
			if first == nil {
				first = buf.Bytes()
			} else if !bytes.Equal(first, buf.Bytes()) {
				t.Fatalf("circuit DOT differs at parallel=%v memoize=%v", parallel, memoize)
			}
		}
	}
}

func TestValidateDOTRejects(t *testing.T) {
	cases := map[string]string{
		"no header":        "graph x {\n}\n",
		"unclosed brace":   "digraph \"g\" {\n",
		"extra brace":      "digraph \"g\" {\n}\n}\n",
		"undeclared edge":  "digraph \"g\" {\n  \"a\";\n  \"a\" -> \"b\";\n}\n",
		"edge before decl": "digraph \"g\" {\n  \"a\" -> \"b\";\n  \"a\";\n  \"b\";\n}\n",
		"bad quote":        "digraph \"g\" {\n  \"a;\n}\n",
	}
	for name, doc := range cases {
		if err := ValidateDOT([]byte(doc)); err == nil {
			t.Errorf("%s: validator accepted invalid document", name)
		}
	}
}

func TestWriteHTMLSelfContained(t *testing.T) {
	nw := testNetwork(t)
	col := &obs.Collector{}
	opts := core.DefaultOptions(3)
	opts.Provenance = true
	opts.Observer = col
	res, err := core.Map(nw, opts)
	if err != nil {
		t.Fatal(err)
	}
	var dot bytes.Buffer
	if err := CircuitDOT(&dot, res.Circuit); err != nil {
		t.Fatal(err)
	}
	data := &ReportData{
		Title:     "demo mapping report",
		Generated: "generated for test",
		Compare: []CompareRow{{
			Circuit: "demo", BaselineLUTs: 5, ChortleLUTs: res.LUTs, DiffPct: -20,
		}},
		Sections: []CircuitSection{{
			Name: "demo", K: 3, LUTs: res.LUTs, Trees: res.Trees,
			Origins: res.Circuit.OriginCounts(),
			Stats:   col.Report(),
			DOT:     dot.String(),
		}},
	}
	var buf bytes.Buffer
	if err := WriteHTML(&buf, data); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Self-containment: nothing in the file may reference the outside
	// world — no URLs, no external resource loads of any kind.
	for _, banned := range []string{"http", "src="} {
		if strings.Contains(out, banned) {
			t.Errorf("report contains %q — not self-contained", banned)
		}
	}
	for _, want := range []string{
		"demo mapping report", "<svg", "Baseline comparison",
		"Phase wall times", "LUT origins", "DOT source",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestWriteHTMLEmptySections(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHTML(&buf, &ReportData{Title: "empty"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Error("title not rendered")
	}
}
