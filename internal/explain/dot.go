// Package explain turns mapping results and their provenance records
// into human-inspectable artifacts: deterministic DOT/Graphviz graphs
// of the Boolean network, the fanout-free forest and the mapped LUT
// circuit, and a self-contained single-file HTML run report. Everything
// here is read-only over its inputs and uses only the standard library.
package explain

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"chortle/internal/forest"
	"chortle/internal/lut"
	"chortle/internal/network"
)

// DOT output discipline: node statements are emitted before any edge
// that mentions them (ValidateDOT enforces declared-before-used), every
// iteration order is a stored slice order (never a map walk), and the
// bytes depend only on the input structures — so the exporters are
// golden-testable and identical across Parallel x Memoize runs.

// Origin-class fill colors for CircuitDOT. The exporter colors by
// Origin.Searched() — the mode-independent classification — rather than
// by raw origin, so memoized and non-memoized runs of the same mapping
// produce byte-identical DOT (the full origin breakdown belongs to the
// HTML report, which is per-run by nature).
const (
	colorSearched = "#cfe2f3" // exhaustive search (fresh, memo, replay)
	colorBinPack  = "#fff2cc" // bin-packing strategy
	colorDegraded = "#f4cccc" // budget-degraded tree
	colorPlain    = "#ffffff" // no provenance recorded
)

// quoteID renders s as a quoted DOT identifier.
func quoteID(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// escLabel escapes s for use inside a quoted DOT label.
func escLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

type dotWriter struct {
	w   *bufio.Writer
	err error
}

func (d *dotWriter) printf(format string, args ...any) {
	if d.err != nil {
		return
	}
	_, d.err = fmt.Fprintf(d.w, format, args...)
}

func (d *dotWriter) finish() error {
	if d.err != nil {
		return d.err
	}
	return d.w.Flush()
}

// edge is one deferred DOT edge (printed after all node declarations).
type edge struct {
	from, to string
	invert   bool
}

func (d *dotWriter) edges(es []edge) {
	for _, e := range es {
		if e.invert {
			d.printf("  %s -> %s [arrowhead=odot];\n", quoteID(e.from), quoteID(e.to))
		} else {
			d.printf("  %s -> %s;\n", quoteID(e.from), quoteID(e.to))
		}
	}
}

// NetworkDOT writes the Boolean network as a DOT digraph: primary
// inputs as boxes, gates labeled with their operation, outputs as
// double circles, and inverted edges marked with an open-dot arrowhead.
func NetworkDOT(w io.Writer, nw *network.Network) error {
	d := &dotWriter{w: bufio.NewWriter(w)}
	d.printf("digraph %s {\n", quoteID("network:"+nw.Name))
	d.printf("  rankdir=BT;\n")
	d.printf("  node [fontname=\"monospace\"];\n")
	var es []edge
	for _, n := range nw.Nodes {
		if n.IsInput() {
			d.printf("  %s [shape=box];\n", quoteID(n.Name))
			continue
		}
		d.printf("  %s [label=\"%s\\n%s/%d\"];\n",
			quoteID(n.Name), escLabel(n.Name), n.Op, len(n.Fanins))
		for _, f := range n.Fanins {
			es = append(es, edge{from: f.Node.Name, to: n.Name, invert: f.Invert})
		}
	}
	for _, o := range nw.Outputs {
		id := "out:" + o.Name
		d.printf("  %s [shape=doublecircle,label=%s];\n", quoteID(id), quoteID(o.Name))
		es = append(es, edge{from: o.Node.Name, to: id, invert: o.Invert})
	}
	d.edges(es)
	d.printf("}\n")
	return d.finish()
}

// ForestDOT writes the fanout-free forest as a DOT digraph with one
// cluster per tree (in root order); leaf edges — references to primary
// inputs or other trees' roots — cross cluster boundaries dashed.
func ForestDOT(w io.Writer, f *forest.Forest) error {
	d := &dotWriter{w: bufio.NewWriter(w)}
	d.printf("digraph %s {\n", quoteID("forest:"+f.Net.Name))
	d.printf("  rankdir=BT;\n")
	d.printf("  node [fontname=\"monospace\"];\n")
	for _, in := range f.Net.Inputs {
		d.printf("  %s [shape=box];\n", quoteID(in.Name))
	}
	var inner, leaf []edge
	for i, root := range f.Roots {
		d.printf("  subgraph %s {\n", quoteID(fmt.Sprintf("cluster_t%d", i)))
		d.printf("    label=%s;\n", quoteID("tree "+root.Name))
		for _, n := range f.TreeNodes(root) {
			d.printf("    %s [label=\"%s\\n%s/%d\"];\n",
				quoteID(n.Name), escLabel(n.Name), n.Op, len(n.Fanins))
			for _, fn := range n.Fanins {
				e := edge{from: fn.Node.Name, to: n.Name, invert: fn.Invert}
				if f.IsLeafEdge(fn.Node) {
					leaf = append(leaf, e)
				} else {
					inner = append(inner, e)
				}
			}
		}
		d.printf("  }\n")
	}
	d.edges(inner)
	for _, e := range leaf {
		arrow := ""
		if e.invert {
			arrow = ",arrowhead=odot"
		}
		d.printf("  %s -> %s [style=dashed%s];\n", quoteID(e.from), quoteID(e.to), arrow)
	}
	d.printf("}\n")
	return d.finish()
}

// lutColor classifies a LUT's fill by its provenance origin class.
func lutColor(p *lut.Provenance) string {
	switch {
	case p == nil:
		return colorPlain
	case p.Origin == lut.OriginDegraded:
		return colorDegraded
	case p.Origin.Searched():
		return colorSearched
	default:
		return colorBinPack
	}
}

// CircuitDOT writes the mapped LUT circuit as a DOT digraph. With
// provenance recorded, LUTs are clustered by owning tree (in first-
// emission order), labeled with their decomposition shape, and filled
// by origin class; without it the circuit renders flat. Output markers
// and latch boxes carry the polarity of their driving edge.
func CircuitDOT(w io.Writer, c *lut.Circuit) error {
	d := &dotWriter{w: bufio.NewWriter(w)}
	d.printf("digraph %s {\n", quoteID("circuit:"+c.Name))
	d.printf("  rankdir=BT;\n")
	d.printf("  node [fontname=\"monospace\",style=filled,fillcolor=\"%s\"];\n", colorPlain)
	for _, in := range c.Inputs {
		d.printf("  %s [shape=box];\n", quoteID(in))
	}

	lutDecl := func(indent string, l *lut.LUT, p *lut.Provenance) {
		label := fmt.Sprintf("%s\\n%d-LUT", escLabel(l.Name), len(l.Inputs))
		if p != nil && p.Shape != "" {
			label = fmt.Sprintf("%s\\n%s", escLabel(l.Name), escLabel(p.Shape))
		}
		d.printf("%s%s [label=\"%s\",fillcolor=\"%s\"];\n", indent, quoteID(l.Name), label, lutColor(p))
	}

	declared := make(map[string]bool, len(c.LUTs))
	if c.HasProvenance() {
		trees := c.ProvenanceTrees()
		byTree := make(map[string][]*lut.LUT, len(trees))
		for _, l := range c.LUTs {
			if p := c.ProvenanceOf(l.Name); p != nil {
				byTree[p.Tree] = append(byTree[p.Tree], l)
			}
		}
		for i, tree := range trees {
			d.printf("  subgraph %s {\n", quoteID(fmt.Sprintf("cluster_t%d", i)))
			d.printf("    label=%s;\n", quoteID("tree "+tree))
			for _, l := range byTree[tree] {
				lutDecl("    ", l, c.ProvenanceOf(l.Name))
				declared[l.Name] = true
			}
			d.printf("  }\n")
		}
	}
	for _, l := range c.LUTs {
		if !declared[l.Name] {
			lutDecl("  ", l, c.ProvenanceOf(l.Name))
		}
	}

	var es []edge
	for _, l := range c.LUTs {
		for _, in := range l.Inputs {
			es = append(es, edge{from: in, to: l.Name})
		}
	}
	for _, o := range c.Outputs {
		id := "out:" + o.Name
		d.printf("  %s [shape=doublecircle,label=%s];\n", quoteID(id), quoteID(o.Name))
		es = append(es, edge{from: o.Signal, to: id, invert: o.Invert})
	}
	for _, la := range c.Latches {
		id := "latch:" + la.Q
		d.printf("  %s [shape=Msquare,label=%s];\n", quoteID(id), quoteID(la.Q))
		es = append(es, edge{from: la.D, to: id, invert: la.DInv})
	}
	d.edges(es)
	d.printf("}\n")
	return d.finish()
}
