package explain

import (
	"fmt"
	"strings"
)

// ValidateDOT structurally checks a DOT document without needing the
// Graphviz dot(1) binary: the header, brace balance, and the rule the
// exporters follow — every node id is declared (a node statement or a
// cluster) before any edge uses it. It understands exactly the subset
// of DOT this package emits (quoted ids, one statement per line), which
// is what makes it a meaningful round-trip check for the golden files.
func ValidateDOT(data []byte) error {
	lines := strings.Split(string(data), "\n")
	depth := 0
	sawGraph := false
	declared := make(map[string]bool)
	for i, raw := range lines {
		line := strings.TrimSpace(raw)
		lineNo := i + 1
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "digraph "):
			if sawGraph {
				return fmt.Errorf("dot line %d: second digraph header", lineNo)
			}
			if !strings.HasSuffix(line, "{") {
				return fmt.Errorf("dot line %d: digraph header missing {", lineNo)
			}
			sawGraph = true
			depth++
		case strings.HasPrefix(line, "subgraph "):
			if !strings.HasSuffix(line, "{") {
				return fmt.Errorf("dot line %d: subgraph header missing {", lineNo)
			}
			depth++
		case line == "}":
			depth--
			if depth < 0 {
				return fmt.Errorf("dot line %d: unbalanced closing brace", lineNo)
			}
		case strings.HasPrefix(line, "\""):
			if !sawGraph || depth == 0 {
				return fmt.Errorf("dot line %d: statement outside graph body", lineNo)
			}
			id, rest, err := readQuoted(line)
			if err != nil {
				return fmt.Errorf("dot line %d: %v", lineNo, err)
			}
			rest = strings.TrimSpace(rest)
			if strings.HasPrefix(rest, "->") {
				// Edge statement: both endpoints must already exist.
				to, _, err := readQuoted(strings.TrimSpace(rest[2:]))
				if err != nil {
					return fmt.Errorf("dot line %d: edge target: %v", lineNo, err)
				}
				if !declared[id] {
					return fmt.Errorf("dot line %d: edge source %q used before declaration", lineNo, id)
				}
				if !declared[to] {
					return fmt.Errorf("dot line %d: edge target %q used before declaration", lineNo, to)
				}
			} else {
				declared[id] = true
			}
		default:
			// Attribute statements (rankdir=..., node [...], label=...).
		}
	}
	if !sawGraph {
		return fmt.Errorf("dot: no digraph header")
	}
	if depth != 0 {
		return fmt.Errorf("dot: %d unclosed braces", depth)
	}
	return nil
}

// readQuoted parses a leading quoted DOT id, returning it unescaped
// plus the remainder of the line.
func readQuoted(s string) (id, rest string, err error) {
	if len(s) == 0 || s[0] != '"' {
		return "", "", fmt.Errorf("expected quoted id in %q", s)
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape in %q", s)
			}
			i++
			b.WriteByte(s[i])
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted id in %q", s)
}
