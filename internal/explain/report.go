package explain

import (
	"fmt"
	"html/template"
	"io"
	"sort"
	"strings"
	"time"

	"chortle/internal/obs"
)

// The HTML run report: one self-contained file — no external scripts,
// stylesheets, images or fonts, so it can be archived as a CI artifact
// and opened anywhere. Charts are inline SVG rendered here; the only
// inputs are the aggregate obs.Report, the circuit's provenance
// summaries, and (optionally) baseline comparison rows and a DOT dump.

// CompareRow is one circuit's baseline-versus-Chortle comparison (the
// cmd/compare table, reproduced in the report header).
type CompareRow struct {
	Circuit      string
	BaselineLUTs int
	ChortleLUTs  int
	// DiffPct is the Chortle-versus-baseline LUT delta in percent
	// (negative means Chortle used fewer LUTs).
	DiffPct      float64
	BaselineTime time.Duration
	ChortleTime  time.Duration
	Synthetic    bool
}

// CircuitSection is the per-circuit body of a report: headline
// statistics, the origin breakdown from provenance, the aggregated
// observability report, and an optional embedded DOT source.
type CircuitSection struct {
	Name     string
	K        int
	LUTs     int
	Depth    int
	Trees    int
	Degraded int
	// Origins histograms the circuit's LUTs by provenance origin name
	// (lut.Circuit.OriginCounts). Nil when provenance was off.
	Origins map[string]int
	// Stats is the aggregated event stream of the mapping run (phase
	// walls, solve percentiles, histograms). Optional.
	Stats *obs.Report
	// DOT, when non-empty, is embedded verbatim in a collapsible block
	// so the report carries its own graph source.
	DOT string
}

// ReportData is everything WriteHTML renders.
type ReportData struct {
	Title string
	// Generated is a caller-supplied timestamp line (the library itself
	// never reads the clock, keeping output deterministic for tests).
	Generated string
	Compare   []CompareRow
	Sections  []CircuitSection
}

// barItem is one bar of an inline SVG chart.
type barItem struct {
	Label   string
	Value   float64
	Display string
}

// barChart renders a horizontal bar chart as inline SVG. Pure markup:
// deterministic, no scripts, no external references.
func barChart(items []barItem) template.HTML {
	if len(items) == 0 {
		return ""
	}
	max := 0.0
	for _, it := range items {
		if it.Value > max {
			max = it.Value
		}
	}
	if max == 0 {
		max = 1
	}
	const (
		rowH    = 22
		labelW  = 130
		barMaxW = 360
		valueW  = 110
	)
	width := labelW + barMaxW + valueW
	height := rowH * len(items)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %d %d" width="%d" height="%d" role="img">`, width, height, width, height)
	for i, it := range items {
		y := i * rowH
		w := int(it.Value / max * barMaxW)
		if w < 1 && it.Value > 0 {
			w = 1
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end" class="cl">%s</text>`,
			labelW-8, y+rowH-7, template.HTMLEscapeString(it.Label))
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" class="cb"/>`,
			labelW, y+4, w, rowH-8)
		fmt.Fprintf(&b, `<text x="%d" y="%d" class="cv">%s</text>`,
			labelW+w+6, y+rowH-7, template.HTMLEscapeString(it.Display))
	}
	b.WriteString(`</svg>`)
	return template.HTML(b.String())
}

// phaseChart charts the per-phase wall times.
func phaseChart(r *obs.Report) template.HTML {
	if r == nil || len(r.Phases) == 0 {
		return ""
	}
	items := make([]barItem, len(r.Phases))
	for i, p := range r.Phases {
		items[i] = barItem{
			Label:   p.Name,
			Value:   float64(p.Wall),
			Display: p.Wall.Round(time.Microsecond).String(),
		}
	}
	return barChart(items)
}

// originChart charts the provenance origin breakdown, in the fixed
// taxonomy order so reports are comparable run to run.
func originChart(origins map[string]int) template.HTML {
	if len(origins) == 0 {
		return ""
	}
	order := []string{"fresh", "memo", "replay", "binpack", "degraded", "unknown"}
	var items []barItem
	for _, name := range order {
		if n := origins[name]; n > 0 {
			items = append(items, barItem{Label: name, Value: float64(n), Display: fmt.Sprintf("%d LUTs", n)})
		}
	}
	return barChart(items)
}

// histChart charts an integer-keyed histogram in key order.
func histChart(h map[int]int, unit string) template.HTML {
	if len(h) == 0 {
		return ""
	}
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	items := make([]barItem, len(keys))
	for i, k := range keys {
		items[i] = barItem{
			Label:   fmt.Sprintf("%d %s", k, unit),
			Value:   float64(h[k]),
			Display: fmt.Sprintf("%d", h[k]),
		}
	}
	return barChart(items)
}

var reportFuncs = template.FuncMap{
	"phaseChart":  phaseChart,
	"originChart": originChart,
	"histChart":   histChart,
	"dur": func(d time.Duration) string {
		return d.Round(time.Microsecond).String()
	},
	"pct": func(f float64) string {
		return fmt.Sprintf("%+.1f%%", f)
	},
}

var reportTmpl = template.Must(template.New("report").Funcs(reportFuncs).Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 64rem; color: #1c2733; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.2rem; margin-top: 2rem; border-bottom: 1px solid #d6dde4; }
h3 { font-size: 1rem; margin-bottom: 0.3rem; }
table { border-collapse: collapse; margin: 0.8rem 0; }
th, td { border: 1px solid #d6dde4; padding: 0.3rem 0.7rem; text-align: right; }
th:first-child, td:first-child { text-align: left; }
thead { background: #eef2f5; }
.gen { color: #5d6b79; font-size: 0.85rem; }
.cl, .cv { font: 12px monospace; fill: #1c2733; }
.cb { fill: #7fa8d0; }
.statline { color: #39434e; }
details { margin: 0.6rem 0; }
pre { background: #f4f6f8; padding: 0.7rem; overflow-x: auto; font-size: 0.8rem; }
.badge { background: #eef2f5; border-radius: 0.6rem; padding: 0.1rem 0.5rem; font-size: 0.8rem; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
{{if .Generated}}<p class="gen">{{.Generated}}</p>{{end}}
{{if .Compare}}
<h2>Baseline comparison</h2>
<table>
<thead><tr><th>circuit</th><th>baseline LUTs</th><th>chortle LUTs</th><th>diff</th><th>baseline time</th><th>chortle time</th></tr></thead>
<tbody>
{{range .Compare}}<tr><td>{{.Circuit}}{{if .Synthetic}} <span class="badge">synthetic</span>{{end}}</td><td>{{.BaselineLUTs}}</td><td>{{.ChortleLUTs}}</td><td>{{pct .DiffPct}}</td><td>{{dur .BaselineTime}}</td><td>{{dur .ChortleTime}}</td></tr>
{{end}}</tbody>
</table>
{{end}}
{{range .Sections}}
<h2>{{.Name}} (K={{.K}})</h2>
<p class="statline">{{.LUTs}} LUTs, depth {{.Depth}}, {{.Trees}} trees{{if .Degraded}}, {{.Degraded}} degraded{{end}}</p>
{{with .Stats}}
<h3>Phase wall times</h3>
{{phaseChart .}}
{{if .TimedSolves}}<p class="statline">solve times over {{.TimedSolves}} timed solves: p50 {{dur .SolveP50}}, p95 {{dur .SolveP95}}, p99 {{dur .SolveP99}}</p>{{end}}
<p class="statline">{{.Solves}} solves, {{.WorkUnits}} work units, {{.MemoHits}} memo hits, {{.TemplateReplays}} template replays</p>
{{if .LUTInputHist}}<h3>LUT input usage</h3>
{{histChart .LUTInputHist "inputs"}}{{end}}
{{if .LUTDepthHist}}<h3>LUT levels</h3>
{{histChart .LUTDepthHist "levels"}}{{end}}
{{end}}
{{if .Origins}}
<h3>LUT origins</h3>
{{originChart .Origins}}
{{end}}
{{if .DOT}}
<details><summary>DOT source (circuit graph)</summary>
<pre>{{.DOT}}</pre>
</details>
{{end}}
{{end}}
</body>
</html>
`))

// WriteHTML renders the report as one self-contained HTML document:
// inline styles, inline SVG charts, no references to anything outside
// the file (pinned by tests that grep the output).
func WriteHTML(w io.Writer, d *ReportData) error {
	return reportTmpl.Execute(w, d)
}
