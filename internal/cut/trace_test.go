package cut

import (
	"math/rand"
	"reflect"
	"testing"

	"chortle/internal/obs"
)

// TestCutEngineEvents pins the cut engine's event emissions: the
// enumeration summary matches the result's cut tally, every configured
// area round reports, and the run-end timestamp cannot precede its
// per-LUT children (the map-end event reuses the same captured clock).
func TestCutEngineEvents(t *testing.T) {
	nw := randDAG(rand.New(rand.NewSource(7)))
	var coll obs.Collector
	opts := DefaultOptions(4)
	opts.Observer = &coll
	res, err := Map(nw, opts)
	if err != nil {
		t.Fatal(err)
	}

	var enum *obs.Event
	var rounds []obs.Event
	var mapEnd *obs.Event
	var lastLUT *obs.Event
	for _, e := range coll.Events() {
		e := e
		switch e.Kind {
		case obs.KindCutsEnumerated:
			enum = &e
		case obs.KindAreaFlowRound:
			rounds = append(rounds, e)
		case obs.KindMapEnd:
			mapEnd = &e
		case obs.KindLUT:
			lastLUT = &e
		}
	}
	if enum == nil {
		t.Fatal("no cuts-enumerated event")
	}
	if int(enum.Units) != res.Cuts {
		t.Errorf("cuts-enumerated Units=%d, Result.Cuts=%d", enum.Units, res.Cuts)
	}
	if enum.N != res.Nodes {
		t.Errorf("cuts-enumerated N=%d, Result.Nodes=%d", enum.N, res.Nodes)
	}
	if enum.Cost < 0 {
		t.Errorf("negative dominated count %d", enum.Cost)
	}
	if len(rounds) != defaultAreaRounds {
		t.Fatalf("got %d area-flow rounds, want %d", len(rounds), defaultAreaRounds)
	}
	for i, r := range rounds {
		if r.N != i+1 {
			t.Errorf("round %d numbered %d", i+1, r.N)
		}
		if r.Cost != res.LUTs {
			// Later rounds can shrink the cover; the last must match.
			if i == len(rounds)-1 {
				t.Errorf("final round cover=%d, Result.LUTs=%d", r.Cost, res.LUTs)
			}
		}
	}
	if mapEnd == nil || lastLUT == nil {
		t.Fatal("map-end or LUT event missing")
	}
	if mapEnd.Time.Before(lastLUT.Time) {
		t.Error("map-end precedes its last LUT child event")
	}
	if !mapEnd.Time.Equal(lastLUT.Time) {
		t.Error("map-end does not reuse the LUT events' captured timestamp")
	}
}

// TestCutEngineObserverPassive pins the passivity contract: the mapped
// circuit is identical with and without an observer attached.
func TestCutEngineObserverPassive(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		nw := randDAG(rand.New(rand.NewSource(seed)))
		plain, err := Map(nw, DefaultOptions(4))
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions(4)
		opts.Observer = &obs.Collector{}
		observed, err := Map(nw, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.Circuit, observed.Circuit) {
			t.Fatalf("seed %d: observer changed the mapped circuit", seed)
		}
	}
}
