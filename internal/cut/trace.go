package cut

import (
	"time"

	"chortle/internal/lut"
	"chortle/internal/obs"
)

// tracer is the cut engine's emission shim over obs.Observer, the same
// discipline as the tree engine's: every method is a single nil check
// when no observer is attached, and observation never influences the
// mapping — the emitted circuit is byte-identical either way.
type tracer struct {
	o obs.Observer
}

var noopDone = func() {}

// phase opens a pipeline phase and returns the closure that closes it,
// carrying the phase's wall time on the end event.
func (t tracer) phase(name string) func() {
	if t.o == nil {
		return noopDone
	}
	start := time.Now()
	t.o.Observe(obs.Event{Kind: obs.KindPhaseStart, Time: start, Phase: name})
	return func() {
		now := time.Now()
		t.o.Observe(obs.Event{Kind: obs.KindPhaseEnd, Time: now, Phase: name, Units: int64(now.Sub(start))})
	}
}

func (t tracer) mapStart(k, nodes int) {
	if t.o == nil {
		return
	}
	t.o.Observe(obs.Event{Kind: obs.KindMapStart, Time: time.Now(), K: k, N: nodes})
}

// circuit closes a run: one KindLUT event per emitted table and the
// KindMapEnd summary (N carries the selected-cut count in place of the
// tree engine's tree count).
func (t tracer) circuit(ckt *lut.Circuit, roots int) {
	if t.o == nil {
		return
	}
	levels, err := ckt.Levels()
	if err != nil {
		levels = nil
	}
	depth := 0
	now := time.Now()
	for _, l := range ckt.LUTs {
		lv := levels[l.Name]
		if lv > depth {
			depth = lv
		}
		t.o.Observe(obs.Event{Kind: obs.KindLUT, Time: now, Tree: l.Name, N: len(l.Inputs), Depth: lv})
	}
	t.o.Observe(obs.Event{Kind: obs.KindMapEnd, Time: time.Now(), Cost: ckt.Count(), Depth: depth, N: roots})
}
