package cut

import (
	"time"

	"chortle/internal/lut"
	"chortle/internal/obs"
)

// tracer is the cut engine's emission shim over obs.Observer, the same
// discipline as the tree engine's: every method is a single nil check
// when no observer is attached, and observation never influences the
// mapping — the emitted circuit is byte-identical either way.
type tracer struct {
	o obs.Observer
}

var noopDone = func() {}

// phase opens a pipeline phase and returns the closure that closes it,
// carrying the phase's wall time on the end event.
func (t tracer) phase(name string) func() {
	if t.o == nil {
		return noopDone
	}
	start := time.Now()
	t.o.Observe(obs.Event{Kind: obs.KindPhaseStart, Time: start, Phase: name})
	return func() {
		now := time.Now()
		t.o.Observe(obs.Event{Kind: obs.KindPhaseEnd, Time: now, Phase: name, Units: int64(now.Sub(start))})
	}
}

func (t tracer) mapStart(k, nodes int) {
	if t.o == nil {
		return
	}
	t.o.Observe(obs.Event{Kind: obs.KindMapStart, Time: time.Now(), K: k, N: nodes})
}

// circuit closes a run: one KindLUT event per emitted table and the
// KindMapEnd summary (N carries the selected-cut count in place of the
// tree engine's tree count).
func (t tracer) circuit(ckt *lut.Circuit, roots int) {
	if t.o == nil {
		return
	}
	levels, err := ckt.Levels()
	if err != nil {
		levels = nil
	}
	depth := 0
	now := time.Now()
	for _, l := range ckt.LUTs {
		lv := levels[l.Name]
		if lv > depth {
			depth = lv
		}
		t.o.Observe(obs.Event{Kind: obs.KindLUT, Time: now, Tree: l.Name, N: len(l.Inputs), Depth: lv})
	}
	// The end event reuses the captured now: a second time.Now() here
	// would let the map-end span close after its last KindLUT child.
	t.o.Observe(obs.Event{Kind: obs.KindMapEnd, Time: now, Cost: ckt.Count(), Depth: depth, N: roots})
}

// cutsEnumerated closes the enumeration pass: gates enumerated over,
// cuts kept across all priority lists, candidates removed by dominance
// pruning, and non-dominated cuts evicted beyond the priority bound
// (the eviction count rides its own event so operators can alert on
// bound pressure separately).
func (t tracer) cutsEnumerated(gates int, kept int64, dominated int, evicted int64) {
	if t.o == nil {
		return
	}
	now := time.Now()
	t.o.Observe(obs.Event{Kind: obs.KindCutsEnumerated, Time: now, N: gates, Units: kept, Cost: dominated})
	if evicted > 0 {
		t.o.Observe(obs.Event{Kind: obs.KindCutListEvict, Time: now, Units: evicted})
	}
}

// areaFlowRound closes one area-recovery iteration with the cover size
// it produced.
func (t tracer) areaFlowRound(round, cover int) {
	if t.o == nil {
		return
	}
	t.o.Observe(obs.Event{Kind: obs.KindAreaFlowRound, Time: time.Now(), N: round, Cost: cover})
}
