package cut

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"chortle/internal/cerrs"
	"chortle/internal/network"
	"chortle/internal/verify"
)

// randDAG generates a random reconvergent network: gates draw their
// fanins uniformly from everything built before them, so shared
// subexpressions and reconvergent paths appear constantly — exactly the
// structure the tree decomposition cannot see and the cut engine must
// handle. A few gates get fanin wider than two to exercise
// binarization, and an occasional latch exercises the sequential
// plumbing.
func randDAG(rng *rand.Rand) *network.Network {
	nw := network.New(fmt.Sprintf("rand%d", rng.Int63()))
	nIn := 3 + rng.Intn(8)
	var pool []*network.Node
	for i := 0; i < nIn; i++ {
		pool = append(pool, nw.AddInput(fmt.Sprintf("i%d", i)))
	}
	// Latch outputs are inputs to the combinational core.
	nLatch := rng.Intn(3)
	for i := 0; i < nLatch; i++ {
		pool = append(pool, nw.AddInput(fmt.Sprintf("q%d", i)))
	}
	nGates := 3 + rng.Intn(38)
	for i := 0; i < nGates; i++ {
		width := 2
		switch rng.Intn(8) {
		case 0:
			width = 3 + rng.Intn(3) // exercises binarize
		case 1:
			width = 1 // buffer/inverter
		}
		fanins := make([]network.Fanin, width)
		for j := range fanins {
			fanins[j] = network.Fanin{
				Node:   pool[rng.Intn(len(pool))],
				Invert: rng.Intn(3) == 0,
			}
		}
		op := network.OpAnd
		if rng.Intn(2) == 0 {
			op = network.OpOr
		}
		pool = append(pool, nw.AddGate(fmt.Sprintf("g%d", i), op, fanins...))
	}
	// Outputs: a few random picks plus the last gate so the network
	// never sweeps to nothing.
	nOut := 1 + rng.Intn(4)
	for i := 0; i < nOut; i++ {
		n := pool[nIn+nLatch+rng.Intn(nGates)]
		nw.MarkOutput(fmt.Sprintf("o%d", i), n, rng.Intn(4) == 0)
	}
	nw.MarkOutput("olast", pool[len(pool)-1], false)
	for i := 0; i < nLatch; i++ {
		nw.AddLatch(fmt.Sprintf("q%d", i), pool[nIn+nLatch+rng.Intn(nGates)], rng.Intn(4) == 0, byte(rng.Intn(2)))
	}
	return nw
}

// checkMapped asserts every cut-engine invariant on one mapped result:
// the circuit simulates identically to the unmapped network, every LUT
// is K-feasible, and — via the provenance records — the selected cones
// exactly partition the prepared subject graph's gates.
func checkMapped(t *testing.T, nw *network.Network, res *Result, k int, label string) {
	t.Helper()
	if err := verify.NetworkVsCircuit(nw, res.Circuit, 16, 1); err != nil {
		t.Fatalf("%s: mapped circuit is not equivalent: %v", label, err)
	}
	for _, l := range res.Circuit.LUTs {
		if len(l.Inputs) > k {
			t.Fatalf("%s: LUT %q has %d inputs, K=%d", label, l.Name, len(l.Inputs), k)
		}
		if len(l.Inputs) == 0 {
			t.Fatalf("%s: LUT %q has no inputs", label, l.Name)
		}
	}
	if res.Prepared == nil {
		t.Fatalf("%s: Provenance set but Prepared is nil", label)
	}
	gates := make(map[string]bool)
	for _, n := range res.Prepared.Nodes {
		if !n.IsInput() {
			gates[n.Name] = true
		}
	}
	if err := res.Circuit.CheckProvenance(gates); err != nil {
		t.Fatalf("%s: cover is not an exact partition: %v", label, err)
	}
	if res.LUTs != len(res.Circuit.LUTs) {
		t.Fatalf("%s: Result.LUTs=%d but circuit has %d", label, res.LUTs, len(res.Circuit.LUTs))
	}
}

// TestRandomDAGProperties is the property suite: hundreds of seeded
// random reconvergent DAGs, each mapped at a random K, each checked for
// simulation equivalence, K-feasibility of every selected cut, and an
// exact cover partition. Run under -race in CI.
func TestRandomDAGProperties(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 60
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < n; i++ {
		nw := randDAG(rng)
		k := 2 + rng.Intn(5)
		opts := DefaultOptions(k)
		opts.Provenance = true
		res, err := Map(nw, opts)
		if err != nil {
			t.Fatalf("dag %d (K=%d): %v", i, k, err)
		}
		checkMapped(t, nw, res, k, fmt.Sprintf("dag %d (K=%d)", i, k))
	}
}

// diamondLadder builds d stacked reconvergent diamonds: each level
// forks the running signal into two polarized gates and rejoins them,
// so every level reconverges on the one below.
func diamondLadder(d int) *network.Network {
	nw := network.New(fmt.Sprintf("ladder%d", d))
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	cur := nw.AddGate("seed", network.OpAnd,
		network.Fanin{Node: a}, network.Fanin{Node: b})
	for i := 0; i < d; i++ {
		l := nw.AddGate(fmt.Sprintf("l%d", i), network.OpAnd,
			network.Fanin{Node: cur}, network.Fanin{Node: a, Invert: i%2 == 0})
		r := nw.AddGate(fmt.Sprintf("r%d", i), network.OpOr,
			network.Fanin{Node: cur, Invert: true}, network.Fanin{Node: b})
		cur = nw.AddGate(fmt.Sprintf("j%d", i), network.OpOr,
			network.Fanin{Node: l}, network.Fanin{Node: r, Invert: i%3 == 0})
	}
	nw.MarkOutput("out", cur, false)
	return nw
}

// highFanoutDiamond drives many parallel branches from one shared gate
// and reduces them back into a single output — the high-fanout
// reconvergence that stresses both reference estimation and the
// first-owner provenance partition.
func highFanoutDiamond(branches int) *network.Network {
	nw := network.New(fmt.Sprintf("fanout%d", branches))
	a := nw.AddInput("a")
	b := nw.AddInput("b")
	c := nw.AddInput("c")
	hub := nw.AddGate("hub", network.OpOr,
		network.Fanin{Node: a}, network.Fanin{Node: b})
	fan := make([]network.Fanin, branches)
	for i := 0; i < branches; i++ {
		g := nw.AddGate(fmt.Sprintf("br%d", i), network.OpAnd,
			network.Fanin{Node: hub, Invert: i%2 == 0},
			network.Fanin{Node: c, Invert: i%3 == 0})
		fan[i] = network.Fanin{Node: g}
	}
	// One wide reducer, binarized by the mapper.
	red := nw.AddGate("red", network.OpOr, fan...)
	nw.MarkOutput("out", red, false)
	return nw
}

// TestAdversarialStructures maps the hand-built worst cases — deep
// reconvergence ladders and high-fanout diamonds — at every K.
func TestAdversarialStructures(t *testing.T) {
	nets := []*network.Network{
		diamondLadder(3), diamondLadder(12), diamondLadder(40),
		highFanoutDiamond(3), highFanoutDiamond(9), highFanoutDiamond(17),
	}
	for _, nw := range nets {
		for k := 2; k <= 6; k++ {
			opts := DefaultOptions(k)
			opts.Provenance = true
			res, err := Map(nw, opts)
			if err != nil {
				t.Fatalf("%s K=%d: %v", nw.Name, k, err)
			}
			checkMapped(t, nw, res, k, fmt.Sprintf("%s K=%d", nw.Name, k))
		}
	}
}

// TestBinarizationCounted pins that wide gates are expanded and
// reported: a fanin-17 reducer needs 15 extra two-input gates.
func TestBinarizationCounted(t *testing.T) {
	res, err := Map(highFanoutDiamond(17), DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.BinarizedGates != 15 {
		t.Errorf("BinarizedGates = %d, want 15", res.BinarizedGates)
	}
	if res.Cuts == 0 || res.Nodes == 0 {
		t.Errorf("empty search stats: %+v", res)
	}
}

// TestDeterministicRepeat pins byte-level determinism: the same input
// maps to the identical circuit on every run, across option spellings
// that must not change the output.
func TestDeterministicRepeat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		nw := randDAG(rng)
		k := 2 + rng.Intn(5)
		var ref string
		for rep := 0; rep < 4; rep++ {
			opts := DefaultOptions(k)
			opts.Provenance = rep%2 == 0 // provenance must be passive
			res, err := Map(nw, opts)
			if err != nil {
				t.Fatalf("dag %d rep %d: %v", i, rep, err)
			}
			var sb strings.Builder
			if err := res.Circuit.WriteBLIF(&sb); err != nil {
				t.Fatal(err)
			}
			if rep == 0 {
				ref = sb.String()
			} else if sb.String() != ref {
				t.Fatalf("dag %d (K=%d): run %d BLIF differs from run 0", i, k, rep)
			}
		}
	}
}

// TestTightPriorityList maps with the smallest list bound: quality
// drops but every invariant must hold.
func TestTightPriorityList(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		nw := randDAG(rng)
		opts := Options{K: 4, CutsPerNode: 1, AreaRounds: -1, Provenance: true}
		res, err := Map(nw, opts)
		if err != nil {
			t.Fatalf("dag %d: %v", i, err)
		}
		checkMapped(t, nw, res, 4, fmt.Sprintf("dag %d", i))
	}
}

func TestBadOptions(t *testing.T) {
	nw := diamondLadder(2)
	for _, k := range []int{0, 1, 7, -3} {
		if _, err := Map(nw, Options{K: k}); !errors.Is(err, cerrs.ErrBadK) {
			t.Errorf("K=%d: err=%v, want ErrBadK", k, err)
		}
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MapCtx(ctx, diamondLadder(30), DefaultOptions(4)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context: err=%v, want context.Canceled", err)
	}
}

// TestReconvergenceBeatsTrees pins the engine's reason to exist on a
// micro-example: the stacked diamonds collapse into far fewer LUTs
// than one per gate.
func TestReconvergenceBeatsTrees(t *testing.T) {
	nw := diamondLadder(12)
	res, err := Map(nw, DefaultOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	// 12 levels x 3 gates + seed = 37 gates; the cut mapper must do much
	// better than one LUT per level triple.
	if res.LUTs > 12 {
		t.Errorf("ladder(12) at K=5: %d LUTs, want <= 12", res.LUTs)
	}
}
