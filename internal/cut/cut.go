// Package cut implements a priority-cut DAG mapper for K-input lookup
// tables — the modern successor to the Chortle paper's fanout-free-tree
// decomposition and the engine that removes its reconvergent-fanout
// blind spot. Instead of splitting the network into trees, it
// enumerates K-feasible cuts per node over the whole DAG (bounded
// priority lists, leaf-subset dominance pruning with bitset
// signatures), ranks them by area flow with exact-area refinement
// passes, and selects a cover from the outputs down. Each selected cut
// becomes one LUT whose truth table is computed over the cut's cone,
// so reconvergent structure (XOR trees, carry chains) collapses into
// single tables that the tree decomposition is forced to spread over
// several.
//
// The mapper is deterministic: identical inputs and options produce a
// byte-identical circuit on every run, with no dependence on map
// iteration order or scheduling.
package cut

import (
	"context"
	"fmt"
	"sort"

	"chortle/internal/cerrs"
	"chortle/internal/lut"
	"chortle/internal/network"
	"chortle/internal/obs"
	"chortle/internal/truth"
)

// Options configures the priority-cut mapper.
type Options struct {
	// K is the lookup table input count; every selected cut has at most
	// K leaves. Range [2, truth.MaxVars].
	K int

	// CutsPerNode bounds the per-node priority list: after dominance
	// pruning, only the CutsPerNode best-ranked non-trivial cuts are
	// kept for consumers to merge. Larger lists explore more covers at
	// more cost. Zero takes the default (8).
	CutsPerNode int

	// AreaRounds is the number of area-recovery passes after the
	// initial area-flow cover: each pass recomputes reference counts
	// from the current cover, re-ranks every priority list under the
	// refined counts, and reselects. Zero takes the default (2);
	// negative disables recovery.
	AreaRounds int

	// Observer, when non-nil, receives phase boundaries, per-LUT detail
	// and the run summary, with the same passivity contract as the tree
	// engine: the emitted circuit is byte-identical with or without it.
	Observer obs.Observer

	// Provenance attaches per-LUT ancestry records to the circuit (see
	// internal/lut): the cut's leaf count as the shape, the covered
	// gates as a first-owner partition of the prepared network's gates,
	// and lut.OriginCut as the origin. Result.Prepared carries the
	// network the records refer to.
	Provenance bool
}

// DefaultOptions returns the default priority-cut configuration for K.
func DefaultOptions(k int) Options {
	return Options{K: k, CutsPerNode: defaultCutsPerNode, AreaRounds: defaultAreaRounds}
}

const (
	defaultCutsPerNode = 8
	defaultAreaRounds  = 2
)

func (o Options) validate() error {
	if o.K < 2 || o.K > truth.MaxVars {
		return fmt.Errorf("cut: K=%d out of range [2,%d]: %w", o.K, truth.MaxVars, cerrs.ErrBadK)
	}
	return nil
}

// cutsPerNode resolves the priority-list bound.
func (o Options) cutsPerNode() int {
	if o.CutsPerNode <= 0 {
		return defaultCutsPerNode
	}
	return o.CutsPerNode
}

// areaRounds resolves the recovery pass count.
func (o Options) areaRounds() int {
	switch {
	case o.AreaRounds == 0:
		return defaultAreaRounds
	case o.AreaRounds < 0:
		return 0
	}
	return o.AreaRounds
}

// Result is the outcome of a priority-cut mapping.
type Result struct {
	// Circuit is the mapped K-LUT circuit.
	Circuit *lut.Circuit
	// LUTs is the circuit area (one per selected cut).
	LUTs int
	// Nodes is the gate count of the binarized subject graph the cuts
	// were enumerated over.
	Nodes int
	// BinarizedGates counts the two-input gates the binarization step
	// added to bound every gate's fanin at two.
	BinarizedGates int
	// Cuts is the total number of cuts retained across all priority
	// lists — the search breadth the bound allowed.
	Cuts int
	// Prepared is the binarized subject graph the provenance records
	// refer to; recorded only when Options.Provenance is set.
	Prepared *network.Network
}

// cutSet is one K-feasible cut: its leaves as sorted node IDs, a
// 64-bit bloom signature for fast dominance rejection, and the ranking
// the last area pass computed.
type cutSet struct {
	leaves []int32
	sig    uint64
	flow   float64 // area flow through this cut
	depth  int32   // LUT levels through this cut
}

// signature returns the bloom mask of a leaf set.
func signature(leaves []int32) uint64 {
	var s uint64
	for _, l := range leaves {
		s |= 1 << (uint(l) & 63)
	}
	return s
}

// subsetOf reports whether a's leaves are all among b's. The signature
// pre-check rejects most non-subsets in one AND.
func (a *cutSet) subsetOf(b *cutSet) bool {
	if len(a.leaves) > len(b.leaves) || a.sig&^b.sig != 0 {
		return false
	}
	i := 0
	for _, l := range b.leaves {
		if i < len(a.leaves) && a.leaves[i] == l {
			i++
		}
	}
	return i == len(a.leaves)
}

// nodeData is the per-node mapping state, indexed by node ID.
type nodeData struct {
	cuts  []*cutSet // non-trivial cuts, best-first
	est   float64   // area flow of the best cut
	depth int32     // depth through the best cut
	refs  float64   // estimated references (>= 1)
}

// mapper carries one run's state.
type mapper struct {
	opts  Options
	nw    *network.Network
	order []*network.Node // topological, fanins first
	data  []nodeData      // by node ID
	// selected is the cover in topological order; selMark flags
	// membership by node ID.
	selected []*network.Node
	selMark  []bool
	cutCount int
	// Enumeration tallies for the run-summary events: candidates removed
	// by dominance pruning and non-dominated cuts evicted beyond the
	// priority bound.
	dominated int
	evicted   int64
}

// Map runs the priority-cut mapper on the network. The input is not
// modified.
func Map(input *network.Network, opts Options) (*Result, error) {
	return MapCtx(context.Background(), input, opts)
}

// MapCtx is Map under a context: cancellation or deadline expiry makes
// the enumeration return ctx.Err() promptly between nodes.
func MapCtx(ctx context.Context, input *network.Network, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := input.Validate(); err != nil {
		return nil, err
	}
	tr := tracer{opts.Observer}
	tr.mapStart(opts.K, len(input.Nodes))

	endPhase := tr.phase("prepare")
	nw := input.Clone()
	nw.Sweep()
	added := binarize(nw)
	order, err := nw.TopoSort()
	endPhase()
	if err != nil {
		return nil, err
	}

	m := &mapper{opts: opts, nw: nw, order: order}
	m.data = make([]nodeData, len(nw.Nodes))
	for id, c := range nw.FanoutCounts() {
		if c < 1 {
			c = 1
		}
		m.data[id].refs = float64(c)
	}

	endPhase = tr.phase("cuts")
	err = m.enumerate(ctx)
	endPhase()
	if err != nil {
		return nil, err
	}
	tr.cutsEnumerated(gateCount(nw), int64(m.cutCount), m.dominated, m.evicted)

	endPhase = tr.phase("select")
	m.selectCover()
	for round := 0; round < opts.areaRounds(); round++ {
		if err := ctx.Err(); err != nil {
			endPhase()
			return nil, err
		}
		m.recomputeRefs()
		m.rerank()
		m.selectCover()
		tr.areaFlowRound(round+1, len(m.selected))
	}
	endPhase()

	endPhase = tr.phase("emit")
	ckt, err := m.emit()
	endPhase()
	if err != nil {
		return nil, err
	}
	if err := ckt.Validate(); err != nil {
		return nil, fmt.Errorf("cut: mapped circuit invalid: %w", err)
	}
	tr.circuit(ckt, len(m.selected))

	res := &Result{
		Circuit:        ckt,
		LUTs:           ckt.Count(),
		Nodes:          gateCount(nw),
		BinarizedGates: added,
		Cuts:           m.cutCount,
	}
	if opts.Provenance {
		res.Prepared = nw
	}
	return res, nil
}

func gateCount(nw *network.Network) int {
	n := 0
	for _, nd := range nw.Nodes {
		if !nd.IsInput() {
			n++
		}
	}
	return n
}

// enumerate builds every gate's priority list in topological order.
// For a gate v with fanins a and b the candidates are the pairwise
// unions of a's and b's cut lists (each extended by its trivial cut
// {a} resp. {b}); candidates wider than K are discarded, dominated
// candidates pruned, and the best cutsPerNode kept.
func (m *mapper) enumerate(ctx context.Context) error {
	bound := m.opts.cutsPerNode()
	for i, v := range m.order {
		if i&127 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if v.IsInput() {
			continue
		}
		cands := m.faninCuts(v.Fanins[0].Node)
		for _, f := range v.Fanins[1:] {
			cands = m.mergeLists(cands, m.faninCuts(f.Node))
		}
		before := len(cands)
		cands = pruneDominated(cands)
		m.dominated += before - len(cands)
		m.rankCuts(cands)
		if len(cands) > bound {
			m.evicted += int64(len(cands) - bound)
			cands = cands[:bound]
		}
		d := &m.data[v.ID]
		d.cuts = cands
		d.est = cands[0].flow
		d.depth = cands[0].depth
		m.cutCount += len(cands)
	}
	return nil
}

// faninCuts returns a fanin's mergeable cut list: its own priority
// list plus its trivial cut {n} (inputs contribute only the trivial
// cut). The trivial cut is what lets a consumer keep n as a LUT input.
func (m *mapper) faninCuts(n *network.Node) []*cutSet {
	triv := &cutSet{leaves: []int32{int32(n.ID)}, sig: signature([]int32{int32(n.ID)})}
	own := m.data[n.ID].cuts
	out := make([]*cutSet, 0, len(own)+1)
	out = append(out, own...)
	return append(out, triv)
}

// mergeLists forms every union of one cut from each list that stays
// within K leaves.
func (m *mapper) mergeLists(as, bs []*cutSet) []*cutSet {
	out := make([]*cutSet, 0, len(as)*len(bs))
	for _, a := range as {
		for _, b := range bs {
			if c := mergeCuts(a, b, m.opts.K); c != nil {
				out = append(out, c)
			}
		}
	}
	return out
}

// mergeCuts unions two sorted leaf sets, or returns nil when the union
// exceeds k leaves. The signature union gives a cheap lower bound on
// the merged size before the real merge runs.
func mergeCuts(a, b *cutSet, k int) *cutSet {
	leaves := make([]int32, 0, len(a.leaves)+len(b.leaves))
	i, j := 0, 0
	for i < len(a.leaves) && j < len(b.leaves) {
		switch {
		case a.leaves[i] < b.leaves[j]:
			leaves = append(leaves, a.leaves[i])
			i++
		case a.leaves[i] > b.leaves[j]:
			leaves = append(leaves, b.leaves[j])
			j++
		default:
			leaves = append(leaves, a.leaves[i])
			i++
			j++
		}
		if len(leaves) > k {
			return nil
		}
	}
	for ; i < len(a.leaves); i++ {
		leaves = append(leaves, a.leaves[i])
	}
	for ; j < len(b.leaves); j++ {
		leaves = append(leaves, b.leaves[j])
	}
	if len(leaves) > k {
		return nil
	}
	return &cutSet{leaves: leaves, sig: a.sig | b.sig}
}

// pruneDominated removes duplicates and any cut whose leaves are a
// superset of another candidate's — the dominated cut can never beat
// the dominating one on area or feasibility.
func pruneDominated(cands []*cutSet) []*cutSet {
	out := cands[:0]
	for _, c := range cands {
		dominated := false
		for _, kept := range out {
			if kept.subsetOf(c) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		// Evict previously kept cuts the new one dominates.
		w := 0
		for _, kept := range out {
			if !c.subsetOf(kept) {
				out[w] = kept
				w++
			}
		}
		out = out[:w]
		out = append(out, c)
	}
	return out
}

// rankCuts computes each candidate's area flow and depth from the
// current leaf estimates and sorts best-first. The order is total —
// ties fall through to the leaf IDs — so ranking is deterministic.
func (m *mapper) rankCuts(cands []*cutSet) {
	for _, c := range cands {
		flow := 1.0
		var depth int32
		for _, l := range c.leaves {
			d := &m.data[l]
			if m.nw.Nodes[l].IsInput() {
				continue
			}
			flow += d.est / d.refs
			if d.depth > depth {
				depth = d.depth
			}
		}
		c.flow = flow
		c.depth = depth + 1
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.flow != b.flow {
			return a.flow < b.flow
		}
		if a.depth != b.depth {
			return a.depth < b.depth
		}
		if len(a.leaves) != len(b.leaves) {
			return len(a.leaves) < len(b.leaves)
		}
		for x := range a.leaves {
			if a.leaves[x] != b.leaves[x] {
				return a.leaves[x] < b.leaves[x]
			}
		}
		return false
	})
}

// rerank recomputes every priority list's ranking bottom-up under the
// current reference counts (an area-recovery pass re-sorts the stored
// lists; it does not re-merge).
func (m *mapper) rerank() {
	for _, v := range m.order {
		if v.IsInput() {
			continue
		}
		d := &m.data[v.ID]
		m.rankCuts(d.cuts)
		d.est = d.cuts[0].flow
		d.depth = d.cuts[0].depth
	}
}

// selectCover walks from the outputs down, selecting every required
// gate's best cut and requiring its gate leaves in turn. The result is
// m.selected in topological order.
func (m *mapper) selectCover() {
	required := make([]bool, len(m.nw.Nodes))
	for _, o := range m.nw.Outputs {
		if !o.Node.IsInput() {
			required[o.Node.ID] = true
		}
	}
	for _, l := range m.nw.Latches {
		if !l.D.IsInput() {
			required[l.D.ID] = true
		}
	}
	m.selected = m.selected[:0]
	for i := len(m.order) - 1; i >= 0; i-- {
		v := m.order[i]
		if v.IsInput() || !required[v.ID] {
			continue
		}
		m.selected = append(m.selected, v)
		for _, l := range m.data[v.ID].cuts[0].leaves {
			if !m.nw.Nodes[l].IsInput() {
				required[l] = true
			}
		}
	}
	// Reverse into topological order.
	for i, j := 0, len(m.selected)-1; i < j; i, j = i+1, j-1 {
		m.selected[i], m.selected[j] = m.selected[j], m.selected[i]
	}
	m.selMark = required
}

// recomputeRefs replaces the fanout-based reference estimates with the
// current cover's actual reference counts (floored at one), the
// exact-area refinement that steers the next ranking pass toward cuts
// whose logic is already shared.
func (m *mapper) recomputeRefs() {
	cnt := make([]int, len(m.nw.Nodes))
	for _, v := range m.selected {
		for _, l := range m.data[v.ID].cuts[0].leaves {
			cnt[l]++
		}
	}
	for _, o := range m.nw.Outputs {
		cnt[o.Node.ID]++
	}
	for _, l := range m.nw.Latches {
		cnt[l.D.ID]++
	}
	for id := range m.data {
		if cnt[id] < 1 {
			cnt[id] = 1
		}
		m.data[id].refs = float64(cnt[id])
	}
}
