package cut

import (
	"fmt"

	"chortle/internal/lut"
	"chortle/internal/network"
	"chortle/internal/truth"
)

// binarize bounds every gate's fanin at two by expanding wider gates
// into balanced trees of two-input gates of the same operation,
// returning the number of gates added. AND and OR are associative and
// edge polarities ride on the original leaf edges, so the function is
// preserved; the original node keeps its identity (outputs and latches
// still point at it) and becomes the tree's root. Cut enumeration
// needs the bound — a fanin-F gate has no non-trivial K-feasible cut
// for K < F — and the finer subject graph is what exposes reconvergent
// sharing to the cut merger.
func binarize(nw *network.Network) int {
	added := 0
	for _, n := range append([]*network.Node(nil), nw.Nodes...) {
		if n.IsInput() || len(n.Fanins) <= 2 {
			continue
		}
		level := n.Fanins
		for len(level) > 2 {
			next := make([]network.Fanin, 0, (len(level)+1)/2)
			for i := 0; i+1 < len(level); i += 2 {
				g := nw.AddGate(fmt.Sprintf("%s$b%d", n.Name, added), n.Op, level[i], level[i+1])
				added++
				next = append(next, network.Fanin{Node: g})
			}
			if len(level)%2 == 1 {
				next = append(next, level[len(level)-1])
			}
			level = next
		}
		n.Fanins = level
	}
	nw.Reindex()
	return added
}

// emit turns the selected cover into a LUT circuit: one lookup table
// per selected gate, named after the gate, programmed with the truth
// table of the gate's cone over its best cut's leaves.
func (m *mapper) emit() (*lut.Circuit, error) {
	ckt := lut.New(m.nw.Name, m.opts.K)
	for _, in := range m.nw.Inputs {
		ckt.AddInput(in.Name)
	}
	var owner []bool
	if m.opts.Provenance {
		owner = make([]bool, len(m.nw.Nodes))
	}
	for _, v := range m.selected {
		c := m.data[v.ID].cuts[0]
		cone, err := m.cone(v, c)
		if err != nil {
			return nil, err
		}
		table, err := coneTable(cone, c)
		if err != nil {
			return nil, err
		}
		inputs := make([]string, len(c.leaves))
		for i, l := range c.leaves {
			inputs[i] = m.nw.Nodes[l].Name
		}
		ckt.AddLUT(v.Name, inputs, table)
		if m.opts.Provenance {
			m.recordProvenance(ckt, v, c, cone, owner)
		}
	}
	for _, o := range m.nw.Outputs {
		ckt.MarkOutput(o.Name, o.Node.Name, o.Invert)
	}
	for _, l := range m.nw.Latches {
		ckt.AddLatch(l.Q, l.D.Name, l.DInv, l.Init)
	}
	return ckt, nil
}

// cone returns the gates of v's cone over cut c — every node on a path
// from the leaves to v, leaves excluded, v included — in topological
// order. A path that escapes to a primary input without crossing a
// leaf would mean c is not a cut of v; that is an internal invariant
// violation and reported as an error rather than mis-emitted.
func (m *mapper) cone(v *network.Node, c *cutSet) ([]*network.Node, error) {
	inCut := make(map[int]bool, len(c.leaves))
	for _, l := range c.leaves {
		inCut[int(l)] = true
	}
	seen := make(map[int]bool)
	var nodes []*network.Node
	var walk func(n *network.Node) error
	walk = func(n *network.Node) error {
		if inCut[n.ID] || seen[n.ID] {
			return nil
		}
		if n.IsInput() {
			return fmt.Errorf("cut: internal: leaves of %q miss input %q", v.Name, n.Name)
		}
		seen[n.ID] = true
		for _, f := range n.Fanins {
			if err := walk(f.Node); err != nil {
				return err
			}
		}
		nodes = append(nodes, n)
		return nil
	}
	if err := walk(v); err != nil {
		return nil, err
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cut: internal: trivial cut selected at %q", v.Name)
	}
	return nodes, nil
}

// coneTable computes the root's truth table over the cut leaves:
// leaf i is table variable i, cone gates combine their fanin tables
// under the edge polarities.
func coneTable(cone []*network.Node, c *cutSet) (truth.Table, error) {
	n := len(c.leaves)
	tabs := make(map[int]truth.Table, len(cone)+n)
	for i, l := range c.leaves {
		tabs[int(l)] = truth.Var(i, n)
	}
	for _, g := range cone {
		var t truth.Table
		for j, f := range g.Fanins {
			ft, ok := tabs[f.Node.ID]
			if !ok {
				return truth.Table{}, fmt.Errorf("cut: internal: cone of %q not topological at %q", cone[len(cone)-1].Name, f.Node.Name)
			}
			if f.Invert {
				ft = ft.Not()
			}
			switch {
			case j == 0:
				t = ft
			case g.Op == network.OpAnd:
				t = t.And(ft)
			default:
				t = t.Or(ft)
			}
		}
		tabs[g.ID] = t
	}
	return tabs[cone[len(cone)-1].ID], nil
}

// recordProvenance attaches the LUT's ancestry. Cut cones overlap
// where the cover duplicates shared logic, so Covers is a first-owner
// partition: each cone gate is credited to the first selected LUT
// (topological order) whose cone contains it, which keeps the records
// an exact partition of the prepared network's gates while the full
// overlapping cone stays recoverable from the subject graph.
func (m *mapper) recordProvenance(ckt *lut.Circuit, v *network.Node, c *cutSet, cone []*network.Node, owner []bool) {
	covers := make([]string, 0, len(cone))
	for _, g := range cone {
		if owner[g.ID] {
			continue
		}
		owner[g.ID] = true
		covers = append(covers, g.Name)
	}
	var faninLUTs []string
	for _, l := range c.leaves {
		if !m.nw.Nodes[l].IsInput() {
			faninLUTs = append(faninLUTs, m.nw.Nodes[l].Name)
		}
	}
	ckt.SetProvenance(v.Name, &lut.Provenance{
		Tree:      v.Name,
		Origin:    lut.OriginCut,
		Covers:    covers,
		PartOf:    partOf(covers, v),
		Shape:     fmt.Sprintf("cut(%d)", len(c.leaves)),
		FaninLUTs: faninLUTs,
	})
}

// partOf names the root gate for a LUT whose whole cone was already
// credited to earlier LUTs (pure duplication), so the record still
// says what the LUT computes.
func partOf(covers []string, v *network.Node) string {
	if len(covers) > 0 {
		return ""
	}
	return v.Name
}
