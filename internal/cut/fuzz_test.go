package cut

import (
	"fmt"
	"testing"

	"chortle/internal/network"
	"chortle/internal/verify"
)

// decodeDAG deterministically builds a valid network from a fuzz byte
// stream: byte 0 picks K, byte 1 the input count, then each pair of
// bytes adds one gate whose two fanins (with polarities and op folded
// into the same bytes) point somewhere earlier in the build. Every
// byte string decodes to a valid acyclic network, so the fuzzer
// explores mapper behavior, not parser rejections.
func decodeDAG(data []byte) (*network.Network, int) {
	if len(data) < 2 {
		data = append(data, 0, 0)
	}
	k := 2 + int(data[0])%5 // 2..6
	nIn := 2 + int(data[1])%7
	nw := network.New("fuzz")
	var pool []*network.Node
	for i := 0; i < nIn; i++ {
		pool = append(pool, nw.AddInput(fmt.Sprintf("i%d", i)))
	}
	body := data[2:]
	if len(body) > 128 {
		body = body[:128]
	}
	for i := 0; i+1 < len(body); i += 2 {
		a, b := body[i], body[i+1]
		fa := network.Fanin{Node: pool[int(a)%len(pool)], Invert: a&0x80 != 0}
		fb := network.Fanin{Node: pool[int(b)%len(pool)], Invert: b&0x40 != 0}
		op := network.OpAnd
		if b&0x80 != 0 {
			op = network.OpOr
		}
		fanins := []network.Fanin{fa, fb}
		// A high bit pair widens the gate so binarization fuzzes too.
		if a&0x40 != 0 {
			fanins = append(fanins, network.Fanin{Node: pool[int(a^b)%len(pool)]})
			if a&0x20 != 0 {
				fanins = append(fanins, network.Fanin{Node: pool[int(a+b)%len(pool)], Invert: true})
			}
		}
		pool = append(pool, nw.AddGate(fmt.Sprintf("g%d", i/2), op, fanins...))
	}
	nw.MarkOutput("out", pool[len(pool)-1], false)
	if len(pool) > nIn {
		nw.MarkOutput("mid", pool[nIn+(len(pool)-nIn)/2], true)
	}
	return nw, k
}

// FuzzCutMap fuzzes the full enumerate/select/emit pipeline on
// adversarial DAG shapes. Any error, invariant breach, or functional
// mismatch is a crash. CI runs a 30 s smoke (-fuzz with -fuzztime).
func FuzzCutMap(f *testing.F) {
	// Seeds steer the fuzzer toward the known hard shapes: deep
	// reconvergence (every gate feeding on the previous two) and
	// high-fanout diamonds (everything feeding on one early gate).
	deep := []byte{2, 2}
	for i := 0; i < 40; i++ {
		deep = append(deep, byte(i+1), byte(i+2)|0x80)
	}
	diamond := []byte{4, 3}
	for i := 0; i < 30; i++ {
		diamond = append(diamond, 3, byte(i)|0x40)
	}
	f.Add(deep)
	f.Add(diamond)
	f.Add([]byte{0, 0, 1, 2, 3, 4, 0x41, 0x82, 0xC3, 0x24})
	f.Add([]byte{5, 6, 0xFF, 0xFF, 0x7F, 0xBF, 0, 0, 9, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		nw, k := decodeDAG(data)
		if err := nw.Validate(); err != nil {
			t.Fatalf("generator produced invalid network: %v", err)
		}
		opts := DefaultOptions(k)
		opts.Provenance = true
		res, err := Map(nw, opts)
		if err != nil {
			t.Fatalf("Map(K=%d): %v", k, err)
		}
		for _, l := range res.Circuit.LUTs {
			if len(l.Inputs) > k {
				t.Fatalf("LUT %q has %d inputs, K=%d", l.Name, len(l.Inputs), k)
			}
		}
		gates := make(map[string]bool)
		for _, n := range res.Prepared.Nodes {
			if !n.IsInput() {
				gates[n.Name] = true
			}
		}
		if err := res.Circuit.CheckProvenance(gates); err != nil {
			t.Fatalf("cover partition: %v", err)
		}
		if err := verify.NetworkVsCircuit(nw, res.Circuit, 4, 1); err != nil {
			t.Fatalf("equivalence: %v", err)
		}
	})
}
