package lut

import "sort"

// CLB packing — the paper's last future-work item ("we would also like
// to extend our algorithm to handle commercial FPGA architectures").
// The original FPGA the paper cites ([Hsie88], the Xilinx XC2000/XC3000
// line) groups lookup tables into configurable logic blocks: a block
// provides two outputs and a shared pool of input pins, so two mapped
// LUTs can share one block when their combined distinct inputs fit.
// PackCLBs models that: a post-mapping pairing of LUTs under a block
// input budget, reporting how many blocks the mapped circuit needs —
// the area metric a commercial flow would bill.

// CLBSpec describes a configurable logic block.
type CLBSpec struct {
	// Inputs is the block's distinct-input budget (XC3000: 5).
	Inputs int
	// LUTsPerCLB is how many LUT outputs one block provides (XC3000: 2).
	LUTsPerCLB int
}

// XC3000 is the block profile of the Xilinx 3000-series CLB.
var XC3000 = CLBSpec{Inputs: 5, LUTsPerCLB: 2}

// PackCLBs greedily packs the circuit's LUTs into logic blocks: each
// block holds up to LUTsPerCLB LUTs whose combined distinct inputs stay
// within the budget. Pairing prefers LUTs that share the most inputs.
// Returns the number of blocks used (each unpaired LUT costs a block).
// The circuit itself is not modified.
func (c *Circuit) PackCLBs(spec CLBSpec) int {
	if spec.LUTsPerCLB < 2 || len(c.LUTs) == 0 {
		return len(c.LUTs)
	}
	// Sorted index for determinism.
	luts := append([]*LUT(nil), c.LUTs...)
	sort.Slice(luts, func(i, j int) bool { return luts[i].Name < luts[j].Name })

	inputSet := func(l *LUT) map[string]bool {
		s := make(map[string]bool, len(l.Inputs))
		for _, in := range l.Inputs {
			s[in] = true
		}
		return s
	}
	sets := make([]map[string]bool, len(luts))
	for i, l := range luts {
		sets[i] = inputSet(l)
	}
	unionSize := func(a, b map[string]bool) (union, shared int) {
		union = len(a)
		for in := range b {
			if a[in] {
				shared++
			} else {
				union++
			}
		}
		return union, shared
	}

	used := make([]bool, len(luts))
	blocks := 0
	for i := range luts {
		if used[i] {
			continue
		}
		used[i] = true
		blocks++
		members := 1
		cur := make(map[string]bool, len(sets[i]))
		for in := range sets[i] {
			cur[in] = true
		}
		for members < spec.LUTsPerCLB {
			best, bestShared, bestUnion := -1, -1, 0
			for j := i + 1; j < len(luts); j++ {
				if used[j] {
					continue
				}
				u, s := unionSize(cur, sets[j])
				if u > spec.Inputs {
					continue
				}
				// Prefer maximal sharing, then smaller union, then name
				// order (implicit via scan order).
				if s > bestShared || (s == bestShared && best >= 0 && u < bestUnion) {
					best, bestShared, bestUnion = j, s, u
				}
			}
			if best < 0 {
				break
			}
			used[best] = true
			for in := range sets[best] {
				cur[in] = true
			}
			members++
		}
	}
	return blocks
}
