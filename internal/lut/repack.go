package lut

import (
	"fmt"

	"chortle/internal/truth"
)

// Repacking: a peephole post-pass that merges a single-fanout LUT into
// its consumer whenever the combined distinct-input count fits K.
//
// Chortle charges one root-LUT pin per *leaf edge* of a tree (the
// paper's per-edge duplication), so a signal feeding a tree twice —
// reconvergent fanout, "such as XOR, which Chortle cannot find" — costs
// two pins in the DP even though the physical LUT needs one. After
// reconstruction the duplicate pins are already shared, which can leave
// adjacent LUT pairs whose union of inputs fits a single table. Merging
// them recovers part of the reconvergence loss without touching the
// mapping algorithm; it is a first step toward the paper's
// reconvergent-fanout future work (and toward Chortle-crf).

// Repack merges single-fanout LUTs into their consumers while the
// merged input set stays within K, repeating to a fixed point. Returns
// the number of LUTs eliminated. Functionality is preserved (merged
// tables are recomputed exactly).
func (c *Circuit) Repack() (int, error) {
	removed := 0
	for {
		merged, err := c.repackOnce()
		if err != nil {
			return removed, err
		}
		if merged == 0 {
			return removed, nil
		}
		removed += merged
	}
}

func (c *Circuit) repackOnce() (int, error) {
	order, err := c.topoOrder()
	if err != nil {
		return 0, err
	}
	// Fanout: uses as LUT inputs (deduplicated per consumer pin list —
	// each mention counts, a double-pin consumer still counts twice but
	// merging handles it) plus circuit outputs.
	fanout := make(map[string]int)
	consumer := make(map[string]*LUT)
	for _, l := range c.LUTs {
		for _, in := range l.Inputs {
			fanout[in]++
			consumer[in] = l
		}
	}
	for _, o := range c.Outputs {
		fanout[o.Signal]++
	}
	for _, l := range c.Latches {
		fanout[l.D]++
	}

	merged := 0
	for _, l := range order {
		if fanout[l.Name] != 1 {
			continue
		}
		m := consumer[l.Name]
		if m == nil || m == l {
			continue
		}
		// Combined inputs: m's inputs with l replaced by l's inputs.
		var inputs []string
		seen := map[string]bool{}
		add := func(name string) {
			if !seen[name] {
				seen[name] = true
				inputs = append(inputs, name)
			}
		}
		for _, in := range m.Inputs {
			if in == l.Name {
				for _, lin := range l.Inputs {
					add(lin)
				}
			} else {
				add(in)
			}
		}
		if len(inputs) > c.K {
			continue
		}
		idx := make(map[string]int, len(inputs))
		for i, in := range inputs {
			idx[in] = i
		}
		mOld := m.Table
		mInputs := append([]string(nil), m.Inputs...)
		table := truth.FromFunc(len(inputs), func(assign uint) bool {
			// Evaluate l on the merged assignment, then m.
			var la uint
			for i, lin := range l.Inputs {
				if assign>>uint(idx[lin])&1 == 1 {
					la |= 1 << uint(i)
				}
			}
			lval := l.Table.Eval(la)
			var ma uint
			for i, min := range mInputs {
				var v bool
				if min == l.Name {
					v = lval
				} else {
					v = assign>>uint(idx[min])&1 == 1
				}
				if v {
					ma |= 1 << uint(i)
				}
			}
			return mOld.Eval(ma)
		})
		m.Inputs = inputs
		m.Table = table
		c.foldProvenance(l.Name, m)
		c.removeLUT(l.Name)
		merged++
		// Recompute bookkeeping lazily: restart this pass.
		return merged, nil
	}
	return merged, nil
}

// foldProvenance moves the merged LUT's covered gates into the
// consumer's provenance record and refreshes the consumer's fanin-LUT
// edges, so repacking keeps the cover partition intact. No-op when the
// circuit carries no provenance.
func (c *Circuit) foldProvenance(merged string, into *LUT) {
	if c.prov == nil {
		return
	}
	mp, ip := c.prov[merged], c.prov[into.Name]
	if ip != nil {
		if mp != nil {
			ip.Covers = append(ip.Covers, mp.Covers...)
		}
		if len(ip.Covers) > 0 {
			ip.PartOf = ""
		}
		ip.FaninLUTs = ip.FaninLUTs[:0]
		for _, in := range into.Inputs {
			if c.byName[in] != nil {
				ip.FaninLUTs = append(ip.FaninLUTs, in)
			}
		}
	}
	delete(c.prov, merged)
}

// removeLUT deletes the named LUT (which must be unreferenced).
func (c *Circuit) removeLUT(name string) {
	for i, l := range c.LUTs {
		if l.Name == name {
			c.LUTs = append(c.LUTs[:i], c.LUTs[i+1:]...)
			delete(c.byName, name)
			return
		}
	}
	panic(fmt.Sprintf("lut: removeLUT(%q): not found", name))
}
