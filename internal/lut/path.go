package lut

import "fmt"

// Critical-path extraction: the longest LUT-level chain from a primary
// input (or latch output) to a primary output (or latch data input),
// under the unit-delay model the depth statistics use. Useful for
// reporting which logic limits a mapped design — the quantity the
// depth-oriented mapping mode optimizes.

// PathStep is one element of a critical path.
type PathStep struct {
	Signal string
	Level  int // 0 for inputs, LUT level otherwise
}

// CriticalPath returns one longest input-to-output path through the
// circuit as an ordered signal list (input first). An empty circuit
// yields an empty path.
func (c *Circuit) CriticalPath() ([]PathStep, error) {
	order, err := c.topoOrder()
	if err != nil {
		return nil, err
	}
	level := make(map[string]int, len(order))
	prev := make(map[string]string, len(order))
	for _, l := range order {
		best, bestIn := 0, ""
		for _, in := range l.Inputs {
			if lv := level[in]; lv >= best {
				// >= prefers the later input deterministically only if
				// strictly deeper; tie-break by name for stability.
				if lv > best || bestIn == "" || in < bestIn {
					best, bestIn = lv, in
				}
			}
		}
		level[l.Name] = best + 1
		prev[l.Name] = bestIn
	}
	// Deepest endpoint among outputs and latch data inputs.
	endSignals := make([]string, 0, len(c.Outputs)+len(c.Latches))
	for _, o := range c.Outputs {
		endSignals = append(endSignals, o.Signal)
	}
	for _, l := range c.Latches {
		endSignals = append(endSignals, l.D)
	}
	deepest, deep := "", -1
	for _, s := range endSignals {
		if lv := level[s]; lv > deep || (lv == deep && s < deepest) {
			deep, deepest = lv, s
		}
	}
	if deepest == "" {
		return nil, fmt.Errorf("lut circuit %q: no output endpoints", c.Name)
	}
	// Walk back to an input.
	var rev []PathStep
	for s := deepest; s != ""; s = prev[s] {
		rev = append(rev, PathStep{Signal: s, Level: level[s]})
		if c.byName[s] == nil {
			break // reached a primary input / latch output
		}
	}
	path := make([]PathStep, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	return path, nil
}
