package lut

import (
	"strings"
	"testing"

	"chortle/internal/truth"
)

func TestCriticalPath(t *testing.T) {
	c := sampleCircuit() // l1(a,b) -> l2(l1,c,d) -> y
	path, err := c.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Fatalf("path = %v, want input -> l1 -> l2", path)
	}
	if path[len(path)-1].Signal != "l2" || path[len(path)-1].Level != 2 {
		t.Fatalf("endpoint = %+v", path[len(path)-1])
	}
	if path[1].Signal != "l1" || path[0].Level != 0 {
		t.Fatalf("path = %v", path)
	}
	// Levels strictly increase along the path.
	for i := 1; i < len(path); i++ {
		if path[i].Level != path[i-1].Level+1 {
			t.Fatalf("levels not consecutive: %v", path)
		}
	}
}

func TestCriticalPathThroughLatchD(t *testing.T) {
	c := New("seq", 2)
	c.AddInput("q")
	and := truth.Var(0, 2).And(truth.Var(1, 2))
	c.AddInput("en")
	c.AddLUT("d", []string{"q", "en"}, and)
	c.AddLatch("q", "d", false, '0')
	// No primary outputs: the latch D is the only endpoint.
	path, err := c.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if path[len(path)-1].Signal != "d" {
		t.Fatalf("path should end at the latch data input: %v", path)
	}
}

func TestWriteVerilog(t *testing.T) {
	c := sampleCircuit()
	var sb strings.Builder
	if err := c.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{"module", "endmodule", "assign", "input a;", "output y;"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Verilog missing %q:\n%s", want, text)
		}
	}
	// The inverted output z gets a complement.
	if !strings.Contains(text, "~") {
		t.Fatalf("no complement emitted for inverted output:\n%s", text)
	}
}

func TestWriteVerilogSequentialAndSanitized(t *testing.T) {
	c := New("seq$top", 2)
	c.AddInput("q0")
	c.AddInput("in$weird")
	and := truth.Var(0, 2).And(truth.Var(1, 2))
	c.AddLUT("d$0", []string{"q0", "in$weird"}, and)
	c.AddLatch("q0", "d$0", true, '1')
	c.MarkOutput("out", "d$0", false)
	var sb strings.Builder
	if err := c.WriteVerilog(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{"input clk;", "always @(posedge clk)", "<= ~"} {
		if !strings.Contains(text, want) {
			t.Fatalf("sequential Verilog missing %q:\n%s", want, text)
		}
	}
}
