package lut

import (
	"testing"

	"chortle/internal/truth"
)

func TestPackCLBsPairsSharers(t *testing.T) {
	c := New("p", 4)
	for _, in := range []string{"a", "b", "c", "d", "e", "f"} {
		c.AddInput(in)
	}
	and2 := truth.Var(0, 2).And(truth.Var(1, 2))
	or3 := truth.Var(0, 3).Or(truth.Var(1, 3)).Or(truth.Var(2, 3))
	// l1 and l2 share {a,b}: union 3 <= 5, pack together.
	c.AddLUT("l1", []string{"a", "b"}, and2)
	c.AddLUT("l2", []string{"a", "b", "c"}, or3)
	// l3 uses disjoint inputs {d,e,f}: union with either is 5..6.
	c.AddLUT("l3", []string{"d", "e", "f"}, or3)
	c.MarkOutput("x", "l1", false)
	c.MarkOutput("y", "l2", false)
	c.MarkOutput("z", "l3", false)

	if got := c.PackCLBs(XC3000); got != 2 {
		t.Fatalf("PackCLBs = %d blocks, want 2 (l1+l2 share, l3 alone or paired)", got)
	}
}

func TestPackCLBsRespectsInputBudget(t *testing.T) {
	c := New("q", 4)
	for _, in := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		c.AddInput(in)
	}
	or4 := truth.FromFunc(4, func(m uint) bool { return m != 0 })
	c.AddLUT("l1", []string{"a", "b", "c", "d"}, or4)
	c.AddLUT("l2", []string{"e", "f", "g", "h"}, or4)
	c.MarkOutput("x", "l1", false)
	c.MarkOutput("y", "l2", false)
	// Disjoint 4+4 = 8 inputs cannot share a 5-input block.
	if got := c.PackCLBs(XC3000); got != 2 {
		t.Fatalf("PackCLBs = %d, want 2", got)
	}
	// A 9-input block takes both.
	if got := c.PackCLBs(CLBSpec{Inputs: 9, LUTsPerCLB: 2}); got != 1 {
		t.Fatalf("wide block: PackCLBs = %d, want 1", got)
	}
}

func TestPackCLBsDeterministicAndBounded(t *testing.T) {
	c := sampleCircuit()
	a := c.PackCLBs(XC3000)
	b := c.PackCLBs(XC3000)
	if a != b {
		t.Fatal("PackCLBs not deterministic")
	}
	if a < (c.Count()+1)/2 || a > c.Count() {
		t.Fatalf("PackCLBs = %d outside [ceil(n/2), n] for n=%d", a, c.Count())
	}
}
