package lut

import (
	"fmt"
	"sort"
	"strings"
)

// Per-LUT provenance: the algorithm-level "why" behind every emitted
// lookup table. The mapper records, for each LUT, which network gate
// nodes it absorbed, which decomposition shape the DP chose at its
// root, how the owning tree was realized (fresh solve, memo reuse,
// template replay, bin packing, budget degradation), and how much
// search effort the tree's solve metered. Recording is opt-in
// (core.Options.Provenance) and strictly passive — the mapped circuit
// is byte-identical with or without it — but the records ride on the
// Circuit itself so they survive emission, duplication and repacking,
// and downstream exporters (internal/explain) can turn them into DOT
// graphs and run reports.

// Origin says how the tree that emitted a LUT was realized.
type Origin uint8

const (
	// OriginUnknown is the zero value: no origin recorded.
	OriginUnknown Origin = iota
	// OriginFresh marks a tree mapped by its own exhaustive DP solve.
	OriginFresh
	// OriginMemo marks a tree that reused the DP tables of a
	// structurally identical tree solved earlier in the same run.
	OriginMemo
	// OriginReplay marks a tree emitted by replaying a recorded
	// emission template (the fast half of a memo hit).
	OriginReplay
	// OriginBinPack marks a tree mapped with the Chortle-crf-style
	// first-fit-decreasing strategy (Options.Strategy).
	OriginBinPack
	// OriginDegraded marks a tree remapped with bin packing after its
	// exhaustive solve exhausted the search budget.
	OriginDegraded
	// OriginCut marks a LUT selected by the priority-cut DAG engine
	// (internal/cut): one K-feasible cut chosen by the area-flow cover.
	OriginCut
)

var originNames = [...]string{
	OriginUnknown:  "unknown",
	OriginFresh:    "fresh",
	OriginMemo:     "memo",
	OriginReplay:   "replay",
	OriginBinPack:  "binpack",
	OriginDegraded: "degraded",
	OriginCut:      "cut",
}

func (o Origin) String() string {
	if int(o) < len(originNames) {
		return originNames[o]
	}
	return fmt.Sprintf("origin(%d)", uint8(o))
}

// Searched reports whether the LUT's structure came out of the
// exhaustive decomposition search (directly or via verified reuse) as
// opposed to bin packing. Memo hits and template replays reproduce the
// exact decisions of a fresh solve, so they count as searched — this is
// the mode-independent classification the DOT exporter colors by.
func (o Origin) Searched() bool {
	return o == OriginFresh || o == OriginMemo || o == OriginReplay
}

// Provenance is the recorded ancestry of one LUT.
type Provenance struct {
	// Tree is the name of the fanout-free tree root whose realization
	// emitted this LUT.
	Tree string
	// Origin says how that tree was realized.
	Origin Origin
	// Covers lists the network gate nodes this LUT fully absorbed, in
	// emission order. Across a provenance-recorded mapping the Covers
	// sets partition the prepared network's gate nodes: every gate
	// appears in exactly one LUT's Covers.
	Covers []string
	// PartOf names the gate node this LUT partially computes when it
	// covers no complete node — an intermediate LUT introduced by the
	// decomposition search, or an under-filled bin from the packing
	// strategy. Empty when Covers is non-empty.
	PartOf string
	// Shape describes the decomposition the DP chose at this LUT's
	// root: the op, the root utilization, and one token per placement
	// ("pin" for a finished signal, "merge(...)" for an absorbed child
	// root LUT with its own placements, "grpN" for an intermediate
	// group over N fanins). Bin-packed LUTs record "pack(N)" with their
	// input count.
	Shape string
	// FaninLUTs lists the inputs of this LUT that are other LUTs (in
	// input order) — the LUT-to-LUT edges of the mapped circuit.
	FaninLUTs []string
	// WorkUnits is the search effort the owning tree's DP solve
	// metered. Zero for reused solves (memo, replay) and for the
	// unmetered packing paths.
	WorkUnits int64
}

// SetProvenance attaches a provenance record to the named LUT,
// replacing any previous record.
func (c *Circuit) SetProvenance(name string, p *Provenance) {
	if c.prov == nil {
		c.prov = make(map[string]*Provenance)
	}
	c.prov[name] = p
}

// ProvenanceOf returns the named LUT's provenance record, or nil when
// none was recorded (provenance off, or an unknown name).
func (c *Circuit) ProvenanceOf(name string) *Provenance { return c.prov[name] }

// HasProvenance reports whether any provenance was recorded.
func (c *Circuit) HasProvenance() bool { return len(c.prov) > 0 }

// OriginCounts histograms the circuit's LUTs by origin name — the
// breakdown the run report renders. LUTs without provenance count
// under "unknown".
func (c *Circuit) OriginCounts() map[string]int {
	out := make(map[string]int)
	for _, l := range c.LUTs {
		if p := c.prov[l.Name]; p != nil {
			out[p.Origin.String()]++
		} else {
			out[OriginUnknown.String()]++
		}
	}
	return out
}

// ProvenanceTrees returns the distinct provenance tree names in first-
// emission order — the cluster order of the DOT exporter.
func (c *Circuit) ProvenanceTrees() []string {
	var out []string
	seen := make(map[string]bool)
	for _, l := range c.LUTs {
		p := c.prov[l.Name]
		if p == nil || seen[p.Tree] {
			continue
		}
		seen[p.Tree] = true
		out = append(out, p.Tree)
	}
	return out
}

// CheckProvenance verifies the provenance invariants against the set
// of gate-node names the mapping covered: every LUT carries a record
// with a non-empty covered set (Covers, or PartOf for intermediate
// LUTs), the Covers sets are disjoint, and their union is exactly
// gates. It is the library half of the mapper's invariant test.
func (c *Circuit) CheckProvenance(gates map[string]bool) error {
	owned := make(map[string]string, len(gates))
	for _, l := range c.LUTs {
		p := c.prov[l.Name]
		if p == nil {
			return fmt.Errorf("lut %q has no provenance record", l.Name)
		}
		if len(p.Covers) == 0 && p.PartOf == "" {
			return fmt.Errorf("lut %q covers nothing and is part of nothing", l.Name)
		}
		if p.Tree == "" {
			return fmt.Errorf("lut %q has no owning tree", l.Name)
		}
		if p.Origin == OriginUnknown {
			return fmt.Errorf("lut %q has unknown origin", l.Name)
		}
		for _, n := range p.Covers {
			if prev, dup := owned[n]; dup {
				return fmt.Errorf("gate %q covered by both %q and %q", n, prev, l.Name)
			}
			owned[n] = l.Name
			if !gates[n] {
				return fmt.Errorf("lut %q covers %q, which is not a mapped gate", l.Name, n)
			}
		}
	}
	if len(owned) != len(gates) {
		var missing []string
		for g := range gates {
			if _, ok := owned[g]; !ok {
				missing = append(missing, g)
			}
		}
		sort.Strings(missing)
		return fmt.Errorf("%d gates uncovered: %s", len(missing), strings.Join(missing, ", "))
	}
	return nil
}
