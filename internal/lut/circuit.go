// Package lut represents circuits of K-input lookup tables — the output
// of technology mapping. Each LUT carries its truth table, so a mapped
// circuit is fully specified and can be simulated, validated and
// exported to BLIF. Per the paper's cost model, area is simply the
// number of LUTs; output inverters are free (absorbed by the consuming
// block or IO), so circuit outputs carry a polarity flag.
package lut

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"chortle/internal/truth"
)

// LUT is one K-input lookup table instance. Inputs name primary inputs
// or other LUTs; Table is the programmed function over those inputs in
// order (variable i of the table = Inputs[i]).
type LUT struct {
	Name   string
	Inputs []string
	Table  truth.Table
}

// Output designates a circuit output signal, optionally inverted.
type Output struct {
	Name   string
	Signal string
	Invert bool
}

// Latch is a sequential element riding through the combinational
// mapping: Q is a circuit input, D the (possibly inverted) signal that
// feeds it at the next clock.
type Latch struct {
	Q    string
	D    string
	DInv bool
	Init byte
}

// Circuit is a network of K-input LUTs.
type Circuit struct {
	Name    string
	K       int
	Inputs  []string
	LUTs    []*LUT
	Outputs []Output
	Latches []Latch

	byName map[string]*LUT
	// prov holds per-LUT provenance records when the mapper ran with
	// provenance recording on (see provenance.go). Nil otherwise.
	prov map[string]*Provenance
}

// New returns an empty LUT circuit for K-input lookup tables.
func New(name string, k int) *Circuit {
	if k < 1 || k > truth.MaxVars {
		panic(fmt.Sprintf("lut: K=%d out of range [1,%d]", k, truth.MaxVars))
	}
	return &Circuit{Name: name, K: k, byName: make(map[string]*LUT)}
}

// AddInput declares a primary input signal.
func (c *Circuit) AddInput(name string) {
	c.Inputs = append(c.Inputs, name)
}

// AddLUT appends a lookup table; the name must be unique and the input
// count must not exceed K.
func (c *Circuit) AddLUT(name string, inputs []string, table truth.Table) *LUT {
	if len(inputs) > c.K {
		panic(fmt.Sprintf("lut: %q has %d inputs, K=%d", name, len(inputs), c.K))
	}
	if table.N != len(inputs) {
		panic(fmt.Sprintf("lut: %q table arity %d != %d inputs", name, table.N, len(inputs)))
	}
	if _, dup := c.byName[name]; dup {
		panic(fmt.Sprintf("lut: duplicate LUT name %q", name))
	}
	l := &LUT{Name: name, Inputs: append([]string(nil), inputs...), Table: table}
	c.LUTs = append(c.LUTs, l)
	c.byName[name] = l
	return l
}

// MarkOutput designates signal (a PI or LUT name), optionally inverted,
// as the circuit output called name.
func (c *Circuit) MarkOutput(name, signal string, invert bool) {
	c.Outputs = append(c.Outputs, Output{Name: name, Signal: signal, Invert: invert})
}

// AddLatch registers a latch: q must be a circuit input, d a signal.
func (c *Circuit) AddLatch(q, d string, dInv bool, init byte) {
	c.Latches = append(c.Latches, Latch{Q: q, D: d, DInv: dInv, Init: init})
}

// Find returns the LUT with the given name, or nil.
func (c *Circuit) Find(name string) *LUT { return c.byName[name] }

// Count returns the number of LUTs, the paper's area metric.
func (c *Circuit) Count() int { return len(c.LUTs) }

// isInput reports whether name is a primary input signal.
func (c *Circuit) isInput(name string) bool {
	for _, in := range c.Inputs {
		if in == name {
			return true
		}
	}
	return false
}

// Validate checks the circuit structure: unique names, defined input
// signals, fanin bounds, table arities and acyclicity.
func (c *Circuit) Validate() error {
	seen := make(map[string]bool, len(c.Inputs)+len(c.LUTs))
	for _, in := range c.Inputs {
		if seen[in] {
			return fmt.Errorf("lut circuit %q: duplicate input %q", c.Name, in)
		}
		seen[in] = true
	}
	for _, l := range c.LUTs {
		if seen[l.Name] {
			return fmt.Errorf("lut circuit %q: duplicate name %q", c.Name, l.Name)
		}
		seen[l.Name] = true
		if len(l.Inputs) > c.K {
			return fmt.Errorf("lut circuit %q: %q exceeds K=%d inputs", c.Name, l.Name, c.K)
		}
		if l.Table.N != len(l.Inputs) {
			return fmt.Errorf("lut circuit %q: %q table arity mismatch", c.Name, l.Name)
		}
	}
	for _, l := range c.LUTs {
		for _, in := range l.Inputs {
			if !seen[in] {
				return fmt.Errorf("lut circuit %q: %q uses undefined signal %q", c.Name, l.Name, in)
			}
		}
	}
	for _, o := range c.Outputs {
		if !seen[o.Signal] {
			return fmt.Errorf("lut circuit %q: output %q references undefined %q", c.Name, o.Name, o.Signal)
		}
	}
	for _, l := range c.Latches {
		if !c.isInput(l.Q) {
			return fmt.Errorf("lut circuit %q: latch output %q is not a circuit input", c.Name, l.Q)
		}
		if !seen[l.D] {
			return fmt.Errorf("lut circuit %q: latch %q data references undefined %q", c.Name, l.Q, l.D)
		}
	}
	if _, err := c.topoOrder(); err != nil {
		return err
	}
	return nil
}

// topoOrder returns LUTs with fanins first, or an error on a cycle.
func (c *Circuit) topoOrder() ([]*LUT, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make(map[string]uint8, len(c.LUTs))
	var order []*LUT
	var visit func(l *LUT) error
	visit = func(l *LUT) error {
		switch state[l.Name] {
		case gray:
			return fmt.Errorf("lut circuit %q: cycle through %q", c.Name, l.Name)
		case black:
			return nil
		}
		state[l.Name] = gray
		for _, in := range l.Inputs {
			if dep := c.byName[in]; dep != nil {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[l.Name] = black
		order = append(order, l)
		return nil
	}
	for _, l := range c.LUTs {
		if err := visit(l); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Simulate evaluates the circuit on 64 parallel input patterns.
func (c *Circuit) Simulate(assign map[string]uint64) (map[string]uint64, error) {
	order, err := c.topoOrder()
	if err != nil {
		return nil, err
	}
	val := make(map[string]uint64, len(order)+len(c.Inputs))
	for _, in := range c.Inputs {
		val[in] = assign[in]
	}
	for _, l := range order {
		var w uint64
		// Evaluate the table bit-parallel: for each table row m, select
		// the patterns whose inputs match m.
		for b := 0; b < 64; b++ {
			var m uint
			for i, in := range l.Inputs {
				if val[in]>>uint(b)&1 == 1 {
					m |= 1 << uint(i)
				}
			}
			if l.Table.Eval(m) {
				w |= 1 << uint(b)
			}
		}
		val[l.Name] = w
	}
	out := make(map[string]uint64, len(c.Outputs)+len(c.Latches))
	for _, o := range c.Outputs {
		w := val[o.Signal]
		if o.Invert {
			w = ^w
		}
		out[o.Name] = w
	}
	for _, l := range c.Latches {
		w := val[l.D]
		if l.DInv {
			w = ^w
		}
		out["$latch$"+l.Q] = w
	}
	return out, nil
}

// Stats summarizes a mapped circuit.
type Stats struct {
	LUTs        int
	Depth       int         // LUT levels on the longest path
	Utilization map[int]int // histogram: used-input count -> LUTs
}

// Stats computes area/depth/utilization statistics.
func (c *Circuit) Stats() (Stats, error) {
	order, err := c.topoOrder()
	if err != nil {
		return Stats{}, err
	}
	s := Stats{LUTs: len(c.LUTs), Utilization: make(map[int]int)}
	depth := make(map[string]int, len(order))
	for _, l := range order {
		d := 0
		for _, in := range l.Inputs {
			if dd := depth[in]; dd > d {
				d = dd
			}
		}
		depth[l.Name] = d + 1
		if depth[l.Name] > s.Depth {
			s.Depth = depth[l.Name]
		}
		s.Utilization[len(l.Inputs)]++
	}
	return s, nil
}

// Levels returns every LUT's level — 1 + the maximum level of its LUT
// fanins, with primary inputs at level 0 — in topological order
// alongside the LUTs themselves. The observability layer uses it to
// histogram a mapped circuit by depth.
func (c *Circuit) Levels() (map[string]int, error) {
	order, err := c.topoOrder()
	if err != nil {
		return nil, err
	}
	levels := make(map[string]int, len(order))
	for _, l := range order {
		d := 0
		for _, in := range l.Inputs {
			if dd := levels[in]; dd > d {
				d = dd
			}
		}
		levels[l.Name] = d + 1
	}
	return levels, nil
}

// WriteBLIF emits the circuit as a BLIF model whose .names tables are
// the LUT truth tables (minterm form). Inverted outputs get an explicit
// inverter table.
func (c *Circuit) WriteBLIF(w io.Writer) error {
	bw := bufio.NewWriter(w)
	latchQ := make(map[string]bool, len(c.Latches))
	for _, l := range c.Latches {
		latchQ[l.Q] = true
	}
	fmt.Fprintf(bw, ".model %s\n.inputs", c.Name)
	for _, in := range c.Inputs {
		if latchQ[in] {
			continue // driven by a .latch line, not a primary input
		}
		fmt.Fprintf(bw, " %s", in)
	}
	fmt.Fprint(bw, "\n.outputs")
	outs := append([]Output(nil), c.Outputs...)
	sort.Slice(outs, func(i, j int) bool { return outs[i].Name < outs[j].Name })
	for _, o := range outs {
		fmt.Fprintf(bw, " %s", o.Name)
	}
	fmt.Fprintln(bw)
	order, err := c.topoOrder()
	if err != nil {
		return err
	}
	reserved := make(map[string]bool)
	for _, in := range c.Inputs {
		reserved[in] = true
	}
	for _, o := range outs {
		reserved[o.Name] = true
	}
	emit := make(map[string]string, len(order))
	for _, in := range c.Inputs {
		emit[in] = in
	}
	for _, l := range order {
		name := l.Name
		for reserved[name] {
			name += "$int"
		}
		reserved[name] = true
		emit[l.Name] = name
	}
	for _, l := range order {
		fmt.Fprint(bw, ".names")
		for _, in := range l.Inputs {
			fmt.Fprintf(bw, " %s", emit[in])
		}
		fmt.Fprintf(bw, " %s\n", emit[l.Name])
		if ok, v := l.Table.IsConst(); ok {
			// Constant LUT: an empty cover is constant 0; constant 1 is
			// a single all-dashes row over the declared inputs.
			if v {
				if len(l.Inputs) == 0 {
					fmt.Fprintln(bw, "1")
				} else {
					fmt.Fprintf(bw, "%s 1\n", strings.Repeat("-", len(l.Inputs)))
				}
			}
			continue
		}
		for _, row := range l.Table.Minterms() {
			fmt.Fprintf(bw, "%s 1\n", row)
		}
	}
	for _, o := range outs {
		if emit[o.Signal] == o.Name && !o.Invert {
			continue
		}
		fmt.Fprintf(bw, ".names %s %s\n", emit[o.Signal], o.Name)
		if o.Invert {
			fmt.Fprintln(bw, "0 1")
		} else {
			fmt.Fprintln(bw, "1 1")
		}
	}
	for _, l := range c.Latches {
		dname := emit[l.D]
		if l.DInv {
			inv := l.Q + "$D"
			for reserved[inv] {
				inv += "$"
			}
			reserved[inv] = true
			fmt.Fprintf(bw, ".names %s %s\n0 1\n", dname, inv)
			dname = inv
		}
		fmt.Fprintf(bw, ".latch %s %s %c\n", dname, l.Q, l.Init)
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// String renders a compact description for debugging.
func (c *Circuit) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "circuit %s: K=%d, %d LUTs\n", c.Name, c.K, len(c.LUTs))
	for _, l := range c.LUTs {
		fmt.Fprintf(&sb, "  %s = LUT(%s) %v\n", l.Name, strings.Join(l.Inputs, ","), l.Table)
	}
	for _, o := range c.Outputs {
		inv := ""
		if o.Invert {
			inv = "!"
		}
		fmt.Fprintf(&sb, "  output %s = %s%s\n", o.Name, inv, o.Signal)
	}
	return sb.String()
}
