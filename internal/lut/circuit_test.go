package lut

import (
	"strings"
	"testing"

	"chortle/internal/truth"
)

func sampleCircuit() *Circuit {
	c := New("sample", 3)
	c.AddInput("a")
	c.AddInput("b")
	c.AddInput("c")
	c.AddInput("d")
	and := truth.Var(0, 2).And(truth.Var(1, 2))
	c.AddLUT("l1", []string{"a", "b"}, and)
	maj := truth.FromFunc(3, func(m uint) bool {
		ones := 0
		for i := uint(0); i < 3; i++ {
			if m>>i&1 == 1 {
				ones++
			}
		}
		return ones >= 2
	})
	c.AddLUT("l2", []string{"l1", "c", "d"}, maj)
	c.MarkOutput("y", "l2", false)
	c.MarkOutput("z", "l1", true)
	return c
}

func TestValidateAndCount(t *testing.T) {
	c := sampleCircuit()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Count() != 2 {
		t.Fatalf("Count = %d", c.Count())
	}
}

func TestValidateRejects(t *testing.T) {
	c := New("bad", 2)
	c.AddInput("a")
	c.AddLUT("l", []string{"a", "ghost"}, truth.Var(0, 2))
	c.MarkOutput("y", "l", false)
	if err := c.Validate(); err == nil {
		t.Fatal("undefined signal accepted")
	}

	cyc := New("cyc", 2)
	cyc.AddInput("a")
	l1 := cyc.AddLUT("l1", []string{"a", "a"}, truth.Var(0, 2))
	l2 := cyc.AddLUT("l2", []string{"l1", "a"}, truth.Var(0, 2))
	l1.Inputs[1] = "l2"
	_ = l2
	cyc.MarkOutput("y", "l2", false)
	if err := cyc.Validate(); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestAddLUTPanicsOnTooManyInputs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := New("p", 2)
	c.AddInput("a")
	c.AddInput("b")
	c.AddInput("x")
	c.AddLUT("l", []string{"a", "b", "x"}, truth.Const(3, true))
}

func TestSimulate(t *testing.T) {
	c := sampleCircuit()
	// Exhaustive over 4 inputs (16 patterns).
	assign := map[string]uint64{}
	for i, in := range []string{"a", "b", "c", "d"} {
		var w uint64
		for m := uint(0); m < 16; m++ {
			if m>>uint(i)&1 == 1 {
				w |= 1 << m
			}
		}
		assign[in] = w
	}
	got, err := c.Simulate(assign)
	if err != nil {
		t.Fatal(err)
	}
	for m := uint(0); m < 16; m++ {
		a, b := m&1 == 1, m>>1&1 == 1
		cc, d := m>>2&1 == 1, m>>3&1 == 1
		l1 := a && b
		ones := 0
		for _, v := range []bool{l1, cc, d} {
			if v {
				ones++
			}
		}
		wantY := ones >= 2
		wantZ := !l1
		if got["y"]>>m&1 == 1 != wantY {
			t.Fatalf("y wrong at %04b", m)
		}
		if got["z"]>>m&1 == 1 != wantZ {
			t.Fatalf("z wrong at %04b", m)
		}
	}
}

func TestStats(t *testing.T) {
	c := sampleCircuit()
	s, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.LUTs != 2 || s.Depth != 2 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.Utilization[2] != 1 || s.Utilization[3] != 1 {
		t.Fatalf("Utilization = %v", s.Utilization)
	}
}

func TestWriteBLIF(t *testing.T) {
	c := sampleCircuit()
	var sb strings.Builder
	if err := c.WriteBLIF(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{".model sample", ".inputs a b c d", ".outputs y z", ".names"} {
		if !strings.Contains(text, want) {
			t.Fatalf("BLIF missing %q:\n%s", want, text)
		}
	}
	// The inverted output z must get an inverter table.
	if !strings.Contains(text, "0 1") {
		t.Fatalf("missing inverter row for inverted output:\n%s", text)
	}
}

func TestWriteBLIFConstantLUT(t *testing.T) {
	c := New("k", 2)
	c.AddInput("a")
	c.AddLUT("one", nil, truth.Const(0, true))
	c.AddLUT("zero2", []string{"a", "one"}, truth.Const(2, false))
	c.MarkOutput("y", "zero2", false)
	var sb strings.Builder
	if err := c.WriteBLIF(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, ".names one\n1\n") {
		t.Fatalf("constant-1 LUT emitted wrong:\n%s", text)
	}
}

func TestFind(t *testing.T) {
	c := sampleCircuit()
	if c.Find("l1") == nil || c.Find("nope") != nil {
		t.Fatal("Find broken")
	}
}

func TestCircuitString(t *testing.T) {
	c := sampleCircuit()
	s := c.String()
	for _, want := range []string{"circuit sample", "l1 = LUT(a,b)", "output z = !l1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String missing %q:\n%s", want, s)
		}
	}
}

func TestLatchValidation(t *testing.T) {
	c := New("seq", 2)
	c.AddInput("q")
	c.AddInput("en")
	c.AddLUT("d", []string{"q", "en"}, truth.Var(0, 2).And(truth.Var(1, 2)))
	c.AddLatch("q", "d", false, '0')
	c.MarkOutput("y", "d", false)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := New("bad", 2)
	bad.AddInput("a")
	bad.AddLUT("d", []string{"a", "a"}, truth.Var(0, 2))
	bad.AddLatch("q", "d", false, '0') // q is not an input
	bad.MarkOutput("y", "d", false)
	if err := bad.Validate(); err == nil {
		t.Fatal("latch with non-input Q accepted")
	}
	bad2 := New("bad2", 2)
	bad2.AddInput("q")
	bad2.AddLatch("q", "ghost", false, '0')
	bad2.MarkOutput("y", "q", false)
	if err := bad2.Validate(); err == nil {
		t.Fatal("latch with undefined D accepted")
	}
}

func TestSequentialBLIFEmission(t *testing.T) {
	c := New("seq", 2)
	c.AddInput("q")
	c.AddInput("en")
	c.AddLUT("d", []string{"q", "en"}, truth.Var(0, 2).Xor(truth.Var(1, 2)))
	c.AddLatch("q", "d", true, '1')
	c.MarkOutput("y", "q", false)
	var sb strings.Builder
	if err := c.WriteBLIF(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, ".latch") || !strings.Contains(text, " q 1") {
		t.Fatalf("latch line missing:\n%s", text)
	}
	if strings.Contains(text, ".inputs q") && !strings.Contains(text, ".inputs q$") {
		t.Fatalf("latch Q leaked into .inputs:\n%s", text)
	}
	// The inverted D gets an inverter table before the .latch line.
	if !strings.Contains(text, "0 1") {
		t.Fatalf("inverter for inverted D missing:\n%s", text)
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for K=0")
		}
	}()
	New("bad", 0)
}
