package lut

import (
	"testing"

	"chortle/internal/truth"
)

// xorPair builds the two-LUT realization of a XOR that Chortle's
// per-edge accounting produces at K=3: l2 = x'·c, root = x·c' + l2.
func xorPair() *Circuit {
	c := New("xor", 3)
	c.AddInput("x")
	c.AddInput("cin")
	l2 := truth.Var(0, 2).Not().And(truth.Var(1, 2))
	c.AddLUT("l2", []string{"x", "cin"}, l2)
	root := truth.FromFunc(3, func(m uint) bool {
		x, cin, sub := m&1 == 1, m>>1&1 == 1, m>>2&1 == 1
		return (x && !cin) || sub
	})
	c.AddLUT("root", []string{"x", "cin", "l2"}, root)
	c.MarkOutput("y", "root", false)
	return c
}

func TestRepackMergesXORPair(t *testing.T) {
	c := xorPair()
	before, err := c.Simulate(map[string]uint64{"x": 0b1010, "cin": 0b1100})
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.Repack()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || c.Count() != 1 {
		t.Fatalf("repack merged %d, circuit now %d LUTs; want 1 and 1", n, c.Count())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	after, err := c.Simulate(map[string]uint64{"x": 0b1010, "cin": 0b1100})
	if err != nil {
		t.Fatal(err)
	}
	if before["y"] != after["y"] {
		t.Fatal("repacking changed functionality")
	}
	if before["y"]&0xF != 0b0110 {
		t.Fatalf("xor truth wrong: %04b", before["y"]&0xF)
	}
}

func TestRepackRespectsK(t *testing.T) {
	// Merging would need 4 distinct inputs; K=3 forbids it.
	c := New("wide", 3)
	for _, in := range []string{"a", "b", "c", "d"} {
		c.AddInput(in)
	}
	and2 := truth.Var(0, 2).And(truth.Var(1, 2))
	c.AddLUT("l1", []string{"a", "b"}, and2)
	maj := truth.FromFunc(3, func(m uint) bool { return m == 0b111 })
	c.AddLUT("root", []string{"l1", "c", "d"}, maj)
	c.MarkOutput("y", "root", false)
	n, err := c.Repack()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || c.Count() != 2 {
		t.Fatalf("repack merged across K: %d merges, %d LUTs", n, c.Count())
	}
}

func TestRepackSkipsMultiFanout(t *testing.T) {
	c := New("fan", 4)
	c.AddInput("a")
	c.AddInput("b")
	and2 := truth.Var(0, 2).And(truth.Var(1, 2))
	c.AddLUT("shared", []string{"a", "b"}, and2)
	c.AddLUT("u1", []string{"shared", "a"}, truth.Var(0, 2).Or(truth.Var(1, 2)))
	c.AddLUT("u2", []string{"shared", "b"}, and2)
	c.MarkOutput("y", "u1", false)
	c.MarkOutput("z", "u2", false)
	n, err := c.Repack()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("repack duplicated a shared LUT (%d merges)", n)
	}
}

func TestRepackChain(t *testing.T) {
	// A chain of 2-input buffers/ANDs collapses fully at K=4.
	c := New("chain", 4)
	c.AddInput("a")
	c.AddInput("b")
	c.AddInput("x")
	c.AddInput("y")
	and2 := truth.Var(0, 2).And(truth.Var(1, 2))
	c.AddLUT("l1", []string{"a", "b"}, and2)
	c.AddLUT("l2", []string{"l1", "x"}, and2)
	c.AddLUT("l3", []string{"l2", "y"}, and2)
	c.MarkOutput("out", "l3", false)
	before, _ := c.Simulate(map[string]uint64{"a": ^uint64(0), "b": ^uint64(0), "x": ^uint64(0), "y": 0b10})
	n, err := c.Repack()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || c.Count() != 1 {
		t.Fatalf("chain repack: %d merges, %d LUTs", n, c.Count())
	}
	after, _ := c.Simulate(map[string]uint64{"a": ^uint64(0), "b": ^uint64(0), "x": ^uint64(0), "y": 0b10})
	if before["out"] != after["out"] {
		t.Fatal("chain repack changed function")
	}
}
