// Package shapecache implements the storage layer of the cross-run
// shape cache: a sharded, bounded, concurrency-safe map from 64-bit
// structural hashes to opaque values, with per-shard LRU eviction and
// entry+byte cost accounting.
//
// The package is deliberately generic — it knows nothing about trees,
// DP tables or emission templates. Hash collisions are the caller's
// problem by design: every bucket holds all values that hashed to the
// same key, and both Get and Put take a match predicate that performs
// full verification (in core's case, comparing canonical shape
// encodings). A collision therefore degrades to a miss, never to wrong
// reuse — the same invariant the per-run shape memo upholds, now under
// concurrency.
//
// Locking is per shard (a power-of-two count, selected by a mixed view
// of the hash), so concurrent mapping runs contend only when they touch
// the same shard. All mutation happens under the shard mutex; values
// themselves must be immutable after publication, which core's frozen
// shape entries guarantee.
package shapecache

import (
	"sync"
	"sync/atomic"
)

// Config bounds a Cache. Zero fields take defaults.
type Config struct {
	// Shards is the shard count, rounded up to a power of two.
	// Default 16.
	Shards int
	// MaxEntries bounds the total entry count across all shards.
	// Default 65536.
	MaxEntries int
	// MaxBytes bounds the total accounted cost across all shards.
	// The bound is approximate: it is enforced per shard, and a single
	// entry larger than a shard's slice of the budget is kept rather
	// than thrashed. Default 256 MiB.
	MaxBytes int64
}

const (
	defaultShards     = 16
	defaultMaxEntries = 1 << 16
	defaultMaxBytes   = 256 << 20
)

// Stats is a point-in-time snapshot of cache effectiveness and size.
type Stats struct {
	Hits      int64 // Get calls that returned a verified value
	Misses    int64 // Get calls that found nothing (or only collisions)
	Puts      int64 // values actually inserted (losing racers excluded)
	Evictions int64 // entries removed by the LRU bound
	Entries   int64 // current resident entry count
	Bytes     int64 // current accounted resident cost
}

// entry is one resident value, threaded on its shard's intrusive LRU
// list (head = most recently used).
type entry struct {
	hash       uint64
	val        any
	cost       int64
	prev, next *entry
	dead       bool // evicted; Handle.Grow becomes a no-op
}

type shard struct {
	mu      sync.Mutex
	buckets map[uint64][]*entry
	head    *entry
	tail    *entry
	entries int
	bytes   int64
}

// Cache is the sharded store. The zero value is not usable; construct
// with New.
type Cache struct {
	shards []shard
	mask   uint64

	maxEntries int   // per shard
	maxBytes   int64 // per shard

	hits, misses, puts, evictions atomic.Int64
}

// New returns an empty cache honoring cfg's bounds.
func New(cfg Config) *Cache {
	n := cfg.Shards
	if n <= 0 {
		n = defaultShards
	}
	// Round up to a power of two so shard selection is a mask.
	p := 1
	for p < n {
		p <<= 1
	}
	maxEntries := cfg.MaxEntries
	if maxEntries <= 0 {
		maxEntries = defaultMaxEntries
	}
	maxBytes := cfg.MaxBytes
	if maxBytes <= 0 {
		maxBytes = defaultMaxBytes
	}
	c := &Cache{
		shards:     make([]shard, p),
		mask:       uint64(p - 1),
		maxEntries: (maxEntries + p - 1) / p,
		maxBytes:   (maxBytes + int64(p) - 1) / int64(p),
	}
	if c.maxEntries < 1 {
		c.maxEntries = 1
	}
	if c.maxBytes < 1 {
		c.maxBytes = 1
	}
	for i := range c.shards {
		c.shards[i].buckets = make(map[uint64][]*entry)
	}
	return c
}

// shardFor remixes the hash before masking so bucket keys (the raw
// hash) and shard selection use independent bits.
func (c *Cache) shardFor(h uint64) *shard {
	m := h * 0x9e3779b97f4a7c15
	return &c.shards[(m>>32)&c.mask]
}

// Get returns the first value under h accepted by match, refreshing its
// LRU position. match runs under the shard lock and must be cheap and
// side-effect free on shared state.
func (c *Cache) Get(h uint64, match func(v any) bool) (any, bool) {
	s := c.shardFor(h)
	s.mu.Lock()
	for _, e := range s.buckets[h] {
		if match(e.val) {
			s.touch(e)
			s.mu.Unlock()
			c.hits.Add(1)
			return e.val, true
		}
	}
	s.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// Put inserts v under h with the given accounted cost, unless a value
// already resident under h is accepted by match — two runs publishing
// the same shape race benignly, and the first insert wins. It returns
// the resident value (v or the earlier winner) and a Handle for later
// cost adjustments. Inserting may evict least-recently-used entries to
// keep the shard within bounds; the newly inserted entry is never the
// eviction victim of its own insert.
func (c *Cache) Put(h uint64, v any, cost int64, match func(v any) bool) (any, Handle) {
	if cost < 0 {
		cost = 0
	}
	s := c.shardFor(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.buckets[h] {
		if match(e.val) {
			s.touch(e)
			return e.val, Handle{c: c, s: s, e: e}
		}
	}
	e := &entry{hash: h, val: v, cost: cost}
	s.buckets[h] = append(s.buckets[h], e)
	s.pushFront(e)
	s.entries++
	s.bytes += cost
	c.puts.Add(1)
	s.evictLocked(c)
	return v, Handle{c: c, s: s, e: e}
}

// evictLocked trims the shard to its bounds, least recently used first,
// always keeping at least one entry (a value larger than the whole
// shard budget is kept, not thrashed).
func (s *shard) evictLocked(c *Cache) {
	for (s.entries > c.maxEntries || s.bytes > c.maxBytes) && s.entries > 1 {
		victim := s.tail
		if victim == nil {
			return
		}
		s.unlink(victim)
		s.removeFromBucket(victim)
		victim.dead = true
		s.entries--
		s.bytes -= victim.cost
		c.evictions.Add(1)
	}
}

func (s *shard) removeFromBucket(e *entry) {
	b := s.buckets[e.hash]
	for i, x := range b {
		if x == e {
			b = append(b[:i], b[i+1:]...)
			break
		}
	}
	if len(b) == 0 {
		delete(s.buckets, e.hash)
	} else {
		s.buckets[e.hash] = b
	}
}

func (s *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) touch(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// Handle names one resident entry so its accounted cost can grow after
// insertion (core uses this when templates are published onto an
// already-cached shape). The zero Handle is a valid no-op.
type Handle struct {
	c *Cache
	s *shard
	e *entry
}

// Grow adds delta to the entry's accounted cost and re-applies the
// shard bounds. If the entry has been evicted, Grow does nothing — the
// caller may keep using its value (eviction only removes residency),
// but no further bytes are accounted.
func (h Handle) Grow(delta int64) {
	if h.s == nil || delta == 0 {
		return
	}
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	if h.e.dead {
		return
	}
	h.e.cost += delta
	h.s.bytes += delta
	h.s.evictLocked(h.c)
}

// Stats snapshots the cache counters and resident totals. Entries and
// Bytes are summed shard by shard, so the snapshot is consistent per
// shard but only approximately consistent across shards — fine for
// metrics, not a synchronization primitive.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Puts:      c.puts.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += int64(s.entries)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// Len reports the resident entry count (see Stats for caveats).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.entries
		s.mu.Unlock()
	}
	return n
}
