package shapecache

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
)

// Snapshot persistence. A snapshot is the cache's resident entries in a
// self-describing binary file:
//
//	magic     [8]byte  "chortsnp"
//	version   uvarint  format version (snapshotVersion)
//	namespace uvarint-framed bytes (caller-defined payload codec id)
//	count     uvarint
//	count ×   { hash [8]byte BE, cost uvarint, payload uvarint-framed }
//	crc       [8]byte  BE CRC-64/ECMA of everything above
//
// The file is verified before a single entry is admitted: magic, format
// version, namespace and the trailing checksum are all checked first,
// and every payload is decoded and validated before insertion begins.
// Any failure rejects the whole snapshot and leaves the cache exactly
// as it was — for a boot-time restore that means an empty (cold) cache,
// never a partial or corrupted one.
//
// The payload bytes are opaque to this package; the caller supplies the
// value codec, and its namespace string must identify that codec's
// format (bump it on any incompatible change) so a snapshot written by
// an older encoding is rejected rather than misread.

// snapshotVersion is the container format version. Payload format
// changes are the namespace's job; this only moves when the container
// layout above changes.
const snapshotVersion = 1

var snapshotMagic = [8]byte{'c', 'h', 'o', 'r', 't', 's', 'n', 'p'}

// Snapshot rejection causes, distinguishable with errors.Is. A restore
// that fails with any of these leaves the cache untouched.
var (
	ErrSnapshotTruncated = errors.New("shapecache: snapshot truncated")
	ErrSnapshotChecksum  = errors.New("shapecache: snapshot checksum mismatch")
	ErrSnapshotMagic     = errors.New("shapecache: not a shape cache snapshot")
	ErrSnapshotVersion   = errors.New("shapecache: unsupported snapshot version")
	ErrSnapshotNamespace = errors.New("shapecache: snapshot namespace mismatch")
	ErrSnapshotPayload   = errors.New("shapecache: snapshot payload rejected")
)

// snapshotLimits bound a snapshot read so a corrupted length field
// cannot drive allocation: per-field caps, applied before allocating.
const (
	maxSnapshotNamespace = 1 << 10
	maxSnapshotEntries   = 1 << 24
	maxSnapshotPayload   = 1 << 28
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Snapshot writes every resident entry to w, encoding each value with
// encode. An entry whose encode returns (nil, nil) is skipped (the
// value is not snapshottable); an encode error aborts the write. The
// iteration is per-shard consistent (see Stats) — entries inserted or
// evicted concurrently may or may not appear, which is fine for a
// cache: a snapshot is a warm start, not a ledger.
func (c *Cache) Snapshot(w io.Writer, namespace string, encode func(v any) ([]byte, error)) error {
	type rawEntry struct {
		hash    uint64
		cost    int64
		payload []byte
	}
	var entries []rawEntry
	var encErr error
	c.Range(func(hash uint64, v any, cost int64) bool {
		p, err := encode(v)
		if err != nil {
			encErr = err
			return false
		}
		if p == nil {
			return true
		}
		entries = append(entries, rawEntry{hash: hash, cost: cost, payload: p})
		return true
	})
	if encErr != nil {
		return fmt.Errorf("shapecache: encoding snapshot entry: %w", encErr)
	}

	crc := crc64.New(crcTable)
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	if err := putUvarint(snapshotVersion); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(namespace))); err != nil {
		return err
	}
	if _, err := bw.WriteString(namespace); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(entries))); err != nil {
		return err
	}
	for _, e := range entries {
		binary.BigEndian.PutUint64(scratch[:8], e.hash)
		if _, err := bw.Write(scratch[:8]); err != nil {
			return err
		}
		if err := putUvarint(uint64(e.cost)); err != nil {
			return err
		}
		if err := putUvarint(uint64(len(e.payload))); err != nil {
			return err
		}
		if _, err := bw.Write(e.payload); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	binary.BigEndian.PutUint64(scratch[:8], crc.Sum64())
	_, err := w.Write(scratch[:8])
	return err
}

// Restore reads a snapshot written by Snapshot and inserts its entries.
// The whole file is validated — magic, version, namespace, checksum,
// and every payload through decode — before anything is inserted, so a
// failed restore returns (0, err) with the cache untouched. Restored
// entries are subject to the normal bounds: a snapshot larger than the
// cache's configured budget restores the most recently written tail and
// evicts the rest. Returns the number of entries inserted.
func (c *Cache) Restore(r io.Reader, namespace string, decode func(payload []byte) (v any, err error)) (int, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, fmt.Errorf("shapecache: reading snapshot: %w", err)
	}
	if len(data) < len(snapshotMagic)+8 {
		return 0, ErrSnapshotTruncated
	}
	body, tail := data[:len(data)-8], data[len(data)-8:]
	if crc64.Checksum(body, crcTable) != binary.BigEndian.Uint64(tail) {
		return 0, ErrSnapshotChecksum
	}
	buf := body
	if string(buf[:len(snapshotMagic)]) != string(snapshotMagic[:]) {
		return 0, ErrSnapshotMagic
	}
	buf = buf[len(snapshotMagic):]
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return 0, ErrSnapshotTruncated
		}
		buf = buf[n:]
		return v, nil
	}
	ver, err := readUvarint()
	if err != nil {
		return 0, err
	}
	if ver != snapshotVersion {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrSnapshotVersion, ver, snapshotVersion)
	}
	nsLen, err := readUvarint()
	if err != nil {
		return 0, err
	}
	if nsLen > maxSnapshotNamespace || uint64(len(buf)) < nsLen {
		return 0, ErrSnapshotTruncated
	}
	ns := string(buf[:nsLen])
	buf = buf[nsLen:]
	if ns != namespace {
		return 0, fmt.Errorf("%w: got %q, want %q", ErrSnapshotNamespace, ns, namespace)
	}
	count, err := readUvarint()
	if err != nil {
		return 0, err
	}
	if count > maxSnapshotEntries {
		return 0, fmt.Errorf("%w: %d entries", ErrSnapshotPayload, count)
	}
	type decEntry struct {
		hash uint64
		cost int64
		v    any
	}
	entries := make([]decEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(buf) < 8 {
			return 0, ErrSnapshotTruncated
		}
		hash := binary.BigEndian.Uint64(buf[:8])
		buf = buf[8:]
		cost, err := readUvarint()
		if err != nil {
			return 0, err
		}
		plen, err := readUvarint()
		if err != nil {
			return 0, err
		}
		if plen > maxSnapshotPayload || uint64(len(buf)) < plen {
			return 0, ErrSnapshotTruncated
		}
		v, err := decode(buf[:plen])
		if err != nil {
			return 0, fmt.Errorf("%w: entry %d: %v", ErrSnapshotPayload, i, err)
		}
		buf = buf[plen:]
		entries = append(entries, decEntry{hash: hash, cost: int64(cost), v: v})
	}
	if len(buf) != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotPayload, len(buf))
	}
	for _, e := range entries {
		// Never-match predicate: a restore targets an empty or disjoint
		// cache; if an equal entry somehow coexists, verification-on-hit
		// still picks a correct one.
		c.Put(e.hash, e.v, e.cost, func(any) bool { return false })
	}
	return len(entries), nil
}

// Range calls fn for every resident entry, shard by shard under each
// shard's lock, until fn returns false. fn must not call back into the
// cache. The view is per-shard consistent only (see Stats).
func (c *Cache) Range(fn func(hash uint64, v any, cost int64) bool) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		// Walk the LRU list tail-first so a bound-limited Restore of this
		// snapshot keeps the hottest entries (later Puts survive eviction).
		for e := s.tail; e != nil; e = e.prev {
			if !fn(e.hash, e.val, e.cost) {
				s.mu.Unlock()
				return
			}
		}
		s.mu.Unlock()
	}
}

// Shed evicts roughly the given fraction (0..1] of resident entries,
// least recently used first, and returns the number evicted. It is the
// memory-pressure valve: shrinking residency only costs future hits,
// never correctness. Fractions outside (0,1] are clamped; a positive
// fraction evicts at least one entry per non-empty shard.
func (c *Cache) Shed(fraction float64) int {
	if fraction <= 0 {
		return 0
	}
	if fraction > 1 {
		fraction = 1
	}
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n := int(float64(s.entries)*fraction + 0.5)
		if n == 0 && s.entries > 0 {
			n = 1
		}
		for j := 0; j < n && s.entries > 0; j++ {
			victim := s.tail
			if victim == nil {
				break
			}
			s.unlink(victim)
			s.removeFromBucket(victim)
			victim.dead = true
			s.entries--
			s.bytes -= victim.cost
			c.evictions.Add(1)
			total++
		}
		s.mu.Unlock()
	}
	return total
}
