package shapecache

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc64"
	"testing"
)

func checksumOf(body []byte) uint64 { return crc64.Checksum(body, crcTable) }

// The snapshot container's contract: byte payloads round-trip through
// Snapshot/Restore, and every corruption mode — truncation, bit flips,
// wrong version, wrong namespace, trailing garbage — rejects the whole
// file and leaves the cache untouched.

func encBytes(v any) ([]byte, error) { return append([]byte(nil), v.([]byte)...), nil }
func decBytes(p []byte) (any, error) { return append([]byte(nil), p...), nil }

func fillCache(t *testing.T, c *Cache, n int) map[uint64][]byte {
	t.Helper()
	want := make(map[uint64][]byte, n)
	for i := 0; i < n; i++ {
		h := uint64(i)*0x9e3779b97f4a7c15 + 1
		v := []byte(fmt.Sprintf("payload-%d", i))
		c.Put(h, v, int64(len(v)), func(any) bool { return false })
		want[h] = v
	}
	return want
}

func snapshotOf(t *testing.T, c *Cache, namespace string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Snapshot(&buf, namespace, encBytes); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	src := New(Config{Shards: 4, MaxEntries: 1024})
	want := fillCache(t, src, 100)
	snap := snapshotOf(t, src, "test-ns")

	dst := New(Config{Shards: 4, MaxEntries: 1024})
	n, err := dst.Restore(bytes.NewReader(snap), "test-ns", decBytes)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if n != len(want) {
		t.Fatalf("restored %d entries, want %d", n, len(want))
	}
	if got := dst.Len(); got != len(want) {
		t.Fatalf("resident %d entries, want %d", got, len(want))
	}
	for h, v := range want {
		got, ok := dst.Get(h, func(x any) bool { return bytes.Equal(x.([]byte), v) })
		if !ok {
			t.Fatalf("hash %#x missing after restore", h)
		}
		if !bytes.Equal(got.([]byte), v) {
			t.Fatalf("hash %#x: got %q, want %q", h, got, v)
		}
	}
	// Cost accounting survives the round trip.
	if ss, ds := src.Stats(), dst.Stats(); ss.Bytes != ds.Bytes {
		t.Fatalf("restored bytes %d, want %d", ds.Bytes, ss.Bytes)
	}
}

func TestSnapshotEmptyCache(t *testing.T) {
	src := New(Config{})
	snap := snapshotOf(t, src, "ns")
	dst := New(Config{})
	n, err := dst.Restore(bytes.NewReader(snap), "ns", decBytes)
	if err != nil || n != 0 {
		t.Fatalf("Restore empty: n=%d err=%v", n, err)
	}
}

func TestSnapshotSkipsUnencodable(t *testing.T) {
	src := New(Config{})
	src.Put(1, []byte("keep"), 4, func(any) bool { return false })
	src.Put(2, "not-bytes", 9, func(any) bool { return false })
	var buf bytes.Buffer
	err := src.Snapshot(&buf, "ns", func(v any) ([]byte, error) {
		b, ok := v.([]byte)
		if !ok {
			return nil, nil // skip
		}
		return b, nil
	})
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	dst := New(Config{})
	n, err := dst.Restore(&buf, "ns", decBytes)
	if err != nil || n != 1 {
		t.Fatalf("Restore: n=%d err=%v", n, err)
	}
}

// restoreRejected asserts the snapshot bytes are rejected with the
// given sentinel and that the target cache stays empty.
func restoreRejected(t *testing.T, snap []byte, namespace string, want error) {
	t.Helper()
	dst := New(Config{})
	n, err := dst.Restore(bytes.NewReader(snap), namespace, decBytes)
	if err == nil {
		t.Fatalf("Restore accepted corrupted snapshot (%d entries)", n)
	}
	if want != nil && !errors.Is(err, want) {
		t.Fatalf("Restore error = %v, want %v", err, want)
	}
	if dst.Len() != 0 {
		t.Fatalf("cache not empty after rejected restore: %d entries", dst.Len())
	}
}

func TestSnapshotCorruption(t *testing.T) {
	src := New(Config{Shards: 2})
	fillCache(t, src, 32)
	snap := snapshotOf(t, src, "ns")

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{1, 7, len(snap) / 2, len(snap) - 1} {
			restoreRejected(t, snap[:cut], "ns", nil)
		}
	})
	t.Run("empty", func(t *testing.T) {
		restoreRejected(t, nil, "ns", ErrSnapshotTruncated)
	})
	t.Run("bitflip", func(t *testing.T) {
		for _, pos := range []int{0, 9, len(snap) / 2, len(snap) - 2} {
			bad := append([]byte(nil), snap...)
			bad[pos] ^= 0x40
			restoreRejected(t, bad, "ns", nil)
		}
	})
	t.Run("checksum", func(t *testing.T) {
		bad := append([]byte(nil), snap...)
		bad[len(bad)/2] ^= 1
		restoreRejected(t, bad, "ns", ErrSnapshotChecksum)
	})
	t.Run("wrong-namespace", func(t *testing.T) {
		restoreRejected(t, snap, "other-ns", ErrSnapshotNamespace)
	})
	t.Run("wrong-magic", func(t *testing.T) {
		bad := append([]byte(nil), snap...)
		bad[0] = 'X'
		// Re-sign so only the magic is wrong, not the checksum.
		resign(bad)
		restoreRejected(t, bad, "ns", ErrSnapshotMagic)
	})
	t.Run("wrong-version", func(t *testing.T) {
		bad := append([]byte(nil), snap...)
		bad[8] = snapshotVersion + 1 // single-byte uvarint
		resign(bad)
		restoreRejected(t, bad, "ns", ErrSnapshotVersion)
	})
	t.Run("payload-error", func(t *testing.T) {
		dst := New(Config{})
		n, err := dst.Restore(bytes.NewReader(snap), "ns", func([]byte) (any, error) {
			return nil, errors.New("decode refused")
		})
		if err == nil || !errors.Is(err, ErrSnapshotPayload) {
			t.Fatalf("Restore: n=%d err=%v, want ErrSnapshotPayload", n, err)
		}
		if dst.Len() != 0 {
			t.Fatalf("cache not empty after payload rejection: %d", dst.Len())
		}
	})
}

// resign recomputes the trailing checksum after a deliberate body edit,
// so tests exercise the field checks rather than the checksum.
func resign(snap []byte) {
	body := snap[:len(snap)-8]
	sum := checksumOf(body)
	for i := 0; i < 8; i++ {
		snap[len(snap)-8+i] = byte(sum >> (56 - 8*i))
	}
}

func TestSnapshotRestoreHonorsBounds(t *testing.T) {
	src := New(Config{Shards: 1, MaxEntries: 64})
	fillCache(t, src, 64)
	snap := snapshotOf(t, src, "ns")

	dst := New(Config{Shards: 1, MaxEntries: 16})
	n, err := dst.Restore(bytes.NewReader(snap), "ns", decBytes)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if n != 64 {
		t.Fatalf("restored %d, want 64 (eviction happens after insert)", n)
	}
	if got := dst.Len(); got != 16 {
		t.Fatalf("resident %d, want the 16-entry bound", got)
	}
}

func TestShed(t *testing.T) {
	c := New(Config{Shards: 2, MaxEntries: 1024})
	fillCache(t, c, 100)
	before := c.Len()
	evicted := c.Shed(0.5)
	after := c.Len()
	if evicted == 0 || before-after != evicted {
		t.Fatalf("Shed(0.5): evicted=%d before=%d after=%d", evicted, before, after)
	}
	if after > 55 || after < 45 {
		t.Fatalf("Shed(0.5) left %d of %d", after, before)
	}
	if got := c.Shed(1); got != after {
		t.Fatalf("Shed(1) evicted %d, want %d", got, after)
	}
	if c.Len() != 0 {
		t.Fatalf("cache not empty after Shed(1): %d", c.Len())
	}
	if c.Shed(0.5) != 0 {
		t.Fatal("Shed on empty cache evicted something")
	}
	st := c.Stats()
	if st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("accounting nonzero after full shed: %+v", st)
	}
}
