package shapecache

import (
	"fmt"
	"sync"
	"testing"
)

func matchVal(want string) func(any) bool {
	return func(v any) bool { return v.(string) == want }
}

func TestGetPutBasics(t *testing.T) {
	c := New(Config{})
	if _, ok := c.Get(1, matchVal("a")); ok {
		t.Fatalf("empty cache returned a value")
	}
	v, _ := c.Put(1, "a", 10, matchVal("a"))
	if v != "a" {
		t.Fatalf("Put returned %v, want a", v)
	}
	got, ok := c.Get(1, matchVal("a"))
	if !ok || got != "a" {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 || st.Bytes != 10 {
		t.Fatalf("stats %+v", st)
	}
}

// Two different values under the same hash must both be reachable, each
// through its own match predicate: collisions are buckets, not
// overwrites, and an unverified value is never served.
func TestCollisionBucket(t *testing.T) {
	c := New(Config{})
	c.Put(7, "a", 1, matchVal("a"))
	c.Put(7, "b", 1, matchVal("b"))
	if got, ok := c.Get(7, matchVal("a")); !ok || got != "a" {
		t.Fatalf("Get a = %v, %v", got, ok)
	}
	if got, ok := c.Get(7, matchVal("b")); !ok || got != "b" {
		t.Fatalf("Get b = %v, %v", got, ok)
	}
	if _, ok := c.Get(7, matchVal("c")); ok {
		t.Fatalf("Get served a colliding value that failed verification")
	}
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
}

// A Put that matches a resident value must not replace it: the first
// publisher wins and both racers end up sharing one entry.
func TestPutFirstInsertWins(t *testing.T) {
	c := New(Config{})
	c.Put(3, "first", 5, matchVal("first"))
	res, _ := c.Put(3, "first", 5, func(v any) bool { return v.(string) == "first" })
	if res != "first" {
		t.Fatalf("second Put returned %v", res)
	}
	if st := c.Stats(); st.Puts != 1 || st.Entries != 1 || st.Bytes != 5 {
		t.Fatalf("stats %+v, want one resident entry", st)
	}
}

func TestEntryBoundEviction(t *testing.T) {
	c := New(Config{Shards: 1, MaxEntries: 4, MaxBytes: 1 << 30})
	for i := 0; i < 10; i++ {
		s := fmt.Sprint(i)
		c.Put(uint64(i), s, 1, matchVal(s))
	}
	st := c.Stats()
	if st.Entries != 4 {
		t.Fatalf("entries = %d, want 4", st.Entries)
	}
	if st.Evictions != 6 {
		t.Fatalf("evictions = %d, want 6", st.Evictions)
	}
	// The most recent inserts survive; the oldest are gone.
	if _, ok := c.Get(9, matchVal("9")); !ok {
		t.Fatalf("newest entry evicted")
	}
	if _, ok := c.Get(0, matchVal("0")); ok {
		t.Fatalf("oldest entry still resident past the bound")
	}
}

func TestByteBoundEviction(t *testing.T) {
	c := New(Config{Shards: 1, MaxEntries: 1 << 20, MaxBytes: 100})
	c.Put(1, "a", 60, matchVal("a"))
	c.Put(2, "b", 60, matchVal("b")) // 120 > 100: evicts a
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 60 || st.Evictions != 1 {
		t.Fatalf("stats %+v", st)
	}
	if _, ok := c.Get(1, matchVal("a")); ok {
		t.Fatalf("byte bound did not evict the LRU entry")
	}
	// A single entry larger than the whole budget is kept, not thrashed.
	c2 := New(Config{Shards: 1, MaxBytes: 10})
	c2.Put(5, "big", 1000, matchVal("big"))
	if _, ok := c2.Get(5, matchVal("big")); !ok {
		t.Fatalf("oversized sole entry was evicted")
	}
}

// Get must refresh recency: a touched entry survives inserts that evict
// colder ones.
func TestLRUTouchOnGet(t *testing.T) {
	c := New(Config{Shards: 1, MaxEntries: 2, MaxBytes: 1 << 30})
	c.Put(1, "a", 1, matchVal("a"))
	c.Put(2, "b", 1, matchVal("b"))
	c.Get(1, matchVal("a")) // a becomes MRU
	c.Put(3, "c", 1, matchVal("c"))
	if _, ok := c.Get(1, matchVal("a")); !ok {
		t.Fatalf("recently used entry evicted")
	}
	if _, ok := c.Get(2, matchVal("b")); ok {
		t.Fatalf("least recently used entry survived")
	}
}

func TestHandleGrow(t *testing.T) {
	c := New(Config{Shards: 1, MaxEntries: 10, MaxBytes: 100})
	_, h1 := c.Put(1, "a", 40, matchVal("a"))
	c.Put(2, "b", 40, matchVal("b"))
	h1.Grow(50) // 130 > 100: b (LRU after a's touch via Put-match? no — a grew, b is older MRU)
	st := c.Stats()
	if st.Bytes > 100 && st.Entries > 1 {
		t.Fatalf("Grow left shard over budget with multiple entries: %+v", st)
	}
	// Growing an evicted entry is a silent no-op.
	c2 := New(Config{Shards: 1, MaxEntries: 1})
	_, hOld := c2.Put(1, "old", 1, matchVal("old"))
	c2.Put(2, "new", 1, matchVal("new")) // evicts old
	before := c2.Stats().Bytes
	hOld.Grow(1000)
	if got := c2.Stats().Bytes; got != before {
		t.Fatalf("Grow on evicted entry changed accounting: %d -> %d", before, got)
	}
	// The zero Handle is a no-op.
	var zero Handle
	zero.Grow(123)
}

func TestConcurrentAccess(t *testing.T) {
	c := New(Config{Shards: 8, MaxEntries: 256, MaxBytes: 1 << 20})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h := uint64(i % 100)
				want := fmt.Sprint(h)
				if v, ok := c.Get(h, matchVal(want)); ok {
					if v.(string) != want {
						t.Errorf("goroutine %d: got %v for hash %d", g, v, h)
						return
					}
				} else {
					res, hnd := c.Put(h, want, int64(i%7)+1, matchVal(want))
					if res.(string) != want {
						t.Errorf("goroutine %d: Put resident %v for hash %d", g, res, h)
						return
					}
					hnd.Grow(1)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > 256 {
		t.Fatalf("entry bound violated: %+v", st)
	}
	if st.Hits == 0 || st.Puts == 0 {
		t.Fatalf("no traffic recorded: %+v", st)
	}
}

// Accounting must balance: after any mix of puts, growth and evictions,
// resident bytes equal the sum of resident entry costs.
func TestAccountingConsistency(t *testing.T) {
	c := New(Config{Shards: 2, MaxEntries: 8, MaxBytes: 200})
	for i := 0; i < 50; i++ {
		s := fmt.Sprint(i)
		_, h := c.Put(uint64(i), s, int64(10+i%20), matchVal(s))
		if i%3 == 0 {
			h.Grow(int64(i % 11))
		}
	}
	var wantBytes int64
	var wantEntries int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for e := s.head; e != nil; e = e.next {
			wantBytes += e.cost
			wantEntries++
		}
		s.mu.Unlock()
	}
	st := c.Stats()
	if st.Bytes != wantBytes || st.Entries != wantEntries {
		t.Fatalf("accounting drifted: stats %+v, list says %d entries %d bytes",
			st, wantEntries, wantBytes)
	}
	if c.Len() != int(wantEntries) {
		t.Fatalf("Len = %d, want %d", c.Len(), wantEntries)
	}
}
