// Package cerrs holds the error taxonomy shared across the chortle
// packages: sentinel errors for user-input-reachable failure conditions
// (so callers can errors.Is against a stable value no matter which
// layer detected the problem) and the PanicError carrier that the
// execution layer uses to surface a recovered worker panic as an
// ordinary error. It has no dependencies so every internal package can
// import it without cycles.
package cerrs

import (
	"errors"
	"fmt"
)

// Sentinel errors for conditions reachable from user input. Each layer
// wraps these with its own context via fmt.Errorf("...: %w", ...);
// errors.Is sees through the wrapping.
var (
	// ErrCycle reports a combinational cycle in an input network.
	ErrCycle = errors.New("combinational cycle")
	// ErrDuplicateName reports a name collision (node, signal, label).
	ErrDuplicateName = errors.New("duplicate name")
	// ErrBadK reports a lookup-table input count outside the supported
	// range.
	ErrBadK = errors.New("K out of range")
	// ErrArityMismatch reports a width disagreement between a declared
	// arity and the data supplied for it (cube rows, label lists, truth
	// tables).
	ErrArityMismatch = errors.New("arity mismatch")
	// ErrBudgetExhausted reports that a bounded search ran out of its
	// work-unit or wall-clock budget. The mapper handles it internally
	// by degrading to a cheaper strategy; it escapes only from
	// cost-probe paths that have no fallback.
	ErrBudgetExhausted = errors.New("search budget exhausted")
)

// PanicError is a panic recovered inside the execution layer (a DP
// worker, or the public API boundary), carried as an error with the
// stack captured at the recovery point. The public package converts it
// to *chortle.InternalError; it exists here so internal/core can
// return it without importing the root package.
type PanicError struct {
	Value any    // the value passed to panic
	Stack []byte // debug.Stack() captured where the panic was recovered
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("internal panic: %v", p.Value)
}

// Unwrap exposes panic values that are themselves errors, so sentinel
// wrapping survives a panic/recover round trip.
func (p *PanicError) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}
