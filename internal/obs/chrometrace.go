package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Chrome trace_event export: converts a mapping event stream into the
// JSON array format that chrome://tracing and Perfetto load, so a slow
// run can be inspected visually. The pipeline's map bracket and phases
// become nested B/E spans on a "pipeline" track; per-tree DP solves
// (which carry wall durations and overlap under the parallel pipeline)
// are laid out on as many "solver lane" tracks as their true
// concurrency requires — lane count is a lower bound on the worker
// parallelism the run achieved. Memo hits, template replays, budget
// trips, degradations and accepted duplications appear as instant
// markers; per-LUT detail is deliberately omitted (a large run emits
// tens of thousands of LUT events, which would drown the viewer).

// ReadJSONL parses a JSONL trace (the cmd/chortle -trace format, one
// Event per line) back into events. Blank lines are skipped; a
// malformed line fails with its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []Event
	for n := 1; sc.Scan(); n++ {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", n, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return events, nil
}

// traceRecord is one Chrome trace_event entry.
type traceRecord struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`            // microseconds from trace origin
	Dur  int64          `json:"dur,omitempty"` // "X" (complete) records only
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// span is an internal paired interval before record emission.
type span struct {
	name       string
	start, end time.Time
	tid        int
	args       map[string]any
}

const (
	tracePid    = 1
	pipelineTid = 0
	laneTid0    = 1 // first solver lane
)

// WriteChromeTrace converts an event stream (a Collector's Events or a
// ReadJSONL replay) into a Chrome trace_event JSON array. The stream
// may be worker-interleaved; it is sorted by timestamp first. Events
// without wall-clock times (hand-built streams) are dropped from span
// output rather than guessed at.
func WriteChromeTrace(w io.Writer, events []Event) error {
	evs := make([]Event, 0, len(events))
	for _, e := range events {
		if !e.Time.IsZero() {
			evs = append(evs, e)
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time.Before(evs[j].Time) })

	var (
		mainSpans  []span // map bracket + phases: the pipeline track
		solveSpans []span // per-tree DP solves: solver lanes
		instants   []traceRecord
		counters   []traceRecord
		origin     time.Time
		last       time.Time
	)
	if len(evs) > 0 {
		origin = evs[0].Time
		last = evs[len(evs)-1].Time
	}
	us := func(t time.Time) int64 { return t.Sub(origin).Microseconds() }

	instant := func(e Event, name string, args map[string]any) {
		instants = append(instants, traceRecord{
			Name: name, Cat: "mark", Ph: "i", Ts: us(e.Time),
			Pid: tracePid, Tid: pipelineTid, S: "t", Args: args,
		})
	}

	var mapStack []Event
	phaseStacks := map[string][]time.Time{}
	for _, e := range evs {
		switch e.Kind {
		case KindMapStart:
			mapStack = append(mapStack, e)
		case KindMapEnd:
			if n := len(mapStack); n > 0 {
				start := mapStack[n-1]
				mapStack = mapStack[:n-1]
				mainSpans = append(mainSpans, span{
					name: fmt.Sprintf("map K=%d", start.K), start: start.Time, end: e.Time, tid: pipelineTid,
					args: map[string]any{"k": start.K, "nodes": start.N, "luts": e.Cost, "depth": e.Depth, "trees": e.N},
				})
			}
		case KindPhaseStart:
			phaseStacks[e.Phase] = append(phaseStacks[e.Phase], e.Time)
		case KindPhaseEnd:
			start := e.Time.Add(-time.Duration(e.Units))
			if st := phaseStacks[e.Phase]; len(st) > 0 {
				start = st[len(st)-1]
				phaseStacks[e.Phase] = st[:len(st)-1]
			}
			mainSpans = append(mainSpans, span{
				name: e.Phase, start: start, end: e.Time, tid: pipelineTid,
				args: map[string]any{"wall_ns": e.Units},
			})
		case KindTreeSolve:
			if e.Dur > 0 {
				solveSpans = append(solveSpans, span{
					name: e.Tree, start: e.Time.Add(-e.Dur), end: e.Time,
					args: map[string]any{"work_units": e.Units, "cost": e.Cost},
				})
			} else {
				instant(e, "solve "+e.Tree, map[string]any{"work_units": e.Units, "cost": e.Cost})
			}
		case KindMemoHit:
			instant(e, "memo-hit "+e.Tree, map[string]any{"cost": e.Cost})
		case KindTemplateReplay:
			instant(e, "template-replay "+e.Tree, nil)
		case KindBudgetExhausted:
			instant(e, "budget-exhausted "+e.Tree, map[string]any{"limit": e.Units})
		case KindTreeDegraded:
			instant(e, "degraded "+e.Tree, map[string]any{"cost": e.Cost})
		case KindDupAccepted:
			instant(e, "dup-accepted "+e.Tree, nil)
		case KindCutsEnumerated:
			instant(e, "cuts-enumerated", map[string]any{"gates": e.N, "cuts": e.Units, "dominated": e.Cost})
		case KindCutListEvict:
			instant(e, "cut-evictions", map[string]any{"evicted": e.Units})
		case KindAreaFlowRound:
			instant(e, fmt.Sprintf("area-flow round %d", e.N), map[string]any{"cover": e.Cost})
		case KindArenaStats:
			counters = append(counters, traceRecord{
				Name: "arena bytes", Ph: "C", Ts: us(e.Time), Pid: tracePid, Tid: pipelineTid,
				Args: map[string]any{"bytes": e.Units},
			})
		}
	}
	// Unclosed brackets (a cancelled or still-running trace): close at
	// the stream's horizon so the partial work stays visible.
	for _, start := range mapStack {
		mainSpans = append(mainSpans, span{
			name:  fmt.Sprintf("map K=%d (unfinished)", start.K),
			start: start.Time, end: last, tid: pipelineTid,
		})
	}
	for phase, st := range phaseStacks {
		for _, s := range st {
			mainSpans = append(mainSpans, span{name: phase + " (unfinished)", start: s, end: last, tid: pipelineTid})
		}
	}

	lanes := assignLanes(solveSpans)

	records := make([]traceRecord, 0, 2*(len(mainSpans)+len(solveSpans))+len(instants)+len(counters)+lanes+2)
	records = append(records, traceRecord{
		Name: "process_name", Ph: "M", Pid: tracePid, Tid: pipelineTid,
		Args: map[string]any{"name": "chortle"},
	})
	records = append(records, traceRecord{
		Name: "thread_name", Ph: "M", Pid: tracePid, Tid: pipelineTid,
		Args: map[string]any{"name": "pipeline"},
	})
	for l := 0; l < lanes; l++ {
		records = append(records, traceRecord{
			Name: "thread_name", Ph: "M", Pid: tracePid, Tid: laneTid0 + l,
			Args: map[string]any{"name": fmt.Sprintf("solver lane %d", l)},
		})
	}

	// B/E records must arrive in an order where every E closes the most
	// recent open B on its track — a stack discipline per (pid, tid).
	// Emit each track with a nesting sweep: spans sorted by start (ties:
	// longest first, so an outer span opens before an inner one sharing
	// its start microsecond), a stack of open spans, closing every open
	// span whose end precedes the next start. Zero-length spans (a solve
	// under 1µs) come out as adjacent B/E pairs, which a timestamp sort
	// of independent records cannot guarantee.
	byTid := map[int][]span{}
	var tids []int
	for _, s := range append(append([]span(nil), mainSpans...), solveSpans...) {
		if _, seen := byTid[s.tid]; !seen {
			tids = append(tids, s.tid)
		}
		byTid[s.tid] = append(byTid[s.tid], s)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		spans := byTid[tid]
		sort.SliceStable(spans, func(i, j int) bool {
			if !spans[i].start.Equal(spans[j].start) {
				return spans[i].start.Before(spans[j].start)
			}
			return spans[i].end.After(spans[j].end) // outer first
		})
		var stack []span
		var lastTs int64
		emit := func(name string, ph string, at time.Time, args map[string]any) {
			ts := us(at)
			if ts < lastTs { // malformed input (crossing spans): keep the track monotonic
				ts = lastTs
			}
			lastTs = ts
			records = append(records, traceRecord{
				Name: name, Cat: "span", Ph: ph, Ts: ts, Pid: tracePid, Tid: tid, Args: args,
			})
		}
		for _, s := range spans {
			for len(stack) > 0 && !stack[len(stack)-1].end.After(s.start) {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				emit(top.name, "E", top.end, nil)
			}
			emit(s.name, "B", s.start, s.args)
			stack = append(stack, s)
		}
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			emit(top.name, "E", top.end, nil)
		}
	}
	records = append(records, instants...)
	records = append(records, counters...)

	enc := json.NewEncoder(w)
	return enc.Encode(records)
}

// assignLanes lays overlapping solve spans out on the fewest tracks
// where no two spans on one track overlap — a greedy interval
// partition. Returns the lane count; each span's tid is set in place.
func assignLanes(spans []span) int {
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return spans[order[a]].start.Before(spans[order[b]].start)
	})
	var laneEnds []time.Time
	for _, i := range order {
		s := &spans[i]
		placed := false
		for l, end := range laneEnds {
			if !s.start.Before(end) { // lane free: previous span ended by our start
				s.tid = laneTid0 + l
				laneEnds[l] = s.end
				placed = true
				break
			}
		}
		if !placed {
			s.tid = laneTid0 + len(laneEnds)
			laneEnds = append(laneEnds, s.end)
		}
	}
	return len(laneEnds)
}
